// Marshalling the typed error family across the wire. The server renders a
// query's terminal error into a wire.Error (stable code + structured string
// fields); the client reconstructs the concrete exported type, so a remote
// caller's errors.As / errors.Is branches behave exactly as they do against
// an embedded DB:
//
//	_, err := conn.Query(ctx, sql)
//	var ov *qpipe.OverloadedError
//	if errors.As(err, &ov) { backoff(ov.QueueDepth) }
//
// Every exported error type round-trips (TestWireErrorRoundTrips holds the
// mapping to that); errors outside the family cross as CodeUnknown with
// their rendered message intact.
package qpipe

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/tuple"
	"qpipe/sql"
	"qpipe/wire"
)

// MarshalWireError renders err as a wire.Error for a MsgError frame,
// mapping each of the package's exported error types to its ErrCode and
// flattening the type's data into string fields. Unrecognized errors map to
// CodeUnknown with the rendered message only. A nil err returns nil.
func MarshalWireError(err error) *wire.Error {
	if err == nil {
		return nil
	}
	we := &wire.Error{Code: wire.CodeUnknown, Msg: err.Error(), Fields: map[string]string{}}
	set := func(code wire.ErrCode, kv ...string) {
		we.Code = code
		for i := 0; i+1 < len(kv); i += 2 {
			we.Fields[kv[i]] = kv[i+1]
		}
	}
	var (
		ov   *OverloadedError
		dl   *DeadlineError
		pa   *PanicError
		pe   *sql.ParseError
		ut   *UnknownTableError
		ucol *UnknownColumnError
		tm   *TypeMismatchError
		dup  *DuplicateColumnError
		amb  *AmbiguousColumnError
		st   *StatementError
		op   *OptionError
		be   *BatchError
		wp   *wire.ProtocolError
		wE   *wire.Error
	)
	switch {
	case errors.As(err, &wE):
		return wE // already in wire form: pass through unchanged
	case errors.As(err, &wp):
		set(wire.CodeProtocol, "reason", wp.Reason)
	case errors.As(err, &be):
		// Checked before the leaf types: a BatchError unwraps to its causes,
		// so errors.As on a nested type would match first and lose the
		// batch structure. Nest the submit failure (and any teardown
		// errors) as encoded wire.Errors inside fields — field values are
		// length-prefixed bytes on the wire, so binary payloads are safe.
		set(wire.CodeBatch, "index", strconv.Itoa(be.Index))
		if be.Submit != nil {
			we.Fields["submit"] = string(MarshalWireError(be.Submit).Encode(nil))
		}
		we.Fields["teardowns"] = strconv.Itoa(len(be.Teardown))
		for i, te := range be.Teardown {
			we.Fields["teardown"+strconv.Itoa(i)] = string(MarshalWireError(te).Encode(nil))
		}
	case errors.Is(err, ErrClosed):
		set(wire.CodeClosed)
	case errors.As(err, &ov):
		set(wire.CodeOverloaded,
			"max_concurrent", strconv.Itoa(ov.MaxConcurrent),
			"queue_depth", strconv.Itoa(ov.QueueDepth))
	case errors.As(err, &dl):
		set(wire.CodeDeadline,
			"timeout", dl.Timeout.String(),
			"deadline", dl.Deadline.Format(time.RFC3339Nano))
	case errors.As(err, &pa):
		set(wire.CodePanic, "op", string(pa.Op), "value", fmt.Sprint(pa.Value))
	case errors.As(err, &pe):
		set(wire.CodeParse,
			"line", strconv.Itoa(pe.Pos.Line),
			"col", strconv.Itoa(pe.Pos.Col),
			"msg", pe.Msg)
	case errors.As(err, &ut):
		set(wire.CodeUnknownTable, "table", ut.Table)
	case errors.As(err, &ucol):
		set(wire.CodeUnknownColumn, "column", ucol.Column, "schema", ucol.Schema)
	case errors.As(err, &tm):
		set(wire.CodeTypeMismatch,
			"expr", tm.Expr, "left", tm.Left.String(), "right", tm.Right.String())
	case errors.As(err, &dup):
		set(wire.CodeDuplicateColumn, "column", dup.Column)
	case errors.As(err, &amb):
		set(wire.CodeAmbiguousColumn,
			"column", amb.Column, "tables", strings.Join(amb.Tables, "\x1f"))
	case errors.As(err, &st):
		set(wire.CodeStatement, "stmt", st.Stmt, "reason", st.Reason)
	case errors.As(err, &op):
		set(wire.CodeOption, "option", op.Option, "reason", op.Reason)
	}
	return we
}

// UnmarshalWireError reconstructs the concrete exported error type from a
// wire.Error received in a MsgError frame — the inverse of
// MarshalWireError. Codes with missing or corrupt fields degrade to the
// zero-valued typed error (the message is the field data's backup rendering
// on the wire.Error itself, which unknown codes return verbatim). A nil
// input returns nil.
func UnmarshalWireError(we *wire.Error) error {
	if we == nil {
		return nil
	}
	atoi := func(k string) int { n, _ := strconv.Atoi(we.Field(k)); return n }
	switch we.Code {
	case wire.CodeProtocol:
		return &wire.ProtocolError{Reason: we.Field("reason")}
	case wire.CodeClosed:
		return ErrClosed
	case wire.CodeOverloaded:
		return &OverloadedError{
			MaxConcurrent: atoi("max_concurrent"),
			QueueDepth:    atoi("queue_depth"),
		}
	case wire.CodeDeadline:
		d, _ := time.ParseDuration(we.Field("timeout"))
		at, _ := time.Parse(time.RFC3339Nano, we.Field("deadline"))
		return &DeadlineError{Timeout: d, Deadline: at}
	case wire.CodePanic:
		return &PanicError{Op: plan.OpType(we.Field("op")), Value: we.Field("value")}
	case wire.CodeParse:
		return &sql.ParseError{
			Pos: sql.Position{Line: atoi("line"), Col: atoi("col")},
			Msg: we.Field("msg"),
		}
	case wire.CodeUnknownTable:
		return &UnknownTableError{Table: we.Field("table")}
	case wire.CodeUnknownColumn:
		return &UnknownColumnError{Column: we.Field("column"), Schema: we.Field("schema")}
	case wire.CodeTypeMismatch:
		return &TypeMismatchError{
			Expr:  we.Field("expr"),
			Left:  kindFromString(we.Field("left")),
			Right: kindFromString(we.Field("right")),
		}
	case wire.CodeDuplicateColumn:
		return &DuplicateColumnError{Column: we.Field("column")}
	case wire.CodeAmbiguousColumn:
		e := &AmbiguousColumnError{Column: we.Field("column")}
		if ts := we.Field("tables"); ts != "" {
			e.Tables = strings.Split(ts, "\x1f")
		}
		return e
	case wire.CodeStatement:
		return &StatementError{Stmt: we.Field("stmt"), Reason: we.Field("reason")}
	case wire.CodeOption:
		return &OptionError{Option: we.Field("option"), Reason: we.Field("reason")}
	case wire.CodeBatch:
		e := &BatchError{Index: atoi("index")}
		if s := we.Field("submit"); s != "" {
			if nested, err := wire.DecodeError([]byte(s)); err == nil {
				e.Submit = UnmarshalWireError(nested)
			}
		}
		for i := 0; i < atoi("teardowns"); i++ {
			if s := we.Field("teardown" + strconv.Itoa(i)); s != "" {
				if nested, err := wire.DecodeError([]byte(s)); err == nil {
					e.Teardown = append(e.Teardown, UnmarshalWireError(nested))
				}
			}
		}
		return e
	default:
		// CodeUnknown or a code from a newer peer: surface the wire.Error
		// itself — it renders the original message and keeps its fields
		// inspectable.
		return we
	}
}

// kindFromString inverts Kind.String for the TypeMismatchError fields.
func kindFromString(s string) Kind {
	switch s {
	case "int":
		return tuple.KindInt
	case "float":
		return tuple.KindFloat
	case "string":
		return tuple.KindString
	case "date":
		return tuple.KindDate
	default:
		return tuple.KindInvalid
	}
}
