// DB: the embeddable facade. Open assembles the whole stack — simulated
// disk, buffer pool, lock manager, catalog and the QPipe engine — behind one
// handle, so a host program needs exactly one import ("qpipe") to create
// tables, load data, build queries by column name and stream results.
package qpipe

import (
	"context"
	"fmt"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/plan"
	"qpipe/internal/qcache"
	"qpipe/internal/stats"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// Stats aggregates engine and sharing counters (see core.RuntimeStats).
type Stats = core.RuntimeStats

// CacheStats snapshots the result cache's counters.
type CacheStats = qcache.Stats

// DiskStats snapshots the simulated disk's I/O counters.
type DiskStats = disk.Stats

// Options configures a DB. The zero value is a sensible default: OSP on,
// a 1024-page buffer pool, GOMAXPROCS scan parallelism, no result cache.
type Options struct {
	// PoolPages is the buffer-pool capacity in pages (default 1024).
	PoolPages int
	// BlockSize is the simulated disk's block size in bytes (default 8192).
	BlockSize int
	// DisableOSP turns off on-demand simultaneous pipelining engine-wide
	// (the paper's "Baseline" system). Individual queries can opt out with
	// WithoutOSP instead.
	DisableOSP bool
	// ScanParallelism is the default intra-operator fan-out (0 =
	// GOMAXPROCS). Overridable per query with WithParallelism.
	ScanParallelism int
	// BatchSize is the default tuples-per-batch target (0 = 64).
	// Overridable per query with WithBatchSize.
	BatchSize int
	// BufferCapacity bounds intermediate buffers, in batches (0 = 8).
	BufferCapacity int
	// ReplayWindow is the produced-tuple window retained for late OSP
	// satellite attachment (0 = 1024).
	ReplayWindow int
	// WorkersPerEngine sizes each µEngine's worker pool (0 = elastic: one
	// goroutine per packet).
	WorkersPerEngine int
	// ResultCacheTuples enables the query-result cache, bounding it to this
	// many cached tuples in total (0 = cache disabled). Queries opt in per
	// Run with WithResultCache.
	ResultCacheTuples int64
	// ResultCacheMaxEntry caps a single admitted result's tuples
	// (0 = ResultCacheTuples/4).
	ResultCacheMaxEntry int64
	// DisableOptimizer turns off plan normalization, predicate pushdown and
	// join reordering: queries run exactly as written (the pre-optimizer
	// lowering). An escape hatch for debugging and for measuring what the
	// optimizer buys (qpipe-bench -fig planshare -no-opt).
	DisableOptimizer bool
	// MaxConcurrentQueries caps how many queries execute at once (admission
	// control). Excess submissions park in a bounded FIFO wait queue; once
	// that is full too, Run sheds the query with a typed *OverloadedError.
	// 0 (the default) disables governance.
	MaxConcurrentQueries int
	// AdmissionQueue bounds the admission wait queue, in queries (0 =
	// 2×MaxConcurrentQueries; negative = no queue, shed immediately at the
	// concurrency limit). Only meaningful with MaxConcurrentQueries > 0.
	AdmissionQueue int
	// DrainTimeout bounds how long Close waits for in-flight queries to
	// finish before cancelling the stragglers (0 = 5s; negative = cancel
	// immediately).
	DrainTimeout time.Duration
	// Dir, when non-empty, makes the database durable: committed state is
	// mirrored to real fsynced files in that directory, and Open recovers
	// whatever a previous process (even one killed mid-commit) durably
	// committed there — replaying the write-ahead log past the last
	// checkpoint. Empty (the default) keeps everything in memory; the WAL
	// still runs (transactions work identically) but nothing survives the
	// process. Statistics are not persisted: run ANALYZE after reopening if
	// the optimizer should see fresh cardinalities.
	Dir string
	// WALSegmentBlocks sizes write-ahead-log segments, in disk blocks
	// (0 = 256). Smaller segments checkpoint-truncate sooner; tests use
	// small values to exercise rotation.
	WALSegmentBlocks int
}

// DB is an embedded QPipe database: storage manager plus engine.
type DB struct {
	mgr     *sm.Manager
	eng     *Engine
	stats   *stats.Registry
	noOpt   bool
	durable bool
}

// Open creates a database and starts its engine: a fresh in-memory one by
// default, or — with Options.Dir set — a durable one recovered from that
// directory's files and write-ahead log.
func Open(opts Options) (*DB, error) {
	poolPages := opts.PoolPages
	if poolPages <= 0 {
		poolPages = 1024
	}
	cfg := DefaultConfig()
	if opts.DisableOSP {
		cfg = BaselineConfig()
	}
	if opts.ScanParallelism != 0 {
		cfg.ScanParallelism = opts.ScanParallelism
	}
	if opts.BatchSize != 0 {
		cfg.BatchSize = opts.BatchSize
	}
	if opts.BufferCapacity != 0 {
		cfg.BufferCapacity = opts.BufferCapacity
	}
	if opts.ReplayWindow != 0 {
		cfg.ReplayWindow = opts.ReplayWindow
	}
	if opts.WorkersPerEngine != 0 {
		cfg.WorkersPerEngine = opts.WorkersPerEngine
	}
	if opts.MaxConcurrentQueries != 0 {
		cfg.MaxConcurrentQueries = opts.MaxConcurrentQueries
	}
	if opts.AdmissionQueue != 0 {
		cfg.AdmissionQueue = opts.AdmissionQueue
	}
	if opts.DrainTimeout != 0 {
		cfg.DrainTimeout = opts.DrainTimeout
	}
	var mgr *sm.Manager
	if opts.Dir != "" {
		d, err := disk.Open(disk.Config{BlockSize: opts.BlockSize, BackingDir: opts.Dir})
		if err != nil {
			return nil, err
		}
		mgr = sm.NewSharedDisk(d, poolPages, nil)
	} else {
		mgr = sm.New(sm.Config{Disk: disk.Config{BlockSize: opts.BlockSize}, PoolPages: poolPages})
	}
	l, err := wal.Open(mgr.Disk, wal.Options{SegmentBlocks: opts.WALSegmentBlocks})
	if err != nil {
		return nil, err
	}
	mgr.EnableWAL(l)
	reg := stats.NewRegistry()
	if opts.Dir != "" {
		if err := mgr.Recover(); err != nil {
			return nil, fmt.Errorf("qpipe: recovering %q: %w", opts.Dir, err)
		}
		// Recovered tables get empty stats (persisting them is out of scope);
		// ANALYZE refreshes the optimizer's view.
		for _, name := range mgr.Tables() {
			if t, err := mgr.Table(name); err == nil {
				reg.Create(name, t.Schema.Len())
			}
		}
	}
	eng := New(mgr, cfg)
	if opts.ResultCacheTuples > 0 {
		eng.EnableResultCache(opts.ResultCacheTuples, opts.ResultCacheMaxEntry)
	}
	return &DB{mgr: mgr, eng: eng, stats: reg,
		noOpt: opts.DisableOptimizer, durable: opts.Dir != ""}, nil
}

// Close shuts the engine down gracefully: new queries are rejected with
// ErrClosed immediately, in-flight ones get up to Options.DrainTimeout to
// finish, and stragglers are then cancelled. A durable database is
// checkpointed on the way out (best-effort — an unclean exit recovers from
// the WAL anyway).
func (db *DB) Close() {
	db.eng.Close()
	if db.durable {
		_ = db.mgr.Checkpoint()
	}
}

// Checkpoint flushes all committed state to the durable store and truncates
// the write-ahead log: recovery after a crash replays only what committed
// since. It waits for in-flight commits to complete. Only meaningful on a
// durable database (Options.Dir), but harmless on an in-memory one.
func (db *DB) Checkpoint() error { return db.mgr.Checkpoint() }

// Engine exposes the underlying engine for advanced callers (precompiled
// plans, harnesses). Everyday embedders never need it.
func (db *DB) Engine() *Engine { return db.eng }

// ---- Catalog / DDL -----------------------------------------------------------

// CreateTable registers a new table. Column names must be unique.
func (db *DB) CreateTable(name string, schema *Schema) error {
	seen := make(map[string]bool, schema.Len())
	for _, c := range schema.Cols {
		if seen[c.Name] {
			return &DuplicateColumnError{Column: c.Name}
		}
		seen[c.Name] = true
	}
	_, err := db.mgr.CreateTable(name, schema)
	if err == nil {
		db.stats.Create(name, schema.Len())
	}
	return err
}

// CreateIndex builds a B+tree index on a column: clustered (full rows in
// key order — one per table) or unclustered (key → row id). Build indexes
// after Load: they snapshot the table's current contents.
func (db *DB) CreateIndex(table, col string, clustered bool) error {
	t, err := db.mgr.Table(table)
	if err != nil {
		return &UnknownTableError{Table: table}
	}
	if t.Schema.ColIndex(col) < 0 {
		return &UnknownColumnError{Column: col, Schema: t.Schema.String()}
	}
	if clustered {
		return db.mgr.BuildClustered(table, col)
	}
	return db.mgr.BuildUnclustered(table, col)
}

// checkRows validates rows against a table schema (arity and kinds).
func checkRows(table string, s *Schema, rows []Row) error {
	for _, r := range rows {
		if len(r) != s.Len() {
			return fmt.Errorf("qpipe: row arity %d does not match %s's %d columns", len(r), table, s.Len())
		}
		for i, v := range r {
			if v.K != s.Cols[i].Kind {
				return &TypeMismatchError{
					Expr: fmt.Sprintf("%s.%s", table, s.Cols[i].Name),
					Left: s.Cols[i].Kind, Right: v.K}
			}
		}
	}
	return nil
}

// Load bulk-appends rows into a table as one committed transaction. It
// takes the table's exclusive lock, so it is safe on a live database —
// concurrent readers see either none or all of the rows — but Insert is
// the better fit for small concurrent writes. Rows are validated against
// the schema. Cached results over the table are invalidated.
func (db *DB) Load(table string, rows []Row) error {
	t, err := db.mgr.Table(table)
	if err != nil {
		return &UnknownTableError{Table: table}
	}
	if err := checkRows(table, t.Schema, rows); err != nil {
		return err
	}
	if err := db.mgr.Load(table, rows); err != nil {
		return err
	}
	db.stats.Add(table, rows)
	if db.eng.cache != nil {
		db.eng.cache.InvalidateTable(table)
	}
	return nil
}

// Insert appends rows through the update µEngine: it serializes against
// concurrent readers via the lock manager, maintains unclustered indexes,
// and invalidates cached results over the table.
func (db *DB) Insert(ctx context.Context, table string, rows ...Row) error {
	t, err := db.mgr.Table(table)
	if err != nil {
		return &UnknownTableError{Table: table}
	}
	if err := checkRows(table, t.Schema, rows); err != nil {
		return err
	}
	res, err := db.eng.Query(ctx, plan.NewUpdate(table, rows))
	if err != nil {
		return err
	}
	if _, err := res.Discard(); err != nil {
		return err
	}
	db.stats.Add(table, rows)
	if db.eng.cache != nil {
		db.eng.cache.InvalidateTable(table)
	}
	return nil
}

// Schema returns a table's schema.
func (db *DB) Schema(table string) (*Schema, error) {
	t, err := db.mgr.Table(table)
	if err != nil {
		return nil, &UnknownTableError{Table: table}
	}
	return t.Schema, nil
}

// Tables returns the catalog's table names, sorted.
func (db *DB) Tables() []string { return db.mgr.Tables() }

// TablePages returns the number of heap pages a table occupies.
func (db *DB) TablePages(table string) (int64, error) {
	t, err := db.mgr.Table(table)
	if err != nil {
		return 0, &UnknownTableError{Table: table}
	}
	return t.Heap.NumPages(), nil
}

// ---- Execution ---------------------------------------------------------------

// run executes a compiled plan with resolved options (the builder's Run and
// RunBatch funnel here).
func (db *DB) run(ctx context.Context, p plan.Node, limit int64, opts []QueryOption) (*Result, error) {
	o, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	if o.useCache {
		if db.eng.cache == nil {
			return nil, &OptionError{Option: "WithResultCache",
				Reason: "no result cache configured (set Options.ResultCacheTuples at Open)"}
		}
		if limit >= 0 {
			return nil, &OptionError{Option: "WithResultCache",
				Reason: "conflicts with Limit: the cache stores complete results"}
		}
		rows, hit, err := db.eng.queryCached(ctx, p, o.core)
		if err != nil {
			return nil, err
		}
		return newCachedResult(rows, p.Schema(), hit), nil
	}
	q, err := db.eng.rt.SubmitOpts(ctx, p, o.core)
	if err != nil {
		return nil, err
	}
	return newStreamResult(q, p.Schema(), limit), nil
}

// RunBatch submits several built queries together — the multi-query-
// optimizer entry point (§2.4): common subtrees across the batch carry
// identical signatures, so OSP shares them at the µEngines, pipelining each
// shared intermediate result to all consumers. The options apply to every
// member. If any member fails to submit, the already-submitted ones are
// cancelled and drained, and the typed *BatchError reports the failure.
func (db *DB) RunBatch(ctx context.Context, queries []*Query, opts ...QueryOption) ([]*Result, error) {
	o, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	if o.useCache {
		return nil, &OptionError{Option: "WithResultCache", Reason: "batches are not cacheable"}
	}
	out := make([]*Result, 0, len(queries))
	for i, q := range queries {
		err := q.err
		if err == nil && q.db != db {
			// A query resolved against another DB's catalog carries that
			// catalog's positional indexes — running it here would read the
			// wrong columns silently.
			err = fmt.Errorf("qpipe: batch member %d was built on a different DB", i)
		}
		var res *Result
		if err == nil {
			var p plan.Node
			p, err = q.Plan()
			if err == nil {
				var sq *core.Query
				sq, err = db.eng.rt.SubmitOpts(ctx, p, o.core)
				if err == nil {
					res = newStreamResult(sq, p.Schema(), q.limit)
				}
			}
		}
		if err != nil {
			return nil, teardownBatch(out, i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ---- Instrumentation ---------------------------------------------------------

// Stats snapshots the engine's runtime counters (queries admitted, OSP
// shares per µEngine, deadlocks resolved).
func (db *DB) Stats() Stats { return db.eng.Stats() }

// TotalShares sums OSP sharing events across all µEngines.
func (db *DB) TotalShares() int64 { return db.eng.rt.TotalShares() }

// CacheStats snapshots the result-cache counters (zero value when the cache
// is disabled).
func (db *DB) CacheStats() CacheStats { return db.eng.CacheStats() }

// SetDiskLatency configures the simulated disk's per-block latencies
// (sequential read, random read, write). Zero disables the simulation;
// non-zero values make I/O-bound sharing effects visible in wall time.
func (db *DB) SetDiskLatency(seqRead, randRead, write time.Duration) {
	db.mgr.Disk.SetLatency(seqRead, randRead, write)
}

// DiskStats snapshots the simulated disk's I/O counters.
func (db *DB) DiskStats() DiskStats { return db.mgr.Disk.Stats() }

// ResetDiskStats zeroes the disk counters (before a measured run).
func (db *DB) ResetDiskStats() { db.mgr.Disk.ResetStats() }

// DropCaches empties the buffer pool (writing back dirty pages), so the
// next run starts cold — the knob experiments use between measured runs.
func (db *DB) DropCaches() error { return db.mgr.Pool.Invalidate() }

// compile-time check: public Row/Value stay aliases of the storage model.
var _ Row = tuple.Tuple{}
