// SQL execution: the planner that lowers qpipe/sql ASTs onto the
// schema-aware builder, and the DB entry points Query, Exec and Prepare.
//
// The lowering is deliberately thin — every SQL SELECT becomes exactly the
// plan the equivalent fluent-builder chain would produce (Scan → Join* →
// Filter → GroupBy/Aggregate → Project → Sort, with Limit at result level),
// so EXPLAIN over SQL and Explain on a builder query print the same tree,
// and OSP sees identical signatures for identical queries regardless of
// which front end posed them. Semantic mistakes surface as the same typed
// errors the builder returns (UnknownTableError, UnknownColumnError,
// TypeMismatchError, ...); syntax mistakes are position-annotated
// *sql.ParseError values.
package qpipe

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/sql"
)

// ---- Public entry points -----------------------------------------------------

// Query parses and executes one SQL statement that produces rows: a SELECT
// (returning its streaming Result) or an EXPLAIN (returning the lowered
// physical plan as rows of a single "plan" text column, annotated with any
// non-default per-query options). Other statements are a *StatementError —
// use Exec for DDL and INSERT. The per-query options apply exactly as on
// Query.Run.
func (db *DB) Query(ctx context.Context, text string, opts ...QueryOption) (*Result, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.Select:
		q, err := db.compileSelect(s)
		if err != nil {
			return nil, err
		}
		return q.Run(ctx, opts...)
	case *sql.Explain:
		return db.explainSelect(s.Stmt, opts)
	case *sql.Set:
		return nil, &StatementError{Stmt: "SET",
			Reason: "session statement — apply it to a qpipe.Session (the shell does this)"}
	default:
		return nil, &StatementError{Stmt: statementName(stmt),
			Reason: "does not return rows; use Exec"}
	}
}

// Exec parses and executes a SQL script of statements that do not return
// rows: CREATE TABLE, CREATE INDEX, INSERT ... VALUES, UPDATE, DELETE and
// ANALYZE (';'-separated; a single statement is a script of one). It
// returns the total number of rows affected. Each mutation autocommits;
// for multi-statement transactions use db.Begin or ExecSession.
// SELECT/EXPLAIN are a *StatementError (use Query), as are SET and
// BEGIN/COMMIT/ROLLBACK (session statements belong to a qpipe.Session).
func (db *DB) Exec(ctx context.Context, text string) (int64, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, stmt := range stmts {
		n, err := db.execStmt(ctx, stmt)
		if err != nil {
			return affected, err
		}
		affected += n
	}
	return affected, nil
}

// Prepare parses a SQL SELECT and compiles it to a reusable builder Query —
// the same immutable value a fluent chain produces, so it can be Run many
// times, Explain-ed, or combined into RunBatch with builder-built queries.
func (db *DB) Prepare(text string) (*Query, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, &StatementError{Stmt: statementName(stmt), Reason: "only SELECT can be prepared"}
	}
	return db.compileSelect(sel)
}

// explainSelect compiles the SELECT and materializes its plan text (plus an
// options annotation) as a one-column result.
func (db *DB) explainSelect(sel *sql.Select, opts []QueryOption) (*Result, error) {
	q, err := db.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	text, err := q.Explain()
	if err != nil {
		return nil, err
	}
	o, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if ann := annotateOpts(o); ann != "" {
		lines = append(lines, ann)
	}
	if q.limit >= 0 {
		lines = append(lines, fmt.Sprintf("limit: %d (result-level)", q.limit))
	}
	rows := make([]Row, len(lines))
	for i, l := range lines {
		rows[i] = Row{StringValue(l)}
	}
	schema := NewSchema(ColDef("plan", KindString))
	return newCachedResult(rows, schema, false), nil
}

// annotateOpts renders the non-default per-query options an EXPLAIN ran
// with, so the printed plan states how it would execute.
func annotateOpts(o queryOpts) string {
	var parts []string
	if o.core.Parallelism > 0 {
		parts = append(parts, fmt.Sprintf("parallelism=%d", o.core.Parallelism))
	}
	if o.core.BatchSize > 0 {
		parts = append(parts, fmt.Sprintf("batch_size=%d", o.core.BatchSize))
	}
	if o.core.DisableOSP {
		parts = append(parts, "osp=off")
	}
	if o.useCache {
		parts = append(parts, "result_cache=on")
	}
	if len(parts) == 0 {
		return ""
	}
	return "options: " + strings.Join(parts, " ")
}

func statementName(stmt sql.Statement) string {
	switch stmt.(type) {
	case *sql.Select:
		return "SELECT"
	case *sql.Explain:
		return "EXPLAIN"
	case *sql.CreateTable:
		return "CREATE TABLE"
	case *sql.CreateIndex:
		return "CREATE INDEX"
	case *sql.Insert:
		return "INSERT"
	case *sql.Analyze:
		return "ANALYZE"
	case *sql.Set:
		return "SET"
	case *sql.Update:
		return "UPDATE"
	case *sql.Delete:
		return "DELETE"
	case *sql.Begin:
		return "BEGIN"
	case *sql.Commit:
		return "COMMIT"
	case *sql.Rollback:
		return "ROLLBACK"
	default:
		return "statement"
	}
}

// ---- DDL / DML execution -----------------------------------------------------

func (db *DB) execStmt(ctx context.Context, stmt sql.Statement) (int64, error) {
	switch s := stmt.(type) {
	case *sql.CreateTable:
		cols := make([]Column, len(s.Cols))
		for i, c := range s.Cols {
			cols[i] = ColDef(c.Name, sqlKind(c.Type))
		}
		return 0, db.CreateTable(s.Name, NewSchema(cols...))
	case *sql.CreateIndex:
		return 0, db.CreateIndex(s.Table, s.Column, s.Clustered)
	case *sql.Insert:
		return db.execInsert(ctx, s)
	case *sql.Analyze:
		return 0, db.Analyze(s.Table)
	case *sql.Update:
		node, err := db.compileUpdate(s)
		if err != nil {
			return 0, err
		}
		return db.execMutation(ctx, node)
	case *sql.Delete:
		node, err := db.compileDelete(s)
		if err != nil {
			return 0, err
		}
		return db.execMutation(ctx, node)
	case *sql.Set:
		return 0, &StatementError{Stmt: "SET",
			Reason: "session statement — apply it to a qpipe.Session (the shell does this)"}
	case *sql.Begin, *sql.Commit, *sql.Rollback:
		return 0, &StatementError{Stmt: statementName(stmt),
			Reason: "transaction statement — use db.Begin, or ExecSession with a qpipe.Session"}
	default:
		return 0, &StatementError{Stmt: statementName(stmt), Reason: "returns rows; use Query"}
	}
}

// ---- UPDATE / DELETE lowering --------------------------------------------------

// mutationScope opens a single-table scope for UPDATE/DELETE lowering.
func (db *DB) mutationScope(table string) (*sqlScope, *Schema, error) {
	schema, err := db.Schema(table)
	if err != nil {
		return nil, nil, err
	}
	scope := &sqlScope{entries: []scopeEntry{{qual: table, table: table, schema: schema}}}
	return scope, schema, nil
}

// lowerWhere lowers an optional WHERE predicate to a positional expr.Pred
// over the table schema (nil = all rows).
func lowerWhere(scope *sqlScope, schema *Schema, w sql.Pred) (expr.Pred, error) {
	if w == nil {
		return nil, nil
	}
	p, err := lowerPred(scope, w)
	if err != nil {
		return nil, err
	}
	return p.resolve(schema)
}

// compileUpdate lowers UPDATE t SET ... WHERE ... to a mutation plan node.
// Assignment expressions are evaluated against the pre-update row (standard
// SQL swap semantics: UPDATE t SET a = b, b = a exchanges the columns).
func (db *DB) compileUpdate(u *sql.Update) (*plan.Update, error) {
	scope, schema, err := db.mutationScope(u.Table)
	if err != nil {
		return nil, err
	}
	where, err := lowerWhere(scope, schema, u.Where)
	if err != nil {
		return nil, err
	}
	set := make([]plan.Assign, 0, len(u.Set))
	seen := make(map[int]bool, len(u.Set))
	for _, a := range u.Set {
		ix := schema.ColIndex(a.Column)
		if ix < 0 {
			return nil, &UnknownColumnError{Column: a.Column, Schema: schema.String()}
		}
		if seen[ix] {
			return nil, &DuplicateColumnError{Column: a.Column}
		}
		seen[ix] = true
		fe, err := lowerExpr(scope, a.Value)
		if err != nil {
			return nil, err
		}
		ee, kind, err := fe.resolve(schema)
		if err != nil {
			return nil, err
		}
		want := schema.Cols[ix].Kind
		if kind != want {
			// Literal constants widen losslessly (int into float/date
			// columns), mirroring INSERT; computed expressions must match.
			ee = widenConst(ee, want)
			if c, ok := ee.(*expr.Const); ok && c.V.K == want {
				kind = want
			}
		}
		if kind != want {
			return nil, &TypeMismatchError{Expr: u.Table + "." + a.Column, Left: want, Right: kind}
		}
		set = append(set, plan.Assign{Col: ix, E: ee})
	}
	return plan.NewUpdateWhere(u.Table, where, set), nil
}

// compileDelete lowers DELETE FROM t WHERE ... to a mutation plan node.
func (db *DB) compileDelete(d *sql.Delete) (*plan.Update, error) {
	scope, schema, err := db.mutationScope(d.Table)
	if err != nil {
		return nil, err
	}
	where, err := lowerWhere(scope, schema, d.Where)
	if err != nil {
		return nil, err
	}
	return plan.NewDelete(d.Table, where), nil
}

// execMutation runs an UPDATE/DELETE plan through the update µEngine (which
// wraps it in an autocommit transaction) and returns the affected-row count.
func (db *DB) execMutation(ctx context.Context, node *plan.Update) (int64, error) {
	res, err := db.eng.Query(ctx, node)
	if err != nil {
		return 0, err
	}
	rows, err := res.All()
	if err != nil {
		return 0, err
	}
	var n int64
	if len(rows) == 1 && len(rows[0]) == 1 {
		n = rows[0][0].I
	}
	db.invalidateTable(node.Table)
	return n, nil
}

// invalidateTable drops cached results over a mutated table.
func (db *DB) invalidateTable(table string) {
	if db.eng.cache != nil {
		db.eng.cache.InvalidateTable(table)
	}
}

// sqlKind maps a normalized SQL type name to a column kind.
func sqlKind(t string) Kind {
	switch t {
	case "INT":
		return KindInt
	case "FLOAT":
		return KindFloat
	case "DATE":
		return KindDate
	default: // "TEXT" — the parser only emits the four normalized names
		return KindString
	}
}

func (db *DB) execInsert(ctx context.Context, ins *sql.Insert) (int64, error) {
	schema, err := db.Schema(ins.Table)
	if err != nil {
		return 0, err
	}
	rows, err := buildInsertRows(schema, ins)
	if err != nil {
		return 0, err
	}
	if err := db.Insert(ctx, ins.Table, rows...); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// buildInsertRows materializes an INSERT's VALUES rows in schema order
// (shared by autocommit INSERT and INSERT inside an explicit transaction).
func buildInsertRows(schema *Schema, ins *sql.Insert) ([]Row, error) {
	// Column list: a reordering of the full schema (there are no NULLs, so
	// every column must be provided).
	perm := make([]int, schema.Len()) // row position -> schema position
	if ins.Columns == nil {
		for i := range perm {
			perm[i] = i
		}
	} else {
		if len(ins.Columns) != schema.Len() {
			return nil, &StatementError{Stmt: "INSERT", Reason: fmt.Sprintf(
				"%d columns named but %s has %d (every column must be provided; there are no NULLs)",
				len(ins.Columns), ins.Table, schema.Len())}
		}
		seen := make(map[string]bool, len(ins.Columns))
		for i, name := range ins.Columns {
			ix := schema.ColIndex(name)
			if ix < 0 {
				return nil, &UnknownColumnError{Column: name, Schema: schema.String()}
			}
			if seen[name] {
				return nil, &DuplicateColumnError{Column: name}
			}
			seen[name] = true
			perm[i] = ix
		}
	}
	rows := make([]Row, len(ins.Rows))
	for i, vals := range ins.Rows {
		if len(vals) != schema.Len() {
			return nil, &StatementError{Stmt: "INSERT", Reason: fmt.Sprintf(
				"VALUES row has %d values but %s has %d columns", len(vals), ins.Table, schema.Len())}
		}
		row := make(Row, schema.Len())
		for j, lit := range vals {
			col := schema.Cols[perm[j]]
			v, ok := litValue(lit)
			if !ok { // unreachable: the parser restricts INSERT rows to literals
				return nil, &StatementError{Stmt: "INSERT", Reason: "VALUES must be literals"}
			}
			cv, err := coerceValue(v, col.Kind, ins.Table+"."+col.Name)
			if err != nil {
				return nil, err
			}
			row[perm[j]] = cv
		}
		rows[i] = row
	}
	return rows, nil
}

// coerceValue widens a literal to the column kind where lossless (int
// literals into float and date columns); anything else mismatched is a
// typed error.
func coerceValue(v Value, want Kind, where string) (Value, error) {
	if v.K == want {
		return v, nil
	}
	if v.K == KindInt && want == KindFloat {
		return FloatValue(float64(v.I)), nil
	}
	if v.K == KindInt && want == KindDate {
		return DateValue(v.I), nil
	}
	return Value{}, &TypeMismatchError{Expr: where, Left: want, Right: v.K}
}

// ---- Scope: qualified-name resolution ----------------------------------------

// sqlScope maps FROM-clause tables (and aliases) to their schemas, and
// resolves column references to the bare names the builder consumes. The
// builder resolves bare names leftmost-first over the concatenated join
// schema, so the scope's job is to prove a reference is unambiguous under
// that rule — or return a typed error saying why not.
type sqlScope struct {
	entries []scopeEntry
}

type scopeEntry struct {
	qual   string // alias if given, else the table name
	table  string
	schema *Schema
}

func (sc *sqlScope) add(e scopeEntry) error {
	for _, x := range sc.entries {
		if x.qual == e.qual {
			return &StatementError{Stmt: "SELECT",
				Reason: fmt.Sprintf("duplicate table name/alias %q in FROM (alias one of them)", e.qual)}
		}
	}
	sc.entries = append(sc.entries, e)
	return nil
}

// joinedSchema renders the concatenation of all entries (for error text).
func (sc *sqlScope) joinedSchema() string {
	parts := make([]string, len(sc.entries))
	for i, e := range sc.entries {
		parts[i] = e.schema.String()
	}
	return strings.Join(parts, "+")
}

// owners returns the qualifiers of every entry whose schema has the column.
func (sc *sqlScope) owners(name string) []string {
	var out []string
	for _, e := range sc.entries {
		if e.schema.ColIndex(name) >= 0 {
			out = append(out, e.qual)
		}
	}
	return out
}

// resolve checks a column reference and returns the bare name the builder
// should use. entryOf additionally reports which entry owns it (-1 when the
// scope has been collapsed past the FROM tables).
func (sc *sqlScope) resolve(ref *sql.ColumnRef) (string, error) {
	_, err := sc.entryOf(ref)
	return ref.Name, err
}

func (sc *sqlScope) entryOf(ref *sql.ColumnRef) (int, error) {
	return sc.entryOfIn(ref, 0, len(sc.entries))
}

// entryOfIn resolves a reference against the entry subrange [lo, hi). The
// ambiguity rules apply within that range only: join-key extraction uses
// narrow ranges because a hash join resolves its left key against the
// accumulated left schema and its right key against the right scan alone.
func (sc *sqlScope) entryOfIn(ref *sql.ColumnRef, lo, hi int) (int, error) {
	sub := sc.entries[lo:hi]
	if ref.Table != "" {
		for i, e := range sub {
			if e.qual != ref.Table {
				continue
			}
			if e.schema.ColIndex(ref.Name) < 0 {
				return 0, &UnknownColumnError{Column: ref.Name, Schema: e.schema.String()}
			}
			// The builder resolves the bare name leftmost-first within the
			// range: the reference is faithful only if no earlier table in
			// the range owns the name.
			for _, prev := range sub[:i] {
				if prev.schema.ColIndex(ref.Name) >= 0 {
					return 0, &AmbiguousColumnError{Column: ref.Name, Tables: sc.owners(ref.Name)}
				}
			}
			return lo + i, nil
		}
		return 0, &UnknownTableError{Table: ref.Table}
	}
	var owners []string
	at := -1
	for i, e := range sub {
		if e.schema.ColIndex(ref.Name) >= 0 {
			owners = append(owners, e.qual)
			if at < 0 {
				at = lo + i
			}
		}
	}
	switch len(owners) {
	case 0:
		return 0, &UnknownColumnError{Column: ref.Name, Schema: sc.joinedSchema()}
	case 1:
		return at, nil
	default:
		return 0, &AmbiguousColumnError{Column: ref.Name, Tables: owners}
	}
}

// ---- SELECT lowering ---------------------------------------------------------

// compileSelect plans one SELECT: the cost-based phase first (reorderSelect
// rewrites the FROM list by estimated cardinality, so smaller inputs become
// hash-join build sides and equivalent queries converge on one join shape),
// then lowering onto the builder. Reordering is best-effort — when the
// rewritten form fails to lower (e.g. a qualified reference the new table
// order shadows), planning falls back to the query exactly as written, so
// the optimizer can never reject a query the unoptimized path accepts.
func (db *DB) compileSelect(sel *sql.Select) (*Query, error) {
	if !db.noOpt {
		if re := db.reorderSelect(sel); re != nil {
			if q, err := db.lowerSelect(re); err == nil {
				return q, nil
			}
		}
	}
	return db.lowerSelect(sel)
}

// lowerSelect lowers one SELECT onto the builder in written order.
func (db *DB) lowerSelect(sel *sql.Select) (*Query, error) {
	// 1. FROM: open the scope and scan the first table.
	scope := &sqlScope{}
	addTable := func(ref sql.TableRef) error {
		schema, err := db.Schema(ref.Table)
		if err != nil {
			return err
		}
		qual := ref.Alias
		if qual == "" {
			qual = ref.Table
		}
		return scope.add(scopeEntry{qual: qual, table: ref.Table, schema: schema})
	}
	if err := addTable(sel.From); err != nil {
		return nil, err
	}
	q := db.Scan(sel.From.Table)

	// 2. Joins. WHERE splits into conjuncts up front: comma-syntax joins
	// consume their equality conjuncts as hash-join keys, and whatever
	// remains becomes the post-join filter.
	where := splitConjuncts(sel.Where)
	var residual []sql.Pred // ON conjuncts beyond the hash-join equality
	for _, j := range sel.Joins {
		leftEnd := len(scope.entries)
		if err := addTable(j.Ref); err != nil {
			return nil, err
		}
		right := db.Scan(j.Ref.Table)
		if j.On != nil {
			conj := splitConjuncts(j.On)
			lc, rc, rest, err := scope.extractEquiKey(conj, leftEnd)
			if err != nil {
				return nil, err
			}
			if lc != "" {
				q = q.Join(right, lc, rc)
				residual = append(residual, rest...)
			} else {
				// No usable equality: lower the whole ON as a nested-loop
				// join predicate over the concatenated schema.
				on, err := lowerPred(scope, j.On)
				if err != nil {
					return nil, err
				}
				q = q.JoinOn(right, on)
			}
		} else {
			lc, rc, rest, err := scope.extractEquiKey(where, leftEnd)
			if err != nil {
				return nil, err
			}
			where = rest
			if lc != "" {
				q = q.Join(right, lc, rc)
			} else {
				// Cross join: nested loops with an always-true predicate.
				q = q.JoinOn(right, And())
			}
		}
	}

	// 3. Filter: remaining WHERE conjuncts plus ON residuals.
	filters := append(residual, where...)
	if len(filters) > 0 {
		p, err := lowerConjuncts(scope, filters)
		if err != nil {
			return nil, err
		}
		q = q.Filter(p)
	}

	// 4. Grouping and aggregation.
	grouped := len(sel.GroupBy) > 0
	hasAgg := grouped
	for _, it := range sel.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	// 4b/5. Grouping or projection, with ORDER BY placed where its columns
	// live: after the output stage when it names output columns, before a
	// plain projection when it names FROM columns the projection drops
	// (ORDER BY may reference underlying columns; a Project is serial and
	// order-preserving, so sorting first is equivalent).
	sortCols := make([]string, len(sel.OrderBy))
	for i, k := range sel.OrderBy {
		if k.Col.Table != "" {
			if _, err := scope.resolve(&k.Col); err != nil {
				return nil, err
			}
		}
		sortCols[i] = k.Col.Name
	}
	sort := func(q *Query) *Query {
		if len(sortCols) == 0 {
			return q
		}
		if sel.OrderBy[0].Desc {
			return q.SortDesc(sortCols...)
		}
		return q.Sort(sortCols...)
	}
	allIn := func(s *Schema, cols []string) bool {
		if s == nil {
			return false
		}
		for _, c := range cols {
			if s.ColIndex(c) < 0 {
				return false
			}
		}
		return true
	}
	var err error
	if hasAgg {
		// Aggregation collapses the scope: ORDER BY sees the grouped (and
		// possibly projected) output columns only.
		q, err = lowerAggregate(scope, q, sel)
		if err != nil {
			return nil, err
		}
		q = sort(q)
	} else {
		pre := q
		q, err = lowerProjection(scope, q, sel.Items)
		if err != nil {
			return nil, err
		}
		switch {
		case len(sortCols) == 0 || allIn(q.Schema(), sortCols):
			q = sort(q)
		case allIn(pre.Schema(), sortCols):
			q, err = lowerProjection(scope, sort(pre), sel.Items)
			if err != nil {
				return nil, err
			}
		default:
			q = sort(q) // let the builder report the unknown column
		}
	}
	if sel.Limit >= 0 {
		q = q.Limit(sel.Limit)
	}
	return q, nil
}

// splitConjuncts flattens a predicate into its top-level AND conjuncts.
func splitConjuncts(p sql.Pred) []sql.Pred {
	if p == nil {
		return nil
	}
	if and, ok := p.(*sql.And); ok {
		return and.Ps
	}
	return []sql.Pred{p}
}

// extractEquiKey finds the first conjunct of the form L = R where one side
// is a column of the accumulated left tables (scope entries below leftEnd)
// and the other a column of the just-added right table. It returns the two
// bare column names and the remaining conjuncts, or empty names when no
// such conjunct exists. Conjuncts mentioning tables beyond the current
// scope prefix are left untouched.
func (sc *sqlScope) extractEquiKey(conj []sql.Pred, leftEnd int) (lc, rc string, rest []sql.Pred, err error) {
	// keySide resolves one side of a candidate equality the way the builder
	// will: against the accumulated left prefix, or against the right scan
	// alone. ok=false defers the conjunct to the post-join residue (where
	// full-scope resolution reports any real error).
	keySide := func(ref *sql.ColumnRef) (left bool, ok bool) {
		if _, err := sc.entryOfIn(ref, 0, leftEnd); err == nil {
			return true, true
		}
		if _, err := sc.entryOfIn(ref, leftEnd, leftEnd+1); err == nil {
			return false, true
		}
		return false, false
	}
	found := false
	for _, p := range conj {
		if !found {
			cmp, ok := p.(*sql.Compare)
			if ok && cmp.Op == "=" {
				lref, lok := cmp.L.(*sql.ColumnRef)
				rref, rok := cmp.R.(*sql.ColumnRef)
				if lok && rok {
					lLeft, lOK := keySide(lref)
					rLeft, rOK := keySide(rref)
					if lOK && rOK && lLeft != rLeft {
						if lLeft {
							lc, rc = lref.Name, rref.Name
						} else {
							lc, rc = rref.Name, lref.Name
						}
						found = true
						continue
					}
				}
			}
		}
		rest = append(rest, p)
	}
	return lc, rc, rest, nil
}

// ---- Aggregation lowering ----------------------------------------------------

// aggInfo is one distinct aggregate call found in the SELECT list.
type aggInfo struct {
	call *sql.AggCall
	name string // output column name in the GroupBy/Aggregate schema
}

func containsAgg(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.AggCall:
		return true
	case *sql.BinaryExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	}
	return false
}

// lowerAggregate lowers a grouped or scalar-aggregate SELECT. The fast path
// — every item a bare group key (in GROUP BY order, all keys, before any
// aggregate) or a bare aggregate call — maps directly onto
// GroupBy/Aggregate, matching what a builder user would write. Anything
// fancier (reordered keys, expressions over aggregates) gets a final
// Project over the grouped schema.
func lowerAggregate(scope *sqlScope, q *Query, sel *sql.Select) (*Query, error) {
	// Group keys, resolved through the scope.
	keys := make([]string, len(sel.GroupBy))
	keySet := make(map[string]bool, len(sel.GroupBy))
	for i := range sel.GroupBy {
		name, err := scope.resolve(&sel.GroupBy[i])
		if err != nil {
			return nil, err
		}
		keys[i] = name
		keySet[name] = true
	}

	// Collect distinct aggregate calls across the select list.
	var aggs []aggInfo
	aggByCanon := make(map[string]int)
	collect := func(e sql.Expr) {
		var walk func(e sql.Expr)
		walk = func(e sql.Expr) {
			switch x := e.(type) {
			case *sql.AggCall:
				canon := x.String()
				if _, ok := aggByCanon[canon]; !ok {
					aggByCanon[canon] = len(aggs)
					aggs = append(aggs, aggInfo{call: x, name: canon})
				}
			case *sql.BinaryExpr:
				walk(x.L)
				walk(x.R)
			}
		}
		walk(e)
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, &StatementError{Stmt: "SELECT",
				Reason: "* cannot be combined with GROUP BY or aggregates"}
		}
		collect(it.Expr)
	}

	// Fast path: items are exactly [group keys in order..., bare aggregates...].
	if simple, out, err := trySimpleAggShape(scope, q, sel, keys); err != nil || simple {
		return out, err
	}

	// General shape: group with internally-named aggregates, then project
	// the select items over the grouped schema (aggregate calls replaced by
	// references to their internal columns, qualified key references
	// rewritten to bare names).
	specs := make([]Agg, len(aggs))
	for i, a := range aggs {
		spec, err := lowerAgg(scope, a.call)
		if err != nil {
			return nil, err
		}
		specs[i] = spec.As(a.name)
	}
	if len(sel.GroupBy) > 0 {
		q = q.GroupBy(keys, specs...)
	} else {
		q = q.Aggregate(specs...)
	}

	// Project select items against the grouped output schema.
	groupedScope := &sqlScope{}
	items := make([]Expr, len(sel.Items))
	outSchema := q.Schema()
	if outSchema != nil {
		groupedScope.entries = []scopeEntry{{qual: "", schema: outSchema}}
	}
	for i, it := range sel.Items {
		rewritten := rewriteAggRefs(it.Expr, aggByCanon, aggs, scope, keySet)
		e, err := lowerExpr(groupedScope, rewritten)
		if err != nil {
			return nil, err
		}
		if it.Alias != "" {
			e = e.As(it.Alias)
		} else if name := outputName(it.Expr); name != "" {
			e = e.As(name)
		}
		items[i] = e
	}
	return q.Project(items...), nil
}

// trySimpleAggShape recognizes the direct GroupBy/Aggregate shape and emits
// it without a trailing Project. simple=false means the caller should fall
// back to the general lowering.
func trySimpleAggShape(scope *sqlScope, q *Query, sel *sql.Select, keys []string) (bool, *Query, error) {
	nk := len(keys)
	if len(sel.Items) < nk {
		return false, nil, nil
	}
	for i := 0; i < nk; i++ {
		it := sel.Items[i]
		if it.Alias != "" {
			return false, nil, nil
		}
		ref, ok := it.Expr.(*sql.ColumnRef)
		if !ok {
			return false, nil, nil
		}
		name, err := scope.resolve(ref)
		if err != nil || name != keys[i] {
			return false, nil, nil
		}
	}
	specs := make([]Agg, 0, len(sel.Items)-nk)
	for _, it := range sel.Items[nk:] {
		call, ok := it.Expr.(*sql.AggCall)
		if !ok {
			return false, nil, nil
		}
		spec, err := lowerAgg(scope, call)
		if err != nil {
			return false, nil, err
		}
		name := it.Alias
		if name == "" {
			name = call.String()
		}
		specs = append(specs, spec.As(name))
	}
	if nk > 0 {
		return true, q.GroupBy(keys, specs...), nil
	}
	return true, q.Aggregate(specs...), nil
}

// lowerAgg lowers one aggregate call to a builder Agg (unnamed; the caller
// applies As). COUNT(expr) lowers to COUNT(*) — there are no NULLs, so the
// counts are identical.
func lowerAgg(scope *sqlScope, call *sql.AggCall) (Agg, error) {
	if call.Func == "count" {
		return Count(), nil
	}
	arg, err := lowerExpr(scope, call.Arg)
	if err != nil {
		return Agg{}, err
	}
	switch call.Func {
	case "sum":
		return Sum(arg), nil
	case "avg":
		return Avg(arg), nil
	case "min":
		return Min(arg), nil
	default: // "max" — the parser admits no other function names
		return Max(arg), nil
	}
}

// rewriteAggRefs replaces aggregate calls with references to their grouped
// output columns, and strips the table qualifier from any reference that
// resolves (in the FROM scope) to a group key — the grouped schema carries
// bare names only, however the key was spelled in GROUP BY.
func rewriteAggRefs(e sql.Expr, byCanon map[string]int, aggs []aggInfo, scope *sqlScope, keySet map[string]bool) sql.Expr {
	switch x := e.(type) {
	case *sql.AggCall:
		return &sql.ColumnRef{Name: aggs[byCanon[x.String()]].name}
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op,
			L: rewriteAggRefs(x.L, byCanon, aggs, scope, keySet),
			R: rewriteAggRefs(x.R, byCanon, aggs, scope, keySet)}
	case *sql.ColumnRef:
		if x.Table != "" && keySet[x.Name] {
			if _, err := scope.resolve(x); err == nil {
				return &sql.ColumnRef{Name: x.Name, Pos: x.Pos}
			}
		}
		return x
	default:
		return e
	}
}

// ---- Projection lowering -----------------------------------------------------

// lowerProjection lowers a non-aggregate select list. A lone '*' keeps the
// input schema (no Project node, like the builder).
func lowerProjection(scope *sqlScope, q *Query, items []sql.SelectItem) (*Query, error) {
	if len(items) == 1 && items[0].Star {
		return q, nil
	}
	exprs := make([]Expr, len(items))
	for i, it := range items {
		if it.Star {
			return nil, &StatementError{Stmt: "SELECT",
				Reason: "* cannot be combined with other select items"}
		}
		e, err := lowerExpr(scope, it.Expr)
		if err != nil {
			return nil, err
		}
		if it.Alias != "" {
			e = e.As(it.Alias)
		} else if name := outputName(it.Expr); name != "" {
			e = e.As(name)
		}
		exprs[i] = e
	}
	return q.Project(exprs...), nil
}

// outputName derives the default output column name of an unaliased item:
// the bare column name for references, nothing (positional fallback) for
// computed expressions.
func outputName(e sql.Expr) string {
	if ref, ok := e.(*sql.ColumnRef); ok {
		return ref.Name
	}
	if call, ok := e.(*sql.AggCall); ok {
		return call.String()
	}
	return ""
}

// ---- Expression / predicate lowering -----------------------------------------

// litValue extracts a literal's Value (ok=false for non-literals).
func litValue(e sql.Expr) (Value, bool) {
	switch x := e.(type) {
	case *sql.IntLit:
		return IntValue(x.V), true
	case *sql.FloatLit:
		return FloatValue(x.V), true
	case *sql.StringLit:
		return StringValue(x.V), true
	case *sql.DateLit:
		return DateValue(x.Days), true
	}
	return Value{}, false
}

func lowerExpr(scope *sqlScope, e sql.Expr) (Expr, error) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		name, err := scope.resolve(x)
		if err != nil {
			return Expr{}, err
		}
		return Col(name), nil
	case *sql.IntLit:
		return Int(x.V), nil
	case *sql.FloatLit:
		return Float(x.V), nil
	case *sql.StringLit:
		return String(x.V), nil
	case *sql.DateLit:
		return Date(x.Days), nil
	case *sql.BinaryExpr:
		l, err := lowerExpr(scope, x.L)
		if err != nil {
			return Expr{}, err
		}
		r, err := lowerExpr(scope, x.R)
		if err != nil {
			return Expr{}, err
		}
		switch x.Op {
		case '+':
			return l.Add(r), nil
		case '-':
			return l.Sub(r), nil
		case '*':
			return l.Mul(r), nil
		default:
			return l.Div(r), nil
		}
	case *sql.AggCall:
		return Expr{}, &StatementError{Stmt: "SELECT",
			Reason: fmt.Sprintf("aggregate %s is not valid here", x)}
	default:
		return Expr{}, &StatementError{Stmt: "SELECT", Reason: fmt.Sprintf("unsupported expression %s", e)}
	}
}

func lowerConjuncts(scope *sqlScope, ps []sql.Pred) (Pred, error) {
	if len(ps) == 1 {
		return lowerPred(scope, ps[0])
	}
	return lowerNary(scope, ps, And)
}

func lowerPred(scope *sqlScope, p sql.Pred) (Pred, error) {
	switch x := p.(type) {
	case *sql.Compare:
		l, err := lowerExpr(scope, x.L)
		if err != nil {
			return Pred{}, err
		}
		r, err := lowerExpr(scope, x.R)
		if err != nil {
			return Pred{}, err
		}
		switch x.Op {
		case "=":
			return l.Eq(r), nil
		case "<>":
			return l.Ne(r), nil
		case "<":
			return l.Lt(r), nil
		case "<=":
			return l.Le(r), nil
		case ">":
			return l.Gt(r), nil
		default: // ">="
			return l.Ge(r), nil
		}
	case *sql.And:
		return lowerNary(scope, x.Ps, And)
	case *sql.Or:
		return lowerNary(scope, x.Ps, Or)
	case *sql.Not:
		inner, err := lowerPred(scope, x.P)
		if err != nil {
			return Pred{}, err
		}
		return Not(inner), nil
	case *sql.InPred:
		e, err := lowerExpr(scope, x.E)
		if err != nil {
			return Pred{}, err
		}
		vals := make([]Value, len(x.Vals))
		for i, ve := range x.Vals {
			v, ok := litValue(ve)
			if !ok { // unreachable: the parser restricts IN lists to literals
				return Pred{}, &StatementError{Stmt: "SELECT", Reason: "IN values must be literals"}
			}
			vals[i] = v
		}
		in := e.In(vals...)
		if x.Neg {
			return Not(in), nil
		}
		return in, nil
	case *sql.BetweenPred:
		e, err := lowerExpr(scope, x.E)
		if err != nil {
			return Pred{}, err
		}
		lo, lok := litValue(x.Lo)
		hi, hok := litValue(x.Hi)
		var btw Pred
		if lok && hok {
			btw = e.Between(lo, hi)
		} else {
			// Non-literal bounds lower to the equivalent conjunction.
			loE, err := lowerExpr(scope, x.Lo)
			if err != nil {
				return Pred{}, err
			}
			hiE, err := lowerExpr(scope, x.Hi)
			if err != nil {
				return Pred{}, err
			}
			btw = And(loE.Le(e), e.Le(hiE))
		}
		if x.Neg {
			return Not(btw), nil
		}
		return btw, nil
	default:
		return Pred{}, &StatementError{Stmt: "SELECT", Reason: fmt.Sprintf("unsupported predicate %s", p)}
	}
}

func lowerNary(scope *sqlScope, ps []sql.Pred, combine func(...Pred) Pred) (Pred, error) {
	subs := make([]Pred, len(ps))
	for i, p := range ps {
		lp, err := lowerPred(scope, p)
		if err != nil {
			return Pred{}, err
		}
		subs[i] = lp
	}
	return combine(subs...), nil
}

// ---- Session -----------------------------------------------------------------

// Session holds the client-side per-session execution settings a SQL SET
// statement adjusts — the engine itself is sessionless, so SET never
// reaches it. The qpipe-shell REPL and the SQL workload runner keep one
// Session per connection and pass Options() to every Query/Run call:
//
//	SET parallelism = 8;           -- WithParallelism(8)
//	SET batch_size = 128;          -- WithBatchSize(128)
//	SET osp = off;                 -- WithoutOSP()
//	SET statement_timeout = 500ms; -- WithTimeout(500ms); bare ints are ms
//
// The zero Session means "engine defaults" and yields no options.
type Session struct {
	// Parallelism is the per-query intra-operator fan-out (0 = engine
	// default).
	Parallelism int
	// BatchSize is the per-query tuples-per-batch target (0 = engine
	// default).
	BatchSize int
	// OSPOff opts queries out of on-demand simultaneous pipelining.
	OSPOff bool
	// StatementTimeout bounds each query's execution (WithTimeout); queries
	// exceeding it fail with a *DeadlineError. 0 = no timeout.
	StatementTimeout time.Duration

	// tx is the session's open explicit transaction (nil outside
	// BEGIN..COMMIT/ROLLBACK). ExecSession maintains it; Close rolls it back.
	tx *Tx
}

// Apply folds one SET statement into the session. Unknown settings and bad
// values return an *OptionError.
func (s *Session) Apply(st *sql.Set) error {
	val := strings.ToLower(st.Value)
	switch st.Name {
	case "parallelism":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return &OptionError{Option: "SET parallelism", Reason: "must be an integer >= 1"}
		}
		s.Parallelism = n
	case "batch_size":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return &OptionError{Option: "SET batch_size", Reason: "must be an integer >= 1"}
		}
		s.BatchSize = n
	case "osp":
		switch val {
		case "on", "true", "1":
			s.OSPOff = false
		case "off", "false", "0":
			s.OSPOff = true
		default:
			return &OptionError{Option: "SET osp", Reason: "must be on or off"}
		}
	case "statement_timeout":
		// Postgres convention: a bare integer is milliseconds; duration
		// strings ("500ms", "2s") work too. 0 disables the timeout.
		var d time.Duration
		if n, err := strconv.Atoi(val); err == nil {
			d = time.Duration(n) * time.Millisecond
		} else if pd, err := time.ParseDuration(val); err == nil {
			d = pd
		} else {
			return &OptionError{Option: "SET statement_timeout",
				Reason: "must be a duration (500ms, 2s) or integer milliseconds"}
		}
		if d < 0 {
			return &OptionError{Option: "SET statement_timeout", Reason: "must be >= 0"}
		}
		s.StatementTimeout = d
	default:
		return &OptionError{Option: "SET " + st.Name,
			Reason: "unknown setting (supported: parallelism, batch_size, osp, statement_timeout)"}
	}
	return nil
}

// Options renders the session's non-default settings as per-query options.
func (s *Session) Options() []QueryOption {
	var opts []QueryOption
	if s.Parallelism > 0 {
		opts = append(opts, WithParallelism(s.Parallelism))
	}
	if s.BatchSize > 0 {
		opts = append(opts, WithBatchSize(s.BatchSize))
	}
	if s.OSPOff {
		opts = append(opts, WithoutOSP())
	}
	if s.StatementTimeout > 0 {
		opts = append(opts, WithTimeout(s.StatementTimeout))
	}
	return opts
}

// String renders the current settings (the shell's \set display).
func (s *Session) String() string {
	par, batch, osp := "default", "default", "on"
	if s.Parallelism > 0 {
		par = strconv.Itoa(s.Parallelism)
	}
	if s.BatchSize > 0 {
		batch = strconv.Itoa(s.BatchSize)
	}
	if s.OSPOff {
		osp = "off"
	}
	timeout := "off"
	if s.StatementTimeout > 0 {
		timeout = s.StatementTimeout.String()
	}
	return fmt.Sprintf("parallelism=%s batch_size=%s osp=%s statement_timeout=%s", par, batch, osp, timeout)
}
