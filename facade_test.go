package qpipe

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

func TestQueryCachedHitAndMiss(t *testing.T) {
	mgr := newTestDB(t, 500)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	eng.EnableResultCache(10_000, 5_000)
	mk := func() plan.Node {
		scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(0)}})
	}
	rows1, hit1, err := eng.QueryCached(context.Background(), mk())
	if err != nil || hit1 {
		t.Fatalf("first query: hit=%v err=%v", hit1, err)
	}
	rows2, hit2, err := eng.QueryCached(context.Background(), mk())
	if err != nil || !hit2 {
		t.Fatalf("second query should hit: hit=%v err=%v", hit2, err)
	}
	if rows1[0][0].F != rows2[0][0].F {
		t.Fatalf("cached result differs: %v vs %v", rows1[0], rows2[0])
	}
	st := eng.CacheStats()
	if st.Hits != 1 || st.Insertions != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
	// Mutating the returned rows must not corrupt the cache.
	rows2[0][0] = tuple.F64(-1)
	rows3, _, _ := eng.QueryCached(context.Background(), mk())
	if rows3[0][0].F == -1 {
		t.Fatal("cache entry was mutated through a returned row")
	}
}

func TestQueryCachedInvalidatedByUpdate(t *testing.T) {
	mgr := newTestDB(t, 100)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	eng.EnableResultCache(10_000, 5_000)
	count := func() int64 {
		scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
		p := plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}})
		rows, _, err := eng.QueryCached(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0][0].I
	}
	if count() != 100 {
		t.Fatal("initial count")
	}
	up := plan.NewUpdate("t", []tuple.Tuple{
		{tuple.I64(9999), tuple.I64(0), tuple.F64(0), tuple.Str("x")},
	})
	if _, _, err := eng.QueryCached(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	// Cache must have been invalidated: fresh count includes the insert.
	if got := count(); got != 101 {
		t.Fatalf("post-update count: %d (stale cache?)", got)
	}
	if eng.CacheStats().Invalidation == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestQueryCachedWithoutCacheEnabled(t *testing.T) {
	mgr := newTestDB(t, 50)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	p := plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}})
	rows, hit, err := eng.QueryCached(context.Background(), p)
	if err != nil || hit || rows[0][0].I != 50 {
		t.Fatalf("cache-disabled path: %v %v %v", rows, hit, err)
	}
	if st := eng.CacheStats(); st != (eng.CacheStats()) {
		t.Fatal("zero stats expected")
	}
}

// TestQueryBatchSharesCommonSubtrees: an MQO-style batch whose queries
// share a common subexpression must execute the common part once.
func TestQueryBatchSharesCommonSubtrees(t *testing.T) {
	mgr := newTestDB(t, 3000)
	// Slow disk so batch members genuinely overlap.
	mgr.Disk.SetLatency(40*time.Microsecond, 60*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()

	common := func() plan.Node {
		// Identical subtree in both queries: sorted scan.
		scan := plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 2}, false)
		return plan.NewSort(scan, []int{0}, false)
	}
	q1 := plan.NewAggregate(common(), []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(1)}})
	q2 := plan.NewGroupBy(common(), []int{0}, []expr.AggSpec{{Kind: expr.AggCount}})

	results, err := eng.QueryBatch(context.Background(), []plan.Node{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, r := range results {
		wg.Add(1)
		go func(r *Result) {
			defer wg.Done()
			if _, err := r.Discard(); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if eng.Runtime().TotalShares() == 0 {
		t.Fatal("batch with common subtree produced no sharing")
	}
}

func TestExplain(t *testing.T) {
	mgr := newTestDB(t, 10)
	scan := plan.NewTableScan("t", tableSchema(mgr), expr.LT(expr.Col(0), expr.CInt(5)), nil, false)
	srt := plan.NewSort(scan, []int{0}, false)
	gb := plan.NewGroupBy(srt, []int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
	out := Explain(gb)
	for _, want := range []string{"GroupBy", "Sort", "TableScan t"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Root first, indented children.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("explain layout:\n%s", out)
	}
}

func TestQueryBatchErrorCancelsPrior(t *testing.T) {
	mgr := newTestDB(t, 50)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	good := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	// A plan with an unknown operator type triggers a submit error; the
	// already-submitted batch members must be cancelled.
	results, err := eng.QueryBatch(context.Background(), []plan.Node{good, badPlanNode{}})
	if err == nil {
		for _, r := range results {
			r.Cancel()
		}
		t.Fatal("batch with invalid plan should fail")
	}
	if results != nil {
		t.Fatal("failed batch should return no results")
	}
}

// badPlanNode is a plan node with an operator type no µEngine serves.
type badPlanNode struct{}

func (badPlanNode) Op() plan.OpType       { return "nonexistent" }
func (badPlanNode) Children() []plan.Node { return nil }
func (badPlanNode) Schema() *tuple.Schema { return tuple.NewSchema() }
func (badPlanNode) Signature() string     { return "bad" }
