package qpipe

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// Facade tests: the cache-fronted and batch entry points, exercised through
// the public DB/builder surface (with Engine-level checks where the engine
// API is itself the contract).

func TestQueryCachedHitAndMiss(t *testing.T) {
	db := openTestDB(t, 500, Options{PoolPages: 64, ResultCacheTuples: 10_000, ResultCacheMaxEntry: 5_000})
	eng := db.Engine()
	p, err := db.Scan("t").Aggregate(Sum(Col("k"))).Plan()
	if err != nil {
		t.Fatal(err)
	}
	rows1, hit1, err := eng.QueryCached(context.Background(), p)
	if err != nil || hit1 {
		t.Fatalf("first query: hit=%v err=%v", hit1, err)
	}
	rows2, hit2, err := eng.QueryCached(context.Background(), p)
	if err != nil || !hit2 {
		t.Fatalf("second query should hit: hit=%v err=%v", hit2, err)
	}
	if rows1[0][0].F != rows2[0][0].F {
		t.Fatalf("cached result differs: %v vs %v", rows1[0], rows2[0])
	}
	st := db.CacheStats()
	if st.Hits != 1 || st.Insertions != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
	// Mutating the returned rows must not corrupt the cache.
	rows2[0][0] = FloatValue(-1)
	rows3, _, _ := eng.QueryCached(context.Background(), p)
	if rows3[0][0].F == -1 {
		t.Fatal("cache entry was mutated through a returned row")
	}
}

func TestQueryCachedInvalidatedByUpdate(t *testing.T) {
	db := openTestDB(t, 100, Options{PoolPages: 64, ResultCacheTuples: 10_000, ResultCacheMaxEntry: 5_000})
	count := func() int64 {
		res, err := db.Scan("t").Aggregate(Count()).Run(context.Background(), WithResultCache())
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			t.Fatal(err)
		}
		return rows[0][0].I
	}
	if count() != 100 {
		t.Fatal("initial count")
	}
	// An update plan through the cache-fronted engine path invalidates.
	up := plan.NewUpdate("t", []tuple.Tuple{R(9999, 0, 0.0, "x")})
	if _, _, err := db.Engine().QueryCached(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 101 {
		t.Fatalf("post-update count: %d (stale cache?)", got)
	}
	if db.CacheStats().Invalidation == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestQueryCachedWithoutCacheEnabled(t *testing.T) {
	db := openTestDB(t, 50, Options{PoolPages: 64})
	p, err := db.Scan("t").Aggregate(Count()).Plan()
	if err != nil {
		t.Fatal(err)
	}
	rows, hit, err := db.Engine().QueryCached(context.Background(), p)
	if err != nil || hit || rows[0][0].I != 50 {
		t.Fatalf("cache-disabled path: %v %v %v", rows, hit, err)
	}
	if st := db.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("zero stats expected, got %+v", st)
	}
}

// TestRunBatchSharesCommonSubtrees: an MQO-style batch whose queries share
// a common subexpression must execute the common part once.
func TestRunBatchSharesCommonSubtrees(t *testing.T) {
	db := openTestDB(t, 3000, Options{PoolPages: 64})
	// Slow disk so batch members genuinely overlap.
	db.SetDiskLatency(40*time.Microsecond, 60*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)

	common := func() *Query {
		// Identical subtree in both queries: sorted projected scan.
		return db.Scan("t").Select("grp", "val").Sort("grp")
	}
	batch := []*Query{
		common().Aggregate(Sum(Col("val"))),
		common().GroupBy([]string{"grp"}, Count()),
	}
	results, err := db.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, r := range results {
		wg.Add(1)
		go func(r *Result) {
			defer wg.Done()
			if _, err := r.Discard(); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if db.TotalShares() == 0 {
		t.Fatal("batch with common subtree produced no sharing")
	}
}

func TestExplain(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	out, err := db.Scan("t").
		Filter(Col("k").Lt(Int(5))).
		Sort("k").
		GroupBy([]string{"grp"}, Count()).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer pushes the filter into the scan, and every node carries
	// a cardinality annotation.
	for _, want := range []string{"GroupBy", "Sort", "TableScan t", "filter=", "rows≈"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Root first, indented children.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("explain layout:\n%s", out)
	}
}

// TestQueryBatchErrorDrainsPrior: the QueryBatch satellite at the Engine
// surface — a failing member must cancel AND drain the already-submitted
// ones and return the typed *BatchError.
func TestQueryBatchErrorDrainsPrior(t *testing.T) {
	db := openTestDB(t, 2000, Options{PoolPages: 32})
	eng := db.Engine()
	s, _ := db.Schema("t")
	good := plan.NewTableScan("t", s, nil, nil, false)
	// A plan with an unknown operator type triggers a submit error; the
	// already-submitted batch members must be cancelled and drained.
	results, err := eng.QueryBatch(context.Background(), []plan.Node{good, badPlanNode{}})
	if err == nil {
		for _, r := range results {
			r.Cancel()
		}
		t.Fatal("batch with invalid plan should fail")
	}
	if results != nil {
		t.Fatal("failed batch should return no results")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("err = %v, want *BatchError at index 1", err)
	}
	if len(be.Teardown) != 0 {
		t.Fatalf("teardown of the good member should be clean, got %v", be.Teardown)
	}
}

// badPlanNode is a plan node with an operator type no µEngine serves.
type badPlanNode struct{}

func (badPlanNode) Op() plan.OpType       { return "nonexistent" }
func (badPlanNode) Children() []plan.Node { return nil }
func (badPlanNode) Schema() *tuple.Schema { return tuple.NewSchema() }
func (badPlanNode) Signature() string     { return "bad" }
