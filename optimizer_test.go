package qpipe_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"qpipe"
	"qpipe/internal/workload/sqlmix"
	"qpipe/sql"
)

// ---- Equivalent-spelling convergence (property test) -------------------------

// optVariantQueries are the base spellings the property test mutates. Each
// exercises a different planner path: pushed scan filters, group-by over a
// filtered scan, JOIN ... ON, comma joins with BETWEEN, and sort.
var optVariantQueries = []string{
	"SELECT sum(amount) AS revenue, count(*) AS n FROM orders WHERE amount < 500 AND priority = 2",
	"SELECT region, count(*) AS n FROM orders WHERE priority = 2 AND region > 1 AND amount < 700 GROUP BY region",
	"SELECT segment, sum(amount) AS revenue FROM customers c JOIN orders o ON c.cid = o.cust WHERE segment = 1 GROUP BY segment",
	"SELECT region, count(*) AS n FROM customers, orders WHERE cid = cust AND amount BETWEEN 100 AND 800 GROUP BY region",
	"SELECT oid, amount FROM orders WHERE amount > 900 AND priority = 1 ORDER BY amount DESC",
}

// TestEquivalentSpellingsConverge is the optimizer's core property: randomly
// rewritten spellings of a query — shuffled WHERE conjuncts, commuted
// comparisons, swapped join sides, BETWEEN expanded to bounds — plan to a
// byte-identical Signature() and return the same result set as the original
// query lowered WITHOUT the optimizer (Options.DisableOptimizer).
func TestEquivalentSpellingsConverge(t *testing.T) {
	db := openPopulated(t, false)
	lit := openPopulated(t, true)
	rng := rand.New(rand.NewSource(1))

	for _, base := range optVariantQueries {
		baseSig := planSig(t, db, base)
		refRows := runSorted(t, lit, base)
		if got := runSorted(t, db, base); !equalRows(got, refRows) {
			t.Fatalf("optimized result diverged from unoptimized lowering for %q:\n opt %v\n lit %v", base, got, refRows)
		}
		for v := 0; v < 8; v++ {
			variant := mutateSpelling(t, rng, base)
			if sig := planSig(t, db, variant); sig != baseSig {
				t.Fatalf("signature diverged:\n base    %q\n variant %q\n base sig    %s\n variant sig %s", base, variant, baseSig, sig)
			}
			if got := runSorted(t, db, variant); !equalRows(got, refRows) {
				t.Fatalf("variant %q result diverged from unoptimized base:\n got %v\n ref %v", variant, got, refRows)
			}
		}
	}
}

func openPopulated(t *testing.T, disableOpt bool) *qpipe.DB {
	t.Helper()
	db, err := qpipe.Open(qpipe.Options{PoolPages: 128, DisableOptimizer: disableOpt})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := sqlmix.Populate(db, 2000, 150); err != nil {
		t.Fatal(err)
	}
	return db
}

func planSig(t *testing.T, db *qpipe.DB, text string) string {
	t.Helper()
	q, err := db.Prepare(text)
	if err != nil {
		t.Fatalf("prepare %q: %v", text, err)
	}
	p, err := q.Plan()
	if err != nil {
		t.Fatalf("plan %q: %v", text, err)
	}
	return p.Signature()
}

func runSorted(t *testing.T, db *qpipe.DB, text string) []string {
	t.Helper()
	res, err := db.Query(context.Background(), text)
	if err != nil {
		t.Fatalf("query %q: %v", text, err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatalf("drain %q: %v", text, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mutateSpelling parses text and applies random meaning-preserving rewrites:
// conjunct shuffles, comparison commutes, BETWEEN expansion, join-side swaps.
func mutateSpelling(t *testing.T, rng *rand.Rand, text string) string {
	t.Helper()
	stmt, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	sel := stmt.(*sql.Select)
	sel.Where = mutatePred(rng, sel.Where)
	for i, j := range sel.Joins {
		sel.Joins[i].On = mutatePred(rng, j.On)
	}
	// Swap the first join's sides half the time: comma joins swap refs only;
	// JOIN ... ON moves the ON across (it names both sides, so it survives).
	if len(sel.Joins) == 1 && rng.Intn(2) == 0 {
		sel.From, sel.Joins[0].Ref = sel.Joins[0].Ref, sel.From
	}
	return sel.String()
}

func mutatePred(rng *rand.Rand, p sql.Pred) sql.Pred {
	switch q := p.(type) {
	case nil:
		return nil
	case *sql.And:
		ps := make([]sql.Pred, len(q.Ps))
		for i, sub := range q.Ps {
			ps[i] = mutatePred(rng, sub)
		}
		rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
		return &sql.And{Ps: ps}
	case *sql.Or:
		ps := make([]sql.Pred, len(q.Ps))
		for i, sub := range q.Ps {
			ps[i] = mutatePred(rng, sub)
		}
		rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
		return &sql.Or{Ps: ps}
	case *sql.Compare:
		if rng.Intn(2) == 0 {
			return &sql.Compare{Op: mirrorCmpOp(q.Op), L: q.R, R: q.L}
		}
		return q
	case *sql.BetweenPred:
		if !q.Neg && rng.Intn(2) == 0 {
			return &sql.And{Ps: []sql.Pred{
				&sql.Compare{Op: ">=", L: q.E, R: q.Lo},
				&sql.Compare{Op: "<=", L: q.E, R: q.Hi},
			}}
		}
		return q
	default:
		return p
	}
}

func mirrorCmpOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// ---- Join reordering ---------------------------------------------------------

// TestJoinReorderConvergesSwappedSides: the two JOIN ... ON spellings with
// swapped sides lower to byte-identical plans (same EXPLAIN text), and the
// chosen build side is the smaller table regardless of the written order.
func TestJoinReorderConvergesSwappedSides(t *testing.T) {
	db := openPopulated(t, false)
	a := runSorted(t, db, "EXPLAIN SELECT segment, sum(amount) AS r FROM customers c JOIN orders o ON c.cid = o.cust WHERE segment = 1 GROUP BY segment")
	b := runSorted(t, db, "EXPLAIN SELECT segment, sum(amount) AS r FROM orders o JOIN customers c ON o.cust = c.cid WHERE 1 = segment GROUP BY segment")
	if !equalRows(a, b) {
		t.Fatalf("swapped join sides did not converge:\n a: %v\n b: %v", a, b)
	}
}

// ---- ANALYZE and statistics --------------------------------------------------

func TestAnalyzeAndTableStats(t *testing.T) {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t", qpipe.NewSchema(
		qpipe.ColDef("a", qpipe.KindInt),
		qpipe.ColDef("b", qpipe.KindFloat),
	)); err != nil {
		t.Fatal(err)
	}
	rows := make([]qpipe.Row, 1000)
	for i := range rows {
		rows[i] = qpipe.R(i, float64(i%10))
	}
	if err := db.Load("t", rows); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		ts, err := db.TableStats("t")
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if ts.Rows != 1000 {
			t.Fatalf("%s: rows = %d, want 1000", stage, ts.Rows)
		}
		a, b := ts.Columns[0], ts.Columns[1]
		if a.Min.I != 0 || a.Max.I != 999 {
			t.Fatalf("%s: col a min/max = %v/%v, want 0/999", stage, a.Min, a.Max)
		}
		if a.Distinct < 900 || a.Distinct > 1100 {
			t.Fatalf("%s: col a distinct = %d, want ~1000", stage, a.Distinct)
		}
		if b.Distinct < 8 || b.Distinct > 12 {
			t.Fatalf("%s: col b distinct = %d, want ~10", stage, b.Distinct)
		}
	}
	check("incremental (Load)")

	// ANALYZE rebuilds from a full scan and lands on the same picture.
	if _, err := db.Exec(context.Background(), "ANALYZE t"); err != nil {
		t.Fatal(err)
	}
	check("after ANALYZE t")
	if _, err := db.Exec(context.Background(), "ANALYZE"); err != nil {
		t.Fatal(err)
	}
	check("after ANALYZE (all tables)")

	// INSERT keeps stats fresh without a rescan.
	if _, err := db.Exec(context.Background(), "INSERT INTO t VALUES (2000, 99.0)"); err != nil {
		t.Fatal(err)
	}
	ts, err := db.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 1001 {
		t.Fatalf("rows after insert = %d, want 1001", ts.Rows)
	}
	if ts.Columns[0].Max.I != 2000 {
		t.Fatalf("col a max after insert = %v, want 2000", ts.Columns[0].Max)
	}

	if _, err := db.TableStats("nope"); err == nil {
		t.Fatal("TableStats on unknown table: expected error")
	}
	if err := db.Analyze("nope"); err == nil {
		t.Fatal("ANALYZE on unknown table: expected error")
	}
}

// ---- LIMIT/share interaction -------------------------------------------------

// TestSortShareSurvivesHostLimit pins down the limit/share interaction the
// optimizer makes common: LIMIT is applied at the result, outside the plan
// signature, so a "... LIMIT 10" query and its unlimited twin converge to
// the same sort plan and OSP-share it. When the limited query is the host,
// its result cancels the query after ten rows — mid phase-2 stream — and
// the satellite, which holds the prefix and cannot be re-dispatched, must
// still receive the rest of the sorted file rather than inherit the host's
// cancellation.
func TestSortShareSurvivesHostLimit(t *testing.T) {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("s", qpipe.NewSchema(
		qpipe.ColDef("k", qpipe.KindInt),
		qpipe.ColDef("v", qpipe.KindFloat),
	)); err != nil {
		t.Fatal(err)
	}
	const rows = 20000
	data := make([]qpipe.Row, rows)
	for i := range data {
		data[i] = qpipe.R(i, float64(i))
	}
	if err := db.Load("s", data); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for iter := 0; iter < 5; iter++ {
		db.SetDiskLatency(15*time.Microsecond, 25*time.Microsecond, 0)
		host, err := db.Query(ctx, "SELECT k, v FROM s ORDER BY v DESC LIMIT 5")
		if err != nil {
			t.Fatal(err)
		}
		sat, err := db.Query(ctx, "SELECT k, v FROM s ORDER BY v DESC")
		if err != nil {
			t.Fatal(err)
		}
		// Drain the host first: hitting its limit cancels the host query
		// while the satellite still depends on the shared sort stream.
		got, err := host.All()
		if err != nil {
			t.Fatalf("iter %d: host: %v", iter, err)
		}
		if len(got) != 5 {
			t.Fatalf("iter %d: host rows = %d, want 5", iter, len(got))
		}
		n, err := sat.Discard()
		db.SetDiskLatency(0, 0, 0)
		if err != nil {
			t.Fatalf("iter %d: satellite: %v", iter, err)
		}
		if n != rows {
			t.Fatalf("iter %d: satellite rows = %d, want %d", iter, n, rows)
		}
	}
}
