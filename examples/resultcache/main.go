// Result cache + MQO batch demo: the two remaining sharing stages of the
// paper's Figure 2 around the OSP core.
//
//  1. The query-result cache (§2.3): a repeated query returns its stored
//     result without executing; updates invalidate affected entries.
//  2. MQO-style batches (§2.4): plans sharing common subexpressions are
//     submitted together and OSP pipelines the shared intermediate results
//     — no materialization, no batch-time optimizer.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func main() {
	mgr := sm.New(sm.Config{PoolPages: 128})
	schema := tuple.NewSchema(
		tuple.Col("id", tuple.KindInt),
		tuple.Col("region", tuple.KindInt),
		tuple.Col("amount", tuple.KindFloat),
	)
	if _, err := mgr.CreateTable("orders", schema); err != nil {
		log.Fatal(err)
	}
	rows := make([]tuple.Tuple, 50_000)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.I64(int64(i)), tuple.I64(int64(i % 8)), tuple.F64(float64(i%990) / 3)}
	}
	if err := mgr.Load("orders", rows); err != nil {
		log.Fatal(err)
	}

	eng := qpipe.New(mgr, qpipe.DefaultConfig())
	defer eng.Close()
	eng.EnableResultCache(100_000, 10_000)
	mgr.Disk.SetLatency(40*time.Microsecond, 60*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)

	report := plan.NewGroupBy(
		plan.NewTableScan("orders", schema, nil, nil, false),
		[]int{1},
		[]expr.AggSpec{{Kind: expr.AggCount, Name: "n"}, {Kind: expr.AggSum, Arg: expr.Col(2), Name: "total"}})

	fmt.Println("plan:")
	fmt.Print(qpipe.Explain(report))

	// 1) Result cache: second run is free.
	for run := 1; run <= 2; run++ {
		start := time.Now()
		out, hit, err := eng.QueryCached(context.Background(), report)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d groups in %8s (cache hit: %v)\n",
			run, len(out), time.Since(start).Round(time.Microsecond), hit)
	}

	// An update invalidates the cached report.
	if _, _, err := eng.QueryCached(context.Background(), plan.NewUpdate("orders",
		[]tuple.Tuple{{tuple.I64(999999), tuple.I64(0), tuple.F64(1)}})); err != nil {
		log.Fatal(err)
	}
	_, hit, err := eng.QueryCached(context.Background(), report)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update: cache hit = %v (invalidated)\n", hit)
	st := eng.CacheStats()
	fmt.Printf("cache stats: hits=%d misses=%d invalidated=%d\n\n", st.Hits, st.Misses, st.Invalidation)

	// 2) MQO batch: two reports over the same sorted intermediate result.
	common := func() plan.Node {
		return plan.NewSort(
			plan.NewTableScan("orders", schema, expr.LT(expr.Col(2), expr.CFloat(200)), []int{1, 2}, false),
			[]int{0}, false)
	}
	batch := []plan.Node{
		plan.NewAggregate(common(), []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(1), Name: "sum"}}),
		plan.NewGroupBy(common(), []int{0}, []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}}),
	}
	sharesBefore := eng.Runtime().TotalShares()
	start := time.Now()
	results, err := eng.QueryBatch(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, r := range results {
		wg.Add(1)
		go func(i int, r *qpipe.Result) {
			defer wg.Done()
			n, err := r.Discard()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("batch query %d: %d rows\n", i+1, n)
		}(i, r)
	}
	wg.Wait()
	fmt.Printf("batch done in %s; shared operators: %d (the common sort+scan ran once)\n",
		time.Since(start).Round(time.Millisecond), eng.Runtime().TotalShares()-sharesBefore)
}
