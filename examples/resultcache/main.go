// Result cache + MQO batch demo: the two remaining sharing stages of the
// paper's Figure 2 around the OSP core, on the public API.
//
//  1. The query-result cache (§2.3): a query Run with WithResultCache
//     returns its stored result without executing on a repeat; Insert
//     invalidates affected entries.
//  2. MQO-style batches (§2.4): queries sharing common subexpressions are
//     submitted together via RunBatch and OSP pipelines the shared
//     intermediate results — no materialization, no batch-time optimizer.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"qpipe"
)

func main() {
	db, err := qpipe.Open(qpipe.Options{
		PoolPages:           128,
		ResultCacheTuples:   100_000,
		ResultCacheMaxEntry: 10_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.CreateTable("orders", qpipe.NewSchema(
		qpipe.ColDef("id", qpipe.KindInt),
		qpipe.ColDef("region", qpipe.KindInt),
		qpipe.ColDef("amount", qpipe.KindFloat),
	)); err != nil {
		log.Fatal(err)
	}
	rows := make([]qpipe.Row, 50_000)
	for i := range rows {
		rows[i] = qpipe.R(i, i%8, float64(i%990)/3)
	}
	if err := db.Load("orders", rows); err != nil {
		log.Fatal(err)
	}
	db.SetDiskLatency(40*time.Microsecond, 60*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)

	report := db.Scan("orders").GroupBy([]string{"region"},
		qpipe.Count().As("n"),
		qpipe.Sum(qpipe.Col("amount")).As("total"))

	explain, err := report.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:")
	fmt.Print(explain)

	// 1) Result cache: the second run is free.
	for run := 1; run <= 2; run++ {
		start := time.Now()
		res, err := report.Run(context.Background(), qpipe.WithResultCache())
		if err != nil {
			log.Fatal(err)
		}
		out, err := res.All()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d groups in %8s (cache hit: %v)\n",
			run, len(out), time.Since(start).Round(time.Microsecond), res.CacheHit())
	}

	// An insert invalidates the cached report.
	if err := db.Insert(context.Background(), "orders", qpipe.R(999999, 0, 1.0)); err != nil {
		log.Fatal(err)
	}
	res, err := report.Run(context.Background(), qpipe.WithResultCache())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := res.Discard(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insert: cache hit = %v (invalidated)\n", res.CacheHit())
	st := db.CacheStats()
	fmt.Printf("cache stats: hits=%d misses=%d invalidated=%d\n\n", st.Hits, st.Misses, st.Invalidation)

	// 2) MQO batch: two reports over the same sorted intermediate result.
	common := func() *qpipe.Query {
		return db.Scan("orders").
			Filter(qpipe.Col("amount").Lt(qpipe.Float(200))).
			Select("region", "amount").
			Sort("region")
	}
	batch := []*qpipe.Query{
		common().Aggregate(qpipe.Sum(qpipe.Col("amount")).As("sum")),
		common().GroupBy([]string{"region"}, qpipe.Count().As("n")),
	}
	sharesBefore := db.TotalShares()
	start := time.Now()
	results, err := db.RunBatch(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, r := range results {
		wg.Add(1)
		go func(i int, r *qpipe.Result) {
			defer wg.Done()
			n, err := r.Discard()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("batch query %d: %d rows\n", i+1, n)
		}(i, r)
	}
	wg.Wait()
	fmt.Printf("batch done in %s; shared operators: %d (the common sort+scan ran once)\n",
		time.Since(start).Round(time.Millisecond), db.TotalShares()-sharesBefore)
}
