// Quickstart: create a storage manager, load a table, and run queries
// through the QPipe engine — the minimal end-to-end tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func main() {
	// 1. Storage manager: simulated disk + buffer pool + lock manager.
	mgr := sm.New(sm.Config{PoolPages: 256})

	// 2. Define and load a table.
	schema := tuple.NewSchema(
		tuple.Col("id", tuple.KindInt),
		tuple.Col("city", tuple.KindString),
		tuple.Col("pop", tuple.KindFloat),
	)
	if _, err := mgr.CreateTable("cities", schema); err != nil {
		log.Fatal(err)
	}
	rows := []tuple.Tuple{
		{tuple.I64(1), tuple.Str("Pittsburgh"), tuple.F64(0.30)},
		{tuple.I64(2), tuple.Str("Baltimore"), tuple.F64(0.61)},
		{tuple.I64(3), tuple.Str("Boston"), tuple.F64(0.65)},
		{tuple.I64(4), tuple.Str("Madison"), tuple.F64(0.27)},
		{tuple.I64(5), tuple.Str("Seattle"), tuple.F64(0.74)},
	}
	if err := mgr.Load("cities", rows); err != nil {
		log.Fatal(err)
	}

	// 3. Start QPipe (OSP enabled) — one µEngine per relational operator.
	eng := qpipe.New(mgr, qpipe.DefaultConfig())
	defer eng.Close()

	// 4. Build a plan: scan -> filter -> project. Plans are precompiled
	// trees (QPipe's input format, paper §4.2).
	scan := plan.NewTableScan("cities", schema, nil, nil, false)
	big := plan.NewFilter(scan, expr.GT(expr.Col(2), expr.CFloat(0.5)))
	names := plan.NewProject(big,
		[]expr.Expr{expr.Col(1), expr.Mul(expr.Col(2), expr.CFloat(1e6))},
		[]string{"city", "population"})

	res, err := eng.Query(context.Background(), names)
	if err != nil {
		log.Fatal(err)
	}
	out, err := res.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cities with pop > 500k:")
	for _, r := range out {
		fmt.Printf("  %-12s %8.0f\n", r[0].S, r[1].F)
	}

	// 5. An aggregate over the same table.
	agg := plan.NewAggregate(
		plan.NewTableScan("cities", schema, nil, nil, false),
		[]expr.AggSpec{
			{Kind: expr.AggCount, Name: "n"},
			{Kind: expr.AggSum, Arg: expr.Col(2), Name: "total_pop"},
		})
	res2, err := eng.Query(context.Background(), agg)
	if err != nil {
		log.Fatal(err)
	}
	out2, err := res2.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count=%d total=%.2fM\n", out2[0][0].I, out2[0][1].F)

	st := eng.Stats()
	fmt.Printf("queries executed: %d\n", st.Queries)
}
