// Quickstart: open an embedded QPipe database, load a table, and run
// queries through the schema-aware builder — the minimal end-to-end tour of
// the public API. Note the single import: the facade needs nothing from
// qpipe/internal.
package main

import (
	"context"
	"fmt"
	"log"

	"qpipe"
)

func main() {
	// 1. One handle owns the whole stack: simulated disk, buffer pool,
	// lock manager, catalog and the engine (OSP enabled by default).
	db, err := qpipe.Open(qpipe.Options{PoolPages: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 2. Define and load a table. R builds rows from native Go values.
	if err := db.CreateTable("cities", qpipe.NewSchema(
		qpipe.ColDef("id", qpipe.KindInt),
		qpipe.ColDef("city", qpipe.KindString),
		qpipe.ColDef("pop", qpipe.KindFloat),
	)); err != nil {
		log.Fatal(err)
	}
	rows := []qpipe.Row{
		qpipe.R(1, "Pittsburgh", 0.30),
		qpipe.R(2, "Baltimore", 0.61),
		qpipe.R(3, "Boston", 0.65),
		qpipe.R(4, "Madison", 0.27),
		qpipe.R(5, "Seattle", 0.74),
	}
	if err := db.Load("cities", rows); err != nil {
		log.Fatal(err)
	}

	// 3. Build a query by column name: scan -> filter -> project. Names
	// resolve against the catalog as the chain is built; an unknown column
	// or a type mismatch comes back as a typed error from Run.
	res, err := db.Scan("cities").
		Filter(qpipe.Col("pop").Gt(qpipe.Float(0.5))).
		Project(
			qpipe.Col("city"),
			qpipe.Col("pop").Mul(qpipe.Float(1e6)).As("population")).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Stream the result. Rows are immutable and may be retained; the
	// batch arrays that carried them recycle into the engine's pool under
	// the hood (the lease-safe hand-off).
	fmt.Println("cities with pop > 500k:")
	for row := range res.Rows() {
		fmt.Printf("  %-12s %8.0f\n", row[0].S, row[1].F)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}

	// 5. A scalar aggregate over the same table.
	res2, err := db.Scan("cities").
		Aggregate(
			qpipe.Count().As("n"),
			qpipe.Sum(qpipe.Col("pop")).As("total_pop")).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	out, err := res2.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count=%d total=%.2fM\n", out[0][0].I, out[0][1].F)

	st := db.Stats()
	fmt.Printf("queries executed: %d\n", st.Queries)
}
