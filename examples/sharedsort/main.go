// Shared sorts and joins: the Figure 10 scenario in miniature, on the
// public API. Two 3-way sort-merge-join queries with identical BIG1/BIG2
// subtrees but different SMALL predicates run concurrently; under OSP the
// second query's sort packets attach to the first query's in-progress sorts
// (full overlap), and the shared merge-join pipelines its output to both
// queries at once — the second query only executes its private SMALL
// subtree. The WithoutOSP per-query option plays the baseline.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"qpipe"
)

const rowsN = 40_000

func main() {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 96})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A Wisconsin-style trio: two big relations and a small one, all with
	// a unique key and a couple of payload columns.
	fmt.Println("loading BIG1, BIG2, SMALL...")
	schema := func() *qpipe.Schema {
		return qpipe.NewSchema(
			qpipe.ColDef("unique1", qpipe.KindInt),
			qpipe.ColDef("onePercent", qpipe.KindInt),
			qpipe.ColDef("tenPercent", qpipe.KindInt),
		)
	}
	load := func(table string, n int, stride int) {
		if err := db.CreateTable(table, schema()); err != nil {
			log.Fatal(err)
		}
		rows := make([]qpipe.Row, n)
		for i := range rows {
			k := (i*stride + 7919) % n // scrambled unique key
			rows[i] = qpipe.R(k, k%100, k%10)
		}
		if err := db.Load(table, rows); err != nil {
			log.Fatal(err)
		}
	}
	load("BIG1", rowsN, 3)
	load("BIG2", rowsN, 7)
	load("SMALL", rowsN/10, 11)

	for _, osp := range []bool{false, true} {
		if err := db.DropCaches(); err != nil {
			log.Fatal(err)
		}
		db.SetDiskLatency(60*time.Microsecond, 90*time.Microsecond, 0)
		db.ResetDiskStats()
		sharesBefore := db.TotalShares()

		var opts []qpipe.QueryOption
		if !osp {
			opts = append(opts, qpipe.WithoutOSP())
		}

		// Same BIG subtrees in both queries, different SMALL predicate: the
		// 3-way sort-merge join sorts BIG1 and BIG2 on the key and merges
		// with the filtered-and-sorted SMALL.
		mk := func(smallMax int64) *qpipe.Query {
			big := db.Scan("BIG1").
				Filter(qpipe.Col("onePercent").Lt(qpipe.Int(60))).
				Sort("unique1").
				MergeJoin(db.Scan("BIG2").Sort("unique1"), "unique1", "unique1")
			small := db.Scan("SMALL").
				Filter(qpipe.Col("onePercent").Lt(qpipe.Int(smallMax))).
				Sort("unique1")
			return big.MergeJoin(small, "unique1", "unique1").
				Aggregate(qpipe.Count().As("n"))
		}

		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			q := mk(int64(40 + i*20))
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := q.Run(context.Background(), opts...)
				if err == nil {
					_, err = res.Discard()
				}
				if err != nil {
					log.Fatal(err)
				}
			}()
			if i == 0 {
				time.Sleep(15 * time.Millisecond) // second query arrives mid-sort
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		db.SetDiskLatency(0, 0, 0)

		mode := "OSP off"
		shares := int64(0)
		if osp {
			mode = "OSP on"
			shares = db.TotalShares() - sharesBefore
		}
		fmt.Printf("%-8s  total time: %8s   blocks read: %6d   shared ops: %d\n",
			mode, elapsed.Round(time.Millisecond), db.DiskStats().Reads, shares)
	}
}
