// Shared sorts and joins: the Figure 10 scenario in miniature. Two 3-way
// Wisconsin sort-merge-join queries with identical BIG1/BIG2 subtrees but
// different SMALL predicates run concurrently; with OSP the second query's
// sort packets attach to the first query's in-progress sorts (full
// overlap), and the shared merge-join pipelines its output to both queries
// at once — the second query only executes its private SMALL subtree.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"qpipe"
	"qpipe/internal/storage/sm"
	"qpipe/internal/workload/wisconsin"
)

func main() {
	loader := sm.New(sm.Config{PoolPages: 96})
	fmt.Println("loading Wisconsin benchmark (BIG1, BIG2, SMALL)...")
	db, err := wisconsin.Load(loader, 20000, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, osp := range []bool{false, true} {
		mgr := sm.NewSharedDisk(loader.Disk, 96, nil)
		for _, t := range []string{"BIG1", "BIG2", "SMALL"} {
			if _, err := mgr.AttachTable(t, wisconsin.Schema()); err != nil {
				log.Fatal(err)
			}
		}
		cfg := qpipe.BaselineConfig()
		if osp {
			cfg = qpipe.DefaultConfig()
		}
		eng := qpipe.New(mgr, cfg)

		loader.Disk.SetLatency(60*time.Microsecond, 90*time.Microsecond, 0)
		loader.Disk.ResetStats()
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			// Same BIG predicates, different SMALL predicate per query.
			q := db.ThreeWayJoinQuery(60, int64(40+i*20))
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := eng.Query(context.Background(), q)
				if err == nil {
					_, err = res.Discard()
				}
				if err != nil {
					log.Fatal(err)
				}
			}()
			if i == 0 {
				time.Sleep(30 * time.Millisecond) // second query arrives mid-sort
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		loader.Disk.SetLatency(0, 0, 0)

		mode := "OSP off"
		shares := int64(0)
		if osp {
			mode = "OSP on"
			shares = eng.Runtime().TotalShares()
		}
		fmt.Printf("%-8s  total time: %8s   blocks read: %6d   shared ops: %d\n",
			mode, elapsed.Round(time.Millisecond), loader.Disk.Stats().Reads, shares)
		eng.Close()
	}
}
