// sqlshell: the end-to-end SQL path on the public surface — DDL and
// loading through db.Exec, queries and EXPLAIN through db.Query, schema
// headers from Result.Schema, session SET via qpipe.Session, and a typed,
// position-annotated parse error. Everything an embedder needs for a SQL
// front end, with only the qpipe and qpipe/sql imports (CI builds this
// example out-of-module to prove it).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"qpipe"
	"qpipe/sql"
)

func main() {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// DDL and loading are plain SQL scripts.
	if _, err := db.Exec(ctx, `
		CREATE TABLE cities (id INT, city TEXT, pop FLOAT, founded DATE);
		CREATE TABLE visits (city_id INT, year INT, tourists FLOAT)
	`); err != nil {
		log.Fatal(err)
	}
	n, err := db.Exec(ctx, `
		INSERT INTO cities VALUES
			(1, 'Pittsburgh', 0.30, DATE '1758-11-25'),
			(2, 'Boston',     0.65, DATE '1630-09-07'),
			(3, 'Seattle',    0.74, DATE '1851-11-13');
		INSERT INTO visits VALUES
			(1, 2024, 2.1), (2, 2024, 22.6), (3, 2024, 37.8),
			(1, 2023, 1.9), (2, 2023, 21.0), (3, 2023, 35.1)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows\n\n", n)

	// A join + group-by posed declaratively, run with session options.
	var sess qpipe.Session
	stmt, err := sql.Parse("SET parallelism = 2")
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Apply(stmt.(*sql.Set)); err != nil {
		log.Fatal(err)
	}
	const query = `
		SELECT city, sum(tourists) AS total
		FROM cities JOIN visits ON id = city_id
		WHERE pop > 0.5
		GROUP BY city
		ORDER BY total DESC`
	res, err := db.Query(ctx, query, sess.Options()...)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	// EXPLAIN returns the lowered physical plan as rows of text.
	res, err = db.Query(ctx, "EXPLAIN "+strings.TrimSpace(query), sess.Options()...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	for row := range res.Rows() {
		fmt.Println("  " + row[0].S)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}

	// Syntax errors carry line:column positions...
	_, err = db.Query(ctx, "SELECT city\nFROM cities\nWHERE pop >")
	var pe *sql.ParseError
	if !errors.As(err, &pe) {
		log.Fatalf("expected a *sql.ParseError, got %v", err)
	}
	fmt.Printf("\nparse error (at %s): %v\n", pe.Pos, pe)

	// ...and semantic mistakes surface as qpipe's typed errors.
	_, err = db.Query(ctx, "SELECT population FROM cities")
	var uc *qpipe.UnknownColumnError
	if !errors.As(err, &uc) {
		log.Fatalf("expected a *qpipe.UnknownColumnError, got %v", err)
	}
	fmt.Printf("typed error: unknown column %q\n", uc.Column)
}

func printResult(res *qpipe.Result) {
	cols := make([]string, res.Schema().Len())
	for i, c := range res.Schema().Cols {
		cols[i] = c.Name
	}
	fmt.Println(strings.Join(cols, " | "))
	for row := range res.Rows() {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = v.String()
		}
		fmt.Println(strings.Join(vals, " | "))
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
}
