// Shared circular scans: the paper's flagship mechanism (§4.3.1) in
// isolation. Two concurrent analytics queries with *different* predicates
// scan the same large table; with OSP the second piggybacks on the first
// query's in-progress scan (setting a new termination point, wrapping at
// EOF), so the table is read from disk roughly once instead of twice.
//
// The example prints disk-block counters for OSP on vs off — the Figure 8
// effect at a glance.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func main() {
	// Load a ~1500-page table on a shared disk.
	loader := sm.New(sm.Config{PoolPages: 64})
	schema := tuple.NewSchema(
		tuple.Col("id", tuple.KindInt),
		tuple.Col("category", tuple.KindInt),
		tuple.Col("amount", tuple.KindFloat),
	)
	if _, err := loader.CreateTable("sales", schema); err != nil {
		log.Fatal(err)
	}
	const n = 100_000
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			tuple.I64(int64(i)), tuple.I64(int64(i % 50)), tuple.F64(float64(i%997) / 7),
		}
	}
	if err := loader.Load("sales", rows); err != nil {
		log.Fatal(err)
	}
	pages := loader.MustTable("sales").Heap.NumPages()
	fmt.Printf("loaded %d rows (%d pages)\n", n, pages)

	for _, osp := range []bool{false, true} {
		blocks, elapsed := runPair(loader.Disk, schema, osp)
		mode := "OSP off (baseline)"
		if osp {
			mode = "OSP on (circular scan)"
		}
		fmt.Printf("%-24s blocks read: %5d  (%.2fx table size)  elapsed: %s\n",
			mode, blocks, float64(blocks)/float64(pages), elapsed.Round(time.Millisecond))
	}
}

// runPair starts one full-table aggregate, then 30%% into it submits a
// second aggregate with a different predicate, and reports total disk
// blocks read.
func runPair(d *disk.Disk, schema *tuple.Schema, osp bool) (int64, time.Duration) {
	// Small pool (no buffer-pool sharing) and a visible latency so the
	// second query genuinely arrives mid-scan.
	mgr := sm.NewSharedDisk(d, 16, nil)
	if _, err := mgr.AttachTable("sales", schema); err != nil {
		log.Fatal(err)
	}
	cfg := qpipe.BaselineConfig()
	if osp {
		cfg = qpipe.DefaultConfig()
	}
	eng := qpipe.New(mgr, cfg)
	defer eng.Close()

	d.SetLatency(100*time.Microsecond, 150*time.Microsecond, 0)
	defer d.SetLatency(0, 0, 0)
	d.ResetStats()

	mk := func(category int64) plan.Node {
		scan := plan.NewTableScan("sales", schema,
			expr.EQ(expr.Col(1), expr.CInt(category)), nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{
			{Kind: expr.AggSum, Arg: expr.Col(2), Name: "total"},
		})
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		res, err := eng.Query(context.Background(), mk(7))
		if err == nil {
			_, err = res.Discard()
		}
		if err != nil {
			log.Fatal(err)
		}
	}()
	time.Sleep(time.Duration(0.3 * float64(estimateScan(d))))
	go func() {
		defer wg.Done()
		res, err := eng.Query(context.Background(), mk(21))
		if err == nil {
			_, err = res.Discard()
		}
		if err != nil {
			log.Fatal(err)
		}
	}()
	wg.Wait()
	return d.Stats().Reads, time.Since(start)
}

// estimateScan approximates one full-scan duration from the latency model.
func estimateScan(d *disk.Disk) time.Duration {
	return time.Duration(d.NumBlocks("tbl:sales")) * 100 * time.Microsecond
}
