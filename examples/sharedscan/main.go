// Shared circular scans: the paper's flagship mechanism (§4.3.1) in
// isolation, driven entirely through the public API. Two concurrent
// analytics queries with *different* predicates scan the same large table;
// under OSP the second piggybacks on the first query's in-progress scan
// (setting a new termination point, wrapping at EOF), so the table is read
// from disk roughly once instead of twice. The per-query WithoutOSP option
// plays the baseline: same engine, same data, sharing off.
//
// The example prints disk-block counters for both runs — the Figure 8
// effect at a glance.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"qpipe"
)

const rowsN = 100_000

func main() {
	// Small pool so the table cannot linger in memory between queries.
	db, err := qpipe.Open(qpipe.Options{PoolPages: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.CreateTable("sales", qpipe.NewSchema(
		qpipe.ColDef("id", qpipe.KindInt),
		qpipe.ColDef("category", qpipe.KindInt),
		qpipe.ColDef("amount", qpipe.KindFloat),
	)); err != nil {
		log.Fatal(err)
	}
	rows := make([]qpipe.Row, rowsN)
	for i := range rows {
		rows[i] = qpipe.R(i, i%50, float64(i%997)/7)
	}
	if err := db.Load("sales", rows); err != nil {
		log.Fatal(err)
	}
	pages, err := db.TablePages("sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows (%d pages)\n", rowsN, pages)

	for _, osp := range []bool{false, true} {
		blocks, elapsed := runPair(db, pages, osp)
		mode := "OSP off (WithoutOSP)"
		if osp {
			mode = "OSP on (circular scan)"
		}
		fmt.Printf("%-24s blocks read: %5d  (%.2fx table size)  elapsed: %s\n",
			mode, blocks, float64(blocks)/float64(pages), elapsed.Round(time.Millisecond))
	}
}

// runPair starts one full-table aggregate, then 30% into it submits a
// second aggregate with a different predicate, and reports total disk
// blocks read. With osp false both queries opt out via WithoutOSP.
func runPair(db *qpipe.DB, pages int64, osp bool) (int64, time.Duration) {
	// Cold pool and a visible latency so the second query genuinely
	// arrives mid-scan.
	if err := db.DropCaches(); err != nil {
		log.Fatal(err)
	}
	db.SetDiskLatency(100*time.Microsecond, 150*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)
	db.ResetDiskStats()

	var opts []qpipe.QueryOption
	if osp {
		opts = append(opts, qpipe.WithSharedScan())
	} else {
		opts = append(opts, qpipe.WithoutOSP())
	}
	run := func(category int64) {
		res, err := db.Scan("sales").
			Filter(qpipe.Col("category").Eq(qpipe.Int(category))).
			Aggregate(qpipe.Sum(qpipe.Col("amount")).As("total")).
			Run(context.Background(), opts...)
		if err == nil {
			_, err = res.Discard()
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		run(7)
	}()
	// One full scan takes ~pages x 100µs; arrive 30% in.
	time.Sleep(time.Duration(float64(pages)*0.3) * 100 * time.Microsecond)
	go func() {
		defer wg.Done()
		run(21)
	}()
	wg.Wait()
	return db.DiskStats().Reads, time.Since(start)
}
