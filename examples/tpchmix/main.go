// TPC-H workload demo: loads the scaled TPC-H dataset, runs the paper's
// eight-query mix (§5.3) on all three systems — DBMS X (iterator engine),
// Baseline (QPipe, OSP off) and QPipe w/OSP — with several concurrent
// clients, and prints throughput plus OSP sharing statistics. A miniature
// Figure 12.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qpipe/internal/harness"
	"qpipe/internal/plan"
	"qpipe/internal/workload/tpch"
)

func main() {
	sc := harness.SmallScale()
	fmt.Printf("loading TPC-H SF=%.3f ...\n", sc.SF)
	env, err := harness.NewTPCHEnv(sc, false)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	x, err := env.NewVolcano()
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := env.NewBaseline()
	if err != nil {
		log.Fatal(err)
	}
	osp, err := env.NewQPipe()
	if err != nil {
		log.Fatal(err)
	}

	env.SetMeasuring(true)
	defer env.SetMeasuring(false)

	const clients, queriesPerClient = 6, 2
	mk := func(rng *rand.Rand) plan.Node {
		qn, p := tpch.RandomMixQuery(rng)
		_ = qn
		return p
	}
	fmt.Printf("running mix {Q1,Q4,Q6,Q8,Q12,Q13,Q14,Q19}: %d clients x %d queries\n\n",
		clients, queriesPerClient)
	fmt.Printf("%-14s %14s %16s %10s\n", "system", "throughput", "avg response", "shares")
	for _, sys := range []harness.System{x, baseline, osp} {
		if err := sys.Manager().Pool.Invalidate(); err != nil {
			log.Fatal(err)
		}
		before := sys.Shares()
		res := harness.RunClosedLoop(env, sys, clients, queriesPerClient, 0, mk)
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("%-14s %10.0f q/h %16s %10d\n",
			sys.Name(), res.Throughput, res.AvgResponse.Round(1e6), sys.Shares()-before)
	}
	fmt.Println("\nQPipe w/OSP turns concurrent-query overlap into shared work;")
	fmt.Println("the share counter shows how many packets piggybacked on in-progress ones.")
}
