// Analytics-mix demo: a miniature of the paper's full-workload experiment
// (§5.3, Figure 12), on the public API. Several concurrent clients run a
// randomized mix of analytic queries — scan-heavy aggregates, a hash join
// and a group-by report — over a star-ish orders/customers pair, once with
// OSP (the default) and once with every query opted out via WithoutOSP.
// Overlapping work between concurrent clients turns into shared packets;
// the share counter and disk-block counts show the difference.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"qpipe"
)

const (
	nOrders    = 60_000
	nCustomers = 4_000
	clients    = 6
	perClient  = 2
)

func main() {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 128})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Printf("loading %d orders / %d customers ...\n", nOrders, nCustomers)
	loadData(db)

	// The mix: query constructors parameterized the way qgen randomizes
	// selection predicates — every instance differs, so sharing must be
	// found at run time, not by textual identity.
	mix := []func(r *rand.Rand) *qpipe.Query{
		func(r *rand.Rand) *qpipe.Query { // revenue scan-aggregate
			return db.Scan("orders").
				Filter(qpipe.Col("amount").Lt(qpipe.Float(float64(100+r.Intn(800))))).
				Aggregate(qpipe.Sum(qpipe.Col("amount")).As("revenue"), qpipe.Count().As("n"))
		},
		func(r *rand.Rand) *qpipe.Query { // per-region report
			return db.Scan("orders").
				Filter(qpipe.Col("priority").Eq(qpipe.Int(int64(r.Intn(5))))).
				GroupBy([]string{"region"},
					qpipe.Count().As("n"), qpipe.Avg(qpipe.Col("amount")).As("avg_amount"))
		},
		func(r *rand.Rand) *qpipe.Query { // join: customer segment revenue
			return db.Scan("customers").
				Join(db.Scan("orders"), "cid", "cust").
				Filter(qpipe.Col("segment").Eq(qpipe.Int(int64(r.Intn(4))))).
				GroupBy([]string{"segment"}, qpipe.Sum(qpipe.Col("amount")).As("revenue"))
		},
	}

	fmt.Printf("running mix: %d clients x %d queries\n\n", clients, perClient)
	fmt.Printf("%-22s %12s %12s %10s\n", "system", "elapsed", "blocks read", "shares")
	for _, osp := range []bool{true, false} {
		name := "QPipe w/OSP"
		var opts []qpipe.QueryOption
		if !osp {
			name = "Baseline (WithoutOSP)"
			opts = append(opts, qpipe.WithoutOSP())
		}
		if err := db.DropCaches(); err != nil {
			log.Fatal(err)
		}
		db.SetDiskLatency(25*time.Microsecond, 40*time.Microsecond, 0)
		db.ResetDiskStats()
		sharesBefore := db.TotalShares()

		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c) + 1))
				for i := 0; i < perClient; i++ {
					q := mix[(c+i)%len(mix)](rng)
					res, err := q.Run(context.Background(), opts...)
					if err == nil {
						_, err = res.Discard()
					}
					if err != nil {
						log.Fatal(err)
					}
				}
			}(c)
		}
		wg.Wait()
		db.SetDiskLatency(0, 0, 0)
		fmt.Printf("%-22s %12s %12d %10d\n",
			name, time.Since(start).Round(time.Millisecond),
			db.DiskStats().Reads, db.TotalShares()-sharesBefore)
	}
	fmt.Println("\nQPipe w/OSP turns concurrent-query overlap into shared work;")
	fmt.Println("the share counter shows how many packets piggybacked on in-progress ones.")
}

func loadData(db *qpipe.DB) {
	if err := db.CreateTable("orders", qpipe.NewSchema(
		qpipe.ColDef("oid", qpipe.KindInt),
		qpipe.ColDef("cust", qpipe.KindInt),
		qpipe.ColDef("region", qpipe.KindInt),
		qpipe.ColDef("priority", qpipe.KindInt),
		qpipe.ColDef("amount", qpipe.KindFloat),
	)); err != nil {
		log.Fatal(err)
	}
	rows := make([]qpipe.Row, nOrders)
	for i := range rows {
		rows[i] = qpipe.R(i, i%nCustomers, i%7, i%5, float64(i%997))
	}
	if err := db.Load("orders", rows); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable("customers", qpipe.NewSchema(
		qpipe.ColDef("cid", qpipe.KindInt),
		qpipe.ColDef("segment", qpipe.KindInt),
		qpipe.ColDef("balance", qpipe.KindFloat),
	)); err != nil {
		log.Fatal(err)
	}
	custs := make([]qpipe.Row, nCustomers)
	for i := range custs {
		custs[i] = qpipe.R(i, i%4, float64(i%500))
	}
	if err := db.Load("customers", custs); err != nil {
		log.Fatal(err)
	}
}
