// Cost-based join reordering: the "estimate → reorder" phases of the
// planning path (parse → normalize → estimate → reorder → lower). The pass
// rewrites a multi-table SELECT's FROM list into ascending estimated-
// cardinality order — greedy smallest-build-side-first over the equi-join
// graph — and pools every join condition into WHERE (comma form), so that
// `a JOIN b ON …`, `b JOIN a ON …` and `FROM a, b WHERE …` all lower to
// one plan shape and hence one OSP signature.
//
// The rewrite happens at the AST level, before lowering, because join
// output schemas are positional concatenations: reordering after lowering
// would have to rewrite every downstream column index. Working on names
// keeps the rewrite trivially checkable — and compileSelect falls back to
// the written order whenever the rewritten query fails to lower.
package qpipe

import (
	"sort"

	"qpipe/internal/expr"
	"qpipe/internal/stats"
	"qpipe/sql"
)

// reorderSelect returns an equivalent SELECT with FROM tables ordered by
// estimated cardinality and all join predicates pooled into WHERE, or nil
// when the query is not safely reorderable (single table, SELECT *, or any
// column reference the whole-scope resolution rules cannot vouch for).
func (db *DB) reorderSelect(sel *sql.Select) *sql.Select {
	if len(sel.Joins) == 0 {
		return nil
	}
	// SELECT * output order depends on FROM order: never reorder it.
	for _, it := range sel.Items {
		if it.Star {
			return nil
		}
	}

	// Rebuild the scope the lowering will see.
	scope := &sqlScope{}
	refs := []sql.TableRef{sel.From}
	for _, j := range sel.Joins {
		refs = append(refs, j.Ref)
	}
	for _, r := range refs {
		schema, err := db.Schema(r.Table)
		if err != nil {
			return nil
		}
		qual := r.Alias
		if qual == "" {
			qual = r.Table
		}
		if err := scope.add(scopeEntry{qual: qual, table: r.Table, schema: schema}); err != nil {
			return nil
		}
	}

	// Every reference outside WHERE/ON must resolve under the strict
	// whole-scope rules, which are order-insensitive for unique names and
	// reject anything shadowing-dependent.
	strict := func(ref *sql.ColumnRef) bool {
		_, err := scope.entryOf(ref)
		return err == nil
	}
	ok := true
	for _, it := range sel.Items {
		sqlExprRefs(it.Expr, func(r *sql.ColumnRef) { ok = ok && strict(r) })
	}
	for i := range sel.GroupBy {
		ok = ok && strict(&sel.GroupBy[i])
	}
	for i := range sel.OrderBy {
		if sel.OrderBy[i].Col.Table != "" {
			ok = ok && strict(&sel.OrderBy[i].Col)
		}
	}
	if !ok {
		return nil
	}

	// Pool all conditions (WHERE plus every ON) and classify each conjunct
	// by the set of scope entries it references. Conjunct order is made
	// deterministic up to predicate commutation, so textual variants of the
	// same query drive the greedy search identically.
	pool := splitConjuncts(sel.Where)
	for _, j := range sel.Joins {
		pool = append(pool, splitConjuncts(j.On)...)
	}
	sort.SliceStable(pool, func(i, k int) bool {
		return poolSortKey(pool[i]) < poolSortKey(pool[k])
	})

	type edge struct{ a, aCol, b, bCol int }
	var edges []edge
	perEntry := make([][]sql.Pred, len(scope.entries))
	for _, p := range pool {
		owners, colOf, resolved := conjunctOwners(scope, p)
		if !resolved {
			return nil
		}
		if len(owners) == 1 {
			perEntry[owners[0]] = append(perEntry[owners[0]], p)
			continue
		}
		if cmp, isCmp := p.(*sql.Compare); isCmp && cmp.Op == "=" && len(owners) == 2 {
			lr, lOK := cmp.L.(*sql.ColumnRef)
			rr, rOK := cmp.R.(*sql.ColumnRef)
			if lOK && rOK {
				la, lc := colOf(lr)
				ra, rc := colOf(rr)
				if la >= 0 && ra >= 0 && la != ra {
					edges = append(edges, edge{a: la, aCol: lc, b: ra, bCol: rc})
				}
			}
		}
		// Multi-entry conjuncts (equi or not) lower as post-join filters
		// either way; they don't block reordering.
	}

	// Estimate per-entry filtered cardinality and column stats.
	n := len(scope.entries)
	cards := make([]float64, n)
	snaps := make([]*stats.TableStats, n)
	for i, e := range scope.entries {
		snaps[i] = db.stats.Snapshot(e.table)
		rows := float64(stats.DefaultTableRows)
		var cols []stats.ColStats
		if snaps[i] != nil {
			rows = float64(snaps[i].Rows)
			cols = snaps[i].Cols
		}
		one := &sqlScope{entries: []scopeEntry{e}}
		for _, p := range perEntry[i] {
			bp, err := lowerPred(one, p)
			if err != nil {
				continue // estimate without this conjunct; lowering decides later
			}
			ep, err := bp.resolve(e.schema)
			if err != nil {
				continue
			}
			rows *= stats.Selectivity(expr.NormalizePred(ep), cols)
		}
		cards[i] = rows
	}

	// keyNDV caps a join column's distinct count by its side's (filtered)
	// cardinality; unknown stats fall back to the cardinality itself.
	keyNDV := func(entry, col int) float64 {
		ndv := cards[entry]
		if snaps[entry] != nil && col >= 0 && col < len(snaps[entry].Cols) && snaps[entry].Cols[col].Seen {
			ndv = snaps[entry].Cols[col].NDV
		}
		if ndv > cards[entry] {
			ndv = cards[entry]
		}
		if ndv < 1 {
			ndv = 1
		}
		return ndv
	}

	// Greedy order: start from the smallest estimated input, then repeatedly
	// add the connected table minimizing the estimated join result (classic
	// containment formula |L|·|R|/max ndv per connecting edge). Ties break
	// on (cardinality, table, alias) so equivalent variants converge.
	prefer := func(i, j int) bool { // does entry i beat entry j as a tie-break?
		ei, ej := scope.entries[i], scope.entries[j]
		if ei.table != ej.table {
			return ei.table < ej.table
		}
		return ei.qual < ej.qual
	}
	start := 0
	for i := 1; i < n; i++ {
		if cards[i] < cards[start] || (cards[i] == cards[start] && prefer(i, start)) {
			start = i
		}
	}
	order := []int{start}
	used := make([]bool, n)
	used[start] = true
	cur := cards[start]
	for len(order) < n {
		best, bestRows := -1, 0.0
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			denom := 1.0
			connected := false
			for _, e := range edges {
				var jCol, oEntry, oCol int
				switch {
				case e.a == j && used[e.b]:
					jCol, oEntry, oCol = e.aCol, e.b, e.bCol
				case e.b == j && used[e.a]:
					jCol, oEntry, oCol = e.bCol, e.a, e.aCol
				default:
					continue
				}
				connected = true
				nj, no := keyNDV(j, jCol), keyNDV(oEntry, oCol)
				if no > nj {
					nj = no
				}
				denom *= nj
			}
			if !connected {
				continue
			}
			rows := cur * cards[j] / denom
			if best < 0 || rows < bestRows || (rows == bestRows && prefer(j, best)) {
				best, bestRows = j, rows
			}
		}
		if best < 0 {
			// Disconnected remainder (cross join): take the smallest input.
			for j := 0; j < n; j++ {
				if used[j] {
					continue
				}
				if best < 0 || cards[j] < cards[best] || (cards[j] == cards[best] && prefer(j, best)) {
					best = j
				}
			}
			bestRows = cur * cards[best]
		}
		used[best] = true
		order = append(order, best)
		if bestRows < 1 {
			bestRows = 1
		}
		cur = bestRows
	}

	// Rebuild the SELECT: chosen order, comma-form joins, pooled WHERE.
	out := *sel
	out.From = refs[order[0]]
	out.Joins = make([]sql.JoinClause, 0, n-1)
	for _, ix := range order[1:] {
		out.Joins = append(out.Joins, sql.JoinClause{Ref: refs[ix]})
	}
	switch len(pool) {
	case 0:
		out.Where = nil
	case 1:
		out.Where = pool[0]
	default:
		out.Where = &sql.And{Ps: pool}
	}
	return &out
}

// poolSortKey orders pooled conjuncts deterministically; equality operands
// sort commutation-invariantly so `a = b` and `b = a` pool identically
// (which equality becomes the hash key must not depend on spelling).
func poolSortKey(p sql.Pred) string {
	if cmp, ok := p.(*sql.Compare); ok && cmp.Op == "=" {
		l, r := cmp.L.String(), cmp.R.String()
		if r < l {
			l, r = r, l
		}
		return l + " = " + r
	}
	return p.String()
}

// conjunctOwners reports which scope entries a conjunct references, using
// lenient per-reference resolution (qualified names bind to their entry,
// bare names to their unique owner). resolved=false means some reference
// cannot be pinned to exactly one entry — the caller must not reorder.
func conjunctOwners(scope *sqlScope, p sql.Pred) (owners []int, colOf func(*sql.ColumnRef) (int, int), resolved bool) {
	resolved = true
	seen := make(map[int]bool)
	lookup := func(ref *sql.ColumnRef) (entry, col int) {
		if ref.Table != "" {
			for i, e := range scope.entries {
				if e.qual == ref.Table {
					if c := e.schema.ColIndex(ref.Name); c >= 0 {
						return i, c
					}
					return -1, -1
				}
			}
			return -1, -1
		}
		entry, col = -1, -1
		for i, e := range scope.entries {
			if c := e.schema.ColIndex(ref.Name); c >= 0 {
				if entry >= 0 {
					return -1, -1 // ambiguous bare name
				}
				entry, col = i, c
			}
		}
		return entry, col
	}
	sqlPredRefs(p, func(ref *sql.ColumnRef) {
		e, _ := lookup(ref)
		if e < 0 {
			resolved = false
			return
		}
		if !seen[e] {
			seen[e] = true
			owners = append(owners, e)
		}
	})
	sort.Ints(owners)
	return owners, lookup, resolved
}

// sqlExprRefs walks an AST expression calling fn on every column reference.
func sqlExprRefs(e sql.Expr, fn func(*sql.ColumnRef)) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		fn(x)
	case *sql.BinaryExpr:
		sqlExprRefs(x.L, fn)
		sqlExprRefs(x.R, fn)
	case *sql.AggCall:
		if x.Arg != nil {
			sqlExprRefs(x.Arg, fn)
		}
	}
}

// sqlPredRefs is sqlExprRefs for AST predicates.
func sqlPredRefs(p sql.Pred, fn func(*sql.ColumnRef)) {
	switch x := p.(type) {
	case *sql.Compare:
		sqlExprRefs(x.L, fn)
		sqlExprRefs(x.R, fn)
	case *sql.And:
		for _, q := range x.Ps {
			sqlPredRefs(q, fn)
		}
	case *sql.Or:
		for _, q := range x.Ps {
			sqlPredRefs(q, fn)
		}
	case *sql.Not:
		sqlPredRefs(x.P, fn)
	case *sql.InPred:
		sqlExprRefs(x.E, fn)
		for _, v := range x.Vals {
			sqlExprRefs(v, fn)
		}
	case *sql.BetweenPred:
		sqlExprRefs(x.E, fn)
		sqlExprRefs(x.Lo, fn)
		sqlExprRefs(x.Hi, fn)
	}
}
