#!/usr/bin/env bash
# Server integration smoke: builds qpipe-server, serves the demo dataset on
# a loopback port, drives it with qpipe-shell -connect (a query and the
# remote \stats meta command), then sends SIGTERM and requires a graceful
# exit. Fails loudly on any step so CI catches a broken wire path, a broken
# remote shell, or a hung drain.
set -euo pipefail

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo" || exit 1

addr=127.0.0.1:5459
bin=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/qpipe-server" ./cmd/qpipe-server
go build -o "$bin/qpipe-shell" ./cmd/qpipe-shell

"$bin/qpipe-server" -listen "$addr" -demo -rows 5000 -customers 250 \
    -max-queries 8 &
server_pid=$!

# Wait for the listener: the first successful remote query is the gate.
ready=0
for _ in $(seq 1 50); do
    if out=$("$bin/qpipe-shell" -connect "$addr" \
        -c 'SELECT count(*) AS n FROM orders;' 2>/dev/null); then
        ready=1
        break
    fi
    sleep 0.2
done
if [ "$ready" = 0 ]; then
    echo "server-smoke: server never became ready on $addr"
    exit 1
fi
echo "$out"
echo "$out" | grep -q '5000' || {
    echo "server-smoke: remote count(*) did not return 5000"
    exit 1
}

# Remote \stats must surface server-side counters over the wire (meta
# commands are REPL-side, so feed it through stdin).
printf '\\stats\n\\q\n' | "$bin/qpipe-shell" -connect "$addr" \
    | tee /dev/stderr | grep -q 'queries_served' || {
    echo "server-smoke: remote \\stats missing queries_served"
    exit 1
}

# SIGTERM: graceful drain, exit 0, final stats line.
kill -TERM "$server_pid"
for _ in $(seq 1 50); do
    if ! kill -0 "$server_pid" 2>/dev/null; then break; fi
    sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "server-smoke: server did not exit after SIGTERM"
    exit 1
fi
wait "$server_pid" || {
    echo "server-smoke: server exited non-zero after SIGTERM"
    exit 1
}
echo "server-smoke: OK"
