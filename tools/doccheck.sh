#!/usr/bin/env bash
# Doc-link checker: fails CI when README.md or ARCHITECTURE.md reference
# repo files or CLI flags that do not exist, so the docs cannot silently rot
# as the code moves.
#
# Checks, per document:
#   1. Relative markdown links [text](path) resolve to files.
#   2. Path-like tokens (cmd/..., internal/..., examples/..., sql/...,
#      tools/..., and bare *.go/*.md/*.sql/*.sh/*.json filenames) name real
#      files — bare filenames may live anywhere in the tree.
#   3. '-flag' tokens in fenced shell blocks exist as defined flags in the
#      cmd/ binaries (or are standard 'go test' flags).
set -euo pipefail

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo" || exit 1

docs=(README.md ARCHITECTURE.md)

# Placeholder names used in usage examples, not expected to exist.
ignored="my_mix.sql FILE file.sql script.sql mix.sql"

is_ignored() {
    # shellcheck disable=SC2086  # $ignored is a deliberate word list
    for ig in $ignored; do
        if [ "$1" = "$ig" ]; then return 0; fi
    done
    return 1
}

# 1. Relative markdown links. (grep finding nothing is fine: || true keeps
# pipefail from treating an empty document section as an error.)
for doc in "${docs[@]}"; do
    { grep -oE '\]\([^)#][^)]*\)' "$doc" || true; } | sed 's/^](//; s/)$//' | while read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$target" ]; then
            echo "$doc: broken link -> $target"
            touch "$repo/.doccheck-failed"
        fi
    done
done

# 2. Path-like tokens anywhere in the docs.
for doc in "${docs[@]}"; do
    { grep -oE '(\./)?(cmd|internal|examples|sql|tools)/[A-Za-z0-9_./-]+|[A-Za-z0-9_-]+\.(go|md|sql|sh|json|yml)' "$doc" || true; } \
        | sed 's|^\./||; s|[/.]$||' | sort -u | while read -r tok; do
        if is_ignored "$tok"; then continue; fi
        case "$tok" in
            */*)
                if [ ! -e "$tok" ]; then
                    echo "$doc: missing path -> $tok"
                    touch "$repo/.doccheck-failed"
                fi
                ;;
            *)
                # Bare filename: accept it anywhere in the tree (root files
                # like db.go, or nested ones like tpchmix.sql).
                if [ ! -e "$tok" ] && [ -z "$(find . -name "$tok" -not -path './.git/*' -print -quit)" ]; then
                    echo "$doc: missing file -> $tok"
                    touch "$repo/.doccheck-failed"
                fi
                ;;
        esac
    done
done

# 3. CLI flags in fenced shell blocks.
known_flags=$(grep -ohE 'flag\.[A-Za-z]+\("[a-z_-]+"' cmd/qpipe-bench/main.go cmd/qpipe-shell/main.go cmd/qpipe-server/main.go \
    | sed 's/.*("\([a-z_-]*\)".*/\1/' | sort -u)
go_test_flags="bench benchtime benchmem run race fuzz fuzztime update v count timeout cover"

for doc in "${docs[@]}"; do
    awk '/^```/{in_block=!in_block; next} in_block' "$doc" \
        | { grep -oE '(^| )-[a-z][a-z_-]*' || true; } | sed 's/^ *-//' | sort -u | while read -r f; do
        found=0
        # shellcheck disable=SC2086  # deliberate word lists
        for k in $known_flags $go_test_flags; do
            if [ "$f" = "$k" ]; then found=1; break; fi
        done
        if [ "$found" = 0 ]; then
            echo "$doc: unknown CLI flag -> -$f (not defined in cmd/qpipe-bench, cmd/qpipe-shell or cmd/qpipe-server)"
            touch "$repo/.doccheck-failed"
        fi
    done
done

if [ -e "$repo/.doccheck-failed" ]; then
    rm -f "$repo/.doccheck-failed"
    echo "doccheck: FAILED"
    exit 1
fi
echo "doccheck: README.md and ARCHITECTURE.md references are all valid"
