#!/usr/bin/env bash
# Out-of-module consumer smoke: proves the public API is embeddable without
# any qpipe/internal import. Builds a tiny module OUTSIDE this repository
# that depends on qpipe via a go.mod replace directive, compiles it (the Go
# toolchain enforces internal/ visibility across module boundaries, so a
# leak of internal types through the public surface fails this build), and
# runs it end to end. Also greps the examples for internal imports — they
# must stay on the public surface too.
set -euo pipefail

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if grep -rn '"qpipe/internal' "$repo/examples/" --include='*.go'; then
    echo "FAIL: examples import qpipe/internal packages" >&2
    exit 1
fi
echo "examples: no internal imports"

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

cat > "$dir/main.go" <<'EOF'
// Consumer smoke: an out-of-module embedder driving qpipe's public API —
// facade, DDL, builder with typed errors, per-query options, streaming.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"qpipe"
)

func main() {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 64, ResultCacheTuples: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.CreateTable("cities", qpipe.NewSchema(
		qpipe.ColDef("id", qpipe.KindInt),
		qpipe.ColDef("city", qpipe.KindString),
		qpipe.ColDef("pop", qpipe.KindFloat))); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("cities", []qpipe.Row{
		qpipe.R(1, "Pittsburgh", 0.30),
		qpipe.R(2, "Boston", 0.65),
		qpipe.R(3, "Seattle", 0.74),
	}); err != nil {
		log.Fatal(err)
	}

	res, err := db.Scan("cities").
		Filter(qpipe.Col("pop").Gt(qpipe.Float(0.5))).
		Project(qpipe.Col("city"), qpipe.Col("pop").Mul(qpipe.Float(1e6)).As("population")).
		Sort("city").
		Run(context.Background(), qpipe.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for row := range res.Rows() {
		fmt.Printf("%s %0.f\n", row[0].S, row[1].F)
		n++
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	if n != 2 {
		log.Fatalf("got %d rows, want 2", n)
	}

	// Typed errors must be matchable from outside the module.
	var uc *qpipe.UnknownColumnError
	if _, err := db.Scan("cities").Select("nope").Plan(); !errors.As(err, &uc) {
		log.Fatalf("expected *qpipe.UnknownColumnError, got %v", err)
	}
	fmt.Println("consumer smoke OK")
}
EOF

cd "$dir" || exit 1
go mod init consumer-smoke >/dev/null
go mod edit -require 'qpipe@v0.0.0' -replace "qpipe=$repo"
go build -o consumer .
./consumer

# Second consumer: the sqlshell example built out-of-module, proving the
# whole SQL path (qpipe + qpipe/sql) needs no internal imports either.
dir2=$(mktemp -d)
trap 'rm -rf "$dir" "$dir2"' EXIT
cp "$repo/examples/sqlshell/main.go" "$dir2/main.go"
cd "$dir2" || exit 1
go mod init sqlshell-smoke >/dev/null
go mod edit -require 'qpipe@v0.0.0' -replace "qpipe=$repo"
go build -o sqlshell .
./sqlshell
echo "sqlshell consumer smoke OK"
