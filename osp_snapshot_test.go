package qpipe

import (
	"context"
	"testing"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/sm"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// TestOSPSnapshotConsistency: a satellite that attaches to a host scan
// mid-flight while a concurrent transaction is waiting to rewrite the same
// table must see exactly the same committed state as the host — all rows
// pre-commit, never a mix, never the half-applied transaction.
//
// Every committed state of the table has val = k (a version number) in all
// rows, so sum(val) = rows*k exactly; a scan that observed a half-applied
// commit would report something in between. Each round is deterministic:
// the host starts over a slow disk, the satellite attaches mid-scan, and
// only then does the writer begin a transaction bumping every row to the
// next version — its first table touch queues behind both queries' shared
// locks, so both scans MUST report the round's starting version. The test
// also requires that satellite attachment actually happened, otherwise the
// scenario under test never occurred.
func TestOSPSnapshotConsistency(t *testing.T) {
	const (
		rows   = 5000
		rounds = 6
	)
	d := disk.New(disk.Config{BlockSize: 1024})
	// Pool much smaller than the table so scans go to the (slow) disk and
	// the second query has no buffer-pool shortcut — it must attach.
	m := sm.NewSharedDisk(d, 8, nil)
	l, err := wal.Open(d, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableWAL(l)
	schema := tuple.NewSchema(tuple.Col("id", tuple.KindInt), tuple.Col("val", tuple.KindInt))
	if _, err := m.CreateTable("tt", schema); err != nil {
		t.Fatal(err)
	}
	initial := make([]tuple.Tuple, rows)
	for i := range initial {
		initial[i] = tuple.Tuple{tuple.I64(int64(i)), tuple.I64(1)} // version 1
	}
	if err := m.Load("tt", initial); err != nil {
		t.Fatal(err)
	}
	d.SetLatency(200*time.Microsecond, 0, 0)
	defer d.SetLatency(0, 0, 0)

	eng := New(m, DefaultConfig())
	defer eng.Close()

	ctx := context.Background()
	mk := func() plan.Node {
		scan := plan.NewTableScan("tt", schema, nil, nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(1)}})
	}
	sum := func(res *Result) (int64, error) {
		out, err := res.All()
		if err != nil {
			return 0, err
		}
		return int64(out[0][0].F), nil
	}
	// writeTx commits one transaction setting every row's val to version k.
	// Its first table touch takes the X lock, so against live readers the
	// whole transaction queues until their shared locks drain.
	writeTx := func(k int64) error {
		tx := m.Begin()
		type target struct {
			rid heap.RID
			id  int64
		}
		var tgts []target
		if err := tx.ScanEffective(ctx, "tt", func(rid heap.RID, row tuple.Tuple) bool {
			tgts = append(tgts, target{rid, row[0].I})
			return true
		}); err != nil {
			tx.Rollback()
			return err
		}
		for _, tg := range tgts {
			if err := tx.StageUpdate(ctx, "tt", tg.rid, tuple.Tuple{tuple.I64(tg.id), tuple.I64(k)}); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Commit(ctx)
	}

	for round := 0; round < rounds; round++ {
		version := int64(round + 1) // committed state entering this round
		res1, err := eng.Query(ctx, mk())
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // host mid-scan
		res2, err := eng.Query(ctx, mk()) // shared lock held once Query returns
		if err != nil {
			t.Fatal(err)
		}
		// Both queries hold their shared locks now; the writer's exclusive
		// request queues behind them, racing the live scan group.
		done := make(chan error, 1)
		go func() { done <- writeTx(version + 1) }()

		s1, err1 := sum(res1)
		s2, err2 := sum(res2)
		if err1 != nil || err2 != nil {
			// A TornScanError here would mean a commit slid under a live
			// scan group — exactly the invariant this test defends.
			t.Fatalf("round %d: host err=%v satellite err=%v", round, err1, err2)
		}
		if want := rows * version; s1 != want || s2 != want {
			t.Fatalf("round %d: host sum %d, satellite sum %d, want %d (version %d) — "+
				"scan group saw a state other than the committed snapshot",
				round, s1, s2, want, version)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: writer: %v", round, err)
		}
	}

	// Serial-run parity: after all rounds the table must be exactly at the
	// final version.
	d.SetLatency(0, 0, 0)
	res, err := eng.Query(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	final, err := sum(res)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(rows * (rounds + 1)); final != want {
		t.Fatalf("final sum %d, want %d", final, want)
	}
	if eng.Stats().SharesByOp[plan.OpTableScan] == 0 {
		t.Fatal("no satellite ever attached mid-scan — the scenario under test never occurred")
	}
}
