// Package client is the Go client for qpipe-server: Connect dials the wire
// protocol, Query streams results batch-by-batch, Prepare/Exec mirror the
// embedded API. Server-side errors arrive as the same concrete exported
// types the embedded API returns (via qpipe.UnmarshalWireError), so
// errors.As branches — *qpipe.OverloadedError back-off, *qpipe.DeadlineError
// retry — work unchanged a network away.
//
// A connection runs one request at a time (the protocol is strictly
// request/response with a streamed body); Rows must be drained or closed
// before the next call. For concurrency, open more connections — that is
// the point of the server: many connections means many concurrent queries
// means OSP sharing opportunities.
package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"qpipe"
	"qpipe/internal/tuple"
	"qpipe/wire"
)

// Row is one result row (an alias of qpipe.Row: shared, immutable values).
type Row = qpipe.Row

// Option adjusts one remote query's execution, mirroring the embedded
// functional options that make sense over the wire.
type Option func(*wire.ExecOpts)

// WithTimeout bounds the query's server-side execution; exceeding it fails
// the query with a *qpipe.DeadlineError. The wire carries milliseconds:
// sub-millisecond values round up to 1ms rather than silently dropping the
// timeout.
func WithTimeout(d time.Duration) Option {
	return func(o *wire.ExecOpts) {
		ms := uint64(d / time.Millisecond)
		if ms == 0 && d > 0 {
			ms = 1
		}
		o.TimeoutMs = ms
	}
}

// WithParallelism sets the intra-operator fan-out.
func WithParallelism(n int) Option {
	return func(o *wire.ExecOpts) { o.Parallelism = uint32(n) }
}

// WithBatchSize sets the tuples-per-batch target.
func WithBatchSize(n int) Option {
	return func(o *wire.ExecOpts) { o.BatchSize = uint32(n) }
}

// WithoutOSP opts the query out of on-demand simultaneous pipelining.
func WithoutOSP() Option {
	return func(o *wire.ExecOpts) { o.NoOSP = true }
}

func execOpts(opts []Option) wire.ExecOpts {
	var o wire.ExecOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Conn is one client connection. Not safe for concurrent use: a connection
// serves one request at a time. Open one Conn per worker.
type Conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	// readBuf is the reusable frame payload buffer; encBuf the reusable
	// encode buffer; arena amortizes row allocations across batches.
	readBuf []byte
	encBuf  []byte
	arena   tuple.RowArena

	// rows is the in-flight result stream, if any; it must finish before
	// the next request starts.
	rows *Rows

	closed bool
}

// Connect dials a qpipe-server and performs the protocol handshake. The
// context bounds dialing and the handshake only, not the connection's life.
func Connect(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	conn := &Conn{c: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
	}
	hello := wire.Hello{Version: wire.ProtocolVersion, Client: "qpipe/client"}
	if err := conn.request(wire.MsgHello, hello.Encode(nil)); err != nil {
		nc.Close()
		return nil, err
	}
	t, payload, err := conn.readFrame()
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch t {
	case wire.MsgWelcome:
		if _, err := wire.DecodeWelcome(payload); err != nil {
			nc.Close()
			return nil, err
		}
	case wire.MsgError:
		nc.Close()
		return nil, conn.decodeErr(payload)
	default:
		nc.Close()
		return nil, &wire.ProtocolError{Reason: fmt.Sprintf("expected Welcome, got %s", t)}
	}
	nc.SetDeadline(time.Time{})
	return conn, nil
}

// Close sends a best-effort Quit and closes the socket. A Conn with an
// unfinished Rows is closed hard (the server cancels the query).
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.rows == nil {
		// Clean close: the server sees Quit and ends the connection.
		if err := wire.WriteFrame(c.bw, wire.MsgQuit, nil); err == nil {
			c.bw.Flush()
		}
	}
	return c.c.Close()
}

// request writes one frame and flushes.
func (c *Conn) request(t wire.MsgType, payload []byte) error {
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	if cap(payload) > cap(c.encBuf) {
		c.encBuf = payload[:0]
	}
	return c.bw.Flush()
}

// readFrame reads one frame into the connection's reusable buffer.
func (c *Conn) readFrame() (wire.MsgType, []byte, error) {
	t, payload, buf, err := wire.ReadFrame(c.br, c.readBuf)
	c.readBuf = buf
	return t, payload, err
}

// decodeErr turns a MsgError payload into the concrete exported error type.
func (c *Conn) decodeErr(payload []byte) error {
	we, err := wire.DecodeError(payload)
	if err != nil {
		return err
	}
	return qpipe.UnmarshalWireError(we)
}

// ready guards request entry: the previous stream must have finished.
func (c *Conn) ready() error {
	if c.closed {
		return qpipe.ErrClosed
	}
	if c.rows != nil {
		return fmt.Errorf("qpipe/client: a result stream is still open — drain or Close it first")
	}
	return nil
}

// applyCtx arms the socket deadline from ctx for the duration of one
// request; the returned restore func clears it.
func (c *Conn) applyCtx(ctx context.Context) (restore func()) {
	if dl, ok := ctx.Deadline(); ok {
		c.c.SetDeadline(dl)
		return func() { c.c.SetDeadline(time.Time{}) }
	}
	return func() {}
}

// Query submits one SQL statement that returns rows (SELECT or EXPLAIN; a
// SET adjusts the connection's server-side session and returns an empty
// Rows). The context's deadline bounds the whole stream client-side; pass
// WithTimeout to bound server-side execution with a typed error.
func (c *Conn) Query(ctx context.Context, sqlText string, opts ...Option) (*Rows, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	restore := c.applyCtx(ctx)
	q := wire.Query{SQL: sqlText, Opts: execOpts(opts)}
	if err := c.request(wire.MsgQuery, q.Encode(c.encBuf[:0])); err != nil {
		restore()
		return nil, err
	}
	return c.startRows(restore)
}

// startRows consumes the response head: RowDesc opens a stream; a bare
// Complete yields an exhausted Rows (SET, empty statements); Error fails.
func (c *Conn) startRows(restore func()) (*Rows, error) {
	t, payload, err := c.readFrame()
	if err != nil {
		restore()
		return nil, err
	}
	switch t {
	case wire.MsgRowDesc:
		desc, err := wire.DecodeRowDesc(payload)
		if err != nil {
			restore()
			return nil, err
		}
		r := &Rows{conn: c, desc: desc, restore: restore}
		c.rows = r
		return r, nil
	case wire.MsgComplete:
		comp, err := wire.DecodeComplete(payload)
		if err != nil {
			restore()
			return nil, err
		}
		restore()
		return &Rows{done: true, rowCount: comp.Rows}, nil
	case wire.MsgError:
		restore()
		return nil, c.decodeErr(payload)
	default:
		restore()
		return nil, &wire.ProtocolError{Reason: fmt.Sprintf("expected RowDesc, got %s", t)}
	}
}

// Exec runs a script of statements that do not return rows (CREATE TABLE,
// CREATE INDEX, INSERT, UPDATE, DELETE, ANALYZE, BEGIN/COMMIT/ROLLBACK) and
// returns the affected row count. Transaction-control statements operate on
// this connection's server-side session: writes between BEGIN and COMMIT
// stage invisibly and commit atomically; a dropped connection rolls back.
func (c *Conn) Exec(ctx context.Context, script string) (int64, error) {
	if err := c.ready(); err != nil {
		return 0, err
	}
	restore := c.applyCtx(ctx)
	defer restore()
	e := wire.Exec{SQL: script}
	if err := c.request(wire.MsgExec, e.Encode(c.encBuf[:0])); err != nil {
		return 0, err
	}
	t, payload, err := c.readFrame()
	if err != nil {
		return 0, err
	}
	switch t {
	case wire.MsgComplete:
		comp, err := wire.DecodeComplete(payload)
		if err != nil {
			return 0, err
		}
		return comp.Rows, nil
	case wire.MsgError:
		return 0, c.decodeErr(payload)
	default:
		return 0, &wire.ProtocolError{Reason: fmt.Sprintf("expected Complete, got %s", t)}
	}
}

// Begin opens a transaction on this connection's server-side session.
// Subsequent Exec writes stage into it until Commit or Rollback.
func (c *Conn) Begin(ctx context.Context) error {
	_, err := c.Exec(ctx, "BEGIN")
	return err
}

// Commit commits the connection's open transaction.
func (c *Conn) Commit(ctx context.Context) error {
	_, err := c.Exec(ctx, "COMMIT")
	return err
}

// Rollback discards the connection's open transaction.
func (c *Conn) Rollback(ctx context.Context) error {
	_, err := c.Exec(ctx, "ROLLBACK")
	return err
}

// Stats fetches the server's counters (engine, OSP sharing, governance,
// disk and per-server) as stable name → value pairs.
func (c *Conn) Stats(ctx context.Context) (map[string]int64, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	restore := c.applyCtx(ctx)
	defer restore()
	if err := c.request(wire.MsgStats, nil); err != nil {
		return nil, err
	}
	t, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.MsgStatsResult:
		sr, err := wire.DecodeStatsResult(payload)
		if err != nil {
			return nil, err
		}
		out := make(map[string]int64, len(sr.Stats))
		for _, s := range sr.Stats {
			out[s.Name] = s.Value
		}
		return out, nil
	case wire.MsgError:
		return nil, c.decodeErr(payload)
	default:
		return nil, &wire.ProtocolError{Reason: fmt.Sprintf("expected StatsResult, got %s", t)}
	}
}

// Stmt is a prepared SELECT on the server, reusable across executions.
type Stmt struct {
	conn *Conn
	id   uint32
	desc wire.RowDesc
}

// Prepare compiles a SELECT server-side for repeated execution.
func (c *Conn) Prepare(ctx context.Context, sqlText string) (*Stmt, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	restore := c.applyCtx(ctx)
	defer restore()
	p := wire.Prepare{SQL: sqlText}
	if err := c.request(wire.MsgPrepare, p.Encode(c.encBuf[:0])); err != nil {
		return nil, err
	}
	t, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.MsgPrepared:
		pr, err := wire.DecodePrepared(payload)
		if err != nil {
			return nil, err
		}
		return &Stmt{conn: c, id: pr.ID, desc: pr.Desc}, nil
	case wire.MsgError:
		return nil, c.decodeErr(payload)
	default:
		return nil, &wire.ProtocolError{Reason: fmt.Sprintf("expected Prepared, got %s", t)}
	}
}

// Query executes the prepared statement.
func (s *Stmt) Query(ctx context.Context, opts ...Option) (*Rows, error) {
	c := s.conn
	if err := c.ready(); err != nil {
		return nil, err
	}
	restore := c.applyCtx(ctx)
	e := wire.Execute{ID: s.id, Opts: execOpts(opts)}
	if err := c.request(wire.MsgExecute, e.Encode(c.encBuf[:0])); err != nil {
		restore()
		return nil, err
	}
	return c.startRows(restore)
}

// Close frees the statement server-side.
func (s *Stmt) Close(ctx context.Context) error {
	c := s.conn
	if err := c.ready(); err != nil {
		return err
	}
	restore := c.applyCtx(ctx)
	defer restore()
	cs := wire.CloseStmt{ID: s.id}
	if err := c.request(wire.MsgCloseStmt, cs.Encode(c.encBuf[:0])); err != nil {
		return err
	}
	t, payload, err := c.readFrame()
	if err != nil {
		return err
	}
	switch t {
	case wire.MsgComplete:
		return nil
	case wire.MsgError:
		return c.decodeErr(payload)
	default:
		return &wire.ProtocolError{Reason: fmt.Sprintf("expected Complete, got %s", t)}
	}
}

// Rows streams one query's result. Drive it with Next (or All/Discard) to
// io.EOF, or Close it early — either way the connection is reusable
// afterwards.
type Rows struct {
	conn    *Conn
	desc    wire.RowDesc
	restore func()

	batch []Row // decoded rows not yet handed out
	off   int

	done      bool
	rowCount  int64
	err       error
	cancelled bool
}

// Schema returns the result's column names and kinds as a qpipe.Schema.
func (r *Rows) Schema() *qpipe.Schema {
	cols := make([]tuple.Column, len(r.desc.Cols))
	for i, c := range r.desc.Cols {
		cols[i] = tuple.Column{Name: c.Name, Kind: c.Kind}
	}
	return &tuple.Schema{Cols: cols}
}

// finish detaches the stream from the connection.
func (r *Rows) finish() {
	if r.conn != nil {
		r.conn.rows = nil
		r.conn = nil
	}
	if r.restore != nil {
		r.restore()
		r.restore = nil
	}
}

// fail records a terminal error. A wire-level failure (not a typed server
// error frame) poisons the connection: the stream cannot be resynchronized.
func (r *Rows) fail(err error, poison bool) error {
	r.done = true
	r.err = err
	if poison && r.conn != nil {
		r.conn.closed = true
		r.conn.c.Close()
	}
	r.finish()
	return err
}

// Next returns the next batch of rows; io.EOF signals completion. The rows
// are immutable (decoded fresh client-side, but the same read-only
// convention as the embedded API); the batch slice is valid until the next
// Next call.
func (r *Rows) Next() ([]Row, error) {
	if r.off < len(r.batch) {
		b := r.batch[r.off:]
		r.off = len(r.batch)
		return b, nil
	}
	if r.done {
		if r.err != nil {
			return nil, r.err
		}
		return nil, io.EOF
	}
	for {
		t, payload, err := r.conn.readFrame()
		if err != nil {
			return nil, r.fail(err, true)
		}
		switch t {
		case wire.MsgRowBatch:
			batch, err := wire.DecodeRowBatch(payload, &r.conn.arena)
			if err != nil {
				return nil, r.fail(err, true)
			}
			if len(batch) == 0 {
				continue
			}
			r.batch, r.off = batch, len(batch)
			r.rowCount += int64(len(batch))
			return batch, nil
		case wire.MsgComplete:
			comp, err := wire.DecodeComplete(payload)
			if err != nil {
				return nil, r.fail(err, true)
			}
			r.done = true
			r.rowCount = comp.Rows
			r.finish()
			return nil, io.EOF
		case wire.MsgError:
			serr := r.conn.decodeErr(payload)
			return nil, r.fail(serr, false)
		default:
			return nil, r.fail(&wire.ProtocolError{
				Reason: fmt.Sprintf("expected RowBatch, got %s", t)}, true)
		}
	}
}

// All drains the stream and returns every row.
func (r *Rows) All() ([]Row, error) {
	var out []Row
	for {
		b, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, b...)
	}
}

// Discard drains and drops the stream, returning the row count.
func (r *Rows) Discard() (int64, error) {
	for {
		_, err := r.Next()
		if err == io.EOF {
			return r.rowCount, nil
		}
		if err != nil {
			return r.rowCount, err
		}
	}
}

// Err returns the stream's terminal error (nil after clean completion).
func (r *Rows) Err() error { return r.err }

// Close ends the stream early: it sends a Cancel and drains the server's
// remaining frames (usually one error or completion), leaving the
// connection ready for the next request. Closing a finished stream is a
// no-op. The query's typed terminal error (e.g. the cancellation) is
// discarded — use Next/Discard when it matters.
func (r *Rows) Close() error {
	if r.done || r.conn == nil {
		r.finish()
		return nil
	}
	if !r.cancelled {
		r.cancelled = true
		if err := r.conn.request(wire.MsgCancel, nil); err != nil {
			return r.fail(err, true)
		}
	}
	for {
		t, payload, err := r.conn.readFrame()
		if err != nil {
			return r.fail(err, true)
		}
		switch t {
		case wire.MsgRowBatch:
			// Residual batches in flight: drop them.
		case wire.MsgComplete, wire.MsgError:
			_ = payload
			r.done = true
			r.finish()
			return nil
		default:
			return r.fail(&wire.ProtocolError{
				Reason: fmt.Sprintf("expected RowBatch, got %s", t)}, true)
		}
	}
}
