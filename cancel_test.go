package qpipe

import (
	"context"
	"errors"
	"testing"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
)

// Cancellation tests: a cancelled query must finish with the cancellation
// error — never report success — and must leave no temp spill files behind.
// (Before the ErrConsumersGone sentinel, operators swallowed every output
// error as "consumers gone" and a cancelled join could finish clean.)

// waitNoTempFiles polls until no temp file with the prefix remains (operator
// cleanup defers run as the packet's Run returns, slightly after the query's
// own completion is observable).
func waitNoTempFiles(t *testing.T, files func() []string, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		left := files()
		if len(left) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s temp files leaked after cancellation: %v", what, left)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestHashJoinCancelMidProbe(t *testing.T) {
	// Build side larger than the in-memory limit so the hybrid partitioned
	// path runs and spills hjb/hjp partition files.
	mgr := newTestDB(t, 70_000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	// Slow the disk down so the cancel lands mid-join, not post-completion.
	mgr.Pool.Invalidate()
	mgr.Disk.SetLatency(20*time.Microsecond, 30*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)

	l := plan.NewTableScan("t", tableSchema(mgr), nil, []int{0, 1}, false)
	r := plan.NewTableScan("t", tableSchema(mgr), nil, []int{0, 2}, false)
	j := plan.NewHashJoin(l, r, 0, 0).WithParallelism(4)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	res, err := eng.Query(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the probe phase: probe spill files exist once the build side
	// is fully partitioned and probing has begun.
	deadline := time.Now().Add(20 * time.Second)
	for len(mgr.Disk.FilesWithPrefix("tmp:hjp:")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("join never reached its probe phase")
		}
		time.Sleep(time.Millisecond)
	}
	res.Cancel()
	if _, err := res.All(); err == nil {
		t.Fatal("cancelled join reported success")
	}
	if werr := res.q.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("root packet error = %v, want context.Canceled", werr)
	}
	for _, pkt := range res.q.Packets() {
		if pkt.Node.Op() == plan.OpHashJoin {
			<-pkt.Done()
			if perr := pkt.Err(); !errors.Is(perr, context.Canceled) {
				t.Fatalf("join packet error = %v, want context.Canceled", perr)
			}
		}
	}
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:hjb:") }, "build-side")
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:hjp:") }, "probe-side")
}

func TestGroupByCancelMidAggregation(t *testing.T) {
	mgr := newTestDB(t, 40_000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Pool.Invalidate()
	mgr.Disk.SetLatency(30*time.Microsecond, 45*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)

	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	gb := plan.NewGroupBy(scan, []int{1}, []expr.AggSpec{
		{Kind: expr.AggCount},
		{Kind: expr.AggSum, Arg: expr.Col(2)},
	}).WithParallelism(4)
	res, err := eng.Query(context.Background(), gb)
	if err != nil {
		t.Fatal(err)
	}
	// Let the aggregation get under way (the scan alone takes hundreds of
	// milliseconds at this latency), then kill the query mid-flight.
	time.Sleep(20 * time.Millisecond)
	res.Cancel()
	if _, err := res.All(); err == nil {
		t.Fatal("cancelled group-by reported success")
	}
	if werr := res.q.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("root packet error = %v, want context.Canceled", werr)
	}
	for _, pkt := range res.q.Packets() {
		if pkt.Node.Op() == plan.OpGroupBy {
			<-pkt.Done()
			if perr := pkt.Err(); !errors.Is(perr, context.Canceled) {
				t.Fatalf("group-by packet error = %v, want context.Canceled", perr)
			}
		}
	}
}

// TestSortCancelLeavesNoSpills covers the audited sort windows: runs and the
// materialized output file must be cleaned up when the query dies mid-sort.
func TestSortCancelLeavesNoSpills(t *testing.T) {
	mgr := newTestDB(t, 40_000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Pool.Invalidate()
	mgr.Disk.SetLatency(30*time.Microsecond, 45*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)

	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	res, err := eng.Query(context.Background(), plan.NewSort(scan, []int{2}, false))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	res.Cancel()
	if _, err := res.All(); err == nil {
		t.Fatal("cancelled sort reported success")
	}
	_ = res.q.Wait()
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:sortrun:") }, "sort-run")
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:sorted:") }, "sorted-output")
}
