package qpipe

import (
	"context"
	"errors"
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/sql"
)

// Resource-governance tests: admission control (typed shedding, FIFO queue,
// recovery), per-query deadlines (typed errors through every submission and
// execution path), and graceful drain — all through the public facade.

// waitStat polls a Stats gauge until it reaches want.
func waitStat(t *testing.T, db *DB, get func(Stats) int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for get(db.Stats()) != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d (timed out)", what, get(db.Stats()), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// governedDB opens a DB whose result buffers are small enough that an
// undrained query reliably stays in flight (holding its admission slot).
func governedDB(t *testing.T, rows int, opts Options) *DB {
	t.Helper()
	opts.PoolPages = 64
	opts.BufferCapacity = 2
	opts.BatchSize = 16
	opts.ScanParallelism = 1
	return openTestDB(t, rows, opts)
}

func TestAdmissionControlShedsTyped(t *testing.T) {
	db := governedDB(t, 3000, Options{MaxConcurrentQueries: 1, AdmissionQueue: -1, DrainTimeout: -1})
	ctx := context.Background()
	res1, err := db.Scan("t").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, db, func(s Stats) int64 { return s.InFlight }, 1, "InFlight")
	// The only slot is held and there is no queue: the next query is shed.
	_, err = db.Scan("t").Run(ctx)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overloaded submit: got %v, want *OverloadedError", err)
	}
	if oe.MaxConcurrent != 1 || oe.QueueDepth != 0 {
		t.Fatalf("OverloadedError fields: %+v", oe)
	}
	if got := db.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	// Draining the holder frees the slot; a retry then succeeds (the typed
	// error is the back-off-and-retry signal).
	if _, err := res1.All(); err != nil {
		t.Fatal(err)
	}
	waitStat(t, db, func(s Stats) int64 { return s.InFlight }, 0, "InFlight")
	res2, err := db.Scan("t").Aggregate(Count()).Run(ctx)
	if err != nil {
		t.Fatalf("post-shed query: %v", err)
	}
	rows, err := res2.All()
	if err != nil || rows[0][0].I != 3000 {
		t.Fatalf("post-shed result: %v %v", rows, err)
	}
}

func TestAdmissionQueueAdmitsInOrder(t *testing.T) {
	db := governedDB(t, 3000, Options{MaxConcurrentQueries: 1, AdmissionQueue: 2, DrainTimeout: -1})
	ctx := context.Background()
	res1, err := db.Scan("t").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, db, func(s Stats) int64 { return s.InFlight }, 1, "InFlight")
	// Two queries park in the admission queue, in order.
	order := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			res, err := db.Scan("t").Aggregate(Count()).Run(ctx)
			if err != nil {
				return
			}
			order <- i
			res.Discard()
		}()
		waitStat(t, db, func(s Stats) int64 { return s.AdmissionQueued }, int64(i), "AdmissionQueued")
	}
	// Queue full: the next query is shed.
	if _, err := db.Scan("t").Run(ctx); !errors.As(err, new(*OverloadedError)) {
		t.Fatalf("queue-full submit: got %v, want *OverloadedError", err)
	}
	// Draining the holder admits the queued queries FIFO.
	if _, err := res1.All(); err != nil {
		t.Fatal(err)
	}
	if got := <-order; got != 1 {
		t.Fatalf("first admitted waiter = %d, want 1 (FIFO)", got)
	}
	if got := <-order; got != 2 {
		t.Fatalf("second admitted waiter = %d, want 2 (FIFO)", got)
	}
	waitStat(t, db, func(s Stats) int64 { return s.AdmissionQueued }, 0, "AdmissionQueued")
}

func TestWithTimeoutFailsTyped(t *testing.T) {
	db := openTestDB(t, 8000, Options{PoolPages: 64, ScanParallelism: 1})
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	db.SetDiskLatency(2*time.Millisecond, 2*time.Millisecond, 0)
	defer db.SetDiskLatency(0, 0, 0)
	res, err := db.Scan("t").Sort("k").Run(context.Background(), WithTimeout(25*time.Millisecond))
	if err == nil {
		_, err = res.All()
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("timed-out query: got %v, want *DeadlineError", err)
	}
	if de.Timeout != 25*time.Millisecond {
		t.Fatalf("DeadlineError.Timeout = %v", de.Timeout)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("DeadlineError must unwrap to context.DeadlineExceeded")
	}
	waitStat(t, db, func(s Stats) int64 { return s.DeadlineTimeouts }, 1, "DeadlineTimeouts")
	// No temp spill files survive the timed-out sort, and the engine stays
	// healthy.
	mgr := db.mgr
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:") }, "timed-out query")
	db.SetDiskLatency(0, 0, 0)
	res2, err := db.Scan("t").Aggregate(Count()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res2.All()
	if err != nil || rows[0][0].I != 8000 {
		t.Fatalf("engine unusable after timeout: %v %v", rows, err)
	}
}

func TestDeadlineExpiresInAdmissionQueue(t *testing.T) {
	db := governedDB(t, 3000, Options{MaxConcurrentQueries: 1, AdmissionQueue: 4, DrainTimeout: -1})
	ctx := context.Background()
	res1, err := db.Scan("t").Run(ctx) // holds the only slot
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, db, func(s Stats) int64 { return s.InFlight }, 1, "InFlight")
	// A queued query whose deadline fires while waiting must fail with the
	// typed *DeadlineError — not hang, not return a context error.
	_, err = db.Scan("t").Run(ctx, WithTimeout(30*time.Millisecond))
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("queued timeout: got %v, want *DeadlineError", err)
	}
	if got := db.Stats().DeadlineTimeouts; got < 1 {
		t.Fatalf("DeadlineTimeouts = %d", got)
	}
	if _, err := res1.All(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineOptionValidation(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 64})
	var oe *OptionError
	if _, err := db.Scan("t").Run(context.Background(), WithTimeout(0)); !errors.As(err, &oe) {
		t.Fatalf("WithTimeout(0): got %v, want *OptionError", err)
	}
	if _, err := db.Scan("t").Run(context.Background(), WithDeadline(time.Time{})); !errors.As(err, &oe) {
		t.Fatalf("WithDeadline(zero): got %v, want *OptionError", err)
	}
	// An already-expired absolute deadline fails typed (at submit or on the
	// first drain — both are legal), never silently truncates.
	res, err := db.Scan("t").Run(context.Background(), WithDeadline(time.Now().Add(-time.Second)))
	if err == nil {
		_, err = res.All()
	}
	if !errors.As(err, new(*DeadlineError)) {
		t.Fatalf("expired deadline: got %v, want *DeadlineError", err)
	}
}

func TestStatementTimeoutSession(t *testing.T) {
	db := openTestDB(t, 8000, Options{PoolPages: 64, ScanParallelism: 1})
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	db.SetDiskLatency(2*time.Millisecond, 2*time.Millisecond, 0)
	defer db.SetDiskLatency(0, 0, 0)
	var sess Session
	stmt, err := sql.Parse("SET statement_timeout = 25")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Apply(stmt.(*sql.Set)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT * FROM t ORDER BY k", sess.Options()...)
	if err == nil {
		_, err = res.All()
	}
	if !errors.As(err, new(*DeadlineError)) {
		t.Fatalf("SET statement_timeout query: got %v, want *DeadlineError", err)
	}
	waitStat(t, db, func(s Stats) int64 { return s.DeadlineTimeouts }, 1, "DeadlineTimeouts")
}

func TestSatelliteRescuedFromTimedOutHost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	// A query absorbed as a satellite onto a host that times out before
	// emitting must be rescued — re-dispatched and completed with the full
	// result — exactly like the cancelled-host path.
	mgr := newTestDB(t, 8000)
	mgr.Pool.Invalidate()
	mgr.Disk.SetLatency(time.Millisecond, time.Millisecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mk := func() plan.Node {
		return plan.NewAggregate(
			plan.NewTableScan("t", tableSchema(mgr), nil, nil, false),
			[]expr.AggSpec{{Kind: expr.AggCount}})
	}
	qH, err := eng.Runtime().SubmitOpts(context.Background(), mk(),
		core.QueryOptions{Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the host aggregate start
	qS, err := eng.Runtime().Submit(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	// The host times out; the satellite must still deliver the exact count.
	b, err := qS.Result.Get()
	if err != nil {
		t.Fatalf("satellite after host timeout: %v", err)
	}
	if b[0][0].I != 8000 {
		t.Fatalf("satellite count = %d, want 8000", b[0][0].I)
	}
	if err := qS.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := qH.Wait(); !errors.As(err, new(*DeadlineError)) {
		t.Fatalf("host error = %v, want *DeadlineError", err)
	}
}

func TestGracefulDrainServesInFlight(t *testing.T) {
	db := governedDB(t, 3000, Options{DrainTimeout: 30 * time.Second})
	res, err := db.Scan("t").Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() {
		rows, err := res.All()
		if err == nil && len(rows) != 3000 {
			err = errors.New("short result")
		}
		drained <- err
	}()
	db.Close() // waits for the in-flight query
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("in-flight query during drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained query never completed")
	}
	// New queries are rejected once the drain began.
	if _, err := db.Scan("t").Run(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submit: got %v, want ErrClosed", err)
	}
}

func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	db := governedDB(t, 3000, Options{DrainTimeout: 100 * time.Millisecond})
	res, err := db.Scan("t").Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	db.Close() // the undrained query cannot finish — the timeout must fire
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with a 100ms DrainTimeout", elapsed)
	}
	if _, err := res.All(); err == nil {
		t.Fatal("straggler survived Close without an error")
	}
}
