// Benchmarks regenerating every table and figure in the paper's evaluation
// (§5). One benchmark per figure — see DESIGN.md §4 for the index. Each
// reports the figure's headline metric(s) via b.ReportMetric so `go test
// -bench=.` prints the reproduced numbers; `cmd/qpipe-bench` prints the
// full curves.
//
// These run at SmallScale (tens of milliseconds per query). They reproduce
// the paper's *shapes* — who wins and by what factor — not its 2005
// absolute numbers (see EXPERIMENTS.md).
package qpipe_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/harness"
	"qpipe/internal/plan"
	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
	"qpipe/internal/workload/tpch"
)

// benchScale keeps the figure benches fast enough for -bench=. runs.
func benchScale() harness.Scale {
	sc := harness.SmallScale()
	sc.SF = 0.0015
	sc.BigRows = 2500
	sc.Spindles = 1
	return sc
}

// BenchmarkFig01aTimeBreakdown reproduces Figure 1a: the per-table I/O
// breakdown of five representative TPC-H queries on the conventional
// engine. Reported metric: mean fraction of blocks read from LINEITEM.
func BenchmarkFig01aTimeBreakdown(b *testing.B) {
	env := mustTPCH(b, benchScale(), false)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig1aTimeBreakdown(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sum := 0.0
			for _, p := range fig.Series[0].Points {
				sum += p.Y
			}
			b.ReportMetric(sum/float64(len(fig.Series[0].Points)), "lineitem-frac")
			b.Log("\n" + fig.Format())
		}
	}
}

// BenchmarkFig04aWoPClasses reproduces Figure 4a: the measured windows of
// opportunity per overlap class. Reported metrics: mean Q2 gain per class.
func BenchmarkFig04aWoPClasses(b *testing.B) {
	env := mustTPCH(b, benchScale(), true)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig4aWindowsOfOpportunity(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range fig.Series {
				mean := 0.0
				for _, p := range s.Points {
					mean += p.Y
				}
				b.ReportMetric(mean/float64(len(s.Points)), s.Label+"-gain")
			}
			b.Log("\n" + fig.Format())
		}
	}
}

// BenchmarkFig08CircularScan reproduces Figure 8: blocks read vs
// interarrival for concurrent Q6 clients. Reported metric: OSP's I/O as a
// fraction of baseline's at mid interarrival.
func BenchmarkFig08CircularScan(b *testing.B) {
	env := mustTPCH(b, benchScale(), false)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := harness.Fig8CircularScan(env, []int{4}, []float64{0.2, 0.5, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fig := figs[0]
			base, osp := fig.Series[0].Points, fig.Series[1].Points
			b.ReportMetric(osp[1].Y/base[1].Y, "io-ratio@0.5")
			b.Log("\n" + fig.Format())
		}
	}
}

// BenchmarkFig09OrderedScans reproduces Figure 9: the ordered-scan
// merge-join split. Reported metric: baseline/OSP total-response speedup at
// 0.4 interarrival.
func BenchmarkFig09OrderedScans(b *testing.B) {
	env := mustTPCH(b, benchScale(), true)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig9OrderedScans(env, []float64{0.4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSpeedup(b, fig, 0)
		}
	}
}

// BenchmarkFig10SortMerge reproduces Figure 10: shared sorts + merge join
// on the Wisconsin benchmark.
func BenchmarkFig10SortMerge(b *testing.B) {
	env, err := harness.NewWisconsinEnv(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig10SortMerge(env, []float64{0.4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSpeedup(b, fig, 0)
		}
	}
}

// BenchmarkFig11HashJoin reproduces Figure 11: hash-join build sharing.
func BenchmarkFig11HashJoin(b *testing.B) {
	env := mustTPCH(b, benchScale(), false)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig11HashJoin(env, []float64{0.2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSpeedup(b, fig, 0)
		}
	}
}

// BenchmarkFig12Throughput reproduces Figures 1b/12: TPC-H mix throughput
// vs concurrent clients for all three systems. Reported metric: QPipe/X
// throughput ratio at the highest client count.
func BenchmarkFig12Throughput(b *testing.B) {
	env := mustTPCH(b, benchScale(), false)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig12Throughput(env, []int{1, 4, 8}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			x := fig.Series[0].Points
			osp := fig.Series[2].Points
			last := len(x) - 1
			b.ReportMetric(osp[last].Y/x[last].Y, "qpipe/x-speedup")
			b.ReportMetric(osp[last].Y, "qpipe-qph")
			b.Log("\n" + fig.Format())
		}
	}
}

// BenchmarkFig13ThinkTime reproduces Figure 13: average response vs think
// time for 10 clients.
func BenchmarkFig13ThinkTime(b *testing.B) {
	env := mustTPCH(b, benchScale(), false)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig13ThinkTime(env, []float64{0, 1, 2}, 6, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			base, osp := fig.Series[0].Points, fig.Series[1].Points
			b.ReportMetric(base[0].Y/osp[0].Y, "speedup@load")
			b.Log("\n" + fig.Format())
		}
	}
}

// BenchmarkOSPOverhead quantifies the §5 claim that the OSP coordinator's
// overhead is negligible when no sharing opportunities exist.
func BenchmarkOSPOverhead(b *testing.B) {
	env := mustTPCH(b, benchScale(), false)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := harness.OSPOverhead(env, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.OverheadPct, "overhead-%")
			b.Logf("baseline=%v osp=%v overhead=%.2f%%", res.BaselineAvg, res.OSPAvg, res.OverheadPct)
		}
	}
}

// BenchmarkBufferPolicies is the §2.1 ablation: hit rates of the
// replacement policies the paper surveys, on a mixed hot-set + scan trace.
func BenchmarkBufferPolicies(b *testing.B) {
	policies := []struct {
		name string
		mk   func(cap int) buffer.Policy
	}{
		{"lru", func(int) buffer.Policy { return buffer.NewLRU() }},
		{"clock", func(int) buffer.Policy { return buffer.NewClock() }},
		{"lru2", func(int) buffer.Policy { return buffer.NewLRUK(2) }},
		{"2q", func(c int) buffer.Policy { return buffer.NewTwoQ(c) }},
		{"arc", func(c int) buffer.Policy { return buffer.NewARC(c) }},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			d := disk.New(disk.Config{BlockSize: 512})
			d.Create("f")
			for i := 0; i < 256; i++ {
				d.Append("f", []byte{byte(i)})
			}
			const capacity = 32
			for i := 0; i < b.N; i++ {
				p := buffer.NewPool(d, capacity, pol.mk(capacity))
				// Hot set with double references + scans.
				for round := int64(0); round < 20; round++ {
					for blk := int64(0); blk < 8; blk++ {
						pin(b, p, blk)
						pin(b, p, blk)
					}
					for blk := int64(0); blk < 40; blk++ {
						pin(b, p, 64+(round*40+blk)%192)
					}
				}
				if i == 0 {
					st := p.Stats()
					b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit-rate")
				}
			}
		})
	}
}

// BenchmarkQueryLatencyQPipeVsVolcano compares single-query latency of the
// two engines on identical plans (engine overhead, no sharing in play).
func BenchmarkQueryLatencyQPipeVsVolcano(b *testing.B) {
	sc := benchScale()
	env := mustTPCH(b, sc, false)
	defer env.Close()
	qp, err := env.NewQPipe()
	if err != nil {
		b.Fatal(err)
	}
	vol, err := env.NewVolcano()
	if err != nil {
		b.Fatal(err)
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	for _, sys := range []harness.System{qp, vol} {
		b.Run(sys.Name(), func(b *testing.B) {
			p := tpch.Q6(tpch.DefaultParams())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Exec(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkerModel ablates the µEngine worker model: elastic
// (goroutine per packet, this repo's default) vs the paper's fixed
// per-µEngine pools, on a small concurrent mix.
func BenchmarkWorkerModel(b *testing.B) {
	sc := benchScale()
	env := mustTPCH(b, sc, false)
	defer env.Close()
	models := []struct {
		name    string
		workers int
	}{
		{"elastic", 0},
		{"fixed-2", 2},
		{"fixed-8", 8},
	}
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			cfg := qpipe.DefaultConfig()
			cfg.WorkersPerEngine = m.workers
			sys, err := env.NewQPipeWith("qpipe-"+m.name, cfg)
			if err != nil {
				b.Fatal(err)
			}
			env.SetMeasuring(true)
			defer env.SetMeasuring(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := harness.RunClosedLoop(env, sys, 4, 2, 0, func(rng *rand.Rand) plan.Node {
					_, p := tpch.RandomMixQuery(rng)
					return p
				})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if i == 0 {
					b.ReportMetric(res.Throughput, "qph")
				}
			}
		})
	}
}

// BenchmarkScanParallelism measures the partitioned parallel scan on a
// 100k-row table: a cold full-table count at ScanParallelism 1/2/4/8
// (partitioned P>=4 should beat the single-reader scan), plus a
// multi-consumer case at P=4 where three staggered scans with distinct
// predicates must merge onto one partitioned scan group (reported shares
// metric > 0 proves OSP still engages alongside partitioning).
func BenchmarkScanParallelism(b *testing.B) {
	sc := harness.SmallScale()
	sc.Spindles = 8
	env, err := harness.NewScanEnv(sc, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", w), func(b *testing.B) {
			cfg := qpipe.DefaultConfig()
			cfg.ScanParallelism = w
			sys, err := env.NewQPipeWith(fmt.Sprintf("qpipe-scanpar%d", w), cfg)
			if err != nil {
				b.Fatal(err)
			}
			schema := sys.Manager().MustTable(harness.ScanTable).Schema
			env.SetMeasuring(true)
			defer env.SetMeasuring(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := sys.Manager().Pool.Invalidate(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := sys.Exec(context.Background(), harness.ScanCountPlan(schema, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("P4-shared-3clients", func(b *testing.B) {
		cfg := qpipe.DefaultConfig()
		cfg.ScanParallelism = 4
		sys, err := env.NewQPipeWith("qpipe-scanpar4-shared", cfg)
		if err != nil {
			b.Fatal(err)
		}
		schema := sys.Manager().MustTable(harness.ScanTable).Schema
		env.SetMeasuring(true)
		defer env.SetMeasuring(false)
		var shares int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := sys.Manager().Pool.Invalidate(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res := harness.RunStaggered(env, sys, harness.ScanSharePlans(schema, 3), time.Millisecond)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			shares += res.Shares
		}
		b.ReportMetric(float64(shares)/float64(b.N), "shares/op")
	})
}

// BenchmarkJoinParallelism measures the parallel hybrid hash join on a
// 100k×100k join (build side well past the in-memory limit, so the
// partitioned spill path runs): a cold join at fan-out 1/2/4/8, with the
// feeding scans at the same fan-out. Higher fan-outs should beat P1 (on
// the recalibrated disk simulator the join is closer to engine-bound, so
// the P1→P8 ratio is smaller than the pre-recalibration sweeps suggested).
func BenchmarkJoinParallelism(b *testing.B) {
	sc := harness.SmallScale()
	sc.Spindles = 8
	env, err := harness.NewJoinEnv(sc, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", w), func(b *testing.B) {
			cfg := qpipe.DefaultConfig()
			cfg.ScanParallelism = w
			sys, err := env.NewQPipeWith(fmt.Sprintf("qpipe-joinpar%d", w), cfg)
			if err != nil {
				b.Fatal(err)
			}
			schema := sys.Manager().MustTable(harness.JoinProbeTable).Schema
			env.SetMeasuring(true)
			defer env.SetMeasuring(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := sys.Manager().Pool.Invalidate(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := sys.Exec(context.Background(), harness.JoinParPlan(schema, w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupByParallelism measures the parallel hash group-by over the
// 100k-row probe table (97 groups, count/sum/avg) at fan-out 1/2/4/8.
func BenchmarkGroupByParallelism(b *testing.B) {
	sc := harness.SmallScale()
	sc.Spindles = 8
	env, err := harness.NewJoinEnv(sc, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", w), func(b *testing.B) {
			cfg := qpipe.DefaultConfig()
			cfg.ScanParallelism = w
			sys, err := env.NewQPipeWith(fmt.Sprintf("qpipe-gbpar%d", w), cfg)
			if err != nil {
				b.Fatal(err)
			}
			schema := sys.Manager().MustTable(harness.JoinProbeTable).Schema
			env.SetMeasuring(true)
			defer env.SetMeasuring(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := sys.Manager().Pool.Invalidate(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := sys.Exec(context.Background(), harness.GroupByParPlan(schema, w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Micro-benchmarks of the substrates ---------------------------------------

func BenchmarkTupleEncodeDecode(b *testing.B) {
	t := tuple.Tuple{tuple.I64(42), tuple.F64(3.14), tuple.Str("hello world"), tuple.Date(10000)}
	enc := t.Encode(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := t.Encode(nil)
		if _, _, err := tuple.Decode(buf, 4); err != nil {
			b.Fatal(err)
		}
		_ = enc
	}
}

func BenchmarkBufferPoolHit(b *testing.B) {
	d := disk.New(disk.Config{BlockSize: 512})
	d.Create("f")
	d.Append("f", []byte{1})
	p := buffer.NewPool(d, 4, nil)
	id := buffer.PageID{File: "f", Block: 0}
	p.Pin(id)
	p.Unpin(id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pin(id); err != nil {
			b.Fatal(err)
		}
		p.Unpin(id)
	}
}

func BenchmarkSignatureMatch(b *testing.B) {
	// The OSP admission fast path: building + comparing plan signatures.
	p := tpch.Q8(tpch.DefaultParams())
	sig := p.Signature()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tpch.Q8(tpch.DefaultParams()).Signature() != sig {
			b.Fatal("signature instability")
		}
	}
}

func BenchmarkEngineSubmitTiny(b *testing.B) {
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 16})
	schema := tuple.NewSchema(tuple.Col("k", tuple.KindInt))
	if _, err := mgr.CreateTable("t", schema); err != nil {
		b.Fatal(err)
	}
	rows := make([]tuple.Tuple, 64)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.I64(int64(i))}
	}
	mgr.Load("t", rows)
	eng := qpipe.New(mgr, qpipe.BaselineConfig())
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Query(context.Background(),
			plan.NewAggregate(plan.NewTableScan("t", schema, nil, nil, false),
				[]expr.AggSpec{{Kind: expr.AggCount}}))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Discard(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- helpers -------------------------------------------------------------------

func mustTPCH(b *testing.B, sc harness.Scale, clustered bool) *harness.Env {
	b.Helper()
	env, err := harness.NewTPCHEnv(sc, clustered)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func reportSpeedup(b *testing.B, fig harness.Figure, at int) {
	b.Helper()
	base, osp := fig.Series[0].Points, fig.Series[1].Points
	if osp[at].Y > 0 {
		b.ReportMetric(base[at].Y/osp[at].Y, "speedup")
	}
	b.Log("\n" + fig.Format())
}

func pin(b *testing.B, p *buffer.Pool, blk int64) {
	b.Helper()
	id := buffer.PageID{File: "f", Block: blk}
	if _, err := p.Pin(id); err != nil {
		b.Fatal(err)
	}
	p.Unpin(id)
}

// BenchmarkPublicAPI measures the embeddable surface end to end — the
// name-resolving builder, per-query options and the streaming Rows()
// iterator — against BenchmarkEngineSubmitTiny's precompiled-plan path, so
// facade overhead (resolution, Result indirection, iterator hand-off) is
// tracked per release.
func BenchmarkPublicAPI(b *testing.B) {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 16, DisableOSP: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t", qpipe.NewSchema(qpipe.ColDef("k", qpipe.KindInt))); err != nil {
		b.Fatal(err)
	}
	rows := make([]qpipe.Row, 64)
	for i := range rows {
		rows[i] = qpipe.R(i)
	}
	if err := db.Load("t", rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Scan("t").
			Filter(qpipe.Col("k").Ge(qpipe.Int(0))).
			Aggregate(qpipe.Count().As("n")).
			Run(context.Background(), qpipe.WithParallelism(1))
		if err != nil {
			b.Fatal(err)
		}
		n := int64(0)
		for row := range res.Rows() {
			n = row[0].I
		}
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 64 {
			b.Fatalf("count = %d", n)
		}
	}
}
