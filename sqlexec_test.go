package qpipe

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qpipe/sql"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// sqlTestDB opens a DB with the orders/customers pair the SQL tests share.
func sqlTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	ctx := context.Background()
	if _, err := db.Exec(ctx, `
		CREATE TABLE customers (cid INT, name TEXT, segment INT);
		CREATE TABLE orders (oid INT, cust INT, region INT, amount FLOAT, placed DATE)
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, `
		INSERT INTO customers VALUES
			(1, 'acme', 0), (2, 'bolt', 1), (3, 'coil', 0);
		INSERT INTO orders VALUES
			(10, 1, 0, 25.0, DATE '2024-01-05'),
			(11, 1, 1, 75.0, DATE '2024-02-10'),
			(12, 2, 0, 50.0, DATE '2024-03-15'),
			(13, 3, 1, 10.0, DATE '2024-04-20'),
			(14, 3, 0, 40.0, DATE '2024-05-25')
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSQLMatchesBuilder is the core lowering guarantee: a SQL statement
// compiles to the exact plan (same Explain rendering AND same signature, so
// OSP shares across the two front ends) that the equivalent builder chain
// produces.
func TestSQLMatchesBuilder(t *testing.T) {
	db := sqlTestDB(t)
	cases := []struct {
		name    string
		sqlText string
		builder func() *Query
	}{
		{"scan", "SELECT * FROM orders", func() *Query {
			return db.Scan("orders")
		}},
		{"filter-project", "SELECT oid, amount * 1.1 AS gross FROM orders WHERE amount > 30", func() *Query {
			return db.Scan("orders").
				Filter(Col("amount").Gt(Int(30))).
				Project(Col("oid"), Col("amount").Mul(Float(1.1)).As("gross"))
		}},
		{"where-and-in-between", "SELECT oid FROM orders WHERE region IN (0, 1) AND amount BETWEEN 20 AND 60", func() *Query {
			return db.Scan("orders").
				Filter(And(Col("region").In(IntValue(0), IntValue(1)),
					Col("amount").Between(IntValue(20), IntValue(60)))).
				Project(Col("oid"))
		}},
		{"join-on", "SELECT name, amount FROM customers JOIN orders ON cid = cust", func() *Query {
			return db.Scan("customers").Join(db.Scan("orders"), "cid", "cust").
				Project(Col("name"), Col("amount"))
		}},
		{"comma-join", "SELECT name, amount FROM customers c, orders o WHERE c.cid = o.cust AND o.amount > 20", func() *Query {
			return db.Scan("customers").Join(db.Scan("orders"), "cid", "cust").
				Filter(Col("amount").Gt(Int(20))).
				Project(Col("name"), Col("amount"))
		}},
		{"group-by", "SELECT region, count(*) AS n, sum(amount) AS total FROM orders GROUP BY region", func() *Query {
			return db.Scan("orders").
				GroupBy([]string{"region"}, Count().As("n"), Sum(Col("amount")).As("total"))
		}},
		{"scalar-agg", "SELECT count(*) AS n, avg(amount) AS mean FROM orders", func() *Query {
			return db.Scan("orders").
				Aggregate(Count().As("n"), Avg(Col("amount")).As("mean"))
		}},
		{"sort-limit", "SELECT oid, amount FROM orders ORDER BY amount DESC LIMIT 3", func() *Query {
			return db.Scan("orders").Select("oid", "amount").SortDesc("amount").Limit(3)
		}},
		{"date-filter", "SELECT oid FROM orders WHERE placed >= DATE '2024-03-01'", func() *Query {
			return db.Scan("orders").
				Filter(Col("placed").Ge(Date(19783))).
				Project(Col("oid"))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := db.Prepare(tc.sqlText)
			if err != nil {
				t.Fatalf("Prepare(%q): %v", tc.sqlText, err)
			}
			want := tc.builder()
			ge, err := got.Explain()
			if err != nil {
				t.Fatal(err)
			}
			we, err := want.Explain()
			if err != nil {
				t.Fatal(err)
			}
			if ge != we {
				t.Errorf("plans differ:\nSQL:\n%s\nbuilder:\n%s", ge, we)
			}
			gp, _ := got.Plan()
			wp, _ := want.Plan()
			if gp.Signature() != wp.Signature() {
				t.Errorf("signatures differ (OSP would not share):\nSQL:     %s\nbuilder: %s",
					gp.Signature(), wp.Signature())
			}
			if got.limit != want.limit {
				t.Errorf("limit differs: SQL %d, builder %d", got.limit, want.limit)
			}
		})
	}
}

// TestSQLExplainGolden locks the EXPLAIN rendering (plan tree + option
// annotations) against golden files. Regenerate with: go test -run
// TestSQLExplainGolden -update .
func TestSQLExplainGolden(t *testing.T) {
	db := sqlTestDB(t)
	ctx := context.Background()
	cases := []struct {
		name    string
		sqlText string
		opts    []QueryOption
	}{
		{"scan_filter", "EXPLAIN SELECT oid FROM orders WHERE amount > 30", nil},
		{"join_group", "EXPLAIN SELECT name, sum(amount) AS total FROM customers JOIN orders ON cid = cust GROUP BY name", nil},
		{"sort_limit_opts", "EXPLAIN SELECT oid, amount FROM orders ORDER BY amount DESC LIMIT 3",
			[]QueryOption{WithParallelism(4), WithBatchSize(128), WithoutOSP()}},
		{"expr_over_aggs", "EXPLAIN SELECT region, sum(amount) / count(*) AS mean FROM orders GROUP BY region", nil},
		{"comma_three_way", "EXPLAIN SELECT o.oid FROM customers c, orders o, customers d WHERE c.cid = o.cust AND o.cust = d.cid", nil},
		// Optimizer cases: predicate pushdown through the projection-free
		// scan, canonicalized predicates (commuted comparisons, BETWEEN as
		// bounds, vacuous conjuncts folded), and cardinality-driven join
		// reordering (the written order puts the big table first).
		{"pushdown_canonical", "EXPLAIN SELECT oid FROM orders WHERE 30 < amount AND 1 = 1 AND amount BETWEEN 10 AND 90", nil},
		{"join_reorder", "EXPLAIN SELECT name, sum(amount) AS total FROM orders o JOIN customers c ON o.cust = c.cid WHERE amount > 20 GROUP BY name", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := db.Query(ctx, tc.sqlText, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := res.All()
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, r := range rows {
				b.WriteString(r[0].S)
				b.WriteByte('\n')
			}
			got := b.String()
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output drifted from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

func TestSQLResults(t *testing.T) {
	db := sqlTestDB(t)
	ctx := context.Background()
	query := func(text string) []Row {
		t.Helper()
		res, err := db.Query(ctx, text)
		if err != nil {
			t.Fatalf("Query(%q): %v", text, err)
		}
		rows, err := res.All()
		if err != nil {
			t.Fatalf("All(%q): %v", text, err)
		}
		return rows
	}

	rows := query("SELECT name FROM customers WHERE segment = 0 ORDER BY name")
	if len(rows) != 2 || rows[0][0].S != "acme" || rows[1][0].S != "coil" {
		t.Errorf("segment filter: got %v", rows)
	}

	rows = query("SELECT name, sum(amount) AS total FROM customers JOIN orders ON cid = cust GROUP BY name ORDER BY total DESC")
	if len(rows) != 3 || rows[0][0].S != "acme" || rows[0][1].F != 100 {
		t.Errorf("join+group: got %v", rows)
	}

	rows = query("SELECT count(*) AS n FROM orders WHERE placed BETWEEN DATE '2024-02-01' AND DATE '2024-04-30'")
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Errorf("date range count: got %v", rows)
	}

	rows = query("SELECT oid FROM orders ORDER BY amount DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].I != 11 || rows[1][0].I != 12 {
		t.Errorf("order/limit: got %v", rows)
	}

	// Qualified group-key references through the general aggregate shape:
	// the key is spelled bare in GROUP BY but qualified (and aliased, which
	// forces the general path) in the select list.
	rows = query("SELECT o.region AS r, count(*) AS n FROM orders o GROUP BY region ORDER BY r")
	if len(rows) != 2 || rows[0][0].I != 0 || rows[0][1].I != 3 {
		t.Errorf("qualified group key: got %v", rows)
	}
	rows = query("SELECT o.region * 10 AS rx, count(*) AS n FROM orders o GROUP BY region ORDER BY rx")
	if len(rows) != 2 || rows[1][0].I != 10 {
		t.Errorf("expr over qualified group key: got %v", rows)
	}

	// Expression over aggregates (general aggregate shape with a Project).
	rows = query("SELECT region, sum(amount) / count(*) AS mean FROM orders GROUP BY region ORDER BY region")
	if len(rows) != 2 {
		t.Fatalf("mean rows: got %v", rows)
	}
	if want := (25.0 + 50 + 40) / 3; rows[0][1].F != want {
		t.Errorf("region 0 mean = %v, want %v", rows[0][1].F, want)
	}

	// Result schema drives client rendering.
	res, err := db.Query(ctx, "SELECT name, segment FROM customers LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Schema().String(); s != "[name:string, segment:int]" {
		t.Errorf("schema = %s", s)
	}
	if _, err := res.Discard(); err != nil {
		t.Fatal(err)
	}
}

func TestSQLTypedErrors(t *testing.T) {
	db := sqlTestDB(t)
	ctx := context.Background()

	var ut *UnknownTableError
	if _, err := db.Query(ctx, "SELECT x FROM nope"); !errors.As(err, &ut) || ut.Table != "nope" {
		t.Errorf("unknown table: got %v", err)
	}
	var uc *UnknownColumnError
	if _, err := db.Query(ctx, "SELECT nope FROM orders"); !errors.As(err, &uc) || uc.Column != "nope" {
		t.Errorf("unknown column: got %v", err)
	}
	var tm *TypeMismatchError
	if _, err := db.Query(ctx, "SELECT oid FROM orders WHERE amount > 'high'"); !errors.As(err, &tm) {
		t.Errorf("type mismatch: got %v", err)
	}
	var ac *AmbiguousColumnError
	// Both customers-instances own "cid": a bare reference must not silently
	// resolve leftmost.
	if _, err := db.Query(ctx, "SELECT cid FROM customers a, customers b"); !errors.As(err, &ac) || ac.Column != "cid" {
		t.Errorf("ambiguous column: got %v", err)
	}
	// Qualified reference to the *second* table's copy: the builder would
	// resolve the bare name to the first — shadowing must be an error too.
	if _, err := db.Query(ctx, "SELECT b.cid FROM customers a JOIN customers b ON a.cid = b.cid"); !errors.As(err, &ac) {
		t.Errorf("shadowed qualified column: got %v", err)
	}
	var se *StatementError
	if _, err := db.Query(ctx, "CREATE TABLE t (a INT)"); !errors.As(err, &se) {
		t.Errorf("DDL via Query: got %v", err)
	}
	if _, err := db.Exec(ctx, "SELECT * FROM orders"); !errors.As(err, &se) {
		t.Errorf("SELECT via Exec: got %v", err)
	}
	var pe *sql.ParseError
	_, err := db.Query(ctx, "SELECT oid\nFROM orders\nWHERE amount >")
	if !errors.As(err, &pe) {
		t.Fatalf("parse error: got %v", err)
	}
	if pe.Pos.Line != 3 || pe.Pos.Col != 15 {
		t.Errorf("parse error position = %v, want 3:15", pe.Pos)
	}
	var oe *OptionError
	if _, err := db.Query(ctx, "SELECT oid FROM orders", WithParallelism(0)); !errors.As(err, &oe) {
		t.Errorf("bad option through SQL path: got %v", err)
	}
}

func TestSQLInsert(t *testing.T) {
	db := sqlTestDB(t)
	ctx := context.Background()

	// Named-column reordering plus int->float and int->date widening.
	n, err := db.Exec(ctx, "INSERT INTO orders (amount, oid, cust, region, placed) VALUES (99, 20, 1, 2, 19900)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("affected = %d, want 1", n)
	}
	res, err := db.Query(ctx, "SELECT amount, placed FROM orders WHERE oid = 20")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].F != 99 || rows[0][1].I != 19900 {
		t.Errorf("widened insert: got %v", rows)
	}

	var tm *TypeMismatchError
	if _, err := db.Exec(ctx, "INSERT INTO orders VALUES (21, 1, 0, 'cheap', 0)"); !errors.As(err, &tm) {
		t.Errorf("string into float: got %v", err)
	}
	var se *StatementError
	if _, err := db.Exec(ctx, "INSERT INTO orders (oid) VALUES (22)"); !errors.As(err, &se) {
		t.Errorf("partial column list: got %v", err)
	}
	var uc *UnknownColumnError
	if _, err := db.Exec(ctx, "INSERT INTO orders (oid, cust, region, amount, nope) VALUES (1,1,1,1,1)"); !errors.As(err, &uc) {
		t.Errorf("unknown insert column: got %v", err)
	}
}

func TestSQLPrepareAndBatch(t *testing.T) {
	db := sqlTestDB(t)
	ctx := context.Background()

	q, err := db.Prepare("SELECT count(*) AS n FROM orders WHERE region = 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // a prepared query is reusable
		res, err := q.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			t.Fatal(err)
		}
		if rows[0][0].I != 3 {
			t.Errorf("run %d: n = %v, want 3", i, rows[0][0].I)
		}
	}

	// SQL-prepared and builder-built queries mix in one MQO batch.
	built := db.Scan("orders").Filter(Col("region").Eq(Int(0))).Aggregate(Count().As("n"))
	results, err := db.RunBatch(ctx, []*Query{q, built})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		rows, err := res.All()
		if err != nil {
			t.Fatal(err)
		}
		if rows[0][0].I != 3 {
			t.Errorf("batch member %d: n = %v, want 3", i, rows[0][0].I)
		}
	}
}

func TestSession(t *testing.T) {
	var s Session
	apply := func(text string) error {
		t.Helper()
		stmt, err := sql.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		return s.Apply(stmt.(*sql.Set))
	}
	if err := apply("SET parallelism = 4"); err != nil {
		t.Fatal(err)
	}
	if err := apply("SET batch_size = 128"); err != nil {
		t.Fatal(err)
	}
	if err := apply("SET osp = off"); err != nil {
		t.Fatal(err)
	}
	if err := apply("SET statement_timeout = '250ms'"); err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "parallelism=4 batch_size=128 osp=off statement_timeout=250ms" {
		t.Errorf("session = %q", got)
	}
	if n := len(s.Options()); n != 4 {
		t.Errorf("options = %d, want 4", n)
	}
	var oe *OptionError
	if err := apply("SET parallelism = 0"); !errors.As(err, &oe) {
		t.Errorf("bad parallelism: got %v", err)
	}
	if err := apply("SET nothing = 1"); !errors.As(err, &oe) {
		t.Errorf("unknown setting: got %v", err)
	}
	if err := apply("SET osp = on"); err != nil || s.OSPOff {
		t.Errorf("osp back on: %v %v", err, s.OSPOff)
	}

	// The options a session produces run a real query.
	db := sqlTestDB(t)
	res, err := db.Query(context.Background(), "SELECT count(*) FROM orders", s.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Discard(); err != nil {
		t.Fatal(err)
	}
}

// TestSQLExplainAnnotations covers the par=N / OSP annotations the issue
// calls out: plan-node parallelism hints print inside the tree, per-query
// options as a trailing line.
func TestSQLExplainAnnotations(t *testing.T) {
	db := sqlTestDB(t)
	res, err := db.Query(context.Background(),
		"EXPLAIN SELECT region, count(*) FROM orders GROUP BY region",
		WithParallelism(8), WithoutOSP())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, r := range rows {
		text.WriteString(r[0].S)
		text.WriteByte('\n')
	}
	out := text.String()
	if !strings.Contains(out, "options: parallelism=8 osp=off") {
		t.Errorf("missing option annotation:\n%s", out)
	}
	if !strings.Contains(out, "GroupBy") {
		t.Errorf("missing plan tree:\n%s", out)
	}
}

// Date(19783) in TestSQLMatchesBuilder is 2024-03-01; keep the derivation
// honest here rather than as a magic number.
func TestDateConstant(t *testing.T) {
	stmt, err := sql.Parse("SELECT a FROM t WHERE d = DATE '2024-03-01'")
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.(*sql.Select).Where.(*sql.Compare)
	if d := cmp.R.(*sql.DateLit).Days; d != 19783 {
		t.Fatalf("2024-03-01 = %d days, test constant stale", d)
	}
	_ = fmt.Sprintf
}
