package qpipe_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"qpipe"
	"qpipe/sql"
)

// ExampleDB_Exec loads a schema and rows from plain SQL text.
func ExampleDB_Exec() {
	db, err := qpipe.Open(qpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if _, err := db.Exec(ctx, `
		CREATE TABLE cities (id INT, city TEXT, pop FLOAT);
		CREATE INDEX ON cities (id)
	`); err != nil {
		log.Fatal(err)
	}
	n, err := db.Exec(ctx, `INSERT INTO cities VALUES
		(1, 'Pittsburgh', 0.30), (2, 'Boston', 0.65), (3, 'Seattle', 0.74)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d rows into %v\n", n, db.Tables())
	// Output:
	// inserted 3 rows into [cities]
}

// ExampleDB_Query poses a declarative query and streams its rows; EXPLAIN
// returns the lowered physical plan as text rows.
func ExampleDB_Query() {
	db, err := qpipe.Open(qpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := db.Exec(ctx, `CREATE TABLE cities (id INT, city TEXT, pop FLOAT)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(ctx, `INSERT INTO cities VALUES
		(1, 'Pittsburgh', 0.30), (2, 'Boston', 0.65), (3, 'Seattle', 0.74)`); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(ctx,
		"SELECT city, pop * 1000000 AS population FROM cities WHERE pop > 0.5 ORDER BY city",
		qpipe.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Schema())
	for row := range res.Rows() {
		fmt.Printf("%s %.0f\n", row[0].S, row[1].F)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}

	res, err = db.Query(ctx, "EXPLAIN SELECT count(*) FROM cities WHERE pop > 0.5")
	if err != nil {
		log.Fatal(err)
	}
	for row := range res.Rows() {
		fmt.Println(row[0].S)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// [city:string, population:float]
	// Boston 650000
	// Seattle 740000
	// Aggregate count(*) rows≈1
	//   TableScan cities (unordered) filter=(c2>k2:0.5) rows≈2
}

// ExampleDB_Prepare compiles SQL to the same reusable Query value the
// fluent builder produces, so the two front ends mix freely.
func ExampleDB_Prepare() {
	db, err := qpipe.Open(qpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(),
		`CREATE TABLE t (k INT, v FLOAT); INSERT INTO t VALUES (1, 2.5), (2, 4.5)`); err != nil {
		log.Fatal(err)
	}

	fromSQL, err := db.Prepare("SELECT sum(v) AS total FROM t")
	if err != nil {
		log.Fatal(err)
	}
	fromBuilder := db.Scan("t").Aggregate(qpipe.Sum(qpipe.Col("v")).As("total"))

	a, _ := fromSQL.Plan()
	b, _ := fromBuilder.Plan()
	fmt.Println("same signature:", a.Signature() == b.Signature())
	// Output:
	// same signature: true
}

// ExampleDB_Scan is the fluent-builder route to the same queries SQL poses.
func ExampleDB_Scan() {
	db, err := qpipe.Open(qpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("cities", qpipe.NewSchema(
		qpipe.ColDef("id", qpipe.KindInt),
		qpipe.ColDef("city", qpipe.KindString),
		qpipe.ColDef("pop", qpipe.KindFloat))); err != nil {
		log.Fatal(err)
	}
	if err := db.Load("cities", []qpipe.Row{
		qpipe.R(1, "Pittsburgh", 0.30), qpipe.R(2, "Boston", 0.65)}); err != nil {
		log.Fatal(err)
	}

	res, err := db.Scan("cities").
		Filter(qpipe.Col("pop").Gt(qpipe.Float(0.5))).
		Select("city").
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for row := range res.Rows() {
		fmt.Println(row[0].S)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// Boston
}

// ExampleSession shows SQL SET statements mapping onto per-query options.
func ExampleSession() {
	var sess qpipe.Session
	for _, text := range []string{"SET parallelism = 4", "SET osp = off"} {
		stmt, err := sql.Parse(text)
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Apply(stmt.(*sql.Set)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(sess.String())
	fmt.Println("options:", len(sess.Options()))
	// Output:
	// parallelism=4 batch_size=default osp=off statement_timeout=off
	// options: 2
}

// ExampleParseError shows the position-annotated syntax errors the SQL
// front end returns.
func ExampleParseError() {
	db, err := qpipe.Open(qpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	_, err = db.Query(context.Background(), "SELECT city\nFROM cities\nWHERE pop >")
	var pe *sql.ParseError
	if errors.As(err, &pe) {
		fmt.Printf("line %d, column %d: %s\n", pe.Pos.Line, pe.Pos.Col, pe.Msg)
	}
	// Output:
	// line 3, column 12: expected an expression, found end of input
}
