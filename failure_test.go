package qpipe

import (
	"context"
	"errors"
	"strings"
	"testing"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/volcano"
)

// Failure-injection tests: injected disk read errors must surface as query
// errors (never hangs, never silent truncation) and leave both engines
// usable afterwards.

var errInjected = errors.New("injected disk fault")

func TestScanErrorPropagates(t *testing.T) {
	mgr := newTestDB(t, 2000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Pool.Invalidate()
	mgr.Disk.InjectReadFaults("tbl:t", 1, errInjected)
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	res, err := eng.Query(context.Background(), scan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("scan should fail with injected error, got %v", err)
	}
	// Engine stays healthy.
	res2, _ := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", tableSchema(mgr), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	rows, err := res2.All()
	if err != nil || rows[0][0].I != 2000 {
		t.Fatalf("engine unusable after fault: %v %v", rows, err)
	}
}

func TestErrorReachesAllSharingQueries(t *testing.T) {
	// When a shared scan fails, every attached query must see the error.
	mgr := newTestDB(t, 8000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Pool.Invalidate()
	// Fail deep into the scan so the second query attaches first.
	mgr.Disk.InjectReadFaults("tbl:t", 0, nil)
	mk := func(c int64) plan.Node {
		scan := plan.NewTableScan("t", tableSchema(mgr), expr.GE(expr.Col(0), expr.CInt(c)), nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}})
	}
	res1, err := eng.Query(context.Background(), mk(0))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Query(context.Background(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	// Arm the fault only after both are submitted (mid-scan).
	mgr.Disk.InjectReadFaults("tbl:t", 1, errInjected)
	_, err1 := res1.All()
	_, err2 := res2.All()
	failures := 0
	for _, e := range []error{err1, err2} {
		if e != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("injected fault lost: both queries succeeded")
	}
	mgr.Disk.InjectReadFaults("", 0, nil)
}

func TestSortSpillErrorPropagates(t *testing.T) {
	mgr := newTestDB(t, 2000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	// Fault every temp-file read: the sorted-run readback must fail.
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	srt := plan.NewSort(scan, []int{0}, false)
	res, err := eng.Query(context.Background(), srt)
	if err != nil {
		t.Fatal(err)
	}
	// The sorted output file name is dynamic; fail ALL files briefly. The
	// scan reads through the (warm) pool, so the spill read is what hits
	// the disk.
	mgr.Pool.Flush()
	mgr.Disk.InjectReadFaults("", 1_000_000, errInjected)
	_, allErr := res.All()
	mgr.Disk.InjectReadFaults("", 0, nil)
	if allErr == nil {
		t.Fatal("sort with failing spill reads should error")
	}
}

func TestSortSpillWriteFaultFailsClean(t *testing.T) {
	// A write fault mid-spill (while the sort is writing its run files) must
	// fail the query cleanly: the error surfaces to the caller, every temp
	// file written so far is dropped, and the engine keeps serving.
	mgr := newTestDB(t, 20_000) // > sortRunSize so run files spill
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Disk.InjectWriteFaults("tmp:sortrun:", 1, errInjected)
	defer mgr.Disk.ClearFaults()

	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	res, err := eng.Query(context.Background(), plan.NewSort(scan, []int{0}, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("sort with failing spill write should surface the injected error, got %v", err)
	}
	_ = res.q.Wait()
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:sortrun:") }, "sort-run")
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:sorted:") }, "sorted-output")

	// Engine stays healthy once the fault is cleared.
	mgr.Disk.ClearFaults()
	res2, err := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", tableSchema(mgr), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res2.All()
	if err != nil || rows[0][0].I != 20_000 {
		t.Fatalf("engine unusable after write fault: %v %v", rows, err)
	}
}

func TestHashJoinSpillWriteFaultFailsClean(t *testing.T) {
	// Same contract for the hybrid hash join: a faulted build-partition
	// write fails the query and leaks no hjb/hjp partition files.
	if testing.Short() {
		t.Skip("large build side")
	}
	mgr := newTestDB(t, 70_000) // large enough to take the partitioned path
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Disk.InjectWriteFaults("tmp:hjb:", 1, errInjected)
	defer mgr.Disk.ClearFaults()

	l := plan.NewTableScan("t", tableSchema(mgr), nil, []int{0, 1}, false)
	r := plan.NewTableScan("t", tableSchema(mgr), nil, []int{0, 2}, false)
	j := plan.NewHashJoin(l, r, 0, 0).WithParallelism(4)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	res, err := eng.Query(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("join with failing build spill should surface the injected error, got %v", err)
	}
	_ = res.q.Wait()
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:hjb:") }, "build-side")
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:hjp:") }, "probe-side")

	mgr.Disk.ClearFaults()
	res2, err := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", tableSchema(mgr), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res2.All()
	if err != nil || rows[0][0].I != 70_000 {
		t.Fatalf("engine unusable after write fault: %v %v", rows, err)
	}
}

func TestVolcanoErrorPropagates(t *testing.T) {
	mgr := newTestDB(t, 2000)
	vol := volcano.New(mgr)
	mgr.Pool.Invalidate()
	mgr.Disk.InjectReadFaults("tbl:t", 1, errInjected)
	_, err := vol.RunDiscard(context.Background(),
		plan.NewTableScan("t", tableSchema(mgr), nil, nil, false))
	if err == nil {
		t.Fatal("volcano scan should fail with injected fault")
	}
	mgr.Disk.InjectReadFaults("", 0, nil)
	n, err := vol.RunDiscard(context.Background(),
		plan.NewTableScan("t", tableSchema(mgr), nil, nil, false))
	if err != nil || n != 2000 {
		t.Fatalf("volcano unusable after fault: %d %v", n, err)
	}
}

func TestJoinInputErrorPropagates(t *testing.T) {
	mgr := newTestDB(t, 3000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mgr.Pool.Invalidate()
	mgr.Disk.InjectReadFaults("tbl:t", 1, errInjected)
	l := plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 0}, false)
	r := plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 2}, false)
	j := plan.NewHashJoin(l, r, 0, 0)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	res, err := eng.Query(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err == nil {
		t.Fatal("join over failing scan should error")
	}
	mgr.Disk.InjectReadFaults("", 0, nil)
}
