// Package qpipe is a Go reproduction of "QPipe: A Simultaneously Pipelined
// Relational Query Engine" (Harizopoulos, Ailamaki, Shkapenyuk — SIGMOD
// 2005): an operator-centric relational execution engine in which every
// relational operator is an independent micro-engine (µEngine) serving
// query packets from a queue, and overlapping work between concurrent
// queries is detected and shared at run time via on-demand simultaneous
// pipelining (OSP).
//
// # Embedding
//
// The package is self-sufficient: Open assembles storage and engine, the
// fluent builder resolves column names against the catalog, and results
// stream through a range-over-func iterator.
//
//	db, _ := qpipe.Open(qpipe.Options{})
//	defer db.Close()
//
//	db.CreateTable("cities", qpipe.NewSchema(
//		qpipe.ColDef("id", qpipe.KindInt),
//		qpipe.ColDef("city", qpipe.KindString),
//		qpipe.ColDef("pop", qpipe.KindFloat)))
//	db.Load("cities", []qpipe.Row{qpipe.R(1, "Pittsburgh", 0.30), ...})
//
//	res, err := db.Scan("cities").
//		Filter(qpipe.Col("pop").Gt(qpipe.Float(0.5))).
//		Project(qpipe.Col("city"), qpipe.Col("pop").Mul(qpipe.Float(1e6)).As("population")).
//		Run(ctx, qpipe.WithParallelism(4))
//	for row := range res.Rows() {
//		... // rows are immutable; see Result.Rows for the lease rules
//	}
//	if err := res.Err(); err != nil { ... }
//
// Builder mistakes — unknown tables or columns, type-mismatched predicates,
// duplicate output names, conflicting options — return typed errors (see
// errors.go) from Plan/Run rather than panicking inside the engine.
//
// Per-query execution knobs travel as functional options on Run:
// WithParallelism, WithoutOSP, WithBatchSize, WithResultCache,
// WithSharedScan. Engine-wide defaults live in Options/Config.
//
// # Engine layer
//
// Advanced embedders (and this module's harness) can drive the engine with
// precompiled plans directly: New assembles an Engine over a storage
// manager, Engine.Query submits a plan.Node. Two engines ship in this
// module: this package (QPipe, with OSP on or off — the paper's "QPipe
// w/OSP" and "Baseline" systems) and internal/volcano (a conventional
// one-query-many-operators iterator engine, standing in for the paper's
// commercial "DBMS X").
package qpipe

import (
	"context"
	"errors"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/ops"
	"qpipe/internal/plan"
	"qpipe/internal/qcache"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// Config re-exports the runtime configuration.
type Config = core.Config

// DefaultConfig returns the paper's "QPipe w/OSP" configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// BaselineConfig returns the paper's "Baseline" (OSP disabled).
func BaselineConfig() Config { return core.BaselineConfig() }

// Engine is a QPipe instance bound to a storage manager. It executes
// precompiled plans; everyday embedders use the DB facade and its builder
// instead.
type Engine struct {
	rt    *core.Runtime
	cache *qcache.Cache
}

// New assembles a QPipe engine over the storage manager with the standard
// operator set.
func New(mgr *sm.Manager, cfg Config) *Engine {
	return &Engine{rt: core.NewRuntime(mgr, cfg, ops.All())}
}

// Runtime exposes the underlying runtime for advanced callers (harness,
// tests).
func (e *Engine) Runtime() *core.Runtime { return e.rt }

// Stats snapshots runtime counters (shares per µEngine, deadlocks resolved,
// queries admitted).
func (e *Engine) Stats() core.RuntimeStats { return e.rt.Stats() }

// Close shuts the engine down, cancelling outstanding queries.
func (e *Engine) Close() { e.rt.Close() }

// Query submits a precompiled plan for execution. The returned Result
// streams output tuples; the caller must drain it (Next/All/Rows/Discard).
func (e *Engine) Query(ctx context.Context, p plan.Node) (*Result, error) {
	q, err := e.rt.Submit(ctx, p)
	if err != nil {
		return nil, err
	}
	return newStreamResult(q, p.Schema(), -1), nil
}

// QueryBatch submits several plans together — the way a multi-query
// optimizer would hand QPipe a batch (paper §2.4: "QPipe can efficiently
// evaluate plans produced by a multi-query optimizer, since it always
// pipelines shared intermediate results"). No static common-subexpression
// analysis is needed: common subtrees across the batch carry identical
// signatures, so OSP shares them at the µEngines, pipelining — not
// materializing — each shared intermediate result to all consumers.
//
// If any member fails to submit, the already-submitted members are
// cancelled AND drained to completion — their buffers and batch-array
// leases released back to the engine, not left to the garbage collector —
// and the typed *BatchError reports the failing index, the submit error and
// any teardown errors (errors.As / errors.Is see through it).
func (e *Engine) QueryBatch(ctx context.Context, plans []plan.Node) ([]*Result, error) {
	out := make([]*Result, 0, len(plans))
	for i, p := range plans {
		res, err := e.Query(ctx, p)
		if err != nil {
			return nil, teardownBatch(out, i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// teardownBatch cancels and drains already-submitted batch members after
// member idx failed to submit, returning the typed joined error.
func teardownBatch(out []*Result, idx int, submitErr error) *BatchError {
	be := &BatchError{Index: idx, Submit: submitErr}
	for _, r := range out {
		r.Cancel()
		// Drain to release buffered batches back to the pool and wait the
		// query out. The expected outcomes of cancelling one's own query —
		// context.Canceled and an abandoned result buffer — are not errors
		// of the teardown; anything else is.
		if _, derr := r.Discard(); derr != nil &&
			!errors.Is(derr, context.Canceled) && !errors.Is(derr, tbuf.ErrAbandoned) {
			be.Teardown = append(be.Teardown, derr)
		}
	}
	return be
}

// Explain renders a plan as an indented tree (re-exported from the plan
// package for API convenience).
func Explain(p plan.Node) string { return plan.Explain(p) }

// ---- Result cache (paper Figure 2, §2.3) -------------------------------------

// EnableResultCache turns on the query-result cache in front of the engine:
// the first sharing stage of the paper's Figure 2 ("a cache of recently
// completed queries; on a match, the query returns the stored results and
// avoids execution altogether"). capacityTuples bounds the cache's total
// size; results larger than maxEntryTuples are never admitted. Only
// QueryCached and Run(... WithResultCache()) consult the cache.
func (e *Engine) EnableResultCache(capacityTuples, maxEntryTuples int64) {
	e.cache = qcache.New(capacityTuples, maxEntryTuples)
}

// CacheStats snapshots the result-cache counters (zero value when the
// cache is disabled).
func (e *Engine) CacheStats() qcache.Stats {
	if e.cache == nil {
		return qcache.Stats{}
	}
	return e.cache.Stats()
}

// QueryCached executes a plan through the result cache: a signature-exact
// hit returns the stored rows without touching the execution engine;
// misses execute normally (still benefiting from OSP against concurrent
// queries) and admit their result on completion. Update plans execute and
// invalidate cached results over their target table. The hit flag reports
// whether the cache served the result.
func (e *Engine) QueryCached(ctx context.Context, p plan.Node) (rows []tuple.Tuple, hit bool, err error) {
	return e.queryCached(ctx, p, core.QueryOptions{})
}

// queryCached is the cache-fronted execution path shared by QueryCached and
// the DB facade's WithResultCache option.
func (e *Engine) queryCached(ctx context.Context, p plan.Node, opts core.QueryOptions) (rows []tuple.Tuple, hit bool, err error) {
	exec := func() ([]tuple.Tuple, error) {
		q, err := e.rt.SubmitOpts(ctx, p, opts)
		if err != nil {
			return nil, err
		}
		return newStreamResult(q, p.Schema(), -1).All()
	}
	if e.cache == nil {
		rows, err = exec()
		return rows, false, err
	}
	if table, isUpdate := qcache.IsUpdate(p); isUpdate {
		rows, err = exec()
		if err == nil {
			e.cache.InvalidateTable(table)
		}
		return rows, false, err
	}
	sig := p.Signature()
	if cached, ok := e.cache.GetCloned(sig); ok {
		return cached, true, nil
	}
	start := time.Now()
	rows, err = exec()
	if err != nil {
		return rows, false, err
	}
	e.cache.Put(sig, qcache.TablesOf(p), rows, time.Since(start))
	return rows, false, nil
}
