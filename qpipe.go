// Package qpipe is a Go reproduction of "QPipe: A Simultaneously Pipelined
// Relational Query Engine" (Harizopoulos, Ailamaki, Shkapenyuk — SIGMOD
// 2005): an operator-centric relational execution engine in which every
// relational operator is an independent micro-engine (µEngine) serving
// query packets from a queue, and overlapping work between concurrent
// queries is detected and shared at run time via on-demand simultaneous
// pipelining (OSP).
//
// Quick start:
//
//	mgr := sm.New(sm.Config{PoolPages: 1024})          // storage manager
//	... create tables, load data ...
//	eng := qpipe.New(mgr, qpipe.DefaultConfig())        // OSP enabled
//	defer eng.Close()
//	res, _ := eng.Query(ctx, somePlan)                  // submit a plan
//	rows, _ := res.All()                                // drain results
//
// Two engines ship in this module: this package (QPipe, with OSP on or off
// — the paper's "QPipe w/OSP" and "Baseline" systems) and
// internal/volcano (a conventional one-query-many-operators iterator
// engine, standing in for the paper's commercial "DBMS X").
package qpipe

import (
	"context"
	"io"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/ops"
	"qpipe/internal/plan"
	"qpipe/internal/qcache"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// Config re-exports the runtime configuration.
type Config = core.Config

// DefaultConfig returns the paper's "QPipe w/OSP" configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// BaselineConfig returns the paper's "Baseline" (OSP disabled).
func BaselineConfig() Config { return core.BaselineConfig() }

// Engine is a QPipe instance bound to a storage manager.
type Engine struct {
	rt    *core.Runtime
	cache *qcache.Cache
}

// New assembles a QPipe engine over the storage manager with the standard
// operator set.
func New(mgr *sm.Manager, cfg Config) *Engine {
	return &Engine{rt: core.NewRuntime(mgr, cfg, ops.All())}
}

// Runtime exposes the underlying runtime for advanced callers (harness,
// tests).
func (e *Engine) Runtime() *core.Runtime { return e.rt }

// Stats snapshots runtime counters (shares per µEngine, deadlocks resolved,
// queries admitted).
func (e *Engine) Stats() core.RuntimeStats { return e.rt.Stats() }

// Close shuts the engine down, cancelling outstanding queries.
func (e *Engine) Close() { e.rt.Close() }

// Result is a handle to a submitted query's output stream.
type Result struct {
	q *core.Query
}

// Query submits a precompiled plan for execution. The returned Result
// streams output tuples; the caller must drain it (Next/All/Discard).
func (e *Engine) Query(ctx context.Context, p plan.Node) (*Result, error) {
	q, err := e.rt.Submit(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{q: q}, nil
}

// Next returns the next batch of result tuples; io.EOF signals completion.
// The returned batch ARRAY is owned by the caller (the engine hands over
// its lease and never touches or recycles it), but the ROWS inside are
// read-only: under the engine's lease protocol they may be shared by
// reference with a port's replay window and with concurrent OSP satellite
// queries, so mutating a returned tuple corrupts other queries' results.
// Callers that need to modify a row must Clone it first.
func (r *Result) Next() (tbuf.Batch, error) { return r.q.Result.Get() }

// All drains the result completely and waits for the query to finish. The
// returned slice is the caller's, but the rows are read-only (see Next);
// the batch arrays that carried them are recycled into the engine's pool.
func (r *Result) All() ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, b...)
		r.q.Result.Recycle(b)
	}
	return out, r.q.Wait()
}

// Discard drains and drops the results (the paper's experiments discard
// all result tuples), returning the row count.
func (r *Result) Discard() (int64, error) {
	n, err := r.q.Result.Drain()
	if err != nil {
		return n, err
	}
	return n, r.q.Wait()
}

// Cancel aborts the query.
func (r *Result) Cancel() { r.q.Cancel() }

// Stats returns the query's sharing counters (valid after completion).
func (r *Result) Stats() *core.QueryStats { return &r.q.Stats }

// QueryBatch submits several plans together — the way a multi-query
// optimizer would hand QPipe a batch (paper §2.4: "QPipe can efficiently
// evaluate plans produced by a multi-query optimizer, since it always
// pipelines shared intermediate results"). No static common-subexpression
// analysis is needed: common subtrees across the batch carry identical
// signatures, so OSP shares them at the µEngines, pipelining — not
// materializing — each shared intermediate result to all consumers.
func (e *Engine) QueryBatch(ctx context.Context, plans []plan.Node) ([]*Result, error) {
	out := make([]*Result, 0, len(plans))
	for _, p := range plans {
		res, err := e.Query(ctx, p)
		if err != nil {
			for _, r := range out {
				r.Cancel()
			}
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Explain renders a plan as an indented tree (re-exported from the plan
// package for API convenience).
func Explain(p plan.Node) string { return plan.Explain(p) }

// ---- Result cache (paper Figure 2, §2.3) -------------------------------------

// EnableResultCache turns on the query-result cache in front of the engine:
// the first sharing stage of the paper's Figure 2 ("a cache of recently
// completed queries; on a match, the query returns the stored results and
// avoids execution altogether"). capacityTuples bounds the cache's total
// size; results larger than maxEntryTuples are never admitted. Only
// QueryCached consults the cache.
func (e *Engine) EnableResultCache(capacityTuples, maxEntryTuples int64) {
	e.cache = qcache.New(capacityTuples, maxEntryTuples)
}

// CacheStats snapshots the result-cache counters (zero value when the
// cache is disabled).
func (e *Engine) CacheStats() qcache.Stats {
	if e.cache == nil {
		return qcache.Stats{}
	}
	return e.cache.Stats()
}

// QueryCached executes a plan through the result cache: a signature-exact
// hit returns the stored rows without touching the execution engine;
// misses execute normally (still benefiting from OSP against concurrent
// queries) and admit their result on completion. Update plans execute and
// invalidate cached results over their target table. The hit flag reports
// whether the cache served the result.
func (e *Engine) QueryCached(ctx context.Context, p plan.Node) (rows []tuple.Tuple, hit bool, err error) {
	if e.cache == nil {
		res, err := e.Query(ctx, p)
		if err != nil {
			return nil, false, err
		}
		rows, err = res.All()
		return rows, false, err
	}
	if table, isUpdate := qcache.IsUpdate(p); isUpdate {
		res, err := e.Query(ctx, p)
		if err != nil {
			return nil, false, err
		}
		rows, err = res.All()
		if err == nil {
			e.cache.InvalidateTable(table)
		}
		return rows, false, err
	}
	sig := p.Signature()
	if cached, ok := e.cache.Get(sig); ok {
		// Clone: cached tuples are shared across callers.
		out := make([]tuple.Tuple, len(cached))
		for i, t := range cached {
			out[i] = t.Clone()
		}
		return out, true, nil
	}
	start := time.Now()
	res, err := e.Query(ctx, p)
	if err != nil {
		return nil, false, err
	}
	rows, err = res.All()
	if err != nil {
		return rows, false, err
	}
	e.cache.Put(sig, qcache.TablesOf(p), rows, time.Since(start))
	return rows, false, nil
}
