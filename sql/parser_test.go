package sql

import (
	"errors"
	"strings"
	"testing"
)

// roundTrips are inputs whose canonical rendering is given explicitly (or
// "" when the input is already canonical). Each must also survive
// parse→String→parse→String unchanged.
var roundTrips = []struct {
	in    string
	canon string // "" = same as in
}{
	{"SELECT * FROM t", ""},
	{"SELECT a, b AS x FROM t", ""},
	{"SELECT a FROM t WHERE a = 1", ""},
	{"select a from t where a=1", "SELECT a FROM t WHERE a = 1"},
	{"SELECT a FROM t WHERE a <> 2 AND b < 3 OR c >= 4", ""},
	{"SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3", ""},
	{"SELECT a FROM t WHERE NOT (a = 1)", ""},
	{"SELECT a FROM t WHERE a != 1", "SELECT a FROM t WHERE a <> 1"},
	{"SELECT a FROM t WHERE a IN (1, 2, 3)", ""},
	{"SELECT a FROM t WHERE a NOT IN ('x', 'y')", ""},
	{"SELECT a FROM t WHERE a BETWEEN 1 AND 10", ""},
	{"SELECT a FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1995-01-01'", ""},
	{"SELECT (a + b) * 2 AS s FROM t", "SELECT ((a + b) * 2) AS s FROM t"},
	{"SELECT -a FROM t", "SELECT (0 - a) FROM t"},
	{"SELECT a FROM t WHERE x = -1.5", ""},
	{"SELECT a FROM t WHERE s = 'it''s'", ""},
	{"SELECT count(*) FROM t", ""},
	{"SELECT COUNT(*) AS n, sum(a) FROM t", "SELECT count(*) AS n, sum(a) FROM t"},
	{"SELECT g, avg(v) FROM t GROUP BY g", ""},
	{"SELECT g, min(v), max(v) FROM t GROUP BY g ORDER BY g LIMIT 5", ""},
	{"SELECT a FROM t ORDER BY a DESC, b DESC", ""},
	{"SELECT a FROM t ORDER BY a ASC", "SELECT a FROM t ORDER BY a"},
	{"SELECT t.a, u.b FROM t JOIN u ON t.id = u.id", ""},
	{"SELECT x FROM t AS a JOIN u b ON a.id = b.id", "SELECT x FROM t AS a JOIN u AS b ON a.id = b.id"},
	{"SELECT x FROM t INNER JOIN u ON t.id = u.id", "SELECT x FROM t JOIN u ON t.id = u.id"},
	{"SELECT x FROM a, b WHERE a.id = b.id", ""},
	{"SELECT x FROM a, b, c WHERE a.id = b.id AND b.k = c.k", ""},
	{"EXPLAIN SELECT a FROM t WHERE a > 1", ""},
	{"CREATE TABLE t (id INT, name TEXT, v FLOAT, d DATE)", ""},
	{"create table t (a integer, b double, c varchar(10), d string)",
		"CREATE TABLE t (a INT, b FLOAT, c TEXT, d TEXT)"},
	{"CREATE INDEX ON t (a)", ""},
	{"CREATE CLUSTERED INDEX ON t (a)", ""},
	{"INSERT INTO t VALUES (1, 'x', 2.5)", ""},
	{"INSERT INTO t (b, a) VALUES (1, 2), (3, 4)", ""},
	{"INSERT INTO t VALUES (-3, DATE '2001-09-09')", ""},
	{"UPDATE t SET a = 1", ""},
	{"UPDATE t SET a = 1, b = b + 1 WHERE id = 3", "UPDATE t SET a = 1, b = (b + 1) WHERE id = 3"},
	{"update t set name = 'x' where id in (1, 2)", "UPDATE t SET name = 'x' WHERE id IN (1, 2)"},
	{"DELETE FROM t", ""},
	{"DELETE FROM t WHERE a > 5 AND b = 'x'", ""},
	{"BEGIN", ""},
	{"BEGIN TRANSACTION", "BEGIN"},
	{"begin work", "BEGIN"},
	{"COMMIT", ""},
	{"COMMIT WORK", "COMMIT"},
	{"ROLLBACK", ""},
	{"rollback work", "ROLLBACK"},
	{"SET parallelism = 8", ""},
	{"set osp = off", "SET osp = off"},
	{"SELECT a -- trailing comment\nFROM t /* block */ WHERE a = 1", "SELECT a FROM t WHERE a = 1"},
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range roundTrips {
		stmt, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		want := tc.canon
		if want == "" {
			want = tc.in
		}
		got := stmt.String()
		if got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, want)
			continue
		}
		again, err := Parse(got)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", got, err)
			continue
		}
		if again.String() != got {
			t.Errorf("round-trip unstable: %q -> %q", got, again.String())
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INT);   -- schema
		INSERT INTO t VALUES (1);;
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements, want 3", len(stmts))
	}
	if _, ok := stmts[0].(*CreateTable); !ok {
		t.Errorf("stmts[0] = %T, want *CreateTable", stmts[0])
	}
	if _, ok := stmts[2].(*Select); !ok {
		t.Errorf("stmts[2] = %T, want *Select", stmts[2])
	}
}

// TestParseErrors checks messages and, crucially, positions: the acceptance
// bar is parse errors reported with line:column.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		in         string
		wantPos    Position
		wantSubstr string
	}{
		{"SELECT", Position{1, 7}, "expected an expression"},
		{"SELECT a", Position{1, 9}, "expected FROM"},
		{"SELECT a FROM", Position{1, 14}, "table name"},
		{"SELECT a FROM t WHERE", Position{1, 22}, "expected an expression"},
		{"SELECT a FROM t WHERE a", Position{1, 24}, "comparison operator"},
		{"SELECT a FROM t\nWHERE a ==", Position{2, 10}, "expected an expression"},
		{"SELECT a FROM t WHERE a = 'x", Position{1, 27}, "unterminated string"},
		{"SELECT a FROM t LIMIT x", Position{1, 23}, "LIMIT expects"},
		{"SELECT a FROM t ORDER BY a DESC, b ASC", Position{2, 0}, "mixed ORDER BY"},
		{"SELECT DISTINCT a FROM t", Position{1, 8}, "DISTINCT is not supported"},
		{"SELECT a FROM t GROUP BY g HAVING n > 1", Position{1, 28}, "HAVING is not supported"},
		{"SELECT nope(a) FROM t", Position{1, 8}, "unknown function"},
		{"SELECT a FROM t WHERE sum(a) > 1", Position{1, 23}, "only allowed in the SELECT list"},
		{"SELECT sum(*) FROM t", Position{1, 8}, "only COUNT(*)"},
		{"CREATE TABLE t (a BLOB)", Position{1, 19}, "unknown column type"},
		{"CREATE TABLE select (a INT)", Position{1, 14}, "reserved keyword"},
		{"INSERT INTO t VALUES (a)", Position{1, 23}, "expected a literal"},
		{"INSERT INTO t VALUES (DATE '99')", Position{1, 28}, "bad date"},
		{"SELECT a FROM t #", Position{1, 17}, "unexpected character"},
		{"UPDATE t", Position{1, 9}, "expected SET"},
		{"UPDATE t SET", Position{1, 13}, "column name"},
		{"UPDATE t SET a", Position{1, 15}, "expected '='"},
		{"DELETE t", Position{1, 8}, "expected FROM"},
		{"DELETE FROM t WHERE", Position{1, 20}, "expected an expression"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error", tc.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %T is not *ParseError", tc.in, err)
			continue
		}
		if !strings.Contains(pe.Msg, tc.wantSubstr) {
			t.Errorf("Parse(%q): message %q does not contain %q", tc.in, pe.Msg, tc.wantSubstr)
		}
		if tc.wantPos.Line > 0 && tc.wantPos.Col > 0 && pe.Pos != tc.wantPos {
			t.Errorf("Parse(%q): position %v, want %v", tc.in, pe.Pos, tc.wantPos)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("Parse(%q): rendering %q lacks a line:col position", tc.in, err.Error())
		}
	}
}

func TestDateLiteral(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE d = DATE '1970-01-02'")
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.(*Select).Where.(*Compare)
	d, ok := cmp.R.(*DateLit)
	if !ok {
		t.Fatalf("RHS is %T, want *DateLit", cmp.R)
	}
	if d.Days != 1 {
		t.Errorf("Days = %d, want 1", d.Days)
	}
}

func TestLimitAndAliases(t *testing.T) {
	stmt, err := Parse("SELECT a col1, b FROM t u LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if sel.Items[0].Alias != "col1" {
		t.Errorf("bare alias: got %q, want col1", sel.Items[0].Alias)
	}
	if sel.From.Alias != "u" {
		t.Errorf("table alias: got %q, want u", sel.From.Alias)
	}
	if sel.Limit != 7 {
		t.Errorf("limit = %d, want 7", sel.Limit)
	}
}
