// Recursive-descent parser. The whole input is lexed up front, so
// backtracking (needed to tell a parenthesized predicate from a
// parenthesized arithmetic expression) is an index reset. Errors propagate
// as panicking *ParseError values, recovered at the ParseScript boundary.
package sql

import (
	"fmt"
	"strconv"
	"time"
)

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.Kind != tokEOF {
		p.i++
	}
	return t
}

// errf panics with a positioned parse error.
func (p *parser) errf(pos Position, format string, args ...any) {
	panic(&ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// gotSym consumes the symbol if it is next and reports whether it did.
func (p *parser) gotSym(s string) bool {
	if t := p.peek(); t.Kind == tokSymbol && t.Text == s {
		p.i++
		return true
	}
	return false
}

// gotKw consumes the keyword if it is next and reports whether it did.
func (p *parser) gotKw(k string) bool {
	if t := p.peek(); t.Kind == tokKeyword && t.Text == k {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) token {
	t := p.next()
	if t.Kind != tokSymbol || t.Text != s {
		p.errf(t.Pos, "expected '%s', found %s", s, t.describe())
	}
	return t
}

func (p *parser) expectKw(k string) token {
	t := p.next()
	if t.Kind != tokKeyword || t.Text != k {
		p.errf(t.Pos, "expected %s, found %s", k, t.describe())
	}
	return t
}

// expectIdent consumes an identifier, with a pointed message for reserved
// keywords.
func (p *parser) expectIdent(what string) token {
	t := p.next()
	if t.Kind == tokKeyword {
		p.errf(t.Pos, "%s is a reserved keyword (expected %s)", t.Text, what)
	}
	if t.Kind != tokIdent {
		p.errf(t.Pos, "expected %s, found %s", what, t.describe())
	}
	return t
}

// ---- Statements --------------------------------------------------------------

func (p *parser) parseStatement() Statement {
	t := p.peek()
	if t.Kind != tokKeyword {
		p.errf(t.Pos, "expected a statement (SELECT, EXPLAIN, CREATE, INSERT, UPDATE, DELETE, ANALYZE, SET, BEGIN, COMMIT or ROLLBACK), found %s", t.describe())
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.next()
		sel := p.parseSelect()
		return &Explain{Stmt: sel}
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "ANALYZE":
		return p.parseAnalyze()
	case "SET":
		return p.parseSet()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "BEGIN":
		p.next()
		// Tolerate the standard noise words.
		if !p.gotKw("TRANSACTION") {
			p.gotKw("WORK")
		}
		return &Begin{}
	case "COMMIT":
		p.next()
		p.gotKw("WORK")
		return &Commit{}
	case "ROLLBACK":
		p.next()
		p.gotKw("WORK")
		return &Rollback{}
	case "DISTINCT", "HAVING", "UNION":
		p.errf(t.Pos, "%s is not supported", t.Text)
	default:
		p.errf(t.Pos, "expected a statement (SELECT, EXPLAIN, CREATE, INSERT, UPDATE, DELETE, ANALYZE, SET, BEGIN, COMMIT or ROLLBACK), found %s", t.describe())
	}
	return nil
}

// parseUpdate parses "UPDATE table SET col = expr, ... [WHERE pred]".
// Assignment values are full scalar expressions over the table's columns
// (no aggregates).
func (p *parser) parseUpdate() *Update {
	p.expectKw("UPDATE")
	u := &Update{Table: p.expectIdent("table name").Text}
	p.expectKw("SET")
	for {
		col := p.expectIdent("column name").Text
		p.expectSym("=")
		u.Set = append(u.Set, Assignment{Column: col, Value: p.parseExpr(false)})
		if !p.gotSym(",") {
			break
		}
	}
	if p.gotKw("WHERE") {
		u.Where = p.parsePred()
	}
	return u
}

// parseDelete parses "DELETE FROM table [WHERE pred]".
func (p *parser) parseDelete() *Delete {
	p.expectKw("DELETE")
	p.expectKw("FROM")
	d := &Delete{Table: p.expectIdent("table name").Text}
	if p.gotKw("WHERE") {
		d.Where = p.parsePred()
	}
	return d
}

// parseAnalyze parses "ANALYZE [table]" — without a table name, every
// table's statistics are rebuilt.
func (p *parser) parseAnalyze() *Analyze {
	p.next() // ANALYZE
	a := &Analyze{}
	if t := p.peek(); t.Kind == tokIdent {
		a.Table = p.next().Text
	}
	return a
}

func (p *parser) parseSelect() *Select {
	p.expectKw("SELECT")
	if t := p.peek(); t.Kind == tokKeyword && t.Text == "DISTINCT" {
		p.errf(t.Pos, "DISTINCT is not supported")
	}
	sel := &Select{Limit: -1}

	// Select list.
	for {
		if p.gotSym("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			item := SelectItem{Expr: p.parseExpr(true)}
			if p.gotKw("AS") {
				item.Alias = p.expectIdent("alias").Text
			} else if t := p.peek(); t.Kind == tokIdent {
				p.next()
				item.Alias = t.Text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.gotSym(",") {
			break
		}
	}

	p.expectKw("FROM")
	sel.From = p.parseTableRef()
	for {
		if p.gotSym(",") {
			sel.Joins = append(sel.Joins, JoinClause{Ref: p.parseTableRef()})
			continue
		}
		if t := p.peek(); t.Kind == tokKeyword && (t.Text == "JOIN" || t.Text == "INNER") {
			p.next()
			if t.Text == "INNER" {
				p.expectKw("JOIN")
			}
			ref := p.parseTableRef()
			p.expectKw("ON")
			on := p.parsePred()
			sel.Joins = append(sel.Joins, JoinClause{Ref: ref, On: on})
			continue
		}
		break
	}

	if p.gotKw("WHERE") {
		sel.Where = p.parsePred()
	}
	if p.gotKw("GROUP") {
		p.expectKw("BY")
		for {
			sel.GroupBy = append(sel.GroupBy, p.parseColumnRef())
			if !p.gotSym(",") {
				break
			}
		}
	}
	if t := p.peek(); t.Kind == tokKeyword && t.Text == "HAVING" {
		p.errf(t.Pos, "HAVING is not supported (filter on the aggregate in an outer query)")
	}
	if p.gotKw("ORDER") {
		p.expectKw("BY")
		first := true
		var dir *bool
		for {
			key := OrderKey{Col: p.parseColumnRef()}
			pos := p.peek().Pos
			if p.gotKw("DESC") {
				key.Desc = true
			} else {
				p.gotKw("ASC")
			}
			if first {
				d := key.Desc
				dir = &d
				first = false
			} else if key.Desc != *dir {
				p.errf(pos, "mixed ORDER BY directions are not supported (all keys must be ASC or all DESC)")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.gotSym(",") {
				break
			}
		}
	}
	if p.gotKw("LIMIT") {
		t := p.next()
		if t.Kind != tokNumber || t.Float {
			p.errf(t.Pos, "LIMIT expects a non-negative integer, found %s", t.describe())
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errf(t.Pos, "bad LIMIT value %q", t.Text)
		}
		sel.Limit = n
	}
	return sel
}

func (p *parser) parseTableRef() TableRef {
	t := p.expectIdent("table name")
	ref := TableRef{Table: t.Text, Pos: t.Pos}
	if p.gotKw("AS") {
		ref.Alias = p.expectIdent("table alias").Text
	} else if a := p.peek(); a.Kind == tokIdent {
		p.next()
		ref.Alias = a.Text
	}
	return ref
}

func (p *parser) parseColumnRef() ColumnRef {
	t := p.expectIdent("column name")
	ref := ColumnRef{Name: t.Text, Pos: t.Pos}
	if p.gotSym(".") {
		c := p.expectIdent("column name")
		ref.Table, ref.Name = t.Text, c.Text
	}
	return ref
}

func (p *parser) parseCreate() Statement {
	p.expectKw("CREATE")
	if p.gotKw("TABLE") {
		name := p.expectIdent("table name").Text
		p.expectSym("(")
		ct := &CreateTable{Name: name}
		for {
			col := p.expectIdent("column name").Text
			ct.Cols = append(ct.Cols, ColumnDef{Name: col, Type: p.parseColumnType()})
			if !p.gotSym(",") {
				break
			}
		}
		p.expectSym(")")
		return ct
	}
	clustered := false
	if p.gotKw("CLUSTERED") {
		clustered = true
	}
	p.expectKw("INDEX")
	p.expectKw("ON")
	table := p.expectIdent("table name").Text
	p.expectSym("(")
	col := p.expectIdent("column name").Text
	p.expectSym(")")
	return &CreateIndex{Table: table, Column: col, Clustered: clustered}
}

// parseColumnType accepts the supported type names (and common synonyms),
// normalizing to INT, FLOAT, TEXT or DATE.
func (p *parser) parseColumnType() string {
	t := p.next()
	var word string
	switch t.Kind {
	case tokIdent:
		word = t.Text
	case tokKeyword:
		word = t.Text // DATE is a keyword
	default:
		p.errf(t.Pos, "expected a column type, found %s", t.describe())
	}
	switch word {
	case "int", "integer", "bigint":
		return "INT"
	case "float", "double", "real":
		return "FLOAT"
	case "text", "string", "varchar":
		if word == "varchar" && p.gotSym("(") { // tolerate VARCHAR(n)
			n := p.next()
			if n.Kind != tokNumber || n.Float {
				p.errf(n.Pos, "expected a length, found %s", n.describe())
			}
			p.expectSym(")")
		}
		return "TEXT"
	case "DATE":
		return "DATE"
	default:
		p.errf(t.Pos, "unknown column type %q (supported: INT, FLOAT, TEXT, DATE)", word)
		return ""
	}
}

func (p *parser) parseInsert() *Insert {
	p.expectKw("INSERT")
	p.expectKw("INTO")
	ins := &Insert{Table: p.expectIdent("table name").Text}
	if p.gotSym("(") {
		for {
			ins.Columns = append(ins.Columns, p.expectIdent("column name").Text)
			if !p.gotSym(",") {
				break
			}
		}
		p.expectSym(")")
	}
	p.expectKw("VALUES")
	for {
		p.expectSym("(")
		var row []Expr
		for {
			row = append(row, p.parseLiteral())
			if !p.gotSym(",") {
				break
			}
		}
		p.expectSym(")")
		if len(ins.Columns) > 0 && len(row) != len(ins.Columns) {
			p.errf(p.peek().Pos, "VALUES row has %d values for %d named columns", len(row), len(ins.Columns))
		}
		ins.Rows = append(ins.Rows, row)
		if !p.gotSym(",") {
			break
		}
	}
	return ins
}

// parseLiteral parses a literal value (INSERT rows, IN lists): a number with
// optional sign, a string, or a DATE literal.
func (p *parser) parseLiteral() Expr {
	t := p.peek()
	neg := false
	if t.Kind == tokSymbol && (t.Text == "-" || t.Text == "+") {
		p.next()
		neg = t.Text == "-"
		t = p.peek()
	}
	switch {
	case t.Kind == tokNumber:
		p.next()
		return p.numberLit(t, neg)
	case t.Kind == tokString && !neg:
		p.next()
		return &StringLit{V: t.Text}
	case t.Kind == tokKeyword && t.Text == "DATE" && !neg:
		p.next()
		return p.dateLit()
	default:
		p.errf(t.Pos, "expected a literal value, found %s", t.describe())
		return nil
	}
}

func (p *parser) numberLit(t token, neg bool) Expr {
	if t.Float {
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errf(t.Pos, "bad number %q", t.Text)
		}
		if neg {
			v = -v
		}
		return &FloatLit{V: v}
	}
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		p.errf(t.Pos, "bad number %q", t.Text)
	}
	if neg {
		v = -v
	}
	return &IntLit{V: v}
}

// dateLit parses the quoted date after an already-consumed DATE keyword.
func (p *parser) dateLit() Expr {
	t := p.next()
	if t.Kind != tokString {
		p.errf(t.Pos, "DATE expects a 'YYYY-MM-DD' string, found %s", t.describe())
	}
	d, err := time.ParseInLocation("2006-01-02", t.Text, time.UTC)
	if err != nil {
		p.errf(t.Pos, "bad date %q (want YYYY-MM-DD)", t.Text)
	}
	return &DateLit{Days: d.Unix() / 86400}
}

func (p *parser) parseSet() *Set {
	p.expectKw("SET")
	name := p.expectIdent("setting name").Text
	p.expectSym("=")
	t := p.next()
	switch t.Kind {
	case tokIdent, tokNumber:
		return &Set{Name: name, Value: t.Text}
	case tokKeyword: // SET osp = ON parses ON as a keyword
		return &Set{Name: name, Value: t.Text}
	case tokString: // SET statement_timeout = '500ms'
		return &Set{Name: name, Value: t.Text}
	default:
		p.errf(t.Pos, "expected a value, found %s", t.describe())
		return nil
	}
}

// ---- Predicates --------------------------------------------------------------

// parsePred parses an OR-level predicate.
func (p *parser) parsePred() Pred {
	first := p.parseAndPred()
	if t := p.peek(); !(t.Kind == tokKeyword && t.Text == "OR") {
		return first
	}
	or := &Or{Ps: []Pred{first}}
	for p.gotKw("OR") {
		or.Ps = append(or.Ps, p.parseAndPred())
	}
	return or
}

func (p *parser) parseAndPred() Pred {
	first := p.parseNotPred()
	if t := p.peek(); !(t.Kind == tokKeyword && t.Text == "AND") {
		return first
	}
	and := &And{Ps: []Pred{first}}
	for p.gotKw("AND") {
		and.Ps = append(and.Ps, p.parseNotPred())
	}
	return and
}

func (p *parser) parseNotPred() Pred {
	if p.gotKw("NOT") {
		return &Not{P: p.parseNotPred()}
	}
	return p.parsePrimaryPred()
}

// parsePrimaryPred parses a comparison, IN, BETWEEN, or a parenthesized
// predicate. A leading '(' is ambiguous — "(a OR b)" starts a predicate,
// "(x + 1) > 2" an expression — so the predicate interpretation is tried
// first and rolled back on failure.
func (p *parser) parsePrimaryPred() Pred {
	if t := p.peek(); t.Kind == tokSymbol && t.Text == "(" {
		if pred, ok := p.tryParenPred(); ok {
			return pred
		}
	}
	e := p.parseExpr(false)
	t := p.peek()
	neg := false
	if t.Kind == tokKeyword && t.Text == "NOT" {
		p.next()
		t = p.peek()
		if !(t.Kind == tokKeyword && (t.Text == "IN" || t.Text == "BETWEEN")) {
			p.errf(t.Pos, "expected IN or BETWEEN after NOT, found %s", t.describe())
		}
		neg = true
	}
	switch {
	case t.Kind == tokSymbol && isCmpOp(t.Text):
		p.next()
		return &Compare{Op: t.Text, L: e, R: p.parseExpr(false)}
	case t.Kind == tokKeyword && t.Text == "IN":
		p.next()
		p.expectSym("(")
		in := &InPred{E: e, Neg: neg}
		for {
			in.Vals = append(in.Vals, p.parseLiteral())
			if !p.gotSym(",") {
				break
			}
		}
		p.expectSym(")")
		return in
	case t.Kind == tokKeyword && t.Text == "BETWEEN":
		p.next()
		lo := p.parseExpr(false)
		p.expectKw("AND")
		hi := p.parseExpr(false)
		return &BetweenPred{E: e, Lo: lo, Hi: hi, Neg: neg}
	default:
		p.errf(t.Pos, "expected a comparison operator, IN or BETWEEN, found %s", t.describe())
		return nil
	}
}

// tryParenPred attempts "( pred )", restoring the token position if the
// contents are not a complete parenthesized predicate.
func (p *parser) tryParenPred() (pred Pred, ok bool) {
	save := p.i
	defer func() {
		if r := recover(); r != nil {
			if _, isParse := r.(*ParseError); !isParse {
				panic(r)
			}
			p.i = save
			pred, ok = nil, false
		}
	}()
	p.expectSym("(")
	inner := p.parsePred()
	p.expectSym(")")
	return inner, true
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// ---- Expressions -------------------------------------------------------------

// parseExpr parses additive arithmetic. allowAgg permits aggregate calls
// (legal in SELECT lists only).
func (p *parser) parseExpr(allowAgg bool) Expr {
	e := p.parseTerm(allowAgg)
	for {
		t := p.peek()
		if t.Kind == tokSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			e = &BinaryExpr{Op: t.Text[0], L: e, R: p.parseTerm(allowAgg)}
			continue
		}
		return e
	}
}

func (p *parser) parseTerm(allowAgg bool) Expr {
	e := p.parseFactor(allowAgg)
	for {
		t := p.peek()
		if t.Kind == tokSymbol && (t.Text == "*" || t.Text == "/") {
			p.next()
			e = &BinaryExpr{Op: t.Text[0], L: e, R: p.parseFactor(allowAgg)}
			continue
		}
		return e
	}
}

func (p *parser) parseFactor(allowAgg bool) Expr {
	t := p.peek()
	switch {
	case t.Kind == tokSymbol && t.Text == "-":
		p.next()
		inner := p.parseFactor(allowAgg)
		switch l := inner.(type) {
		case *IntLit:
			return &IntLit{V: -l.V}
		case *FloatLit:
			return &FloatLit{V: -l.V}
		}
		// -x over a non-literal lowers as (0 - x).
		return &BinaryExpr{Op: '-', L: &IntLit{V: 0}, R: inner}
	case t.Kind == tokSymbol && t.Text == "(":
		p.next()
		e := p.parseExpr(allowAgg)
		p.expectSym(")")
		return e
	case t.Kind == tokNumber:
		p.next()
		return p.numberLit(t, false)
	case t.Kind == tokString:
		p.next()
		return &StringLit{V: t.Text}
	case t.Kind == tokKeyword && t.Text == "DATE":
		p.next()
		return p.dateLit()
	case t.Kind == tokIdent:
		// Identifier: a function call if '(' follows, else a column ref.
		if p.toks[p.i+1].Kind == tokSymbol && p.toks[p.i+1].Text == "(" {
			return p.parseCall(allowAgg)
		}
		return p.parseColumnRefExpr()
	default:
		p.errf(t.Pos, "expected an expression, found %s", t.describe())
		return nil
	}
}

func (p *parser) parseColumnRefExpr() Expr {
	ref := p.parseColumnRef()
	return &ref
}

var aggFuncs = map[string]bool{"count": true, "sum": true, "min": true, "max": true, "avg": true}

func (p *parser) parseCall(allowAgg bool) Expr {
	t := p.next() // identifier
	if !aggFuncs[t.Text] {
		p.errf(t.Pos, "unknown function %q (supported: COUNT, SUM, MIN, MAX, AVG)", t.Text)
	}
	if !allowAgg {
		p.errf(t.Pos, "aggregate %s is only allowed in the SELECT list", t.Text)
	}
	p.expectSym("(")
	call := &AggCall{Func: t.Text, Pos: t.Pos}
	if p.gotSym("*") {
		if call.Func != "count" {
			p.errf(t.Pos, "%s(*) is not valid (only COUNT(*))", t.Text)
		}
		call.Star = true
	} else {
		// Aggregate arguments are plain scalar expressions (no nesting).
		call.Arg = p.parseExpr(false)
	}
	p.expectSym(")")
	return call
}
