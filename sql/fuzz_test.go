package sql

import "testing"

// FuzzParse asserts the parser's two safety properties on arbitrary input:
// it never panics (errors are always *ParseError values — the recover in
// ParseScript converts the internal panic protocol, and anything else
// escapes as a real panic the fuzzer catches), and a successful parse
// round-trips: rendering the AST and re-parsing yields the identical
// rendering, i.e. String() is a fixpoint normalizer.
func FuzzParse(f *testing.F) {
	for _, tc := range roundTrips {
		f.Add(tc.in)
	}
	f.Add("SELECT a FROM t WHERE a IN (1,2) OR NOT b BETWEEN 1 AND 2")
	f.Add("INSERT INTO t (a,b) VALUES (1,'x'),(2,'y')")
	f.Add("EXPLAIN SELECT count(*) FROM a, b WHERE a.x = b.y GROUP BY g")
	f.Add("SET batch_size = 128; SELECT 1 + 2 * 3 FROM t;")
	f.Add("SELECT 'quo''te', DATE '1999-12-31' FROM t -- c\n/*x*/")
	f.Add("create clustered index on t (k)")

	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseScript(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, stmt := range stmts {
			s1 := stmt.String()
			again, err := Parse(s1)
			if err != nil {
				t.Fatalf("rendering does not re-parse:\ninput: %q\nrendered: %q\nerror: %v", input, s1, err)
			}
			if s2 := again.String(); s2 != s1 {
				t.Fatalf("round-trip not stable:\ninput: %q\nfirst: %q\nsecond: %q", input, s1, s2)
			}
		}
	})
}
