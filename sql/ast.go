// AST node types. Every node renders back to canonical SQL via String();
// parsing a rendering yields a structurally identical tree (the FuzzParse
// round-trip property), so String doubles as a normalizer.
package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Statement is one parsed SQL statement.
type Statement interface {
	fmt.Stringer
	isStatement()
}

// ---- Expressions -------------------------------------------------------------

// Expr is a scalar expression (column reference, literal, arithmetic, or an
// aggregate call inside a SELECT list).
type Expr interface {
	fmt.Stringer
	isExpr()
}

// ColumnRef references a column, optionally qualified by a table name or
// alias ("t.col"). Pos locates the reference for error reporting.
type ColumnRef struct {
	Table string // "" = unqualified
	Name  string
	Pos   Position
}

func (*ColumnRef) isExpr() {}

// String implements Expr.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (*IntLit) isExpr() {}

// String implements Expr.
func (l *IntLit) String() string { return strconv.FormatInt(l.V, 10) }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (*FloatLit) isExpr() {}

// String implements Expr. The rendering always re-parses as a float.
func (l *FloatLit) String() string {
	s := strconv.FormatFloat(l.V, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// StringLit is a string literal.
type StringLit struct{ V string }

func (*StringLit) isExpr() {}

// String implements Expr, re-quoting embedded quotes.
func (l *StringLit) String() string {
	return "'" + strings.ReplaceAll(l.V, "'", "''") + "'"
}

// DateLit is a DATE 'YYYY-MM-DD' literal, stored as days since 1970-01-01
// (qpipe's date representation).
type DateLit struct{ Days int64 }

func (*DateLit) isExpr() {}

// String implements Expr.
func (l *DateLit) String() string {
	return "DATE '" + time.Unix(l.Days*86400, 0).UTC().Format("2006-01-02") + "'"
}

// BinaryExpr is arithmetic: Op is one of '+', '-', '*', '/'.
type BinaryExpr struct {
	Op   byte
	L, R Expr
}

func (*BinaryExpr) isExpr() {}

// String implements Expr. Nested arithmetic is always parenthesized, so the
// rendering carries no precedence ambiguity.
func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

// AggCall is an aggregate function call: COUNT(*) (Star), or
// COUNT/SUM/MIN/MAX/AVG over an argument expression. Func is lower-cased.
type AggCall struct {
	Func string
	Star bool // COUNT(*)
	Arg  Expr // nil when Star
	Pos  Position
}

func (*AggCall) isExpr() {}

// String implements Expr.
func (a *AggCall) String() string {
	if a.Star {
		return a.Func + "(*)"
	}
	return a.Func + "(" + a.Arg.String() + ")"
}

// ---- Predicates --------------------------------------------------------------

// Pred is a boolean predicate.
type Pred interface {
	fmt.Stringer
	isPred()
}

// Compare is a binary comparison; Op is one of = <> < <= > >=.
type Compare struct {
	Op   string
	L, R Expr
}

func (*Compare) isPred() {}

// String implements Pred.
func (c *Compare) String() string { return c.L.String() + " " + c.Op + " " + c.R.String() }

// And is an n-ary conjunction (flattened by the parser).
type And struct{ Ps []Pred }

func (*And) isPred() {}

// String implements Pred. OR operands are parenthesized to preserve
// precedence on re-parse.
func (a *And) String() string {
	parts := make([]string, len(a.Ps))
	for i, p := range a.Ps {
		if _, isOr := p.(*Or); isOr {
			parts[i] = "(" + p.String() + ")"
		} else {
			parts[i] = p.String()
		}
	}
	return strings.Join(parts, " AND ")
}

// Or is an n-ary disjunction (flattened by the parser).
type Or struct{ Ps []Pred }

func (*Or) isPred() {}

// String implements Pred.
func (o *Or) String() string {
	parts := make([]string, len(o.Ps))
	for i, p := range o.Ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " OR ")
}

// Not negates a predicate.
type Not struct{ P Pred }

func (*Not) isPred() {}

// String implements Pred. The operand is always parenthesized.
func (n *Not) String() string { return "NOT (" + n.P.String() + ")" }

// InPred is "<expr> [NOT] IN (v, ...)".
type InPred struct {
	E    Expr
	Vals []Expr
	Neg  bool
}

func (*InPred) isPred() {}

// String implements Pred.
func (p *InPred) String() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = v.String()
	}
	op := " IN ("
	if p.Neg {
		op = " NOT IN ("
	}
	return p.E.String() + op + strings.Join(parts, ", ") + ")"
}

// BetweenPred is "<expr> [NOT] BETWEEN lo AND hi" (inclusive bounds).
type BetweenPred struct {
	E      Expr
	Lo, Hi Expr
	Neg    bool
}

func (*BetweenPred) isPred() {}

// String implements Pred.
func (p *BetweenPred) String() string {
	op := " BETWEEN "
	if p.Neg {
		op = " NOT BETWEEN "
	}
	return p.E.String() + op + p.Lo.String() + " AND " + p.Hi.String()
}

// ---- SELECT ------------------------------------------------------------------

// SelectItem is one output column of a SELECT list: '*', or an expression
// with an optional alias.
type SelectItem struct {
	Star  bool
	Expr  Expr   // nil when Star
	Alias string // "" = none
}

// String renders the item.
func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// TableRef names a FROM table with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" = none (the table name itself qualifies columns)
	Pos   Position
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Table + " AS " + t.Alias
	}
	return t.Table
}

// JoinClause adds one table to the FROM list: either "JOIN t ON pred"
// (On != nil) or comma syntax "FROM a, b" (On == nil — join keys are
// recovered from WHERE equality conjuncts by the planner).
type JoinClause struct {
	Ref TableRef
	On  Pred // nil for comma syntax
}

// OrderKey is one ORDER BY column with its direction.
type OrderKey struct {
	Col  ColumnRef
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Pred // nil = none
	GroupBy []ColumnRef
	OrderBy []OrderKey
	Limit   int64 // -1 = none
}

func (*Select) isStatement() {}

// String implements Statement.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From.String())
	for _, j := range s.Joins {
		if j.On != nil {
			b.WriteString(" JOIN ")
			b.WriteString(j.Ref.String())
			b.WriteString(" ON ")
			b.WriteString(j.On.String())
		} else {
			b.WriteString(", ")
			b.WriteString(j.Ref.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Col.String())
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Explain wraps a SELECT: the planner compiles it and returns the lowered
// physical plan as text instead of executing.
type Explain struct {
	Stmt *Select
}

func (*Explain) isStatement() {}

// String implements Statement.
func (e *Explain) String() string { return "EXPLAIN " + e.Stmt.String() }

// ---- DDL / DML ---------------------------------------------------------------

// ColumnDef is one column of a CREATE TABLE: a name and a type keyword
// (normalized: INT, FLOAT, TEXT or DATE).
type ColumnDef struct {
	Name string
	Type string
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

func (*CreateTable) isStatement() {}

// String implements Statement.
func (c *CreateTable) String() string {
	parts := make([]string, len(c.Cols))
	for i, col := range c.Cols {
		parts[i] = col.Name + " " + col.Type
	}
	return "CREATE TABLE " + c.Name + " (" + strings.Join(parts, ", ") + ")"
}

// CreateIndex is a CREATE [CLUSTERED] INDEX ON t (col) statement.
type CreateIndex struct {
	Table     string
	Column    string
	Clustered bool
}

func (*CreateIndex) isStatement() {}

// String implements Statement.
func (c *CreateIndex) String() string {
	kind := "INDEX"
	if c.Clustered {
		kind = "CLUSTERED INDEX"
	}
	return "CREATE " + kind + " ON " + c.Table + " (" + c.Column + ")"
}

// Insert is an INSERT INTO ... VALUES statement. Columns optionally names
// a subset/reordering of the table's columns; Rows hold literal expressions
// only (IntLit, FloatLit, StringLit, DateLit).
type Insert struct {
	Table   string
	Columns []string // nil = schema order
	Rows    [][]Expr
}

func (*Insert) isStatement() {}

// String implements Statement.
func (ins *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(ins.Table)
	if len(ins.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(ins.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Analyze is "ANALYZE [table]": rebuild table statistics (row counts,
// per-column min/max and distinct-value sketches) from a full scan. An
// empty Table means every table.
type Analyze struct {
	Table string
}

func (*Analyze) isStatement() {}

// String implements Statement.
func (a *Analyze) String() string {
	if a.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + a.Table
}

// Set is a session statement "SET name = value". The engine has no session
// state; clients (the qpipe-shell REPL, the SQL workload runner) map it to
// per-query options via qpipe.Session.
type Set struct {
	Name  string
	Value string // raw: an identifier, keyword or number rendering
}

func (*Set) isStatement() {}

// String implements Statement.
func (s *Set) String() string { return "SET " + s.Name + " = " + s.Value }

// Assignment is one "col = expr" clause of an UPDATE's SET list.
type Assignment struct {
	Column string
	Value  Expr
}

func (a Assignment) String() string { return a.Column + " = " + a.Value.String() }

// Update is an UPDATE ... SET ... [WHERE ...] statement. Assignments may
// reference the table's columns (all reads see the pre-update row). A nil
// Where updates every row.
type Update struct {
	Table string
	Set   []Assignment
	Where Pred
}

func (*Update) isStatement() {}

// String implements Statement.
func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(u.Table)
	b.WriteString(" SET ")
	for i, a := range u.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if u.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(u.Where.String())
	}
	return b.String()
}

// Delete is a DELETE FROM ... [WHERE ...] statement. A nil Where deletes
// every row.
type Delete struct {
	Table string
	Where Pred
}

func (*Delete) isStatement() {}

// String implements Statement.
func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// Begin starts an explicit transaction (BEGIN; BEGIN TRANSACTION and BEGIN
// WORK parse to the same statement).
type Begin struct{}

func (*Begin) isStatement() {}

// String implements Statement.
func (*Begin) String() string { return "BEGIN" }

// Commit commits the session's open transaction.
type Commit struct{}

func (*Commit) isStatement() {}

// String implements Statement.
func (*Commit) String() string { return "COMMIT" }

// Rollback aborts the session's open transaction.
type Rollback struct{}

func (*Rollback) isStatement() {}

// String implements Statement.
func (*Rollback) String() string { return "ROLLBACK" }
