// Package sql is qpipe's declarative front end: a hand-written lexer and
// recursive-descent parser producing a small SQL AST. The package is pure
// syntax — it knows nothing about catalogs, schemas or plans. The root qpipe
// package lowers the AST onto the schema-aware builder (db.Prepare, db.Query,
// db.Exec), which is where name resolution and type checking happen and
// where the typed qpipe errors (UnknownTableError, TypeMismatchError, ...)
// come from. Errors at the syntax level are *ParseError values carrying a
// line:column position.
//
// The supported dialect (one statement per Parse call; ParseScript splits a
// ';'-separated script):
//
//	SELECT <exprs|*> FROM t [alias] [JOIN u ON a = b | , u] ...
//	    [WHERE pred] [GROUP BY cols] [ORDER BY cols [ASC|DESC]] [LIMIT n]
//	EXPLAIN SELECT ...
//	CREATE TABLE t (col TYPE, ...)          -- INT, FLOAT, TEXT, DATE
//	CREATE [CLUSTERED] INDEX ON t (col)
//	INSERT INTO t [(cols)] VALUES (...), ...
//	SET name = value                        -- session statement (see qpipe.Session)
//
// Expressions cover column references (optionally table-qualified),
// integer/float/string literals, DATE 'YYYY-MM-DD' literals, + - * /
// arithmetic, and the aggregate calls COUNT(*), COUNT, SUM, MIN, MAX, AVG.
// Predicates cover the six comparisons, AND/OR/NOT, IN (...) and
// BETWEEN ... AND ....
//
// Unquoted identifiers fold to lower case. '--' line comments and '/* */'
// block comments are recognized. Every AST node renders back to canonical
// SQL via String(), and parsing that rendering yields the same rendering
// again (the FuzzParse round-trip property).
package sql

import "fmt"

// Position is a 1-based line/column location in the parsed input.
type Position struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is a syntax error with the position it occurred at. It is the
// one error type this package returns; semantic errors (unknown tables,
// type mismatches) surface later, from the qpipe planner, as qpipe's typed
// errors.
type ParseError struct {
	Pos Position
	Msg string
}

// Error implements error, rendering as "sql: line L:C: msg".
func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: line %s: %s", e.Pos, e.Msg)
}

// Parse parses exactly one statement (a trailing ';' is allowed).
func Parse(input string) (Statement, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, &ParseError{Pos: Position{1, 1}, Msg: "empty statement"}
	}
	if len(stmts) > 1 {
		return nil, &ParseError{Pos: Position{1, 1}, Msg: fmt.Sprintf("expected one statement, got %d", len(stmts))}
	}
	return stmts[0], nil
}

// ParseScript parses a ';'-separated sequence of statements. Empty
// statements (stray semicolons, comment-only segments) are skipped.
func ParseScript(input string) (stmts []Statement, err error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ParseError)
			if !ok {
				panic(r)
			}
			stmts, err = nil, pe
		}
	}()
	for {
		for p.gotSym(";") {
		}
		if p.peek().Kind == tokEOF {
			return stmts, nil
		}
		stmts = append(stmts, p.parseStatement())
		if p.peek().Kind != tokEOF {
			p.expectSym(";")
		}
	}
}
