// Lexer: turns SQL text into a token stream with positions. Keywords are
// recognized case-insensitively and normalized to upper case; unquoted
// identifiers fold to lower case (the catalog convention).
package sql

import "strings"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

func (k tokenKind) String() string {
	return [...]string{"end of input", "identifier", "keyword", "number", "string", "symbol"}[k]
}

type token struct {
	Kind  tokenKind
	Text  string // keyword: upper-cased; ident: lower-cased; string: decoded
	Float bool   // tokNumber: literal contains '.' or an exponent
	Pos   Position
}

// describe renders a token for error messages.
func (t token) describe() string {
	if t.Kind == tokEOF {
		return "end of input"
	}
	return "'" + t.Text + "'"
}

// keywords are reserved words: they parse as tokKeyword and are rejected
// where an identifier is expected. DISTINCT, HAVING and UNION are reserved
// but unsupported, so they fail with a clear message instead of being
// misread as identifiers.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "JOIN": true, "INNER": true, "ON": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"CLUSTERED": true, "INSERT": true, "INTO": true, "VALUES": true,
	"EXPLAIN": true, "SET": true, "DATE": true, "ASC": true, "DESC": true,
	"ANALYZE": true, "DISTINCT": true, "HAVING": true, "UNION": true,
	"UPDATE": true, "DELETE": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "TRANSACTION": true, "WORK": true,
}

// lex tokenizes the whole input up front (the parser backtracks by index,
// which a pre-lexed slice makes trivial).
func lex(input string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(input)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if input[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	errAt := func(msg string) error {
		return &ParseError{Pos: Position{line, col}, Msg: msg}
	}

	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			j := i
			for j < n && input[j] != '\n' {
				j++
			}
			advance(j - i)
		case c == '/' && i+1 < n && input[i+1] == '*': // block comment
			j := strings.Index(input[i+2:], "*/")
			if j < 0 {
				return nil, errAt("unterminated block comment")
			}
			advance(j + 4)
		case c == '\'': // string literal, '' escapes a quote
			pos := Position{line, col}
			var sb strings.Builder
			j := i + 1
			for {
				if j >= n {
					return nil, &ParseError{Pos: pos, Msg: "unterminated string literal"}
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{Kind: tokString, Text: sb.String(), Pos: pos})
			advance(j + 1 - i)
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			pos := Position{line, col}
			j := i
			isFloat := false
			for j < n && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			if j < n && input[j] == '.' {
				isFloat = true
				j++
				for j < n && input[j] >= '0' && input[j] <= '9' {
					j++
				}
			}
			if j < n && (input[j] == 'e' || input[j] == 'E') {
				k := j + 1
				if k < n && (input[k] == '+' || input[k] == '-') {
					k++
				}
				if k < n && input[k] >= '0' && input[k] <= '9' {
					isFloat = true
					j = k
					for j < n && input[j] >= '0' && input[j] <= '9' {
						j++
					}
				}
			}
			toks = append(toks, token{Kind: tokNumber, Text: input[i:j], Float: isFloat, Pos: pos})
			advance(j - i)
		case isIdentStart(c):
			pos := Position{line, col}
			j := i
			for j < n && isIdentPart(input[j]) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{Kind: tokKeyword, Text: up, Pos: pos})
			} else {
				toks = append(toks, token{Kind: tokIdent, Text: strings.ToLower(word), Pos: pos})
			}
			advance(j - i)
		default:
			pos := Position{line, col}
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=":
				t := two
				if t == "!=" {
					t = "<>" // normalize
				}
				toks = append(toks, token{Kind: tokSymbol, Text: t, Pos: pos})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', ',', ';', '.', '*', '=', '<', '>', '+', '-', '/':
				toks = append(toks, token{Kind: tokSymbol, Text: string(c), Pos: pos})
				advance(1)
			default:
				return nil, errAt("unexpected character " + string(rune(c)))
			}
		}
	}
	toks = append(toks, token{Kind: tokEOF, Pos: Position{line, col}})
	return toks, nil
}

// Identifiers are ASCII-only ([A-Za-z_][A-Za-z0-9_]*): bytes outside ASCII
// are rejected rather than run through rune-oblivious case folding.
func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
