// Table statistics at the public API surface: ANALYZE rebuilds, snapshot
// accessors for shells and tools, and the estimator glue the builder's
// EXPLAIN uses to annotate plans with rows≈N.
package qpipe

import (
	"qpipe/internal/stats"
	"qpipe/internal/storage/heap"
	"qpipe/internal/tuple"
)

// Analyze rebuilds table statistics — row count, per-column min/max and
// distinct-value sketches — from a full heap scan. An empty table name
// analyzes every table. Statistics are otherwise maintained incrementally
// by Load and Insert; ANALYZE exists to recover from a cold start (e.g. an
// embedder that populated storage before this handle existed) and to
// refresh sketches after heavy churn.
func (db *DB) Analyze(table string) error {
	tables := []string{table}
	if table == "" {
		tables = db.mgr.Tables()
	}
	for _, name := range tables {
		t, err := db.mgr.Table(name)
		if err != nil {
			return &UnknownTableError{Table: name}
		}
		acc := stats.NewTable(t.Schema.Len())
		err = t.Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
			acc.AddRow(row)
			return true
		})
		if err != nil {
			return err
		}
		db.stats.Replace(name, acc)
	}
	return nil
}

// ColumnStats describes one column's statistics snapshot. Distinct is a
// sketch-based estimate; Min/Max are exact over the observed rows.
type ColumnStats struct {
	Column   string
	Min, Max Value
	Distinct int64
}

// TableStatistics is a point-in-time statistics snapshot for one table.
type TableStatistics struct {
	Table   string
	Rows    int64
	Columns []ColumnStats
}

// TableStats returns the current statistics snapshot for a table (all-zero
// column entries when no rows have been observed yet).
func (db *DB) TableStats(table string) (*TableStatistics, error) {
	t, err := db.mgr.Table(table)
	if err != nil {
		return nil, &UnknownTableError{Table: table}
	}
	out := &TableStatistics{Table: table}
	snap := db.stats.Snapshot(table)
	if snap == nil {
		snap = &stats.TableStats{Cols: make([]stats.ColStats, t.Schema.Len())}
	}
	out.Rows = snap.Rows
	out.Columns = make([]ColumnStats, t.Schema.Len())
	for i, c := range t.Schema.Cols {
		cs := ColumnStats{Column: c.Name}
		if i < len(snap.Cols) && snap.Cols[i].Seen {
			cs.Min = snap.Cols[i].Min
			cs.Max = snap.Cols[i].Max
			cs.Distinct = int64(snap.Cols[i].NDV + 0.5)
		}
		out.Columns[i] = cs
	}
	return out, nil
}

// estimator builds a plan-cardinality estimator over the current statistics.
func (db *DB) estimator() *stats.Estimator {
	return stats.NewEstimator(func(table string) *stats.TableStats {
		return db.stats.Snapshot(table)
	})
}
