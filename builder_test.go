package qpipe

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
)

// openTestDB opens a DB with one table "t"(k int, grp int, val float,
// name string) holding n rows, mirroring newTestDB on the public surface.
func openTestDB(t testing.TB, n int, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := db.CreateTable("t", NewSchema(
		ColDef("k", KindInt),
		ColDef("grp", KindInt),
		ColDef("val", KindFloat),
		ColDef("name", KindString),
	)); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		rows[i] = R(i, i%10, float64(i)/2, "r")
	}
	if err := db.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// ---- Validation: each failure mode yields its distinct typed error -----------

func TestBuilderUnknownTable(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	_, err := db.Scan("nope").Run(context.Background())
	var ute *UnknownTableError
	if !errors.As(err, &ute) || ute.Table != "nope" {
		t.Fatalf("err = %v, want *UnknownTableError{nope}", err)
	}
	// ScanIndex and Schema report the same type.
	if _, err := db.ScanIndex("nope", "k", Value{}, Value{}).Plan(); !errors.As(err, &ute) {
		t.Fatalf("ScanIndex err = %v, want *UnknownTableError", err)
	}
	if _, err := db.Schema("nope"); !errors.As(err, &ute) {
		t.Fatalf("Schema err = %v, want *UnknownTableError", err)
	}
}

func TestBuilderUnknownColumn(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	cases := map[string]*Query{
		"filter":  db.Scan("t").Filter(Col("missing").Gt(Int(1))),
		"project": db.Scan("t").Project(Col("missing")),
		"select":  db.Scan("t").Select("k", "missing"),
		"sort":    db.Scan("t").Sort("missing"),
		"groupby": db.Scan("t").GroupBy([]string{"missing"}, Count()),
		"agg":     db.Scan("t").Aggregate(Sum(Col("missing"))),
		"joinkey": db.Scan("t").Join(db.Scan("t"), "missing", "k"),
	}
	for what, q := range cases {
		_, err := q.Plan()
		var uce *UnknownColumnError
		if !errors.As(err, &uce) || uce.Column != "missing" {
			t.Errorf("%s: err = %v, want *UnknownColumnError{missing}", what, err)
		}
	}
	// The error names the schema it resolved against.
	var uce *UnknownColumnError
	_, err := db.Scan("t").Filter(Col("missing").Gt(Int(1))).Plan()
	if !errors.As(err, &uce) || !strings.Contains(uce.Schema, "k:int") {
		t.Fatalf("error should carry the input schema, got %v", err)
	}
}

func TestBuilderTypeMismatch(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	cases := map[string]*Query{
		"cmp string vs int":   db.Scan("t").Filter(Col("name").Gt(Int(5))),
		"arith over string":   db.Scan("t").Project(Col("name").Mul(Float(2))),
		"in string vs int":    db.Scan("t").Filter(Col("name").In(IntValue(1))),
		"between string":      db.Scan("t").Filter(Col("name").Between(IntValue(0), IntValue(5))),
		"join string=int":     db.Scan("t").Join(db.Scan("t"), "name", "k"),
		"sum over string":     db.Scan("t").Aggregate(Sum(Col("name"))),
		"mixed arith str lhs": db.Scan("t").Filter(Col("name").Add(Int(1)).Gt(Int(0))),
	}
	for what, q := range cases {
		_, err := q.Plan()
		var tme *TypeMismatchError
		if !errors.As(err, &tme) {
			t.Errorf("%s: err = %v, want *TypeMismatchError", what, err)
		}
	}
	// Numeric kinds are mutually comparable — no false positives.
	if _, err := db.Scan("t").Filter(Col("k").Gt(Float(1.5))).Plan(); err != nil {
		t.Fatalf("int vs float must be comparable: %v", err)
	}
}

func TestBuilderDuplicateColumns(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	cases := map[string]*Query{
		"project alias dup": db.Scan("t").Project(Col("k").As("x"), Col("grp").As("x")),
		"project plain dup": db.Scan("t").Project(Col("k"), Col("k")),
		"groupby agg dup":   db.Scan("t").GroupBy([]string{"grp"}, Count().As("n"), Sum(Col("val")).As("n")),
		"groupby key dup":   db.Scan("t").GroupBy([]string{"grp", "grp"}, Count()),
		"agg dup":           db.Scan("t").Aggregate(Count().As("n"), Sum(Col("val")).As("n")),
	}
	for what, q := range cases {
		_, err := q.Plan()
		var dce *DuplicateColumnError
		if !errors.As(err, &dce) {
			t.Errorf("%s: err = %v, want *DuplicateColumnError", what, err)
		}
	}
	var dce *DuplicateColumnError
	if err := db.CreateTable("bad", NewSchema(ColDef("a", KindInt), ColDef("a", KindInt))); !errors.As(err, &dce) {
		t.Fatalf("CreateTable dup column err = %v, want *DuplicateColumnError", err)
	}
}

func TestOptionConflicts(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32}) // no result cache
	q := db.Scan("t")
	cases := map[string][]QueryOption{
		"zero parallelism":       {WithParallelism(0)},
		"negative parallelism":   {WithParallelism(-2)},
		"zero batch":             {WithBatchSize(0)},
		"sharedscan without osp": {WithoutOSP(), WithSharedScan()},
		"cache not configured":   {WithResultCache()},
	}
	for what, opts := range cases {
		_, err := q.Run(context.Background(), opts...)
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: err = %v, want *OptionError", what, err)
		}
	}
	// Limit conflicts with the result cache (it stores complete results).
	db2 := openTestDB(t, 10, Options{PoolPages: 32, ResultCacheTuples: 1000})
	_, err := db2.Scan("t").Limit(3).Run(context.Background(), WithResultCache())
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Option != "WithResultCache" {
		t.Fatalf("cache+limit err = %v, want *OptionError{WithResultCache}", err)
	}
}

// TestErrorTypesAreDistinct pins the satellite requirement: every failure
// mode has its own type, distinguishable by errors.As.
func TestErrorTypesAreDistinct(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	var (
		ute *UnknownTableError
		uce *UnknownColumnError
		tme *TypeMismatchError
		dce *DuplicateColumnError
		oe  *OptionError
	)
	_, errTable := db.Scan("nope").Plan()
	_, errCol := db.Scan("t").Select("missing").Plan()
	_, errType := db.Scan("t").Filter(Col("name").Lt(Int(1))).Plan()
	_, errDup := db.Scan("t").Project(Col("k").As("x"), Col("k").As("x")).Plan()
	_, errOpt := db.Scan("t").Run(context.Background(), WithParallelism(-1))
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{errTable, errors.As(errTable, &ute) && !errors.As(errTable, &uce)},
		{errCol, errors.As(errCol, &uce) && !errors.As(errCol, &ute)},
		{errType, errors.As(errType, &tme) && !errors.As(errType, &dce)},
		{errDup, errors.As(errDup, &dce) && !errors.As(errDup, &tme)},
		{errOpt, errors.As(errOpt, &oe) && !errors.As(errOpt, &uce)},
	} {
		if !tc.want {
			t.Errorf("error %v matched the wrong type", tc.err)
		}
	}
}

// TestPlanValidationHook: hand-built positional plans with out-of-range
// references are rejected at submit with a typed *plan.ValidationError —
// the layer beneath the name-resolving builder.
func TestPlanValidationHook(t *testing.T) {
	db := openTestDB(t, 10, Options{PoolPages: 32})
	s, _ := db.Schema("t")
	bad := plan.NewFilter(
		plan.NewTableScan("t", s, nil, nil, false),
		expr.GT(expr.Col(99), expr.CInt(0)))
	_, err := db.Engine().Query(context.Background(), bad)
	var ve *plan.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *plan.ValidationError", err)
	}
}

// ---- Builder correctness ------------------------------------------------------

func TestBuilderEndToEnd(t *testing.T) {
	db := openTestDB(t, 100, Options{PoolPages: 32})
	rows, err := mustRun(t, db.Scan("t").
		Filter(Col("k").Lt(Int(10))).
		Project(Col("k"), Col("val").Mul(Float(2)).As("dbl")).
		Sort("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) || r[1].F != float64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func mustRun(t testing.TB, q *Query) ([]Row, error) {
	t.Helper()
	res, err := q.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.All()
}

func TestBuilderJoinGroupBy(t *testing.T) {
	db := openTestDB(t, 200, Options{PoolPages: 64})
	if err := db.CreateTable("g", NewSchema(
		ColDef("gid", KindInt), ColDef("label", KindString))); err != nil {
		t.Fatal(err)
	}
	groups := make([]Row, 10)
	for i := range groups {
		groups[i] = R(i, "g")
	}
	if err := db.Load("g", groups); err != nil {
		t.Fatal(err)
	}
	rows, err := mustRun(t, db.Scan("g").
		Join(db.Scan("t"), "gid", "grp").
		GroupBy([]string{"gid"}, Count().As("n"), Sum(Col("val")).As("total")).
		Sort("gid"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d groups, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) || r[1].I != 20 {
			t.Fatalf("group %d = %v (want 20 members)", i, r)
		}
	}
}

func TestBuilderJoinOn(t *testing.T) {
	db := openTestDB(t, 30, Options{PoolPages: 32})
	// Self nested-loop join on an inequality over distinct column names:
	// k (left) pairs with grp (right) when k = grp.
	rows, err := mustRun(t, db.Scan("t").
		Select("k").
		JoinOn(db.Scan("t").Select("grp"), Col("k").Eq(Col("grp"))).
		Aggregate(Count().As("n")))
	if err != nil {
		t.Fatal(err)
	}
	// k in 0..9 matches grp values: each k<10 pairs with 3 rows (30 rows,
	// grp cycles 0..9 three times).
	if rows[0][0].I != 30 {
		t.Fatalf("count = %v, want 30", rows[0][0])
	}
}

func TestBuilderScanIndex(t *testing.T) {
	db := openTestDB(t, 100, Options{PoolPages: 64})
	// No index yet: typed error.
	_, err := db.ScanIndex("t", "k", IntValue(10), IntValue(19)).Plan()
	var nie *NoIndexError
	if !errors.As(err, &nie) {
		t.Fatalf("err = %v, want *NoIndexError", err)
	}
	if err := db.CreateIndex("t", "k", true); err != nil {
		t.Fatal(err)
	}
	rows, err := mustRun(t, db.ScanIndex("t", "k", IntValue(10), IntValue(19)).Select("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || rows[0][0].I != 10 || rows[9][0].I != 19 {
		t.Fatalf("index range scan: %v", rows)
	}
}

// ---- Streaming results --------------------------------------------------------

func TestRowsIterator(t *testing.T) {
	db := openTestDB(t, 500, Options{PoolPages: 32})
	res, err := db.Scan("t").Select("k").Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, 500)
	var kept []Row // retained rows must stay valid after their batch recycles
	for row := range res.Rows() {
		if seen[row[0].I] {
			t.Fatalf("row %d delivered twice", row[0].I)
		}
		seen[row[0].I] = true
		if row[0].I < 5 {
			kept = append(kept, row)
		}
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 500 {
		t.Fatalf("iterated %d rows, want 500", len(seen))
	}
	for _, r := range kept {
		if r[0].K != KindInt || r[0].I < 0 || r[0].I >= 5 {
			t.Fatalf("retained row corrupted: %v", r)
		}
	}
}

func TestRowsEarlyBreakCancels(t *testing.T) {
	db := openTestDB(t, 5000, Options{PoolPages: 32})
	res, err := db.Scan("t").Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res.Rows() {
		n++
		if n == 10 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("broke after %d rows", n)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("early break must not report an error, got %v", err)
	}
}

func TestLimit(t *testing.T) {
	db := openTestDB(t, 2000, Options{PoolPages: 32})
	res, err := db.Scan("t").Limit(25).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Fatalf("limit delivered %d rows, want 25", len(rows))
	}
	// Limit 0 is a valid degenerate query.
	res0, err := db.Scan("t").Limit(0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res0.Discard(); err != nil || n != 0 {
		t.Fatalf("limit 0: n=%d err=%v", n, err)
	}
}

// ---- Per-query options --------------------------------------------------------

func TestWithoutOSPNoSharing(t *testing.T) {
	db := openTestDB(t, 3000, Options{PoolPages: 16})
	db.SetDiskLatency(20e3, 30e3, 0) // nanoseconds: 20-30µs
	defer db.SetDiskLatency(0, 0, 0)
	agg := func() *Query {
		return db.Scan("t").Aggregate(Count().As("n"))
	}
	runPair := func(opts ...QueryOption) int64 {
		before := db.TotalShares()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := agg().Run(context.Background(), opts...)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := res.Discard(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return db.TotalShares() - before
	}
	if shares := runPair(WithoutOSP()); shares != 0 {
		t.Fatalf("WithoutOSP pair shared %d ops, want 0", shares)
	}
	// Identical concurrent queries with OSP on share (signature-exact
	// attach at agg or scan level) — probabilistic overlap, so retry.
	ok := false
	for try := 0; try < 5 && !ok; try++ {
		ok = runPair(WithSharedScan()) > 0
	}
	if !ok {
		t.Fatal("OSP pair never shared in 5 tries")
	}
}

func TestWithParallelismParity(t *testing.T) {
	db := openTestDB(t, 4000, Options{PoolPages: 64})
	want, err := mustRun(t, db.Scan("t").GroupBy([]string{"grp"}, Count().As("n"), Sum(Col("val")).As("s")).Sort("grp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		res, err := db.Scan("t").
			GroupBy([]string{"grp"}, Count().As("n"), Sum(Col("val")).As("s")).
			Sort("grp").
			Run(context.Background(), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("par=%d: %d groups, want %d", par, len(got), len(want))
		}
		for i := range got {
			if got[i][0].I != want[i][0].I || got[i][1].I != want[i][1].I || got[i][2].F != want[i][2].F {
				t.Fatalf("par=%d group %d: %v vs %v", par, i, got[i], want[i])
			}
		}
	}
}

func TestWithBatchSizeBoundsBatches(t *testing.T) {
	db := openTestDB(t, 1000, Options{PoolPages: 32})
	res, err := db.Scan("t").Select("k").Run(context.Background(), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		b, err := res.Next()
		if err != nil {
			break
		}
		if len(b) > 4 {
			t.Fatalf("batch of %d rows with WithBatchSize(4)", len(b))
		}
		total += len(b)
		res.recycle(b)
	}
	if total != 1000 {
		t.Fatalf("delivered %d rows, want 1000", total)
	}
}

func TestWithResultCacheRoundTrip(t *testing.T) {
	db := openTestDB(t, 500, Options{PoolPages: 32, ResultCacheTuples: 10_000})
	report := db.Scan("t").GroupBy([]string{"grp"}, Count().As("n")).Sort("grp")
	r1, err := report.Run(context.Background(), WithResultCache())
	if err != nil {
		t.Fatal(err)
	}
	rows1, err := r1.All()
	if err != nil || r1.CacheHit() {
		t.Fatalf("first run: hit=%v err=%v", r1.CacheHit(), err)
	}
	r2, err := report.Run(context.Background(), WithResultCache())
	if err != nil {
		t.Fatal(err)
	}
	// The cached result streams through the same iterator surface.
	var rows2 []Row
	for row := range r2.Rows() {
		rows2 = append(rows2, row)
	}
	if err := r2.Err(); err != nil || !r2.CacheHit() {
		t.Fatalf("second run: hit=%v err=%v", r2.CacheHit(), err)
	}
	if len(rows1) != len(rows2) || rows1[0][1].I != rows2[0][1].I {
		t.Fatalf("cached result differs: %v vs %v", rows1, rows2)
	}
	// Insert invalidates.
	if err := db.Insert(context.Background(), "t", R(99999, 0, 1.0, "x")); err != nil {
		t.Fatal(err)
	}
	r3, err := report.Run(context.Background(), WithResultCache())
	if err != nil {
		t.Fatal(err)
	}
	rows3, err := r3.All()
	if err != nil || r3.CacheHit() {
		t.Fatalf("post-insert run: hit=%v err=%v", r3.CacheHit(), err)
	}
	if rows3[0][1].I != rows1[0][1].I+1 {
		t.Fatalf("post-insert group 0 count %v, want %v+1", rows3[0][1], rows1[0][1])
	}
}

// TestWithResultCacheEmptyResult: a cached execution whose result set is
// empty must stream clean EOF through every drain style (regression: the
// materialized branch used to fall through to the nil streaming query).
func TestWithResultCacheEmptyResult(t *testing.T) {
	db := openTestDB(t, 50, Options{PoolPages: 32, ResultCacheTuples: 1000})
	empty := db.Scan("t").Filter(Col("k").Lt(Int(0)))
	for pass := 1; pass <= 2; pass++ { // miss, then hit
		res, err := empty.Run(context.Background(), WithResultCache())
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for range res.Rows() {
			n++
		}
		if err := res.Err(); err != nil || n != 0 {
			t.Fatalf("pass %d: n=%d err=%v", pass, n, err)
		}
	}
}

// TestRunBatchRejectsForeignQuery: a query built against another DB's
// catalog carries foreign positional indexes and must be rejected.
func TestRunBatchRejectsForeignQuery(t *testing.T) {
	db1 := openTestDB(t, 10, Options{PoolPages: 32})
	db2 := openTestDB(t, 10, Options{PoolPages: 32})
	foreign := db1.Scan("t").Aggregate(Count())
	_, err := db2.RunBatch(context.Background(), []*Query{foreign})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 0 {
		t.Fatalf("err = %v, want *BatchError at index 0", err)
	}
}

// ---- DB-level validation ------------------------------------------------------

func TestLoadValidatesRows(t *testing.T) {
	db := openTestDB(t, 0, Options{PoolPages: 32})
	if err := db.Load("t", []Row{R(1, 2, 3.0)}); err == nil {
		t.Fatal("short row accepted")
	}
	var tme *TypeMismatchError
	if err := db.Load("t", []Row{R("not-an-int", 2, 3.0, "x")}); !errors.As(err, &tme) {
		t.Fatalf("kind mismatch err = %v, want *TypeMismatchError", err)
	}
	if err := db.Load("t", []Row{R(1, 2, 3.0, "x")}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
}

// TestRunBatchTeardown covers the QueryBatch satellite on the DB surface: a
// failing member yields a typed *BatchError and the submitted members are
// cancelled and drained.
func TestRunBatchTeardown(t *testing.T) {
	db := openTestDB(t, 2000, Options{PoolPages: 32})
	good := db.Scan("t").Aggregate(Count().As("n"))
	bad := db.Scan("t").Select("missing") // builder error surfaces at submit
	_, err := db.RunBatch(context.Background(), []*Query{good, bad})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if be.Index != 1 {
		t.Fatalf("failing index = %d, want 1", be.Index)
	}
	var uce *UnknownColumnError
	if !errors.As(err, &uce) {
		t.Fatal("BatchError must unwrap to the member's typed cause")
	}
	if len(be.Teardown) != 0 {
		t.Fatalf("clean teardown expected, got %v", be.Teardown)
	}
}
