// Server: the network front end. It owns a TCP listener, one goroutine per
// connection, and one qpipe.Session per connection (SET statements arriving
// as Query frames adjust it), translating wire frames into the embedded
// API. The interesting part is the row streamer: result batches come out of
// Result.Next carrying the engine's array lease, get encoded straight onto
// the wire (rows are already in the page layer's binary form — no per-tuple
// conversion or allocation), and the array goes back to the engine pool via
// Result.Recycle. The paper's multi-query concurrency — the traffic OSP
// needs to pay off — thus arrives over real sockets, while admission
// control, statement timeouts and graceful drain (PR 8) govern it
// engine-side.
package qpipe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qpipe/sql"
	"qpipe/wire"
)

// ServerOptions configures a Server. The zero value serves on the DB's
// defaults with no connection limit.
type ServerOptions struct {
	// MaxConns caps concurrent client connections (0 = unlimited). The
	// cap is checked at handshake: over-limit connections are refused with
	// a CodeOverloaded error before any query runs, layering on the
	// engine's MaxConcurrentQueries which governs queries, not sockets.
	MaxConns int
	// Banner is the human-readable server identification sent in Welcome.
	Banner string
	// ShutdownGrace bounds how long Shutdown waits for per-connection
	// handlers to finish after the engine drain, before force-closing
	// their sockets (0 = 5s).
	ShutdownGrace time.Duration
	// Logf receives connection-level diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// ServerStats aggregates server-wide counters. Snapshot via Server.Stats.
type ServerStats struct {
	// ConnsAccepted counts connections accepted since start.
	ConnsAccepted int64
	// ConnsRefused counts connections refused at the MaxConns limit.
	ConnsRefused int64
	// ActiveConns is a gauge of connections currently being served.
	ActiveConns int64
	// QueriesServed counts Query/Execute requests that reached the engine.
	QueriesServed int64
	// RowsSent counts result rows streamed to clients.
	RowsSent int64
	// BatchesSent counts RowBatch frames streamed to clients.
	BatchesSent int64
	// ErrorsSent counts MsgError frames sent (shed, timeout, parse, ...).
	ErrorsSent int64
	// ProtocolErrors counts connections dropped for wire-protocol
	// violations (malformed frames, handshake mismatches).
	ProtocolErrors int64
}

// Server serves a DB over a TCP listener speaking the qpipe/wire protocol.
// Create one with NewServer, start it with Serve or ListenAndServe, stop it
// with Shutdown. All methods are safe for concurrent use.
type Server struct {
	db   *DB
	opts ServerOptions

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	// shutdown is closed when Shutdown begins: handlers treat it as "stop
	// after the in-flight request".
	shutdown chan struct{}
	wg       sync.WaitGroup

	connsAccepted  atomic.Int64
	connsRefused   atomic.Int64
	activeConns    atomic.Int64
	queriesServed  atomic.Int64
	rowsSent       atomic.Int64
	batchesSent    atomic.Int64
	errorsSent     atomic.Int64
	protocolErrors atomic.Int64
}

// NewServer wraps db in a wire-protocol server. The db stays usable
// embedded-side; Shutdown closes it.
func NewServer(db *DB, opts ServerOptions) *Server {
	if opts.Banner == "" {
		opts.Banner = "qpipe-server"
	}
	if opts.ShutdownGrace == 0 {
		opts.ShutdownGrace = 5 * time.Second
	}
	return &Server{
		db:       db,
		opts:     opts,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it, spawning one
// handler goroutine per connection. It returns nil after a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return nil
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.connsAccepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Stats snapshots the server-wide counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ConnsAccepted:  s.connsAccepted.Load(),
		ConnsRefused:   s.connsRefused.Load(),
		ActiveConns:    s.activeConns.Load(),
		QueriesServed:  s.queriesServed.Load(),
		RowsSent:       s.rowsSent.Load(),
		BatchesSent:    s.batchesSent.Load(),
		ErrorsSent:     s.errorsSent.Load(),
		ProtocolErrors: s.protocolErrors.Load(),
	}
}

// Shutdown stops the server gracefully: the listener closes (no new
// connections), the DB drains via Close (in-flight queries finish within
// the engine's DrainTimeout, new ones are rejected with ErrClosed), then
// connection handlers get ShutdownGrace to send their final frames before
// stragglers are force-closed. Idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.shutdown)
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()

	// Drain the engine: streams in flight either complete or end with
	// a cancellation the handler forwards as a typed error frame.
	s.db.Close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.opts.ShutdownGrace):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// track registers a live connection for Shutdown's force-close pass;
// returns false if the server is already shutting down.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// ---- Per-connection handler --------------------------------------------------

// serverConn is the per-connection state: the socket, its session, its
// prepared statements, and the reusable encode/decode buffers.
type serverConn struct {
	srv  *Server
	conn net.Conn

	sess  Session
	stmts map[uint32]*Query

	// ctx is the connection's lifetime: cancelled when the peer goes away
	// (read loop error) or the server shuts down. In-flight queries run
	// under it, so a mid-stream disconnect cancels the query and releases
	// its leases and locks.
	ctx    context.Context
	cancel context.CancelFunc

	// frames delivers (copied) incoming frames from the read-loop
	// goroutine; readErr holds its terminal error once closed.
	frames  chan frame
	readErr error

	// encBuf and writes: frames are encoded into encBuf and written by the
	// handler goroutine only.
	encBuf []byte
}

type frame struct {
	t       wire.MsgType
	payload []byte
}

// handle owns one connection from accept to close.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if !s.track(conn) {
		return // raced with Shutdown: the engine is draining
	}
	defer s.untrack(conn)
	s.activeConns.Add(1)
	defer s.activeConns.Add(-1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &serverConn{
		srv:    s,
		conn:   conn,
		stmts:  make(map[uint32]*Query),
		ctx:    ctx,
		cancel: cancel,
		frames: make(chan frame, 4),
	}
	// A disconnect mid-transaction must not leak the transaction's table
	// locks: roll back whatever the session left open.
	defer c.sess.Close()
	if err := c.run(); err != nil {
		var pe *wire.ProtocolError
		if errors.As(err, &pe) {
			s.protocolErrors.Add(1)
			// Best-effort: tell the peer why before hanging up.
			c.sendError(pe)
		}
		if err != io.EOF {
			s.logf("conn %s: %v", conn.RemoteAddr(), err)
		}
	}
}

// run performs the handshake then serves requests until the peer quits,
// errors, or the server drains.
func (c *serverConn) run() error {
	if err := c.handshake(); err != nil {
		return err
	}
	// After the handshake, a dedicated goroutine owns reads: it feeds
	// frames to the handler and cancels the connection context on read
	// failure, so a client disconnect mid-stream aborts the in-flight
	// query rather than leaving it producing into a dead socket.
	go c.readLoop()
	for {
		var f frame
		var ok bool
		select {
		case f, ok = <-c.frames:
		case <-c.srv.shutdown:
			// Engine drain in progress: serve what is already queued, then
			// stop. Queries already streaming were cancelled by db.Close.
			select {
			case f, ok = <-c.frames:
			default:
				ok = false
			}
		}
		if !ok {
			if c.readErr == io.EOF {
				return io.EOF
			}
			select {
			case <-c.srv.shutdown:
				return io.EOF // server-initiated close, not a peer error
			default:
			}
			return c.readErr
		}
		if done, err := c.serve(f); done || err != nil {
			return err
		}
	}
}

// handshake reads Hello and answers Welcome (or a versioned refusal). The
// connection limit is enforced here so a refused client gets a typed error,
// not a silent close.
func (c *serverConn) handshake() error {
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	t, payload, buf, err := wire.ReadFrame(c.conn, nil)
	c.conn.SetReadDeadline(time.Time{})
	c.encBuf = buf[:0]
	if err != nil {
		return err
	}
	if t != wire.MsgHello {
		return &wire.ProtocolError{Reason: fmt.Sprintf("expected Hello, got %s", t)}
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		return err
	}
	if hello.Version != wire.ProtocolVersion {
		c.sendError(&wire.ProtocolError{Reason: fmt.Sprintf(
			"protocol version mismatch: client %d, server %d", hello.Version, wire.ProtocolVersion)})
		return &wire.ProtocolError{Reason: fmt.Sprintf("client version %d unsupported", hello.Version)}
	}
	if max := c.srv.opts.MaxConns; max > 0 && c.srv.activeConns.Load() > int64(max) {
		c.srv.connsRefused.Add(1)
		c.sendError(&OverloadedError{MaxConcurrent: max})
		return fmt.Errorf("connection limit reached (%d): %s refused", max, c.conn.RemoteAddr())
	}
	w := wire.Welcome{Version: wire.ProtocolVersion, Banner: c.srv.opts.Banner}
	return c.send(wire.MsgWelcome, w.Encode(c.encBuf[:0]))
}

// readLoop reads frames off the socket, copies their payloads (the handler
// consumes them asynchronously) and delivers them until the peer goes away.
func (c *serverConn) readLoop() {
	var buf []byte
	for {
		t, payload, b, err := wire.ReadFrame(c.conn, buf)
		buf = b
		if err != nil {
			c.readErr = err
			close(c.frames)
			// The peer is gone (or sent garbage): abort any in-flight
			// query so its leases, locks and temp files release now.
			c.cancel()
			return
		}
		select {
		case c.frames <- frame{t: t, payload: append([]byte(nil), payload...)}:
		case <-c.ctx.Done():
			// The handler is gone (protocol error, shutdown): stop reading
			// rather than blocking forever on a send nobody receives.
			return
		}
	}
}

// serve dispatches one request frame. done reports a clean Quit.
func (c *serverConn) serve(f frame) (done bool, err error) {
	switch f.t {
	case wire.MsgQuery:
		q, err := wire.DecodeQuery(f.payload)
		if err != nil {
			return false, err
		}
		return false, c.serveQuery(q)
	case wire.MsgPrepare:
		p, err := wire.DecodePrepare(f.payload)
		if err != nil {
			return false, err
		}
		return false, c.servePrepare(p)
	case wire.MsgExecute:
		e, err := wire.DecodeExecute(f.payload)
		if err != nil {
			return false, err
		}
		return false, c.serveExecute(e)
	case wire.MsgExec:
		e, err := wire.DecodeExec(f.payload)
		if err != nil {
			return false, err
		}
		return false, c.serveExec(e)
	case wire.MsgCloseStmt:
		cs, err := wire.DecodeCloseStmt(f.payload)
		if err != nil {
			return false, err
		}
		delete(c.stmts, cs.ID)
		return false, c.sendComplete(0)
	case wire.MsgStats:
		if len(f.payload) != 0 {
			return false, &wire.ProtocolError{Reason: "Stats carries no payload"}
		}
		return false, c.serveStats()
	case wire.MsgCancel:
		// No query in flight (mid-stream cancels are consumed by the
		// streamer): acknowledge-free no-op, matching a cancel that
		// arrives just after completion.
		return false, nil
	case wire.MsgQuit:
		return true, nil
	default:
		return false, &wire.ProtocolError{Reason: fmt.Sprintf("unexpected %s frame", f.t)}
	}
}

// execOptions renders the session settings plus the request's wire options
// as per-query options (wire options win, matching SET-then-override).
func (c *serverConn) execOptions(o wire.ExecOpts) []QueryOption {
	opts := c.sess.Options()
	if o.TimeoutMs > 0 {
		opts = append(opts, WithTimeout(time.Duration(o.TimeoutMs)*time.Millisecond))
	}
	if o.Parallelism > 0 {
		opts = append(opts, WithParallelism(int(o.Parallelism)))
	}
	if o.BatchSize > 0 {
		opts = append(opts, WithBatchSize(int(o.BatchSize)))
	}
	if o.NoOSP {
		opts = append(opts, WithoutOSP())
	}
	return opts
}

// serveQuery answers a MsgQuery: SET folds into the session (bare
// Complete), SELECT/EXPLAIN stream a result, anything else is the typed
// StatementError the embedded API gives.
func (c *serverConn) serveQuery(q wire.Query) error {
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		return c.sendError(err)
	}
	if set, ok := stmt.(*sql.Set); ok {
		if err := c.sess.Apply(set); err != nil {
			return c.sendError(err)
		}
		return c.sendComplete(0)
	}
	// Inside an open transaction, a SELECT over a table the transaction has
	// written would block on the session's own lock — reject it typed.
	if err := c.sess.guardQuery(stmt); err != nil {
		return c.sendError(err)
	}
	c.srv.queriesServed.Add(1)
	res, err := c.srv.db.Query(c.ctx, q.SQL, c.execOptions(q.Opts)...)
	if err != nil {
		return c.sendError(err)
	}
	return c.stream(res)
}

// servePrepare compiles a SELECT and parks it under a connection-local id.
func (c *serverConn) servePrepare(p wire.Prepare) error {
	q, err := c.srv.db.Prepare(p.SQL)
	if err != nil {
		return c.sendError(err)
	}
	id := uint32(len(c.stmts) + 1)
	for c.stmts[id] != nil { // ids are never reused within a connection
		id++
	}
	c.stmts[id] = q
	msg := wire.Prepared{ID: id, Desc: rowDesc(q.Schema())}
	return c.send(wire.MsgPrepared, msg.Encode(c.encBuf[:0]))
}

// serveExecute runs a prepared statement.
func (c *serverConn) serveExecute(e wire.Execute) error {
	q, ok := c.stmts[e.ID]
	if !ok {
		return c.sendError(&StatementError{Stmt: "EXECUTE",
			Reason: fmt.Sprintf("unknown prepared statement id %d", e.ID)})
	}
	c.srv.queriesServed.Add(1)
	res, err := q.Run(c.ctx, c.execOptions(e.Opts)...)
	if err != nil {
		return c.sendError(err)
	}
	return c.stream(res)
}

// serveExec runs a DDL/DML script through the session — so remote
// BEGIN/COMMIT/ROLLBACK control a per-connection transaction — and answers
// with the affected count.
func (c *serverConn) serveExec(e wire.Exec) error {
	n, err := c.srv.db.ExecSession(c.ctx, &c.sess, e.SQL)
	if err != nil {
		return c.sendError(err)
	}
	return c.sendComplete(n)
}

// serveStats answers MsgStats with the server's counter set: engine,
// sharing, governance, disk and server-wide counters under stable names.
func (c *serverConn) serveStats() error {
	es := c.srv.db.Stats()
	ds := c.srv.db.DiskStats()
	ss := c.srv.Stats()
	msg := wire.StatsResult{Stats: []wire.Stat{
		{Name: "engine_queries", Value: es.Queries},
		{Name: "osp_shares", Value: c.srv.db.TotalShares()},
		{Name: "deadlocks_seen", Value: es.DeadlocksSeen},
		{Name: "materialized", Value: es.Materialized},
		{Name: "in_flight", Value: es.InFlight},
		{Name: "admission_queued", Value: es.AdmissionQueued},
		{Name: "shed", Value: es.Shed},
		{Name: "deadline_timeouts", Value: es.DeadlineTimeouts},
		{Name: "panics", Value: es.Panics},
		{Name: "disk_reads", Value: ds.Reads},
		{Name: "disk_seq_reads", Value: ds.SeqReads},
		{Name: "disk_writes", Value: ds.Writes},
		{Name: "conns_accepted", Value: ss.ConnsAccepted},
		{Name: "conns_refused", Value: ss.ConnsRefused},
		{Name: "active_conns", Value: ss.ActiveConns},
		{Name: "queries_served", Value: ss.QueriesServed},
		{Name: "rows_sent", Value: ss.RowsSent},
		{Name: "batches_sent", Value: ss.BatchesSent},
		{Name: "errors_sent", Value: ss.ErrorsSent},
		{Name: "protocol_errors", Value: ss.ProtocolErrors},
	}}
	return c.send(wire.MsgStatsResult, msg.Encode(c.encBuf[:0]))
}

// stream sends a result as RowDesc, RowBatch*, Complete — the lease-safe
// hand-off: each batch array from Next is encoded onto the wire (rows are
// already in tuple binary form; no per-tuple conversion) and immediately
// recycled into the engine's pool. A MsgCancel arriving between batches
// aborts the query; the client then sees its terminal error frame.
func (c *serverConn) stream(res *Result) error {
	desc := rowDesc(res.Schema())
	if err := c.send(wire.MsgRowDesc, desc.Encode(c.encBuf[:0])); err != nil {
		res.Cancel()
		drainResult(res)
		return err
	}
	var rows int64
	for {
		// Between batches: consume a pending Cancel (or notice the peer
		// vanished — readLoop cancelled c.ctx, the engine is tearing the
		// query down and Next will surface its terminal error).
		select {
		case f, ok := <-c.frames:
			if ok && f.t == wire.MsgCancel {
				res.Cancel()
			} else if ok {
				res.Cancel()
				drainResult(res)
				return &wire.ProtocolError{Reason: fmt.Sprintf(
					"%s frame while a result was streaming", f.t)}
			}
		default:
		}
		b, err := res.Next()
		if err == io.EOF {
			if ferr := res.finish(); ferr != nil {
				return c.sendError(ferr)
			}
			return c.sendComplete(rows)
		}
		if err != nil {
			return c.sendError(err)
		}
		payload := wire.AppendRowBatch(c.encBuf[:0], b)
		rows += int64(len(b))
		res.Recycle(b)
		werr := wire.WriteFrame(c.conn, wire.MsgRowBatch, payload)
		c.encBuf = payload[:0]
		if werr != nil {
			// Client gone mid-stream: cancel and fully drain so every
			// lease, lock and temp file is released before we hang up.
			res.Cancel()
			drainResult(res)
			return werr
		}
		c.srv.batchesSent.Add(1)
		c.srv.rowsSent.Add(int64(len(b)))
	}
}

// drainResult consumes a cancelled result to its end so buffers tear down.
func drainResult(res *Result) {
	for {
		b, err := res.Next()
		if err != nil {
			return
		}
		res.Recycle(b)
	}
}

// rowDesc renders a result schema as the wire's RowDesc.
func rowDesc(s *Schema) wire.RowDesc {
	if s == nil {
		return wire.RowDesc{}
	}
	cols := make([]wire.Col, len(s.Cols))
	for i, col := range s.Cols {
		cols[i] = wire.Col{Name: col.Name, Kind: col.Kind}
	}
	return wire.RowDesc{Cols: cols}
}

// send writes one frame (the payload normally lives in c.encBuf).
func (c *serverConn) send(t wire.MsgType, payload []byte) error {
	err := wire.WriteFrame(c.conn, t, payload)
	if cap(payload) > cap(c.encBuf) {
		c.encBuf = payload[:0]
	}
	return err
}

// sendComplete ends a successful request.
func (c *serverConn) sendComplete(rows int64) error {
	msg := wire.Complete{Rows: rows}
	return c.send(wire.MsgComplete, msg.Encode(c.encBuf[:0]))
}

// sendError ends a failed request with the marshalled typed error.
func (c *serverConn) sendError(err error) error {
	c.srv.errorsSent.Add(1)
	return c.send(wire.MsgError, MarshalWireError(err).Encode(c.encBuf[:0]))
}
