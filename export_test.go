package qpipe

import "qpipe/internal/storage/disk"

// DiskOf exposes a DB's simulated disk to the external (package qpipe_test)
// network tests, which need fault injection and the temp-file leak check
// but cannot live in package qpipe: they import qpipe/client, which imports
// qpipe back.
func DiskOf(db *DB) *disk.Disk { return db.mgr.Disk }
