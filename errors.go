// Typed errors returned by the public API. Builder and option mistakes each
// surface as a distinct error type so embedders can branch with errors.As
// instead of string-matching:
//
//	var uc *qpipe.UnknownColumnError
//	if errors.As(err, &uc) { ... uc.Column ... }
package qpipe

import (
	"errors"
	"fmt"
	"strings"

	"qpipe/internal/core"
)

// OverloadedError is returned by Run/Query when the engine is at its
// Options.MaxConcurrentQueries limit and the admission queue is full: the
// query was shed without executing. Back off and retry.
type OverloadedError = core.OverloadedError

// DeadlineError is the terminal error of a query whose deadline expired
// (WithTimeout/WithDeadline, SQL SET statement_timeout, or the caller's
// context). It unwraps to context.DeadlineExceeded.
type DeadlineError = core.DeadlineError

// PanicError is the terminal error of a query whose operator panicked; the
// engine quarantined the panic (satellites rescued, µEngine still serving)
// and failed only this query.
type PanicError = core.PanicError

// ErrClosed is returned by Run/Query once DB.Close has begun: new queries
// are rejected while in-flight ones drain.
var ErrClosed = core.ErrClosed

// UnknownTableError reports a query or DDL statement against a table the
// catalog does not know.
type UnknownTableError struct {
	Table string
}

// Error implements error.
func (e *UnknownTableError) Error() string {
	return fmt.Sprintf("qpipe: unknown table %q", e.Table)
}

// UnknownColumnError reports a column name that does not resolve against the
// input schema at that point of the builder chain.
type UnknownColumnError struct {
	Column string
	Schema string // rendering of the schema the name was resolved against
}

// Error implements error.
func (e *UnknownColumnError) Error() string {
	return fmt.Sprintf("qpipe: unknown column %q (input schema %s)", e.Column, e.Schema)
}

// TypeMismatchError reports an expression combining incompatible kinds —
// comparing a string column to a numeric constant, or arithmetic over a
// string operand. Numeric kinds (int, float, date) are mutually compatible.
type TypeMismatchError struct {
	Expr        string // rendering of the offending (sub)expression
	Left, Right Kind
}

// Error implements error.
func (e *TypeMismatchError) Error() string {
	return fmt.Sprintf("qpipe: type mismatch in %s: %s vs %s", e.Expr, e.Left, e.Right)
}

// DuplicateColumnError reports a projection or group-by producing two output
// columns with the same name.
type DuplicateColumnError struct {
	Column string
}

// Error implements error.
func (e *DuplicateColumnError) Error() string {
	return fmt.Sprintf("qpipe: duplicate output column %q", e.Column)
}

// AmbiguousColumnError reports a SQL column reference that the planner
// cannot lower faithfully onto the name-resolving builder: a bare name owned
// by more than one FROM table, or a qualified reference whose column name is
// shadowed by an earlier table in the join order (the builder resolves names
// leftmost-first over the concatenated schema).
type AmbiguousColumnError struct {
	Column string
	// Tables are the FROM tables (or aliases) that own the column.
	Tables []string
}

// Error implements error.
func (e *AmbiguousColumnError) Error() string {
	return fmt.Sprintf("qpipe: ambiguous column %q (in tables %s) — rename the columns apart",
		e.Column, strings.Join(e.Tables, ", "))
}

// StatementError reports a SQL statement routed to the wrong entry point or
// using an unsupported shape: a CREATE handed to Query (which only returns
// rows), a SELECT handed to Exec, a SET outside a session, and so on.
type StatementError struct {
	// Stmt names the statement kind ("CREATE TABLE", "SELECT", ...).
	Stmt   string
	Reason string
}

// Error implements error.
func (e *StatementError) Error() string {
	return fmt.Sprintf("qpipe: %s: %s", e.Stmt, e.Reason)
}

// OptionError reports an invalid per-query option value or a conflicting
// option combination (e.g. WithSharedScan with WithoutOSP, or
// WithResultCache on a query with a Limit).
type OptionError struct {
	Option string
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("qpipe: option %s: %s", e.Option, e.Reason)
}

// BatchError is the typed joined error QueryBatch returns when submitting
// one of the batch's plans fails: the already-submitted members are
// cancelled and fully drained (their buffers and batch leases released)
// before it is returned. Unwrap exposes the submit failure first, then any
// teardown errors, so errors.Is/As see through it.
type BatchError struct {
	// Index is the position of the plan whose submission failed.
	Index int
	// Submit is the submission failure itself.
	Submit error
	// Teardown holds non-cancellation errors observed while draining the
	// already-submitted members (normally empty: a cancelled member's
	// context.Canceled is expected and not recorded).
	Teardown []error
}

// Error implements error.
func (e *BatchError) Error() string {
	if len(e.Teardown) == 0 {
		return fmt.Sprintf("qpipe: batch plan %d failed to submit: %v", e.Index, e.Submit)
	}
	return fmt.Sprintf("qpipe: batch plan %d failed to submit: %v (and %d teardown errors: %v)",
		e.Index, e.Submit, len(e.Teardown), errors.Join(e.Teardown...))
}

// Unwrap exposes the joined causes to errors.Is / errors.As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, 0, 1+len(e.Teardown))
	if e.Submit != nil {
		out = append(out, e.Submit)
	}
	return append(out, e.Teardown...)
}

// TxStateError reports a transaction-control statement in the wrong state:
// BEGIN with a transaction already open, or COMMIT/ROLLBACK with none.
type TxStateError struct {
	// Stmt is the statement ("BEGIN", "COMMIT", "ROLLBACK").
	Stmt string
	// Open says whether a transaction was open when the statement arrived.
	Open bool
}

// Error implements error.
func (e *TxStateError) Error() string {
	if e.Open {
		return fmt.Sprintf("qpipe: %s: a transaction is already open on this session", e.Stmt)
	}
	return fmt.Sprintf("qpipe: %s: no transaction is open on this session", e.Stmt)
}

// TxConflictError reports a read that would self-deadlock: a SELECT inside
// an open transaction over a table that transaction has written. The
// transaction holds the table's exclusive lock until COMMIT/ROLLBACK, and
// the lock manager tracks no owners, so the read would wait on the session's
// own lock forever. Commit or roll back first, or read other tables.
type TxConflictError struct {
	// Table is the written table the read touches.
	Table string
}

// Error implements error.
func (e *TxConflictError) Error() string {
	return fmt.Sprintf("qpipe: cannot read table %q inside the transaction that is writing it "+
		"(commit or roll back first)", e.Table)
}
