package qpipe

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/tuple"
	"qpipe/sql"
	"qpipe/wire"
)

// TestWireErrorRoundTrips drives every exported error type through
// MarshalWireError → wire encode → wire decode → UnmarshalWireError and
// requires the exact value back. This is the satellite guarantee: a remote
// caller's errors.As branches see the same concrete types an embedded
// caller does.
func TestWireErrorRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code wire.ErrCode
	}{
		{"overloaded", &OverloadedError{MaxConcurrent: 8, QueueDepth: 16}, wire.CodeOverloaded},
		{"deadline", &DeadlineError{Timeout: 500 * time.Millisecond,
			Deadline: time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)}, wire.CodeDeadline},
		{"panic", &PanicError{Op: plan.OpType("A"), Value: "index out of range"}, wire.CodePanic},
		{"closed", ErrClosed, wire.CodeClosed},
		{"parse", &sql.ParseError{Pos: sql.Position{Line: 3, Col: 14}, Msg: "expected FROM"}, wire.CodeParse},
		{"unknown-table", &UnknownTableError{Table: "nope"}, wire.CodeUnknownTable},
		{"unknown-column", &UnknownColumnError{Column: "x", Schema: "(a int, b string)"}, wire.CodeUnknownColumn},
		{"type-mismatch", &TypeMismatchError{Expr: "a < 'x'",
			Left: tuple.KindInt, Right: tuple.KindString}, wire.CodeTypeMismatch},
		{"duplicate-column", &DuplicateColumnError{Column: "total"}, wire.CodeDuplicateColumn},
		{"ambiguous-column", &AmbiguousColumnError{Column: "id",
			Tables: []string{"orders", "customers"}}, wire.CodeAmbiguousColumn},
		{"statement", &StatementError{Stmt: "SET", Reason: "session statement"}, wire.CodeStatement},
		{"option", &OptionError{Option: "WithBatchSize", Reason: "must be >= 1"}, wire.CodeOption},
		{"batch", &BatchError{Index: 2,
			Submit:   &OverloadedError{MaxConcurrent: 4, QueueDepth: 0},
			Teardown: []error{&DeadlineError{Timeout: time.Second}}}, wire.CodeBatch},
		{"protocol", &wire.ProtocolError{Reason: "zero-length frame"}, wire.CodeProtocol},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			we := MarshalWireError(tc.err)
			if we.Code != tc.code {
				t.Fatalf("code = %d, want %d", we.Code, tc.code)
			}
			if we.Msg != tc.err.Error() {
				t.Fatalf("msg = %q, want %q", we.Msg, tc.err.Error())
			}
			// Across the wire and back.
			decoded, err := wire.DecodeError(we.Encode(nil))
			if err != nil {
				t.Fatal(err)
			}
			got := UnmarshalWireError(decoded)
			if !reflect.DeepEqual(got, tc.err) {
				t.Fatalf("round trip:\n got %#v\nwant %#v", got, tc.err)
			}
		})
	}
}

// TestWireErrorSemantics pins the behaviors the round trip must preserve
// beyond field equality: errors.Is/As matching and unwrap chains.
func TestWireErrorSemantics(t *testing.T) {
	redo := func(err error) error {
		we, derr := wire.DecodeError(MarshalWireError(err).Encode(nil))
		if derr != nil {
			t.Fatal(derr)
		}
		return UnmarshalWireError(we)
	}

	// A reconstructed DeadlineError still unwraps to context.DeadlineExceeded.
	if err := redo(&DeadlineError{Timeout: time.Second}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error lost its unwrap: %v", err)
	}
	// ErrClosed crosses as the identical sentinel.
	if err := redo(ErrClosed); !errors.Is(err, ErrClosed) {
		t.Fatalf("ErrClosed did not survive: %v", err)
	}
	// A BatchError's nested submit failure stays errors.As-reachable.
	var ov *OverloadedError
	berr := redo(&BatchError{Index: 1, Submit: &OverloadedError{MaxConcurrent: 2}})
	if !errors.As(berr, &ov) || ov.MaxConcurrent != 2 {
		t.Fatalf("nested submit error unreachable: %v", berr)
	}
	// Errors outside the family cross as CodeUnknown, message intact.
	opaque := errors.New("something engine-internal")
	got := redo(opaque)
	if got.Error() != opaque.Error() {
		t.Fatalf("opaque error message lost: %q", got.Error())
	}
	var we *wire.Error
	if !errors.As(got, &we) || we.Code != wire.CodeUnknown {
		t.Fatalf("opaque error should surface as *wire.Error CodeUnknown, got %T", got)
	}
	// Wrapped typed errors still map by their concrete type.
	wrapped := redo(wrapErr{&UnknownTableError{Table: "t"}})
	var ut *UnknownTableError
	if !errors.As(wrapped, &ut) || ut.Table != "t" {
		t.Fatalf("wrapped typed error did not map: %v", wrapped)
	}
	// Nil stays nil both ways.
	if MarshalWireError(nil) != nil || UnmarshalWireError(nil) != nil {
		t.Fatal("nil did not stay nil")
	}
}

type wrapErr struct{ err error }

func (w wrapErr) Error() string { return "wrapped: " + w.err.Error() }
func (w wrapErr) Unwrap() error { return w.err }
