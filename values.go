// Public value, row and schema layer: type aliases onto the internal tuple
// model (so rows returned by the engine, rows loaded by callers and rows
// stored in pages are one representation, with zero conversion cost) plus
// constructors that keep embedders off qpipe/internal/tuple entirely.
package qpipe

import (
	"fmt"

	"qpipe/internal/tuple"
)

// Kind enumerates the supported column types.
type Kind = tuple.Kind

// The supported column kinds. Dates are stored as days since 1970-01-01.
const (
	KindInt    = tuple.KindInt
	KindFloat  = tuple.KindFloat
	KindString = tuple.KindString
	KindDate   = tuple.KindDate
)

// Value is a single column value (a small tagged union — no boxing).
type Value = tuple.Value

// Row is one result or table row: a flat slice of values. Rows handed out
// by the engine are IMMUTABLE — under the lease protocol they may be shared
// by reference with concurrent queries (OSP satellites, replay windows), so
// a caller that needs to modify one must Clone it first.
type Row = tuple.Tuple

// Column describes one schema column (name + kind).
type Column = tuple.Column

// Schema is an ordered list of columns.
type Schema = tuple.Schema

// IntValue constructs an integer Value.
func IntValue(v int64) Value { return tuple.I64(v) }

// FloatValue constructs a float Value.
func FloatValue(v float64) Value { return tuple.F64(v) }

// StringValue constructs a string Value.
func StringValue(v string) Value { return tuple.Str(v) }

// DateValue constructs a date Value from days since 1970-01-01.
func DateValue(days int64) Value { return tuple.Date(days) }

// ColDef is shorthand for declaring a schema column:
//
//	qpipe.NewSchema(qpipe.ColDef("id", qpipe.KindInt), ...)
func ColDef(name string, k Kind) Column { return tuple.Col(name, k) }

// NewSchema builds a schema from column definitions.
func NewSchema(cols ...Column) *Schema { return tuple.NewSchema(cols...) }

// R builds a Row from native Go values: int/int64 become KindInt, float64
// KindFloat, string KindString, and a Value passes through unchanged (use
// DateValue for dates). It panics on other types — R is a literal-building
// helper; Load and Insert validate rows against the table schema anyway.
func R(vals ...any) Row {
	row := make(Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			row[i] = tuple.I64(int64(x))
		case int64:
			row[i] = tuple.I64(x)
		case float64:
			row[i] = tuple.F64(x)
		case string:
			row[i] = tuple.Str(x)
		case Value:
			row[i] = x
		default:
			panic(fmt.Sprintf("qpipe.R: unsupported value type %T at position %d", v, i))
		}
	}
	return row
}
