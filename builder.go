// Schema-aware fluent query builder: the public way to construct plans.
// Column references are by NAME and resolve against the catalog at the
// builder call that introduces them, so an unknown column, a type-mismatched
// predicate or a duplicate output name surfaces as a typed error from
// Plan/Run — never as a positional-index panic inside a µEngine. The
// positional plan layer (qpipe/internal/plan) stays the engine's input
// format; the builder is a thin resolving front end over it.
//
//	res, err := db.Scan("cities").
//		Filter(qpipe.Col("pop").Gt(qpipe.Float(0.5))).
//		Project(qpipe.Col("city"), qpipe.Col("pop").Mul(qpipe.Float(1e6)).As("population")).
//		Run(ctx)
package qpipe

import (
	"context"
	"fmt"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// Plan is a compiled physical plan — the engine's input format. Builders
// produce plans; Engine.Query and Explain accept them. Embedders normally
// never construct plans directly.
type Plan = plan.Node

// ---- Scalar expressions ------------------------------------------------------

type exprKind uint8

const (
	eCol exprKind = iota
	eLit
	eArith
)

// Expr is a scalar expression over named columns, built from Col and the
// literal constructors and combined with arithmetic methods. Expressions
// resolve against the input schema when the builder step using them runs.
type Expr struct {
	kind  exprKind
	name  string // eCol
	val   Value  // eLit
	op    expr.ArithOp
	l, r  *Expr
	alias string
}

// Col references an input column by name.
func Col(name string) Expr { return Expr{kind: eCol, name: name} }

// Int is an integer literal expression.
func Int(v int64) Expr { return Expr{kind: eLit, val: IntValue(v)} }

// Float is a float literal expression.
func Float(v float64) Expr { return Expr{kind: eLit, val: FloatValue(v)} }

// String is a string literal expression.
func String(v string) Expr { return Expr{kind: eLit, val: StringValue(v)} }

// Date is a date literal expression (days since 1970-01-01).
func Date(days int64) Expr { return Expr{kind: eLit, val: DateValue(days)} }

// Lit lifts a Value into a literal expression.
func Lit(v Value) Expr { return Expr{kind: eLit, val: v} }

func arith(op expr.ArithOp, l, r Expr) Expr {
	return Expr{kind: eArith, op: op, l: &l, r: &r}
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr { return arith(expr.OpAdd, e, o) }

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return arith(expr.OpSub, e, o) }

// Mul returns e * o.
func (e Expr) Mul(o Expr) Expr { return arith(expr.OpMul, e, o) }

// Div returns e / o (always float; division by zero yields 0).
func (e Expr) Div(o Expr) Expr { return arith(expr.OpDiv, e, o) }

// As names the expression's output column in a Project.
func (e Expr) As(name string) Expr {
	e.alias = name
	return e
}

// String renders the expression for error messages.
func (e Expr) String() string {
	switch e.kind {
	case eCol:
		return e.name
	case eLit:
		return e.val.String()
	default:
		return "(" + e.l.String() + e.op.String() + e.r.String() + ")"
	}
}

// outName is the projection column name: the alias, a plain column's own
// name, or a positional fallback.
func (e Expr) outName(pos int) string {
	if e.alias != "" {
		return e.alias
	}
	if e.kind == eCol {
		return e.name
	}
	return fmt.Sprintf("e%d", pos)
}

// numericKind reports membership in the mutually-comparable numeric group.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate
}

// compatibleKinds reports whether two kinds may meet in a comparison or
// arithmetic node. KindInvalid marks intermediate columns whose kind is
// unknown at build time (projection outputs) and is compatible with
// anything.
func compatibleKinds(a, b Kind) bool {
	if a == 0 || b == 0 { // KindInvalid
		return true
	}
	if numericKind(a) && numericKind(b) {
		return true
	}
	return a == b
}

// widenValue losslessly converts an integer literal to the kind of the
// column it compares against (float or date), so the literal renders in one
// canonical form — `amount > 30` and `amount > 30.0` must produce the same
// Signature() for OSP to match them.
func widenValue(v Value, to Kind) Value {
	if v.K == tuple.KindInt {
		switch to {
		case tuple.KindFloat:
			return tuple.F64(float64(v.I))
		case tuple.KindDate:
			return tuple.Date(v.I)
		}
	}
	return v
}

// widenConst applies widenValue when e is a literal constant.
func widenConst(e expr.Expr, other Kind) expr.Expr {
	if c, ok := e.(*expr.Const); ok {
		if w := widenValue(c.V, other); w.K != c.V.K {
			return &expr.Const{V: w}
		}
	}
	return e
}

// resolve lowers the expression against a schema, returning the positional
// expression and its result kind.
func (e Expr) resolve(s *Schema) (expr.Expr, Kind, error) {
	switch e.kind {
	case eCol:
		ix := s.ColIndex(e.name)
		if ix < 0 {
			return nil, 0, &UnknownColumnError{Column: e.name, Schema: s.String()}
		}
		return expr.NamedCol(ix, e.name), s.Cols[ix].Kind, nil
	case eLit:
		return &expr.Const{V: e.val}, e.val.K, nil
	default:
		le, lk, err := e.l.resolve(s)
		if err != nil {
			return nil, 0, err
		}
		re, rk, err := e.r.resolve(s)
		if err != nil {
			return nil, 0, err
		}
		if !compatibleKinds(lk, rk) || lk == KindString || rk == KindString {
			return nil, 0, &TypeMismatchError{Expr: e.String(), Left: lk, Right: rk}
		}
		out := KindFloat
		if lk == KindInt && rk == KindInt && e.op != expr.OpDiv {
			out = KindInt
		}
		return &expr.Arith{Op: e.op, L: le, R: re}, out, nil
	}
}

// ---- Predicates --------------------------------------------------------------

type predKind uint8

const (
	pCmp predKind = iota
	pAnd
	pOr
	pNot
	pIn
	pBetween
)

// Pred is a boolean predicate over named columns.
type Pred struct {
	kind   predKind
	cmp    expr.CmpOp
	l, r   *Expr
	subs   []Pred
	vals   []Value
	lo, hi Value
}

func cmpPred(op expr.CmpOp, l, r Expr) Pred { return Pred{kind: pCmp, cmp: op, l: &l, r: &r} }

// Eq returns e = o.
func (e Expr) Eq(o Expr) Pred { return cmpPred(expr.CmpEQ, e, o) }

// Ne returns e <> o.
func (e Expr) Ne(o Expr) Pred { return cmpPred(expr.CmpNE, e, o) }

// Lt returns e < o.
func (e Expr) Lt(o Expr) Pred { return cmpPred(expr.CmpLT, e, o) }

// Le returns e <= o.
func (e Expr) Le(o Expr) Pred { return cmpPred(expr.CmpLE, e, o) }

// Gt returns e > o.
func (e Expr) Gt(o Expr) Pred { return cmpPred(expr.CmpGT, e, o) }

// Ge returns e >= o.
func (e Expr) Ge(o Expr) Pred { return cmpPred(expr.CmpGE, e, o) }

// In tests membership in a fixed set of values.
func (e Expr) In(vals ...Value) Pred { return Pred{kind: pIn, l: &e, vals: vals} }

// Between is the inclusive range predicate lo <= e <= hi.
func (e Expr) Between(lo, hi Value) Pred { return Pred{kind: pBetween, l: &e, lo: lo, hi: hi} }

// And is an n-ary conjunction.
func And(ps ...Pred) Pred { return Pred{kind: pAnd, subs: ps} }

// Or is an n-ary disjunction.
func Or(ps ...Pred) Pred { return Pred{kind: pOr, subs: ps} }

// Not negates a predicate.
func Not(p Pred) Pred { return Pred{kind: pNot, subs: []Pred{p}} }

// And returns p AND q.
func (p Pred) And(q Pred) Pred { return And(p, q) }

// Or returns p OR q.
func (p Pred) Or(q Pred) Pred { return Or(p, q) }

// resolve lowers the predicate against a schema.
func (p Pred) resolve(s *Schema) (expr.Pred, error) {
	switch p.kind {
	case pCmp:
		le, lk, err := p.l.resolve(s)
		if err != nil {
			return nil, err
		}
		re, rk, err := p.r.resolve(s)
		if err != nil {
			return nil, err
		}
		if !compatibleKinds(lk, rk) {
			return nil, &TypeMismatchError{
				Expr: "(" + p.l.String() + p.cmp.String() + p.r.String() + ")", Left: lk, Right: rk}
		}
		le, re = widenConst(le, rk), widenConst(re, lk)
		return &expr.Cmp{Op: p.cmp, L: le, R: re}, nil
	case pAnd, pOr:
		ps := make([]expr.Pred, len(p.subs))
		for i, q := range p.subs {
			rp, err := q.resolve(s)
			if err != nil {
				return nil, err
			}
			ps[i] = rp
		}
		if p.kind == pAnd {
			return &expr.And{Ps: ps}, nil
		}
		return &expr.Or{Ps: ps}, nil
	case pNot:
		rp, err := p.subs[0].resolve(s)
		if err != nil {
			return nil, err
		}
		return &expr.Not{P: rp}, nil
	case pIn:
		le, lk, err := p.l.resolve(s)
		if err != nil {
			return nil, err
		}
		vals := make([]Value, len(p.vals))
		for i, v := range p.vals {
			if !compatibleKinds(lk, v.K) {
				return nil, &TypeMismatchError{Expr: p.l.String() + " IN (...)", Left: lk, Right: v.K}
			}
			vals[i] = widenValue(v, lk)
		}
		return &expr.In{E: le, Vals: vals}, nil
	default: // pBetween
		le, lk, err := p.l.resolve(s)
		if err != nil {
			return nil, err
		}
		if !compatibleKinds(lk, p.lo.K) {
			return nil, &TypeMismatchError{Expr: p.l.String() + " BETWEEN", Left: lk, Right: p.lo.K}
		}
		if !compatibleKinds(lk, p.hi.K) {
			return nil, &TypeMismatchError{Expr: p.l.String() + " BETWEEN", Left: lk, Right: p.hi.K}
		}
		return &expr.Between{E: le, Lo: widenValue(p.lo, lk), Hi: widenValue(p.hi, lk)}, nil
	}
}

// ---- Aggregates --------------------------------------------------------------

// Agg is one aggregate output column of a GroupBy or Aggregate step.
type Agg struct {
	kind expr.AggKind
	arg  *Expr // nil for COUNT(*)
	name string
}

// Count is COUNT(*).
func Count() Agg { return Agg{kind: expr.AggCount} }

// Sum aggregates the sum of an expression.
func Sum(e Expr) Agg { return Agg{kind: expr.AggSum, arg: &e} }

// Avg aggregates the mean of an expression.
func Avg(e Expr) Agg { return Agg{kind: expr.AggAvg, arg: &e} }

// Min aggregates the minimum of an expression.
func Min(e Expr) Agg { return Agg{kind: expr.AggMin, arg: &e} }

// Max aggregates the maximum of an expression.
func Max(e Expr) Agg { return Agg{kind: expr.AggMax, arg: &e} }

// As names the aggregate's output column.
func (a Agg) As(name string) Agg {
	a.name = name
	return a
}

// resolve lowers the aggregate against the input schema.
func (a Agg) resolve(s *Schema) (expr.AggSpec, error) {
	spec := expr.AggSpec{Kind: a.kind, Name: a.name}
	if a.arg != nil {
		ae, ak, err := a.arg.resolve(s)
		if err != nil {
			return spec, err
		}
		if a.kind != expr.AggMin && a.kind != expr.AggMax && ak == KindString {
			return spec, &TypeMismatchError{Expr: a.kind.String() + "(" + a.arg.String() + ")", Left: ak, Right: KindFloat}
		}
		spec.Arg = ae
	}
	return spec, nil
}

// outName is the aggregate's output column name.
func (a Agg) outName() string {
	if a.name != "" {
		return a.name
	}
	arg := "*"
	if a.arg != nil {
		arg = a.arg.String()
	}
	return a.kind.String() + "(" + arg + ")"
}

// ---- Query builder -----------------------------------------------------------

// Query is an immutable builder over a partially-constructed plan. Each
// method returns a new Query; the first resolution error sticks and is
// returned by Plan/Explain/Run. A Query is cheap to copy and reusable: two
// chains branching from one prefix share the already-built subtree, which
// OSP then deduplicates at run time.
type Query struct {
	db   *DB
	node plan.Node
	err  error
	// limit < 0 means no limit; applied by the Result, not the plan (the
	// engine streams, the result stops the query once n rows are out).
	limit int64
}

// Scan starts a query reading every row of a table.
func (db *DB) Scan(table string) *Query {
	t, err := db.mgr.Table(table)
	if err != nil {
		return &Query{db: db, err: &UnknownTableError{Table: table}, limit: -1}
	}
	return &Query{db: db, node: plan.NewTableScan(table, t.Schema, nil, nil, false), limit: -1}
}

// ScanIndex starts a query reading a table through the B+tree index on col,
// restricted to lo <= col <= hi (zero Values leave the bound open). The
// clustered index is used when col is the clustered key, an unclustered
// index otherwise; ordered delivery follows the index.
func (db *DB) ScanIndex(table, col string, lo, hi Value) *Query {
	t, err := db.mgr.Table(table)
	if err != nil {
		return &Query{db: db, err: &UnknownTableError{Table: table}, limit: -1}
	}
	if t.Schema.ColIndex(col) < 0 {
		return &Query{db: db, err: &UnknownColumnError{Column: col, Schema: t.Schema.String()}, limit: -1}
	}
	clustered := t.Clustered != nil && t.ClusteredKey == col
	if !clustered {
		if _, ok := t.Unclustered[col]; !ok {
			return &Query{db: db, err: &NoIndexError{Table: table, Column: col}, limit: -1}
		}
	}
	return &Query{db: db,
		node:  plan.NewIndexScan(table, t.Schema, col, lo, hi, clustered, clustered, nil, nil),
		limit: -1}
}

// NoIndexError reports a ScanIndex over a column with no built index.
type NoIndexError struct {
	Table, Column string
}

// Error implements error.
func (e *NoIndexError) Error() string {
	return fmt.Sprintf("qpipe: no index on %s.%s (CreateIndex first)", e.Table, e.Column)
}

func (q *Query) fail(err error) *Query {
	return &Query{db: q.db, err: err, limit: -1}
}

func (q *Query) with(node plan.Node) *Query {
	return &Query{db: q.db, node: node, limit: q.limit}
}

// Filter keeps rows satisfying the predicate.
func (q *Query) Filter(p Pred) *Query {
	if q.err != nil {
		return q
	}
	rp, err := p.resolve(q.node.Schema())
	if err != nil {
		return q.fail(err)
	}
	return q.with(plan.NewFilter(q.node, rp))
}

// Project computes the given expressions as the output columns. Output
// names come from As aliases (or the column's own name for plain
// references); duplicates are a DuplicateColumnError.
func (q *Query) Project(exprs ...Expr) *Query {
	if q.err != nil {
		return q
	}
	in := q.node.Schema()
	res := make([]expr.Expr, len(exprs))
	kinds := make([]Kind, len(exprs))
	names := make([]string, len(exprs))
	seen := make(map[string]bool, len(exprs))
	for i, e := range exprs {
		re, k, err := e.resolve(in)
		if err != nil {
			return q.fail(err)
		}
		res[i], kinds[i] = re, k
		names[i] = e.outName(i)
		if seen[names[i]] {
			return q.fail(&DuplicateColumnError{Column: names[i]})
		}
		seen[names[i]] = true
	}
	node := plan.NewProject(q.node, res, names)
	// NewProject marks output kinds unknown; the builder resolved them, so
	// keep them for downstream type checking.
	for i, k := range kinds {
		node.Schema().Cols[i].Kind = k
	}
	return q.with(node)
}

// Select keeps only the named columns (in the given order) — sugar for a
// Project of plain column references.
func (q *Query) Select(cols ...string) *Query {
	exprs := make([]Expr, len(cols))
	for i, c := range cols {
		exprs[i] = Col(c)
	}
	return q.Project(exprs...)
}

// resolveJoinKeys resolves one equi-join's key columns and checks they are
// comparable.
func (q *Query) resolveJoinKeys(r *Query, leftCol, rightCol string) (lk, rk int, err error) {
	ls, rs := q.node.Schema(), r.node.Schema()
	lk = ls.ColIndex(leftCol)
	if lk < 0 {
		return 0, 0, &UnknownColumnError{Column: leftCol, Schema: ls.String()}
	}
	rk = rs.ColIndex(rightCol)
	if rk < 0 {
		return 0, 0, &UnknownColumnError{Column: rightCol, Schema: rs.String()}
	}
	if !compatibleKinds(ls.Cols[lk].Kind, rs.Cols[rk].Kind) {
		return 0, 0, &TypeMismatchError{
			Expr: leftCol + "=" + rightCol, Left: ls.Cols[lk].Kind, Right: rs.Cols[rk].Kind}
	}
	return lk, rk, nil
}

func (q *Query) joinPre(r *Query) error {
	if q.err != nil {
		return q.err
	}
	if r.err != nil {
		return r.err
	}
	if r.db != q.db {
		return fmt.Errorf("qpipe: joined queries must come from the same DB")
	}
	return nil
}

// Join hash-joins q (build side) with r (probe side) on leftCol = rightCol.
// The output schema is q's columns followed by r's.
func (q *Query) Join(r *Query, leftCol, rightCol string) *Query {
	if err := q.joinPre(r); err != nil {
		return q.fail(err)
	}
	lk, rk, err := q.resolveJoinKeys(r, leftCol, rightCol)
	if err != nil {
		return q.fail(err)
	}
	return q.with(plan.NewHashJoin(q.node, r.node, lk, rk))
}

// MergeJoin merge-joins q with r on leftCol = rightCol. Both inputs must
// already be ordered on their key (a Sort step, or a clustered ScanIndex on
// the key column).
func (q *Query) MergeJoin(r *Query, leftCol, rightCol string) *Query {
	if err := q.joinPre(r); err != nil {
		return q.fail(err)
	}
	lk, rk, err := q.resolveJoinKeys(r, leftCol, rightCol)
	if err != nil {
		return q.fail(err)
	}
	return q.with(plan.NewMergeJoin(q.node, r.node, lk, rk, false))
}

// JoinOn nested-loop joins q (outer) with r on an arbitrary predicate over
// the concatenated row (columns of q first, then r's; names shared by both
// sides resolve to q's column).
func (q *Query) JoinOn(r *Query, on Pred) *Query {
	if err := q.joinPre(r); err != nil {
		return q.fail(err)
	}
	joined := q.node.Schema().Concat(r.node.Schema())
	rp, err := on.resolve(joined)
	if err != nil {
		return q.fail(err)
	}
	return q.with(plan.NewNLJoin(q.node, r.node, rp))
}

// GroupBy hash-groups on the key columns and computes the aggregates per
// group. Output columns are the keys followed by the aggregates.
func (q *Query) GroupBy(keys []string, aggs ...Agg) *Query {
	if q.err != nil {
		return q
	}
	in := q.node.Schema()
	kix := make([]int, len(keys))
	seen := make(map[string]bool, len(keys)+len(aggs))
	for i, k := range keys {
		kix[i] = in.ColIndex(k)
		if kix[i] < 0 {
			return q.fail(&UnknownColumnError{Column: k, Schema: in.String()})
		}
		if seen[k] {
			return q.fail(&DuplicateColumnError{Column: k})
		}
		seen[k] = true
	}
	specs := make([]expr.AggSpec, len(aggs))
	for i, a := range aggs {
		spec, err := a.resolve(in)
		if err != nil {
			return q.fail(err)
		}
		specs[i] = spec
		n := a.outName()
		if seen[n] {
			return q.fail(&DuplicateColumnError{Column: n})
		}
		seen[n] = true
	}
	return q.with(plan.NewGroupBy(q.node, kix, specs))
}

// Aggregate computes scalar aggregates over the whole input, emitting one
// row.
func (q *Query) Aggregate(aggs ...Agg) *Query {
	if q.err != nil {
		return q
	}
	in := q.node.Schema()
	specs := make([]expr.AggSpec, len(aggs))
	seen := make(map[string]bool, len(aggs))
	for i, a := range aggs {
		spec, err := a.resolve(in)
		if err != nil {
			return q.fail(err)
		}
		specs[i] = spec
		n := a.outName()
		if seen[n] {
			return q.fail(&DuplicateColumnError{Column: n})
		}
		seen[n] = true
	}
	return q.with(plan.NewAggregate(q.node, specs))
}

// Sort orders the output ascending on the named columns.
func (q *Query) Sort(cols ...string) *Query { return q.sort(false, cols) }

// SortDesc orders the output descending on the named columns.
func (q *Query) SortDesc(cols ...string) *Query { return q.sort(true, cols) }

func (q *Query) sort(desc bool, cols []string) *Query {
	if q.err != nil {
		return q
	}
	in := q.node.Schema()
	keys := make([]int, len(cols))
	for i, c := range cols {
		keys[i] = in.ColIndex(c)
		if keys[i] < 0 {
			return q.fail(&UnknownColumnError{Column: c, Schema: in.String()})
		}
	}
	return q.with(plan.NewSort(q.node, keys, desc))
}

// Limit stops the query after n output rows: the Result delivers n rows,
// then cancels the remaining upstream work. Applied at result level — it
// does not change the plan's signature, so limited and unlimited variants
// of a query still share work under OSP.
func (q *Query) Limit(n int64) *Query {
	if q.err != nil {
		return q
	}
	out := q.with(q.node)
	out.limit = n
	return out
}

// Plan compiles the query, returning the physical plan (or the first
// builder error). Unless the DB was opened with DisableOptimizer, the plan
// is normalized first — predicates canonicalized and pushed into scans —
// so equivalent queries converge on one Signature() and share work under
// OSP. Both front ends (this builder and db.Query SQL) funnel through
// here, which is what keeps their plans byte-identical.
func (q *Query) Plan() (Plan, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.db != nil && q.db.noOpt {
		return q.node, nil
	}
	return plan.Normalize(q.node), nil
}

// Schema returns the query's output schema (nil if the builder failed).
func (q *Query) Schema() *Schema {
	if q.err != nil {
		return nil
	}
	return q.node.Schema()
}

// Explain renders the compiled plan as an indented operator tree, each
// node annotated with the statistics-based cardinality estimate (rows≈N).
func (q *Query) Explain() (string, error) {
	p, err := q.Plan()
	if err != nil {
		return "", err
	}
	if q.db == nil {
		return plan.Explain(p), nil
	}
	est := q.db.estimator()
	return plan.ExplainFunc(p, func(n plan.Node) string {
		return fmt.Sprintf(" rows≈%d", est.Rows(n))
	}), nil
}

// Run submits the query for execution with the given per-query options and
// returns a streaming Result. The caller must consume it (Rows, All,
// Discard) or Cancel it.
func (q *Query) Run(ctx context.Context, opts ...QueryOption) (*Result, error) {
	p, err := q.Plan()
	if err != nil {
		return nil, err
	}
	return q.db.run(ctx, p, q.limit, opts)
}
