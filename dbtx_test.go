package qpipe

import (
	"context"
	"errors"
	"sync"
	"testing"

	"qpipe/internal/storage/sm"
	"qpipe/sql"
)

// Facade transaction tests: SQL UPDATE/DELETE through db.Exec, explicit
// transactions through db.Begin, session-routed BEGIN/COMMIT/ROLLBACK
// through ExecSession, and the Load-on-live-database locking regression.

func count(t *testing.T, db *DB, query string) int64 {
	t.Helper()
	res, err := db.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	return rows[0][0].I
}

func TestSQLUpdateDelete(t *testing.T) {
	db := openTestDB(t, 100, Options{PoolPages: 64})
	ctx := context.Background()

	// UPDATE with WHERE: rows k<10 get val = val + 100.
	n, err := db.Exec(ctx, "UPDATE t SET val = val + 100 WHERE k < 10")
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("UPDATE affected %d, want 10", n)
	}
	if got := count(t, db, "SELECT count(*) FROM t WHERE val >= 100"); got != 10 {
		t.Fatalf("%d rows with bumped val, want 10", got)
	}

	// DELETE with WHERE.
	n, err = db.Exec(ctx, "DELETE FROM t WHERE grp = 3")
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("DELETE affected %d, want 10", n)
	}
	if got := count(t, db, "SELECT count(*) FROM t"); got != 90 {
		t.Fatalf("%d rows after delete, want 90", got)
	}

	// UPDATE without WHERE hits every remaining row; integer literal widens
	// to the float column like INSERT coercion does.
	n, err = db.Exec(ctx, "UPDATE t SET val = 7")
	if err != nil {
		t.Fatal(err)
	}
	if n != 90 {
		t.Fatalf("unfiltered UPDATE affected %d, want 90", n)
	}

	// Typed errors: unknown column, duplicate assignment, type mismatch.
	if _, err := db.Exec(ctx, "UPDATE t SET nosuch = 1"); !errors.As(err, new(*UnknownColumnError)) {
		t.Fatalf("unknown column: got %v", err)
	}
	if _, err := db.Exec(ctx, "UPDATE t SET k = 1, k = 2"); !errors.As(err, new(*DuplicateColumnError)) {
		t.Fatalf("duplicate assignment: got %v", err)
	}
	if _, err := db.Exec(ctx, "UPDATE t SET k = 'oops'"); !errors.As(err, new(*TypeMismatchError)) {
		t.Fatalf("type mismatch: got %v", err)
	}
	// BEGIN through the stateless entry point is a typed statement error
	// pointing at the session paths.
	if _, err := db.Exec(ctx, "BEGIN"); !errors.As(err, new(*StatementError)) {
		t.Fatalf("BEGIN via Exec: got %v", err)
	}
}

func TestTxCommitVisibility(t *testing.T) {
	db := openTestDB(t, 50, Options{PoolPages: 64})
	ctx := context.Background()

	tx := db.Begin()
	defer tx.Rollback()
	// Multi-statement staging: later statements see earlier ones (the
	// UPDATE rewrites the row INSERTed two lines up).
	if _, err := tx.Exec(ctx, "INSERT INTO t VALUES (1000, 0, 1.0, 'staged')"); err != nil {
		t.Fatal(err)
	}
	if n, err := tx.Exec(ctx, "UPDATE t SET name = 'final' WHERE k = 1000"); err != nil || n != 1 {
		t.Fatalf("staged update: n=%d err=%v", n, err)
	}
	if n, err := tx.Exec(ctx, "DELETE FROM t WHERE k = 0"); err != nil || n != 1 {
		t.Fatalf("staged delete: n=%d err=%v", n, err)
	}
	// DDL and SELECT refuse to stage.
	if _, err := tx.Exec(ctx, "CREATE TABLE u (a INT)"); !errors.As(err, new(*StatementError)) {
		t.Fatalf("DDL in tx: got %v", err)
	}
	if _, err := tx.Exec(ctx, "SELECT * FROM t"); !errors.As(err, new(*StatementError)) {
		t.Fatalf("SELECT in tx: got %v", err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// All-or-nothing visibility after commit.
	if got := count(t, db, "SELECT count(*) FROM t WHERE name = 'final'"); got != 1 {
		t.Fatalf("committed insert+update missing: %d", got)
	}
	if got := count(t, db, "SELECT count(*) FROM t WHERE k = 0"); got != 0 {
		t.Fatalf("committed delete missing: %d", got)
	}
	// Finished transactions refuse further work.
	if err := tx.Commit(ctx); !errors.As(err, new(*sm.TxDoneError)) {
		t.Fatalf("double commit: got %v", err)
	}
}

func TestTxRollback(t *testing.T) {
	db := openTestDB(t, 50, Options{PoolPages: 64})
	ctx := context.Background()

	tx := db.Begin()
	if _, err := tx.Exec(ctx, "INSERT INTO t VALUES (1000, 0, 1.0, 'ghost'); DELETE FROM t WHERE k < 10"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if got := count(t, db, "SELECT count(*) FROM t"); got != 50 {
		t.Fatalf("rollback leaked changes: %d rows, want 50", got)
	}
	// The rollback released the table lock: autocommit writes proceed.
	if _, err := db.Exec(ctx, "DELETE FROM t WHERE k = 0"); err != nil {
		t.Fatal(err)
	}
}

func TestExecSessionTransactions(t *testing.T) {
	db := openTestDB(t, 50, Options{PoolPages: 64})
	ctx := context.Background()
	var sess Session

	// Script with an open transaction at the end: stays open on the session.
	if _, err := db.ExecSession(ctx, &sess, "BEGIN; INSERT INTO t VALUES (1000, 0, 1.0, 'x')"); err != nil {
		t.Fatal(err)
	}
	if !sess.InTx() {
		t.Fatal("session should have an open transaction")
	}
	// Reading a table this transaction wrote would self-deadlock; the guard
	// turns it into a typed error.
	stmts, err := sql.ParseScript("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.guardQuery(stmts[0]); !errors.As(err, new(*TxConflictError)) {
		t.Fatalf("guardQuery: got %v", err)
	}
	// Double BEGIN is a typed state error.
	if _, err := db.ExecSession(ctx, &sess, "BEGIN"); !errors.As(err, new(*TxStateError)) {
		t.Fatalf("double BEGIN: got %v", err)
	}
	if _, err := db.ExecSession(ctx, &sess, "COMMIT"); err != nil {
		t.Fatal(err)
	}
	if sess.InTx() {
		t.Fatal("transaction should be closed after COMMIT")
	}
	if got := count(t, db, "SELECT count(*) FROM t WHERE k = 1000"); got != 1 {
		t.Fatalf("committed row missing: %d", got)
	}

	// COMMIT / ROLLBACK with nothing open are typed state errors.
	if _, err := db.ExecSession(ctx, &sess, "COMMIT"); !errors.As(err, new(*TxStateError)) {
		t.Fatalf("stray COMMIT: got %v", err)
	}
	if _, err := db.ExecSession(ctx, &sess, "ROLLBACK"); !errors.As(err, new(*TxStateError)) {
		t.Fatalf("stray ROLLBACK: got %v", err)
	}

	// ROLLBACK discards the staged statement.
	if _, err := db.ExecSession(ctx, &sess, "BEGIN; DELETE FROM t; ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if got := count(t, db, "SELECT count(*) FROM t"); got != 51 {
		t.Fatalf("rolled-back delete leaked: %d rows, want 51", got)
	}

	// Session.Close rolls back an abandoned transaction (the server calls
	// this on disconnect) and releases its locks.
	if _, err := db.ExecSession(ctx, &sess, "BEGIN; INSERT INTO t VALUES (2000, 0, 1.0, 'gone')"); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if sess.InTx() {
		t.Fatal("Close left the transaction open")
	}
	if got := count(t, db, "SELECT count(*) FROM t WHERE k = 2000"); got != 0 {
		t.Fatalf("abandoned insert survived Close: %d", got)
	}
}

// TestLoadOnLiveDB is the regression for Load's locking contract: Load
// bulk-appends as one committed transaction under the table's exclusive
// lock, so concurrent readers see each batch none-or-all — a count query
// racing the loader can only ever observe initial + k*batch rows.
func TestLoadOnLiveDB(t *testing.T) {
	const (
		initial = 1000
		batch   = 500
		batches = 4
	)
	db := openTestDB(t, initial, Options{PoolPages: 64})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := db.Query(ctx, "SELECT count(*) FROM t")
			if err != nil {
				t.Error(err)
				return
			}
			rows, err := res.All()
			if err != nil {
				t.Error(err)
				return
			}
			c := rows[0][0].I
			if c < initial || (c-initial)%batch != 0 {
				t.Errorf("count %d is a torn Load (want %d + k*%d)", c, initial, batch)
				return
			}
		}
	}()

	for b := 0; b < batches; b++ {
		rows := make([]Row, batch)
		for i := range rows {
			k := 10_000 + b*batch + i
			rows[i] = R(k, k%10, float64(k), "bulk")
		}
		if err := db.Load("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := count(t, db, "SELECT count(*) FROM t"); got != initial+batch*batches {
		t.Fatalf("final count %d, want %d", got, initial+batch*batches)
	}
}
