module qpipe

go 1.24
