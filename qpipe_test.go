package qpipe

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// newTestDB creates a storage manager with one table "t"(k int, grp int,
// val float, name string) holding n rows: k=i, grp=i%10, val=i/2, name="r<i>".
func newTestDB(t testing.TB, n int) *sm.Manager {
	t.Helper()
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 64})
	schema := tuple.NewSchema(
		tuple.Col("k", tuple.KindInt),
		tuple.Col("grp", tuple.KindInt),
		tuple.Col("val", tuple.KindFloat),
		tuple.Col("name", tuple.KindString),
	)
	if _, err := mgr.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([]tuple.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = tuple.Tuple{
			tuple.I64(int64(i)), tuple.I64(int64(i % 10)),
			tuple.F64(float64(i) / 2), tuple.Str(fmt.Sprintf("r%d", i)),
		}
	}
	if err := mgr.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	return mgr
}

func tableSchema(mgr *sm.Manager) *tuple.Schema { return mgr.MustTable("t").Schema }

func TestScanAll(t *testing.T) {
	mgr := newTestDB(t, 500)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	p := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	res, err := eng.Query(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("scan returned %d rows, want 500", len(rows))
	}
}

func TestScanWithFilterAndProject(t *testing.T) {
	mgr := newTestDB(t, 300)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	pred := expr.LT(expr.Col(0), expr.CInt(50))
	p := plan.NewTableScan("t", tableSchema(mgr), pred, []int{0, 2}, false)
	res, _ := eng.Query(context.Background(), p)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("filtered scan: %d rows, want 50", len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("projection width: %v", r)
		}
		if r[0].I >= 50 {
			t.Fatalf("filter leak: %v", r)
		}
	}
}

func TestAggregate(t *testing.T) {
	mgr := newTestDB(t, 100)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	agg := plan.NewAggregate(scan, []expr.AggSpec{
		{Kind: expr.AggCount},
		{Kind: expr.AggSum, Arg: expr.Col(0)},
		{Kind: expr.AggMin, Arg: expr.Col(0)},
		{Kind: expr.AggMax, Arg: expr.Col(0)},
	})
	res, _ := eng.Query(context.Background(), agg)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("aggregate rows: %d", len(rows))
	}
	r := rows[0]
	if r[0].I != 100 || r[1].F != 4950 || r[2].AsFloat() != 0 || r[3].AsFloat() != 99 {
		t.Fatalf("aggregate values: %v", r)
	}
}

func TestGroupBy(t *testing.T) {
	mgr := newTestDB(t, 100)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	gb := plan.NewGroupBy(scan, []int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
	res, _ := eng.Query(context.Background(), gb)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("groups: %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 10 {
			t.Fatalf("group count: %v", r)
		}
	}
}

func TestSortOrdersOutput(t *testing.T) {
	mgr := newTestDB(t, 200)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	srt := plan.NewSort(scan, []int{3}, false) // sort by name (string)
	res, _ := eng.Query(context.Background(), srt)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("sorted rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if tuple.Compare(rows[i-1][3], rows[i][3]) > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, rows[i-1][3], rows[i][3])
		}
	}
}

func TestHashJoin(t *testing.T) {
	mgr := newTestDB(t, 100)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	// Self-join on grp: each of 100 rows matches 10 rows → 1000.
	l := plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 0}, false)
	r := plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 2}, false)
	j := plan.NewHashJoin(l, r, 0, 0)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	res, _ := eng.Query(context.Background(), agg)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 1000 {
		t.Fatalf("join cardinality: %v, want 1000", rows[0][0])
	}
}

func TestMergeJoinOverSortedInputs(t *testing.T) {
	mgr := newTestDB(t, 120)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	l := plan.NewSort(plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 0}, false), []int{0}, false)
	r := plan.NewSort(plan.NewTableScan("t", tableSchema(mgr), nil, []int{1, 2}, false), []int{0}, false)
	j := plan.NewMergeJoin(l, r, 0, 0, false)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	res, _ := eng.Query(context.Background(), agg)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	// 120 rows, 10 groups of 12: 10 * 12 * 12 = 1440.
	if rows[0][0].I != 1440 {
		t.Fatalf("merge join cardinality: %v, want 1440", rows[0][0])
	}
}

func TestNLJoin(t *testing.T) {
	mgr := newTestDB(t, 40)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	l := plan.NewTableScan("t", tableSchema(mgr), expr.LT(expr.Col(0), expr.CInt(5)), []int{0}, false)
	r := plan.NewTableScan("t", tableSchema(mgr), expr.LT(expr.Col(0), expr.CInt(8)), []int{0}, false)
	j := plan.NewNLJoin(l, r, expr.LT(expr.Col(0), expr.Col(1)))
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	res, _ := eng.Query(context.Background(), agg)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	// pairs (a,b) a in 0..4, b in 0..7, a<b: sum_{a=0}^{4} (7-a) = 7+6+5+4+3 = 25.
	if rows[0][0].I != 25 {
		t.Fatalf("nljoin cardinality: %v, want 25", rows[0][0])
	}
}

func TestFilterAndProjectNodes(t *testing.T) {
	mgr := newTestDB(t, 60)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	f := plan.NewFilter(scan, expr.GE(expr.Col(0), expr.CInt(50)))
	pr := plan.NewProject(f, []expr.Expr{expr.Mul(expr.Col(0), expr.CInt(2))}, []string{"k2"})
	res, _ := eng.Query(context.Background(), pr)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows: %d", len(rows))
	}
	sum := int64(0)
	for _, r := range rows {
		sum += r[0].I
	}
	if sum != 2*(50+51+52+53+54+55+56+57+58+59) {
		t.Fatalf("sum: %d", sum)
	}
}

func TestUpdateThenScan(t *testing.T) {
	mgr := newTestDB(t, 10)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	up := plan.NewUpdate("t", []tuple.Tuple{
		{tuple.I64(1000), tuple.I64(0), tuple.F64(1), tuple.Str("new1")},
		{tuple.I64(1001), tuple.I64(1), tuple.F64(2), tuple.Str("new2")},
	})
	res, _ := eng.Query(context.Background(), up)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 2 {
		t.Fatalf("update count: %v", rows[0])
	}
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	res2, _ := eng.Query(context.Background(), scan)
	all, _ := res2.All()
	if len(all) != 12 {
		t.Fatalf("rows after insert: %d", len(all))
	}
}

func TestClusteredIndexScan(t *testing.T) {
	mgr := newTestDB(t, 150)
	if err := mgr.BuildClustered("t", "k"); err != nil {
		t.Fatal(err)
	}
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	p := plan.NewIndexScan("t", tableSchema(mgr), "k", tuple.Value{}, tuple.Value{}, true, true, nil, nil)
	res, _ := eng.Query(context.Background(), p)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 150 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].I > rows[i][0].I {
			t.Fatalf("clustered scan out of key order at %d", i)
		}
	}
	// Bounded scan.
	p2 := plan.NewIndexScan("t", tableSchema(mgr), "k", tuple.I64(10), tuple.I64(19), true, true, nil, nil)
	res2, _ := eng.Query(context.Background(), p2)
	rows2, err := res2.All()
	if err != nil || len(rows2) != 10 {
		t.Fatalf("bounded clustered scan: %d %v", len(rows2), err)
	}
}

func TestUnclusteredIndexScan(t *testing.T) {
	mgr := newTestDB(t, 150)
	if err := mgr.BuildUnclustered("t", "grp"); err != nil {
		t.Fatal(err)
	}
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	p := plan.NewIndexScan("t", tableSchema(mgr), "grp", tuple.I64(3), tuple.I64(4), false, false, nil, nil)
	res, _ := eng.Query(context.Background(), p)
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("unclustered probe: %d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if g := r[1].I; g != 3 && g != 4 {
			t.Fatalf("wrong group: %v", r)
		}
	}
}

// TestConcurrentIdenticalQueriesShare exercises OSP end to end: two
// identical aggregate queries submitted together must share work (one
// becomes a satellite) and produce identical results.
func TestConcurrentIdenticalQueriesShare(t *testing.T) {
	mgr := newTestDB(t, 2000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	mkPlan := func() plan.Node {
		scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(0)}})
	}
	const n = 4
	var wg sync.WaitGroup
	results := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Query(context.Background(), mkPlan())
			if err != nil {
				errs[i] = err
				return
			}
			rows, err := res.All()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = rows[0][0].F
		}(i)
	}
	wg.Wait()
	want := float64(2000*1999) / 2
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i] != want {
			t.Fatalf("query %d: sum %v, want %v", i, results[i], want)
		}
	}
}

// TestCircularScanSharesIO: with OSP, a second scan arriving mid-flight
// must not re-read pages the scanner is currently producing — total disk
// reads stay well below 2 full scans.
func TestCircularScanSharesIO(t *testing.T) {
	mgr := newTestDB(t, 5000)
	// Tiny pool so there is no buffer-pool sharing; slow disk so the second
	// query arrives mid-scan.
	mgr2 := sm.NewSharedDisk(mgr.Disk, 8, nil)
	if _, err := mgr2.AttachTable("t", tableSchema(mgr)); err != nil {
		t.Fatal(err)
	}
	mgr2.Disk.ResetStats()
	mgr2.Disk.SetLatency(200*time.Microsecond, 200*time.Microsecond, 0)
	defer mgr2.Disk.SetLatency(0, 0, 0)

	eng := New(mgr2, DefaultConfig())
	defer eng.Close()
	schema := tableSchema(mgr)
	mk := func(pred expr.Pred) plan.Node {
		scan := plan.NewTableScan("t", schema, pred, nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}})
	}
	full := int64(mgr2.MustTable("t").Heap.NumPages())

	// First query starts; second (different predicate!) arrives mid-scan.
	res1, _ := eng.Query(context.Background(), mk(nil))
	time.Sleep(10 * time.Millisecond)
	res2, _ := eng.Query(context.Background(), mk(expr.LT(expr.Col(0), expr.CInt(100))))
	n1, err1 := res1.Discard()
	n2, err2 := res2.Discard()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if n1 != 1 || n2 != 1 {
		t.Fatalf("result rows: %d %d", n1, n2)
	}
	reads := mgr2.Disk.Stats().Reads
	if reads < full {
		t.Fatalf("reads %d below one full scan %d", reads, full)
	}
	if reads >= 2*full {
		t.Fatalf("no sharing: %d reads for 2 scans of %d pages", reads, full)
	}
	if eng.Stats().SharesByOp[plan.OpTableScan] == 0 {
		t.Fatal("expected a circular-scan share")
	}
}

// TestBaselineNoSharing: with OSP off, the same scenario reads ~2 full
// scans.
func TestBaselineNoSharing(t *testing.T) {
	mgr := newTestDB(t, 5000)
	mgr2 := sm.NewSharedDisk(mgr.Disk, 8, nil)
	if _, err := mgr2.AttachTable("t", tableSchema(mgr)); err != nil {
		t.Fatal(err)
	}
	mgr2.Disk.ResetStats()
	mgr2.Disk.SetLatency(200*time.Microsecond, 200*time.Microsecond, 0)
	defer mgr2.Disk.SetLatency(0, 0, 0)
	eng := New(mgr2, BaselineConfig())
	defer eng.Close()
	schema := tableSchema(mgr)
	mk := func() plan.Node {
		scan := plan.NewTableScan("t", schema, nil, nil, false)
		return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}})
	}
	full := int64(mgr2.MustTable("t").Heap.NumPages())
	res1, _ := eng.Query(context.Background(), mk())
	time.Sleep(10 * time.Millisecond)
	res2, _ := eng.Query(context.Background(), mk())
	res1.Discard()
	res2.Discard()
	reads := mgr2.Disk.Stats().Reads
	// The 8-page pool plus scheduling jitter can save a few reads, but the
	// baseline must stay close to two full scans (no proactive sharing).
	if reads < 2*full*9/10 {
		t.Fatalf("baseline should read ~2 full scans: %d vs %d", reads, 2*full)
	}
	if eng.Stats().SharesByOp[plan.OpTableScan] != 0 {
		t.Fatal("baseline must not share")
	}
}

func TestQueryCancel(t *testing.T) {
	mgr := newTestDB(t, 20000)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("t", tableSchema(mgr), nil, nil, false)
	res, err := eng.Query(context.Background(), scan)
	if err != nil {
		t.Fatal(err)
	}
	// Read one batch then cancel.
	if _, err := res.Next(); err != nil {
		t.Fatal(err)
	}
	res.Cancel()
	// Engine must stay usable.
	res2, _ := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", tableSchema(mgr), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	rows, err := res2.All()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 20000 {
		t.Fatalf("count after cancel: %v", rows[0])
	}
}

func TestUnknownTableFails(t *testing.T) {
	mgr := newTestDB(t, 10)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	scan := plan.NewTableScan("missing", tableSchema(mgr), nil, nil, false)
	res, err := eng.Query(context.Background(), scan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err == nil {
		t.Fatal("scan of missing table should error")
	}
}
