// qpipe-server serves a qpipe database over TCP speaking the qpipe/wire
// protocol: one session per connection, streaming row batches, typed errors
// across the wire, and the engine's resource governance (admission control,
// statement timeouts) underneath. SIGTERM/SIGINT triggers a graceful drain:
// the listener closes, in-flight queries finish (bounded by -drain), and
// clients receive their final frames before the process exits.
//
//	qpipe-server -demo                      # serve the tpchmix demo dataset
//	qpipe-server -listen :5433 -max-queries 16 -max-conns 256
//	qpipe-shell -connect localhost:5433     # then connect a REPL
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qpipe"
	"qpipe/internal/workload/sqlmix"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5433", "listen address (host:port)")
	demo := flag.Bool("demo", false, "load the tpchmix demo dataset (orders/customers)")
	demoRows := flag.Int("rows", 60_000, "demo dataset: orders rows")
	demoCusts := flag.Int("customers", 4_000, "demo dataset: customers rows")
	initScript := flag.String("init", "", "run a .sql script before serving (DDL, loads)")
	pool := flag.Int("pool", 4096, "buffer pool pages")
	maxQueries := flag.Int("max-queries", 0, "admission control: max concurrent queries (0 = unlimited)")
	queue := flag.Int("queue", 0, "admission queue bound (0 = 2x max-queries)")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain budget for in-flight queries on shutdown")
	quiet := flag.Bool("quiet", false, "suppress per-connection diagnostics")
	flag.Parse()

	logger := log.New(os.Stderr, "qpipe-server: ", log.LstdFlags)

	db, err := qpipe.Open(qpipe.Options{
		PoolPages:            *pool,
		MaxConcurrentQueries: *maxQueries,
		AdmissionQueue:       *queue,
		DrainTimeout:         *drain,
	})
	if err != nil {
		logger.Fatal(err)
	}

	if *demo {
		logger.Printf("loading demo dataset: %d orders, %d customers ...", *demoRows, *demoCusts)
		if err := sqlmix.Populate(db, *demoRows, *demoCusts); err != nil {
			logger.Fatal(err)
		}
	}
	if *initScript != "" {
		text, err := os.ReadFile(*initScript)
		if err != nil {
			logger.Fatal(err)
		}
		if _, err := db.Exec(context.Background(), string(text)); err != nil {
			logger.Fatalf("-init %s: %v", *initScript, err)
		}
	}

	opts := qpipe.ServerOptions{
		MaxConns:      *maxConns,
		Banner:        fmt.Sprintf("qpipe-server (%d tables)", len(db.Tables())),
		ShutdownGrace: *drain + 2*time.Second,
	}
	if !*quiet {
		opts.Logf = logger.Printf
	}
	srv := qpipe.NewServer(db, opts)

	// SIGTERM/SIGINT → graceful drain. A second signal kills the process
	// the usual way (the handler is one-shot).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		s := <-sig
		signal.Stop(sig)
		logger.Printf("%s: draining (%s budget) ...", s, *drain)
		srv.Shutdown()
		close(done)
	}()

	logger.Printf("serving on %s (governance: max-queries=%d, max-conns=%d)",
		*listen, *maxQueries, *maxConns)
	if err := srv.ListenAndServe(*listen); err != nil {
		logger.Fatal(err)
	}
	<-done
	st := srv.Stats()
	logger.Printf("drained: %d conns served, %d queries, %d rows sent, %d errors sent",
		st.ConnsAccepted, st.QueriesServed, st.RowsSent, st.ErrorsSent)
}
