package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd drives run() the way main does, capturing both streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, stderr := runCmd("-list")
	if code != 0 {
		t.Fatalf("-list exit %d, stderr %q", code, stderr)
	}
	for _, name := range []string{"leaselint", "emitlint", "spilllint", "siglint", "ctxlint"} {
		if !strings.Contains(stdout, name+": ") {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

// TestUnknownAnalyzerName: a typoed -analyzers selection must be a loud
// error naming the known set, never a silently empty run.
func TestUnknownAnalyzerName(t *testing.T) {
	code, _, stderr := runCmd("-analyzers", "leaselint,nosuch", "./...")
	if code != 1 {
		t.Fatalf("unknown analyzer exit %d, want 1; stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, `unknown analyzer "nosuch"`) || !strings.Contains(stderr, "known:") {
		t.Fatalf("unknown-analyzer error must name the typo and the known set, got %q", stderr)
	}
}

func TestVersionHandshake(t *testing.T) {
	code, stdout, _ := runCmd("-V=full")
	if code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	fields := strings.Fields(stdout)
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output %q does not match the 'name version devel ... buildID=x' handshake", stdout)
	}
}

func TestFlagsHandshake(t *testing.T) {
	code, stdout, stderr := runCmd("-flags")
	if code != 0 {
		t.Fatalf("-flags exit %d, stderr %q", code, stderr)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(stdout), &flags); err != nil {
		t.Fatalf("-flags output is not the JSON handshake: %v\n%s", err, stdout)
	}
	if len(flags) == 0 {
		t.Fatal("-flags listed no flags")
	}
}

// TestStandaloneEndToEnd builds a throwaway module containing a tbuf
// stand-in, a real violation, a valid suppression, and a malformed one, and
// asserts the driver reports exactly the right lines.
func TestStandaloneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmp\n\ngo 1.24\n")
	write("tbuf/tbuf.go", `package tbuf

type Batch = []int

type SharedOut struct{}

func (s *SharedOut) NewBatch(n int) Batch { return nil }
func (s *SharedOut) Put(b Batch) error   { return nil }
`)
	write("use/use.go", `package use

import "tmp/tbuf"

func emit(out *tbuf.SharedOut, b tbuf.Batch) {
	out.Put(b)
	out.Put(b) //qpipelint:ignore emitlint driver test suppression
	out.Put(b) //qpipelint:ignore nosuch typo of an analyzer name
}
`)
	t.Chdir(dir)

	code, stdout, stderr := runCmd("./...")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (diagnostics)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	checks := []struct {
		desc, substr string
		want         bool
	}{
		{"unsuppressed violation on line 6", "use.go:6", true},
		{"validly suppressed line 7", "use.go:7:2", false},
		{"malformed directive reported", `unknown analyzer "nosuch"`, true},
		{"violation under malformed directive still reported", "use.go:8:2", true},
	}
	for _, c := range checks {
		if strings.Contains(stdout, c.substr) != c.want {
			t.Errorf("%s: want contains(%q)=%v in output:\n%s", c.desc, c.substr, c.want, stdout)
		}
	}
}

// TestUnitcheckerMode exercises the go vet -vettool protocol: a cfg file
// describing one compilation unit, diagnostics on stderr, exit 2, and a
// vetx output file in every outcome.
func TestUnitcheckerMode(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "spill.go")
	if err := os.WriteFile(src, []byte(`package spill

type disk struct{}

func (d *disk) DropTemp(name string) {}

type spillWriter struct{}

func (w *spillWriter) add(v int) error { return nil }

func newSpillWriter(d *disk, name string) *spillWriter { return &spillWriter{} }

func leaky(d *disk) error {
	w := newSpillWriter(d, "run-0")
	return w.add(1)
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "spill.vetx")
	cfg := vetConfig{
		ID:         "tmp/spill",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "tmp/spill",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}
	cfgFile := filepath.Join(dir, "spill.cfg")
	data, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runCmd(cfgFile)
	if code != 2 {
		t.Fatalf("cfg run exit %d, want 2; stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "DropTemp") || !strings.Contains(stderr, "spill.go:14") {
		t.Fatalf("cfg run must report the spilllint finding on stderr, got %q", stderr)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx output missing after diagnostics: %v", err)
	}

	// VetxOnly units (dependencies of the vetted packages) are not
	// analyzed, but the vetx token must still be written.
	if err := os.Remove(vetx); err != nil {
		t.Fatal(err)
	}
	cfg.VetxOnly = true
	data, err = json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCmd(cfgFile)
	if code != 0 || stderr != "" {
		t.Fatalf("VetxOnly run: exit %d stderr %q, want clean", code, stderr)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx output missing after VetxOnly run: %v", err)
	}
}
