// Command qpipe-lint runs the qpipe engine-invariant analyzer suite
// (internal/lint) over Go packages. It operates in two modes:
//
// Standalone, over package patterns resolved through the go tool:
//
//	qpipe-lint ./...
//	qpipe-lint -analyzers leaselint,spilllint ./internal/ops/
//
// And as a vet tool, speaking the cmd/go unitchecker protocol (-V=full,
// -flags, and a single *.cfg argument describing one compilation unit):
//
//	go vet -vettool=$(which qpipe-lint) ./...
//
// Exit status: 0 for a clean run, 1 for usage or infrastructure errors,
// 2 when diagnostics were reported (the go vet convention).
//
// In vettool mode each package is checked in isolation from export data, so
// siglint's cross-package fact propagation degrades to in-package analysis;
// the standalone mode type-checks the whole module from source and is the
// authoritative run (and the one CI enforces).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qpipe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qpipe-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list the analyzers in the suite and exit")
		analyzers = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		version   = fs.String("V", "", "internal: unitchecker version handshake (-V=full)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qpipe-lint [-list] [-analyzers a,b] [packages]\n")
		fs.PrintDefaults()
	}

	// The cmd/go vettool handshake probes -V=full and -flags before any
	// normal invocation; answer them before flag parsing can object.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			printVersion(stdout)
			return 0
		case "-flags", "--flags":
			return printFlagsJSON(fs, stdout, stderr)
		}
	}

	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *version != "" {
		printVersion(stdout)
		return 0
	}

	suite := lint.All()
	if *analyzers != "" {
		selected, unknown, ok := lint.ByName(strings.Split(*analyzers, ","))
		if !ok {
			var known []string
			for _, a := range suite {
				known = append(known, a.Name)
			}
			fmt.Fprintf(stderr, "qpipe-lint: unknown analyzer %q (known: %s)\n", unknown, strings.Join(known, ", "))
			return 1
		}
		suite = selected
	}

	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// Unitchecker mode: exactly one argument naming a *.cfg file.
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runUnit(fs.Arg(0), suite, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
		return 1
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
		return 1
	}
	diags = lint.ApplyDirectives(pkgs, diags, suite)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func progname() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// printVersion answers the cmd/go -V=full handshake. A "devel" version must
// carry a trailing buildID= field; hashing the executable makes go vet's
// result cache invalidate whenever the tool itself changes.
func printVersion(stdout io.Writer) {
	id := "static"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%02x", sum)
		}
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%s\n", progname(), id)
}

// printFlagsJSON answers the cmd/go -flags handshake: a JSON array
// describing the tool's flags so go vet can validate pass-through options.
func printFlagsJSON(fs *flag.FlagSet, stdout, stderr io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		flags = append(flags, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, string(data))
	return 0
}

// vetConfig is the subset of the cmd/go unitchecker config this tool needs:
// one compilation unit's sources plus the export data of everything it
// imports.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit checks one compilation unit described by a cmd/go-written cfg
// file. The vetx output must exist afterwards in every outcome cmd/go
// treats as success — it is the cache token for "this unit was vetted".
func runUnit(cfgFile string, suite []*lint.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "qpipe-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		// This tool keeps facts in-process per invocation; the vetx file
		// carries none, but must exist for cmd/go's bookkeeping.
		if err := os.WriteFile(cfg.VetxOutput, []byte("qpipe-lint: no serialized facts\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// go vet hands each package over as its test variant (library sources
	// plus _test.go files in one unit). The engine invariants bind engine
	// code proper — tests legitimately poke at batches and Put errors in
	// ways the analyzers forbid — so only the non-test sources are
	// analyzed, matching the standalone mode, which never loads test
	// files. Library code cannot reference test declarations, so dropping
	// the test files keeps the remainder type-checkable; an external-test
	// unit (pkg_test) empties out entirely and is skipped.
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := &unitImporter{cfg: &cfg}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "qpipe-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{
		Path:      cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		Files:     files,
		Fset:      fset,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := lint.Run([]*lint.Package{pkg}, suite)
	if err != nil {
		fmt.Fprintf(stderr, "qpipe-lint: %v\n", err)
		return 1
	}
	diags = lint.ApplyDirectives([]*lint.Package{pkg}, diags, suite)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// unitImporter satisfies imports from the export data files cmd/go listed
// in the unit config.
type unitImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := u.cfg.PackageFile[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("no export data for %q in unit config", path)
	}
	return os.Open(file)
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := u.cfg.ImportMap[path]; ok && mapped != "" {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}
