// qpipe-bench regenerates the paper's tables and figures (see DESIGN.md §4
// for the experiment index). Each figure runs the same three systems the
// paper evaluates — Baseline (QPipe, OSP off), QPipe w/OSP, and DBMS X (the
// Volcano-style comparator) — over one shared simulated disk.
//
// Usage:
//
//	qpipe-bench -fig all                # every figure, small scale
//	qpipe-bench -fig 8 -scale paper     # Figure 8 at the heavier scale
//	qpipe-bench -fig 12 -clients 12 -queries 3
//	qpipe-bench -fig scanpar -scanworkers 1,2,4,8 -scanrows 100000
//	qpipe-bench -fig joinpar -joinworkers 1,2,4,8 -joinrows 100000
//	qpipe-bench -fig gc -gcrows 100000 -gcout BENCH_GC.json
//	qpipe-bench -fig joinpar -batch 128         # engine batch/pool size knob
//	qpipe-bench -fig sqlmix -mixclients 8       # declarative SQL mix, OSP on vs off
//	qpipe-bench -fig sqlmix -mixfile my_mix.sql # your own .sql query mix
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"qpipe"
	"qpipe/internal/harness"
	"qpipe/internal/workload/sqlmix"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 4a, 8, 9, 10, 11, 12, 13, scanpar, joinpar, gc, overload, api, sqlmix, planshare, server or all")
	scaleName := flag.String("scale", "small", "experiment scale: small or paper")
	batch := flag.Int("batch", 0, "engine batch size (tuples per batch and recycling-pool array size; 0 = default 64)")
	clients := flag.Int("clients", 0, "override client count list max (fig 12)")
	queries := flag.Int("queries", 0, "queries per client (figs 12/13)")
	scanWorkers := flag.String("scanworkers", "1,2,4,8", "comma-separated ScanParallelism sweep (fig scanpar)")
	scanRows := flag.Int("scanrows", 100_000, "rows in the scan-sweep table (fig scanpar)")
	scanClients := flag.Int("scanclients", 3, "concurrent sharing clients (fig scanpar)")
	joinWorkers := flag.String("joinworkers", "1,2,4,8", "comma-separated join/group-by fan-out sweep (fig joinpar)")
	joinRows := flag.Int("joinrows", 100_000, "rows per join table (fig joinpar)")
	gcWorkers := flag.String("gcworkers", "1,8", "comma-separated fan-out list (fig gc)")
	gcRows := flag.Int("gcrows", 100_000, "rows per table in the GC-pressure run (fig gc)")
	gcOut := flag.String("gcout", "BENCH_GC.json", "output path for the GC-pressure JSON report (fig gc)")
	ovClients := flag.String("ovclients", "2,4,8,16", "comma-separated closed-loop client sweep (fig overload)")
	ovQueries := flag.Int("ovqueries", 6, "queries attempted per client (fig overload)")
	ovMax := flag.Int("ovmax", 4, "governed arm: admission slots (fig overload)")
	ovQueue := flag.Int("ovqueue", 0, "governed arm: FIFO wait-queue depth, 0 = 2x slots (fig overload)")
	ovTimeout := flag.Int("ovtimeout", 0, "governed arm: per-query statement timeout in ms, 0 = none (fig overload)")
	overloadOut := flag.String("overloadout", "BENCH_OVERLOAD.json", "output path for the overload JSON report (fig overload)")
	mixFile := flag.String("mixfile", "", "path to a .sql query mix (fig sqlmix; default: the embedded tpchmix)")
	mixClients := flag.Int("mixclients", 6, "concurrent clients (fig sqlmix)")
	mixQueries := flag.Int("mixqueries", 2, "queries per client (fig sqlmix)")
	mixRows := flag.Int("mixrows", 60_000, "orders rows in the sqlmix/planshare dataset")
	noOpt := flag.Bool("no-opt", false, "escape hatch: disable the cost-based planner in both planshare arms")
	planshareOut := flag.String("planshareout", "BENCH_PLANSHARE.json", "output path for the plan-sharing JSON report (fig planshare)")
	assertShare := flag.Bool("assertshare", false, "fig planshare: exit non-zero unless the optimized arm folds more signatures and shares strictly more than the -no-opt arm")
	svClients := flag.String("svclients", "8,16,32,64,128", "comma-separated client-connection sweep (fig server)")
	svQueries := flag.Int("svqueries", 4, "queries per connection (fig server)")
	svRows := flag.Int("svrows", 20_000, "orders rows in the server sweep dataset (fig server)")
	svMax := flag.Int("svmax", 16, "engine admission slots behind the server (fig server)")
	svQueue := flag.Int("svqueue", 0, "admission wait-queue depth, 0 = 4x slots (fig server)")
	svOut := flag.String("svout", "BENCH_SERVER.json", "output path for the server sweep JSON report (fig server)")
	svAssert := flag.Bool("svassert", false, "fig server: exit non-zero unless the OSP arm beats the no-OSP arm on shares and p99 at the largest swept count (>= 64 connections)")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "small":
		sc = harness.SmallScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	sc.BatchSize = *batch

	want := func(name string) bool { return *fig == "all" || *fig == name }
	start := time.Now()

	if want("1a") {
		run("Figure 1a", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, false)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.Fig1aTimeBreakdown(env)
			return []harness.Figure{f}, err
		})
	}
	if want("4a") {
		run("Figure 4a", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, true)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.Fig4aWindowsOfOpportunity(env)
			return []harness.Figure{f}, err
		})
	}
	if want("8") {
		run("Figure 8", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, false)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			return harness.Fig8CircularScan(env, nil, nil)
		})
	}
	if want("9") {
		run("Figure 9", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, true)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.Fig9OrderedScans(env, nil)
			return []harness.Figure{f}, err
		})
	}
	if want("10") {
		run("Figure 10", func() ([]harness.Figure, error) {
			env, err := harness.NewWisconsinEnv(sc)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.Fig10SortMerge(env, nil)
			return []harness.Figure{f}, err
		})
	}
	if want("11") {
		run("Figure 11", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, false)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.Fig11HashJoin(env, nil)
			return []harness.Figure{f}, err
		})
	}
	if want("12") || want("1b") {
		run("Figure 12 / 1b", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, false)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			var cc []int
			if *clients > 0 {
				for n := 1; n <= *clients; n += 2 {
					cc = append(cc, n)
				}
			}
			f, err := harness.Fig12Throughput(env, cc, *queries)
			return []harness.Figure{f}, err
		})
	}
	if want("13") {
		run("Figure 13", func() ([]harness.Figure, error) {
			env, err := harness.NewTPCHEnv(sc, false)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.Fig13ThinkTime(env, nil, 10, *queries)
			return []harness.Figure{f}, err
		})
	}
	if want("scanpar") {
		run("Scan parallelism", func() ([]harness.Figure, error) {
			workers, err := parseIntList(*scanWorkers)
			if err != nil {
				return nil, err
			}
			if len(workers) == 0 {
				workers = []int{1, 2, 4, 8}
			}
			// Give the simulated array one spindle per scan worker so the
			// sweep shows the engine's scaling rather than the device cap.
			scanSc := sc
			for _, w := range workers {
				if w > scanSc.Spindles {
					scanSc.Spindles = w
				}
			}
			env, err := harness.NewScanEnv(scanSc, *scanRows)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, shares, err := harness.ScanParallelism(env, workers, *scanClients)
			if err == nil {
				fmt.Printf("OSP scan shares across multi-client runs: %d\n", shares)
			}
			return []harness.Figure{f}, err
		})
	}

	if want("gc") {
		run("GC pressure", func() ([]harness.Figure, error) {
			workers, err := parseIntList(*gcWorkers)
			if err != nil {
				return nil, err
			}
			if len(workers) == 0 {
				workers = []int{1, 8}
			}
			gcSc := sc
			for _, w := range workers {
				if w > gcSc.Spindles {
					gcSc.Spindles = w
				}
			}
			env, err := harness.NewJoinEnv(gcSc, *gcRows)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, report, err := harness.GCPressure(env, workers)
			if err != nil {
				return nil, err
			}
			report.Rows = *gcRows
			for _, st := range report.Stats {
				fmt.Printf("%-8s P%-2d  %10.0f allocs/op  %12.0f B/op  %7.2f ms GC pause (%d GCs)  %7.1f ms wall\n",
					st.Workload, st.Par, st.AllocsPerOp, st.BytesPerOp, st.GCPauseMs, st.NumGC, st.WallMs)
			}
			if err := harness.WriteGCJSON(*gcOut, report); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *gcOut)
			return []harness.Figure{f}, nil
		})
	}

	if want("overload") {
		run("Overload (resource governance)", func() ([]harness.Figure, error) {
			clientList, err := parseIntList(*ovClients)
			if err != nil {
				return nil, err
			}
			env, err := harness.NewWisconsinEnv(sc)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, report, err := harness.Overload(env, harness.OverloadParams{
				Clients:          clientList,
				QueriesPerClient: *ovQueries,
				MaxConcurrent:    *ovMax,
				Queue:            *ovQueue,
				Timeout:          time.Duration(*ovTimeout) * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			report.BigRows = sc.BigRows
			for _, arm := range report.Arms {
				for _, pt := range arm.Points {
					fmt.Printf("%-11s %3d clients  p50 %8.2f ms  p99 %8.2f ms  %6.1f q/s  (%d ok, %d shed, %d timed out)\n",
						arm.Name, pt.Clients, pt.P50Ms, pt.P99Ms, pt.ThroughputQPS, pt.Completed, pt.Shed, pt.TimedOut)
				}
			}
			if err := harness.WriteOverloadJSON(*overloadOut, report); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *overloadOut)
			return []harness.Figure{f}, nil
		})
	}

	if want("server") {
		run("Server (multi-client OSP over the wire)", func() ([]harness.Figure, error) {
			clientList, err := parseIntList(*svClients)
			if err != nil {
				return nil, err
			}
			f, report, err := harness.Server(harness.ServerParams{
				Clients:          clientList,
				QueriesPerClient: *svQueries,
				Rows:             *svRows,
				MaxConcurrent:    *svMax,
				Queue:            *svQueue,
			})
			if err != nil {
				return nil, err
			}
			for _, arm := range report.Arms {
				for _, pt := range arm.Points {
					fmt.Printf("%-8s %4d conns  p50 %8.2f ms  p99 %8.2f ms  %6.1f q/s  (%d ok, %d shed, %d shares)\n",
						arm.Name, pt.Clients, pt.P50Ms, pt.P99Ms, pt.ThroughputQPS, pt.Completed, pt.Shed, pt.Shares)
				}
			}
			if err := harness.WriteServerJSON(*svOut, report); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *svOut)
			if *svAssert {
				if err := assertServerPayoff(report); err != nil {
					return nil, err
				}
			}
			return []harness.Figure{f}, nil
		})
	}

	if want("joinpar") {
		run("Join parallelism", func() ([]harness.Figure, error) {
			workers, err := parseIntList(*joinWorkers)
			if err != nil {
				return nil, err
			}
			if len(workers) == 0 {
				workers = []int{1, 2, 4, 8}
			}
			// One spindle per worker, as in the scan sweep: show the
			// engine's scaling rather than the device cap.
			joinSc := sc
			for _, w := range workers {
				if w > joinSc.Spindles {
					joinSc.Spindles = w
				}
			}
			env, err := harness.NewJoinEnv(joinSc, *joinRows)
			if err != nil {
				return nil, err
			}
			defer env.Close()
			f, err := harness.JoinParallelism(env, workers)
			return []harness.Figure{f}, err
		})
	}

	if want("api") {
		run("Public API overhead", func() ([]harness.Figure, error) {
			return apiFigure(*scanRows)
		})
	}

	if want("sqlmix") {
		run("SQL mix (declarative tpchmix)", func() ([]harness.Figure, error) {
			return sqlmixFigure(*mixFile, *mixClients, *mixQueries, *mixRows)
		})
	}

	if want("planshare") {
		run("Plan sharing (optimizer convergence)", func() ([]harness.Figure, error) {
			return planshareFigure(*mixRows, *noOpt, *planshareOut, *assertShare)
		})
	}

	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}

// apiFigure measures the public facade end to end — Open, name-resolved
// builder, per-query options, streaming iterator — against the same query
// submitted as a precompiled plan on the underlying engine, so a regression
// in the embeddable surface (resolution cost, Result indirection, iterator
// hand-off) shows up as a gap between the two rows.
func apiFigure(rows int) ([]harness.Figure, error) {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 256})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.CreateTable("t", qpipe.NewSchema(
		qpipe.ColDef("k", qpipe.KindInt),
		qpipe.ColDef("grp", qpipe.KindInt),
		qpipe.ColDef("val", qpipe.KindFloat),
	)); err != nil {
		return nil, err
	}
	data := make([]qpipe.Row, rows)
	for i := range data {
		data[i] = qpipe.R(i, i%64, float64(i%997))
	}
	if err := db.Load("t", data); err != nil {
		return nil, err
	}

	q := db.Scan("t").
		Filter(qpipe.Col("val").Lt(qpipe.Float(500))).
		GroupBy([]string{"grp"}, qpipe.Count().As("n"), qpipe.Sum(qpipe.Col("val")).As("s"))
	p, err := q.Plan()
	if err != nil {
		return nil, err
	}

	const iters = 20
	measure := func(exec func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := exec(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / iters, nil
	}
	viaBuilder, err := measure(func() error {
		res, err := q.Run(context.Background())
		if err != nil {
			return err
		}
		n := 0
		for range res.Rows() {
			n++
		}
		return res.Err()
	})
	if err != nil {
		return nil, err
	}
	viaEngine, err := measure(func() error {
		res, err := db.Engine().Query(context.Background(), p)
		if err != nil {
			return err
		}
		_, err = res.Discard()
		return err
	})
	if err != nil {
		return nil, err
	}

	f := harness.Figure{
		Name:   "api",
		Title:  fmt.Sprintf("Public API vs engine plans (%d rows, %d iters)", rows, iters),
		XLabel: "-", YLabel: "ms/query",
		Series: []harness.Series{
			{Label: "builder+Rows()", Points: []harness.Point{{X: 0, Y: float64(viaBuilder.Microseconds()) / 1000}}},
			{Label: "plan+Discard", Points: []harness.Point{{X: 0, Y: float64(viaEngine.Microseconds()) / 1000}}},
		},
	}
	return []harness.Figure{f}, nil
}

// sqlmixFigure runs a declarative SQL query mix (the embedded tpchmix, or
// a caller-supplied .sql file) with concurrent clients through db.Query,
// once with OSP and once with every query opted out — the full-workload
// experiment (paper §5.3) driven from SQL text instead of hand-built plans.
func sqlmixFigure(mixFile string, clients, perClient, rows int) ([]harness.Figure, error) {
	text := sqlmix.TPCHMix()
	if mixFile != "" {
		b, err := os.ReadFile(mixFile)
		if err != nil {
			return nil, err
		}
		text = string(b)
	}
	mix, err := sqlmix.Parse(text)
	if err != nil {
		return nil, err
	}

	db, err := qpipe.Open(qpipe.Options{PoolPages: 128})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := sqlmix.Populate(db, rows, rows/15+1); err != nil {
		return nil, err
	}
	if _, err := mix.Compile(db); err != nil {
		return nil, err
	}

	fmt.Printf("%d queries over %d clients, %d mix statements\n", clients*perClient, clients, len(mix.Queries))
	fmt.Printf("%-22s %12s %12s %10s\n", "system", "elapsed", "blocks read", "shares")
	f := harness.Figure{
		Name:   "sqlmix",
		Title:  fmt.Sprintf("Declarative SQL mix (%d clients x %d queries, %d rows)", clients, perClient, rows),
		XLabel: "-", YLabel: "ms",
	}
	for _, osp := range []bool{true, false} {
		name := "QPipe w/OSP"
		var extra []qpipe.QueryOption
		if !osp {
			name = "Baseline (WithoutOSP)"
			extra = append(extra, qpipe.WithoutOSP())
		}
		if err := db.DropCaches(); err != nil {
			return nil, err
		}
		db.SetDiskLatency(25*time.Microsecond, 40*time.Microsecond, 0)
		res, err := mix.Run(context.Background(), db, clients, perClient, extra...)
		db.SetDiskLatency(0, 0, 0)
		if err != nil {
			return nil, err
		}
		fmt.Printf("%-22s %12s %12d %10d\n", name, res.Elapsed.Round(time.Millisecond), res.BlocksRead, res.Shares)
		f.Series = append(f.Series, harness.Series{Label: name,
			Points: []harness.Point{{X: 0, Y: float64(res.Elapsed.Microseconds()) / 1000}}})
	}
	return []harness.Figure{f}, nil
}

// planshareArm is one system's row in the plan-sharing report.
type planshareArm struct {
	System        string  `json:"system"`
	Optimizer     bool    `json:"optimizer"`
	DistinctPlans int     `json:"distinct_plan_signatures"`
	Shares        int64   `json:"osp_shares"`
	BlocksRead    int64   `json:"blocks_read"`
	Rows          int64   `json:"result_rows"`
	ElapsedMs     float64 `json:"elapsed_ms"`
}

// planshareReport is the BENCH_PLANSHARE.json payload.
type planshareReport struct {
	Mix        string         `json:"mix"`
	Statements int            `json:"mix_statements"`
	Clients    int            `json:"clients"`
	PerClient  int            `json:"queries_per_client"`
	OrdersRows int            `json:"orders_rows"`
	Arms       []planshareArm `json:"arms"`
}

// planshareFigure runs the embedded planshare mix — every query written
// three equivalent ways — on two databases: one with the cost-based planner
// (normalize -> estimate -> reorder), one opened with DisableOptimizer (the
// -no-opt escape hatch). Each spelling is submitted exactly once, all
// concurrently (one client per statement), so no two clients ever run the
// same text: any sharing above the predicate-blind circular scans has to
// come from the planner folding the spellings to one signature. The gap in
// distinct signatures, share count and wall time is the figure, recorded in
// BENCH_PLANSHARE.json.
func planshareFigure(rows int, noOpt bool, outPath string, assertShare bool) ([]harness.Figure, error) {
	mix, err := sqlmix.Parse(sqlmix.PlanShareMix())
	if err != nil {
		return nil, err
	}
	clients, perClient := len(mix.Queries), 1

	report := planshareReport{
		Mix:        "planshare",
		Statements: len(mix.Queries),
		Clients:    clients,
		PerClient:  perClient,
		OrdersRows: rows,
	}
	arm := func(name string, optimize bool) (planshareArm, error) {
		db, err := qpipe.Open(qpipe.Options{PoolPages: 128, DisableOptimizer: !optimize})
		if err != nil {
			return planshareArm{}, err
		}
		defer db.Close()
		if err := sqlmix.Populate(db, rows, rows/15+1); err != nil {
			return planshareArm{}, err
		}
		sigs := make(map[string]bool)
		for _, text := range mix.Queries {
			q, err := db.Prepare(text)
			if err != nil {
				return planshareArm{}, err
			}
			p, err := q.Plan()
			if err != nil {
				return planshareArm{}, err
			}
			sigs[p.Signature()] = true
		}
		if err := db.DropCaches(); err != nil {
			return planshareArm{}, err
		}
		db.SetDiskLatency(25*time.Microsecond, 40*time.Microsecond, 0)
		res, err := mix.Run(context.Background(), db, clients, perClient)
		db.SetDiskLatency(0, 0, 0)
		if err != nil {
			return planshareArm{}, err
		}
		fmt.Printf("  %s shares by op: %v\n", name, db.Stats().SharesByOp)
		return planshareArm{
			System:        name,
			Optimizer:     optimize,
			DistinctPlans: len(sigs),
			Shares:        res.Shares,
			BlocksRead:    res.BlocksRead,
			Rows:          res.Rows,
			ElapsedMs:     float64(res.Elapsed.Microseconds()) / 1000,
		}, nil
	}

	fmt.Printf("%d queries over %d clients, %d mix statements (%d variant groups)\n",
		clients*perClient, clients, len(mix.Queries), len(mix.Queries)/3)
	fmt.Printf("%-24s %14s %10s %12s %12s\n", "system", "distinct plans", "shares", "blocks read", "elapsed")
	f := harness.Figure{
		Name:   "planshare",
		Title:  fmt.Sprintf("Plan sharing: cost-based planner vs literal lowering (%d clients x %d queries, %d rows)", clients, perClient, rows),
		XLabel: "-", YLabel: "ms",
	}
	first := "QPipe w/optimizer"
	if noOpt {
		first = "QPipe (-no-opt)" // escape hatch: both arms literal
	}
	for _, sys := range []struct {
		name     string
		optimize bool
	}{
		{first, !noOpt},
		{"Literal (-no-opt)", false},
	} {
		a, err := arm(sys.name, sys.optimize)
		if err != nil {
			return nil, err
		}
		report.Arms = append(report.Arms, a)
		fmt.Printf("%-24s %14d %10d %12d %9.0f ms\n", a.System, a.DistinctPlans, a.Shares, a.BlocksRead, a.ElapsedMs)
		f.Series = append(f.Series, harness.Series{Label: a.System,
			Points: []harness.Point{{X: 0, Y: a.ElapsedMs}}})
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s\n", outPath)

	if assertShare {
		opt, lit := report.Arms[0], report.Arms[1]
		switch {
		case opt.Shares <= 0:
			return nil, fmt.Errorf("planshare: optimized arm recorded no OSP shares")
		case opt.Shares <= lit.Shares:
			return nil, fmt.Errorf("planshare: optimized arm shares (%d) did not strictly improve on -no-opt (%d)", opt.Shares, lit.Shares)
		case opt.DistinctPlans >= lit.DistinctPlans:
			return nil, fmt.Errorf("planshare: optimized arm has %d distinct plans, expected fewer than -no-opt's %d", opt.DistinctPlans, lit.DistinctPlans)
		}
		fmt.Printf("assertshare ok: %d distinct plans (vs %d), %d shares (vs %d)\n",
			opt.DistinctPlans, lit.DistinctPlans, opt.Shares, lit.Shares)
	}
	return []harness.Figure{f}, nil
}

// assertServerPayoff enforces the server figure's acceptance bar: at the
// largest swept connection count — which must be at least 64, where the
// paper's concurrency story kicks in — the OSP arm shares strictly more
// and holds a strictly lower p99 than the opted-out arm.
func assertServerPayoff(report *harness.ServerReport) error {
	var on, off *harness.ServerPoint
	for i := range report.Arms {
		arm := &report.Arms[i]
		if len(arm.Points) == 0 {
			return fmt.Errorf("svassert: arm %s has no points", arm.Name)
		}
		last := &arm.Points[len(arm.Points)-1]
		if arm.OSP {
			on = last
		} else {
			off = last
		}
	}
	if on == nil || off == nil {
		return fmt.Errorf("svassert: report is missing an arm")
	}
	switch {
	case on.Clients < 64:
		return fmt.Errorf("svassert: largest swept count is %d connections, need >= 64", on.Clients)
	case on.Shares <= off.Shares:
		return fmt.Errorf("svassert: OSP shares (%d) did not beat the no-OSP arm (%d) at %d connections", on.Shares, off.Shares, on.Clients)
	case on.P99Ms >= off.P99Ms:
		return fmt.Errorf("svassert: OSP p99 (%.2f ms) did not beat the no-OSP arm (%.2f ms) at %d connections", on.P99Ms, off.P99Ms, on.Clients)
	}
	fmt.Printf("svassert ok at %d connections: %d shares (vs %d), p99 %.2f ms (vs %.2f ms)\n",
		on.Clients, on.Shares, off.Shares, on.P99Ms, off.P99Ms)
	return nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(name string, fn func() ([]harness.Figure, error)) {
	fmt.Printf("--- %s ---\n", name)
	start := time.Now()
	figs, err := fn()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
		os.Exit(1)
	}
	for _, f := range figs {
		fmt.Println(f.Format())
	}
	fmt.Printf("(%s in %s)\n\n", strings.ToLower(name), time.Since(start).Round(time.Millisecond))
}
