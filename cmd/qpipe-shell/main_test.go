package main

import "testing"

func TestStatementComplete(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"SELECT 1 FROM t;", true},
		{"SELECT 1 FROM t", false},
		{"SELECT 1 FROM t; -- done\n", true},
		{"SELECT 1 FROM t; /* done */", true},
		{"SELECT 1 FROM t; /* don't */", true}, // apostrophe inside comment
		{"SELECT 1 FROM t; -- don't\n", true},  // apostrophe inside line comment
		{"SELECT ';' FROM t", false},           // ';' inside a string
		{"SELECT ';' FROM t;", true},           //
		{"SELECT 'it''s' FROM t;", true},       // escaped quote
		{"SELECT 1 /* multi\nline */ FROM t;", true},
		{"SELECT 1 FROM t /* open", false},      // unterminated block comment
		{"SELECT 'open", false},                 // unterminated string
		{"INSERT INTO t VALUES (1);\n\n", true}, // trailing whitespace
	}
	for _, tc := range cases {
		if got := statementComplete(tc.in); got != tc.want {
			t.Errorf("statementComplete(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
