// qpipe-shell loads the scaled TPC-H dataset and runs one of the paper's
// queries on a chosen system, printing the plan, the first rows, and the
// engine's sharing statistics. Handy for poking at the engine without
// writing a program:
//
//	qpipe-shell -q 6                       # TPC-H Q6 on QPipe w/OSP
//	qpipe-shell -q 4 -system volcano       # Q4 on the iterator engine
//	qpipe-shell -q 8 -system baseline -sf 0.005 -concurrency 4
//	qpipe-shell -q 4 -variant mj -explain  # print the merge-join plan only
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"qpipe"
	"qpipe/internal/harness"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
	"qpipe/internal/workload/tpch"
)

func main() {
	qnum := flag.Int("q", 6, "TPC-H query number (1, 4, 6, 8, 12, 13, 14, 19)")
	system := flag.String("system", "qpipe", "system: qpipe, baseline, or volcano")
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	variant := flag.String("variant", "hj", "Q4 variant: hj (hash join) or mj (merge join)")
	concurrency := flag.Int("concurrency", 1, "concurrent instances (qgen-randomized params)")
	explainOnly := flag.Bool("explain", false, "print the plan and exit")
	maxRows := flag.Int("rows", 10, "result rows to print")
	seed := flag.Int64("seed", 1, "random seed for qgen parameters")
	stagger := flag.Duration("stagger", 20*time.Millisecond, "delay between concurrent instances (0 = simultaneous)")
	flag.Parse()

	mkPlan := func(p tpch.Params) plan.Node {
		if *qnum == 4 && *variant == "mj" {
			return tpch.Q4MergeJoin(p)
		}
		return tpch.Query(*qnum, p)
	}

	if *explainOnly {
		fmt.Print(qpipe.Explain(mkPlan(tpch.DefaultParams())))
		return
	}

	needClustered := *qnum == 4 && *variant == "mj"
	fmt.Printf("loading TPC-H SF=%g ...\n", *sf)
	sc := harness.SmallScale()
	sc.SF = *sf
	env, err := harness.NewTPCHEnv(sc, needClustered)
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	var sys harness.System
	switch *system {
	case "qpipe":
		sys, err = env.NewQPipe()
	case "baseline":
		sys, err = env.NewBaseline()
	case "volcano":
		sys, err = env.NewVolcano()
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	if err != nil {
		fatal(err)
	}

	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	env.Disk.ResetStats()

	fmt.Printf("\nplan (Q%d):\n%s\n", *qnum, qpipe.Explain(mkPlan(tpch.DefaultParams())))

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	var firstRows []tuple.Tuple
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		params := tpch.DefaultParams()
		if c > 0 {
			params = tpch.RandomParams(rng)
			if *stagger > 0 {
				time.Sleep(*stagger)
			}
		}
		wg.Add(1)
		go func(c int, p plan.Node) {
			defer wg.Done()
			if qs, ok := sys.(*harness.QPipeSystem); ok && c == 0 {
				res, err := qs.Eng.Query(context.Background(), p)
				if err != nil {
					fatal(err)
				}
				// Stream through the public iterator: rows are retained
				// beyond the loop (they are immutable and never recycled;
				// only the batch arrays go back to the engine's pool).
				var rows []tuple.Tuple
				for row := range res.Rows() {
					rows = append(rows, row)
				}
				if err := res.Err(); err != nil {
					fatal(err)
				}
				mu.Lock()
				firstRows = rows
				mu.Unlock()
				return
			}
			if err := sys.Exec(context.Background(), p); err != nil {
				fatal(err)
			}
		}(c, mkPlan(params))
	}
	wg.Wait()
	elapsed := time.Since(start)

	if firstRows != nil {
		fmt.Printf("results (%d rows", len(firstRows))
		if len(firstRows) > *maxRows {
			fmt.Printf(", first %d shown", *maxRows)
		}
		fmt.Println("):")
		for i, r := range firstRows {
			if i >= *maxRows {
				break
			}
			fmt.Println("  " + r.String())
		}
	}
	st := env.Disk.Stats()
	fmt.Printf("\n%d instance(s) on %s in %s\n", *concurrency, sys.Name(), elapsed.Round(time.Millisecond))
	fmt.Printf("disk: %d blocks read (%d sequential), %d written\n", st.Reads, st.SeqReads, st.Writes)
	if qs, ok := sys.(*harness.QPipeSystem); ok {
		est := qs.Eng.Stats()
		fmt.Printf("OSP shares by operator: %v\n", est.SharesByOp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qpipe-shell:", err)
	os.Exit(1)
}
