// qpipe-shell is an interactive SQL REPL over an embedded qpipe database:
// multi-line statements, \-meta commands, per-session SET mapping onto the
// per-query options, and script execution for declarative workloads.
//
//	qpipe-shell -demo                  # REPL over the tpchmix demo dataset
//	qpipe-shell -demo -f internal/workload/sqlmix/tpchmix.sql
//	qpipe-shell -c "SELECT 1 + 2 AS three FROM t"
//	qpipe-shell -connect localhost:5433  # same REPL against a qpipe-server
//
// With -connect the shell speaks the qpipe/wire protocol instead of
// embedding a database: statements execute server-side under the
// connection's session, and \stats shows the server's counters fetched
// over the wire.
//
//	qpipe> CREATE TABLE t (a INT, b TEXT);
//	qpipe> INSERT INTO t VALUES (1, 'x'), (2, 'y');
//	qpipe> SELECT a, b FROM t WHERE a > 1;
//	qpipe> EXPLAIN SELECT count(*) FROM t GROUP BY b;
//	qpipe> SET parallelism = 4;
//	qpipe> \timing
//	qpipe> \mix
//	qpipe> \q
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"qpipe"
	"qpipe/client"
	"qpipe/internal/workload/sqlmix"
	"qpipe/sql"
)

func main() {
	demo := flag.Bool("demo", false, "load the tpchmix demo dataset (orders/customers)")
	demoRows := flag.Int("rows", 60_000, "demo dataset: orders rows")
	demoCusts := flag.Int("customers", 4_000, "demo dataset: customers rows")
	script := flag.String("f", "", "execute a .sql script, then exit")
	command := flag.String("c", "", "execute one SQL statement, then exit")
	pool := flag.Int("pool", 1024, "buffer pool pages")
	timing := flag.Bool("timing", false, "start with \\timing on")
	connect := flag.String("connect", "", "connect to a qpipe-server at host:port instead of embedding a database")
	flag.Parse()

	sh := &shell{timing: *timing, out: os.Stdout}
	if *connect != "" {
		if *demo {
			fatal(fmt.Errorf("-demo is embedded-only; start qpipe-server -demo instead"))
		}
		conn, err := client.Connect(context.Background(), *connect)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		sh.remote = conn
		switch {
		case *command != "":
			if !sh.runScript(*command) {
				os.Exit(1)
			}
		case *script != "":
			text, err := os.ReadFile(*script)
			if err != nil {
				fatal(err)
			}
			if !sh.runScript(string(text)) {
				os.Exit(1)
			}
		default:
			fmt.Fprintf(sh.out, "connected to %s\n", *connect)
			sh.repl()
		}
		return
	}

	db, err := qpipe.Open(qpipe.Options{PoolPages: *pool})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	sh.db = db
	defer sh.sess.Close() // roll back an abandoned transaction on exit
	if *demo {
		fmt.Fprintf(sh.out, "loading demo dataset: %d orders, %d customers ...\n", *demoRows, *demoCusts)
		if err := sqlmix.Populate(db, *demoRows, *demoCusts); err != nil {
			fatal(err)
		}
	}

	switch {
	case *command != "":
		if !sh.runScript(*command) {
			os.Exit(1)
		}
	case *script != "":
		text, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if !sh.runScript(string(text)) {
			os.Exit(1)
		}
	default:
		sh.repl()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qpipe-shell:", err)
	os.Exit(1)
}

// shell holds the REPL's connection state: an embedded database OR a remote
// connection (exactly one is set), the session settings SQL SET adjusts,
// and the \timing toggle.
type shell struct {
	db     *qpipe.DB    // embedded mode
	remote *client.Conn // -connect mode
	sess   qpipe.Session
	timing bool
	out    *os.File
}

// repl reads statements from stdin: lines accumulate until a terminating
// ';' (strings respected), '\'-prefixed meta commands run immediately.
func (sh *shell) repl() {
	fmt.Fprintln(sh.out, "qpipe SQL shell — \\help for help, \\q to quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	for {
		prompt := "qpipe> "
		if buf.Len() > 0 {
			prompt = "  ...> "
		}
		fmt.Fprint(sh.out, prompt)
		if !scanner.Scan() {
			fmt.Fprintln(sh.out)
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !sh.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if statementComplete(buf.String()) {
			sh.runScript(buf.String())
			buf.Reset()
		}
	}
}

// statementComplete reports whether the buffered text ends with a
// statement-terminating ';': the last significant character outside string
// literals and '--'/'/* */' comments is a semicolon (comments and
// whitespace may trail it).
func statementComplete(text string) bool {
	inStr, inBlock := false, false
	last := byte(0)
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case inStr:
			if c == '\'' {
				inStr = false
			}
		case inBlock:
			if c == '*' && i+1 < len(text) && text[i+1] == '/' {
				inBlock = false
				i++
			}
		case c == '\'':
			inStr = true
			last = c
		case c == '-' && i+1 < len(text) && text[i+1] == '-': // line comment
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(text) && text[i+1] == '*':
			inBlock = true
			i++
		case c != ' ' && c != '\t' && c != '\n' && c != '\r':
			last = c
		}
	}
	return !inStr && !inBlock && last == ';'
}

// runScript parses and executes a ';'-separated script, reporting each
// statement's result. Returns false if any statement failed.
func (sh *shell) runScript(text string) bool {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return false
	}
	ok := true
	for _, stmt := range stmts {
		if err := sh.exec(stmt); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			ok = false
		}
	}
	return ok
}

// exec runs one parsed statement through the public API: SELECT/EXPLAIN via
// db.Query (with the session's options), everything else — DDL, INSERT,
// UPDATE/DELETE, BEGIN/COMMIT/ROLLBACK, SET — via db.ExecSession so the
// shell's session carries transactions exactly like a server connection.
func (sh *shell) exec(stmt sql.Statement) error {
	if sh.remote != nil {
		return sh.execRemote(stmt)
	}
	ctx := context.Background()
	start := time.Now()
	switch s := stmt.(type) {
	case *sql.Set:
		if err := sh.sess.Apply(s); err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "SET —", sh.sess.String())
		return nil
	case *sql.Explain:
		res, err := sh.db.Query(ctx, s.String(), sh.sess.Options()...)
		if err != nil {
			return err
		}
		rows, err := res.All()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintln(sh.out, r[0].S)
		}
		return nil
	case *sql.Select:
		if err := sh.sess.GuardQuery(s); err != nil {
			return err
		}
		res, err := sh.db.Query(ctx, s.String(), sh.sess.Options()...)
		if err != nil {
			return err
		}
		n, err := sh.printResult(res)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "(%d rows)\n", n)
		sh.reportTiming(start)
		return nil
	default:
		affected, err := sh.db.ExecSession(ctx, &sh.sess, stmt.String())
		if err != nil {
			return err
		}
		sh.reportExec(stmt, affected)
		sh.reportTiming(start)
		return nil
	}
}

// reportExec prints a mutation statement's tag the way psql does: the verb,
// plus the affected-row count where one is meaningful.
func (sh *shell) reportExec(stmt sql.Statement, affected int64) {
	switch stmt.(type) {
	case *sql.Insert:
		fmt.Fprintf(sh.out, "INSERT %d\n", affected)
	case *sql.Update:
		fmt.Fprintf(sh.out, "UPDATE %d\n", affected)
	case *sql.Delete:
		fmt.Fprintf(sh.out, "DELETE %d\n", affected)
	case *sql.Begin:
		fmt.Fprintln(sh.out, "BEGIN")
	case *sql.Commit:
		fmt.Fprintln(sh.out, "COMMIT")
	case *sql.Rollback:
		fmt.Fprintln(sh.out, "ROLLBACK")
	default:
		fmt.Fprintln(sh.out, "ok")
	}
}

// execRemote runs one parsed statement over the wire: SELECT/EXPLAIN via
// conn.Query, DDL/INSERT via conn.Exec. SET forwards to the server (its
// session owns execution) and mirrors into the local session so \set shows
// the settings without a round trip.
func (sh *shell) execRemote(stmt sql.Statement) error {
	ctx := context.Background()
	start := time.Now()
	switch s := stmt.(type) {
	case *sql.Set:
		if err := sh.sess.Apply(s); err != nil {
			return err
		}
		rows, err := sh.remote.Query(ctx, s.String())
		if err != nil {
			return err
		}
		if _, err := rows.Discard(); err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "SET —", sh.sess.String())
		return nil
	case *sql.Explain:
		rows, err := sh.remote.Query(ctx, s.String())
		if err != nil {
			return err
		}
		all, err := rows.All()
		if err != nil {
			return err
		}
		for _, r := range all {
			fmt.Fprintln(sh.out, r[0].S)
		}
		return nil
	case *sql.Select:
		rows, err := sh.remote.Query(ctx, s.String())
		if err != nil {
			return err
		}
		n, err := sh.printRemote(rows)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "(%d rows)\n", n)
		sh.reportTiming(start)
		return nil
	default:
		affected, err := sh.remote.Exec(ctx, stmt.String())
		if err != nil {
			return err
		}
		sh.reportExec(stmt, affected)
		sh.reportTiming(start)
		return nil
	}
}

// printRemote streams a remote result to the terminal, same rendering as
// printResult.
func (sh *shell) printRemote(rows *client.Rows) (int64, error) {
	if s := rows.Schema(); s != nil && s.Len() > 0 {
		names := make([]string, s.Len())
		for i, c := range s.Cols {
			names[i] = c.Name
		}
		header := strings.Join(names, " | ")
		fmt.Fprintln(sh.out, header)
		fmt.Fprintln(sh.out, strings.Repeat("-", len(header)))
	}
	var n int64
	for {
		b, err := rows.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		for _, row := range b {
			vals := make([]string, len(row))
			for i, v := range row {
				vals[i] = v.String()
			}
			fmt.Fprintln(sh.out, strings.Join(vals, " | "))
			n++
		}
	}
	return n, nil
}

// printResult streams a result to the terminal with a header row from the
// result schema.
func (sh *shell) printResult(res *qpipe.Result) (int64, error) {
	if s := res.Schema(); s != nil {
		names := make([]string, s.Len())
		for i, c := range s.Cols {
			names[i] = c.Name
		}
		header := strings.Join(names, " | ")
		fmt.Fprintln(sh.out, header)
		fmt.Fprintln(sh.out, strings.Repeat("-", len(header)))
	}
	var n int64
	for row := range res.Rows() {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = v.String()
		}
		fmt.Fprintln(sh.out, strings.Join(vals, " | "))
		n++
	}
	return n, res.Err()
}

func (sh *shell) reportTiming(start time.Time) {
	if sh.timing {
		fmt.Fprintf(sh.out, "Time: %s\n", time.Since(start).Round(10*time.Microsecond))
	}
}

// meta handles '\'-commands. Returns false to quit.
func (sh *shell) meta(line string) bool {
	cmd, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSpace(arg)
	switch cmd {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		sh.timing = !sh.timing
		fmt.Fprintf(sh.out, "Timing is %s.\n", onOff(sh.timing))
	case "\\set":
		fmt.Fprintln(sh.out, sh.sess.String())
	case "\\d":
		if sh.remote != nil {
			fmt.Fprintln(sh.out, "\\d is not available over -connect (catalog lives server-side)")
			break
		}
		if arg == "" {
			for _, t := range sh.db.Tables() {
				fmt.Fprintln(sh.out, t)
			}
			break
		}
		schema, err := sh.db.Schema(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		pages, _ := sh.db.TablePages(arg)
		fmt.Fprintf(sh.out, "%s %s (%d pages)\n", arg, schema.String(), pages)
		if ts, err := sh.db.TableStats(arg); err == nil {
			fmt.Fprintf(sh.out, "stats: %d rows\n", ts.Rows)
			for _, c := range ts.Columns {
				if c.Distinct == 0 {
					fmt.Fprintf(sh.out, "  %-12s (no data)\n", c.Column)
					continue
				}
				fmt.Fprintf(sh.out, "  %-12s min=%s max=%s distinct≈%d\n", c.Column, c.Min, c.Max, c.Distinct)
			}
		}
	case "\\i":
		if arg == "" {
			fmt.Fprintln(sh.out, "usage: \\i FILE")
			break
		}
		text, err := os.ReadFile(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		sh.runScript(string(text))
	case "\\mix":
		if sh.remote != nil {
			fmt.Fprintln(sh.out, "\\mix is embedded-only; drive a server with qpipe-bench -fig server")
			break
		}
		sh.runMix()
	case "\\stats":
		if sh.remote != nil {
			sh.remoteStats()
			break
		}
		st := sh.db.Stats()
		fmt.Fprintf(sh.out, "queries: %d  OSP shares by operator: %v\n", st.Queries, st.SharesByOp)
		fmt.Fprintf(sh.out, "governance: %d in flight, %d queued, %d shed, %d statement timeouts, %d panics quarantined\n",
			st.InFlight, st.AdmissionQueued, st.Shed, st.DeadlineTimeouts, st.Panics)
		d := sh.db.DiskStats()
		fmt.Fprintf(sh.out, "disk: %d blocks read (%d sequential), %d written\n", d.Reads, d.SeqReads, d.Writes)
	case "\\help":
		fmt.Fprint(sh.out, `statements end with ';' (multi-line input is fine):
  SELECT ... / EXPLAIN SELECT ...      query (through db.Query)
  CREATE TABLE / CREATE INDEX / INSERT DDL and loading
  UPDATE ... / DELETE FROM ...         transactional mutations
  BEGIN; ...; COMMIT | ROLLBACK        multi-statement transactions
  ANALYZE [table]                      rebuild planner statistics
  SET parallelism|batch_size|osp = v   session options for later queries
  SET statement_timeout = '500ms'      per-query deadline (0 turns it off)
meta commands:
  \d [table]   list tables / show a table's schema and statistics
  \i FILE      run a .sql script
  \mix         run the embedded tpchmix query mix (needs -demo tables)
  \set         show session settings
  \stats       engine and disk counters
  \timing      toggle per-statement timing
  \q           quit
`)
	default:
		fmt.Fprintf(sh.out, "unknown command %s (try \\help)\n", cmd)
	}
	return true
}

// runMix executes the embedded tpchmix SQL mix with a few concurrent
// clients, showing the OSP sharing the mix exists to demonstrate.
func (sh *shell) runMix() {
	m, err := sqlmix.Parse(sqlmix.TPCHMix())
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if _, err := m.Compile(sh.db); err != nil {
		fmt.Fprintln(sh.out, "error:", err, "(run with -demo to load the dataset)")
		return
	}
	const clients, perClient = 6, 2
	fmt.Fprintf(sh.out, "running %d queries: %d clients x %d ...\n", clients*perClient, clients, perClient)
	res, err := m.Run(context.Background(), sh.db, clients, perClient, sh.sess.Options()...)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	fmt.Fprintf(sh.out, "%d queries, %d rows in %s — %d blocks read, %d OSP shares\n",
		res.Queries, res.Rows, res.Elapsed.Round(time.Millisecond), res.BlocksRead, res.Shares)
}

// remoteStats fetches and prints the server's counters over the wire.
func (sh *shell) remoteStats() {
	stats, err := sh.remote.Stats(context.Background())
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(sh.out, "server counters:")
	for _, name := range names {
		fmt.Fprintf(sh.out, "  %-20s %d\n", name, stats[name])
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
