// Package volcano implements a conventional "one-query, many-operators"
// iterator-model execution engine (Graefe's Volcano [15], the design the
// paper's §4.1 describes) over the same storage manager as QPipe. It stands
// in for the unnamed commercial "DBMS X" in the experiments: queries
// execute independently in their caller's goroutine, share nothing but the
// buffer pool, and evaluate plans tuple-at-a-time through Open/Next/Close
// iterators.
//
// Per the paper's observation that X's buffer pool shared better than
// BerkeleyDB's LRU, the harness configures this engine's pool with a
// scan-resistant policy (2Q) — see DESIGN.md §5.
package volcano

import (
	"context"
	"fmt"
	"sort"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/lock"
	"qpipe/internal/storage/page"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// Iterator is the classic Volcano operator interface.
type Iterator interface {
	// Open prepares the iterator (recursively opening children).
	Open() error
	// Next produces the next tuple; ok=false at end of stream.
	Next() (tuple.Tuple, bool, error)
	// Close releases resources (recursively).
	Close() error
}

// Engine executes plans iterator-style, one query per calling goroutine.
type Engine struct {
	SM *sm.Manager
}

// New creates a Volcano engine over the storage manager.
func New(mgr *sm.Manager) *Engine { return &Engine{SM: mgr} }

// Build compiles a plan into an iterator tree.
func (e *Engine) Build(ctx context.Context, p plan.Node) (Iterator, error) {
	switch n := p.(type) {
	case *plan.TableScan:
		tb, err := e.SM.Table(n.Table)
		if err != nil {
			return nil, err
		}
		return &scanIter{ctx: ctx, eng: e, tb: tb, node: n}, nil
	case *plan.IndexScan:
		tb, err := e.SM.Table(n.Table)
		if err != nil {
			return nil, err
		}
		return &indexIter{ctx: ctx, eng: e, tb: tb, node: n}, nil
	case *plan.Filter:
		child, err := e.Build(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return &filterIter{child: child, pred: n.Pred}, nil
	case *plan.Project:
		child, err := e.Build(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return &projectIter{child: child, exprs: n.Exprs}, nil
	case *plan.Sort:
		child, err := e.Build(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return &sortIter{eng: e, child: child, keys: n.Keys, desc: n.Desc, ncols: n.Schema().Len()}, nil
	case *plan.MergeJoin:
		l, err := e.Build(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.Build(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return &mergeJoinIter{l: l, r: r, lkey: n.LKey, rkey: n.RKey}, nil
	case *plan.HashJoin:
		l, err := e.Build(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.Build(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return &hashJoinIter{build: l, probe: r, lkey: n.LKey, rkey: n.RKey}, nil
	case *plan.NLJoin:
		l, err := e.Build(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.Build(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return &nlJoinIter{outer: l, inner: r, pred: n.Pred}, nil
	case *plan.Aggregate:
		child, err := e.Build(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return &aggIter{child: child, specs: n.Specs}, nil
	case *plan.GroupBy:
		child, err := e.Build(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return &groupByIter{child: child, keys: n.Keys, specs: n.Specs}, nil
	case *plan.Update:
		return &updateIter{ctx: ctx, eng: e, node: n}, nil
	default:
		return nil, fmt.Errorf("volcano: unsupported node %T", p)
	}
}

// Run executes the plan, returning all result tuples.
func (e *Engine) Run(ctx context.Context, p plan.Node) ([]tuple.Tuple, error) {
	it, err := e.Build(ctx, p)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	var out []tuple.Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			it.Close()
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out, it.Close()
}

// RunDiscard executes the plan, discarding results (the experiments' mode)
// and returning the row count.
func (e *Engine) RunDiscard(ctx context.Context, p plan.Node) (int64, error) {
	it, err := e.Build(ctx, p)
	if err != nil {
		return 0, err
	}
	if err := it.Open(); err != nil {
		it.Close()
		return 0, err
	}
	var n int64
	for {
		_, ok, err := it.Next()
		if err != nil {
			it.Close()
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	return n, it.Close()
}

// ---- Scans ------------------------------------------------------------------

type scanIter struct {
	ctx    context.Context
	eng    *Engine
	tb     *sm.Table
	node   *plan.TableScan
	pno    int64
	npages int64
	batch  []tuple.Tuple
	i      int
	locked bool
}

func (s *scanIter) Open() error {
	if err := s.eng.SM.Locks.Lock(s.ctx, s.node.Table, lock.Shared); err != nil {
		return err
	}
	s.locked = true
	s.npages = s.tb.Heap.NumPages()
	s.pno, s.i, s.batch = 0, 0, nil
	return nil
}

func (s *scanIter) Next() (tuple.Tuple, bool, error) {
	for {
		for s.i < len(s.batch) {
			t := s.batch[s.i]
			s.i++
			if s.node.Filter != nil && !s.node.Filter.Test(t) {
				continue
			}
			if s.node.Project != nil {
				t = t.Project(s.node.Project)
			}
			return t, true, nil
		}
		if s.pno >= s.npages {
			return nil, false, nil
		}
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
		rows, err := s.tb.Heap.ReadPage(s.pno)
		if err != nil {
			return nil, false, err
		}
		s.pno++
		s.batch, s.i = rows, 0
	}
}

func (s *scanIter) Close() error {
	if s.locked {
		s.eng.SM.Locks.Unlock(s.node.Table, lock.Shared)
		s.locked = false
	}
	return nil
}

type indexIter struct {
	ctx  context.Context
	eng  *Engine
	tb   *sm.Table
	node *plan.IndexScan

	rows   []tuple.Tuple
	i      int
	locked bool
}

func (s *indexIter) Open() error {
	if err := s.eng.SM.Locks.Lock(s.ctx, s.node.Table, lock.Shared); err != nil {
		return err
	}
	s.locked = true
	s.rows, s.i = nil, 0
	n := s.node
	ncols := s.tb.Schema.Len()
	if n.Clustered {
		tr := s.tb.Clustered
		if tr == nil {
			return fmt.Errorf("volcano: no clustered index on %q", n.Table)
		}
		var derr error
		err := tr.Range(n.Lo, n.Hi, func(_ tuple.Value, payload []byte) bool {
			row, _, e := tuple.Decode(payload, ncols)
			if e != nil {
				derr = e
				return false
			}
			s.rows = append(s.rows, row)
			return true
		})
		if err != nil {
			return err
		}
		return derr
	}
	tr := s.tb.Unclustered[n.Col]
	if tr == nil {
		return fmt.Errorf("volcano: no unclustered index on %q.%q", n.Table, n.Col)
	}
	var rids []struct {
		page int64
		slot int
	}
	var derr error
	err := tr.Range(n.Lo, n.Hi, func(_ tuple.Value, payload []byte) bool {
		rid, e := sm.DecodeRID(payload)
		if e != nil {
			derr = e
			return false
		}
		rids = append(rids, struct {
			page int64
			slot int
		}{rid.Page, rid.Slot})
		return true
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	if !n.Ordered {
		sort.Slice(rids, func(i, j int) bool {
			if rids[i].page != rids[j].page {
				return rids[i].page < rids[j].page
			}
			return rids[i].slot < rids[j].slot
		})
	}
	var pageRows []tuple.Tuple
	lastPage := int64(-1)
	for _, rid := range rids {
		if rid.page != lastPage {
			pr, err := s.tb.Heap.ReadPage(rid.page)
			if err != nil {
				return err
			}
			pageRows, lastPage = pr, rid.page
		}
		s.rows = append(s.rows, pageRows[rid.slot])
	}
	return nil
}

func (s *indexIter) Next() (tuple.Tuple, bool, error) {
	n := s.node
	for s.i < len(s.rows) {
		t := s.rows[s.i]
		s.i++
		if n.Filter != nil && !n.Filter.Test(t) {
			continue
		}
		if n.Project != nil {
			t = t.Project(n.Project)
		}
		return t, true, nil
	}
	return nil, false, nil
}

func (s *indexIter) Close() error {
	if s.locked {
		s.eng.SM.Locks.Unlock(s.node.Table, lock.Shared)
		s.locked = false
	}
	s.rows = nil
	return nil
}

// ---- Unary ------------------------------------------------------------------

type filterIter struct {
	child Iterator
	pred  expr.Pred
}

func (f *filterIter) Open() error { return f.child.Open() }

func (f *filterIter) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.pred.Test(t) {
			return t, true, nil
		}
	}
}

func (f *filterIter) Close() error { return f.child.Close() }

type projectIter struct {
	child Iterator
	exprs []expr.Expr
}

func (p *projectIter) Open() error { return p.child.Open() }

func (p *projectIter) Next() (tuple.Tuple, bool, error) {
	t, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(tuple.Tuple, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = e.Eval(t)
	}
	return out, true, nil
}

func (p *projectIter) Close() error { return p.child.Close() }

// sortIter is an external sort: it materializes the sorted result to a
// temp spill file and streams it back, charging the same write+read I/O
// QPipe's sort µEngine pays — keeping the two engines' cost models
// comparable (both the paper's systems did disk-based sorts).
type sortIter struct {
	eng   *Engine
	child Iterator
	keys  []int
	desc  bool

	file   string
	ncols  int
	pno    int64
	npages int64
	batch  []tuple.Tuple
	i      int
}

func (s *sortIter) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	var rows []tuple.Tuple
	for {
		t, ok, err := s.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rows = append(rows, t)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		c := tuple.CompareAt(rows[i], rows[j], s.keys)
		if s.desc {
			return c > 0
		}
		return c < 0
	})
	// Materialize the sorted run and stream it back from "disk".
	s.file = s.eng.SM.TempName("vsort")
	d := s.eng.SM.Disk
	d.Create(s.file)
	pg := page.New(d.BlockSize())
	var enc []byte
	for _, t := range rows {
		if len(t) > s.ncols {
			s.ncols = len(t)
		}
		enc = t.Encode(enc[:0])
		if !pg.HasRoomFor(len(enc)) {
			if _, err := d.Append(s.file, pg.Bytes()); err != nil {
				return err
			}
			pg = page.New(d.BlockSize())
		}
		if _, err := pg.Insert(enc); err != nil {
			return fmt.Errorf("volcano: sort tuple exceeds page: %w", err)
		}
	}
	if pg.NumSlots() > 0 {
		if _, err := d.Append(s.file, pg.Bytes()); err != nil {
			return err
		}
	}
	s.npages = int64(d.NumBlocks(s.file))
	s.pno, s.i, s.batch = 0, 0, nil
	return nil
}

func (s *sortIter) Next() (tuple.Tuple, bool, error) {
	for {
		if s.i < len(s.batch) {
			t := s.batch[s.i]
			s.i++
			return t, true, nil
		}
		if s.pno >= s.npages {
			return nil, false, nil
		}
		raw, err := s.eng.SM.Disk.Read(s.file, s.pno)
		if err != nil {
			return nil, false, err
		}
		s.pno++
		s.batch, err = page.FromBytes(raw).Tuples(s.ncols)
		if err != nil {
			return nil, false, err
		}
		s.i = 0
	}
}

func (s *sortIter) Close() error {
	if s.file != "" {
		s.eng.SM.DropTemp(s.file)
		s.file = ""
	}
	return s.child.Close()
}

// ---- Joins ------------------------------------------------------------------

type mergeJoinIter struct {
	l, r       Iterator
	lkey, rkey int

	lt, rt   tuple.Tuple
	lok, rok bool
	lg, rg   []tuple.Tuple
	gi, gj   int
	primed   bool
}

func (m *mergeJoinIter) Open() error {
	if err := m.l.Open(); err != nil {
		return err
	}
	return m.r.Open()
}

func (m *mergeJoinIter) advanceL() error {
	t, ok, err := m.l.Next()
	m.lt, m.lok = t, ok
	return err
}

func (m *mergeJoinIter) advanceR() error {
	t, ok, err := m.r.Next()
	m.rt, m.rok = t, ok
	return err
}

func (m *mergeJoinIter) Next() (tuple.Tuple, bool, error) {
	if !m.primed {
		if err := m.advanceL(); err != nil {
			return nil, false, err
		}
		if err := m.advanceR(); err != nil {
			return nil, false, err
		}
		m.primed = true
	}
	for {
		// Emit pending cross-product of the current duplicate groups.
		if m.gi < len(m.lg) {
			t := tuple.Concat(m.lg[m.gi], m.rg[m.gj])
			m.gj++
			if m.gj >= len(m.rg) {
				m.gj = 0
				m.gi++
			}
			return t, true, nil
		}
		if !m.lok || !m.rok {
			return nil, false, nil
		}
		c := tuple.Compare(m.lt[m.lkey], m.rt[m.rkey])
		if c < 0 {
			if err := m.advanceL(); err != nil {
				return nil, false, err
			}
			continue
		}
		if c > 0 {
			if err := m.advanceR(); err != nil {
				return nil, false, err
			}
			continue
		}
		key := m.lt[m.lkey]
		m.lg, m.rg = nil, nil
		for m.lok && tuple.Equal(m.lt[m.lkey], key) {
			m.lg = append(m.lg, m.lt)
			if err := m.advanceL(); err != nil {
				return nil, false, err
			}
		}
		for m.rok && tuple.Equal(m.rt[m.rkey], key) {
			m.rg = append(m.rg, m.rt)
			if err := m.advanceR(); err != nil {
				return nil, false, err
			}
		}
		m.gi, m.gj = 0, 0
	}
}

func (m *mergeJoinIter) Close() error {
	err1 := m.l.Close()
	err2 := m.r.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

type hashJoinIter struct {
	build, probe Iterator
	lkey, rkey   int

	table   map[uint64][]tuple.Tuple
	pending []tuple.Tuple
	pi      int
}

func (h *hashJoinIter) Open() error {
	if err := h.build.Open(); err != nil {
		return err
	}
	if err := h.probe.Open(); err != nil {
		return err
	}
	h.table = make(map[uint64][]tuple.Tuple)
	for {
		t, ok, err := h.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := tuple.Hash1(t, h.lkey)
		h.table[k] = append(h.table[k], t)
	}
	return nil
}

func (h *hashJoinIter) Next() (tuple.Tuple, bool, error) {
	for {
		if h.pi < len(h.pending) {
			t := h.pending[h.pi]
			h.pi++
			return t, true, nil
		}
		t, ok, err := h.probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := tuple.Hash1(t, h.rkey)
		h.pending, h.pi = nil, 0
		for _, b := range h.table[k] {
			if tuple.Equal(b[h.lkey], t[h.rkey]) {
				h.pending = append(h.pending, tuple.Concat(b, t))
			}
		}
	}
}

func (h *hashJoinIter) Close() error {
	h.table = nil
	err1 := h.build.Close()
	err2 := h.probe.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

type nlJoinIter struct {
	outer, inner Iterator
	pred         expr.Pred

	innerRows []tuple.Tuple
	cur       tuple.Tuple
	ii        int
	haveOuter bool
}

func (n *nlJoinIter) Open() error {
	if err := n.outer.Open(); err != nil {
		return err
	}
	if err := n.inner.Open(); err != nil {
		return err
	}
	for {
		t, ok, err := n.inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n.innerRows = append(n.innerRows, t)
	}
	return nil
}

func (n *nlJoinIter) Next() (tuple.Tuple, bool, error) {
	for {
		if !n.haveOuter {
			t, ok, err := n.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur, n.haveOuter, n.ii = t, true, 0
		}
		for n.ii < len(n.innerRows) {
			joined := tuple.Concat(n.cur, n.innerRows[n.ii])
			n.ii++
			if n.pred == nil || n.pred.Test(joined) {
				return joined, true, nil
			}
		}
		n.haveOuter = false
	}
}

func (n *nlJoinIter) Close() error {
	n.innerRows = nil
	err1 := n.outer.Close()
	err2 := n.inner.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ---- Aggregation -------------------------------------------------------------

type aggIter struct {
	child Iterator
	specs []expr.AggSpec
	row   tuple.Tuple
	done  bool
}

func (a *aggIter) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	states := make([]*expr.AggState, len(a.specs))
	for i, s := range a.specs {
		states[i] = expr.NewAggState(s)
	}
	for {
		t, ok, err := a.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, st := range states {
			st.Add(t)
		}
	}
	a.row = make(tuple.Tuple, len(states))
	for i, st := range states {
		a.row[i] = st.Result()
	}
	a.done = false
	return nil
}

func (a *aggIter) Next() (tuple.Tuple, bool, error) {
	if a.done {
		return nil, false, nil
	}
	a.done = true
	return a.row, true, nil
}

func (a *aggIter) Close() error { return a.child.Close() }

type groupByIter struct {
	child Iterator
	keys  []int
	specs []expr.AggSpec
	rows  []tuple.Tuple
	i     int
}

func (g *groupByIter) Open() error {
	if err := g.child.Open(); err != nil {
		return err
	}
	type group struct {
		key    tuple.Tuple
		states []*expr.AggState
	}
	groups := make(map[uint64][]*group)
	for {
		t, ok, err := g.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h := tuple.HashAt(t, g.keys)
		var grp *group
		for _, cand := range groups[h] {
			match := true
			for i, k := range g.keys {
				if !tuple.Equal(cand.key[i], t[k]) {
					match = false
					break
				}
			}
			if match {
				grp = cand
				break
			}
		}
		if grp == nil {
			grp = &group{key: t.Project(g.keys), states: make([]*expr.AggState, len(g.specs))}
			for i, s := range g.specs {
				grp.states[i] = expr.NewAggState(s)
			}
			groups[h] = append(groups[h], grp)
		}
		for _, st := range grp.states {
			st.Add(t)
		}
	}
	g.rows, g.i = nil, 0
	for _, bucket := range groups {
		for _, grp := range bucket {
			row := make(tuple.Tuple, 0, len(grp.key)+len(grp.states))
			row = append(row, grp.key...)
			for _, st := range grp.states {
				row = append(row, st.Result())
			}
			g.rows = append(g.rows, row)
		}
	}
	return nil
}

func (g *groupByIter) Next() (tuple.Tuple, bool, error) {
	if g.i >= len(g.rows) {
		return nil, false, nil
	}
	t := g.rows[g.i]
	g.i++
	return t, true, nil
}

func (g *groupByIter) Close() error {
	g.rows = nil
	return g.child.Close()
}

// ---- Update ------------------------------------------------------------------

type updateIter struct {
	ctx  context.Context
	eng  *Engine
	node *plan.Update
	done bool
}

func (u *updateIter) Open() error { return nil }

func (u *updateIter) Next() (tuple.Tuple, bool, error) {
	if u.done {
		return nil, false, nil
	}
	u.done = true
	// One storage-manager transaction for the whole row set: staging takes
	// the table X lock at first touch and Commit releases it, so the rows
	// land atomically. (Locking externally and calling SM.Insert per row
	// would self-deadlock — Insert is itself an autocommit transaction.)
	tx := u.eng.SM.Begin()
	for _, row := range u.node.Rows {
		if err := tx.StageInsert(u.ctx, u.node.Table, row); err != nil {
			tx.Rollback()
			return nil, false, err
		}
	}
	if err := tx.Commit(u.ctx); err != nil {
		return nil, false, err
	}
	return tuple.Tuple{tuple.I64(int64(len(u.node.Rows)))}, true, nil
}

func (u *updateIter) Close() error { return nil }
