package volcano

import (
	"context"
	"fmt"
	"testing"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func schema3() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("k", tuple.KindInt),
		tuple.Col("g", tuple.KindInt),
		tuple.Col("v", tuple.KindFloat),
	)
}

func newEngine(t *testing.T, n int) *Engine {
	t.Helper()
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 32})
	if _, err := mgr.CreateTable("t", schema3()); err != nil {
		t.Fatal(err)
	}
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.I64(int64(i)), tuple.I64(int64(i % 5)), tuple.F64(float64(i) / 4)}
	}
	if err := mgr.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	return New(mgr)
}

func TestScanFilterProject(t *testing.T) {
	e := newEngine(t, 200)
	scan := plan.NewTableScan("t", schema3(), expr.LT(expr.Col(0), expr.CInt(10)), []int{0}, false)
	rows, err := e.Run(context.Background(), scan)
	if err != nil || len(rows) != 10 {
		t.Fatalf("scan: %d %v", len(rows), err)
	}
	f := plan.NewFilter(plan.NewTableScan("t", schema3(), nil, nil, false),
		expr.GE(expr.Col(0), expr.CInt(195)))
	rows, err = e.Run(context.Background(), f)
	if err != nil || len(rows) != 5 {
		t.Fatalf("filter node: %d %v", len(rows), err)
	}
	p := plan.NewProject(f, []expr.Expr{expr.Add(expr.Col(0), expr.CInt(1))}, []string{"k1"})
	rows, err = e.Run(context.Background(), p)
	if err != nil || len(rows) != 5 || rows[0][0].I != 196 {
		t.Fatalf("project: %v %v", rows, err)
	}
}

func TestSortSpillsAndOrders(t *testing.T) {
	e := newEngine(t, 500)
	d := e.SM.Disk
	writesBefore := d.Stats().Writes
	srt := plan.NewSort(plan.NewTableScan("t", schema3(), nil, nil, false), []int{2}, false)
	rows, err := e.Run(context.Background(), srt)
	if err != nil || len(rows) != 500 {
		t.Fatalf("sort: %d %v", len(rows), err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][2].F > rows[i][2].F {
			t.Fatalf("unsorted at %d", i)
		}
	}
	if d.Stats().Writes == writesBefore {
		t.Fatal("external sort should spill to disk")
	}
	// Descending.
	srtD := plan.NewSort(plan.NewTableScan("t", schema3(), nil, nil, false), []int{0}, true)
	rows, _ = e.Run(context.Background(), srtD)
	if rows[0][0].I != 499 {
		t.Fatalf("descending: %v", rows[0])
	}
}

func TestJoins(t *testing.T) {
	e := newEngine(t, 50)
	l := plan.NewTableScan("t", schema3(), nil, []int{1, 0}, false)
	r := plan.NewTableScan("t", schema3(), nil, []int{1, 2}, false)
	// Hash join on g: 5 groups of 10 -> 500 rows.
	hj := plan.NewHashJoin(l, r, 0, 0)
	n, err := e.RunDiscard(context.Background(), hj)
	if err != nil || n != 500 {
		t.Fatalf("hash join: %d %v", n, err)
	}
	// Merge join over sorted inputs.
	mj := plan.NewMergeJoin(plan.NewSort(l, []int{0}, false), plan.NewSort(r, []int{0}, false), 0, 0, false)
	n, err = e.RunDiscard(context.Background(), mj)
	if err != nil || n != 500 {
		t.Fatalf("merge join: %d %v", n, err)
	}
	// NL join with a < predicate.
	small := plan.NewTableScan("t", schema3(), expr.LT(expr.Col(0), expr.CInt(4)), []int{0}, false)
	nl := plan.NewNLJoin(small, small, expr.LT(expr.Col(0), expr.Col(1)))
	n, err = e.RunDiscard(context.Background(), nl)
	if err != nil || n != 6 {
		t.Fatalf("nl join: %d %v", n, err)
	}
}

func TestAggregates(t *testing.T) {
	e := newEngine(t, 100)
	scan := plan.NewTableScan("t", schema3(), nil, nil, false)
	agg := plan.NewAggregate(scan, []expr.AggSpec{
		{Kind: expr.AggCount},
		{Kind: expr.AggSum, Arg: expr.Col(0)},
		{Kind: expr.AggAvg, Arg: expr.Col(0)},
	})
	rows, err := e.Run(context.Background(), agg)
	if err != nil || len(rows) != 1 {
		t.Fatalf("agg: %v %v", rows, err)
	}
	if rows[0][0].I != 100 || rows[0][1].F != 4950 || rows[0][2].F != 49.5 {
		t.Fatalf("agg values: %v", rows[0])
	}
	gb := plan.NewGroupBy(scan, []int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
	rows, err = e.Run(context.Background(), gb)
	if err != nil || len(rows) != 5 {
		t.Fatalf("groupby: %d %v", len(rows), err)
	}
	for _, r := range rows {
		if r[1].I != 20 {
			t.Fatalf("group size: %v", r)
		}
	}
}

func TestIndexScans(t *testing.T) {
	e := newEngine(t, 300)
	if err := e.SM.BuildClustered("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := e.SM.BuildUnclustered("t", "g"); err != nil {
		t.Fatal(err)
	}
	ci := plan.NewIndexScan("t", schema3(), "k", tuple.I64(50), tuple.I64(59), true, true, nil, nil)
	rows, err := e.Run(context.Background(), ci)
	if err != nil || len(rows) != 10 {
		t.Fatalf("clustered: %d %v", len(rows), err)
	}
	ui := plan.NewIndexScan("t", schema3(), "g", tuple.I64(2), tuple.I64(2), false, false, nil, nil)
	rows, err = e.Run(context.Background(), ui)
	if err != nil || len(rows) != 60 {
		t.Fatalf("unclustered: %d %v", len(rows), err)
	}
	for _, r := range rows {
		if r[1].I != 2 {
			t.Fatalf("wrong group: %v", r)
		}
	}
}

func TestUpdate(t *testing.T) {
	e := newEngine(t, 10)
	up := plan.NewUpdate("t", []tuple.Tuple{{tuple.I64(100), tuple.I64(0), tuple.F64(0)}})
	rows, err := e.Run(context.Background(), up)
	if err != nil || rows[0][0].I != 1 {
		t.Fatalf("update: %v %v", rows, err)
	}
	n, err := e.RunDiscard(context.Background(), plan.NewTableScan("t", schema3(), nil, nil, false))
	if err != nil || n != 11 {
		t.Fatalf("count after update: %d %v", n, err)
	}
}

func TestContextCancellation(t *testing.T) {
	e := newEngine(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunDiscard(ctx, plan.NewTableScan("t", schema3(), nil, nil, false)); err == nil {
		t.Fatal("cancelled context should abort scan")
	}
}

func TestErrors(t *testing.T) {
	e := newEngine(t, 10)
	if _, err := e.Run(context.Background(), plan.NewTableScan("missing", schema3(), nil, nil, false)); err == nil {
		t.Fatal("missing table should error")
	}
	ci := plan.NewIndexScan("t", schema3(), "k", tuple.Value{}, tuple.Value{}, true, true, nil, nil)
	if _, err := e.Run(context.Background(), ci); err == nil {
		t.Fatal("missing clustered index should error")
	}
	ui := plan.NewIndexScan("t", schema3(), "g", tuple.Value{}, tuple.Value{}, false, false, nil, nil)
	if _, err := e.Run(context.Background(), ui); err == nil {
		t.Fatal("missing unclustered index should error")
	}
}

func TestRunDiscardCounts(t *testing.T) {
	e := newEngine(t, 77)
	n, err := e.RunDiscard(context.Background(), plan.NewTableScan("t", schema3(), nil, nil, false))
	if err != nil || n != 77 {
		t.Fatalf("discard count: %d %v", n, err)
	}
}

func TestManyConcurrentQueries(t *testing.T) {
	e := newEngine(t, 500)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			p := plan.NewAggregate(
				plan.NewTableScan("t", schema3(), expr.GE(expr.Col(0), expr.CInt(int64(i))), nil, false),
				[]expr.AggSpec{{Kind: expr.AggCount}})
			rows, err := e.Run(context.Background(), p)
			if err == nil && rows[0][0].I != int64(500-i) {
				err = fmt.Errorf("count %v, want %d", rows[0][0], 500-i)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
