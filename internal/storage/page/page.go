// Package page implements the slotted-page layout used by heap files and
// B+tree nodes. A page is a fixed-size byte array with a small header, a slot
// directory growing from the front and tuple payloads growing from the back —
// the classic layout every disk-based storage manager (including BerkeleyDB,
// the paper's substrate) uses.
//
// Layout:
//
//	[0:2)   uint16 slot count
//	[2:4)   uint16 free-space offset (start of payload region)
//	[4:4+4n) per-slot: uint16 payload offset, uint16 payload length
//	[...]   free space
//	[off:]  payloads (packed toward the end)
package page

import (
	"encoding/binary"
	"fmt"

	"qpipe/internal/tuple"
)

const headerSize = 4
const slotSize = 4

// Page wraps a fixed-size buffer with slotted-tuple accessors.
type Page struct {
	buf []byte
}

// New initializes an empty page over a zeroed buffer of the given size.
func New(size int) *Page {
	p := &Page{buf: make([]byte, size)}
	p.setFreeOff(uint16(size))
	return p
}

// FromBytes interprets an existing buffer as a page (no copy).
func FromBytes(buf []byte) *Page { return &Page{buf: buf} }

// Bytes returns the underlying buffer.
func (p *Page) Bytes() []byte { return p.buf }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.buf) }

// NumSlots returns the number of tuples stored in the page.
func (p *Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }

func (p *Page) setNumSlots(n uint16) { binary.LittleEndian.PutUint16(p.buf[0:2], n) }

func (p *Page) freeOff() uint16 { return binary.LittleEndian.Uint16(p.buf[2:4]) }

func (p *Page) setFreeOff(v uint16) { binary.LittleEndian.PutUint16(p.buf[2:4], v) }

func (p *Page) slot(i int) (off, ln uint16) {
	base := headerSize + i*slotSize
	return binary.LittleEndian.Uint16(p.buf[base : base+2]),
		binary.LittleEndian.Uint16(p.buf[base+2 : base+4])
}

func (p *Page) setSlot(i int, off, ln uint16) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], ln)
}

// FreeSpace returns the bytes available for one more insert (payload+slot).
func (p *Page) FreeSpace() int {
	used := headerSize + p.NumSlots()*slotSize
	free := int(p.freeOff()) - used
	if free < slotSize {
		return 0
	}
	return free - slotSize
}

// HasRoomFor reports whether a payload of n bytes fits.
func (p *Page) HasRoomFor(n int) bool { return p.FreeSpace() >= n }

// Insert appends a payload, returning its slot number.
func (p *Page) Insert(payload []byte) (int, error) {
	if !p.HasRoomFor(len(payload)) {
		return 0, fmt.Errorf("page: full (free=%d, need=%d)", p.FreeSpace(), len(payload))
	}
	n := p.NumSlots()
	off := p.freeOff() - uint16(len(payload))
	copy(p.buf[off:], payload)
	p.setSlot(n, off, uint16(len(payload)))
	p.setFreeOff(off)
	p.setNumSlots(uint16(n + 1))
	return n, nil
}

// Payload returns the raw bytes of slot i (aliasing the page buffer).
func (p *Page) Payload(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("page: slot %d out of range [0,%d)", i, p.NumSlots())
	}
	off, ln := p.slot(i)
	return p.buf[off : off+ln], nil
}

// Tombstone reports whether slot i holds a deleted tuple. Slot numbers are
// stable identifiers (RIDs reference them), so deletion zeroes the slot
// entry instead of compacting the directory; payloads grow from the page
// end, so offset 0 can never belong to a live payload.
func (p *Page) Tombstone(i int) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	off, ln := p.slot(i)
	return off == 0 && ln == 0
}

// DeleteAt tombstones slot i. The payload bytes become dead space until the
// next ReplaceAt repacks the page. Deleting a tombstone is a no-op (replay
// idempotence).
func (p *Page) DeleteAt(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("page: slot %d out of range [0,%d)", i, p.NumSlots())
	}
	p.setSlot(i, 0, 0)
	return nil
}

// ReplaceAt overwrites slot i's payload, repacking the whole page: live
// payloads (with slot i's replaced) are rewritten from the back, slot
// numbers preserved, tombstones kept as tombstones and their dead space
// reclaimed. Fails without modifying the page if the new payload does not
// fit.
func (p *Page) ReplaceAt(i int, payload []byte) error {
	n := p.NumSlots()
	if i < 0 || i >= n {
		return fmt.Errorf("page: slot %d out of range [0,%d)", i, n)
	}
	if p.Tombstone(i) {
		return fmt.Errorf("page: slot %d is deleted", i)
	}
	payloads := make([][]byte, n)
	need := headerSize + n*slotSize
	for s := 0; s < n; s++ {
		if p.Tombstone(s) {
			continue
		}
		if s == i {
			payloads[s] = payload
		} else {
			raw, err := p.Payload(s)
			if err != nil {
				return err
			}
			// Copy: the repack below overwrites the payload region the raw
			// slices alias.
			payloads[s] = append([]byte(nil), raw...)
		}
		need += len(payloads[s])
	}
	if need > len(p.buf) {
		return fmt.Errorf("page: replacement of %d bytes does not fit (need %d, page %d)", len(payload), need, len(p.buf))
	}
	off := uint16(len(p.buf))
	for s := 0; s < n; s++ {
		if p.Tombstone(s) {
			continue
		}
		off -= uint16(len(payloads[s]))
		copy(p.buf[off:], payloads[s])
		p.setSlot(s, off, uint16(len(payloads[s])))
	}
	p.setFreeOff(off)
	return nil
}

// InsertTuple encodes and inserts a tuple, returning its slot number.
// Bulk loaders should prefer InsertTupleScratch, which reuses one encode
// buffer across rows instead of allocating per insert.
func (p *Page) InsertTuple(t tuple.Tuple) (int, error) {
	return p.Insert(t.Encode(nil))
}

// InsertTupleScratch encodes t into scratch (grown as needed) and inserts
// it, returning the slot number and the scratch buffer for the next row.
func (p *Page) InsertTupleScratch(t tuple.Tuple, scratch []byte) (int, []byte, error) {
	scratch = t.Encode(scratch[:0])
	slot, err := p.Insert(scratch)
	return slot, scratch, err
}

// Tuple decodes the tuple in slot i, which must have ncols columns.
func (p *Page) Tuple(i, ncols int) (tuple.Tuple, error) {
	raw, err := p.Payload(i)
	if err != nil {
		return nil, err
	}
	t, _, err := tuple.Decode(raw, ncols)
	return t, err
}

// Tuples decodes every live tuple in the page, skipping tombstoned slots
// (the returned list is compacted, so positions do not correspond to slot
// numbers — use Tombstone/Tuple for RID-accurate iteration). All rows carve
// out of one arena chunk (one allocation per page rather than one per row);
// they are independent of the page buffer and immutable, per the engine's
// tuple lease protocol.
func (p *Page) Tuples(ncols int) ([]tuple.Tuple, error) {
	n := p.NumSlots()
	out := make([]tuple.Tuple, 0, n)
	var arena tuple.RowArena
	arena.Grow(n * ncols)
	for i := 0; i < n; i++ {
		if p.Tombstone(i) {
			continue
		}
		raw, err := p.Payload(i)
		if err != nil {
			return nil, err
		}
		t, _, err := tuple.DecodeArena(raw, ncols, &arena)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
