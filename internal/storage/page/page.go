// Package page implements the slotted-page layout used by heap files and
// B+tree nodes. A page is a fixed-size byte array with a small header, a slot
// directory growing from the front and tuple payloads growing from the back —
// the classic layout every disk-based storage manager (including BerkeleyDB,
// the paper's substrate) uses.
//
// Layout:
//
//	[0:2)   uint16 slot count
//	[2:4)   uint16 free-space offset (start of payload region)
//	[4:4+4n) per-slot: uint16 payload offset, uint16 payload length
//	[...]   free space
//	[off:]  payloads (packed toward the end)
package page

import (
	"encoding/binary"
	"fmt"

	"qpipe/internal/tuple"
)

const headerSize = 4
const slotSize = 4

// Page wraps a fixed-size buffer with slotted-tuple accessors.
type Page struct {
	buf []byte
}

// New initializes an empty page over a zeroed buffer of the given size.
func New(size int) *Page {
	p := &Page{buf: make([]byte, size)}
	p.setFreeOff(uint16(size))
	return p
}

// FromBytes interprets an existing buffer as a page (no copy).
func FromBytes(buf []byte) *Page { return &Page{buf: buf} }

// Bytes returns the underlying buffer.
func (p *Page) Bytes() []byte { return p.buf }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.buf) }

// NumSlots returns the number of tuples stored in the page.
func (p *Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }

func (p *Page) setNumSlots(n uint16) { binary.LittleEndian.PutUint16(p.buf[0:2], n) }

func (p *Page) freeOff() uint16 { return binary.LittleEndian.Uint16(p.buf[2:4]) }

func (p *Page) setFreeOff(v uint16) { binary.LittleEndian.PutUint16(p.buf[2:4], v) }

func (p *Page) slot(i int) (off, ln uint16) {
	base := headerSize + i*slotSize
	return binary.LittleEndian.Uint16(p.buf[base : base+2]),
		binary.LittleEndian.Uint16(p.buf[base+2 : base+4])
}

func (p *Page) setSlot(i int, off, ln uint16) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], ln)
}

// FreeSpace returns the bytes available for one more insert (payload+slot).
func (p *Page) FreeSpace() int {
	used := headerSize + p.NumSlots()*slotSize
	free := int(p.freeOff()) - used
	if free < slotSize {
		return 0
	}
	return free - slotSize
}

// HasRoomFor reports whether a payload of n bytes fits.
func (p *Page) HasRoomFor(n int) bool { return p.FreeSpace() >= n }

// Insert appends a payload, returning its slot number.
func (p *Page) Insert(payload []byte) (int, error) {
	if !p.HasRoomFor(len(payload)) {
		return 0, fmt.Errorf("page: full (free=%d, need=%d)", p.FreeSpace(), len(payload))
	}
	n := p.NumSlots()
	off := p.freeOff() - uint16(len(payload))
	copy(p.buf[off:], payload)
	p.setSlot(n, off, uint16(len(payload)))
	p.setFreeOff(off)
	p.setNumSlots(uint16(n + 1))
	return n, nil
}

// Payload returns the raw bytes of slot i (aliasing the page buffer).
func (p *Page) Payload(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("page: slot %d out of range [0,%d)", i, p.NumSlots())
	}
	off, ln := p.slot(i)
	return p.buf[off : off+ln], nil
}

// InsertTuple encodes and inserts a tuple, returning its slot number.
// Bulk loaders should prefer InsertTupleScratch, which reuses one encode
// buffer across rows instead of allocating per insert.
func (p *Page) InsertTuple(t tuple.Tuple) (int, error) {
	return p.Insert(t.Encode(nil))
}

// InsertTupleScratch encodes t into scratch (grown as needed) and inserts
// it, returning the slot number and the scratch buffer for the next row.
func (p *Page) InsertTupleScratch(t tuple.Tuple, scratch []byte) (int, []byte, error) {
	scratch = t.Encode(scratch[:0])
	slot, err := p.Insert(scratch)
	return slot, scratch, err
}

// Tuple decodes the tuple in slot i, which must have ncols columns.
func (p *Page) Tuple(i, ncols int) (tuple.Tuple, error) {
	raw, err := p.Payload(i)
	if err != nil {
		return nil, err
	}
	t, _, err := tuple.Decode(raw, ncols)
	return t, err
}

// Tuples decodes every tuple in the page. All rows carve out of one arena
// chunk (one allocation per page rather than one per row); they are
// independent of the page buffer and immutable, per the engine's tuple
// lease protocol.
func (p *Page) Tuples(ncols int) ([]tuple.Tuple, error) {
	n := p.NumSlots()
	out := make([]tuple.Tuple, 0, n)
	var arena tuple.RowArena
	arena.Grow(n * ncols)
	for i := 0; i < n; i++ {
		raw, err := p.Payload(i)
		if err != nil {
			return nil, err
		}
		t, _, err := tuple.DecodeArena(raw, ncols, &arena)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
