package page

import (
	"math/rand"
	"testing"

	"qpipe/internal/tuple"
)

func TestInsertAndRead(t *testing.T) {
	p := New(256)
	if p.NumSlots() != 0 {
		t.Fatal("new page should be empty")
	}
	s0, err := p.Insert([]byte("alpha"))
	if err != nil || s0 != 0 {
		t.Fatalf("Insert: %d %v", s0, err)
	}
	s1, _ := p.Insert([]byte("beta"))
	if s1 != 1 {
		t.Fatalf("slot numbering: %d", s1)
	}
	b, err := p.Payload(0)
	if err != nil || string(b) != "alpha" {
		t.Errorf("Payload(0): %q %v", b, err)
	}
	b, _ = p.Payload(1)
	if string(b) != "beta" {
		t.Errorf("Payload(1): %q", b)
	}
	if _, err := p.Payload(2); err == nil {
		t.Error("out-of-range slot should fail")
	}
	if _, err := p.Payload(-1); err == nil {
		t.Error("negative slot should fail")
	}
}

func TestFillUntilFull(t *testing.T) {
	p := New(128)
	payload := []byte("0123456789")
	n := 0
	for p.HasRoomFor(len(payload)) {
		if _, err := p.Insert(payload); err != nil {
			t.Fatalf("Insert while HasRoomFor: %v", err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("page should fit at least one payload")
	}
	if _, err := p.Insert(payload); err == nil {
		t.Error("Insert into full page should fail")
	}
	// All payloads still intact.
	for i := 0; i < n; i++ {
		b, err := p.Payload(i)
		if err != nil || string(b) != "0123456789" {
			t.Fatalf("slot %d corrupted: %q %v", i, b, err)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	p := New(512)
	rows := []tuple.Tuple{
		{tuple.I64(1), tuple.Str("a")},
		{tuple.I64(2), tuple.Str("bb")},
		{tuple.I64(3), tuple.Str("")},
	}
	for _, r := range rows {
		if _, err := p.InsertTuple(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Tuples(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Tuples: %d", len(got))
	}
	for i := range rows {
		if tuple.CompareAt(rows[i], got[i], []int{0, 1}) != 0 {
			t.Errorf("row %d: %v != %v", i, rows[i], got[i])
		}
	}
}

func TestFromBytesSurvivesCopy(t *testing.T) {
	p := New(256)
	p.Insert([]byte("persist"))
	raw := make([]byte, 256)
	copy(raw, p.Bytes())
	q := FromBytes(raw)
	if q.NumSlots() != 1 {
		t.Fatal("NumSlots after copy")
	}
	b, _ := q.Payload(0)
	if string(b) != "persist" {
		t.Errorf("Payload after copy: %q", b)
	}
}

func TestRandomizedFill(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		p := New(1024)
		var want [][]byte
		for {
			n := 1 + rng.Intn(60)
			buf := make([]byte, n)
			rng.Read(buf)
			if !p.HasRoomFor(n) {
				break
			}
			if _, err := p.Insert(buf); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			want = append(want, buf)
		}
		if p.NumSlots() != len(want) {
			t.Fatalf("iter %d: slots %d want %d", iter, p.NumSlots(), len(want))
		}
		for i, w := range want {
			got, err := p.Payload(i)
			if err != nil || string(got) != string(w) {
				t.Fatalf("iter %d slot %d mismatch", iter, i)
			}
		}
	}
}

func TestFreeSpaceAccounting(t *testing.T) {
	p := New(256)
	before := p.FreeSpace()
	p.Insert(make([]byte, 10))
	after := p.FreeSpace()
	// 10 payload bytes + 4 slot bytes.
	if before-after != 14 {
		t.Errorf("FreeSpace delta = %d, want 14", before-after)
	}
}

// TestInsertTupleScratch verifies the bulk-load insert path reuses one
// encode buffer across rows: same bytes as InsertTuple, zero allocations
// once the scratch has grown to the largest row.
func TestInsertTupleScratch(t *testing.T) {
	a, b := New(512), New(512)
	var scratch []byte
	rows := []tuple.Tuple{
		{tuple.I64(1), tuple.Str("aa")},
		{tuple.I64(2), tuple.Str("")},
		{tuple.I64(3), tuple.Str("a much longer payload string")},
	}
	for _, r := range rows {
		if _, err := a.InsertTuple(r); err != nil {
			t.Fatal(err)
		}
		var err error
		_, scratch, err = b.InsertTupleScratch(r, scratch)
		if err != nil {
			t.Fatal(err)
		}
	}
	ga, _ := a.Tuples(2)
	gb, _ := b.Tuples(2)
	for i := range ga {
		if tuple.CompareAt(ga[i], gb[i], []int{0, 1}) != 0 {
			t.Fatalf("row %d: scratch insert %v != plain insert %v", i, gb[i], ga[i])
		}
	}
	row := tuple.Tuple{tuple.I64(9), tuple.Str("steady")}
	steady := New(32 << 10)
	allocs := testing.AllocsPerRun(50, func() {
		var err error
		_, scratch, err = steady.InsertTupleScratch(row, scratch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("InsertTupleScratch steady state: %.1f allocs/op, want 0", allocs)
	}
}
