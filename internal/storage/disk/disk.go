// Package disk implements the simulated block device underneath the buffer
// pool. The paper ran on a 4-disk SCSI RAID-0 array; this repo substitutes a
// latency-modelled in-memory block store so that experiments reproduce the
// *shape* of the paper's I/O-bound results at laptop scale (see DESIGN.md §2).
//
// The device exposes named files of fixed-size blocks, charges a configurable
// per-block latency (cheaper for sequential access, like a real spindle), and
// keeps per-file read counters — Figures 1a and 8 are plotted straight from
// these counters.
package disk

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config controls the latency model. Zero latencies make the device a plain
// in-memory store, which is what the unit tests use for determinism.
type Config struct {
	BlockSize  int           // bytes per block (default 8192)
	SeqRead    time.Duration // latency charged for a sequential block read
	RandRead   time.Duration // latency charged for a non-sequential block read
	Write      time.Duration // latency charged per block write
	LatencyDiv int           // charge latency once per LatencyDiv blocks (batching; default 1)
	// Spindles bounds how many latency charges proceed in parallel,
	// modelling aggregate device bandwidth (the paper's testbed was a
	// 4-disk RAID-0 array — Spindles=4). Default 4.
	Spindles int
	// BackingDir, when non-empty, mirrors durable state to real OS files in
	// that directory (written and fsynced by Sync), and New loads any
	// existing files from it. This is what lets a kill -9'd process be
	// recovered by a fresh one; the in-memory durable/volatile model works
	// without it. See durable.go.
	BackingDir string
}

// DefaultBlockSize is used when Config.BlockSize is zero.
const DefaultBlockSize = 8192

// Stats is a snapshot of device counters.
type Stats struct {
	Reads      int64 // total block reads that reached the device
	Writes     int64 // total block writes
	SeqReads   int64 // reads that were sequential w.r.t. the previous read of the same file
	ByFile     map[string]int64
	SleepTotal time.Duration // total simulated latency charged

	FaultsInjected int64 // injected I/O faults that actually fired (tests/chaos)
}

// Disk is a simulated block device. All methods are safe for concurrent use.
type Disk struct {
	cfg Config

	// Latencies are runtime-adjustable (SetLatency) so the harness can bulk
	// load at full speed and then enable the latency model for measurement.
	seqLat   atomic.Int64
	randLat  atomic.Int64
	writeLat atomic.Int64

	mu    sync.RWMutex
	files map[string]*file

	reads    atomic.Int64
	writes   atomic.Int64
	seqReads atomic.Int64
	sleepNS  atomic.Int64

	// spindles is a semaphore bounding concurrent latency charges.
	spindles chan struct{}

	// Fault injection (tests and chaos): counted per-file rules for reads
	// and writes, plus an optional seeded probabilistic schedule. All state
	// behind faultMu; the hot path is a single cheap armed-check.
	faultMu    sync.Mutex
	readFault  faultRule
	writeFault faultRule
	sched      *FaultSchedule
	schedRng   *rand.Rand
	schedCount int64
	faultsHit  atomic.Int64

	// Latency jitter (SetLatencyJitter): charged latencies are multiplied
	// by a seeded random factor in [1-frac, 1+frac].
	jitterMu   sync.Mutex
	jitterFrac float64
	jitterRng  *rand.Rand
}

// faultRule is one counted fault arm: while remaining > 0, matching I/O
// fails with err and decrements the counter. An empty file matches every
// file; otherwise it is a name *prefix*, so "tmp:" arms every spill file and
// "tmp:sortrun:" only sort runs. (Exact names remain their own prefix, so
// existing exact-name callers behave unchanged.)
type faultRule struct {
	file      string
	remaining int64
	err       error
}

func (r *faultRule) take(name string) error {
	if r.remaining <= 0 || !faultMatch(name, r.file) {
		return nil
	}
	r.remaining--
	return r.err
}

func faultMatch(name, pat string) bool {
	return pat == "" || strings.HasPrefix(name, pat)
}

// FaultSchedule is a deterministic seeded stream of injected I/O faults:
// each read (write) of a file matching ReadFile (WriteFile) fails with
// probability ReadProb (WriteProb), decided by a PRNG seeded with Seed so a
// chaos run replays identically. Max bounds the total faults injected
// (0 = unlimited); Err is the error returned (required).
type FaultSchedule struct {
	Seed      int64
	ReadProb  float64 // per-read fault probability for matching files
	ReadFile  string  // name prefix filter for reads ("" = every file)
	WriteProb float64 // per-write fault probability for matching files
	WriteFile string  // name prefix filter for writes ("" = every file)
	Max       int64   // total fault budget across reads and writes (0 = unlimited)
	Err       error   // error injected faults return
}

// InjectReadFaults makes the next n reads of files matching the given name
// prefix fail with err (an empty prefix matches every file). Used by
// failure-injection tests to verify that I/O errors propagate cleanly
// through both engines.
func (d *Disk) InjectReadFaults(file string, n int64, err error) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	d.readFault = faultRule{file: file, remaining: n, err: err}
}

// InjectWriteFaults makes the next n writes (Append or Write) of files
// matching the given name prefix fail with err. The block is NOT persisted
// when the fault fires — a failed write failed. Arms mid-spill failure
// tests: "tmp:" faults the next spill write wherever it lands.
func (d *Disk) InjectWriteFaults(file string, n int64, err error) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	d.writeFault = faultRule{file: file, remaining: n, err: err}
}

// InjectFaultSchedule arms a deterministic probabilistic fault schedule (see
// FaultSchedule). A nil schedule disarms it. Counted rules from
// InjectReadFaults/InjectWriteFaults fire first; the schedule decides any
// I/O they pass.
func (d *Disk) InjectFaultSchedule(s *FaultSchedule) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	d.sched = s
	d.schedCount = 0
	if s != nil {
		d.schedRng = rand.New(rand.NewSource(s.Seed))
	} else {
		d.schedRng = nil
	}
}

// ClearFaults disarms all fault injection (counted rules and schedule).
func (d *Disk) ClearFaults() {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	d.readFault = faultRule{}
	d.writeFault = faultRule{}
	d.sched = nil
	d.schedRng = nil
	d.schedCount = 0
}

// FaultsInjected returns the total number of faults injected so far (counted
// rules plus schedule hits) — chaos tests assert the schedule actually bit.
func (d *Disk) FaultsInjected() int64 { return d.faultsHit.Load() }

// takeFault consumes one injected read fault if armed for this file.
func (d *Disk) takeFault(name string) error {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if err := d.readFault.take(name); err != nil {
		d.faultsHit.Add(1)
		return err
	}
	return d.takeScheduled(name, false)
}

// takeWriteFault consumes one injected write fault if armed for this file.
func (d *Disk) takeWriteFault(name string) error {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if err := d.writeFault.take(name); err != nil {
		d.faultsHit.Add(1)
		return err
	}
	return d.takeScheduled(name, true)
}

// takeScheduled rolls the armed fault schedule for one I/O (faultMu held).
func (d *Disk) takeScheduled(name string, write bool) error {
	s := d.sched
	if s == nil || (s.Max > 0 && d.schedCount >= s.Max) {
		return nil
	}
	prob, pat := s.ReadProb, s.ReadFile
	if write {
		prob, pat = s.WriteProb, s.WriteFile
	}
	if prob <= 0 || !faultMatch(name, pat) {
		return nil
	}
	if d.schedRng.Float64() >= prob {
		return nil
	}
	d.schedCount++
	d.faultsHit.Add(1)
	return s.Err
}

// SetLatencyJitter multiplies every charged latency by a random factor in
// [1-frac, 1+frac], drawn from a PRNG seeded with seed (deterministic
// sequence, though interleaving across goroutines is not). frac <= 0
// disables jitter. Chaos tests use it to perturb I/O timing without changing
// the mean latency model.
func (d *Disk) SetLatencyJitter(frac float64, seed int64) {
	d.jitterMu.Lock()
	defer d.jitterMu.Unlock()
	if frac <= 0 {
		d.jitterFrac, d.jitterRng = 0, nil
		return
	}
	if frac > 1 {
		frac = 1
	}
	d.jitterFrac = frac
	d.jitterRng = rand.New(rand.NewSource(seed))
}

// jitter applies the armed latency jitter to one charge.
func (d *Disk) jitter(lat time.Duration) time.Duration {
	d.jitterMu.Lock()
	defer d.jitterMu.Unlock()
	if d.jitterFrac <= 0 || lat <= 0 {
		return lat
	}
	f := 1 + d.jitterFrac*(2*d.jitterRng.Float64()-1)
	return time.Duration(float64(lat) * f)
}

type file struct {
	mu     sync.RWMutex
	blocks [][]byte
	// Durability model (see durable.go): blocks[:durableLen] survive a
	// crash; saved holds pre-overwrite images of durable blocks dirtied
	// since the last Sync; durableExists is whether the file survives a
	// CrashDropVolatile at all.
	durableLen    int64
	durableExists bool
	saved         map[int64][]byte
	// lastRead tracks the most recent block read for sequential detection.
	lastRead atomic.Int64
	reads    atomic.Int64
	// pending accumulates blocks read since the last latency charge when
	// LatencyDiv batching is enabled.
	pending atomic.Int64
}

// New creates a device with the given configuration.
func New(cfg Config) *Disk {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.LatencyDiv <= 0 {
		cfg.LatencyDiv = 1
	}
	if cfg.Spindles <= 0 {
		cfg.Spindles = 4
	}
	d := &Disk{cfg: cfg, files: make(map[string]*file)}
	d.spindles = make(chan struct{}, cfg.Spindles)
	d.seqLat.Store(int64(cfg.SeqRead))
	d.randLat.Store(int64(cfg.RandRead))
	d.writeLat.Store(int64(cfg.Write))
	return d
}

// Open is New plus recovery of durable state from Config.BackingDir (which
// New ignores on its own): existing backed files become durable device
// files. Use it to reattach to the image a crashed process left behind.
func Open(cfg Config) (*Disk, error) {
	d := New(cfg)
	if cfg.BackingDir != "" {
		if err := d.loadBacking(); err != nil {
			return nil, fmt.Errorf("disk: loading backing dir %q: %w", cfg.BackingDir, err)
		}
	}
	return d, nil
}

// SetLatency changes the latency model at run time (harnesses load data
// with zero latency, then enable the model for the measured phase).
func (d *Disk) SetLatency(seq, rand, write time.Duration) {
	d.seqLat.Store(int64(seq))
	d.randLat.Store(int64(rand))
	d.writeLat.Store(int64(write))
}

// BlockSize returns the device block size in bytes.
func (d *Disk) BlockSize() int { return d.cfg.BlockSize }

// Create makes an empty file, replacing any existing file of the same name.
func (d *Disk) Create(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &file{}
	f.lastRead.Store(-2)
	d.files[name] = f
}

// Exists reports whether the named file exists.
func (d *Disk) Exists(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[name]
	return ok
}

// FilesWithPrefix lists the names of files whose name starts with prefix
// (every file for the empty prefix). Tests use it to assert that aborted
// operators left no temp spill files behind.
func (d *Disk) FilesWithPrefix(prefix string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for name := range d.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Remove deletes a file. Removing a missing file is a no-op. Removal is
// durable immediately (file metadata operations are journalled by the host
// filesystem, not by this device's write cache).
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
	if d.cfg.BackingDir != "" {
		os.Remove(d.backingPath(name))
	}
}

func (d *Disk) get(name string) (*file, error) {
	d.mu.RLock()
	f, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("disk: no such file %q", name)
	}
	return f, nil
}

// NumBlocks returns the number of blocks in the file (0 if missing).
func (d *Disk) NumBlocks(name string) int {
	f, err := d.get(name)
	if err != nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.blocks)
}

// Append adds a block to the end of the file and returns its block number.
// The block is copied; callers may reuse buf.
func (d *Disk) Append(name string, buf []byte) (int64, error) {
	f, err := d.get(name)
	if err != nil {
		return 0, err
	}
	if len(buf) > d.cfg.BlockSize {
		return 0, fmt.Errorf("disk: block of %d bytes exceeds block size %d", len(buf), d.cfg.BlockSize)
	}
	if ferr := d.takeWriteFault(name); ferr != nil {
		return 0, ferr
	}
	b := make([]byte, d.cfg.BlockSize)
	copy(b, buf)
	f.mu.Lock()
	f.blocks = append(f.blocks, b)
	n := int64(len(f.blocks) - 1)
	f.mu.Unlock()
	d.writes.Add(1)
	d.charge(time.Duration(d.writeLat.Load()))
	return n, nil
}

// Write overwrites an existing block.
func (d *Disk) Write(name string, blockNo int64, buf []byte) error {
	f, err := d.get(name)
	if err != nil {
		return err
	}
	if len(buf) > d.cfg.BlockSize {
		return fmt.Errorf("disk: block of %d bytes exceeds block size %d", len(buf), d.cfg.BlockSize)
	}
	if ferr := d.takeWriteFault(name); ferr != nil {
		return ferr
	}
	f.mu.Lock()
	if blockNo < 0 || blockNo >= int64(len(f.blocks)) {
		f.mu.Unlock()
		return fmt.Errorf("disk: write to %q block %d out of range [0,%d)", name, blockNo, len(f.blocks))
	}
	f.markOverwriteLocked(blockNo)
	copy(f.blocks[blockNo], buf)
	for i := len(buf); i < d.cfg.BlockSize; i++ {
		f.blocks[blockNo][i] = 0
	}
	f.mu.Unlock()
	d.writes.Add(1)
	d.charge(time.Duration(d.writeLat.Load()))
	return nil
}

// Read fetches a block, charging simulated latency. The returned slice is a
// copy and may be retained by the caller.
func (d *Disk) Read(name string, blockNo int64) ([]byte, error) {
	f, err := d.get(name)
	if err != nil {
		return nil, err
	}
	if ferr := d.takeFault(name); ferr != nil {
		return nil, ferr
	}
	f.mu.RLock()
	if blockNo < 0 || blockNo >= int64(len(f.blocks)) {
		f.mu.RUnlock()
		return nil, fmt.Errorf("disk: read of %q block %d out of range [0,%d)", name, blockNo, len(f.blocks))
	}
	b := make([]byte, d.cfg.BlockSize)
	copy(b, f.blocks[blockNo])
	f.mu.RUnlock()

	prev := f.lastRead.Swap(blockNo)
	seq := prev+1 == blockNo
	d.reads.Add(1)
	f.reads.Add(1)
	if seq {
		d.seqReads.Add(1)
	}
	lat := time.Duration(d.randLat.Load())
	if seq {
		lat = time.Duration(d.seqLat.Load())
	}
	if lat > 0 {
		if d.cfg.LatencyDiv > 1 {
			// Batch the sleep: charge LatencyDiv blocks' worth at once so the
			// OS sleep granularity does not dominate tiny per-block latencies.
			if p := f.pending.Add(1); p%int64(d.cfg.LatencyDiv) == 0 {
				d.charge(lat * time.Duration(d.cfg.LatencyDiv))
			} else {
				d.sleepNS.Add(int64(lat)) // accounted but deferred
			}
		} else {
			d.charge(lat)
		}
	}
	return b, nil
}

// spinThreshold bounds the latencies charged by yielding spin rather than
// time.Sleep: the OS timer rounds sleeps up to its tick (~1ms on stock
// Linux), so per-block latencies in the tens of microseconds would cost
// ~1ms each and wall-clock figures would measure the host's timer
// resolution — modulated chaotically by how much CPU the engine happens to
// burn between reads — instead of the modelled device. Spinning burns at
// most Spindles × spinThreshold of CPU concurrently, and the spin loop
// yields so it degrades fairly on core-starved machines — on hosts with
// fewer cores than Spindles the wall clock stretches with core pressure,
// so absolute figures remain host-dependent there (shapes survive; judge
// scaling factors, not milliseconds, on small CI runners).
const spinThreshold = 500 * time.Microsecond

func (d *Disk) charge(lat time.Duration) {
	lat = d.jitter(lat)
	if lat <= 0 {
		return
	}
	d.sleepNS.Add(int64(lat))
	// One spindle serves one request at a time: concurrent requests beyond
	// the spindle count queue here, which is what makes multi-client
	// workloads disk-bound like the paper's testbed.
	d.spindles <- struct{}{}
	if lat > spinThreshold {
		time.Sleep(lat)
	} else {
		deadline := time.Now().Add(lat)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	<-d.spindles
}

// Stats snapshots the device counters.
func (d *Disk) Stats() Stats {
	d.mu.RLock()
	byFile := make(map[string]int64, len(d.files))
	for name, f := range d.files {
		byFile[name] = f.reads.Load()
	}
	d.mu.RUnlock()
	return Stats{
		Reads:          d.reads.Load(),
		Writes:         d.writes.Load(),
		SeqReads:       d.seqReads.Load(),
		ByFile:         byFile,
		SleepTotal:     time.Duration(d.sleepNS.Load()),
		FaultsInjected: d.faultsHit.Load(),
	}
}

// ResetStats zeroes all counters (per-experiment isolation in the harness).
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.seqReads.Store(0)
	d.sleepNS.Store(0)
	d.mu.RLock()
	for _, f := range d.files {
		f.reads.Store(0)
		f.pending.Store(0)
	}
	d.mu.RUnlock()
}

// FileReads returns the read counter for one file.
func (d *Disk) FileReads(name string) int64 {
	f, err := d.get(name)
	if err != nil {
		return 0
	}
	return f.reads.Load()
}
