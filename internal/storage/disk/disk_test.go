package disk

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCreateReadWrite(t *testing.T) {
	d := New(Config{BlockSize: 64})
	d.Create("f")
	if !d.Exists("f") || d.Exists("g") {
		t.Fatal("Exists")
	}
	n, err := d.Append("f", []byte("hello"))
	if err != nil || n != 0 {
		t.Fatalf("Append: %d %v", n, err)
	}
	b, err := d.Read("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 64 || string(b[:5]) != "hello" {
		t.Errorf("Read: %q", b[:8])
	}
	if err := d.Write("f", 0, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	b, _ = d.Read("f", 0)
	if string(b[:3]) != "bye" || b[3] != 0 {
		t.Errorf("Write should zero-pad: %q", b[:8])
	}
}

func TestReadErrors(t *testing.T) {
	d := New(Config{BlockSize: 32})
	if _, err := d.Read("missing", 0); err == nil {
		t.Error("read of missing file should fail")
	}
	d.Create("f")
	if _, err := d.Read("f", 0); err == nil {
		t.Error("read past EOF should fail")
	}
	if _, err := d.Read("f", -1); err == nil {
		t.Error("negative block should fail")
	}
	if err := d.Write("f", 3, []byte("x")); err == nil {
		t.Error("write past EOF should fail")
	}
	if _, err := d.Append("f", make([]byte, 33)); err == nil {
		t.Error("oversized append should fail")
	}
}

func TestCountersAndSequentialDetection(t *testing.T) {
	d := New(Config{BlockSize: 32})
	d.Create("f")
	for i := 0; i < 4; i++ {
		d.Append("f", []byte{byte(i)})
	}
	// Sequential pass.
	for i := int64(0); i < 4; i++ {
		d.Read("f", i)
	}
	// One random read (block 0 after block 3 is non-sequential).
	d.Read("f", 0)
	st := d.Stats()
	if st.Reads != 5 {
		t.Errorf("Reads = %d", st.Reads)
	}
	// Reads 1,2,3 are sequential; read of 0 at start and the jump back are not.
	if st.SeqReads != 3 {
		t.Errorf("SeqReads = %d", st.SeqReads)
	}
	if st.Writes != 4 {
		t.Errorf("Writes = %d", st.Writes)
	}
	if st.ByFile["f"] != 5 {
		t.Errorf("ByFile = %v", st.ByFile)
	}
	if d.FileReads("f") != 5 || d.FileReads("g") != 0 {
		t.Error("FileReads")
	}
	d.ResetStats()
	if s := d.Stats(); s.Reads != 0 || s.ByFile["f"] != 0 {
		t.Error("ResetStats")
	}
}

func TestLatencyCharged(t *testing.T) {
	d := New(Config{BlockSize: 32, SeqRead: time.Millisecond, RandRead: time.Millisecond})
	d.Create("f")
	d.Append("f", []byte("x"))
	start := time.Now()
	for i := 0; i < 5; i++ {
		d.Read("f", 0)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Errorf("expected >=5ms of charged latency, got %v", el)
	}
	if st := d.Stats(); st.SleepTotal < 5*time.Millisecond {
		t.Errorf("SleepTotal = %v", st.SleepTotal)
	}
}

func TestLatencyBatching(t *testing.T) {
	d := New(Config{BlockSize: 32, SeqRead: 100 * time.Microsecond, RandRead: 100 * time.Microsecond, LatencyDiv: 10})
	d.Create("f")
	for i := 0; i < 20; i++ {
		d.Append("f", []byte{byte(i)})
	}
	for i := int64(0); i < 20; i++ {
		if _, err := d.Read("f", i); err != nil {
			t.Fatal(err)
		}
	}
	// 20 reads at 100µs each = 2ms accounted regardless of batching.
	if st := d.Stats(); st.SleepTotal < 2*time.Millisecond {
		t.Errorf("SleepTotal = %v, want >= 2ms", st.SleepTotal)
	}
}

func TestRemove(t *testing.T) {
	d := New(Config{})
	d.Create("f")
	d.Remove("f")
	if d.Exists("f") {
		t.Error("Remove")
	}
	d.Remove("f") // no-op
	if d.NumBlocks("f") != 0 {
		t.Error("NumBlocks of missing file should be 0")
	}
}

func TestConcurrentReads(t *testing.T) {
	d := New(Config{BlockSize: 32})
	d.Create("f")
	for i := 0; i < 8; i++ {
		d.Append("f", []byte{byte(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b, err := d.Read("f", int64(i%8))
				if err != nil || b[0] != byte(i%8) {
					t.Errorf("goroutine %d: %v %v", g, b[0], err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := d.Stats(); st.Reads != 800 {
		t.Errorf("Reads = %d, want 800", st.Reads)
	}
}

func TestDefaultBlockSize(t *testing.T) {
	d := New(Config{})
	if d.BlockSize() != DefaultBlockSize {
		t.Errorf("BlockSize = %d", d.BlockSize())
	}
}

func TestInjectReadFaults(t *testing.T) {
	d := New(Config{BlockSize: 32})
	d.Create("a")
	d.Create("b")
	d.Append("a", []byte{1})
	d.Append("b", []byte{2})
	boom := fmt.Errorf("boom")
	d.InjectReadFaults("a", 2, boom)
	// Faults hit only file a, exactly twice.
	if _, err := d.Read("b", 0); err != nil {
		t.Fatalf("unaffected file failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Read("a", 0); err != boom {
			t.Fatalf("read %d: want injected error, got %v", i, err)
		}
	}
	if _, err := d.Read("a", 0); err != nil {
		t.Fatalf("fault budget exhausted but read failed: %v", err)
	}
	// Wildcard faults hit every file.
	d.InjectReadFaults("", 1, boom)
	if _, err := d.Read("b", 0); err != boom {
		t.Fatalf("wildcard fault missed: %v", err)
	}
	if _, err := d.Read("b", 0); err != nil {
		t.Fatal("fault persisted past budget")
	}
}

func TestSpindleBoundSerializesLatency(t *testing.T) {
	// With 1 spindle, two concurrent 10ms reads take ~20ms; with 2
	// spindles they overlap.
	run := func(spindles int) time.Duration {
		d := New(Config{BlockSize: 32, SeqRead: 10 * time.Millisecond,
			RandRead: 10 * time.Millisecond, Spindles: spindles})
		d.Create("f")
		d.Append("f", []byte{1})
		d.Append("f", []byte{2})
		start := time.Now()
		var wg sync.WaitGroup
		for i := int64(0); i < 2; i++ {
			wg.Add(1)
			go func(i int64) {
				defer wg.Done()
				d.Read("f", i)
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	serial := run(1)
	parallel := run(2)
	if serial < 18*time.Millisecond {
		t.Errorf("1 spindle should serialize: %v", serial)
	}
	if parallel > 18*time.Millisecond {
		t.Errorf("2 spindles should overlap: %v", parallel)
	}
}

func TestInjectWriteFaults(t *testing.T) {
	d := New(Config{BlockSize: 32})
	d.Create("tmp:sortrun:1")
	d.Create("tbl:t")
	boom := fmt.Errorf("boom")
	// Prefix matching: "tmp:" arms every spill file, leaves tables alone.
	d.InjectWriteFaults("tmp:", 2, boom)
	if _, err := d.Append("tbl:t", []byte{1}); err != nil {
		t.Fatalf("unaffected file failed: %v", err)
	}
	if _, err := d.Append("tmp:sortrun:1", []byte{1}); err != boom {
		t.Fatalf("want injected write fault, got %v", err)
	}
	// The faulted block must NOT have been persisted.
	if n := d.NumBlocks("tmp:sortrun:1"); n != 0 {
		t.Fatalf("faulted append persisted %d blocks", n)
	}
	// Write (overwrite) path is faulted too.
	d.Append("tbl:t", []byte{2})
	if err := d.Write("tmp:sortrun:1", 0, []byte{3}); err != boom {
		t.Fatalf("want injected overwrite fault, got %v", err)
	}
	// Budget exhausted: writes succeed again.
	if _, err := d.Append("tmp:sortrun:1", []byte{4}); err != nil {
		t.Fatalf("budget exhausted but write failed: %v", err)
	}
	if got := d.FaultsInjected(); got != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", got)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	boom := fmt.Errorf("boom")
	run := func() []bool {
		d := New(Config{BlockSize: 32})
		d.Create("f")
		d.Append("f", []byte{1})
		d.InjectFaultSchedule(&FaultSchedule{Seed: 42, ReadProb: 0.3, WriteProb: 0.3, Err: boom})
		var hits []bool
		for i := 0; i < 50; i++ {
			_, err := d.Read("f", 0)
			hits = append(hits, err != nil)
			_, err = d.Append("f", []byte{byte(i)})
			hits = append(hits, err != nil)
		}
		return hits
	}
	a, b := run(), run()
	var n int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at step %d", i)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("schedule hit %d/%d I/Os — expected a mix", n, len(a))
	}
}

func TestFaultScheduleMaxAndClear(t *testing.T) {
	boom := fmt.Errorf("boom")
	d := New(Config{BlockSize: 32})
	d.Create("f")
	d.Append("f", []byte{1})
	d.InjectFaultSchedule(&FaultSchedule{Seed: 1, ReadProb: 1, Max: 3, Err: boom})
	var hits int64
	for i := 0; i < 10; i++ {
		if _, err := d.Read("f", 0); err != nil {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("Max=3 schedule injected %d faults", hits)
	}
	if got := d.Stats().FaultsInjected; got != 3 {
		t.Fatalf("Stats.FaultsInjected = %d, want 3", got)
	}
	d.InjectFaultSchedule(&FaultSchedule{Seed: 1, ReadProb: 1, Err: boom})
	d.InjectReadFaults("f", 1, boom)
	d.ClearFaults()
	if _, err := d.Read("f", 0); err != nil {
		t.Fatalf("ClearFaults left injection armed: %v", err)
	}
}

func TestLatencyJitter(t *testing.T) {
	d := New(Config{BlockSize: 32, RandRead: 100 * time.Microsecond, SeqRead: 100 * time.Microsecond})
	d.Create("f")
	d.Append("f", []byte{1})
	d.SetLatencyJitter(0.5, 7)
	for i := 0; i < 20; i++ {
		d.Read("f", 0)
	}
	st := d.Stats()
	// 20 reads at 100µs ±50%: total charged must land inside [1ms, 3ms] and
	// essentially never on exactly 2ms.
	if st.SleepTotal < 1*time.Millisecond || st.SleepTotal > 3*time.Millisecond {
		t.Fatalf("jittered SleepTotal = %v out of range", st.SleepTotal)
	}
	if st.SleepTotal == 2*time.Millisecond {
		t.Fatalf("SleepTotal exactly nominal — jitter not applied")
	}
	d.SetLatencyJitter(0, 0) // disable
	d.ResetStats()
	d.Read("f", 0)
	if got := d.Stats().SleepTotal; got != 100*time.Microsecond {
		t.Fatalf("jitter disabled but SleepTotal = %v", got)
	}
}
