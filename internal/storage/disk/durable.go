// Durability model for the simulated device. Writes (Append/Write) land in
// a volatile region first, exactly like a real disk's write cache: they are
// visible to subsequent reads but do not survive a crash until Sync(name)
// promotes them. Crash() reconstructs the image a real machine would reboot
// with, which is what the WAL's recovery path is tested against: the
// crash-point harness drops volatile state (the strict model, nothing
// un-fsynced survives) or keeps it (the lenient model, the write cache made
// it to the platter anyway) — recovery must land on the committed prefix
// under both.
//
// With Config.BackingDir set, durable state is additionally mirrored to real
// OS files (written and fsynced on Sync), so a kill -9 of the whole process
// can be recovered from by a fresh process pointed at the same directory.
package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// CrashMode selects what a simulated crash does to volatile (un-synced)
// state.
type CrashMode int

const (
	// CrashDropVolatile discards everything not promoted by Sync: un-synced
	// appends vanish, overwritten blocks revert to their durable image, and
	// files never synced disappear entirely. The strict model.
	CrashDropVolatile CrashMode = iota
	// CrashKeepVolatile keeps volatile writes — the device's write cache
	// happened to reach the platter before power loss. Recovery must not be
	// confused by data beyond the last fsync (torn or unreferenced tails).
	CrashKeepVolatile
)

func (m CrashMode) String() string {
	if m == CrashKeepVolatile {
		return "keep-volatile"
	}
	return "drop-volatile"
}

// markOverwriteLocked saves the durable image of a block about to be
// overwritten, so CrashDropVolatile can restore it. Caller holds f.mu.
func (f *file) markOverwriteLocked(blockNo int64) {
	if blockNo >= f.durableLen {
		return // block is itself volatile; nothing durable to preserve
	}
	if f.saved == nil {
		f.saved = make(map[int64][]byte)
	}
	if _, ok := f.saved[blockNo]; !ok {
		img := make([]byte, len(f.blocks[blockNo]))
		copy(img, f.blocks[blockNo])
		f.saved[blockNo] = img
	}
}

// Sync promotes all of the named file's blocks to durable, the simulated
// fsync. With a backing directory configured, the durable image is also
// written to the OS file and fsynced for real. Injected write faults apply:
// a failed fsync leaves durability exactly where it was.
func (d *Disk) Sync(name string) error {
	f, err := d.get(name)
	if err != nil {
		return err
	}
	if ferr := d.takeWriteFault(name); ferr != nil {
		return ferr
	}
	f.mu.Lock()
	f.durableLen = int64(len(f.blocks))
	f.durableExists = true
	f.saved = nil
	var img []byte
	if d.cfg.BackingDir != "" {
		img = make([]byte, 0, len(f.blocks)*d.cfg.BlockSize)
		for _, b := range f.blocks {
			img = append(img, b...)
		}
	}
	f.mu.Unlock()
	d.writes.Add(1)
	d.charge(time.Duration(d.writeLat.Load()))
	if d.cfg.BackingDir != "" {
		return d.persist(name, img)
	}
	return nil
}

// persist writes one file's durable image to the backing directory and
// fsyncs it (write to a temp name, fsync, rename — the standard atomic
// pattern, so a kill -9 mid-persist leaves the previous image intact).
func (d *Disk) persist(name string, img []byte) error {
	path := d.backingPath(name)
	tmp := path + ".tmp"
	fh, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("disk: persist %q: %w", name, err)
	}
	if _, err := fh.Write(img); err != nil {
		fh.Close()
		return fmt.Errorf("disk: persist %q: %w", name, err)
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return fmt.Errorf("disk: persist %q: %w", name, err)
	}
	if err := fh.Close(); err != nil {
		return fmt.Errorf("disk: persist %q: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("disk: persist %q: %w", name, err)
	}
	return nil
}

// backingPath maps a device file name to an OS path. ':' separates
// namespaces in device names; it is legal in Linux filenames, but '%' keeps
// the mapping unambiguous anyway.
func (d *Disk) backingPath(name string) string {
	return filepath.Join(d.cfg.BackingDir, strings.ReplaceAll(name, "/", "%2F"))
}

// loadBacking populates the device from an existing backing directory: every
// regular file becomes a durable device file. Called by New.
func (d *Disk) loadBacking() error {
	entries, err := os.ReadDir(d.cfg.BackingDir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(d.cfg.BackingDir, 0o755)
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		name := strings.ReplaceAll(e.Name(), "%2F", "/")
		img, err := os.ReadFile(filepath.Join(d.cfg.BackingDir, e.Name()))
		if err != nil {
			return err
		}
		f := &file{}
		f.lastRead.Store(-2)
		for off := 0; off < len(img); off += d.cfg.BlockSize {
			end := off + d.cfg.BlockSize
			if end > len(img) {
				end = len(img)
			}
			b := make([]byte, d.cfg.BlockSize)
			copy(b, img[off:end])
			f.blocks = append(f.blocks, b)
		}
		f.durableLen = int64(len(f.blocks))
		f.durableExists = true
		d.files[name] = f
	}
	return nil
}

// Crash reconstructs the post-crash image in place: volatile state is
// resolved per mode, and what survives becomes the new durable baseline
// (the rebooted machine's disk contents). Callers discard every layer above
// the disk (pools, managers, WAL handles) and re-open.
func (d *Disk) Crash(mode CrashMode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for name, f := range d.files {
		f.mu.Lock()
		if mode == CrashDropVolatile {
			if !f.durableExists {
				f.mu.Unlock()
				delete(d.files, name)
				continue
			}
			f.blocks = f.blocks[:f.durableLen]
			for no, img := range f.saved {
				copy(f.blocks[no], img)
			}
		}
		f.durableLen = int64(len(f.blocks))
		f.durableExists = true
		f.saved = nil
		f.mu.Unlock()
	}
}

// Truncate shrinks a file to nblocks blocks (a recovery-time operation: the
// restart discards log/heap tails beyond the recovered prefix). Growing is
// not supported; truncating past the end is a no-op.
func (d *Disk) Truncate(name string, nblocks int64) error {
	f, err := d.get(name)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if nblocks < 0 {
		nblocks = 0
	}
	if nblocks < int64(len(f.blocks)) {
		f.blocks = f.blocks[:nblocks]
	}
	if f.durableLen > int64(len(f.blocks)) {
		f.durableLen = int64(len(f.blocks))
	}
	for no := range f.saved {
		if no >= int64(len(f.blocks)) {
			delete(f.saved, no)
		}
	}
	return nil
}
