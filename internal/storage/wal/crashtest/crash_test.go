package crashtest

import "testing"

// TestCrashPointMatrix runs the full crash matrix: every named WAL crash
// site × both post-crash disk images. Each cell simulates a kill exactly at
// that site, recovers, and requires the recovered state to be exactly the
// committed prefix (the in-flight transaction all-or-nothing).
func TestCrashPointMatrix(t *testing.T) {
	for _, site := range Sites {
		for _, mode := range Modes {
			t.Run(site+"/"+mode.String(), func(t *testing.T) {
				Run(t, site, mode)
			})
		}
	}
}
