// Package crashtest is the deterministic crash-point harness for the WAL
// and its recovery path. It enumerates every named crash site the log's
// Hook exposes — mid-record, post-record-pre-fsync, the three segment-
// rotation points, the three checkpoint points — and for each one runs a
// scripted transactional workload, simulates a kill exactly at that site
// (hook panics, disk crashes), re-opens the device with a fresh manager,
// recovers, and asserts the surviving state is exactly the committed
// prefix: every acknowledged transaction fully present, the in-flight one
// either fully present or fully absent, nothing torn.
//
// The harness is deliberately not randomized: each (site, mode) cell is a
// reproducible scenario. The randomized counterpart lives in the sm
// package's recovery property test.
package crashtest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/sm"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// The named crash sites, matching the strings the WAL passes to its Hook.
const (
	// SiteAppendMidRecord fires between the block writes of a record that
	// spans blocks: the crash leaves a torn record at the log tail.
	SiteAppendMidRecord = "append:mid-record"
	// SiteAppendPreFsync fires after a batch is fully written but before
	// any fsync: a drop-volatile crash loses the whole batch.
	SiteAppendPreFsync = "append:post-record-pre-fsync"
	// SiteRotatePreSync fires at segment rotation before the old segment's
	// final fsync.
	SiteRotatePreSync = "rotate:pre-sync"
	// SiteRotatePreCreate fires after the old segment is sealed but before
	// the new one exists.
	SiteRotatePreCreate = "rotate:pre-create"
	// SiteRotatePostCreate fires with the new segment created but nothing
	// written to it.
	SiteRotatePostCreate = "rotate:post-create"
	// SiteCheckpointPreRecord fires with heaps flushed durable but no
	// checkpoint record written.
	SiteCheckpointPreRecord = "checkpoint:pre-record"
	// SiteCheckpointPreSync fires with the checkpoint record written but
	// not yet durable.
	SiteCheckpointPreSync = "checkpoint:pre-sync"
	// SiteCheckpointPreTruncate fires with the checkpoint durable but old
	// segments not yet deleted.
	SiteCheckpointPreTruncate = "checkpoint:pre-truncate"
)

// Sites lists every named crash site, in log-lifecycle order.
var Sites = []string{
	SiteAppendMidRecord,
	SiteAppendPreFsync,
	SiteRotatePreSync,
	SiteRotatePreCreate,
	SiteRotatePostCreate,
	SiteCheckpointPreRecord,
	SiteCheckpointPreSync,
	SiteCheckpointPreTruncate,
}

// Modes lists both post-crash disk images: volatile (unsynced) writes
// dropped, and — the adversarial case — retained.
var Modes = []disk.CrashMode{disk.CrashDropVolatile, disk.CrashKeepVolatile}

// Small geometry so every site is reachable quickly: 256-byte blocks make
// ~90-byte rows span blocks within a batch, and 4-block segments rotate
// every couple of transactions.
const (
	blockSize = 256
	segBlocks = 4
	poolPages = 64
)

// crashSignal is the panic value the armed hook throws to simulate a kill.
type crashSignal struct{ site string }

// harness drives one (site, mode) scenario.
type harness struct {
	t    *testing.T
	site string
	mode disk.CrashMode

	d *disk.Disk
	m *sm.Manager
	l *wal.Log

	// model is the reference: what every acknowledged commit built.
	model map[int64]string
	// pending is the reference including the commit in flight when the
	// crash fired (nil when the crash hit outside a commit).
	pending map[int64]string

	fired   bool
	crashed bool
}

func testSchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("id", tuple.KindInt), tuple.Col("name", tuple.KindString))
}

// Run executes the scripted workload against a fresh device, kills it at
// the first occurrence of the target site after the workload is armed,
// recovers with a fresh manager, and verifies exact committed-prefix
// equality. It fails the test if the site is never reached — every named
// site must actually be covered.
func Run(t *testing.T, site string, mode disk.CrashMode) {
	t.Helper()
	h := &harness{t: t, site: site, mode: mode, model: make(map[int64]string)}
	h.d = disk.New(disk.Config{BlockSize: blockSize})
	h.m = sm.NewSharedDisk(h.d, poolPages, nil)
	l, err := wal.Open(h.d, wal.Options{SegmentBlocks: segBlocks})
	if err != nil {
		t.Fatal(err)
	}
	h.l = l
	h.m.EnableWAL(l)
	if _, err := h.m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := h.m.BuildUnclustered("t", "id"); err != nil {
		t.Fatal(err)
	}

	// Committed prefix: transactions and a checkpoint before arming, so the
	// crash always has durable history behind it.
	for i := 0; i < 3; i++ {
		h.applyTx(i)
	}
	if err := h.m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Arm: the first time the target site fires, kill the process image.
	h.l.Hook = func(s string) {
		if s == h.site {
			h.fired = true
			panic(crashSignal{site: s})
		}
	}
	for i := 3; i < 60 && !h.crashed; i++ {
		if i%5 == 4 {
			h.guard(func() {
				if err := h.m.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			})
			if h.crashed {
				break
			}
		}
		h.guard(func() { h.applyTx(i) })
	}
	if !h.fired {
		t.Fatalf("crash site %s was never reached by the workload", h.site)
	}

	// The kill: surviving state is the durable image plus (keep-volatile
	// only) unsynced writes. Re-open everything from the device alone.
	h.d.Crash(h.mode)
	m2 := sm.NewSharedDisk(h.d, poolPages, nil)
	l2, err := wal.Open(h.d, wal.Options{SegmentBlocks: segBlocks})
	if err != nil {
		t.Fatalf("re-opening WAL after crash at %s: %v", h.site, err)
	}
	m2.EnableWAL(l2)
	if err := m2.Recover(); err != nil {
		t.Fatalf("recovery after crash at %s: %v", h.site, err)
	}
	h.verify(m2)
}

// guard runs one workload step, converting the armed hook's panic into the
// crashed flag. Any other panic propagates.
func (h *harness) guard(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); !ok {
				panic(r)
			}
			h.crashed = true
		}
	}()
	fn()
}

// applyTx stages and commits transaction i: three inserts (long names, so
// records span blocks), one update of an older row, one delete of another.
// The reference model moves to the post-state only after Commit returns;
// while the commit is in flight the post-state sits in pending, so a crash
// inside Commit leaves both candidate outcomes available to verify.
func (h *harness) applyTx(i int) {
	ctx := context.Background()
	tx := h.m.Begin()
	next := make(map[int64]string, len(h.model)+3)
	for k, v := range h.model {
		next[k] = v
	}
	for j := 0; j < 3; j++ {
		id := int64(i*10 + j)
		name := fmt.Sprintf("row-%05d-%s", id, strings.Repeat("x", 64))
		if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(id), tuple.Str(name)}); err != nil {
			h.t.Fatal(err)
		}
		next[id] = name
	}
	if id := int64((i - 2) * 10); i >= 2 {
		if old, ok := next[id]; ok {
			rid, found := h.findRID(tx, id)
			if !found {
				h.t.Fatalf("tx %d: update target id=%d not found", i, id)
			}
			upd := old + "+u"
			if err := tx.StageUpdate(ctx, "t", rid, tuple.Tuple{tuple.I64(id), tuple.Str(upd)}); err != nil {
				h.t.Fatal(err)
			}
			next[id] = upd
		}
	}
	if id := int64((i-3)*10 + 1); i >= 3 {
		if _, ok := next[id]; ok {
			rid, found := h.findRID(tx, id)
			if !found {
				h.t.Fatalf("tx %d: delete target id=%d not found", i, id)
			}
			if err := tx.StageDelete(ctx, "t", rid); err != nil {
				h.t.Fatal(err)
			}
			delete(next, id)
		}
	}
	h.pending = next
	if err := tx.Commit(ctx); err != nil {
		h.t.Fatalf("tx %d commit: %v", i, err)
	}
	h.model = next
	h.pending = nil
}

// findRID locates the heap RID of the row with the given id through the
// transaction's effective view.
func (h *harness) findRID(tx *sm.Tx, id int64) (heap.RID, bool) {
	var out heap.RID
	found := false
	if err := tx.ScanEffective(context.Background(), "t", func(rid heap.RID, row tuple.Tuple) bool {
		if row[0].I == id {
			out, found = rid, true
			return false
		}
		return true
	}); err != nil {
		h.t.Fatal(err)
	}
	return out, found
}

// verify asserts the recovered table equals the committed prefix exactly:
// the acknowledged model, or — when the crash hit inside a commit whose
// record reached the durable log — that model plus the complete in-flight
// transaction. Anything else (partial transaction, lost acknowledged row,
// torn tuple) is a failure. The rebuilt unclustered index must agree with
// the heap row for every id.
func (h *harness) verify(m *sm.Manager) {
	h.t.Helper()
	tab, err := m.Table("t")
	if err != nil {
		h.t.Fatalf("recovered database lost table t: %v", err)
	}
	got := make(map[int64]string)
	if err := tab.Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
		got[row[0].I] = row[1].S
		return true
	}); err != nil {
		h.t.Fatal(err)
	}
	if equalModels(got, h.model) {
		// Committed prefix exactly.
	} else if h.pending != nil && equalModels(got, h.pending) {
		// In-flight commit's record reached the durable log before the
		// crash: the whole transaction is present. Also exact.
	} else {
		h.t.Fatalf("crash at %s/%s: recovered state matches neither the committed prefix nor "+
			"prefix+in-flight:\n  got:       %s\n  committed: %s\n  +inflight: %s",
			h.site, h.mode, renderModel(got), renderModel(h.model), renderModel(h.pending))
	}

	// Index agreement: every recovered row reachable by key, no ghosts.
	ix, ok := tab.Unclustered["id"]
	if !ok {
		h.t.Fatal("recovered database lost the unclustered index on id")
	}
	seen := 0
	for id, name := range got {
		rids, err := ix.Search(tuple.I64(id))
		if err != nil {
			h.t.Fatal(err)
		}
		live := 0
		for _, rb := range rids {
			rid, err := sm.DecodeRID(rb)
			if err != nil {
				h.t.Fatal(err)
			}
			row, err := tab.Heap.ReadTuple(rid)
			if err != nil {
				continue // ghost entry: tombstoned row, skipped by scans
			}
			if row[0].I == id && row[1].S == name {
				live++
			}
		}
		if live != 1 {
			h.t.Fatalf("crash at %s/%s: index finds %d live entries for id=%d, want 1",
				h.site, h.mode, live, id)
		}
		seen++
	}
	_ = seen
}

func equalModels(a, b map[int64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func renderModel(m map[int64]string) string {
	if m == nil {
		return "<none>"
	}
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("%d rows {%s}", len(ids), strings.Join(parts, ","))
}
