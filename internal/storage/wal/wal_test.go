package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"qpipe/internal/storage/disk"
)

func newDisk(t *testing.T, blockSize int) *disk.Disk {
	t.Helper()
	return disk.New(disk.Config{BlockSize: blockSize})
}

func collect(t *testing.T, l *Log, after int64) []Record {
	t.Helper()
	var recs []Record
	err := l.Scan(after, func(r Record) error {
		r.Payload = append([]byte(nil), r.Payload...)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return recs
}

func TestAppendFlushReopenRoundtrip(t *testing.T) {
	d := newDisk(t, 512)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("payload-%03d-%s", i, string(make([]byte, i*17))))
		want = append(want, p)
		_, end, err := l.Append([]Entry{{Type: TypeInsert, Payload: p}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(end); err != nil {
			t.Fatal(err)
		}
	}
	// A crash that drops volatile state must not lose anything flushed.
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != TypeInsert || string(r.Payload) != string(want[i]) {
			t.Fatalf("record %d mismatch: type=%v payload=%q", i, r.Type, r.Payload)
		}
		if i > 0 && recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("LSNs not increasing: %d then %d", recs[i-1].LSN, recs[i].LSN)
		}
	}
}

func TestUnflushedTailDropsOnCrash(t *testing.T) {
	d := newDisk(t, 512)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, end, err := l.Append([]Entry{{Type: TypeInsert, Payload: []byte("durable")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(end); err != nil {
		t.Fatal(err)
	}
	// Appended but never flushed: must not survive a drop-volatile crash.
	if _, _, err := l.Append([]Entry{{Type: TypeInsert, Payload: []byte("volatile")}}); err != nil {
		t.Fatal(err)
	}
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) != 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("after crash got %v", recs)
	}
	// And the log must be appendable after reopen.
	_, end2, err := l2.Append([]Entry{{Type: TypeCommit, Payload: []byte("post")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(end2); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l2, -1)); got != 2 {
		t.Fatalf("after reopen+append got %d records, want 2", got)
	}
}

func TestKeepVolatileCrashKeepsTail(t *testing.T) {
	d := newDisk(t, 512)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]Entry{{Type: TypeInsert, Payload: []byte("cached")}}); err != nil {
		t.Fatal(err)
	}
	d.Crash(disk.CrashKeepVolatile)
	l2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) != 1 || string(recs[0].Payload) != "cached" {
		t.Fatalf("keep-volatile crash lost the cached record: %v", recs)
	}
}

func TestRotationAndMultiSegmentScan(t *testing.T) {
	d := newDisk(t, 256)
	l, err := Open(d, Options{SegmentBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("rec-%04d-%s", i, string(make([]byte, 60))))
		_, end, err := l.Append([]Entry{{Type: TypeUpdate, Payload: p}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(end); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.FilesWithPrefix(segPrefix)); got < 2 {
		t.Fatalf("expected multiple segments, got %d", got)
	}
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{SegmentBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) != n {
		t.Fatalf("got %d records across segments, want %d", len(recs), n)
	}
}

func TestSpanningRecord(t *testing.T) {
	d := newDisk(t, 128)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1000) // spans many 128-byte blocks
	for i := range big {
		big[i] = byte(i)
	}
	_, end, err := l.Append([]Entry{{Type: TypeDDL, Payload: big}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(end); err != nil {
		t.Fatal(err)
	}
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) != 1 || len(recs[0].Payload) != len(big) {
		t.Fatalf("spanning record not recovered: %d recs", len(recs))
	}
	for i := range big {
		if recs[0].Payload[i] != big[i] {
			t.Fatalf("payload byte %d corrupted", i)
		}
	}
}

func TestCheckpointTruncatesOldSegments(t *testing.T) {
	d := newDisk(t, 256)
	l, err := Open(d, Options{SegmentBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := make([]byte, 80)
		_, end, err := l.Append([]Entry{{Type: TypeInsert, Payload: p}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(end); err != nil {
			t.Fatal(err)
		}
	}
	before := len(d.FilesWithPrefix(segPrefix))
	if before < 3 {
		t.Fatalf("want >=3 segments before checkpoint, got %d", before)
	}
	if err := l.Checkpoint([]byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	after := len(d.FilesWithPrefix(segPrefix))
	if after >= before {
		t.Fatalf("checkpoint did not delete old segments: %d -> %d", before, after)
	}
	// Post-checkpoint records are the only thing a scan from the checkpoint
	// LSN sees.
	_, end, err := l.Append([]Entry{{Type: TypeCommit, Payload: []byte("after")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(end); err != nil {
		t.Fatal(err)
	}
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{SegmentBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload, at, ok := l2.Checkpointed()
	if !ok || string(payload) != "snapshot" {
		t.Fatalf("checkpoint not recovered: ok=%v payload=%q", ok, payload)
	}
	recs := collect(t, l2, at)
	if len(recs) != 1 || string(recs[0].Payload) != "after" {
		t.Fatalf("scan after checkpoint: %v", recs)
	}
}

func TestWriteFaultPoisonsLog(t *testing.T) {
	d := newDisk(t, 512)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bang := errors.New("injected")
	d.InjectWriteFaults(segPrefix, 1, bang)
	if _, _, err := l.Append([]Entry{{Type: TypeInsert, Payload: []byte("x")}}); !errors.Is(err, bang) {
		t.Fatalf("append with injected fault: %v", err)
	}
	// Sticky: the handle stays poisoned even after faults clear.
	d.ClearFaults()
	if _, _, err := l.Append([]Entry{{Type: TypeInsert, Payload: []byte("y")}}); !errors.Is(err, bang) {
		t.Fatalf("append after fault should stay poisoned: %v", err)
	}
	if err := l.Flush(l.LSN()); !errors.Is(err, bang) {
		t.Fatalf("flush after fault should stay poisoned: %v", err)
	}
}

func TestFsyncFaultLeavesCommittedPrefix(t *testing.T) {
	d := newDisk(t, 512)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, end, err := l.Append([]Entry{{Type: TypeCommit, Payload: []byte("good")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(end); err != nil {
		t.Fatal(err)
	}
	bang := errors.New("fsync died")
	d.InjectWriteFaults(segPrefix, 1, bang)
	_, end2, err := l.Append([]Entry{{Type: TypeCommit, Payload: []byte("bad")}})
	if err != nil {
		// The append itself may hit the fault depending on block layout;
		// either way the flushed prefix must survive.
		end2 = end
	} else if ferr := l.Flush(end2); !errors.Is(ferr, bang) {
		t.Fatalf("flush should fail: %v", ferr)
	}
	d.ClearFaults()
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) < 1 || string(recs[0].Payload) != "good" {
		t.Fatalf("committed prefix lost: %v", recs)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	d := newDisk(t, 512)
	l, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := []byte(fmt.Sprintf("w%d-%d", w, i))
				_, end, err := l.Append([]Entry{{Type: TypeBegin, Payload: p}, {Type: TypeCommit, Payload: p}})
				if err != nil {
					errs <- err
					return
				}
				if err := l.Flush(end); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	d.Crash(disk.CrashDropVolatile)
	l2, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, -1)
	if len(recs) != writers*perWriter*2 {
		t.Fatalf("got %d records, want %d", len(recs), writers*perWriter*2)
	}
	// Batches are atomic and contiguous: records alternate begin/commit with
	// matching payloads.
	for i := 0; i < len(recs); i += 2 {
		if recs[i].Type != TypeBegin || recs[i+1].Type != TypeCommit ||
			string(recs[i].Payload) != string(recs[i+1].Payload) {
			t.Fatalf("batch %d not contiguous: %v %v", i/2, recs[i].Type, recs[i+1].Type)
		}
	}
}

func TestDecodeRecordContract(t *testing.T) {
	// The three legal outcomes, spot-checked (the fuzzer explores the rest).
	if _, _, err := DecodeRecord(nil); err != io.EOF {
		t.Fatalf("empty: %v", err)
	}
	if _, _, err := DecodeRecord(make([]byte, 64)); err != io.EOF {
		t.Fatalf("zero padding: %v", err)
	}
	enc := AppendRecord(nil, TypeCommit, []byte("hello"))
	rec, n, err := DecodeRecord(enc)
	if err != nil || n != len(enc) || rec.Type != TypeCommit || string(rec.Payload) != "hello" {
		t.Fatalf("roundtrip: rec=%+v n=%d err=%v", rec, n, err)
	}
	enc[len(enc)-1] ^= 0xff
	var corrupt *CorruptRecordError
	if _, _, err := DecodeRecord(enc); !errors.As(err, &corrupt) {
		t.Fatalf("flipped byte: %v", err)
	}
}
