// Record framing for the write-ahead log. A record is
//
//	[0:4)  uint32 payload length (little-endian)
//	[4:8)  uint32 CRC-32C over type byte + payload
//	[8]    record type
//	[9:9+len) payload
//
// packed back to back in a byte stream that spans disk blocks. Blocks are
// zero-filled, so an all-zero header marks the end of written data (no
// record has payload length 0 with type 0). The CRC makes torn tails —
// a crash mid-record — detectable: the header or payload that never finished
// writing fails the checksum and replay stops at the last intact record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// RecordType tags what a record carries. The WAL treats payloads as opaque
// bytes; the storage manager defines their encoding.
type RecordType byte

// Record types. TypeCommit is the commit point: a transaction whose commit
// record is durable is redone at recovery, anything else is discarded.
const (
	typeInvalid    RecordType = 0 // zero padding; never written
	TypeBegin      RecordType = 1
	TypeInsert     RecordType = 2
	TypeUpdate     RecordType = 3
	TypeDelete     RecordType = 4
	TypeCommit     RecordType = 5
	TypeDDL        RecordType = 6
	TypeCheckpoint RecordType = 7
	maxRecordType  RecordType = 7
)

func (t RecordType) String() string {
	switch t {
	case TypeBegin:
		return "begin"
	case TypeInsert:
		return "insert"
	case TypeUpdate:
		return "update"
	case TypeDelete:
		return "delete"
	case TypeCommit:
		return "commit"
	case TypeDDL:
		return "ddl"
	case TypeCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// headerSize is the fixed record prefix: length, CRC, type.
const headerSize = 9

// MaxPayload bounds a single record's payload. Anything larger in a length
// header is corruption, not a record — the bound keeps a corrupt header from
// driving a huge allocation.
const MaxPayload = 1 << 26 // 64 MiB

// castagnoli is the CRC-32C table (the polynomial storage systems use; it
// detects the short burst errors torn writes produce).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptRecordError reports a record that failed validation: a CRC
// mismatch, an impossible length, an unknown type, or a truncated frame.
// Recovery treats a corrupt record in the final segment as the torn tail of
// the log (replay stops there); anywhere else it is real corruption.
type CorruptRecordError struct {
	LSN    int64  // position of the bad record (0 when decoding raw bytes)
	Reason string // what failed
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("wal: corrupt record at lsn %d: %s", e.LSN, e.Reason)
}

// Record is one decoded log record.
type Record struct {
	Type    RecordType
	Payload []byte
	LSN     int64 // start offset, set by the log reader
}

// AppendRecord encodes one record onto dst and returns the extended slice.
func AppendRecord(dst []byte, typ RecordType, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(crc32.Update(0, castagnoli, []byte{byte(typ)}), castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = byte(typ)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord decodes the record at the start of b. It returns the record,
// the number of bytes consumed, and an error: io.EOF at a clean end of log
// (empty input or zero padding), or a *CorruptRecordError for anything that
// is not a whole, checksummed record. The returned payload aliases b.
//
// This is the single entry point recovery reads the log through, and the
// contract the FuzzWALDecode fuzzer pins: arbitrary bytes produce a record,
// io.EOF, or *CorruptRecordError — never a panic.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(b) < headerSize {
		if allZero(b) {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, &CorruptRecordError{Reason: fmt.Sprintf("truncated header (%d bytes)", len(b))}
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	typ := RecordType(b[8])
	if typ == typeInvalid {
		if n == 0 && crc == 0 {
			return Record{}, 0, io.EOF // zero padding: end of written data
		}
		return Record{}, 0, &CorruptRecordError{Reason: "record type 0"}
	}
	if typ > maxRecordType {
		return Record{}, 0, &CorruptRecordError{Reason: fmt.Sprintf("unknown record type %d", byte(typ))}
	}
	if n > MaxPayload {
		return Record{}, 0, &CorruptRecordError{Reason: fmt.Sprintf("payload length %d exceeds maximum %d", n, MaxPayload)}
	}
	if int(n) > len(b)-headerSize {
		return Record{}, 0, &CorruptRecordError{Reason: fmt.Sprintf("payload length %d overruns data (%d bytes left)", n, len(b)-headerSize)}
	}
	payload := b[headerSize : headerSize+int(n)]
	want := crc32.Update(crc32.Update(0, castagnoli, b[8:9]), castagnoli, payload)
	if want != crc {
		return Record{}, 0, &CorruptRecordError{Reason: fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", crc, want)}
	}
	return Record{Type: typ, Payload: payload}, headerSize + int(n), nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
