// Package wal implements the write-ahead log: an append-only, segmented,
// CRC-framed record log over the simulated disk, with group commit and an
// explicit fsync boundary (disk.Sync). The log is the durability story for
// the whole engine — a transaction is committed exactly when its commit
// record is flushed, and recovery redoes committed transactions from here.
//
// Running over the simulated device means the fault machinery applies to
// the log itself: InjectWriteFaults("wal:", ...) makes log appends or
// fsyncs fail, and disk.Crash reconstructs the post-crash image the
// recovery path must handle. The Hook field names every crash site the
// crash-point harness (wal/crashtest) enumerates.
package wal

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"qpipe/internal/storage/disk"
)

// Options sizes the log.
type Options struct {
	// SegmentBlocks is the number of disk blocks per log segment; the log
	// rotates to a fresh segment file once the current one reaches it
	// (0 = 256). Checkpoints delete segments older than the one holding the
	// checkpoint record.
	SegmentBlocks int
}

// segPrefix namespaces log files on the shared device; fault injection on
// "wal:" targets exactly the log.
const segPrefix = "wal:"

func segName(n int) string { return fmt.Sprintf("%s%08d", segPrefix, n) }

// Entry is one record to append: a type and an opaque payload.
type Entry struct {
	Type    RecordType
	Payload []byte
}

// Log is the write-ahead log. Append/Flush/Checkpoint are safe for
// concurrent use.
type Log struct {
	d         *disk.Disk
	bs        int // device block size
	segBlocks int

	// Hook, when non-nil, is called at named crash sites (see the site
	// constants in crashtest): "append:mid-record" between block writes of
	// a spanning record, "append:post-record-pre-fsync" after a batch is on
	// disk but before any fsync, "rotate:pre-sync"/"rotate:pre-create"/
	// "rotate:post-create" inside segment rotation, and "checkpoint:
	// pre-record"/"checkpoint:pre-sync"/"checkpoint:pre-truncate" inside a
	// checkpoint. The harness installs a hook that panics at its target
	// site, simulating a kill there. Install before concurrent use.
	Hook func(site string)

	mu          sync.Mutex
	cond        *sync.Cond
	segs        []int  // segment numbers, ascending; last is current
	fullBlocks  int64  // complete blocks in the current segment
	tail        []byte // bytes of the partial tail block (already on disk, padded)
	tailBlockNo int64  // disk block holding tail, -1 if tail is empty
	durableLSN  int64
	flushing    bool
	err         error // sticky: a failed log write poisons the handle

	ckptPayload []byte
	ckptLSN     int64
	hasCkpt     bool

	scratch []byte
}

// lsn packs a segment number and byte offset into one ordered value.
func lsn(segNo int, off int64) int64 { return int64(segNo)<<32 | off }

func (l *Log) hook(site string) {
	if l.Hook != nil {
		l.Hook(site)
	}
}

// Open binds to the device's log, creating an empty one if none exists.
// Existing segments are scanned to find the end of the valid record stream
// (a torn tail in the final segment is where the log ends); the last
// checkpoint's payload is retained for Checkpointed. The write position
// resumes exactly after the last intact record.
func Open(d *disk.Disk, opts Options) (*Log, error) {
	if opts.SegmentBlocks <= 0 {
		opts.SegmentBlocks = 256
	}
	l := &Log{d: d, bs: d.BlockSize(), segBlocks: opts.SegmentBlocks, tailBlockNo: -1}
	l.cond = sync.NewCond(&l.mu)
	segs, err := listSegments(d)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		d.Create(segName(1))
		l.segs = []int{1}
		return l, nil
	}
	l.segs = segs
	// Scan every segment; only the last may be torn.
	for i, n := range segs {
		last := i == len(segs)-1
		end, err := l.scanSegment(n, -1, func(r Record) error {
			if r.Type == TypeCheckpoint {
				l.ckptPayload = append([]byte(nil), r.Payload...)
				l.ckptLSN = r.LSN
				l.hasCkpt = true
			}
			return nil
		})
		if err != nil {
			var corrupt *CorruptRecordError
			if last && errors.As(err, &corrupt) {
				// Torn tail: the log ends at the last intact record.
			} else {
				return nil, err
			}
		}
		if last {
			l.fullBlocks = end / int64(l.bs)
			tailLen := int(end % int64(l.bs))
			if tailLen > 0 {
				raw, err := d.Read(segName(n), l.fullBlocks)
				if err != nil {
					return nil, err
				}
				l.tail = append(l.tail[:0], raw[:tailLen]...)
				l.tailBlockNo = l.fullBlocks
				// Re-pad the tail block so garbage beyond the valid prefix
				// (a torn record) cannot survive next to fresh appends.
				if err := l.writeTailLocked(segName(n)); err != nil {
					return nil, err
				}
				if err := d.Truncate(segName(n), l.fullBlocks+1); err != nil {
					return nil, err
				}
			} else {
				if err := d.Truncate(segName(n), l.fullBlocks); err != nil {
					return nil, err
				}
			}
		}
	}
	return l, nil
}

func listSegments(d *disk.Disk) ([]int, error) {
	var segs []int
	for _, name := range d.FilesWithPrefix(segPrefix) {
		n, err := strconv.Atoi(strings.TrimPrefix(name, segPrefix))
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q", name)
		}
		segs = append(segs, n)
	}
	return segs, nil // FilesWithPrefix sorts; zero-padded names sort numerically
}

// Checkpointed returns the most recent checkpoint's payload and LSN
// (ok=false when the log has none).
func (l *Log) Checkpointed() (payload []byte, at int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptPayload, l.ckptLSN, l.hasCkpt
}

// LSN returns the current end-of-log position.
func (l *Log) LSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsnLocked()
}

// DurableLSN returns the position up to which the log is known durable.
func (l *Log) DurableLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

func (l *Log) lsnLocked() int64 {
	return lsn(l.segs[len(l.segs)-1], l.fullBlocks*int64(l.bs)+int64(len(l.tail)))
}

// Append writes one atomic batch of records to the log (contiguous, in
// order — a transaction's net effect plus its commit record). It returns
// the batch's start and end LSNs. The records are on the device but NOT
// durable until Flush(end) returns.
func (l *Log) Append(entries []Entry) (start, end int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, 0, l.err
	}
	if err := l.rotateLocked(); err != nil {
		return 0, 0, err
	}
	buf := l.scratch[:0]
	for _, e := range entries {
		buf = AppendRecord(buf, e.Type, e.Payload)
	}
	l.scratch = buf
	start = l.lsnLocked()
	seg := segName(l.segs[len(l.segs)-1])
	for int64(len(l.tail))+int64(len(buf)) >= int64(l.bs) {
		take := l.bs - len(l.tail)
		block := make([]byte, 0, l.bs)
		block = append(block, l.tail...)
		block = append(block, buf[:take]...)
		if werr := l.writeBlockLocked(seg, block); werr != nil {
			l.err = werr
			return 0, 0, werr
		}
		buf = buf[take:]
		l.tail = l.tail[:0]
		if len(buf) > 0 {
			l.hook("append:mid-record")
		}
	}
	if len(buf) > 0 {
		l.tail = append(l.tail, buf...)
		if werr := l.writeTailLocked(seg); werr != nil {
			l.err = werr
			return 0, 0, werr
		}
	}
	end = l.lsnLocked()
	l.hook("append:post-record-pre-fsync")
	return start, end, nil
}

// writeBlockLocked writes one full block at the current append position:
// overwriting the previously-partial tail block if there is one, else
// appending a fresh block. Advances fullBlocks.
func (l *Log) writeBlockLocked(seg string, block []byte) error {
	if l.tailBlockNo >= 0 {
		if err := l.d.Write(seg, l.tailBlockNo, block); err != nil {
			return err
		}
	} else {
		if _, err := l.d.Append(seg, block); err != nil {
			return err
		}
	}
	l.tailBlockNo = -1
	l.fullBlocks++
	return nil
}

// writeTailLocked writes the partial tail block (zero-padded) to disk.
func (l *Log) writeTailLocked(seg string) error {
	if len(l.tail) == 0 {
		return nil
	}
	block := make([]byte, l.bs)
	copy(block, l.tail)
	if l.tailBlockNo >= 0 {
		return l.d.Write(seg, l.tailBlockNo, block)
	}
	if _, err := l.d.Append(seg, block); err != nil {
		return err
	}
	l.tailBlockNo = l.fullBlocks
	return nil
}

// rotateLocked starts a fresh segment when the current one is full. The old
// segment is fsynced first — its records may include flushed commits, and a
// segment is never written again after rotation.
func (l *Log) rotateLocked() error {
	if l.fullBlocks < int64(l.segBlocks) {
		return nil
	}
	cur := l.segs[len(l.segs)-1]
	l.hook("rotate:pre-sync")
	if err := l.d.Sync(segName(cur)); err != nil {
		l.err = err
		return err
	}
	if end := l.lsnLocked(); end > l.durableLSN {
		l.durableLSN = end
	}
	l.hook("rotate:pre-create")
	next := cur + 1
	l.d.Create(segName(next))
	l.segs = append(l.segs, next)
	l.fullBlocks = 0
	l.tail = l.tail[:0]
	l.tailBlockNo = -1
	l.hook("rotate:post-create")
	return nil
}

// Flush makes the log durable at least through pos — the group-commit
// point. Concurrent committers coalesce: one becomes the flush leader and
// fsyncs the current segment once for the whole cohort; the rest wait on
// the resulting durable horizon.
func (l *Log) Flush(pos int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durableLSN < pos {
		if l.err != nil {
			return l.err
		}
		if l.flushing {
			l.cond.Wait()
			continue
		}
		l.flushing = true
		target := l.lsnLocked()
		seg := segName(l.segs[len(l.segs)-1])
		l.mu.Unlock()
		err := l.d.Sync(seg)
		l.mu.Lock()
		l.flushing = false
		l.cond.Broadcast()
		if err != nil {
			l.err = err
			return err
		}
		if target > l.durableLSN {
			l.durableLSN = target
		}
	}
	return nil
}

// Checkpoint appends a checkpoint record carrying the caller's snapshot
// payload, flushes it, and deletes every segment older than the one holding
// the record — those records are now redundant with the snapshot. The
// caller (the storage manager) must have made the snapshotted state durable
// first and must exclude concurrent commits.
func (l *Log) Checkpoint(payload []byte) error {
	l.hook("checkpoint:pre-record")
	start, end, err := l.Append([]Entry{{Type: TypeCheckpoint, Payload: payload}})
	if err != nil {
		return err
	}
	l.hook("checkpoint:pre-sync")
	if err := l.Flush(end); err != nil {
		return err
	}
	l.hook("checkpoint:pre-truncate")
	home := int(start >> 32)
	l.mu.Lock()
	keep := l.segs[:0]
	var drop []int
	for _, n := range l.segs {
		if n < home {
			drop = append(drop, n)
		} else {
			keep = append(keep, n)
		}
	}
	l.segs = keep
	l.ckptPayload = append([]byte(nil), payload...)
	l.ckptLSN = start
	l.hasCkpt = true
	l.mu.Unlock()
	for _, n := range drop {
		l.d.Remove(segName(n))
	}
	return nil
}

// Scan replays the log's records in order, skipping any with LSN <= after
// (pass a checkpoint LSN to replay only what the checkpoint does not
// cover, or a negative value for everything). A corrupt record in the final
// segment is the torn tail — the scan ends cleanly there; anywhere else it
// is returned as the error.
func (l *Log) Scan(after int64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]int(nil), l.segs...)
	l.mu.Unlock()
	for i, n := range segs {
		_, err := l.scanSegment(n, after, fn)
		if err != nil {
			var corrupt *CorruptRecordError
			if i == len(segs)-1 && errors.As(err, &corrupt) {
				return nil
			}
			return err
		}
	}
	return nil
}

// scanSegment decodes one segment's record stream from the device,
// returning the byte offset where valid records end. fn is invoked for
// records with LSN > after.
func (l *Log) scanSegment(segNo int, after int64, fn func(Record) error) (end int64, err error) {
	name := segName(segNo)
	nb := l.d.NumBlocks(name)
	data := make([]byte, 0, nb*l.bs)
	for b := 0; b < nb; b++ {
		raw, err := l.d.Read(name, int64(b))
		if err != nil {
			return 0, err
		}
		data = append(data, raw...)
	}
	off := int64(0)
	for {
		rec, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			if derr == io.EOF {
				return off, nil
			}
			var corrupt *CorruptRecordError
			if errors.As(derr, &corrupt) {
				corrupt.LSN = lsn(segNo, off)
			}
			return off, derr
		}
		rec.LSN = lsn(segNo, off)
		if rec.LSN > after {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += int64(n)
	}
}
