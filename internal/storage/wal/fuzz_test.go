package wal

import (
	"errors"
	"io"
	"testing"
)

// FuzzWALDecode pins the decoder's total contract: arbitrary bytes produce
// exactly one of a valid record, io.EOF (clean end of log), or a
// *CorruptRecordError — never a panic, never a record that violates its own
// framing. Recovery reads every byte of a possibly-torn log through
// DecodeRecord, so this contract is what makes crash recovery safe against
// arbitrary tail garbage.
func FuzzWALDecode(f *testing.F) {
	// Seeds: the interesting boundary shapes.
	f.Add([]byte{})                                                                  // empty
	f.Add(make([]byte, 4))                                                           // short zeros (clean EOF)
	f.Add(make([]byte, headerSize))                                                  // all-zero header (padding)
	f.Add([]byte{1, 2, 3})                                                           // truncated nonzero header
	f.Add(AppendRecord(nil, TypeBegin, nil))                                         // minimal valid record
	f.Add(AppendRecord(nil, TypeCommit, []byte{42}))                                 // valid with payload
	f.Add(AppendRecord(AppendRecord(nil, TypeBegin, []byte("tx")), TypeCommit, nil)) // two records
	big := AppendRecord(nil, TypeInsert, make([]byte, 300))
	f.Add(big)                // spans typical small blocks
	f.Add(big[:len(big)-5])   // torn payload
	f.Add(big[:headerSize-1]) // torn header
	bad := AppendRecord(nil, TypeUpdate, []byte("payload"))
	bad[5] ^= 0xff // corrupt CRC
	f.Add(bad)
	huge := make([]byte, headerSize)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f // absurd length
	huge[8] = byte(TypeInsert)
	f.Add(huge)
	zeroType := AppendRecord(nil, TypeBegin, nil)
	zeroType[8] = 0 // type 0 with nonzero length/crc
	f.Add(zeroType)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the stream like recovery does: decode until EOF or corruption.
		off := 0
		for {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				var ce *CorruptRecordError
				if !errors.Is(err, io.EOF) && !errors.As(err, &ce) {
					t.Fatalf("DecodeRecord returned a foreign error: %T %v", err, err)
				}
				if n != 0 {
					t.Fatalf("error with nonzero consumed count %d", n)
				}
				return
			}
			if rec.Type == 0 || rec.Type > maxRecordType {
				t.Fatalf("decoded record with invalid type %d", rec.Type)
			}
			if n < headerSize || n != headerSize+len(rec.Payload) {
				t.Fatalf("consumed %d bytes for %d-byte payload", n, len(rec.Payload))
			}
			if off+n > len(data) {
				t.Fatalf("consumed past end: off %d + n %d > %d", off, n, len(data))
			}
			// Round-trip: re-encoding what we decoded must reproduce the
			// exact bytes (the framing is canonical).
			enc := AppendRecord(nil, rec.Type, rec.Payload)
			if string(enc) != string(data[off:off+n]) {
				t.Fatalf("re-encode mismatch at offset %d", off)
			}
			off += n
		}
	})
}
