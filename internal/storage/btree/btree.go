// Package btree implements a disk-backed B+tree used for clustered and
// unclustered indexes. Leaves carry (key, payload) entries chained by a
// next-leaf pointer so clustered index scans stream leaves in key order —
// the access path behind Figure 9's order-sensitive scan experiment. For an
// unclustered index the payload is an encoded heap RID, and probes build a
// RID list that is sorted in page order before fetching (paper §3.2:
// "the list is then sorted on ascending page number to avoid multiple
// visits on the same page").
//
// Trees are built by bulk-loading sorted input (the paper's data is bulk
// loaded, §1) and additionally support single inserts with node splits for
// the update µEngine.
//
// Concurrency: readers may run concurrently; inserts require external
// exclusion (the update µEngine holds a table X lock), matching how the
// prototype delegated concurrency control to the storage manager.
package btree

import (
	"encoding/binary"
	"fmt"

	"qpipe/internal/storage/buffer"
	"qpipe/internal/tuple"
)

// Node page layout (within one fixed-size block):
//
//	[0]     u8  isLeaf
//	[1:3)   u16 nkeys
//	[3:11)  i64 next leaf page (-1 if none / internal)
//	[11:)   entries
//
// leaf entry:     key (encoded 1-value tuple) | u32 payload len | payload
// internal entry: key (encoded 1-value tuple) | i64 child page
const (
	hdrSize    = 11
	invalidPno = int64(-1)
)

type entry struct {
	key     tuple.Value
	payload []byte // leaf
	child   int64  // internal
}

type node struct {
	leaf    bool
	next    int64
	entries []entry
}

func decodeNode(buf []byte) (*node, error) {
	n := &node{
		leaf: buf[0] == 1,
		next: int64(binary.LittleEndian.Uint64(buf[3:11])),
	}
	cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := hdrSize
	n.entries = make([]entry, 0, cnt)
	for i := 0; i < cnt; i++ {
		kt, w, err := tuple.Decode(buf[off:], 1)
		if err != nil {
			return nil, fmt.Errorf("btree: corrupt key %d: %w", i, err)
		}
		off += w
		var e entry
		e.key = kt[0]
		if n.leaf {
			ln := binary.LittleEndian.Uint32(buf[off:])
			off += 4
			e.payload = append([]byte(nil), buf[off:off+int(ln)]...)
			off += int(ln)
		} else {
			e.child = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		n.entries = append(n.entries, e)
	}
	return n, nil
}

func (n *node) encodedSize() int {
	sz := hdrSize
	for _, e := range n.entries {
		sz += tuple.Tuple{e.key}.EncodedSize()
		if n.leaf {
			sz += 4 + len(e.payload)
		} else {
			sz += 8
		}
	}
	return sz
}

// encode writes the node into buf (a full page buffer), zero-padding.
func (n *node) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(n.next))
	off := hdrSize
	for _, e := range n.entries {
		enc := tuple.Tuple{e.key}.Encode(nil)
		copy(buf[off:], enc)
		off += len(enc)
		if n.leaf {
			binary.LittleEndian.PutUint32(buf[off:], uint32(len(e.payload)))
			off += 4
			copy(buf[off:], e.payload)
			off += len(e.payload)
		} else {
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.child))
			off += 8
		}
	}
}

// Tree is a B+tree over a single disk file. Page 0 is a meta page holding
// the root pointer and height.
type Tree struct {
	Name string
	pool *buffer.Pool

	root   int64
	height int // 1 = root is leaf
	npages int64
}

// Create makes an empty tree in a new disk file.
func Create(pool *buffer.Pool, name string) (*Tree, error) {
	d := pool.Disk()
	d.Create(name)
	t := &Tree{Name: name, pool: pool}
	// meta page 0
	if _, err := d.Append(name, make([]byte, d.BlockSize())); err != nil {
		return nil, err
	}
	t.npages = 1
	// empty root leaf at page 1
	rootBuf := make([]byte, d.BlockSize())
	(&node{leaf: true, next: invalidPno}).encode(rootBuf)
	if _, err := d.Append(name, rootBuf); err != nil {
		return nil, err
	}
	t.npages = 2
	t.root, t.height = 1, 1
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open binds to an existing tree file.
func Open(pool *buffer.Pool, name string) (*Tree, error) {
	d := pool.Disk()
	if !d.Exists(name) {
		return nil, fmt.Errorf("btree: no such file %q", name)
	}
	t := &Tree{Name: name, pool: pool, npages: int64(d.NumBlocks(name))}
	raw, err := d.Read(name, 0)
	if err != nil {
		return nil, err
	}
	t.root = int64(binary.LittleEndian.Uint64(raw[0:8]))
	t.height = int(binary.LittleEndian.Uint64(raw[8:16]))
	return t, nil
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.pool.Disk().BlockSize())
	binary.LittleEndian.PutUint64(buf[0:8], uint64(t.root))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(t.height))
	return t.pool.Disk().Write(t.Name, 0, buf)
}

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// NumPages returns the file size in pages (including the meta page).
func (t *Tree) NumPages() int64 { return t.npages }

func (t *Tree) readNode(pno int64) (*node, error) {
	id := buffer.PageID{File: t.Name, Block: pno}
	raw, err := t.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(id)
	return decodeNode(raw)
}

func (t *Tree) writeNode(pno int64, n *node) error {
	id := buffer.PageID{File: t.Name, Block: pno}
	raw, err := t.pool.Pin(id)
	if err != nil {
		return err
	}
	n.encode(raw)
	t.pool.MarkDirty(id)
	t.pool.Unpin(id)
	return nil
}

func (t *Tree) appendNode(n *node) (int64, error) {
	buf := make([]byte, t.pool.Disk().BlockSize())
	n.encode(buf)
	pno, err := t.pool.Disk().Append(t.Name, buf)
	if err != nil {
		return 0, err
	}
	t.npages = pno + 1
	return pno, nil
}

// ---- Bulk load --------------------------------------------------------------

// Item is one (key, payload) pair for bulk loading.
type Item struct {
	Key     tuple.Value
	Payload []byte
}

// BulkLoad replaces the tree's contents with the given key-sorted items,
// packing leaves to the fill factor (0 < ff <= 1, default 1.0) and building
// internal levels bottom-up.
func (t *Tree) BulkLoad(items []Item, ff float64) error {
	if ff <= 0 || ff > 1 {
		ff = 1.0
	}
	for i := 1; i < len(items); i++ {
		if tuple.Compare(items[i-1].Key, items[i].Key) > 0 {
			return fmt.Errorf("btree: bulk-load input not sorted at %d", i)
		}
	}
	blockSize := t.pool.Disk().BlockSize()
	limit := int(float64(blockSize) * ff)
	if limit < hdrSize+64 {
		limit = blockSize
	}

	// Build leaves.
	type built struct {
		pno int64
		min tuple.Value
	}
	var level []built
	cur := &node{leaf: true, next: invalidPno}
	var curMin tuple.Value
	flush := func() error {
		if len(cur.entries) == 0 {
			return nil
		}
		pno, err := t.appendNode(cur)
		if err != nil {
			return err
		}
		level = append(level, built{pno: pno, min: curMin})
		cur = &node{leaf: true, next: invalidPno}
		return nil
	}
	for _, it := range items {
		esz := tuple.Tuple{it.Key}.EncodedSize() + 4 + len(it.Payload)
		if len(cur.entries) > 0 && cur.encodedSize()+esz > limit {
			if err := flush(); err != nil {
				return err
			}
		}
		if len(cur.entries) == 0 {
			curMin = it.Key
		}
		cur.entries = append(cur.entries, entry{key: it.Key, payload: it.Payload})
	}
	if err := flush(); err != nil {
		return err
	}
	if len(level) == 0 {
		// Empty tree: single empty leaf root.
		pno, err := t.appendNode(&node{leaf: true, next: invalidPno})
		if err != nil {
			return err
		}
		t.root, t.height = pno, 1
		return t.writeMeta()
	}
	// Chain leaves.
	for i := 0; i < len(level)-1; i++ {
		n, err := t.readNode(level[i].pno)
		if err != nil {
			return err
		}
		n.next = level[i+1].pno
		if err := t.writeNode(level[i].pno, n); err != nil {
			return err
		}
	}
	// Build internal levels.
	height := 1
	for len(level) > 1 {
		var parents []built
		cur := &node{leaf: false, next: invalidPno}
		var curMin tuple.Value
		flushI := func() error {
			if len(cur.entries) == 0 {
				return nil
			}
			pno, err := t.appendNode(cur)
			if err != nil {
				return err
			}
			parents = append(parents, built{pno: pno, min: curMin})
			cur = &node{leaf: false, next: invalidPno}
			return nil
		}
		for _, ch := range level {
			esz := tuple.Tuple{ch.min}.EncodedSize() + 8
			if len(cur.entries) > 0 && cur.encodedSize()+esz > limit {
				if err := flushI(); err != nil {
					return err
				}
			}
			if len(cur.entries) == 0 {
				curMin = ch.min
			}
			cur.entries = append(cur.entries, entry{key: ch.min, child: ch.pno})
		}
		if err := flushI(); err != nil {
			return err
		}
		level = parents
		height++
	}
	t.root, t.height = level[0].pno, height
	return t.writeMeta()
}

// ---- Search ----------------------------------------------------------------

// childFor returns the child to descend into for key k. The descent is
// left-biased — it picks the child *before* the first separator >= k — so
// that runs of duplicate keys spanning a leaf boundary are found from their
// first occurrence (Range chains forward through leaf next-pointers).
func (n *node) childFor(k tuple.Value) int64 {
	lo, hi := 0, len(n.entries) // first index with key >= k
	for lo < hi {
		mid := (lo + hi) / 2
		if tuple.Compare(n.entries[mid].key, k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		lo--
	}
	return n.entries[lo].child
}

// findLeaf descends to the leaf that would contain k, returning the leaf's
// page number and decoded node, plus the root-to-leaf path (for splits).
func (t *Tree) findLeaf(k tuple.Value) (int64, *node, []int64, error) {
	pno := t.root
	var path []int64
	for {
		n, err := t.readNode(pno)
		if err != nil {
			return 0, nil, nil, err
		}
		if n.leaf {
			return pno, n, path, nil
		}
		if len(n.entries) == 0 {
			return 0, nil, nil, fmt.Errorf("btree: empty internal node at page %d", pno)
		}
		path = append(path, pno)
		pno = n.childFor(k)
	}
}

// Search returns the payloads of all entries with key == k.
func (t *Tree) Search(k tuple.Value) ([][]byte, error) {
	var out [][]byte
	err := t.Range(k, k, func(key tuple.Value, payload []byte) bool {
		out = append(out, payload)
		return true
	})
	return out, err
}

// Range iterates entries with lo <= key <= hi in key order. Invalid lo means
// "from the start"; invalid hi means "to the end". fn returning false stops.
func (t *Tree) Range(lo, hi tuple.Value, fn func(key tuple.Value, payload []byte) bool) error {
	return t.RangeFrom(lo, hi, 0, fn)
}

// RangeFrom is Range but may start at a given leaf ordinal offset (skipping
// whole leaves); used by the ordered-scan split in Figure 9's experiment
// where the second join packet re-reads only the skipped prefix.
func (t *Tree) RangeFrom(lo, hi tuple.Value, skipLeaves int, fn func(key tuple.Value, payload []byte) bool) error {
	var pno int64
	if lo.IsValid() {
		p, _, _, err := t.findLeaf(lo)
		if err != nil {
			return err
		}
		pno = p
	} else {
		// Leftmost leaf.
		p := t.root
		for {
			n, err := t.readNode(p)
			if err != nil {
				return err
			}
			if n.leaf {
				pno = p
				break
			}
			if len(n.entries) == 0 {
				return fmt.Errorf("btree: empty internal node at page %d", p)
			}
			p = n.entries[0].child
		}
	}
	for skipLeaves > 0 && pno != invalidPno {
		n, err := t.readNode(pno)
		if err != nil {
			return err
		}
		pno = n.next
		skipLeaves--
	}
	for pno != invalidPno {
		n, err := t.readNode(pno)
		if err != nil {
			return err
		}
		for _, e := range n.entries {
			if lo.IsValid() && tuple.Compare(e.key, lo) < 0 {
				continue
			}
			if hi.IsValid() && tuple.Compare(e.key, hi) > 0 {
				return nil
			}
			if !fn(e.key, e.payload) {
				return nil
			}
		}
		pno = n.next
	}
	return nil
}

// ScanLeaves iterates leaves in key order, invoking fn once per leaf with
// the leaf ordinal and its entries. Used by the clustered index-scan
// µEngine, which needs page-granular progress for OSP bookkeeping.
func (t *Tree) ScanLeaves(fn func(ord int, keys []tuple.Value, payloads [][]byte) bool) error {
	// Descend to leftmost leaf.
	pno := t.root
	for {
		n, err := t.readNode(pno)
		if err != nil {
			return err
		}
		if n.leaf {
			break
		}
		if len(n.entries) == 0 {
			return fmt.Errorf("btree: empty internal node at page %d", pno)
		}
		pno = n.entries[0].child
	}
	ord := 0
	for pno != invalidPno {
		n, err := t.readNode(pno)
		if err != nil {
			return err
		}
		keys := make([]tuple.Value, len(n.entries))
		payloads := make([][]byte, len(n.entries))
		for i, e := range n.entries {
			keys[i] = e.key
			payloads[i] = e.payload
		}
		if !fn(ord, keys, payloads) {
			return nil
		}
		pno = n.next
		ord++
	}
	return nil
}

// LeafPageNos walks the leaf chain returning leaf page numbers in key
// order. Scan engines cache this list so repeated scans address leaves
// directly (one buffered page read per leaf).
func (t *Tree) LeafPageNos() ([]int64, error) {
	pno := t.root
	for {
		n, err := t.readNode(pno)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			break
		}
		if len(n.entries) == 0 {
			return nil, fmt.Errorf("btree: empty internal node at page %d", pno)
		}
		pno = n.entries[0].child
	}
	var out []int64
	for pno != invalidPno {
		out = append(out, pno)
		n, err := t.readNode(pno)
		if err != nil {
			return nil, err
		}
		pno = n.next
	}
	return out, nil
}

// ReadLeafTuples reads one leaf page and decodes each payload as a tuple of
// ncols columns (clustered index leaves store full tuples).
func (t *Tree) ReadLeafTuples(pno int64, ncols int) ([]tuple.Tuple, error) {
	n, err := t.readNode(pno)
	if err != nil {
		return nil, err
	}
	if !n.leaf {
		return nil, fmt.Errorf("btree: page %d is not a leaf", pno)
	}
	out := make([]tuple.Tuple, 0, len(n.entries))
	for i, e := range n.entries {
		tp, _, err := tuple.Decode(e.payload, ncols)
		if err != nil {
			return nil, fmt.Errorf("btree: leaf %d entry %d: %w", pno, i, err)
		}
		out = append(out, tp)
	}
	return out, nil
}

// NumLeaves counts leaf pages (a full leaf walk; used at plan time to size
// ordered-scan sharing decisions).
func (t *Tree) NumLeaves() (int, error) {
	n := 0
	err := t.ScanLeaves(func(int, []tuple.Value, [][]byte) bool { n++; return true })
	return n, err
}

// ---- Insert ----------------------------------------------------------------

// Insert adds one (key, payload) entry, splitting nodes as needed.
// Duplicate keys are allowed (stored adjacent).
func (t *Tree) Insert(k tuple.Value, payload []byte) error {
	pno, leaf, path, err := t.findLeaf(k)
	if err != nil {
		return err
	}
	// Insert sorted within the leaf.
	ix := len(leaf.entries)
	for i, e := range leaf.entries {
		if tuple.Compare(e.key, k) > 0 {
			ix = i
			break
		}
	}
	leaf.entries = append(leaf.entries, entry{})
	copy(leaf.entries[ix+1:], leaf.entries[ix:])
	leaf.entries[ix] = entry{key: k, payload: payload}

	blockSize := t.pool.Disk().BlockSize()
	if leaf.encodedSize() <= blockSize {
		return t.writeNode(pno, leaf)
	}
	// Split the leaf.
	mid := len(leaf.entries) / 2
	right := &node{leaf: true, next: leaf.next, entries: append([]entry(nil), leaf.entries[mid:]...)}
	leaf.entries = leaf.entries[:mid]
	rpno, err := t.appendNode(right)
	if err != nil {
		return err
	}
	leaf.next = rpno
	if err := t.writeNode(pno, leaf); err != nil {
		return err
	}
	return t.insertIntoParent(path, pno, right.entries[0].key, rpno)
}

// insertIntoParent propagates a split upward. The new (sepKey, childPno)
// entry is placed positionally — immediately after the entry pointing at
// leftPno, the child that split — rather than by key search: separator keys
// record a child's minimum *at creation* and can go stale once smaller keys
// are inserted below, so key-ordered insertion could break child ordering.
func (t *Tree) insertIntoParent(path []int64, leftPno int64, sepKey tuple.Value, childPno int64) error {
	blockSize := t.pool.Disk().BlockSize()
	for len(path) > 0 {
		ppno := path[len(path)-1]
		path = path[:len(path)-1]
		parent, err := t.readNode(ppno)
		if err != nil {
			return err
		}
		ix := -1
		for i, e := range parent.entries {
			if e.child == leftPno {
				ix = i + 1
				break
			}
		}
		if ix < 0 {
			return fmt.Errorf("btree: parent %d has no entry for split child %d", ppno, leftPno)
		}
		parent.entries = append(parent.entries, entry{})
		copy(parent.entries[ix+1:], parent.entries[ix:])
		parent.entries[ix] = entry{key: sepKey, child: childPno}
		if parent.encodedSize() <= blockSize {
			return t.writeNode(ppno, parent)
		}
		mid := len(parent.entries) / 2
		right := &node{leaf: false, next: invalidPno, entries: append([]entry(nil), parent.entries[mid:]...)}
		parent.entries = parent.entries[:mid]
		rpno, err := t.appendNode(right)
		if err != nil {
			return err
		}
		if err := t.writeNode(ppno, parent); err != nil {
			return err
		}
		leftPno, sepKey, childPno = ppno, right.entries[0].key, rpno
	}
	// Split reached the root: grow a new root.
	oldRoot := t.root
	oldMin, err := t.minKey(oldRoot)
	if err != nil {
		return err
	}
	newRoot := &node{leaf: false, next: invalidPno, entries: []entry{
		{key: oldMin, child: oldRoot},
		{key: sepKey, child: childPno},
	}}
	rpno, err := t.appendNode(newRoot)
	if err != nil {
		return err
	}
	t.root = rpno
	t.height++
	return t.writeMeta()
}

func (t *Tree) minKey(pno int64) (tuple.Value, error) {
	n, err := t.readNode(pno)
	if err != nil {
		return tuple.Value{}, err
	}
	if len(n.entries) == 0 {
		return tuple.Value{}, nil
	}
	return n.entries[0].key, nil
}

// Count returns the number of entries (leaf walk).
func (t *Tree) Count() (int64, error) {
	var n int64
	err := t.ScanLeaves(func(_ int, keys []tuple.Value, _ [][]byte) bool {
		n += int64(len(keys))
		return true
	})
	return n, err
}

// Validate walks the tree checking structural invariants: key order within
// nodes, separator correctness, and leaf-chain ordering. Used by property
// tests after randomized insert workloads.
func (t *Tree) Validate() error {
	var prev *tuple.Value
	var verr error
	err := t.ScanLeaves(func(ord int, keys []tuple.Value, _ [][]byte) bool {
		for i := range keys {
			if prev != nil && tuple.Compare(*prev, keys[i]) > 0 {
				verr = fmt.Errorf("btree: leaf chain out of order at leaf %d entry %d", ord, i)
				return false
			}
			k := keys[i]
			prev = &k
		}
		return true
	})
	if err != nil {
		return err
	}
	return verr
}
