package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/disk"
	"qpipe/internal/tuple"
)

func newPool(blockSize int) *buffer.Pool {
	d := disk.New(disk.Config{BlockSize: blockSize})
	return buffer.NewPool(d, 64, nil)
}

func intItems(n int) []Item {
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{Key: tuple.I64(int64(i)), Payload: []byte(fmt.Sprintf("p%d", i))}
	}
	return items
}

func TestBulkLoadAndSearch(t *testing.T) {
	pool := newPool(256)
	tr, err := Create(pool, "ix")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(intItems(500), 1.0); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("500 keys in 256B pages should need height >= 2, got %d", tr.Height())
	}
	for _, k := range []int64{0, 1, 250, 499} {
		got, err := tr.Search(tuple.I64(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || string(got[0]) != fmt.Sprintf("p%d", k) {
			t.Errorf("Search(%d): %q", k, got)
		}
	}
	if got, _ := tr.Search(tuple.I64(1000)); len(got) != 0 {
		t.Errorf("Search(missing): %q", got)
	}
	n, err := tr.Count()
	if err != nil || n != 500 {
		t.Fatalf("Count: %d %v", n, err)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadUnsortedRejected(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	items := []Item{
		{Key: tuple.I64(2)}, {Key: tuple.I64(1)},
	}
	if err := tr.BulkLoad(items, 1.0); err == nil {
		t.Error("unsorted bulk load should fail")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	if err := tr.BulkLoad(nil, 1.0); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Count()
	if err != nil || n != 0 {
		t.Fatalf("empty tree count: %d %v", n, err)
	}
	if got, _ := tr.Search(tuple.I64(1)); len(got) != 0 {
		t.Error("search in empty tree")
	}
}

func TestRangeScan(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	tr.BulkLoad(intItems(300), 1.0)
	var got []int64
	err := tr.Range(tuple.I64(100), tuple.I64(110), func(k tuple.Value, p []byte) bool {
		got = append(got, k.I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Errorf("Range: %v", got)
	}
	// Open-ended ranges.
	count := 0
	tr.Range(tuple.Value{}, tuple.Value{}, func(tuple.Value, []byte) bool { count++; return true })
	if count != 300 {
		t.Errorf("full range: %d", count)
	}
	count = 0
	tr.Range(tuple.I64(295), tuple.Value{}, func(tuple.Value, []byte) bool { count++; return true })
	if count != 5 {
		t.Errorf("lo-open range: %d", count)
	}
	// Early stop.
	count = 0
	tr.Range(tuple.Value{}, tuple.Value{}, func(tuple.Value, []byte) bool { count++; return count < 7 })
	if count != 7 {
		t.Errorf("early stop: %d", count)
	}
}

func TestScanLeavesOrdinalAndChaining(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	tr.BulkLoad(intItems(300), 1.0)
	lastOrd := -1
	var prev int64 = -1
	total := 0
	err := tr.ScanLeaves(func(ord int, keys []tuple.Value, payloads [][]byte) bool {
		if ord != lastOrd+1 {
			t.Fatalf("leaf ordinals not consecutive: %d after %d", ord, lastOrd)
		}
		lastOrd = ord
		if len(keys) != len(payloads) {
			t.Fatal("keys/payloads length mismatch")
		}
		for _, k := range keys {
			if k.I <= prev {
				t.Fatalf("keys not ascending: %d after %d", k.I, prev)
			}
			prev = k.I
			total++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 300 {
		t.Errorf("total = %d", total)
	}
	nl, err := tr.NumLeaves()
	if err != nil || nl != lastOrd+1 {
		t.Errorf("NumLeaves: %d vs %d", nl, lastOrd+1)
	}
}

func TestRangeFromSkipLeaves(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	tr.BulkLoad(intItems(300), 1.0)
	// Collect per-leaf first keys.
	var firstKeys []int64
	tr.ScanLeaves(func(ord int, keys []tuple.Value, _ [][]byte) bool {
		firstKeys = append(firstKeys, keys[0].I)
		return true
	})
	if len(firstKeys) < 3 {
		t.Skip("need at least 3 leaves")
	}
	var got []int64
	err := tr.RangeFrom(tuple.Value{}, tuple.Value{}, 2, func(k tuple.Value, _ []byte) bool {
		got = append(got, k.I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != firstKeys[2] {
		t.Errorf("skip 2 leaves: first key %d, want %d", got[0], firstKeys[2])
	}
}

func TestDuplicateKeys(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	var items []Item
	for i := 0; i < 50; i++ {
		items = append(items, Item{Key: tuple.I64(int64(i / 5)), Payload: []byte{byte(i)}})
	}
	tr.BulkLoad(items, 1.0)
	got, err := tr.Search(tuple.I64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("duplicates: got %d payloads, want 5", len(got))
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	// Sparse initial load.
	var items []Item
	for i := 0; i < 100; i++ {
		items = append(items, Item{Key: tuple.I64(int64(i * 10)), Payload: []byte("orig")})
	}
	tr.BulkLoad(items, 1.0)
	// Insert between existing keys; splits must occur (leaves are packed full).
	for i := 0; i < 100; i++ {
		if err := tr.Insert(tuple.I64(int64(i*10+5)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := tr.Count()
	if n != 200 {
		t.Fatalf("count after inserts: %d", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Search(tuple.I64(55))
	if len(got) != 1 || string(got[0]) != "new" {
		t.Errorf("inserted key: %q", got)
	}
	got, _ = tr.Search(tuple.I64(50))
	if len(got) != 1 || string(got[0]) != "orig" {
		t.Errorf("original key survived: %q", got)
	}
}

func TestInsertIntoEmptyGrowsRoot(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	for i := 0; i < 200; i++ {
		if err := tr.Insert(tuple.I64(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("height after 200 inserts: %d", tr.Height())
	}
	n, _ := tr.Count()
	if n != 200 {
		t.Fatalf("count: %d", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertRandomizedProperty is the btree's property test: random insert
// orders must always produce a tree that scans back in sorted order with all
// inserted keys present.
func TestInsertRandomizedProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := newPool(256)
		tr, _ := Create(pool, fmt.Sprintf("ix%d", seed))
		keys := rng.Perm(300)
		for _, k := range keys {
			if err := tr.Insert(tuple.I64(int64(k)), []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var got []int
		tr.Range(tuple.Value{}, tuple.Value{}, func(k tuple.Value, _ []byte) bool {
			got = append(got, int(k.I))
			return true
		})
		if len(got) != 300 {
			t.Fatalf("seed %d: got %d keys", seed, len(got))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("seed %d: scan not sorted", seed)
		}
	}
}

func TestOpenExistingTree(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	tr.BulkLoad(intItems(100), 1.0)
	pool.Flush()
	tr2, err := Open(pool, "ix")
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr2.Count()
	if err != nil || n != 100 {
		t.Fatalf("reopened: %d %v", n, err)
	}
	if tr2.Height() != tr.Height() {
		t.Error("height mismatch after reopen")
	}
	if _, err := Open(pool, "missing"); err == nil {
		t.Error("Open missing should fail")
	}
}

func TestStringKeys(t *testing.T) {
	pool := newPool(256)
	tr, _ := Create(pool, "ix")
	words := []string{"apple", "banana", "cherry", "date", "elderberry", "fig", "grape"}
	var items []Item
	for _, w := range words {
		items = append(items, Item{Key: tuple.Str(w), Payload: []byte(w)})
	}
	tr.BulkLoad(items, 1.0)
	got, _ := tr.Search(tuple.Str("cherry"))
	if len(got) != 1 || string(got[0]) != "cherry" {
		t.Errorf("string key search: %q", got)
	}
	var rng []string
	tr.Range(tuple.Str("banana"), tuple.Str("date"), func(k tuple.Value, _ []byte) bool {
		rng = append(rng, k.S)
		return true
	})
	if len(rng) != 3 || rng[0] != "banana" || rng[2] != "date" {
		t.Errorf("string range: %v", rng)
	}
}

func TestFillFactorMakesMoreLeaves(t *testing.T) {
	mk := func(ff float64) int {
		pool := newPool(512)
		tr, _ := Create(pool, "ix")
		tr.BulkLoad(intItems(400), ff)
		n, _ := tr.NumLeaves()
		return n
	}
	full := mk(1.0)
	half := mk(0.5)
	if half <= full {
		t.Errorf("fill factor 0.5 (%d leaves) should produce more leaves than 1.0 (%d)", half, full)
	}
}
