// Package heap implements heap files: unordered sequences of slotted pages
// holding one table's tuples, accessed through the buffer pool. Heap files
// are the substrate for file scans — the operator whose sharing behaviour
// (linear WoP, circular scans) drives most of the paper's experiments.
package heap

import (
	"errors"
	"fmt"
	"sync"

	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/page"
	"qpipe/internal/tuple"
)

// RID identifies a tuple by page number and slot.
type RID struct {
	Page int64
	Slot int
}

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Less orders RIDs by page then slot — unclustered index scans sort RID
// lists in ascending page order to avoid revisiting pages (paper §3.2).
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// File is a heap file bound to a disk file name and a schema.
type File struct {
	Name   string
	Schema *tuple.Schema
	pool   *buffer.Pool

	mu       sync.Mutex
	npages   int64
	lastPage *page.Page // write buffer for bulk loading (not yet flushed)
	encBuf   []byte     // encode scratch reused across Appends (guarded by mu)
}

// Create makes a new empty heap file on the pool's disk.
func Create(pool *buffer.Pool, name string, schema *tuple.Schema) *File {
	pool.Disk().Create(name)
	return &File{Name: name, Schema: schema, pool: pool}
}

// Open binds to an existing heap file.
func Open(pool *buffer.Pool, name string, schema *tuple.Schema) (*File, error) {
	if !pool.Disk().Exists(name) {
		return nil, fmt.Errorf("heap: no such file %q", name)
	}
	return &File{
		Name:   name,
		Schema: schema,
		pool:   pool,
		npages: int64(pool.Disk().NumBlocks(name)),
	}, nil
}

// Pool returns the buffer pool the file reads through.
func (f *File) Pool() *buffer.Pool { return f.pool }

// NumPages returns the number of flushed pages.
func (f *File) NumPages() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.npages
}

// Append inserts a tuple at the end of the file (bulk-load path; goes
// straight to disk, bypassing the pool, like a real bulk loader would).
// Returns the tuple's RID. The encode scratch is reused across calls, so
// bulk loads (TPC-H/Wisconsin generators) pay no per-row allocation here.
func (f *File) Append(t tuple.Tuple) (RID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.encBuf = t.Encode(f.encBuf[:0])
	enc := f.encBuf
	if f.lastPage != nil && !f.lastPage.HasRoomFor(len(enc)) {
		if err := f.flushLastLocked(); err != nil {
			return RID{}, err
		}
	}
	if f.lastPage == nil {
		f.lastPage = page.New(f.pool.Disk().BlockSize())
	}
	slot, err := f.lastPage.Insert(enc)
	if err != nil {
		return RID{}, fmt.Errorf("heap: tuple larger than a page: %w", err)
	}
	return RID{Page: f.npages, Slot: slot}, nil
}

func (f *File) flushLastLocked() error {
	if f.lastPage == nil {
		return nil
	}
	if _, err := f.pool.Disk().Append(f.Name, f.lastPage.Bytes()); err != nil {
		return err
	}
	f.npages++
	f.lastPage = nil
	return nil
}

// Sync flushes the partially-filled tail page, making all appended tuples
// visible to scans.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushLastLocked()
}

// ReadPage pins page pno and decodes all its tuples. The page is unpinned
// before returning (tuples are copies).
func (f *File) ReadPage(pno int64) ([]tuple.Tuple, error) {
	id := buffer.PageID{File: f.Name, Block: pno}
	raw, err := f.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(id)
	p := page.FromBytes(raw)
	return p.Tuples(f.Schema.Len())
}

// ErrDeleted is returned by ReadTuple for a tombstoned RID. Unclustered
// indexes keep ghost entries for deleted rows (cleaned up only by a rebuild),
// so index fetch paths filter on this error rather than treating it as
// failure.
var ErrDeleted = errors.New("heap: tuple deleted")

// ReadTuple fetches a single tuple by RID. Returns ErrDeleted (possibly
// wrapped) if the slot is tombstoned.
func (f *File) ReadTuple(rid RID) (tuple.Tuple, error) {
	id := buffer.PageID{File: f.Name, Block: rid.Page}
	raw, err := f.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(id)
	p := page.FromBytes(raw)
	if p.Tombstone(rid.Slot) {
		return nil, fmt.Errorf("heap: %s slot %d: %w", f.Name, rid.Slot, ErrDeleted)
	}
	return p.Tuple(rid.Slot, f.Schema.Len())
}

// ReplaceAt overwrites the tuple at rid in place (same RID after the
// update). The page is mutated through the buffer pool and marked dirty;
// durability comes from the WAL, not from an immediate disk write. Only
// flushed pages can be mutated — the storage manager syncs tails at commit,
// so every committed row lives in a flushed page.
func (f *File) ReplaceAt(rid RID, t tuple.Tuple) error {
	if err := f.checkFlushed(rid); err != nil {
		return err
	}
	id := buffer.PageID{File: f.Name, Block: rid.Page}
	raw, err := f.pool.Pin(id)
	if err != nil {
		return err
	}
	defer f.pool.Unpin(id)
	p := page.FromBytes(raw)
	if err := p.ReplaceAt(rid.Slot, t.Encode(nil)); err != nil {
		return err
	}
	f.pool.MarkDirty(id)
	return nil
}

// DeleteAt tombstones the tuple at rid. Deleting an already-deleted slot is
// a no-op (redo idempotence). See ReplaceAt for the mutation discipline.
func (f *File) DeleteAt(rid RID) error {
	if err := f.checkFlushed(rid); err != nil {
		return err
	}
	id := buffer.PageID{File: f.Name, Block: rid.Page}
	raw, err := f.pool.Pin(id)
	if err != nil {
		return err
	}
	defer f.pool.Unpin(id)
	p := page.FromBytes(raw)
	if err := p.DeleteAt(rid.Slot); err != nil {
		return err
	}
	f.pool.MarkDirty(id)
	return nil
}

func (f *File) checkFlushed(rid RID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rid.Page < 0 || rid.Page >= f.npages {
		return fmt.Errorf("heap: %s: rid %s not in flushed pages [0,%d)", f.Name, rid, f.npages)
	}
	return nil
}

// Scan iterates all live tuples in page order, invoking fn per tuple with
// its true RID (tombstoned slots are skipped, so RIDs are slot-accurate even
// on pages with deletions). fn returning false stops the scan early.
func (f *File) Scan(fn func(rid RID, t tuple.Tuple) bool) error {
	n := f.NumPages()
	ncols := f.Schema.Len()
	for pno := int64(0); pno < n; pno++ {
		id := buffer.PageID{File: f.Name, Block: pno}
		raw, err := f.pool.Pin(id)
		if err != nil {
			return err
		}
		p := page.FromBytes(raw)
		stop := false
		var arena tuple.RowArena
		arena.Grow(p.NumSlots() * ncols)
		for slot := 0; slot < p.NumSlots(); slot++ {
			if p.Tombstone(slot) {
				continue
			}
			payload, err := p.Payload(slot)
			if err != nil {
				f.pool.Unpin(id)
				return err
			}
			t, _, err := tuple.DecodeArena(payload, ncols, &arena)
			if err != nil {
				f.pool.Unpin(id)
				return err
			}
			if !fn(RID{Page: pno, Slot: slot}, t) {
				stop = true
				break
			}
		}
		f.pool.Unpin(id)
		if stop {
			return nil
		}
	}
	return nil
}

// Count returns the number of tuples (full scan).
func (f *File) Count() (int64, error) {
	var n int64
	err := f.Scan(func(RID, tuple.Tuple) bool { n++; return true })
	return n, err
}
