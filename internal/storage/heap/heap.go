// Package heap implements heap files: unordered sequences of slotted pages
// holding one table's tuples, accessed through the buffer pool. Heap files
// are the substrate for file scans — the operator whose sharing behaviour
// (linear WoP, circular scans) drives most of the paper's experiments.
package heap

import (
	"fmt"
	"sync"

	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/page"
	"qpipe/internal/tuple"
)

// RID identifies a tuple by page number and slot.
type RID struct {
	Page int64
	Slot int
}

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Less orders RIDs by page then slot — unclustered index scans sort RID
// lists in ascending page order to avoid revisiting pages (paper §3.2).
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// File is a heap file bound to a disk file name and a schema.
type File struct {
	Name   string
	Schema *tuple.Schema
	pool   *buffer.Pool

	mu       sync.Mutex
	npages   int64
	lastPage *page.Page // write buffer for bulk loading (not yet flushed)
	encBuf   []byte     // encode scratch reused across Appends (guarded by mu)
}

// Create makes a new empty heap file on the pool's disk.
func Create(pool *buffer.Pool, name string, schema *tuple.Schema) *File {
	pool.Disk().Create(name)
	return &File{Name: name, Schema: schema, pool: pool}
}

// Open binds to an existing heap file.
func Open(pool *buffer.Pool, name string, schema *tuple.Schema) (*File, error) {
	if !pool.Disk().Exists(name) {
		return nil, fmt.Errorf("heap: no such file %q", name)
	}
	return &File{
		Name:   name,
		Schema: schema,
		pool:   pool,
		npages: int64(pool.Disk().NumBlocks(name)),
	}, nil
}

// Pool returns the buffer pool the file reads through.
func (f *File) Pool() *buffer.Pool { return f.pool }

// NumPages returns the number of flushed pages.
func (f *File) NumPages() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.npages
}

// Append inserts a tuple at the end of the file (bulk-load path; goes
// straight to disk, bypassing the pool, like a real bulk loader would).
// Returns the tuple's RID. The encode scratch is reused across calls, so
// bulk loads (TPC-H/Wisconsin generators) pay no per-row allocation here.
func (f *File) Append(t tuple.Tuple) (RID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.encBuf = t.Encode(f.encBuf[:0])
	enc := f.encBuf
	if f.lastPage != nil && !f.lastPage.HasRoomFor(len(enc)) {
		if err := f.flushLastLocked(); err != nil {
			return RID{}, err
		}
	}
	if f.lastPage == nil {
		f.lastPage = page.New(f.pool.Disk().BlockSize())
	}
	slot, err := f.lastPage.Insert(enc)
	if err != nil {
		return RID{}, fmt.Errorf("heap: tuple larger than a page: %w", err)
	}
	return RID{Page: f.npages, Slot: slot}, nil
}

func (f *File) flushLastLocked() error {
	if f.lastPage == nil {
		return nil
	}
	if _, err := f.pool.Disk().Append(f.Name, f.lastPage.Bytes()); err != nil {
		return err
	}
	f.npages++
	f.lastPage = nil
	return nil
}

// Sync flushes the partially-filled tail page, making all appended tuples
// visible to scans.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushLastLocked()
}

// ReadPage pins page pno and decodes all its tuples. The page is unpinned
// before returning (tuples are copies).
func (f *File) ReadPage(pno int64) ([]tuple.Tuple, error) {
	id := buffer.PageID{File: f.Name, Block: pno}
	raw, err := f.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(id)
	p := page.FromBytes(raw)
	return p.Tuples(f.Schema.Len())
}

// ReadTuple fetches a single tuple by RID.
func (f *File) ReadTuple(rid RID) (tuple.Tuple, error) {
	id := buffer.PageID{File: f.Name, Block: rid.Page}
	raw, err := f.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(id)
	p := page.FromBytes(raw)
	return p.Tuple(rid.Slot, f.Schema.Len())
}

// Scan iterates all tuples in page order, invoking fn per tuple. fn
// returning false stops the scan early.
func (f *File) Scan(fn func(rid RID, t tuple.Tuple) bool) error {
	n := f.NumPages()
	for pno := int64(0); pno < n; pno++ {
		ts, err := f.ReadPage(pno)
		if err != nil {
			return err
		}
		for slot, t := range ts {
			if !fn(RID{Page: pno, Slot: slot}, t) {
				return nil
			}
		}
	}
	return nil
}

// Count returns the number of tuples (full scan).
func (f *File) Count() (int64, error) {
	var n int64
	err := f.Scan(func(RID, tuple.Tuple) bool { n++; return true })
	return n, err
}
