package heap

import (
	"testing"

	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/disk"
	"qpipe/internal/tuple"
)

func testSchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("id", tuple.KindInt), tuple.Col("name", tuple.KindString))
}

func newFile(t *testing.T) *File {
	t.Helper()
	d := disk.New(disk.Config{BlockSize: 256})
	pool := buffer.NewPool(d, 8, nil)
	return Create(pool, "t", testSchema())
}

func row(i int64, s string) tuple.Tuple {
	return tuple.Tuple{tuple.I64(i), tuple.Str(s)}
}

func TestAppendScanRoundTrip(t *testing.T) {
	f := newFile(t)
	const n = 100
	for i := int64(0); i < n; i++ {
		if _, err := f.Append(row(i, "name")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", f.NumPages())
	}
	var got []int64
	err := f.Scan(func(_ RID, tp tuple.Tuple) bool {
		got = append(got, tp[0].I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d rows, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d out of order: %d", i, v)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	f := newFile(t)
	for i := int64(0); i < 50; i++ {
		f.Append(row(i, "x"))
	}
	f.Sync()
	count := 0
	f.Scan(func(RID, tuple.Tuple) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop: %d", count)
	}
}

func TestReadTupleByRID(t *testing.T) {
	f := newFile(t)
	var rids []RID
	for i := int64(0); i < 30; i++ {
		r, err := f.Append(row(i, "v"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	f.Sync()
	for i, r := range rids {
		tp, err := f.ReadTuple(r)
		if err != nil {
			t.Fatalf("RID %v: %v", r, err)
		}
		if tp[0].I != int64(i) {
			t.Fatalf("RID %v: got %d want %d", r, tp[0].I, i)
		}
	}
}

func TestSyncMakesVisible(t *testing.T) {
	f := newFile(t)
	f.Append(row(1, "a"))
	// Before sync the tail page is not flushed.
	n, _ := f.Count()
	if n != 0 {
		t.Errorf("unsynced rows visible: %d", n)
	}
	f.Sync()
	n, _ = f.Count()
	if n != 1 {
		t.Errorf("after sync: %d", n)
	}
	// Sync with nothing pending is a no-op.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenExisting(t *testing.T) {
	d := disk.New(disk.Config{BlockSize: 256})
	pool := buffer.NewPool(d, 8, nil)
	f := Create(pool, "t", testSchema())
	for i := int64(0); i < 20; i++ {
		f.Append(row(i, "z"))
	}
	f.Sync()
	g, err := Open(pool, "t", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.Count()
	if err != nil || n != 20 {
		t.Fatalf("reopened count: %d %v", n, err)
	}
	if _, err := Open(pool, "missing", testSchema()); err == nil {
		t.Error("Open of missing file should fail")
	}
}

func TestRIDOrdering(t *testing.T) {
	a := RID{Page: 1, Slot: 2}
	b := RID{Page: 1, Slot: 3}
	c := RID{Page: 2, Slot: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("RID.Less ordering")
	}
	if a.String() != "1.2" {
		t.Errorf("RID.String: %q", a.String())
	}
}

func TestReadPage(t *testing.T) {
	f := newFile(t)
	for i := int64(0); i < 40; i++ {
		f.Append(row(i, "pagetest"))
	}
	f.Sync()
	total := 0
	for p := int64(0); p < f.NumPages(); p++ {
		ts, err := f.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	if total != 40 {
		t.Errorf("ReadPage total = %d", total)
	}
	if _, err := f.ReadPage(f.NumPages()); err == nil {
		t.Error("ReadPage past EOF should fail")
	}
}
