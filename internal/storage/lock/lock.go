// Package lock implements the table-level shared/exclusive lock manager the
// update path relies on (paper §4.3.4: update packets are routed to a
// dedicated µEngine with no OSP; "if a table is locked for writing, the scan
// packet will simply wait — and with it, all satellite ones — until the lock
// is released"). QPipe delegates locking to the storage manager exactly as
// the prototype delegated it to BerkeleyDB.
package lock

import (
	"context"
	"fmt"
	"sync"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

type tableLock struct {
	mu       sync.Mutex
	cond     *sync.Cond
	readers  int
	writer   bool
	waitersX int // writers queued; blocks new readers (no writer starvation)
}

// Manager hands out table-level S/X locks. Locks are not reentrant and have
// no owner tracking — callers (the update µEngine and the scan path) pair
// Lock/Unlock themselves, which is all the experiments need.
type Manager struct {
	mu     sync.Mutex
	tables map[string]*tableLock
}

// NewManager creates an empty lock manager.
func NewManager() *Manager { return &Manager{tables: make(map[string]*tableLock)} }

func (m *Manager) table(name string) *tableLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl, ok := m.tables[name]
	if !ok {
		tl = &tableLock{}
		tl.cond = sync.NewCond(&tl.mu)
		m.tables[name] = tl
	}
	return tl
}

// Lock acquires the table in the given mode, blocking until granted or ctx
// is done.
func (m *Manager) Lock(ctx context.Context, table string, mode Mode) error {
	tl := m.table(table)
	done := make(chan struct{})
	defer close(done)
	// Wake waiters if the context is cancelled so they can observe it.
	stop := context.AfterFunc(ctx, func() {
		tl.mu.Lock()
		tl.cond.Broadcast()
		tl.mu.Unlock()
	})
	defer stop()

	tl.mu.Lock()
	defer tl.mu.Unlock()
	if mode == Exclusive {
		tl.waitersX++
		for tl.writer || tl.readers > 0 {
			if ctx.Err() != nil {
				tl.waitersX--
				return ctx.Err()
			}
			tl.cond.Wait()
		}
		tl.waitersX--
		tl.writer = true
		return nil
	}
	for tl.writer || tl.waitersX > 0 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		tl.cond.Wait()
	}
	tl.readers++
	return nil
}

// TryLock acquires the lock without blocking, reporting success.
func (m *Manager) TryLock(table string, mode Mode) bool {
	tl := m.table(table)
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if mode == Exclusive {
		if tl.writer || tl.readers > 0 {
			return false
		}
		tl.writer = true
		return true
	}
	if tl.writer || tl.waitersX > 0 {
		return false
	}
	tl.readers++
	return true
}

// Unlock releases a lock previously granted in the given mode.
func (m *Manager) Unlock(table string, mode Mode) {
	tl := m.table(table)
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if mode == Exclusive {
		if !tl.writer {
			panic(fmt.Sprintf("lock: X-unlock of %q not held", table))
		}
		tl.writer = false
	} else {
		if tl.readers <= 0 {
			panic(fmt.Sprintf("lock: S-unlock of %q not held", table))
		}
		tl.readers--
	}
	tl.cond.Broadcast()
}
