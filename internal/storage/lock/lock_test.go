package lock

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedConcurrent(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := m.Lock(ctx, "t", Shared); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m.Unlock("t", Shared)
	}
}

func TestExclusiveBlocksReaders(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Lock(ctx, "t", Exclusive); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan struct{})
	go func() {
		m.Lock(ctx, "t", Shared)
		acquired.Store(true)
		m.Unlock("t", Shared)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("reader acquired while writer held")
	}
	m.Unlock("t", Exclusive)
	<-done
	if !acquired.Load() {
		t.Fatal("reader never acquired")
	}
}

func TestWriterWaitsForReaders(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	m.Lock(ctx, "t", Shared)
	var acquired atomic.Bool
	done := make(chan struct{})
	go func() {
		m.Lock(ctx, "t", Exclusive)
		acquired.Store(true)
		m.Unlock("t", Exclusive)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("writer acquired while reader held")
	}
	m.Unlock("t", Shared)
	<-done
}

func TestWriterNotStarved(t *testing.T) {
	// A queued writer must block NEW readers.
	m := NewManager()
	ctx := context.Background()
	m.Lock(ctx, "t", Shared)
	writerGot := make(chan struct{})
	go func() {
		m.Lock(ctx, "t", Exclusive)
		close(writerGot)
	}()
	time.Sleep(20 * time.Millisecond)
	if m.TryLock("t", Shared) {
		t.Fatal("new reader admitted while writer queued")
	}
	m.Unlock("t", Shared)
	<-writerGot
	m.Unlock("t", Exclusive)
	// Reader admitted afterwards.
	if !m.TryLock("t", Shared) {
		t.Fatal("reader blocked after writer done")
	}
	m.Unlock("t", Shared)
}

func TestTryLock(t *testing.T) {
	m := NewManager()
	if !m.TryLock("t", Exclusive) {
		t.Fatal("TryLock X on free table")
	}
	if m.TryLock("t", Exclusive) || m.TryLock("t", Shared) {
		t.Fatal("TryLock should fail while X held")
	}
	m.Unlock("t", Exclusive)
	if !m.TryLock("t", Shared) || !m.TryLock("t", Shared) {
		t.Fatal("TryLock S twice on free table")
	}
	if m.TryLock("t", Exclusive) {
		t.Fatal("TryLock X while S held")
	}
	m.Unlock("t", Shared)
	m.Unlock("t", Shared)
}

func TestContextCancellation(t *testing.T) {
	m := NewManager()
	m.Lock(context.Background(), "t", Exclusive)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := m.Lock(ctx, "t", Shared)
	if err == nil {
		t.Fatal("lock should fail on context timeout")
	}
	m.Unlock("t", Exclusive)
	// The failed waiter must not corrupt state.
	if !m.TryLock("t", Exclusive) {
		t.Fatal("lock state corrupted after cancelled wait")
	}
	m.Unlock("t", Exclusive)
}

func TestIndependentTables(t *testing.T) {
	m := NewManager()
	m.Lock(context.Background(), "a", Exclusive)
	if !m.TryLock("b", Exclusive) {
		t.Fatal("tables should be independent")
	}
	m.Unlock("a", Exclusive)
	m.Unlock("b", Exclusive)
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	m := NewManager()
	defer func() {
		if recover() == nil {
			t.Error("unlock without hold should panic")
		}
	}()
	m.Unlock("t", Exclusive)
}

func TestManyConcurrentMixed(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	var inWriter atomic.Int32
	var readers atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if (g+i)%5 == 0 {
					if err := m.Lock(ctx, "t", Exclusive); err != nil {
						t.Error(err)
						return
					}
					if inWriter.Add(1) != 1 || readers.Load() != 0 {
						t.Error("writer not exclusive")
					}
					inWriter.Add(-1)
					m.Unlock("t", Exclusive)
				} else {
					if err := m.Lock(ctx, "t", Shared); err != nil {
						t.Error(err)
						return
					}
					readers.Add(1)
					if inWriter.Load() != 0 {
						t.Error("reader overlaps writer")
					}
					readers.Add(-1)
					m.Unlock("t", Shared)
				}
			}
		}(g)
	}
	wg.Wait()
}
