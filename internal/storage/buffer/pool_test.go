package buffer

import (
	"fmt"
	"sync"
	"testing"

	"qpipe/internal/storage/disk"
)

func newDisk(t *testing.T, file string, blocks int) *disk.Disk {
	t.Helper()
	d := disk.New(disk.Config{BlockSize: 64})
	d.Create(file)
	for i := 0; i < blocks; i++ {
		if _, err := d.Append(file, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestPinMissThenHit(t *testing.T) {
	d := newDisk(t, "f", 4)
	p := NewPool(d, 2, NewLRU())
	id := PageID{File: "f", Block: 1}
	b, err := p.Pin(id)
	if err != nil || b[0] != 1 {
		t.Fatalf("Pin: %v %v", b, err)
	}
	p.Unpin(id)
	if _, err := p.Pin(id); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id)
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if d.Stats().Reads != 1 {
		t.Errorf("disk reads = %d, want 1", d.Stats().Reads)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	d := newDisk(t, "f", 4)
	p := NewPool(d, 2, NewLRU())
	pin := func(b int64) {
		id := PageID{File: "f", Block: b}
		if _, err := p.Pin(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	pin(0)
	pin(1)
	pin(0) // touch 0: now 1 is LRU
	pin(2) // evicts 1
	if !p.Contains(PageID{File: "f", Block: 0}) {
		t.Error("page 0 should be resident")
	}
	if p.Contains(PageID{File: "f", Block: 1}) {
		t.Error("page 1 should have been evicted")
	}
	if st := p.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	d := newDisk(t, "f", 4)
	p := NewPool(d, 2, NewLRU())
	id0 := PageID{File: "f", Block: 0}
	id1 := PageID{File: "f", Block: 1}
	p.Pin(id0) // stays pinned
	p.Pin(id1) // stays pinned
	if _, err := p.Pin(PageID{File: "f", Block: 2}); err == nil {
		t.Error("pinning a third page with all frames pinned should fail")
	}
	p.Unpin(id1)
	if _, err := p.Pin(PageID{File: "f", Block: 2}); err != nil {
		t.Errorf("should evict unpinned page 1: %v", err)
	}
	if !p.Contains(id0) {
		t.Error("pinned page 0 must survive")
	}
}

func TestDirtyWriteBack(t *testing.T) {
	d := newDisk(t, "f", 3)
	p := NewPool(d, 1, NewLRU())
	id := PageID{File: "f", Block: 0}
	b, _ := p.Pin(id)
	b[0] = 0xAB
	p.MarkDirty(id)
	p.Unpin(id)
	// Force eviction by pinning another page.
	p.Pin(PageID{File: "f", Block: 1})
	p.Unpin(PageID{File: "f", Block: 1})
	raw, _ := d.Read("f", 0)
	if raw[0] != 0xAB {
		t.Error("dirty page not written back on eviction")
	}
}

func TestFlushAndInvalidate(t *testing.T) {
	d := newDisk(t, "f", 3)
	p := NewPool(d, 4, NewLRU())
	id := PageID{File: "f", Block: 2}
	b, _ := p.Pin(id)
	b[0] = 0x77
	p.MarkDirty(id)
	p.Unpin(id)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, _ := d.Read("f", 2)
	if raw[0] != 0x77 {
		t.Error("Flush did not write back")
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if p.Contains(id) {
		t.Error("Invalidate should drop residents")
	}
	// Invalidate with a pinned page fails.
	p.Pin(id)
	if err := p.Invalidate(); err == nil {
		t.Error("Invalidate with pinned page should fail")
	}
	p.Unpin(id)
}

func TestConcurrentPinUnpin(t *testing.T) {
	d := newDisk(t, "f", 16)
	p := NewPool(d, 4, NewLRU())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				blk := int64((seed*7 + i) % 16)
				id := PageID{File: "f", Block: blk}
				b, err := p.Pin(id)
				if err != nil {
					t.Errorf("Pin: %v", err)
					return
				}
				if b[0] != byte(blk) {
					t.Errorf("content mismatch on block %d: %d", blk, b[0])
					p.Unpin(id)
					return
				}
				p.Unpin(id)
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolPolicyNames(t *testing.T) {
	d := newDisk(t, "f", 1)
	for _, tc := range []struct {
		pol  Policy
		name string
	}{
		{NewLRU(), "lru"},
		{NewClock(), "clock"},
		{NewLRUK(2), "lru-2"},
		{NewLRUK(3), "lru-k"},
		{NewTwoQ(8), "2q"},
		{NewARC(8), "arc"},
	} {
		p := NewPool(d, 8, tc.pol)
		if p.PolicyName() != tc.name {
			t.Errorf("policy name: got %q want %q", p.PolicyName(), tc.name)
		}
	}
	if NewPool(d, 8, nil).PolicyName() != "lru" {
		t.Error("nil policy should default to LRU")
	}
}

// runTrace plays an access trace against a pool of the given capacity and
// returns the hit count.
func runTrace(t *testing.T, pol func() Policy, capacity int, trace []int64) int64 {
	t.Helper()
	d := disk.New(disk.Config{BlockSize: 64})
	d.Create("f")
	maxBlk := int64(0)
	for _, b := range trace {
		if b > maxBlk {
			maxBlk = b
		}
	}
	for i := int64(0); i <= maxBlk; i++ {
		d.Append("f", []byte{byte(i)})
	}
	p := NewPool(d, capacity, pol())
	for _, b := range trace {
		id := PageID{File: "f", Block: b}
		if _, err := p.Pin(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	return p.Stats().Hits
}

// TestScanResistance: a working set re-referenced between large sequential
// scans. Scan-resistant policies (2Q, ARC, LRU-2) must keep the working set
// resident; plain LRU flushes it on every scan pass.
func TestScanResistance(t *testing.T) {
	var trace []int64
	// Working set: blocks 0..3 (hot), referenced twice per round (the second
	// reference is a resident hit — the frequency signal). Between rounds, a
	// capacity-sized scan of fresh blocks washes through the pool. Plain LRU
	// evicts the hot set every round; scan-resistant policies keep it.
	for round := int64(0); round < 8; round++ {
		for b := int64(0); b < 4; b++ {
			trace = append(trace, b, b)
		}
		for b := int64(0); b < 8; b++ {
			trace = append(trace, 10+round*8+b)
		}
	}
	cap := 8
	lruHits := runTrace(t, func() Policy { return NewLRU() }, cap, trace)
	twoqHits := runTrace(t, func() Policy { return NewTwoQ(cap) }, cap, trace)
	arcHits := runTrace(t, func() Policy { return NewARC(cap) }, cap, trace)
	lrukHits := runTrace(t, func() Policy { return NewLRUK(2) }, cap, trace)
	if twoqHits <= lruHits {
		t.Errorf("2Q (%d hits) should beat LRU (%d hits) on scan-heavy trace", twoqHits, lruHits)
	}
	if arcHits <= lruHits {
		t.Errorf("ARC (%d hits) should beat LRU (%d hits)", arcHits, lruHits)
	}
	if lrukHits <= lruHits {
		t.Errorf("LRU-2 (%d hits) should beat LRU (%d hits)", lrukHits, lruHits)
	}
}

// TestPoliciesCorrectUnderRandomTrace cross-checks every policy against a
// straightforward trace: whatever is evicted must be re-readable and content
// must always match (the policy can be arbitrary, the pool must be correct).
func TestPoliciesCorrectUnderRandomTrace(t *testing.T) {
	policies := map[string]func() Policy{
		"lru":   func() Policy { return NewLRU() },
		"clock": func() Policy { return NewClock() },
		"lru2":  func() Policy { return NewLRUK(2) },
		"2q":    func() Policy { return NewTwoQ(6) },
		"arc":   func() Policy { return NewARC(6) },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			d := newDisk(t, "f", 32)
			p := NewPool(d, 6, mk())
			// Deterministic pseudo-random walk.
			x := int64(1)
			for i := 0; i < 3000; i++ {
				x = (x*1103515245 + 12345) % 32
				if x < 0 {
					x += 32
				}
				id := PageID{File: "f", Block: x}
				b, err := p.Pin(id)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if b[0] != byte(x) {
					t.Fatalf("step %d: content mismatch block %d got %d", i, x, b[0])
				}
				p.Unpin(id)
			}
			st := p.Stats()
			if st.Resident > 6 {
				t.Errorf("resident %d exceeds capacity", st.Resident)
			}
			if st.Hits+st.Misses != 3000 {
				t.Errorf("hits+misses = %d", st.Hits+st.Misses)
			}
		})
	}
}

func TestPageIDString(t *testing.T) {
	id := PageID{File: "f", Block: 3}
	if id.String() != "f:3" {
		t.Errorf("String: %q", id.String())
	}
	if fmt.Sprint(id) != "f:3" {
		t.Error("fmt.Sprint")
	}
}
