// Replacement policies. The paper's §2.1 surveys LRU, LRU-K [22], 2Q [18]
// and ARC [21] as the state of the art in page-level sharing; we implement
// the full family so the "buffer pool alone" baseline can be ablated
// (BenchmarkBufferPolicies). Policies are NOT thread-safe on their own; the
// Pool serializes all policy calls under its mutex.
package buffer

import "container/list"

// Policy decides which resident page to evict. The Pool calls:
//
//   - Insert when a page becomes resident,
//   - Touch on every subsequent hit,
//   - Evict to pick an unpinned victim (evictable reports pin status),
//   - Remove when a page leaves the pool (after eviction or invalidation).
type Policy interface {
	Name() string
	Insert(id PageID)
	Touch(id PageID)
	Evict(evictable func(PageID) bool) (PageID, bool)
	Remove(id PageID)
}

// ---- LRU -------------------------------------------------------------------

// LRU evicts the least-recently-used page. This is the policy BerkeleyDB
// (the paper's storage manager) effectively provides, and is what both
// "Baseline" and "QPipe w/OSP" run on in every experiment.
type LRU struct {
	ll    *list.List // front = most recent
	elems map[PageID]*list.Element
}

// NewLRU creates an LRU policy.
func NewLRU() *LRU {
	return &LRU{ll: list.New(), elems: make(map[PageID]*list.Element)}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Insert implements Policy.
func (l *LRU) Insert(id PageID) {
	if e, ok := l.elems[id]; ok {
		l.ll.MoveToFront(e)
		return
	}
	l.elems[id] = l.ll.PushFront(id)
}

// Touch implements Policy.
func (l *LRU) Touch(id PageID) {
	if e, ok := l.elems[id]; ok {
		l.ll.MoveToFront(e)
	}
}

// Evict implements Policy.
func (l *LRU) Evict(evictable func(PageID) bool) (PageID, bool) {
	for e := l.ll.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		if evictable(id) {
			return id, true
		}
	}
	return PageID{}, false
}

// Remove implements Policy.
func (l *LRU) Remove(id PageID) {
	if e, ok := l.elems[id]; ok {
		l.ll.Remove(e)
		delete(l.elems, id)
	}
}

// ---- CLOCK -----------------------------------------------------------------

// Clock is the classic second-chance approximation of LRU: resident pages
// sit on a ring with a reference bit; the hand clears bits until it finds an
// unreferenced, unpinned victim.
type Clock struct {
	ring  *list.List // circular order; hand = element to examine next
	hand  *list.Element
	elems map[PageID]*clockEntry
}

type clockEntry struct {
	el  *list.Element
	ref bool
}

// NewClock creates a CLOCK policy.
func NewClock() *Clock {
	return &Clock{ring: list.New(), elems: make(map[PageID]*clockEntry)}
}

// Name implements Policy.
func (c *Clock) Name() string { return "clock" }

// Insert implements Policy.
func (c *Clock) Insert(id PageID) {
	if e, ok := c.elems[id]; ok {
		e.ref = true
		return
	}
	el := c.ring.PushBack(id)
	c.elems[id] = &clockEntry{el: el, ref: true}
	if c.hand == nil {
		c.hand = el
	}
}

// Touch implements Policy.
func (c *Clock) Touch(id PageID) {
	if e, ok := c.elems[id]; ok {
		e.ref = true
	}
}

func (c *Clock) advance(el *list.Element) *list.Element {
	next := el.Next()
	if next == nil {
		next = c.ring.Front()
	}
	return next
}

// Evict implements Policy.
func (c *Clock) Evict(evictable func(PageID) bool) (PageID, bool) {
	n := c.ring.Len()
	if n == 0 {
		return PageID{}, false
	}
	// Two full sweeps suffice: the first may clear every ref bit, the second
	// must then find a victim unless everything is pinned.
	for i := 0; i < 2*n; i++ {
		if c.hand == nil {
			c.hand = c.ring.Front()
		}
		id := c.hand.Value.(PageID)
		e := c.elems[id]
		if e.ref {
			e.ref = false
			c.hand = c.advance(c.hand)
			continue
		}
		if evictable(id) {
			c.hand = c.advance(c.hand)
			return id, true
		}
		c.hand = c.advance(c.hand)
	}
	return PageID{}, false
}

// Remove implements Policy.
func (c *Clock) Remove(id PageID) {
	e, ok := c.elems[id]
	if !ok {
		return
	}
	if c.hand == e.el {
		c.hand = c.advance(e.el)
		if c.hand == e.el {
			c.hand = nil
		}
	}
	c.ring.Remove(e.el)
	delete(c.elems, id)
}
