// Package buffer implements the buffer-pool manager that sits between the
// access methods and the simulated disk. It supports pin/unpin semantics,
// dirty-page write-back and pluggable replacement policies (LRU, CLOCK,
// LRU-K, 2Q, ARC — the family the paper surveys in §2.1).
//
// The pool is the *only* sharing mechanism available to the baseline systems
// in the paper's experiments: if two queries' page requests are far enough
// apart in time that the first query's pages have been evicted, the second
// query pays the full I/O again ("data sharing miss", Definition 1). QPipe's
// OSP layer sits above this pool and removes that timing sensitivity.
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qpipe/internal/storage/disk"
)

// PageID identifies a disk block.
type PageID struct {
	File  string
	Block int64
}

func (id PageID) String() string { return fmt.Sprintf("%s:%d", id.File, id.Block) }

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Capacity  int
	Resident  int
}

// Pool is a fixed-capacity page cache over a Disk. All methods are safe for
// concurrent use. Capacity is in pages.
type Pool struct {
	d        *disk.Disk
	capacity int

	mu     sync.Mutex
	frames map[PageID]*frame
	policy Policy

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewPool creates a pool of the given page capacity using the policy.
// A nil policy defaults to LRU.
func NewPool(d *disk.Disk, capacity int, policy Policy) *Pool {
	if capacity <= 0 {
		capacity = 64
	}
	if policy == nil {
		policy = NewLRU()
	}
	return &Pool{
		d:        d,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		policy:   policy,
	}
}

// Disk returns the underlying device.
func (p *Pool) Disk() *disk.Disk { return p.d }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// PolicyName returns the replacement policy's name.
func (p *Pool) PolicyName() string { return p.policy.Name() }

// Pin fetches the page, reading from disk on a miss, and pins it in memory.
// The returned bytes alias the pool frame: callers must treat them as
// read-only unless they also call MarkDirty, and must Unpin when done.
func (p *Pool) Pin(id PageID) ([]byte, error) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		f.pins++
		p.policy.Touch(id)
		p.mu.Unlock()
		p.hits.Add(1)
		return f.data, nil
	}
	p.mu.Unlock()

	// Miss: read outside the lock so concurrent hits are not serialized
	// behind simulated disk latency. A racing second miss of the same page
	// is resolved below (last writer discards its copy).
	data, err := p.d.Read(id.File, id.Block)
	if err != nil {
		return nil, err
	}
	p.misses.Add(1)

	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		// Someone else cached it while we were reading.
		f.pins++
		p.policy.Touch(id)
		return f.data, nil
	}
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data, pins: 1}
	p.frames[id] = f
	p.policy.Insert(id)
	return f.data, nil
}

// makeRoomLocked evicts frames until at least one slot is free.
func (p *Pool) makeRoomLocked() error {
	for len(p.frames) >= p.capacity {
		victim, ok := p.policy.Evict(func(id PageID) bool {
			f, exists := p.frames[id]
			return exists && f.pins == 0
		})
		if !ok {
			return fmt.Errorf("buffer: all %d frames pinned, cannot evict", p.capacity)
		}
		f := p.frames[victim]
		if f == nil {
			// Policy ghost entry not resident; just forget it.
			p.policy.Remove(victim)
			continue
		}
		if f.dirty {
			if err := p.d.Write(victim.File, victim.Block, f.data); err != nil {
				return fmt.Errorf("buffer: write-back of %s failed: %w", victim, err)
			}
		}
		delete(p.frames, victim)
		p.policy.Remove(victim)
		p.evictions.Add(1)
	}
	return nil
}

// Unpin releases one pin on the page.
func (p *Pool) Unpin(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// MarkDirty flags the page for write-back on eviction or Flush.
func (p *Pool) MarkDirty(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		f.dirty = true
	}
}

// Contains reports whether the page is currently resident (used by tests and
// by the spike-overlap check: an ordered scan may only piggyback if the first
// output page is still in memory).
func (p *Pool) Contains(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

// Flush writes back all dirty pages (pool remains warm).
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.dirty {
			if err := p.d.Write(id.File, id.Block, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Invalidate drops every resident page (write-back first). Used between
// harness runs to cold-start the cache.
func (p *Pool) Invalidate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("buffer: cannot invalidate, %s still pinned", id)
		}
		if f.dirty {
			if err := p.d.Write(id.File, id.Block, f.data); err != nil {
				return err
			}
		}
		delete(p.frames, id)
		p.policy.Remove(id)
	}
	return nil
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	resident := len(p.frames)
	p.mu.Unlock()
	return Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Capacity:  p.capacity,
		Resident:  resident,
	}
}

// ResetStats zeroes hit/miss/eviction counters.
func (p *Pool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.evictions.Store(0)
}
