// ARC replacement (Megiddo & Modha — FAST 2003), cited by the paper [21]:
// self-tuning between recency (T1) and frequency (T2) using two ghost lists
// (B1, B2) and an adaptation parameter p. No tunables, scan-resistant.
package buffer

import "container/list"

// ARC implements the Adaptive Replacement Cache policy.
type ARC struct {
	c int // target cache size (pool capacity)
	p int // adaptation: target size of T1

	t1, t2 *list.List // resident: recency / frequency (front = MRU)
	b1, b2 *list.List // ghosts

	where map[PageID]*arcEntry
}

type arcEntry struct {
	el   *list.Element
	list int // 0=t1 1=t2 2=b1 3=b2
}

const (
	arcT1 = iota
	arcT2
	arcB1
	arcB2
)

// NewARC creates an ARC policy for a pool of the given capacity.
func NewARC(capacity int) *ARC {
	if capacity < 1 {
		capacity = 1
	}
	return &ARC{
		c:  capacity,
		t1: list.New(), t2: list.New(), b1: list.New(), b2: list.New(),
		where: make(map[PageID]*arcEntry),
	}
}

// Name implements Policy.
func (a *ARC) Name() string { return "arc" }

func (a *ARC) move(e *arcEntry, id PageID, to int) {
	switch e.list {
	case arcT1:
		a.t1.Remove(e.el)
	case arcT2:
		a.t2.Remove(e.el)
	case arcB1:
		a.b1.Remove(e.el)
	case arcB2:
		a.b2.Remove(e.el)
	}
	var ll *list.List
	switch to {
	case arcT1:
		ll = a.t1
	case arcT2:
		ll = a.t2
	case arcB1:
		ll = a.b1
	case arcB2:
		ll = a.b2
	}
	e.el = ll.PushFront(id)
	e.list = to
}

// Insert implements Policy: a page became resident.
func (a *ARC) Insert(id PageID) {
	if e, ok := a.where[id]; ok {
		switch e.list {
		case arcB1:
			// Ghost hit in B1: favor recency — grow p.
			delta := 1
			if a.b1.Len() > 0 && a.b2.Len() > a.b1.Len() {
				delta = a.b2.Len() / a.b1.Len()
			}
			a.p = min(a.p+delta, a.c)
			a.move(e, id, arcT2)
		case arcB2:
			// Ghost hit in B2: favor frequency — shrink p.
			delta := 1
			if a.b2.Len() > 0 && a.b1.Len() > a.b2.Len() {
				delta = a.b1.Len() / a.b2.Len()
			}
			a.p = max(a.p-delta, 0)
			a.move(e, id, arcT2)
		case arcT1, arcT2:
			a.move(e, id, arcT2)
		}
		return
	}
	// Brand-new page: goes to T1. Bound the ghost lists per the ARC paper.
	if a.t1.Len()+a.b1.Len() >= a.c {
		if a.b1.Len() > 0 {
			back := a.b1.Back()
			delete(a.where, back.Value.(PageID))
			a.b1.Remove(back)
		}
	} else if a.t1.Len()+a.t2.Len()+a.b1.Len()+a.b2.Len() >= 2*a.c {
		if a.b2.Len() > 0 {
			back := a.b2.Back()
			delete(a.where, back.Value.(PageID))
			a.b2.Remove(back)
		}
	}
	e := &arcEntry{}
	a.where[id] = e
	e.el = a.t1.PushFront(id)
	e.list = arcT1
}

// Touch implements Policy: hit on a resident page promotes it to T2's MRU.
func (a *ARC) Touch(id PageID) {
	if e, ok := a.where[id]; ok && (e.list == arcT1 || e.list == arcT2) {
		a.move(e, id, arcT2)
	}
}

// Evict implements Policy: ARC's REPLACE — evict from T1 if |T1| > p (tail
// first), else from T2; the victim becomes a ghost in B1/B2.
func (a *ARC) Evict(evictable func(PageID) bool) (PageID, bool) {
	pick := func(ll *list.List) (*list.Element, bool) {
		for el := ll.Back(); el != nil; el = el.Prev() {
			if evictable(el.Value.(PageID)) {
				return el, true
			}
		}
		return nil, false
	}
	tryT1 := a.t1.Len() > 0 && (a.t1.Len() > a.p || a.t2.Len() == 0)
	if tryT1 {
		if el, ok := pick(a.t1); ok {
			id := el.Value.(PageID)
			a.move(a.where[id], id, arcB1)
			return id, true
		}
	}
	if el, ok := pick(a.t2); ok {
		id := el.Value.(PageID)
		a.move(a.where[id], id, arcB2)
		return id, true
	}
	if !tryT1 {
		if el, ok := pick(a.t1); ok {
			id := el.Value.(PageID)
			a.move(a.where[id], id, arcB1)
			return id, true
		}
	}
	return PageID{}, false
}

// Remove implements Policy. Residents evicted by Evict already moved to a
// ghost list, so Remove (which the pool calls right after) must keep ghosts;
// it only drops entries still marked resident (invalidation path).
func (a *ARC) Remove(id PageID) {
	e, ok := a.where[id]
	if !ok {
		return
	}
	switch e.list {
	case arcT1:
		a.t1.Remove(e.el)
		delete(a.where, id)
	case arcT2:
		a.t2.Remove(e.el)
		delete(a.where, id)
	case arcB1, arcB2:
		// Ghost memory retained on purpose.
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
