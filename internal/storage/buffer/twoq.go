// 2Q replacement (Johnson & Shasha — VLDB 1994), cited by the paper [18].
// 2Q keeps newly-admitted pages in a FIFO probation queue (A1in); only pages
// re-referenced after leaving probation (tracked by the ghost queue A1out)
// are promoted to the main LRU (Am). Large sequential scans therefore wash
// through A1in without disturbing Am — exactly the scan-resistance the
// paper's "DBMS X" buffer pool exhibited against BerkeleyDB's plain LRU, so
// our Volcano comparator uses 2Q by default.
package buffer

import "container/list"

// TwoQ implements the full (non-simplified) 2Q algorithm.
type TwoQ struct {
	kin, kout int // capacity shares for A1in and A1out (in pages)

	a1in  *list.List // FIFO of resident probation pages (front = newest)
	a1out *list.List // FIFO of ghost entries (ids only)
	am    *list.List // LRU of resident hot pages (front = most recent)

	where map[PageID]*twoQEntry
}

type twoQEntry struct {
	el    *list.Element
	queue int // 0=a1in, 1=a1out(ghost), 2=am
}

const (
	q2A1in = iota
	q2A1out
	q2Am
)

// NewTwoQ creates a 2Q policy for a pool of the given capacity. Kin is the
// original paper's 25% of capacity; Kout is one full capacity's worth of
// ghost identifiers (ghosts are 16-byte ids, so the memory cost is
// negligible, and the longer history survives a capacity-sized scan between
// re-references of the hot set).
func NewTwoQ(capacity int) *TwoQ {
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity
	if kout < 1 {
		kout = 1
	}
	return &TwoQ{
		kin: kin, kout: kout,
		a1in: list.New(), a1out: list.New(), am: list.New(),
		where: make(map[PageID]*twoQEntry),
	}
}

// Name implements Policy.
func (q *TwoQ) Name() string { return "2q" }

// Insert implements Policy.
func (q *TwoQ) Insert(id PageID) {
	if e, ok := q.where[id]; ok {
		switch e.queue {
		case q2A1out:
			// Re-reference after probation: promote to Am (the 2Q rule).
			q.a1out.Remove(e.el)
			e.el = q.am.PushFront(id)
			e.queue = q2Am
		case q2Am:
			q.am.MoveToFront(e.el)
		case q2A1in:
			// Still in probation; FIFO order unchanged by design.
		}
		return
	}
	el := q.a1in.PushFront(id)
	q.where[id] = &twoQEntry{el: el, queue: q2A1in}
}

// Touch implements Policy.
func (q *TwoQ) Touch(id PageID) {
	e, ok := q.where[id]
	if !ok {
		return
	}
	switch e.queue {
	case q2Am:
		q.am.MoveToFront(e.el)
	case q2A1in:
		// 2Q ignores hits while in A1in (FIFO semantics).
	case q2A1out:
		q.a1out.Remove(e.el)
		e.el = q.am.PushFront(id)
		e.queue = q2Am
	}
}

// trimGhosts bounds A1out to kout entries.
func (q *TwoQ) trimGhosts() {
	for q.a1out.Len() > q.kout {
		back := q.a1out.Back()
		id := back.Value.(PageID)
		q.a1out.Remove(back)
		delete(q.where, id)
	}
}

// Evict implements Policy. Victims come from A1in's tail when A1in exceeds
// its share (the evicted id becomes a ghost in A1out), otherwise from Am's
// tail.
func (q *TwoQ) Evict(evictable func(PageID) bool) (PageID, bool) {
	pick := func(ll *list.List) (PageID, *list.Element, bool) {
		for el := ll.Back(); el != nil; el = el.Prev() {
			id := el.Value.(PageID)
			if evictable(id) {
				return id, el, true
			}
		}
		return PageID{}, nil, false
	}
	if q.a1in.Len() > q.kin {
		if id, el, ok := pick(q.a1in); ok {
			q.a1in.Remove(el)
			// Demote to ghost: remember that this page was here so a
			// re-reference promotes it to Am.
			ge := q.where[id]
			ge.el = q.a1out.PushFront(id)
			ge.queue = q2A1out
			q.trimGhosts()
			return id, true
		}
	}
	if id, el, ok := pick(q.am); ok {
		q.am.Remove(el)
		delete(q.where, id)
		return id, true
	}
	// Fall back to A1in even under its share, otherwise we cannot evict.
	if id, el, ok := pick(q.a1in); ok {
		q.a1in.Remove(el)
		ge := q.where[id]
		ge.el = q.a1out.PushFront(id)
		ge.queue = q2A1out
		q.trimGhosts()
		return id, true
	}
	return PageID{}, false
}

// Remove implements Policy. Called by the pool after Evict (the ghost entry
// must survive, so Remove only deletes residents) and on invalidation.
func (q *TwoQ) Remove(id PageID) {
	e, ok := q.where[id]
	if !ok {
		return
	}
	switch e.queue {
	case q2A1in:
		q.a1in.Remove(e.el)
		delete(q.where, id)
	case q2Am:
		q.am.Remove(e.el)
		delete(q.where, id)
	case q2A1out:
		// Ghost: intentionally retained. The pool calls Remove right after
		// Evict moved the id to A1out; deleting it would destroy 2Q's memory.
	}
}
