// LRU-K replacement (O'Neil, O'Neil, Weikum — SIGMOD 1993), cited by the
// paper [22] as an improvement over plain LRU: the victim is the page whose
// K-th most recent reference is furthest in the past, which makes one-off
// sequential scans unable to flush frequently re-referenced pages.
package buffer

// LRUK implements the LRU-K policy with a logical clock (one tick per
// Insert/Touch), which is what the original paper's analysis uses. Reference
// history is retained after eviction (the paper's "retained information
// period") so a page's K-distance survives a round trip through the disk;
// retained histories are pruned once they exceed retain entries.
type LRUK struct {
	k      int
	now    int64
	retain int
	hist   map[PageID][]int64 // most recent first, at most k entries
	order  []PageID           // insertion order for deterministic tie-breaks
	pos    map[PageID]int
}

// NewLRUK creates an LRU-K policy; k must be >= 1 (k=1 degenerates to LRU
// with logical time).
func NewLRUK(k int) *LRUK {
	if k < 1 {
		k = 2
	}
	return &LRUK{k: k, retain: 4096, hist: make(map[PageID][]int64), pos: make(map[PageID]int)}
}

// Name implements Policy.
func (l *LRUK) Name() string {
	if l.k == 2 {
		return "lru-2"
	}
	return "lru-k"
}

func (l *LRUK) ref(id PageID) {
	l.now++
	h := l.hist[id]
	h = append([]int64{l.now}, h...)
	if len(h) > l.k {
		h = h[:l.k]
	}
	l.hist[id] = h
}

// Insert implements Policy.
func (l *LRUK) Insert(id PageID) {
	if _, ok := l.hist[id]; !ok {
		l.pos[id] = len(l.order)
		l.order = append(l.order, id)
	}
	l.ref(id)
}

// Touch implements Policy.
func (l *LRUK) Touch(id PageID) { l.ref(id) }

// backwardK returns the K-distance: the time of the K-th most recent
// reference, or a very small number when the page has fewer than K
// references (such pages are preferred victims, per the LRU-K paper's
// treatment of pages with incomplete history).
func (l *LRUK) backwardK(id PageID) int64 {
	h := l.hist[id]
	if len(h) < l.k {
		// Fewer than K references: order among these by their most recent
		// reference (approximating the paper's LRU fallback) but always
		// before any full-history page.
		const bias = int64(1) << 40
		if len(h) == 0 {
			return -bias
		}
		return h[len(h)-1] - bias
	}
	return h[l.k-1]
}

// Evict implements Policy.
func (l *LRUK) Evict(evictable func(PageID) bool) (PageID, bool) {
	var best PageID
	bestSet := false
	var bestK int64
	for id := range l.hist {
		if !evictable(id) {
			continue
		}
		bk := l.backwardK(id)
		if !bestSet || bk < bestK || (bk == bestK && l.pos[id] < l.pos[best]) {
			best, bestK, bestSet = id, bk, true
		}
	}
	return best, bestSet
}

// Remove implements Policy. History is intentionally retained (the pool's
// evictable predicate already filters non-resident pages out of Evict), but
// bounded: when the history map outgrows the retention limit, the entries
// with the oldest most-recent references are pruned.
func (l *LRUK) Remove(id PageID) {
	if len(l.hist) <= l.retain {
		return
	}
	type cand struct {
		id   PageID
		last int64
	}
	cands := make([]cand, 0, len(l.hist))
	for hid, h := range l.hist {
		last := int64(-1)
		if len(h) > 0 {
			last = h[0]
		}
		cands = append(cands, cand{hid, last})
	}
	// Drop the stalest quarter.
	target := l.retain * 3 / 4
	for len(cands) > target {
		// Selection of the minimum each round is O(n) but pruning is rare.
		minIx := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].last < cands[minIx].last {
				minIx = i
			}
		}
		delete(l.hist, cands[minIx].id)
		delete(l.pos, cands[minIx].id)
		cands[minIx] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
}
