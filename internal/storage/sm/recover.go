// Checkpoint and crash recovery.
//
// A checkpoint makes the committed state durable (buffer pool flushed, every
// heap file fsynced) and then writes a catalog snapshot — table schemas,
// index definitions, and each heap file's exact block count — into the WAL.
// Recovery inverts it:
//
//  1. restore the catalog from the last checkpoint snapshot
//  2. truncate every heap file to its snapshotted block count (discarding
//     any blocks written after the checkpoint — they will be re-created)
//  3. redo, in log order, every transaction whose commit record is in the
//     log after the checkpoint; uncommitted tails are discarded
//  4. rebuild indexes from the recovered heaps
//  5. checkpoint the recovered state
//
// Step 2 is what makes redo trivially idempotent: inserts re-append into
// heaps truncated to the exact pre-redo state (reproducing the logged RIDs,
// because commits hold table locks across append+apply, so per-table log
// order equals apply order), and updates/deletes are idempotent by nature.
package sm

import (
	"errors"
	"fmt"
	"sort"

	"qpipe/internal/storage/btree"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// Checkpoint makes all committed state durable and snapshots the catalog
// into the WAL, letting the log drop segments older than the snapshot.
// No-op without a WAL.
func (m *Manager) Checkpoint() error {
	if m.wal == nil {
		return nil
	}
	m.gate.Lock() // exclude commits: no batch may straddle the snapshot
	defer m.gate.Unlock()
	if err := m.Pool.Flush(); err != nil {
		return err
	}
	m.mu.RLock()
	names := make([]string, 0, len(m.tables))
	for n := range m.tables {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		if err := m.Disk.Sync("tbl:" + n); err != nil {
			m.mu.RUnlock()
			return err
		}
	}
	payload := m.encodeCatalogLocked(names)
	m.mu.RUnlock()
	return m.wal.Checkpoint(payload)
}

// encodeCatalogLocked serializes the catalog snapshot. Caller holds m.mu
// and the apply gate, so block counts are stable. Layout per table:
//
//	tuple{name, nblocks, clusteredKey, ncols, nunclustered}
//	ncols × tuple{colName, colKind}
//	nunclustered × tuple{colName}
func (m *Manager) encodeCatalogLocked(names []string) []byte {
	b := tuple.Tuple{tuple.I64(int64(len(names)))}.Encode(nil)
	for _, n := range names {
		t := m.tables[n]
		ucols := make([]string, 0, len(t.Unclustered))
		for c := range t.Unclustered {
			ucols = append(ucols, c)
		}
		sortStrings(ucols)
		b = tuple.Tuple{
			tuple.Str(n),
			tuple.I64(int64(m.Disk.NumBlocks("tbl:" + n))),
			tuple.Str(t.ClusteredKey),
			tuple.I64(int64(t.Schema.Len())),
			tuple.I64(int64(len(ucols))),
		}.Encode(b)
		for _, c := range t.Schema.Cols {
			b = tuple.Tuple{tuple.Str(c.Name), tuple.I64(int64(c.Kind))}.Encode(b)
		}
		for _, c := range ucols {
			b = tuple.Tuple{tuple.Str(c)}.Encode(b)
		}
	}
	return b
}

// catalogEntry is one table decoded from a checkpoint snapshot.
type catalogEntry struct {
	name         string
	nblocks      int64
	clusteredKey string
	schema       *tuple.Schema
	unclustered  []string
}

func decodeCatalog(b []byte) ([]catalogEntry, error) {
	hdr, n, err := tuple.Decode(b, 1)
	if err != nil {
		return nil, fmt.Errorf("sm: checkpoint catalog: %w", err)
	}
	b = b[n:]
	entries := make([]catalogEntry, 0, hdr[0].I)
	for i := int64(0); i < hdr[0].I; i++ {
		th, n, err := tuple.Decode(b, 5)
		if err != nil {
			return nil, fmt.Errorf("sm: checkpoint catalog table %d: %w", i, err)
		}
		b = b[n:]
		e := catalogEntry{name: th[0].S, nblocks: th[1].I, clusteredKey: th[2].S}
		cols := make([]tuple.Column, 0, th[3].I)
		for c := int64(0); c < th[3].I; c++ {
			ct, cn, err := tuple.Decode(b, 2)
			if err != nil {
				return nil, fmt.Errorf("sm: checkpoint catalog column: %w", err)
			}
			b = b[cn:]
			cols = append(cols, tuple.Column{Name: ct[0].S, Kind: tuple.Kind(ct[1].I)})
		}
		e.schema = tuple.NewSchema(cols...)
		for c := int64(0); c < th[4].I; c++ {
			ut, un, err := tuple.Decode(b, 1)
			if err != nil {
				return nil, fmt.Errorf("sm: checkpoint catalog index: %w", err)
			}
			b = b[un:]
			e.unclustered = append(e.unclustered, ut[0].S)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// redoTx accumulates one logged transaction's records until its commit.
type redoTx struct {
	order  []string // table touch order
	tables map[string]*txTable
	ddl    []ddlRecord
}

// Recover rebuilds the manager's state from the WAL: catalog from the last
// checkpoint, heaps truncated to their snapshotted lengths, committed
// transactions redone, indexes rebuilt, and a fresh checkpoint taken. Call
// exactly once, on a manager with a WAL attached and no tables registered.
func (m *Manager) Recover() error {
	if m.wal == nil {
		return errors.New("sm: Recover requires a WAL (EnableWAL first)")
	}
	m.mu.Lock()
	if len(m.tables) != 0 {
		m.mu.Unlock()
		return errors.New("sm: Recover on a manager with registered tables")
	}
	m.mu.Unlock()

	after := int64(-1)
	// indexWanted tracks the index set to rebuild: table -> cols; "" key
	// marks the clustered index (stored separately per table).
	clusteredWanted := map[string]string{}
	unclusteredWanted := map[string]map[string]bool{}
	if payload, at, ok := m.wal.Checkpointed(); ok {
		entries, err := decodeCatalog(payload)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := m.Disk.Truncate("tbl:"+e.name, e.nblocks); err != nil {
				return fmt.Errorf("sm: recover %q: %w", e.name, err)
			}
			h, err := reopenHeap(m, e.name, e.schema)
			if err != nil {
				return err
			}
			t := &Table{Name: e.name, Schema: e.schema, Heap: h, Unclustered: make(map[string]*btree.Tree)}
			m.mu.Lock()
			m.tables[e.name] = t
			m.mu.Unlock()
			if e.clusteredKey != "" {
				clusteredWanted[e.name] = e.clusteredKey
			}
			for _, c := range e.unclustered {
				setWanted(unclusteredWanted, e.name, c)
			}
		}
		after = at
	}

	// Redo committed transactions in log order. Record batches are appended
	// atomically, so a begin..commit group is always contiguous; anything
	// after a begin with no commit is an uncommitted tail to discard.
	var cur *redoTx
	err := m.wal.Scan(after, func(r wal.Record) error {
		switch r.Type {
		case wal.TypeBegin:
			cur = &redoTx{tables: make(map[string]*txTable)}
		case wal.TypeCommit:
			if cur == nil {
				return fmt.Errorf("sm: recover: commit at lsn %d with no begin", r.LSN)
			}
			if err := m.applyRedo(cur, clusteredWanted, unclusteredWanted); err != nil {
				return err
			}
			cur = nil
		case wal.TypeCheckpoint:
			// A later checkpoint than the one we started from cannot appear
			// (Checkpointed returns the last), but skipping is harmless.
		default:
			if cur == nil {
				return fmt.Errorf("sm: recover: %s record at lsn %d outside a transaction", r.Type, r.LSN)
			}
			if err := cur.add(m, r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Rebuild indexes from the recovered heaps (ghost-free by construction).
	m.mu.RLock()
	names := make([]string, 0, len(m.tables))
	for n := range m.tables {
		names = append(names, n)
	}
	m.mu.RUnlock()
	sortStrings(names)
	for _, n := range names {
		if key, ok := clusteredWanted[n]; ok {
			if err := m.buildClustered(n, key); err != nil {
				return err
			}
		}
		for c := range unclusteredWanted[n] {
			if err := m.buildUnclustered(n, c); err != nil {
				return err
			}
		}
	}
	m.removeStrayFiles(names)
	// Make the recovered state durable and let the log discard what the new
	// snapshot covers — recovery after a crash during THIS checkpoint starts
	// from the previous one and redoes the same work.
	return m.Checkpoint()
}

// reopenHeap rebinds a table's heap to the existing (just truncated) disk
// file, replacing the empty file createTableLocked made.
func reopenHeap(m *Manager, name string, schema *tuple.Schema) (*heap.File, error) {
	return heap.Open(m.Pool, "tbl:"+name, schema)
}

// add decodes one data or DDL record into the pending transaction.
func (rt *redoTx) add(m *Manager, r wal.Record) error {
	table := func(name string) (*txTable, error) {
		if tt, ok := rt.tables[name]; ok {
			return tt, nil
		}
		t, err := m.Table(name)
		if err != nil {
			return nil, fmt.Errorf("sm: recover: %w", err)
		}
		tt := &txTable{t: t, updates: map[heap.RID]tuple.Tuple{}, deletes: map[heap.RID]bool{}}
		rt.tables[name] = tt
		rt.order = append(rt.order, name)
		return tt, nil
	}
	switch r.Type {
	case wal.TypeInsert:
		name, rowBytes, err := decodeInsert(r.Payload)
		if err != nil {
			return err
		}
		tt, err := table(name)
		if err != nil {
			return err
		}
		row, _, err := tuple.Decode(rowBytes, tt.t.Schema.Len())
		if err != nil {
			return fmt.Errorf("sm: recover insert into %q: %w", name, err)
		}
		tt.inserts = append(tt.inserts, row)
	case wal.TypeUpdate:
		name, rid, rowBytes, err := decodeUpdate(r.Payload)
		if err != nil {
			return err
		}
		tt, err := table(name)
		if err != nil {
			return err
		}
		row, _, err := tuple.Decode(rowBytes, tt.t.Schema.Len())
		if err != nil {
			return fmt.Errorf("sm: recover update of %q: %w", name, err)
		}
		tt.updates[rid] = row
	case wal.TypeDelete:
		name, rid, err := decodeDelete(r.Payload)
		if err != nil {
			return err
		}
		tt, err := table(name)
		if err != nil {
			return err
		}
		tt.deletes[rid] = true
	case wal.TypeDDL:
		rec, err := decodeDDL(r.Payload)
		if err != nil {
			return err
		}
		rt.ddl = append(rt.ddl, rec)
	default:
		return fmt.Errorf("sm: recover: unexpected %s record at lsn %d", r.Type, r.LSN)
	}
	return nil
}

// applyRedo applies one committed transaction: DDL first (a transaction is
// either pure DDL or pure data in this engine, but order is defined anyway),
// then the data net effect through the same applyTable commits use.
func (m *Manager) applyRedo(rt *redoTx, clusteredWanted map[string]string, unclusteredWanted map[string]map[string]bool) error {
	for _, d := range rt.ddl {
		switch d.kind {
		case ddlKindTable:
			m.mu.Lock()
			if _, ok := m.tables[d.table]; ok {
				m.mu.Unlock()
				return fmt.Errorf("sm: recover: table %q created twice", d.table)
			}
			m.createTableLocked(d.table, d.schema)
			m.mu.Unlock()
		case ddlKindIndex:
			// Note the definition; the index itself is rebuilt once, after
			// all redo, from the final heap.
			if d.clustered {
				clusteredWanted[d.table] = d.col
			} else {
				setWanted(unclusteredWanted, d.table, d.col)
			}
		}
	}
	for _, name := range rt.order {
		if err := m.applyTable(rt.tables[name]); err != nil {
			return fmt.Errorf("sm: recover redo on %q: %w", name, err)
		}
	}
	return nil
}

func setWanted(m map[string]map[string]bool, table, col string) {
	if m[table] == nil {
		m[table] = make(map[string]bool)
	}
	m[table][col] = true
}

// removeStrayFiles deletes data/index/temp files that no recovered table
// references — leftovers of uncommitted work (a heap created by a CREATE
// TABLE whose commit never became durable, spill files, stale indexes).
func (m *Manager) removeStrayFiles(tables []string) {
	known := make(map[string]bool, len(tables)*2)
	m.mu.RLock()
	for _, n := range tables {
		known["tbl:"+n] = true
		t := m.tables[n]
		if t.Clustered != nil {
			known["cix:"+n] = true
		}
		for c := range t.Unclustered {
			known["uix:"+n+":"+c] = true
		}
	}
	m.mu.RUnlock()
	for _, prefix := range []string{"tbl:", "cix:", "uix:", "tmp:"} {
		for _, f := range m.Disk.FilesWithPrefix(prefix) {
			if !known[f] {
				m.Disk.Remove(f)
			}
		}
	}
}

func sortStrings(s []string) { sort.Strings(s) }
