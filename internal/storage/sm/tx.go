// Transactions. The engine uses a no-steal, redo-only protocol: a
// transaction stages its writes in a private overlay (nothing touches the
// heap before commit), and commit logs the net effect as one atomic WAL
// batch — begin, deletes, updates, inserts, commit — flushes it, and only
// then applies to the heap. Recovery therefore never needs undo: anything in
// the log without a commit record is garbage to skip, anything with one is
// redone.
//
// Locking: the transaction takes table X locks as it touches tables and
// holds them through commit — including across the WAL append AND the heap
// apply. That ordering is the recovery invariant: per table, log order
// equals apply order, so redo in log order reproduces the exact same RIDs.
package sm

import (
	"context"
	"fmt"
	"sort"

	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/lock"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// Tx is a storage-manager transaction. Not safe for concurrent use by
// multiple goroutines (a session owns its transaction); different
// transactions may run concurrently.
type Tx struct {
	m      *Manager
	id     int64
	writes map[string]*txTable // staged net effect per table
	order  []string            // table touch order (for deterministic logging)
	done   bool
}

// txTable is one table's staged net effect.
type txTable struct {
	t       *Table
	inserts []tuple.Tuple            // staged new rows; nil = retracted
	updates map[heap.RID]tuple.Tuple // rid -> replacement row
	deletes map[heap.RID]bool
}

// Begin starts a transaction.
func (m *Manager) Begin() *Tx {
	return &Tx{m: m, id: m.txid.Add(1), writes: make(map[string]*txTable)}
}

// ID returns the transaction's id (WAL begin-record payload).
func (tx *Tx) ID() int64 { return tx.id }

// touch looks up the table, takes its X lock on first touch, and returns the
// staging entry. The lock is held until Commit or Rollback.
func (tx *Tx) touch(ctx context.Context, table string) (*txTable, error) {
	if tx.done {
		return nil, &TxDoneError{}
	}
	if tt, ok := tx.writes[table]; ok {
		return tt, nil
	}
	t, err := tx.m.Table(table)
	if err != nil {
		return nil, err
	}
	if err := tx.m.Locks.Lock(ctx, table, lock.Exclusive); err != nil {
		return nil, err
	}
	tt := &txTable{t: t, updates: make(map[heap.RID]tuple.Tuple), deletes: make(map[heap.RID]bool)}
	tx.writes[table] = tt
	tx.order = append(tx.order, table)
	return tt, nil
}

// Writes reports whether the transaction has staged a write to the table
// (used by sessions to detect reads that would self-deadlock on the
// transaction's own X lock).
func (tx *Tx) Writes(table string) bool {
	_, ok := tx.writes[table]
	return ok
}

// Tables returns the tables the transaction has touched, in first-touch
// order (callers invalidate caches over them after Commit).
func (tx *Tx) Tables() []string {
	out := make([]string, len(tx.order))
	copy(out, tx.order)
	return out
}

// StageInsert stages a new row. It becomes visible at commit; within the
// transaction it is observable through ScanEffective.
func (tx *Tx) StageInsert(ctx context.Context, table string, row tuple.Tuple) error {
	tt, err := tx.touch(ctx, table)
	if err != nil {
		return err
	}
	if got, want := len(row), tt.t.Schema.Len(); got != want {
		return fmt.Errorf("sm: insert into %q: %d values for %d columns", table, got, want)
	}
	tt.inserts = append(tt.inserts, row)
	return nil
}

// insertRID flags a RID as referring to a staged (uncommitted) insert:
// negative page numbers never occur in heaps. Slot indexes into txTable.inserts.
func insertRID(i int) heap.RID { return heap.RID{Page: -1, Slot: i} }

func isInsertRID(r heap.RID) bool { return r.Page < 0 }

// StageUpdate stages a replacement for the row at rid (which the caller
// read either from the heap or from ScanEffective). Clustered tables refuse
// (see ClusteredMutationError).
func (tx *Tx) StageUpdate(ctx context.Context, table string, rid heap.RID, row tuple.Tuple) error {
	tt, err := tx.touch(ctx, table)
	if err != nil {
		return err
	}
	if tt.t.Clustered != nil {
		return &ClusteredMutationError{Table: table}
	}
	if got, want := len(row), tt.t.Schema.Len(); got != want {
		return fmt.Errorf("sm: update of %q: %d values for %d columns", table, got, want)
	}
	if isInsertRID(rid) {
		if rid.Slot < 0 || rid.Slot >= len(tt.inserts) || tt.inserts[rid.Slot] == nil {
			return fmt.Errorf("sm: update of %q: stale staged rid %s", table, rid)
		}
		tt.inserts[rid.Slot] = row
		return nil
	}
	if tt.deletes[rid] {
		return fmt.Errorf("sm: update of %q: rid %s deleted in this transaction", table, rid)
	}
	tt.updates[rid] = row
	return nil
}

// StageDelete stages a deletion of the row at rid.
func (tx *Tx) StageDelete(ctx context.Context, table string, rid heap.RID) error {
	tt, err := tx.touch(ctx, table)
	if err != nil {
		return err
	}
	if tt.t.Clustered != nil {
		return &ClusteredMutationError{Table: table}
	}
	if isInsertRID(rid) {
		if rid.Slot < 0 || rid.Slot >= len(tt.inserts) || tt.inserts[rid.Slot] == nil {
			return fmt.Errorf("sm: delete from %q: stale staged rid %s", table, rid)
		}
		tt.inserts[rid.Slot] = nil // retract: net effect is no row at all
		return nil
	}
	delete(tt.updates, rid) // delete wins over an earlier update
	tt.deletes[rid] = true
	return nil
}

// ScanEffective iterates the table as this transaction sees it: heap rows
// with staged updates substituted and staged deletes skipped, then staged
// inserts (with their synthetic negative-page RIDs, so a later statement in
// the same transaction can update or delete them). Takes the table X lock
// like any other transactional access.
func (tx *Tx) ScanEffective(ctx context.Context, table string, fn func(rid heap.RID, row tuple.Tuple) bool) error {
	tt, err := tx.touch(ctx, table)
	if err != nil {
		return err
	}
	stop := false
	err = tt.t.Heap.Scan(func(rid heap.RID, row tuple.Tuple) bool {
		if tt.deletes[rid] {
			return true
		}
		if repl, ok := tt.updates[rid]; ok {
			row = repl
		}
		if !fn(rid, row) {
			stop = true
			return false
		}
		return true
	})
	if err != nil || stop {
		return err
	}
	for i, row := range tt.inserts {
		if row == nil {
			continue
		}
		if !fn(insertRID(i), row) {
			return nil
		}
	}
	return nil
}

// Rollback discards the staged writes and releases the transaction's locks.
// Nothing reached the heap or the log, so there is nothing to undo. Safe to
// call on a finished transaction (no-op).
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.release()
}

func (tx *Tx) release() {
	for _, name := range tx.order {
		tx.m.Locks.Unlock(name, lock.Exclusive)
	}
}

// Commit logs the transaction's net effect as one atomic WAL batch, flushes
// it (the commit point), then applies it to the heap and indexes. Table X
// locks are held throughout, so per-table log order equals apply order. A
// WAL error aborts cleanly (nothing applied); an apply error after the
// flush is returned but the durable state is already correct — recovery
// redoes the transaction.
func (tx *Tx) Commit(ctx context.Context) error {
	if tx.done {
		return &TxDoneError{}
	}
	tx.done = true
	defer tx.release()
	empty := true
	for _, name := range tx.order {
		if tx.writes[name].dirty() {
			empty = false
			break
		}
	}
	if empty {
		return nil
	}
	// The apply gate: commits hold it shared from the WAL append through the
	// heap apply, so a checkpoint (exclusive) can never capture a snapshot
	// with a logged-but-unapplied transaction in flight.
	tx.m.gate.RLock()
	defer tx.m.gate.RUnlock()
	if tx.m.wal != nil {
		entries := tx.entries()
		_, end, err := tx.m.wal.Append(entries)
		if err != nil {
			return err
		}
		if err := tx.m.wal.Flush(end); err != nil {
			return err
		}
	}
	for _, name := range tx.order {
		if err := tx.m.applyTable(tx.writes[name]); err != nil {
			return fmt.Errorf("sm: commit apply on %q: %w (durable state is consistent; restart recovers)", name, err)
		}
	}
	return nil
}

func (tt *txTable) dirty() bool {
	if len(tt.updates) > 0 || len(tt.deletes) > 0 {
		return true
	}
	for _, row := range tt.inserts {
		if row != nil {
			return true
		}
	}
	return false
}

// entries builds the transaction's WAL batch: begin, then per table (touch
// order) deletes, updates, inserts — all in deterministic order — then
// commit.
func (tx *Tx) entries() []wal.Entry {
	entries := []wal.Entry{{Type: wal.TypeBegin, Payload: encodeBegin(tx.id)}}
	for _, name := range tx.order {
		tt := tx.writes[name]
		for _, rid := range sortedRIDs(tt.deletes) {
			entries = append(entries, wal.Entry{Type: wal.TypeDelete, Payload: encodeDelete(name, rid)})
		}
		for _, rid := range sortedUpdateRIDs(tt.updates) {
			entries = append(entries, wal.Entry{Type: wal.TypeUpdate, Payload: encodeUpdate(name, rid, tt.updates[rid])})
		}
		for _, row := range tt.inserts {
			if row != nil {
				entries = append(entries, wal.Entry{Type: wal.TypeInsert, Payload: encodeInsert(name, row)})
			}
		}
	}
	return append(entries, wal.Entry{Type: wal.TypeCommit, Payload: encodeBegin(tx.id)})
}

// applyTable applies one table's staged net effect to the heap, in the same
// order the WAL batch logged it, and maintains unclustered indexes. Bumps
// the table's commit sequence (the OSP snapshot fence).
func (m *Manager) applyTable(tt *txTable) error {
	t := tt.t
	for _, rid := range sortedRIDs(tt.deletes) {
		if err := t.Heap.DeleteAt(rid); err != nil {
			return err
		}
	}
	for _, rid := range sortedUpdateRIDs(tt.updates) {
		newRow := tt.updates[rid]
		oldRow, err := t.Heap.ReadTuple(rid)
		if err != nil {
			return err
		}
		if err := t.Heap.ReplaceAt(rid, newRow); err != nil {
			return err
		}
		// Index maintenance: add an entry under the new key when it changed.
		// The old entry stays behind as a ghost — fetch paths detect it by
		// re-checking the fetched row's key (see ops index scans). The
		// pre-insert search keeps a key that cycles back (A→B→A) from
		// producing a duplicate (key, rid) entry.
		for col, tr := range t.Unclustered {
			ix := t.Schema.MustColIndex(col)
			if tuple.Compare(oldRow[ix], newRow[ix]) == 0 {
				continue
			}
			enc := EncodeRID(rid)
			existing, err := tr.Search(newRow[ix])
			if err != nil {
				return err
			}
			dup := false
			for _, p := range existing {
				if string(p) == string(enc) {
					dup = true
					break
				}
			}
			if !dup {
				if err := tr.Insert(newRow[ix], enc); err != nil {
					return err
				}
			}
		}
	}
	for _, row := range tt.inserts {
		if row == nil {
			continue
		}
		rid, err := t.Heap.Append(row)
		if err != nil {
			return err
		}
		for col, tr := range t.Unclustered {
			ix := t.Schema.MustColIndex(col)
			if err := tr.Insert(row[ix], EncodeRID(rid)); err != nil {
				return err
			}
		}
	}
	if err := t.Heap.Sync(); err != nil {
		return err
	}
	t.commitSeq.Add(1)
	return nil
}

func sortedRIDs(set map[heap.RID]bool) []heap.RID {
	rids := make([]heap.RID, 0, len(set))
	for r := range set {
		rids = append(rids, r)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	return rids
}

func sortedUpdateRIDs(m map[heap.RID]tuple.Tuple) []heap.RID {
	rids := make([]heap.RID, 0, len(m))
	for r := range m {
		rids = append(rids, r)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	return rids
}
