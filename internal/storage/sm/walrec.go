// WAL record payload encodings. The log stores opaque payloads; this file
// defines what the storage manager puts in them, reusing the engine's tuple
// encoding (already length-prefixed and versioned by column kind) rather
// than inventing a second serialization format.
//
// Record shapes:
//
//	begin       tuple{txid}
//	insert      tuple{table} ++ row
//	update      tuple{table, page, slot} ++ row
//	delete      tuple{table, page, slot}
//	ddl         tuple{kind, a, b, n} ++ n × tuple{name, colKind}
//	              kind="table": a=table name, n=#columns (trailer = schema)
//	              kind="index": a=table, b=key column, n=1 if clustered
//	checkpoint  catalog snapshot (see recover.go)
package sm

import (
	"fmt"

	"qpipe/internal/storage/heap"
	"qpipe/internal/tuple"
)

func encodeBegin(txid int64) []byte {
	return tuple.Tuple{tuple.I64(txid)}.Encode(nil)
}

func encodeInsert(table string, row tuple.Tuple) []byte {
	b := tuple.Tuple{tuple.Str(table)}.Encode(nil)
	return row.Encode(b)
}

// decodeInsert returns the table name and the undecoded row bytes — the
// caller decodes them against the table's schema (payloads do not carry
// column counts).
func decodeInsert(b []byte) (table string, rowBytes []byte, err error) {
	hdr, n, err := tuple.Decode(b, 1)
	if err != nil {
		return "", nil, fmt.Errorf("sm: insert record: %w", err)
	}
	return hdr[0].S, b[n:], nil
}

func encodeUpdate(table string, rid heap.RID, row tuple.Tuple) []byte {
	b := tuple.Tuple{tuple.Str(table), tuple.I64(rid.Page), tuple.I64(int64(rid.Slot))}.Encode(nil)
	return row.Encode(b)
}

func decodeUpdate(b []byte) (table string, rid heap.RID, rowBytes []byte, err error) {
	hdr, n, err := tuple.Decode(b, 3)
	if err != nil {
		return "", heap.RID{}, nil, fmt.Errorf("sm: update record: %w", err)
	}
	return hdr[0].S, heap.RID{Page: hdr[1].I, Slot: int(hdr[2].I)}, b[n:], nil
}

func encodeDelete(table string, rid heap.RID) []byte {
	return tuple.Tuple{tuple.Str(table), tuple.I64(rid.Page), tuple.I64(int64(rid.Slot))}.Encode(nil)
}

func decodeDelete(b []byte) (table string, rid heap.RID, err error) {
	hdr, _, err := tuple.Decode(b, 3)
	if err != nil {
		return "", heap.RID{}, fmt.Errorf("sm: delete record: %w", err)
	}
	return hdr[0].S, heap.RID{Page: hdr[1].I, Slot: int(hdr[2].I)}, nil
}

const (
	ddlKindTable = "table"
	ddlKindIndex = "index"
)

func encodeDDLTable(name string, schema *tuple.Schema) []byte {
	b := tuple.Tuple{tuple.Str(ddlKindTable), tuple.Str(name), tuple.Str(""), tuple.I64(int64(schema.Len()))}.Encode(nil)
	for _, c := range schema.Cols {
		b = tuple.Tuple{tuple.Str(c.Name), tuple.I64(int64(c.Kind))}.Encode(b)
	}
	return b
}

func encodeDDLIndex(table, col string, clustered bool) []byte {
	n := int64(0)
	if clustered {
		n = 1
	}
	return tuple.Tuple{tuple.Str(ddlKindIndex), tuple.Str(table), tuple.Str(col), tuple.I64(n)}.Encode(nil)
}

// ddlRecord is a decoded DDL payload.
type ddlRecord struct {
	kind      string
	table     string
	col       string // index DDL only
	clustered bool   // index DDL only
	schema    *tuple.Schema
}

func decodeDDL(b []byte) (ddlRecord, error) {
	hdr, n, err := tuple.Decode(b, 4)
	if err != nil {
		return ddlRecord{}, fmt.Errorf("sm: ddl record: %w", err)
	}
	rec := ddlRecord{kind: hdr[0].S, table: hdr[1].S, col: hdr[2].S}
	switch rec.kind {
	case ddlKindTable:
		cols := make([]tuple.Column, 0, hdr[3].I)
		rest := b[n:]
		for i := int64(0); i < hdr[3].I; i++ {
			ct, cn, err := tuple.Decode(rest, 2)
			if err != nil {
				return ddlRecord{}, fmt.Errorf("sm: ddl record column %d: %w", i, err)
			}
			cols = append(cols, tuple.Column{Name: ct[0].S, Kind: tuple.Kind(ct[1].I)})
			rest = rest[cn:]
		}
		rec.schema = tuple.NewSchema(cols...)
	case ddlKindIndex:
		rec.clustered = hdr[3].I == 1
	default:
		return ddlRecord{}, fmt.Errorf("sm: ddl record: unknown kind %q", rec.kind)
	}
	return rec, nil
}
