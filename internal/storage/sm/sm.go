// Package sm is the storage-manager facade: it owns the simulated disk, the
// buffer pool, the lock manager and a catalog of tables with their access
// methods (heap file, optional clustered B+tree, any number of unclustered
// B+trees). This is the layer that stands in for BerkeleyDB in the paper's
// prototype ("calls to data access methods are wrappers for the underlying
// storage manager", §4.4): both execution engines — QPipe and the Volcano
// comparator — run on top of it.
package sm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qpipe/internal/storage/btree"
	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/lock"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// Table bundles one relation's schema and access methods.
type Table struct {
	Name   string
	Schema *tuple.Schema
	Heap   *heap.File

	// Clustered, when non-nil, is a B+tree whose leaves hold the full
	// tuples in key order; ClusteredKey names the key column.
	Clustered    *btree.Tree
	ClusteredKey string

	// Unclustered maps an indexed column name to a B+tree whose payloads
	// are encoded heap RIDs.
	Unclustered map[string]*btree.Tree

	// commitSeq counts committed transactions that touched this table — the
	// OSP snapshot fence. A scan that must be snapshot-consistent records it
	// at start and checks it at end; query-level S locks make a change
	// mid-scan impossible, and the check pins that.
	commitSeq atomic.Int64
}

// CommitSeq returns the table's committed-transaction counter.
func (t *Table) CommitSeq() int64 { return t.commitSeq.Load() }

// Manager is the storage manager.
type Manager struct {
	Disk  *disk.Disk
	Pool  *buffer.Pool
	Locks *lock.Manager

	mu     sync.RWMutex
	tables map[string]*Table
	// tempSeq numbers temporary spill files (sort runs, materialized
	// buffers) so names never collide.
	tempSeq int64

	// wal, when non-nil, makes every catalog and data mutation durable
	// (EnableWAL). The engine's internal harnesses leave it nil — pure
	// in-memory benchmarking pays no logging cost.
	wal  *wal.Log
	txid atomic.Int64

	// gate orders commits against checkpoints: a commit holds it shared from
	// its WAL append through its heap apply; a checkpoint holds it exclusive
	// while snapshotting. No transaction batch can straddle a checkpoint
	// record, so "redo everything after the checkpoint LSN" is exact.
	// Lock order: gate before mu.
	gate sync.RWMutex
}

// Config sizes a storage manager.
type Config struct {
	Disk       disk.Config
	PoolPages  int           // buffer-pool capacity in pages
	PoolPolicy buffer.Policy // nil = LRU
}

// New creates a storage manager with a fresh disk and pool.
func New(cfg Config) *Manager {
	d := disk.New(cfg.Disk)
	return &Manager{
		Disk:   d,
		Pool:   buffer.NewPool(d, cfg.PoolPages, cfg.PoolPolicy),
		Locks:  lock.NewManager(),
		tables: make(map[string]*Table),
	}
}

// NewSharedDisk creates a manager with its own pool and locks over an
// existing disk. The harness uses this to give QPipe and Volcano separate
// buffer pools over identical data, as the paper's three systems had.
func NewSharedDisk(d *disk.Disk, poolPages int, policy buffer.Policy) *Manager {
	return &Manager{
		Disk:   d,
		Pool:   buffer.NewPool(d, poolPages, policy),
		Locks:  lock.NewManager(),
		tables: make(map[string]*Table),
	}
}

// EnableWAL attaches a write-ahead log: from here on, DDL, loads and
// transaction commits are logged (and flushed) before they mutate the
// catalog or heaps. Call before any tables exist, or after Recover.
func (m *Manager) EnableWAL(l *wal.Log) { m.wal = l }

// WAL returns the attached log (nil when durability is off).
func (m *Manager) WAL() *wal.Log { return m.wal }

// logAutocommit appends a single-statement transaction (begin, the given
// entries, commit) to the WAL and flushes it. Callers hold the apply gate
// (shared) across this call and the mutation it precedes.
func (m *Manager) logAutocommit(entries []wal.Entry) error {
	if m.wal == nil {
		return nil
	}
	id := m.txid.Add(1)
	batch := make([]wal.Entry, 0, len(entries)+2)
	batch = append(batch, wal.Entry{Type: wal.TypeBegin, Payload: encodeBegin(id)})
	batch = append(batch, entries...)
	batch = append(batch, wal.Entry{Type: wal.TypeCommit, Payload: encodeBegin(id)})
	_, end, err := m.wal.Append(batch)
	if err != nil {
		return err
	}
	return m.wal.Flush(end)
}

// CreateTable registers a new table backed by a fresh heap file. With a WAL
// attached the DDL is logged (and flushed) first.
func (m *Manager) CreateTable(name string, schema *tuple.Schema) (*Table, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[name]; ok {
		return nil, fmt.Errorf("sm: table %q already exists", name)
	}
	if err := m.logAutocommit([]wal.Entry{{Type: wal.TypeDDL, Payload: encodeDDLTable(name, schema)}}); err != nil {
		return nil, err
	}
	return m.createTableLocked(name, schema), nil
}

// createTableLocked is CreateTable minus logging and locking — the shared
// path for user DDL and recovery redo. Caller holds m.mu.
func (m *Manager) createTableLocked(name string, schema *tuple.Schema) *Table {
	t := &Table{
		Name:        name,
		Schema:      schema,
		Heap:        heap.Create(m.Pool, "tbl:"+name, schema),
		Unclustered: make(map[string]*btree.Tree),
	}
	m.tables[name] = t
	return t
}

// AttachTable registers a table backed by existing files on a shared disk
// (second engine opening data loaded by the first).
func (m *Manager) AttachTable(name string, schema *tuple.Schema) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[name]; ok {
		return nil, fmt.Errorf("sm: table %q already attached", name)
	}
	h, err := heap.Open(m.Pool, "tbl:"+name, schema)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema, Heap: h, Unclustered: make(map[string]*btree.Tree)}
	if m.Disk.Exists("cix:" + name) {
		tr, err := btree.Open(m.Pool, "cix:"+name)
		if err != nil {
			return nil, err
		}
		t.Clustered = tr
	}
	m.tables[name] = t
	return t, nil
}

// AttachClusteredKey records the clustered key column after AttachTable
// (file metadata does not store column names).
func (m *Manager) AttachClusteredKey(table, col string) error {
	t, err := m.Table(table)
	if err != nil {
		return err
	}
	if t.Clustered == nil {
		return fmt.Errorf("sm: table %q has no clustered index", table)
	}
	t.ClusteredKey = col
	return nil
}

// AttachUnclustered opens an existing unclustered index on a shared disk.
func (m *Manager) AttachUnclustered(table, col string) error {
	t, err := m.Table(table)
	if err != nil {
		return err
	}
	name := "uix:" + table + ":" + col
	if !m.Disk.Exists(name) {
		return fmt.Errorf("sm: no unclustered index file %q", name)
	}
	tr, err := btree.Open(m.Pool, name)
	if err != nil {
		return err
	}
	t.Unclustered[col] = tr
	return nil
}

// Table looks up a registered table.
func (m *Manager) Table(name string) (*Table, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[name]
	if !ok {
		return nil, fmt.Errorf("sm: unknown table %q", name)
	}
	return t, nil
}

// MustTable is Table but panics; for the fixed benchmark plans.
func (m *Manager) MustTable(name string) *Table {
	t, err := m.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Tables returns the registered table names, sorted.
func (m *Manager) Tables() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.tables))
	for n := range m.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load bulk-appends tuples into the table's heap and syncs. With a WAL
// attached, the load is one logged transaction (committed before the heap
// is touched, like any other write). The caller is responsible for
// excluding concurrent readers — the facade takes the table X lock.
func (m *Manager) Load(table string, rows []tuple.Tuple) error {
	if m.wal != nil {
		tx := m.Begin()
		for _, r := range rows {
			if err := tx.StageInsert(context.Background(), table, r); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Commit(context.Background())
	}
	t, err := m.Table(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := t.Heap.Append(r); err != nil {
			return err
		}
	}
	if err := t.Heap.Sync(); err != nil {
		return err
	}
	t.commitSeq.Add(1)
	return nil
}

// Insert runs a single-row autocommit transaction: the row is logged,
// flushed, applied and index-maintained, with the table X lock taken and
// released internally.
func (m *Manager) Insert(table string, row tuple.Tuple) error {
	tx := m.Begin()
	if err := tx.StageInsert(context.Background(), table, row); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit(context.Background())
}

// BuildClustered builds a clustered B+tree over the table: all tuples sorted
// on keyCol, leaves holding full encoded tuples. (Real systems store the
// heap itself sorted; a clustered B+tree gives the same key-ordered,
// page-granular access path the experiments need.)
func (m *Manager) BuildClustered(table, keyCol string) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	if err := m.logAutocommit([]wal.Entry{{Type: wal.TypeDDL, Payload: encodeDDLIndex(table, keyCol, true)}}); err != nil {
		return err
	}
	return m.buildClustered(table, keyCol)
}

func (m *Manager) buildClustered(table, keyCol string) error {
	t, err := m.Table(table)
	if err != nil {
		return err
	}
	ix := t.Schema.MustColIndex(keyCol)
	var items []btree.Item
	err = t.Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
		items = append(items, btree.Item{Key: row[ix], Payload: row.Encode(nil)})
		return true
	})
	if err != nil {
		return err
	}
	sort.SliceStable(items, func(i, j int) bool {
		return tuple.Compare(items[i].Key, items[j].Key) < 0
	})
	tr, err := btree.Create(m.Pool, "cix:"+table)
	if err != nil {
		return err
	}
	if err := tr.BulkLoad(items, 1.0); err != nil {
		return err
	}
	t.Clustered = tr
	t.ClusteredKey = keyCol
	// Flush: bulk load links leaves through the buffer pool; other managers
	// attaching over the same disk must see the complete chain.
	return m.Pool.Flush()
}

// BuildUnclustered builds an unclustered B+tree mapping keyCol values to
// heap RIDs.
func (m *Manager) BuildUnclustered(table, keyCol string) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	if err := m.logAutocommit([]wal.Entry{{Type: wal.TypeDDL, Payload: encodeDDLIndex(table, keyCol, false)}}); err != nil {
		return err
	}
	return m.buildUnclustered(table, keyCol)
}

func (m *Manager) buildUnclustered(table, keyCol string) error {
	t, err := m.Table(table)
	if err != nil {
		return err
	}
	ix := t.Schema.MustColIndex(keyCol)
	var items []btree.Item
	err = t.Heap.Scan(func(rid heap.RID, row tuple.Tuple) bool {
		items = append(items, btree.Item{Key: row[ix], Payload: EncodeRID(rid)})
		return true
	})
	if err != nil {
		return err
	}
	sort.SliceStable(items, func(i, j int) bool {
		return tuple.Compare(items[i].Key, items[j].Key) < 0
	})
	tr, err := btree.Create(m.Pool, "uix:"+table+":"+keyCol)
	if err != nil {
		return err
	}
	if err := tr.BulkLoad(items, 1.0); err != nil {
		return err
	}
	t.Unclustered[keyCol] = tr
	return m.Pool.Flush()
}

// TempName reserves a unique name for a temporary spill file.
func (m *Manager) TempName(prefix string) string {
	m.mu.Lock()
	m.tempSeq++
	n := m.tempSeq
	m.mu.Unlock()
	return fmt.Sprintf("tmp:%s:%d", prefix, n)
}

// DropTemp removes a temporary file.
func (m *Manager) DropTemp(name string) { m.Disk.Remove(name) }

// EncodeRID encodes a heap RID as a B+tree payload.
func EncodeRID(r heap.RID) []byte {
	return tuple.Tuple{tuple.I64(r.Page), tuple.I64(int64(r.Slot))}.Encode(nil)
}

// DecodeRID reverses EncodeRID.
func DecodeRID(b []byte) (heap.RID, error) {
	t, _, err := tuple.Decode(b, 2)
	if err != nil {
		return heap.RID{}, err
	}
	return heap.RID{Page: t[0].I, Slot: int(t[1].I)}, nil
}
