package sm

import (
	"context"
	"errors"
	"testing"

	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

func walManager(t *testing.T) *Manager {
	t.Helper()
	m := New(Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 64})
	l, err := wal.Open(m.Disk, wal.Options{SegmentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableWAL(l)
	return m
}

// reopen simulates a restart over the surviving disk image: crash, fresh
// manager + pool + WAL handle, recover.
func reopen(t *testing.T, m *Manager, mode disk.CrashMode) *Manager {
	t.Helper()
	m.Disk.Crash(mode)
	m2 := NewSharedDisk(m.Disk, 64, nil)
	l, err := wal.Open(m.Disk, wal.Options{SegmentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	m2.EnableWAL(l)
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	return m2
}

func rowsOf(t *testing.T, m *Manager, table string) []tuple.Tuple {
	t.Helper()
	tab, err := m.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	var rows []tuple.Tuple
	if err := tab.Heap.Scan(func(_ heap.RID, r tuple.Tuple) bool {
		rows = append(rows, r.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func testSchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("id", tuple.KindInt), tuple.Col("name", tuple.KindString))
}

func TestCommitSurvivesCrash(t *testing.T) {
	for _, mode := range []disk.CrashMode{disk.CrashDropVolatile, disk.CrashKeepVolatile} {
		t.Run(mode.String(), func(t *testing.T) {
			m := walManager(t)
			if _, err := m.CreateTable("t", testSchema()); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			tx := m.Begin()
			for i := 0; i < 10; i++ {
				if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(int64(i)), tuple.Str("row")}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
			m2 := reopen(t, m, mode)
			rows := rowsOf(t, m2, "t")
			if len(rows) != 10 {
				t.Fatalf("after crash got %d rows, want 10", len(rows))
			}
			for i, r := range rows {
				if r[0].I != int64(i) {
					t.Fatalf("row %d: id=%d", i, r[0].I)
				}
			}
		})
	}
}

func TestUncommittedVanishesOnCrash(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Load("t", []tuple.Tuple{{tuple.I64(1), tuple.Str("committed")}}); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(2), tuple.Str("staged")}); err != nil {
		t.Fatal(err)
	}
	// No commit: crash with the write staged only in memory.
	m2 := reopen(t, m, disk.CrashDropVolatile)
	rows := rowsOf(t, m2, "t")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("uncommitted row leaked: %v", rows)
	}
}

func TestRollbackDiscardsAndUnlocks(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tx := m.Begin()
	if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(1), tuple.Str("x")}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if got := len(rowsOf(t, m, "t")); got != 0 {
		t.Fatalf("rollback left %d rows", got)
	}
	// Lock released: another transaction can commit.
	tx2 := m.Begin()
	if err := tx2.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(2), tuple.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(rowsOf(t, m, "t")); got != 1 {
		t.Fatalf("after rollback+commit got %d rows", got)
	}
}

func TestUpdateDeleteRoundtrip(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var rows []tuple.Tuple
	for i := 0; i < 20; i++ {
		rows = append(rows, tuple.Tuple{tuple.I64(int64(i)), tuple.Str("orig")})
	}
	if err := m.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	// Update evens, delete multiples of 5, in one transaction.
	tx := m.Begin()
	if err := tx.ScanEffective(ctx, "t", func(rid heap.RID, row tuple.Tuple) bool {
		id := row[0].I
		if id%5 == 0 {
			if err := tx.StageDelete(ctx, "t", rid); err != nil {
				t.Fatal(err)
			}
		} else if id%2 == 0 {
			if err := tx.StageUpdate(ctx, "t", rid, tuple.Tuple{tuple.I64(id), tuple.Str("upd")}); err != nil {
				t.Fatal(err)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	check := func(m *Manager, label string) {
		got := rowsOf(t, m, "t")
		want := 16 // 20 minus ids 0,5,10,15
		if len(got) != want {
			t.Fatalf("%s: %d rows, want %d", label, len(got), want)
		}
		for _, r := range got {
			id := r[0].I
			switch {
			case id%5 == 0:
				t.Fatalf("%s: deleted id %d still present", label, id)
			case id%2 == 0:
				if r[1].S != "upd" {
					t.Fatalf("%s: id %d not updated: %q", label, id, r[1].S)
				}
			default:
				if r[1].S != "orig" {
					t.Fatalf("%s: id %d clobbered: %q", label, id, r[1].S)
				}
			}
		}
	}
	check(m, "live")
	m2 := reopen(t, m, disk.CrashDropVolatile)
	check(m2, "recovered")
}

func TestReadYourOwnWrites(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Load("t", []tuple.Tuple{{tuple.I64(1), tuple.Str("a")}}); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(2), tuple.Str("b")}); err != nil {
		t.Fatal(err)
	}
	// Second statement in the same transaction sees the staged insert and
	// can update it.
	var staged heap.RID
	found := false
	if err := tx.ScanEffective(ctx, "t", func(rid heap.RID, row tuple.Tuple) bool {
		if row[0].I == 2 {
			staged, found = rid, true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("staged insert invisible to ScanEffective")
	}
	if err := tx.StageUpdate(ctx, "t", staged, tuple.Tuple{tuple.I64(2), tuple.Str("b2")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	rows := rowsOf(t, m, "t")
	if len(rows) != 2 || rows[1][1].S != "b2" {
		t.Fatalf("net effect wrong: %v", rows)
	}
}

func TestClusteredMutationRefused(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("t", []tuple.Tuple{{tuple.I64(1), tuple.Str("a")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildClustered("t", "id"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tx := m.Begin()
	defer tx.Rollback()
	var cme *ClusteredMutationError
	err := tx.StageUpdate(ctx, "t", heap.RID{Page: 0, Slot: 0}, tuple.Tuple{tuple.I64(1), tuple.Str("b")})
	if !errors.As(err, &cme) {
		t.Fatalf("update on clustered table: %v", err)
	}
	if err := tx.StageDelete(ctx, "t", heap.RID{Page: 0, Slot: 0}); !errors.As(err, &cme) {
		t.Fatalf("delete on clustered table: %v", err)
	}
}

func TestRecoveryRebuildsIndexes(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	var rows []tuple.Tuple
	for i := 0; i < 50; i++ {
		rows = append(rows, tuple.Tuple{tuple.I64(int64(i)), tuple.Str("v")})
	}
	if err := m.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildUnclustered("t", "id"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Delete a row after the index build, then crash.
	tx := m.Begin()
	if err := tx.StageDelete(ctx, "t", heap.RID{Page: 0, Slot: 7}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := reopen(t, m, disk.CrashDropVolatile)
	tab, err := m2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := tab.Unclustered["id"]
	if !ok {
		t.Fatal("unclustered index not rebuilt")
	}
	n, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 49 {
		t.Fatalf("rebuilt index has %d entries, want 49 (no ghosts)", n)
	}
}

func TestCheckpointThenRedoTail(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("t", []tuple.Tuple{{tuple.I64(1), tuple.Str("pre")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("t", []tuple.Tuple{{tuple.I64(2), tuple.Str("post")}}); err != nil {
		t.Fatal(err)
	}
	m2 := reopen(t, m, disk.CrashDropVolatile)
	rows := rowsOf(t, m2, "t")
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (checkpointed + redone)", len(rows))
	}
	if rows[0][1].S != "pre" || rows[1][1].S != "post" {
		t.Fatalf("rows wrong: %v", rows)
	}
}

func TestCommitSeqFence(t *testing.T) {
	m := walManager(t)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	tab, _ := m.Table("t")
	before := tab.CommitSeq()
	if err := m.Insert("t", tuple.Tuple{tuple.I64(1), tuple.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if got := tab.CommitSeq(); got != before+1 {
		t.Fatalf("commit seq %d, want %d", got, before+1)
	}
	// Rollback must not move the fence.
	tx := m.Begin()
	if err := tx.StageInsert(context.Background(), "t", tuple.Tuple{tuple.I64(2), tuple.Str("b")}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if got := tab.CommitSeq(); got != before+1 {
		t.Fatalf("rollback moved commit seq to %d", got)
	}
}
