package sm

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/wal"
	"qpipe/internal/tuple"
)

// TestRecoveryProperty is the randomized counterpart of the deterministic
// crash-point matrix (wal/crashtest): N seeded iterations each run an
// interleaved transactional workload — bulk Loads, single-row Inserts,
// multi-op transactions with updates, deletes and random rollbacks — across
// several goroutines, kill the engine at a random WAL operation, recover
// with a fresh manager, and require the survivors to be exactly the
// committed prefix. Each worker owns a disjoint id range, so the reference
// model needs no cross-worker coordination and the all-or-nothing check is
// exact per worker: its rows must equal its acknowledged state, optionally
// plus its single in-flight transaction (whose commit record may or may not
// have reached the durable log).
func TestRecoveryProperty(t *testing.T) {
	const iterations = 10
	for iter := 0; iter < iterations; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("seed=%d", iter), func(t *testing.T) {
			runRecoveryIteration(t, int64(1000+iter))
		})
	}
}

// workerRef is one worker's view of the reference model. Only its own
// goroutine touches it while the workload runs.
type workerRef struct {
	committed map[int64]string // acknowledged state of this worker's id range
	uncertain map[int64]string // post-state of the tx in flight at the crash (nil = none)
}

func runRecoveryIteration(t *testing.T, seed int64) {
	const (
		workers    = 4
		opsPerWkr  = 30
		idStride   = 1 << 20 // worker w owns [w*idStride, (w+1)*idStride)
		crashSites = 400
	)
	seedRng := rand.New(rand.NewSource(seed))
	mode := disk.CrashDropVolatile
	if seedRng.Intn(2) == 1 {
		mode = disk.CrashKeepVolatile
	}
	crashAt := int64(1 + seedRng.Intn(crashSites))

	d := disk.New(disk.Config{BlockSize: 512})
	m := NewSharedDisk(d, 128, nil)
	l, err := wal.Open(d, wal.Options{SegmentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableWAL(l)
	if _, err := m.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := m.BuildUnclustered("t", "id"); err != nil {
		t.Fatal(err)
	}

	// The kill switch: the crashAt-th WAL hook call flips dead; every hook
	// call at or after that point panics, so no goroutine can log or apply
	// anything further. Workers catch the panic and stop. (Commits reach the
	// WAL before they touch the heap, so a dead log freezes the heap too.)
	var hookCalls, dead atomic.Int64
	l.Hook = func(string) {
		if hookCalls.Add(1) >= crashAt {
			dead.Store(1)
		}
		if dead.Load() == 1 {
			panic(crashSignal{})
		}
	}

	refs := make([]*workerRef, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ref := &workerRef{committed: make(map[int64]string)}
		refs[w] = ref
		rng := rand.New(rand.NewSource(seed*31 + int64(w)))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(t, m, ref, rng, int64(w)*idStride, opsPerWkr, &dead)
		}(w)
	}
	wg.Wait()

	// The world has stopped (every worker returned); take the crash image
	// and recover into a fresh manager.
	d.Crash(mode)
	m2 := NewSharedDisk(d, 128, nil)
	l2, err := wal.Open(d, wal.Options{SegmentBlocks: 8})
	if err != nil {
		t.Fatalf("seed %d: reopening WAL: %v", seed, err)
	}
	m2.EnableWAL(l2)
	if err := m2.Recover(); err != nil {
		t.Fatalf("seed %d: recovery: %v", seed, err)
	}

	got := make(map[int64]string)
	tab, err := m2.Table("t")
	if err != nil {
		t.Fatalf("seed %d: table lost: %v", seed, err)
	}
	if err := tab.Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
		got[row[0].I] = row[1].S
		return true
	}); err != nil {
		t.Fatal(err)
	}

	// Per worker: its id range must hold exactly its committed state, or
	// exactly committed+in-flight. Anything else is a torn transaction.
	for w, ref := range refs {
		lo, hi := int64(w)*idStride, int64(w+1)*idStride
		gw := make(map[int64]string)
		for id, v := range got {
			if id >= lo && id < hi {
				gw[id] = v
			}
		}
		if mapsEqual(gw, ref.committed) {
			continue
		}
		if ref.uncertain != nil && mapsEqual(gw, ref.uncertain) {
			continue
		}
		t.Errorf("seed %d worker %d: recovered %d rows, committed ref %d, in-flight ref %v — not an exact prefix",
			seed, w, len(gw), len(ref.committed), ref.uncertain != nil)
	}

	// The rebuilt index must resolve every surviving id to its exact row.
	ix := tab.Unclustered["id"]
	if ix == nil {
		t.Fatalf("seed %d: unclustered index lost", seed)
	}
	for id, name := range got {
		rids, err := ix.Search(tuple.I64(id))
		if err != nil {
			t.Fatal(err)
		}
		live := 0
		for _, rb := range rids {
			rid, err := DecodeRID(rb)
			if err != nil {
				t.Fatal(err)
			}
			row, rerr := tab.Heap.ReadTuple(rid)
			if rerr != nil {
				continue // ghost
			}
			if row[0].I == id && row[1].S == name {
				live++
			}
		}
		if live != 1 {
			t.Errorf("seed %d: index resolves id %d to %d live rows, want 1", seed, id, live)
		}
	}
}

type crashSignal struct{}

// runWorker runs one goroutine's op stream until its budget runs out or the
// engine dies under it. Each op is one transaction: a bulk Load, a one-row
// autocommit insert, a rollback, or a staged multi-op transaction.
func runWorker(t *testing.T, m *Manager, ref *workerRef, rng *rand.Rand, base int64, ops int, dead *atomic.Int64) {
	ctx := context.Background()
	nextID := base
	for op := 0; op < ops; op++ {
		if dead.Load() == 1 {
			return
		}
		crashed := runWorkerOp(t, m, ref, rng, &nextID, ctx)
		if crashed {
			return
		}
	}
}

// runWorkerOp performs one random operation. Returns true when the engine
// died mid-operation (the in-flight delta, if it was a commit, is already
// recorded in ref.uncertain).
func runWorkerOp(t *testing.T, m *Manager, ref *workerRef, rng *rand.Rand, nextID *int64, ctx context.Context) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()

	next := make(map[int64]string, len(ref.committed)+4)
	for k, v := range ref.committed {
		next[k] = v
	}

	switch k := rng.Intn(10); {
	case k < 2: // bulk Load of a few rows (autocommit through the Tx path)
		n := 2 + rng.Intn(3)
		rows := make([]tuple.Tuple, n)
		for i := 0; i < n; i++ {
			id := *nextID
			*nextID++
			name := fmt.Sprintf("load-%d", id)
			rows[i] = tuple.Tuple{tuple.I64(id), tuple.Str(name)}
			next[id] = name
		}
		ref.uncertain = next
		if err := m.Load("t", rows); err != nil {
			t.Error(err)
			return false
		}
	case k < 4: // single-row autocommit insert
		id := *nextID
		*nextID++
		name := fmt.Sprintf("ins-%d", id)
		next[id] = name
		ref.uncertain = next
		if err := m.Insert("t", tuple.Tuple{tuple.I64(id), tuple.Str(name)}); err != nil {
			t.Error(err)
			return false
		}
	case k < 5: // staged work, then rollback: must be a no-op
		tx := m.Begin()
		id := *nextID
		*nextID++
		if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(id), tuple.Str("never")}); err != nil {
			t.Error(err)
			tx.Rollback()
			return false
		}
		tx.Rollback()
		return false // committed state unchanged; nothing uncertain
	default: // multi-op transaction: inserts + update + delete of own rows
		tx := m.Begin()
		for i := 0; i < 1+rng.Intn(3); i++ {
			id := *nextID
			*nextID++
			name := fmt.Sprintf("tx-%d", id)
			if err := tx.StageInsert(ctx, "t", tuple.Tuple{tuple.I64(id), tuple.Str(name)}); err != nil {
				t.Error(err)
				tx.Rollback()
				return false
			}
			next[id] = name
		}
		// Mutate up to two existing committed rows of this worker's range.
		own := make([]int64, 0, len(ref.committed))
		for id := range ref.committed {
			own = append(own, id)
		}
		if len(own) > 0 {
			// Deterministic pick order for reproducibility under the seed.
			sortInt64s(own)
			upd := own[rng.Intn(len(own))]
			if rid, ok := findOwnRID(t, tx, ctx, upd); ok {
				name := next[upd] + "'"
				if err := tx.StageUpdate(ctx, "t", rid, tuple.Tuple{tuple.I64(upd), tuple.Str(name)}); err != nil {
					t.Error(err)
					tx.Rollback()
					return false
				}
				next[upd] = name
			}
			del := own[rng.Intn(len(own))]
			if del != upd {
				if rid, ok := findOwnRID(t, tx, ctx, del); ok {
					if err := tx.StageDelete(ctx, "t", rid); err != nil {
						t.Error(err)
						tx.Rollback()
						return false
					}
					delete(next, del)
				}
			}
		}
		ref.uncertain = next
		if err := tx.Commit(ctx); err != nil {
			t.Error(err)
			return false
		}
	}
	ref.committed = next
	ref.uncertain = nil
	return false
}

func findOwnRID(t *testing.T, tx *Tx, ctx context.Context, id int64) (heap.RID, bool) {
	var out heap.RID
	found := false
	if err := tx.ScanEffective(ctx, "t", func(rid heap.RID, row tuple.Tuple) bool {
		if row[0].I == id {
			out, found = rid, true
			return false
		}
		return true
	}); err != nil {
		t.Error(err)
	}
	return out, found
}

func mapsEqual(a, b map[int64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
