package sm

import "fmt"

// ClusteredMutationError reports an UPDATE or DELETE against a table with a
// clustered index. Clustered tables are bulk-built, read-mostly structures in
// this engine (the paper's experiments never mutate them); in-place mutation
// would desynchronize the key-ordered leaf copies from the heap, so the
// storage manager refuses with a typed error instead of corrupting silently.
type ClusteredMutationError struct {
	Table string
}

func (e *ClusteredMutationError) Error() string {
	return fmt.Sprintf("sm: table %q has a clustered index; UPDATE/DELETE are not supported on clustered tables", e.Table)
}

// TxDoneError reports a use of a transaction after Commit or Rollback.
type TxDoneError struct{}

func (e *TxDoneError) Error() string { return "sm: transaction already finished" }

// TornScanError reports that a table's committed state changed under a scan
// that required a snapshot-consistent view — the OSP sharing fence tripped.
// Query-level table locks make this unreachable in normal operation; the
// error existing (and being checked) is what pins the invariant.
type TornScanError struct {
	Table      string
	Start, End int64 // commit sequence numbers observed at scan start/end
}

func (e *TornScanError) Error() string {
	return fmt.Sprintf("sm: torn scan of %q: commit seq moved %d -> %d mid-scan", e.Table, e.Start, e.End)
}
