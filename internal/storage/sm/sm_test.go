package sm

import (
	"fmt"
	"testing"

	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/tuple"
)

func newMgr() *Manager {
	return New(Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 32})
}

func schema2() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("k", tuple.KindInt), tuple.Col("v", tuple.KindString))
}

func rows(n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{tuple.I64(int64(i)), tuple.Str(fmt.Sprintf("v%03d", i))}
	}
	return out
}

func TestCreateLoadScan(t *testing.T) {
	m := newMgr()
	tb, err := m.CreateTable("t", schema2())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("t", schema2()); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := m.Load("t", rows(100)); err != nil {
		t.Fatal(err)
	}
	n, err := tb.Heap.Count()
	if err != nil || n != 100 {
		t.Fatalf("count: %d %v", n, err)
	}
	if _, err := m.Table("missing"); err == nil {
		t.Error("missing table lookup should fail")
	}
	names := m.Tables()
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("Tables: %v", names)
	}
}

func TestMustTablePanics(t *testing.T) {
	m := newMgr()
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic")
		}
	}()
	m.MustTable("nope")
}

func TestBuildUnclusteredAndProbe(t *testing.T) {
	m := newMgr()
	m.CreateTable("t", schema2())
	m.Load("t", rows(200))
	if err := m.BuildUnclustered("t", "k"); err != nil {
		t.Fatal(err)
	}
	tb := m.MustTable("t")
	ix := tb.Unclustered["k"]
	if ix == nil {
		t.Fatal("index not registered")
	}
	payloads, err := ix.Search(tuple.I64(42))
	if err != nil || len(payloads) != 1 {
		t.Fatalf("probe: %d %v", len(payloads), err)
	}
	rid, err := DecodeRID(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	row, err := tb.Heap.ReadTuple(rid)
	if err != nil || row[0].I != 42 {
		t.Fatalf("fetch via RID: %v %v", row, err)
	}
}

func TestBuildClusteredOrdered(t *testing.T) {
	m := newMgr()
	m.CreateTable("t", schema2())
	// Load in reverse order; clustered index must sort.
	rs := rows(150)
	for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
		rs[i], rs[j] = rs[j], rs[i]
	}
	m.Load("t", rs)
	if err := m.BuildClustered("t", "k"); err != nil {
		t.Fatal(err)
	}
	tb := m.MustTable("t")
	if tb.ClusteredKey != "k" {
		t.Error("ClusteredKey")
	}
	var prev int64 = -1
	count := 0
	err := tb.Clustered.Range(tuple.Value{}, tuple.Value{}, func(k tuple.Value, payload []byte) bool {
		if k.I <= prev {
			t.Fatalf("clustered scan out of order: %d after %d", k.I, prev)
		}
		prev = k.I
		// Payload is the full tuple.
		row, _, err := tuple.Decode(payload, 2)
		if err != nil || row[0].I != k.I {
			t.Fatalf("clustered payload: %v %v", row, err)
		}
		count++
		return true
	})
	if err != nil || count != 150 {
		t.Fatalf("clustered scan: %d %v", count, err)
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	m := newMgr()
	m.CreateTable("t", schema2())
	m.Load("t", rows(50))
	m.BuildUnclustered("t", "k")
	if err := m.Insert("t", tuple.Tuple{tuple.I64(999), tuple.Str("new")}); err != nil {
		t.Fatal(err)
	}
	tb := m.MustTable("t")
	n, _ := tb.Heap.Count()
	if n != 51 {
		t.Errorf("heap count after insert: %d", n)
	}
	payloads, _ := tb.Unclustered["k"].Search(tuple.I64(999))
	if len(payloads) != 1 {
		t.Fatalf("index not maintained: %d", len(payloads))
	}
	rid, _ := DecodeRID(payloads[0])
	row, err := tb.Heap.ReadTuple(rid)
	if err != nil || row[1].S != "new" {
		t.Errorf("fetch inserted: %v %v", row, err)
	}
}

func TestSharedDiskAttach(t *testing.T) {
	m1 := newMgr()
	m1.CreateTable("t", schema2())
	m1.Load("t", rows(80))
	m1.BuildClustered("t", "k")
	m1.BuildUnclustered("t", "k")
	m1.Pool.Flush()

	// Second manager (separate pool) over the same disk.
	m2 := NewSharedDisk(m1.Disk, 16, nil)
	tb2, err := m2.AttachTable("t", schema2())
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Clustered == nil {
		t.Fatal("clustered index not attached")
	}
	if err := m2.AttachClusteredKey("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := m2.AttachUnclustered("t", "k"); err != nil {
		t.Fatal(err)
	}
	n, err := tb2.Heap.Count()
	if err != nil || n != 80 {
		t.Fatalf("attached heap count: %d %v", n, err)
	}
	cnt, err := tb2.Clustered.Count()
	if err != nil || cnt != 80 {
		t.Fatalf("attached clustered count: %d %v", cnt, err)
	}
	if err := m2.AttachUnclustered("t", "v"); err == nil {
		t.Error("attach of missing index should fail")
	}
	if _, err := m2.AttachTable("t", schema2()); err == nil {
		t.Error("double attach should fail")
	}
	if _, err := m2.AttachTable("missing", schema2()); err == nil {
		t.Error("attach of missing table should fail")
	}
}

func TestAttachClusteredKeyErrors(t *testing.T) {
	m := newMgr()
	m.CreateTable("t", schema2())
	m.Load("t", rows(10))
	if err := m.AttachClusteredKey("t", "k"); err == nil {
		t.Error("no clustered index: should fail")
	}
	if err := m.AttachClusteredKey("missing", "k"); err == nil {
		t.Error("missing table: should fail")
	}
}

func TestTempNames(t *testing.T) {
	m := newMgr()
	a := m.TempName("sort")
	b := m.TempName("sort")
	if a == b {
		t.Error("temp names must be unique")
	}
	m.Disk.Create(a)
	m.DropTemp(a)
	if m.Disk.Exists(a) {
		t.Error("DropTemp")
	}
}

func TestRIDCodec(t *testing.T) {
	r := heap.RID{Page: 12345, Slot: 67}
	got, err := DecodeRID(EncodeRID(r))
	if err != nil || got != r {
		t.Errorf("RID codec: %v %v", got, err)
	}
	if _, err := DecodeRID([]byte{1, 2}); err == nil {
		t.Error("DecodeRID of garbage should fail")
	}
}
