package ops

import (
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
)

func TestSelfJoinSharedScannerDeadlockResolved(t *testing.T) {
	rt := newRT(t, 3000, core.DefaultConfig())
	rt.SM.Disk.SetLatency(10*time.Microsecond, 15*time.Microsecond, 0)
	defer rt.SM.Disk.SetLatency(0, 0, 0)
	l := plan.NewTableScan("t", testSchema(), expr.LT(expr.Col(0), expr.CInt(200)), []int{1}, false)
	r := plan.NewTableScan("t", testSchema(), expr.LT(expr.Col(0), expr.CInt(300)), []int{1}, false)
	p := plan.NewAggregate(plan.NewHashJoin(l, r, 0, 0), []expr.AggSpec{{Kind: expr.AggCount}})
	done := make(chan struct{})
	go func() {
		rows := runPlan(t, rt, p)
		if rows[0][0].I == 0 {
			t.Error("zero join rows")
		}
		close(done)
	}()
	select {
	case <-done:
		t.Logf("stats: %+v mat=%d dl=%d", rt.Stats().SharesByOp, rt.Stats().Materialized, rt.Stats().DeadlocksSeen)
	case <-time.After(20 * time.Second):
		t.Fatal("self-join over shared scanner hung")
	}
}
