package ops

import (
	"context"
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

func newIndexedRT(t *testing.T, n int, cfg core.Config) *core.Runtime {
	t.Helper()
	rt := newRT(t, n, cfg)
	if err := rt.SM.BuildClustered("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := rt.SM.BuildUnclustered("t", "g"); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestClusteredOrderedScanThroughEngine(t *testing.T) {
	rt := newIndexedRT(t, 400, core.DefaultConfig())
	p := plan.NewIndexScan("t", testSchema(), "k", tuple.Value{}, tuple.Value{}, true, true, nil, nil)
	rows := runPlan(t, rt, p)
	if len(rows) != 400 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := range rows {
		if rows[i][0].I != int64(i) {
			t.Fatalf("order violated at %d: %v", i, rows[i])
		}
	}
}

func TestUnclusteredOrderedFetch(t *testing.T) {
	rt := newIndexedRT(t, 140, core.DefaultConfig())
	// Ordered unclustered scan: fetch in key order rather than page order.
	p := plan.NewIndexScan("t", testSchema(), "g", tuple.I64(0), tuple.I64(6), false, true, nil, nil)
	rows := runPlan(t, rt, p)
	if len(rows) != 140 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].I > rows[i][1].I {
			t.Fatalf("key order violated at %d", i)
		}
	}
}

// TestMaterializedOrderedShare exercises the §4.3.2 materialization
// function: a selective order-sensitive scan arrives while an identicalish
// ordered scan is mid-flight; it must piggyback (suffix materialized,
// prefix read fresh) and still deliver complete results in key order.
func TestMaterializedOrderedShare(t *testing.T) {
	rt := newIndexedRT(t, 6000, core.DefaultConfig())
	rt.SM.Disk.SetLatency(25*time.Microsecond, 35*time.Microsecond, 0)
	defer rt.SM.Disk.SetLatency(0, 0, 0)

	// Q1: unfiltered ordered scan (slow, hosts the scanner).
	q1Plan := plan.NewIndexScan("t", testSchema(), "k", tuple.Value{}, tuple.Value{}, true, true, nil, nil)
	q1, err := rt.Submit(context.Background(), q1Plan)
	if err != nil {
		t.Fatal(err)
	}
	// Let Q1 progress a bit.
	got := int64(0)
	for got < 1500 {
		b, err := q1.Result.Get()
		if err != nil {
			t.Fatal(err)
		}
		got += int64(len(b))
	}
	// Q2: selective ordered scan, different signature (filter differs).
	pred := expr.EQ(expr.Col(1), expr.CInt(3)) // g == 3: 1/7 of rows
	q2Plan := plan.NewIndexScan("t", testSchema(), "k", tuple.Value{}, tuple.Value{}, true, true, pred, nil)
	q2, err := rt.Submit(context.Background(), q2Plan)
	if err != nil {
		t.Fatal(err)
	}
	// Keep draining Q1 concurrently — the host scan must keep moving or
	// the shared scanner (rightly) stalls on its slowest consumer.
	q1Rest := make(chan int64, 1)
	go func() {
		rest, _ := q1.Result.Drain()
		q1Rest <- rest
	}()
	var q2rows []tuple.Tuple
	for {
		b, err := q2.Result.Get()
		if err != nil {
			break
		}
		q2rows = append(q2rows, b...)
	}
	if err := q2.Wait(); err != nil {
		t.Fatal(err)
	}
	// Completeness: 6000/7 rows with g==3, rounded.
	want := 0
	for i := 0; i < 6000; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if len(q2rows) != want {
		t.Fatalf("q2 rows: %d, want %d", len(q2rows), want)
	}
	// Order: strictly ascending k.
	for i := 1; i < len(q2rows); i++ {
		if q2rows[i-1][0].I >= q2rows[i][0].I {
			t.Fatalf("q2 order violated at %d: %v >= %v", i, q2rows[i-1][0], q2rows[i][0])
		}
	}
	// The share must have been recorded.
	if rt.Stats().SharesByOp[plan.OpIndexScan] == 0 {
		t.Fatal("expected a materialized ordered share")
	}
	// Q1 must have been unharmed.
	if rest := <-q1Rest; got+rest != 6000 {
		t.Fatalf("q1 rows: %d", got+rest)
	}
}

// TestSpikeNoShareWithoutFilter: an unfiltered order-sensitive scan
// arriving mid-flight must NOT share (true spike — materializing the whole
// relation would save nothing).
func TestSpikeNoShareWithoutFilter(t *testing.T) {
	rt := newIndexedRT(t, 5000, core.DefaultConfig())
	rt.SM.Disk.SetLatency(25*time.Microsecond, 35*time.Microsecond, 0)
	defer rt.SM.Disk.SetLatency(0, 0, 0)
	mk := func(proj []int) plan.Node {
		return plan.NewIndexScan("t", testSchema(), "k", tuple.Value{}, tuple.Value{}, true, true, nil, proj)
	}
	q1, _ := rt.Submit(context.Background(), mk(nil))
	got := int64(0)
	for got < 1500 {
		b, err := q1.Result.Get()
		if err != nil {
			t.Fatal(err)
		}
		got += int64(len(b))
	}
	// Different projection -> different signature, no filter -> spike.
	q2, _ := rt.Submit(context.Background(), mk([]int{0}))
	n2, err := q2.Result.Drain()
	if err != nil || n2 != 5000 {
		t.Fatalf("q2: %d %v", n2, err)
	}
	if rt.Stats().SharesByOp[plan.OpIndexScan] != 0 {
		t.Fatal("spike scan must not share")
	}
	q1.Result.Drain()
}
