package ops

import (
	"fmt"
	"sort"
	"testing"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// sortedRows canonicalizes a result set for order-insensitive comparison.
func sortedRows(rows []tuple.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func assertSameRows(t *testing.T, want, got []tuple.Tuple, label string) {
	t.Helper()
	ws, gs := sortedRows(want), sortedRows(got)
	if len(ws) != len(gs) {
		t.Fatalf("%s: row count %d != %d", label, len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("%s: row %d differs: %q != %q", label, i, gs[i], ws[i])
		}
	}
}

// TestHashJoinParallelMatchesSerialInMemory exercises the small-build
// (in-memory) path: parallel probing must produce exactly the serial rows.
func TestHashJoinParallelMatchesSerialInMemory(t *testing.T) {
	rt := newRT(t, 3000, core.DefaultConfig())
	mk := func(par int) plan.Node {
		l := plan.NewTableScan("t", testSchema(), expr.LT(expr.Col(0), expr.CInt(1500)), []int{0, 1}, false)
		r := plan.NewTableScan("t", testSchema(), nil, []int{0, 2}, false)
		return plan.NewHashJoin(l, r, 0, 0).WithParallelism(par)
	}
	serial := runPlan(t, rt, mk(1))
	if len(serial) != 1500 {
		t.Fatalf("serial join rows: %d", len(serial))
	}
	for _, par := range []int{2, 4, 8} {
		assertSameRows(t, serial, runPlan(t, rt, mk(par)), fmt.Sprintf("par=%d", par))
	}
}

// TestHashJoinParallelMatchesSerialPartitioned pushes the build side past
// hashJoinMaxBuild so the hybrid partitioned (spill) path runs, and checks
// the parallel partition-affine execution against serial output. It also
// checks that no hjb/hjp temp spill files survive the join.
func TestHashJoinParallelMatchesSerialPartitioned(t *testing.T) {
	if testing.Short() {
		t.Skip("large build input")
	}
	rt := newRT(t, hashJoinMaxBuild+4096, core.DefaultConfig())
	mk := func(par int) plan.Node {
		l := plan.NewTableScan("t", testSchema(), nil, []int{0, 1}, false)
		r := plan.NewTableScan("t", testSchema(), nil, []int{0, 2}, false)
		// Count + per-key sum instead of materializing ~70k joined rows.
		j := plan.NewHashJoin(l, r, 0, 0).WithParallelism(par)
		return plan.NewAggregate(j, []expr.AggSpec{
			{Kind: expr.AggCount},
			{Kind: expr.AggSum, Arg: expr.Col(0)},
			{Kind: expr.AggSum, Arg: expr.Col(3)},
		})
	}
	serial := runPlan(t, rt, mk(1))
	if serial[0][0].I != int64(hashJoinMaxBuild+4096) {
		t.Fatalf("serial partitioned join count: %v", serial[0][0])
	}
	for _, par := range []int{2, 5, 8} {
		assertSameRows(t, serial, runPlan(t, rt, mk(par)), fmt.Sprintf("par=%d", par))
	}
	if files := rt.SM.Disk.FilesWithPrefix("tmp:hjb:"); len(files) != 0 {
		t.Fatalf("leaked build spill files: %v", files)
	}
	if files := rt.SM.Disk.FilesWithPrefix("tmp:hjp:"); len(files) != 0 {
		t.Fatalf("leaked probe spill files: %v", files)
	}
}

// TestGroupByParallelMatchesSerial checks partial-aggregation + merge for
// every aggregate kind against the serial path.
func TestGroupByParallelMatchesSerial(t *testing.T) {
	rt := newRT(t, 5000, core.DefaultConfig())
	specs := []expr.AggSpec{
		{Kind: expr.AggCount},
		{Kind: expr.AggSum, Arg: expr.Col(2)},
		{Kind: expr.AggMin, Arg: expr.Col(2)},
		{Kind: expr.AggMax, Arg: expr.Col(2)},
		{Kind: expr.AggAvg, Arg: expr.Col(2)},
	}
	mk := func(par int) plan.Node {
		scan := plan.NewTableScan("t", testSchema(), nil, nil, false)
		return plan.NewGroupBy(scan, []int{1}, specs).WithParallelism(par)
	}
	serial := runPlan(t, rt, mk(1))
	if len(serial) != 7 {
		t.Fatalf("serial group count: %d", len(serial))
	}
	for _, par := range []int{2, 4, 8} {
		assertSameRows(t, serial, runPlan(t, rt, mk(par)), fmt.Sprintf("par=%d", par))
	}
}

// TestAggregateParallelMatchesSerial checks the scalar aggregate's
// partial-state merge.
func TestAggregateParallelMatchesSerial(t *testing.T) {
	rt := newRT(t, 5000, core.DefaultConfig())
	specs := []expr.AggSpec{
		{Kind: expr.AggCount},
		{Kind: expr.AggSum, Arg: expr.Col(2)},
		{Kind: expr.AggMin, Arg: expr.Col(0)},
		{Kind: expr.AggMax, Arg: expr.Col(0)},
		{Kind: expr.AggAvg, Arg: expr.Col(2)},
	}
	mk := func(par int) plan.Node {
		scan := plan.NewTableScan("t", testSchema(), nil, nil, false)
		return plan.NewAggregate(scan, specs).WithParallelism(par)
	}
	serial := runPlan(t, rt, mk(1))
	for _, par := range []int{2, 4, 8} {
		assertSameRows(t, serial, runPlan(t, rt, mk(par)), fmt.Sprintf("par=%d", par))
	}
}

// TestParallelismExcludedFromSignatures: fan-out hints change the execution
// strategy, not the result, so they must not fragment OSP sharing.
func TestParallelismExcludedFromSignatures(t *testing.T) {
	l := plan.NewTableScan("t", testSchema(), nil, []int{0, 1}, false)
	r := plan.NewTableScan("t", testSchema(), nil, []int{0, 2}, false)
	j1 := plan.NewHashJoin(l, r, 0, 0)
	j8 := plan.NewHashJoin(l, r, 0, 0).WithParallelism(8)
	if j1.Signature() != j8.Signature() {
		t.Fatal("HashJoin parallelism leaked into signature")
	}
	g1 := plan.NewGroupBy(l, []int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
	g8 := plan.NewGroupBy(l, []int{1}, []expr.AggSpec{{Kind: expr.AggCount}}).WithParallelism(8)
	if g1.Signature() != g8.Signature() {
		t.Fatal("GroupBy parallelism leaked into signature")
	}
	a1 := plan.NewAggregate(l, []expr.AggSpec{{Kind: expr.AggCount}})
	a8 := plan.NewAggregate(l, []expr.AggSpec{{Kind: expr.AggCount}}).WithParallelism(8)
	if a1.Signature() != a8.Signature() {
		t.Fatal("Aggregate parallelism leaked into signature")
	}
}
