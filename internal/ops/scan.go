// Circular table scans (paper §4.3.1): one scanner per in-progress relation
// scan; late-arriving scan packets attach immediately, set a new termination
// point at the scanner's current position, and the scanner wraps at
// end-of-file to serve the pages they missed. Per-consumer predicates and
// projections are applied inside the scan µEngine, so packets with
// *different* predicates still share one page stream — which is exactly why
// QPipe keeps saving I/O in the full-workload experiment (Figure 12) even
// though qgen randomizes every query's selection predicates.
package ops

import (
	"sync"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/lock"
	"qpipe/internal/tuple"
)

// pageSource abstracts the page-granular data under a scan: heap files for
// table scans, B+tree leaf chains for clustered index scans.
type pageSource interface {
	numPages() int64
	readPage(ord int64) ([]tuple.Tuple, error)
}

// scanConsumer is one packet attached to a scanner.
type scanConsumer struct {
	pkt       *core.Packet
	filter    expr.Pred
	project   []int
	remaining int64 // pages still owed
}

// scanner is the paper's "scanner thread": it owns the position in the page
// stream and multiplexes pages to all attached consumers.
type scanner struct {
	mu sync.Mutex
	// hostID is the packet whose worker runs this scanner; every attached
	// consumer's output buffer reports it as producer so the deadlock
	// detector sees the real 1-producer-N-consumers structure (one stalled
	// scanner can otherwise hide a Waits-For cycle — e.g. a self-join whose
	// two inputs ride the same scanner).
	hostID    int64
	src       pageSource
	n         int64
	pos       int64 // next page ordinal to read
	circular  bool  // wrap at EOF while consumers still need pages
	consumers []*scanConsumer
	done      bool
}

// bindProducer points the consumer's output port at this scanner for the
// deadlock detector (covers the packet's own buffer and any satellites
// attached to it, now or later).
func (s *scanner) bindProducer(c *scanConsumer) {
	if c.pkt.Out != nil {
		c.pkt.Out.SetProducer(s.hostID)
	}
}

// attach adds a consumer at the current position (its termination point).
// Returns the start position. Fails once the scanner has finished, or — when
// requireStart is set (spike-overlap semantics, and unordered consumers
// joining a non-circular scanner) — once the scanner has moved past page 0.
func (s *scanner) attach(c *scanConsumer, requireStart bool) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return 0, false
	}
	if requireStart && s.pos != 0 {
		return 0, false
	}
	c.remaining = s.n
	s.consumers = append(s.consumers, c)
	s.bindProducer(c)
	return s.pos, true
}

// attachSuffix adds a consumer that only wants the remaining (suffix) part
// of an ordered scan: pages pos..n-1. Used by the merge-join split.
func (s *scanner) attachSuffix(c *scanConsumer) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return 0, false
	}
	c.remaining = s.n - s.pos
	if c.remaining <= 0 {
		return 0, false
	}
	s.consumers = append(s.consumers, c)
	s.bindProducer(c)
	return s.pos, true
}

// position reports the scanner's current page ordinal.
func (s *scanner) position() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// run drives the scanner until every consumer is served (or gone). The
// calling worker is the dedicated scanner thread.
func (s *scanner) run() error {
	for {
		s.mu.Lock()
		if len(s.consumers) == 0 {
			s.done = true
			s.mu.Unlock()
			return nil
		}
		if s.pos >= s.n {
			if !s.circular {
				// Ordered scan reached EOF: any remaining consumers are
				// fully served by construction.
				for _, c := range s.consumers {
					c.pkt.Complete(nil)
				}
				s.consumers = nil
				s.done = true
				s.mu.Unlock()
				return nil
			}
			s.pos = 0
		}
		p := s.pos
		s.pos++
		consumers := append([]*scanConsumer(nil), s.consumers...)
		s.mu.Unlock()

		tuples, err := s.src.readPage(p)
		if err != nil {
			s.fail(err)
			return err
		}
		for _, c := range consumers {
			if c.remaining <= 0 {
				continue
			}
			if c.pkt.Cancelled() {
				s.detach(c, nil)
				continue
			}
			out := applyFilterProject(tuples, c.filter, c.project)
			if len(out) > 0 {
				if err := c.pkt.Out.Put(out); err != nil {
					// Consumer gone (query cancelled or absorbed elsewhere).
					s.detach(c, nil)
					continue
				}
			}
			c.remaining--
			if c.remaining == 0 {
				s.detach(c, nil)
			}
		}
	}
}

func (s *scanner) detach(c *scanConsumer, err error) {
	s.mu.Lock()
	for i, x := range s.consumers {
		if x == c {
			s.consumers = append(s.consumers[:i], s.consumers[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	c.pkt.Complete(err)
}

func (s *scanner) fail(err error) {
	s.mu.Lock()
	consumers := s.consumers
	s.consumers = nil
	s.done = true
	s.mu.Unlock()
	for _, c := range consumers {
		c.pkt.Complete(err)
	}
}

// scanRegistry tracks live scanners per key (table, or table+index).
type scanRegistry struct {
	mu       sync.Mutex
	scanners map[string][]*scanner
}

func newScanRegistry() *scanRegistry {
	return &scanRegistry{scanners: make(map[string][]*scanner)}
}

func (r *scanRegistry) add(key string, s *scanner) {
	r.mu.Lock()
	r.scanners[key] = append(r.scanners[key], s)
	r.mu.Unlock()
}

func (r *scanRegistry) remove(key string, s *scanner) {
	r.mu.Lock()
	list := r.scanners[key]
	for i, x := range list {
		if x == s {
			r.scanners[key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(r.scanners[key]) == 0 {
		delete(r.scanners, key)
	}
	r.mu.Unlock()
}

// visit iterates live scanners for a key until fn returns true.
func (r *scanRegistry) visit(key string, fn func(*scanner) bool) bool {
	r.mu.Lock()
	list := append([]*scanner(nil), r.scanners[key]...)
	r.mu.Unlock()
	for _, s := range list {
		if fn(s) {
			return true
		}
	}
	return false
}

// ---- Table-scan µEngine -------------------------------------------------------

// heapSource reads heap-file pages.
type heapSource struct {
	f interface {
		NumPages() int64
		ReadPage(int64) ([]tuple.Tuple, error)
	}
}

func (h heapSource) numPages() int64                         { return h.f.NumPages() }
func (h heapSource) readPage(p int64) ([]tuple.Tuple, error) { return h.f.ReadPage(p) }

// TableScanOp is the file-scan µEngine with circular-scan sharing.
type TableScanOp struct {
	reg *scanRegistry
}

// NewTableScanOp creates the table-scan µEngine implementation.
func NewTableScanOp() *TableScanOp { return &TableScanOp{reg: newScanRegistry()} }

// Op implements core.Operator.
func (o *TableScanOp) Op() plan.OpType { return plan.OpTableScan }

// TryShare implements the signature-exact fast path: two packets with
// identical table, predicate and ordering dedupe completely.
func (o *TableScanOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// TryAdmit implements circular-scan admission: an unordered scan packet
// piggybacks on any in-progress scanner of the same table regardless of
// predicates. Ordered scans have a spike WoP — they may only piggyback on a
// scanner still at page 0 (the "first output page still in memory" case).
func (o *TableScanOp) TryAdmit(rt *core.Runtime, pkt *core.Packet) bool {
	node := pkt.Node.(*plan.TableScan)
	attached := o.reg.visit("tbl:"+node.Table, func(s *scanner) bool {
		// Ordered consumers have a spike WoP; unordered consumers can join a
		// circular scanner anywhere but a one-shot (ordered) scanner only at
		// its very start.
		requireStart := node.Ordered || !s.circular
		c := &scanConsumer{pkt: pkt, filter: node.Filter, project: node.Project}
		_, ok := s.attach(c, requireStart)
		return ok
	})
	if attached {
		pkt.Query.Stats.SatelliteAttaches.Add(1)
		rt.NoteShare(plan.OpTableScan)
		for _, ch := range pkt.Children {
			ch.CancelSubtree()
		}
	}
	return attached
}

// Run implements core.Operator: the packet becomes the host of a new
// scanner thread serving itself and any satellites that attach later.
func (o *TableScanOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.TableScan)
	tb, err := rt.SM.Table(node.Table)
	if err != nil {
		return err
	}
	src := heapSource{f: tb.Heap}
	s := &scanner{hostID: pkt.ID, src: src, n: src.numPages(), circular: !node.Ordered}
	c := &scanConsumer{pkt: pkt, filter: node.Filter, project: node.Project, remaining: s.n}
	s.consumers = []*scanConsumer{c}
	key := "tbl:" + node.Table
	if rt.Cfg.OSP {
		o.reg.add(key, s)
		defer o.reg.remove(key, s)
	}
	// Table-level S lock: waits while an update holds X (§4.3.4), and with
	// it wait all satellites.
	if err := rt.SM.Locks.Lock(pkt.Query.Ctx(), node.Table, lock.Shared); err != nil {
		return err
	}
	defer rt.SM.Locks.Unlock(node.Table, lock.Shared)
	return s.run()
}

var _ interface {
	core.Operator
	core.Sharer
	core.Admitter
} = (*TableScanOp)(nil)
