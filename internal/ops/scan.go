// Circular table scans (paper §4.3.1), partitioned for intra-operator
// parallelism: one scan group per in-progress relation scan. The heap's page
// range splits into P contiguous partitions, each driven by its own scan
// worker with its own circular cursor; partition output merges into every
// attached consumer's tuple buffer. Late-arriving scan packets attach
// immediately — each partition records a per-consumer page debt and wraps at
// its own boundary to serve the pages the consumer missed, generalizing the
// paper's single position() cursor to one progress cursor per partition.
// Per-consumer predicates and projections are applied inside the scan
// µEngine, so packets with *different* predicates still share one page
// stream — which is exactly why QPipe keeps saving I/O in the full-workload
// experiment (Figure 12) even though qgen randomizes every query's selection
// predicates. Ordered scans require page order and always run with a single
// partition.
package ops

import (
	"errors"
	"sync"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// pageSource abstracts the page-granular data under a scan: heap files for
// table scans, B+tree leaf chains for clustered index scans.
type pageSource interface {
	numPages() int64
	readPage(ord int64) ([]tuple.Tuple, error)
}

// partition is one contiguous page range [lo, hi) of a scan group, with its
// own circular cursor. Exactly one worker advances each partition's cursor.
type partition struct {
	lo, hi int64
	pos    int64 // next page ordinal to read
}

func (p *partition) size() int64 { return p.hi - p.lo }

// scanConsumer is one packet attached to a scan group. Page debts are per
// partition: a consumer attaching mid-scan owes each partition its full
// range, and the partition's circular wrap serves the pages it missed.
type scanConsumer struct {
	pkt       *core.Packet
	filter    expr.Pred
	project   []int
	remaining []int64 // pages still owed, per partition
	pending   int     // partitions with remaining > 0
}

// scanner is the paper's "scanner thread", generalized to a partitioned scan
// group: it owns one cursor per partition of the page stream and multiplexes
// pages to all attached consumers. The host packet's worker drives partition
// 0; partitions 1..P-1 fan out to scan sub-workers.
type scanner struct {
	mu   sync.Mutex
	cond *sync.Cond // wakes parked partition workers on attach/teardown

	// hostID is the packet whose worker runs this scanner; every attached
	// consumer's output buffer reports it as producer so the deadlock
	// detector sees the real 1-producer-N-consumers structure (one stalled
	// scanner can otherwise hide a Waits-For cycle — e.g. a self-join whose
	// two inputs ride the same scanner).
	hostID   int64
	src      pageSource
	n        int64
	parts    []partition
	circular bool // wrap at partition end while consumers still need pages
	// spawn runs a partition worker on the µEngine's sub-worker machinery;
	// nil falls back to a plain goroutine (direct scanner tests).
	spawn func(func())
	// pool leases the per-consumer output batch arrays (nil in direct
	// scanner tests: plain allocation).
	pool *tbuf.BatchPool

	consumers []*scanConsumer
	done      bool
	err       error
}

// newScanner builds a scan group over src split into up to parallelism
// contiguous partitions. Ordered (non-circular) scans are forced to a single
// partition: interleaved partition output would break page order.
func newScanner(hostID int64, src pageSource, circular bool, parallelism int) *scanner {
	n := src.numPages()
	if !circular || parallelism < 1 {
		parallelism = 1
	}
	if int64(parallelism) > n {
		parallelism = int(n)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	s := &scanner{hostID: hostID, src: src, n: n, circular: circular}
	s.cond = sync.NewCond(&s.mu)
	per := n / int64(parallelism)
	rem := n % int64(parallelism)
	lo := int64(0)
	for k := 0; k < parallelism; k++ {
		hi := lo + per
		if int64(k) < rem {
			hi++
		}
		s.parts = append(s.parts, partition{lo: lo, hi: hi, pos: lo})
		lo = hi
	}
	return s
}

// bindProducer points the consumer's output port at this scanner for the
// deadlock detector (covers the packet's own buffer and any satellites
// attached to it, now or later).
func (s *scanner) bindProducer(c *scanConsumer) {
	if c.pkt.Out != nil {
		c.pkt.Out.SetProducer(s.hostID)
	}
}

// attach adds a consumer owing every partition its full range (each
// partition's current position is its termination point). Returns partition
// 0's position. Fails once the scanner has finished, or — when requireStart
// is set (spike-overlap semantics, and unordered consumers joining a
// non-circular scanner) — unless the group is a single partition still at
// page 0: a multi-partition group interleaves pages and can never satisfy a
// consumer that needs them in order from the start.
func (s *scanner) attach(c *scanConsumer, requireStart bool) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done || s.err != nil {
		return 0, false
	}
	if requireStart && !(len(s.parts) == 1 && s.parts[0].pos == 0) {
		return 0, false
	}
	c.remaining = make([]int64, len(s.parts))
	c.pending = 0
	for k := range s.parts {
		c.remaining[k] = s.parts[k].size()
		if c.remaining[k] > 0 {
			c.pending++
		}
	}
	s.bindProducer(c)
	if c.pending == 0 {
		// Empty relation: nothing owed, serve EOF immediately.
		c.pkt.Complete(nil)
		return 0, true
	}
	s.consumers = append(s.consumers, c)
	s.cond.Broadcast()
	return s.parts[0].pos, true
}

// attachSuffix adds a consumer that only wants the remaining (suffix) part
// of an ordered scan: pages pos..n-1. Used by the merge-join split. Ordered
// scanners are always single-partition.
func (s *scanner) attachSuffix(c *scanConsumer) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done || s.err != nil || s.circular || len(s.parts) != 1 {
		return 0, false
	}
	p := &s.parts[0]
	owed := p.hi - p.pos
	if owed <= 0 {
		return 0, false
	}
	c.remaining = []int64{owed}
	c.pending = 1
	s.consumers = append(s.consumers, c)
	s.bindProducer(c)
	s.cond.Broadcast()
	return p.pos, true
}

// progress reports a single-partition scanner's cursor and total page count
// (the merge-join split's cost model). Multi-partition groups report
// ok=false: there is no single linear position to split at.
func (s *scanner) progress() (pos, total int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done || s.err != nil || len(s.parts) != 1 {
		return 0, 0, false
	}
	return s.parts[0].pos, s.n, true
}

// run drives the scan group until every consumer is served (or gone). The
// calling worker — the host packet's — drives partition 0 as the paper's
// dedicated scanner thread; the remaining partitions fan out as sub-workers.
func (s *scanner) run() error {
	s.mu.Lock()
	if len(s.consumers) == 0 {
		s.done = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil
	}
	nparts := len(s.parts)
	s.mu.Unlock()

	var wg sync.WaitGroup
	for k := 1; k < nparts; k++ {
		wg.Add(1)
		work := func() {
			defer wg.Done()
			s.runPartition(k)
		}
		if s.spawn != nil {
			s.spawn(work)
		} else {
			go work()
		}
	}
	s.runPartition(0)
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// hungryLocked reports whether any attached consumer still owes pages to
// partition k.
func (s *scanner) hungryLocked(k int) bool {
	for _, c := range s.consumers {
		if c.remaining[k] > 0 {
			return true
		}
	}
	return false
}

// runPartition is one partition's worker loop: read the next page of the
// range (wrapping at the partition boundary on circular scans) and serve it
// to every consumer that still owes pages here. With no hungry consumer the
// worker parks until a satellite attaches or the group tears down.
func (s *scanner) runPartition(k int) {
	for {
		s.mu.Lock()
		for {
			if s.done || s.err != nil {
				s.mu.Unlock()
				return
			}
			if s.hungryLocked(k) {
				break
			}
			s.cond.Wait()
		}
		p := &s.parts[k]
		if p.pos >= p.hi {
			if !s.circular {
				// Ordered scan reached EOF: any remaining consumers are
				// fully served by construction.
				consumers := s.consumers
				s.consumers = nil
				s.done = true
				s.cond.Broadcast()
				s.mu.Unlock()
				for _, c := range consumers {
					c.pkt.Complete(nil)
				}
				return
			}
			p.pos = p.lo
		}
		pg := p.pos
		p.pos++
		consumers := append([]*scanConsumer(nil), s.consumers...)
		s.mu.Unlock()

		tuples, err := s.src.readPage(pg)
		if err != nil {
			s.fail(err)
			return
		}
		for _, c := range consumers {
			s.serve(c, k, tuples)
		}
	}
}

// serve delivers one page to one consumer on behalf of partition k. Only
// partition k's worker decrements remaining[k], so per-consumer page
// accounting needs no coordination beyond the scanner lock; the Put itself
// happens unlocked so a slow consumer only throttles this partition.
//
// Cancellation is detected through the consumer's output port, not the
// packet flag: a cancelled query abandons its own buffers (Put then fails),
// but the packet may still be a conduit for satellites of *other* queries
// attached to its port, which must keep receiving the full stream — eagerly
// dropping the consumer would hand those satellites a truncated stream with
// a clean EOF.
func (s *scanner) serve(c *scanConsumer, k int, tuples []tuple.Tuple) {
	s.mu.Lock()
	owed := c.remaining[k] > 0
	s.mu.Unlock()
	if !owed {
		return
	}
	out := applyFilterProject(tuples, c.filter, c.project, s.pool)
	if len(out) > 0 {
		if err := c.pkt.Out.Put(out); err != nil {
			if errors.Is(err, tbuf.ErrConsumersGone) || errors.Is(err, tbuf.ErrAbandoned) {
				// Consumer gone (query cancelled or absorbed elsewhere):
				// a clean early stop for this packet.
				s.detach(c, nil)
			} else {
				// Hard failure delivering pages: surface it on the
				// consumer's packet instead of reporting a clean stop.
				s.detach(c, err)
			}
			return
		}
	} else {
		// Nothing matched: hand the unused array's lease straight back.
		s.pool.Put(out)
		if c.pkt.Cancelled() && !c.pkt.Out.PruneDead() {
			// A cancelled consumer whose filter matches nothing never Puts, so
			// the port would never report its death — probe explicitly rather
			// than scanning the rest of the table for a dead query. (A cancelled
			// consumer with live satellites still attached keeps being served:
			// it is their conduit.)
			s.detach(c, nil)
			return
		}
	}
	s.mu.Lock()
	c.remaining[k]--
	finished := false
	if c.remaining[k] == 0 {
		c.pending--
		finished = c.pending == 0
	}
	s.mu.Unlock()
	if finished {
		s.detach(c, nil)
	}
}

func (s *scanner) detach(c *scanConsumer, err error) {
	s.mu.Lock()
	for i, x := range s.consumers {
		if x == c {
			s.consumers = append(s.consumers[:i], s.consumers[i+1:]...)
			break
		}
	}
	if len(s.consumers) == 0 {
		s.done = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	c.pkt.Complete(err)
}

func (s *scanner) fail(err error) {
	s.mu.Lock()
	consumers := s.consumers
	s.consumers = nil
	s.done = true
	s.err = err
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, c := range consumers {
		c.pkt.Complete(err)
	}
}

// scanRegistry tracks live scanners per key (table, or table+index).
type scanRegistry struct {
	mu       sync.Mutex
	scanners map[string][]*scanner
}

func newScanRegistry() *scanRegistry {
	return &scanRegistry{scanners: make(map[string][]*scanner)}
}

func (r *scanRegistry) add(key string, s *scanner) {
	r.mu.Lock()
	r.scanners[key] = append(r.scanners[key], s)
	r.mu.Unlock()
}

func (r *scanRegistry) remove(key string, s *scanner) {
	r.mu.Lock()
	list := r.scanners[key]
	for i, x := range list {
		if x == s {
			r.scanners[key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(r.scanners[key]) == 0 {
		delete(r.scanners, key)
	}
	r.mu.Unlock()
}

// visit iterates live scanners for a key until fn returns true.
func (r *scanRegistry) visit(key string, fn func(*scanner) bool) bool {
	r.mu.Lock()
	list := append([]*scanner(nil), r.scanners[key]...)
	r.mu.Unlock()
	for _, s := range list {
		if fn(s) {
			return true
		}
	}
	return false
}

// ---- Table-scan µEngine -------------------------------------------------------

// heapSource reads heap-file pages.
type heapSource struct {
	f interface {
		NumPages() int64
		ReadPage(int64) ([]tuple.Tuple, error)
	}
}

func (h heapSource) numPages() int64                         { return h.f.NumPages() }
func (h heapSource) readPage(p int64) ([]tuple.Tuple, error) { return h.f.ReadPage(p) }

// TableScanOp is the file-scan µEngine with partitioned circular-scan
// sharing.
type TableScanOp struct {
	reg *scanRegistry
}

// NewTableScanOp creates the table-scan µEngine implementation.
func NewTableScanOp() *TableScanOp { return &TableScanOp{reg: newScanRegistry()} }

// Op implements core.Operator.
func (o *TableScanOp) Op() plan.OpType { return plan.OpTableScan }

// TryShare implements the signature-exact fast path: two packets with
// identical table, predicate and ordering dedupe completely.
func (o *TableScanOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// TryAdmit implements circular-scan admission: an unordered scan packet
// piggybacks on any in-progress scan group of the same table regardless of
// predicates or partitioning. Ordered scans have a spike WoP — they may only
// piggyback on a single-partition scanner still at page 0 (the "first output
// page still in memory" case).
func (o *TableScanOp) TryAdmit(rt *core.Runtime, pkt *core.Packet) bool {
	node := pkt.Node.(*plan.TableScan)
	attached := o.reg.visit("tbl:"+node.Table, func(s *scanner) bool {
		// Ordered consumers have a spike WoP; unordered consumers can join a
		// circular scan group anywhere but a one-shot (ordered) scanner only
		// at its very start.
		requireStart := node.Ordered || !s.circular
		c := &scanConsumer{pkt: pkt, filter: node.Filter, project: node.Project}
		_, ok := s.attach(c, requireStart)
		return ok
	})
	if attached {
		pkt.Query.Stats.SatelliteAttaches.Add(1)
		rt.NoteShare(plan.OpTableScan)
		for _, ch := range pkt.Children {
			ch.CancelSubtree()
		}
	}
	return attached
}

// Run implements core.Operator: the packet becomes the host of a new scan
// group serving itself and any satellites that attach later. Partition 0 is
// driven by this worker; extra partitions fan out to scan sub-workers.
func (o *TableScanOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.TableScan)
	tb, err := rt.SM.Table(node.Table)
	if err != nil {
		return err
	}
	// No lock is taken here: the query acquired its shared lock on the
	// table at submit (§4.3.4 — "if a table is locked for writing, the scan
	// packet will simply wait, and with it all satellite ones"; the wait now
	// happens at admission). Every attached satellite's own query holds its
	// own shared lock, so the group's page reads stay covered even after
	// the host query finishes.
	src := heapSource{f: tb.Heap}
	s := newScanner(pkt.ID, src, !node.Ordered, rt.ParallelismFor(pkt.Query, node.Parallelism))
	s.pool = rt.BatchPool()
	if eng := rt.Engine(plan.OpTableScan); eng != nil {
		s.spawn = eng.SpawnSub
	}
	c := &scanConsumer{pkt: pkt, filter: node.Filter, project: node.Project}
	s.attach(c, false)
	key := "tbl:" + node.Table
	if rt.OSPAllowed(pkt.Query) {
		o.reg.add(key, s)
		defer o.reg.remove(key, s)
	}
	// Snapshot fence: the scan group (host plus any satellites that attach
	// mid-flight) must observe one committed state of the table. The overlap
	// chain of query-level shared locks excludes committing writers for the
	// group's whole life; checking the commit counter turns a violation of
	// that invariant into a hard error instead of silently torn results.
	fence := tb.CommitSeq()
	if err := s.run(); err != nil {
		return err
	}
	if end := tb.CommitSeq(); end != fence {
		return &sm.TornScanError{Table: node.Table, Start: fence, End: end}
	}
	return nil
}

var _ interface {
	core.Operator
	core.Sharer
	core.Admitter
} = (*TableScanOp)(nil)
