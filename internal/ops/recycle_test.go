// Allocation-regression gates and aliased-mutation guards for the batch
// lease protocol: the emitter's produce→consume→recycle cycle must stay at
// or below one allocation per batch, and recycled-batch parallel execution
// must produce byte-identical results to the serial engine (a pooling bug —
// an array recycled while still referenced — would surface here as
// corrupted or duplicated rows).
package ops

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// TestEmitterFlushAllocGate asserts the emitter's steady-state flush path
// stays within one allocation per batch (the batch array itself comes from
// the pool; the only tolerated allocation is the buffer queue's amortized
// growth).
func TestEmitterFlushAllocGate(t *testing.T) {
	const batchSize = 64
	pool := tbuf.NewBatchPool(batchSize)
	buf := tbuf.New(8).UsePool(pool)
	out := tbuf.NewSharedOut(buf, 0).UsePool(pool)
	pkt := &core.Packet{Out: out}
	em := newEmitter(pkt, batchSize)
	row := tuple.Tuple{tuple.I64(1), tuple.F64(2.5)}
	// Prime the pool and the replay-window invalidation outside the gate.
	for i := 0; i < batchSize; i++ {
		if err := em.add(row); err != nil {
			t.Fatal(err)
		}
	}
	b, err := buf.Get()
	if err != nil {
		t.Fatal(err)
	}
	buf.Recycle(b)

	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < batchSize; i++ {
			if err := em.add(row); err != nil {
				t.Fatal(err)
			}
		}
		b, err := buf.Get()
		if err != nil {
			t.Fatal(err)
		}
		buf.Recycle(b)
	})
	if allocs > 1 {
		t.Fatalf("emitter flush cycle: %.2f allocs per batch, want <= 1", allocs)
	}
}

// recycleSchema is the parity tables' schema: join key, group key, measure.
func recycleSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("k", tuple.KindInt),
		tuple.Col("g", tuple.KindInt),
		tuple.Col("v", tuple.KindInt),
	)
}

func loadRecyclePair(t *testing.T, nl, nr int) *sm.Manager {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 32})
	for name, n := range map[string]int{"L": nl, "R": nr} {
		if _, err := mgr.CreateTable(name, recycleSchema()); err != nil {
			t.Fatal(err)
		}
		rows := make([]tuple.Tuple, n)
		for i := range rows {
			rows[i] = tuple.Tuple{
				tuple.I64(int64(rng.Intn(60))),
				tuple.I64(int64(i % 13)),
				tuple.I64(int64(rng.Intn(1000))),
			}
		}
		if err := mgr.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	return mgr
}

func collect(t *testing.T, rt *core.Runtime, p plan.Node) []string {
	t.Helper()
	q, err := rt.Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drainAll(q.Result)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	return sortedRows(rows)
}

// TestRecycledBatchParity runs a hash join and a group-by on an engine
// configured to stress batch recycling as hard as possible — tiny batch
// size (many pool round-trips), intra-operator parallelism, OSP on with
// several concurrent identical queries so the fan-out, replay-window and
// satellite-copy paths all engage — and requires results identical to a
// serial, sharing-free run. Any aliased-mutation bug from pooling (an array
// recycled while a consumer still reads it) corrupts rows and fails the
// multiset comparison.
func TestRecycledBatchParity(t *testing.T) {
	mgr := loadRecyclePair(t, 700, 900)

	serialCfg := core.BaselineConfig()
	serialCfg.ScanParallelism = 1
	serial := core.NewRuntime(mgr, serialCfg, All())
	defer serial.Close()

	stressCfg := core.DefaultConfig()
	stressCfg.ScanParallelism = 4
	stressCfg.BatchSize = 4
	stress := core.NewRuntime(mgr, stressCfg, All())
	defer stress.Close()

	joinPlan := func() plan.Node {
		return plan.NewHashJoin(
			plan.NewTableScan("L", recycleSchema(), nil, nil, false),
			plan.NewTableScan("R", recycleSchema(), nil, nil, false), 0, 0)
	}
	gbPlan := func() plan.Node {
		return plan.NewGroupBy(plan.NewTableScan("R", recycleSchema(), nil, nil, false),
			[]int{1}, []expr.AggSpec{
				{Kind: expr.AggCount},
				{Kind: expr.AggSum, Arg: expr.Col(2)},
				{Kind: expr.AggMax, Arg: expr.Col(2)},
			})
	}

	for name, mk := range map[string]func() plan.Node{"join": joinPlan, "groupby": gbPlan} {
		want := collect(t, serial, mk())
		// Several concurrent identical queries: OSP absorbs some as
		// satellites, exercising fan-out copies and the replay window over
		// recycled arrays.
		const clients = 3
		got := make([][]string, clients)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				q, err := stress.Submit(context.Background(), mk())
				if err == nil {
					var rows []tuple.Tuple
					rows, err = drainAll(q.Result)
					if werr := q.Wait(); err == nil {
						err = werr
					}
					got[c] = sortedRows(rows)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s client %d: %w", name, c, err)
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			t.Fatal(firstErr)
		}
		for c := 0; c < clients; c++ {
			if len(got[c]) != len(want) {
				t.Fatalf("%s client %d: %d rows, serial %d", name, c, len(got[c]), len(want))
			}
			for i := range want {
				if got[c][i] != want[i] {
					t.Fatalf("%s client %d row %d: %q != serial %q", name, c, i, got[c][i], want[i])
				}
			}
		}
	}
}
