// Temp-file spill helpers shared by the sort µEngine (runs + materialized
// sorted output) and the hybrid hash join (partition files). Spill files
// live on the same simulated disk as tables, so their I/O is charged and
// counted like any other I/O — materialization costs are real in the
// experiments, as they were in the paper's prototype.
package ops

import (
	"fmt"

	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/page"
	"qpipe/internal/tuple"
)

// spillWriter appends tuples to a temp file in slotted pages. One encode
// scratch buffer is reused across rows, so spilling a run costs no per-row
// allocation.
type spillWriter struct {
	d       *disk.Disk
	name    string
	pg      *page.Page
	n       int64
	scratch []byte
}

func newSpillWriter(d *disk.Disk, name string) *spillWriter {
	d.Create(name)
	return &spillWriter{d: d, name: name, pg: page.New(d.BlockSize())}
}

func (w *spillWriter) add(t tuple.Tuple) error {
	if !w.pg.HasRoomFor(t.EncodedSize()) {
		if err := w.flushPage(); err != nil {
			return err
		}
	}
	var err error
	_, w.scratch, err = w.pg.InsertTupleScratch(t, w.scratch)
	if err != nil {
		return fmt.Errorf("ops: tuple exceeds spill page size: %w", err)
	}
	w.n++
	return nil
}

func (w *spillWriter) flushPage() error {
	if w.pg.NumSlots() == 0 {
		return nil
	}
	if _, err := w.d.Append(w.name, w.pg.Bytes()); err != nil {
		return err
	}
	w.pg = page.New(w.d.BlockSize())
	return nil
}

// close flushes the tail page and returns the total tuple count.
func (w *spillWriter) close() (int64, error) {
	if err := w.flushPage(); err != nil {
		return 0, err
	}
	return w.n, nil
}

// spillReader streams a spill file page by page.
type spillReader struct {
	d     *disk.Disk
	name  string
	ncols int
	pno   int64
	limit int64
	batch []tuple.Tuple
	i     int
}

func newSpillReader(d *disk.Disk, name string, ncols int) *spillReader {
	return &spillReader{d: d, name: name, ncols: ncols, limit: int64(d.NumBlocks(name))}
}

// next returns the next tuple; ok=false at EOF.
func (r *spillReader) next() (tuple.Tuple, bool, error) {
	for r.i >= len(r.batch) {
		if r.pno >= r.limit {
			return nil, false, nil
		}
		raw, err := r.d.Read(r.name, r.pno)
		if err != nil {
			return nil, false, err
		}
		r.pno++
		pg := page.FromBytes(raw)
		r.batch, err = pg.Tuples(r.ncols)
		if err != nil {
			return nil, false, err
		}
		r.i = 0
	}
	t := r.batch[r.i]
	r.i++
	return t, true, nil
}

// readPage returns page ord's tuples (for page-granular streaming).
func readSpillPage(d *disk.Disk, name string, ncols int, ord int64) ([]tuple.Tuple, error) {
	raw, err := d.Read(name, ord)
	if err != nil {
		return nil, err
	}
	return page.FromBytes(raw).Tuples(ncols)
}
