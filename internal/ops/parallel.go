// Intra-operator parallelism plumbing shared by the hash-join, group-by and
// aggregate µEngines. The paper makes per-operator parallelism a first-class
// design axis (each µEngine owns "a pool of worker threads"); PR 1 exploited
// it for scans, and these helpers extend the same sub-worker machinery
// (MicroEngine.SpawnSub) up the pipeline:
//
//   - fanOut: run P independent shards of work, worker 0 on the packet's own
//     worker (the disk phase of the partitioned hash join).
//   - parFeed: one router (the packet's worker) drains the input buffer and
//     deals raw batches to P sub-workers over a shared channel — for stages
//     where any worker can process any tuple (probing a read-only table,
//     partial aggregation).
//   - routeAffine: the router hashes each tuple and deals it to the one
//     sub-worker owning its partition — for stages with single-writer state
//     per partition (spill writers, the hybrid join's memory-resident
//     partition 0).
//
// All three propagate the first worker/router error and convert sub-worker
// panics into errors (the µEngine's recover only covers the goroutine that
// runs the packet).
package ops

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// errParAborted is the router's internal stop signal once a worker failed;
// it never escapes the helpers (the worker's own error is reported instead).
var errParAborted = errors.New("ops: parallel stage aborted")

// subSpawner returns the µEngine's sub-worker spawn hook for op, so parallel
// operator stages are accounted to their engine (SubWorkers stat; close
// waits for them). Runtimes without that engine (direct operator tests) fall
// back to plain goroutines.
func subSpawner(rt *core.Runtime, op plan.OpType) func(func()) {
	if eng := rt.Engine(op); eng != nil {
		return eng.SpawnSub
	}
	return func(fn func()) { go fn() }
}

// guard runs fn converting a panic into an error.
func guard(k int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ops: parallel worker %d panicked: %v", k, r)
		}
	}()
	return fn()
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// fanOut runs fn(0..p-1) concurrently — fn(0) on the calling worker, the
// rest as µEngine sub-workers — and returns the first error.
func fanOut(spawn func(func()), p int, fn func(k int) error) error {
	if p <= 1 {
		return guard(0, func() error { return fn(0) })
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for k := 1; k < p; k++ {
		k := k
		wg.Add(1)
		spawn(func() {
			defer wg.Done()
			errs[k] = guard(k, func() error { return fn(k) })
		})
	}
	errs[0] = guard(0, func() error { return fn(0) })
	wg.Wait()
	return firstErr(errs)
}

// parFeed spawns p sub-workers consuming items from one shared channel fed
// by the calling worker. feed must stop when stop() reports a worker
// failure; parFeed closes the channel, waits for the workers, and returns
// the first error. A failed worker keeps draining the channel so the feeder
// is never left blocked on a dead stage.
func parFeed[T any](spawn func(func()), p, chCap int, work func(k int, ch <-chan T) error, feed func(ch chan<- T, stop func() bool) error) error {
	ch := make(chan T, chCap)
	var abort atomic.Bool
	errs := make([]error, p+1)
	var wg sync.WaitGroup
	for k := 0; k < p; k++ {
		k := k
		wg.Add(1)
		spawn(func() {
			defer wg.Done()
			err := guard(k, func() error { return work(k, ch) })
			if err != nil {
				abort.Store(true)
				for range ch {
				}
			}
			errs[k+1] = err
		})
	}
	errs[0] = feed(ch, abort.Load)
	close(ch)
	wg.Wait()
	return firstErr(errs)
}

// feedInput is the standard parFeed router loop: it drains the packet input
// buffer into the worker channel until EOF, an input error or a worker
// failure.
func feedInput(in *tbuf.Buffer) func(ch chan<- tbuf.Batch, stop func() bool) error {
	return func(ch chan<- tbuf.Batch, stop func() bool) error {
		for {
			if stop() {
				return nil
			}
			b, err := in.Get()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			ch <- b
		}
	}
}

// routed is one tuple annotated with its join/partition hash, dealt from the
// router to the sub-worker owning its partition.
type routed struct {
	t tuple.Tuple
	h uint64
}

// routeBatch is how many routed tuples the router accumulates per worker
// before handing the slice over (amortizes channel synchronization, like the
// engine's tuple batches do for buffers).
const routeBatch = 256

// routeAffine fans hashed tuples out to par sub-workers with partition
// affinity: the router (calling worker) computes each tuple's hash through
// feed's emit callback and deals it to worker home(h), so every piece of
// partition-local state — a spill writer, the hybrid hash join's
// memory-resident partition — has exactly one writing worker. Returns the
// first router/worker error.
func routeAffine(spawn func(func()), par int, home func(h uint64) int, work func(k int, ch <-chan []routed) error, feed func(emit func(tuple.Tuple, uint64) error) error) error {
	chans := make([]chan []routed, par)
	for k := range chans {
		chans[k] = make(chan []routed, 2)
	}
	var abort atomic.Bool
	errs := make([]error, par+1)
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		k := k
		wg.Add(1)
		spawn(func() {
			defer wg.Done()
			err := guard(k, func() error { return work(k, chans[k]) })
			if err != nil {
				abort.Store(true)
				for range chans[k] {
				}
			}
			errs[k+1] = err
		})
	}
	pending := make([][]routed, par)
	ferr := feed(func(t tuple.Tuple, h uint64) error {
		if abort.Load() {
			return errParAborted
		}
		k := home(h)
		if pending[k] == nil {
			pending[k] = make([]routed, 0, routeBatch)
		}
		pending[k] = append(pending[k], routed{t: t, h: h})
		if len(pending[k]) >= routeBatch {
			chans[k] <- pending[k]
			pending[k] = nil
		}
		return nil
	})
	for k := 0; k < par; k++ {
		if ferr == nil && len(pending[k]) > 0 {
			chans[k] <- pending[k]
		}
		close(chans[k])
	}
	wg.Wait()
	if errors.Is(ferr, errParAborted) {
		ferr = nil
	}
	errs[0] = ferr
	return firstErr(errs)
}
