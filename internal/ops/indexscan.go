// Index-scan µEngine. Two access paths (paper §3.2):
//
//   - Clustered index scans stream B+tree leaves in key order. Unordered
//     consumers get linear overlap via the same circular scanner as table
//     scans (over leaves instead of heap pages); ordered consumers have a
//     spike WoP, except that the merge-join µEngine can attach to an
//     in-progress ordered scan's *suffix* and complete the prefix with a
//     second packet (§4.3.2, Figure 9) through AttachOrderedSuffix.
//   - Unclustered index scans run in two phases: probe the index building a
//     RID list (full overlap — shareable for its whole duration via the
//     default signature attach), sort RIDs in ascending page order to avoid
//     revisiting heap pages, then fetch.
package ops

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/btree"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// leafSource adapts a clustered B+tree's leaf chain to the circular
// scanner's page abstraction.
type leafSource struct {
	tree  *btree.Tree
	pnos  []int64
	ncols int
}

func (l *leafSource) numPages() int64 { return int64(len(l.pnos)) }

func (l *leafSource) readPage(ord int64) ([]tuple.Tuple, error) {
	return l.tree.ReadLeafTuples(l.pnos[ord], l.ncols)
}

// IndexScanOp is the index-scan µEngine.
type IndexScanOp struct {
	reg *scanRegistry

	// leafCache memoizes leaf-page-number lists per tree (invalidated
	// never: experiment tables are bulk-loaded once; updates go to heaps).
	leafMu    sync.Mutex
	leafCache map[string][]int64
}

// NewIndexScanOp creates the index-scan µEngine implementation.
func NewIndexScanOp() *IndexScanOp {
	return &IndexScanOp{reg: newScanRegistry(), leafCache: make(map[string][]int64)}
}

// Op implements core.Operator.
func (o *IndexScanOp) Op() plan.OpType { return plan.OpIndexScan }

// TryShare is the signature-exact attach (identical index scans dedupe; an
// unclustered scan is shareable during its whole RID-building phase).
func (o *IndexScanOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// TryAdmit admits clustered full scans onto in-progress scanners of the
// same index (linear overlap when unordered, spike when ordered). For
// ordered *selective* scans whose spike WoP has expired, it applies the
// paper's materialization enhancement (§4.3.2 second case / Figure 4b):
// the packet attaches to the in-progress scan anyway, saving the cheap
// qualifying suffix tuples out of order; when its own fresh scan of the
// missed prefix completes (delivered in order), the saved results — which
// are already in key order, being leaf-ordered — complete the stream.
func (o *IndexScanOp) TryAdmit(rt *core.Runtime, pkt *core.Packet) bool {
	node := pkt.Node.(*plan.IndexScan)
	if !node.Clustered || node.Lo.IsValid() || node.Hi.IsValid() {
		return false
	}
	attached := o.reg.visit(o.key(node), func(s *scanner) bool {
		requireStart := node.Ordered || !s.circular
		c := &scanConsumer{pkt: pkt, filter: node.Filter, project: node.Project}
		_, ok := s.attach(c, requireStart)
		return ok
	})
	if !attached && node.Ordered && node.Filter != nil {
		attached = o.tryMaterializedOrderedShare(rt, pkt)
	}
	if attached {
		pkt.Query.Stats.SatelliteAttaches.Add(1)
		rt.NoteShare(plan.OpIndexScan)
		for _, ch := range pkt.Children {
			ch.CancelSubtree()
		}
	}
	return attached
}

// tryMaterializedOrderedShare implements the §4.3.2 materialization path
// for a selective order-sensitive scan: piggyback on the in-progress scan
// for the suffix (materializing qualifying tuples), read the missed prefix
// fresh and in order, then emit the saved suffix — whose leaf order IS key
// order — giving the consumer a fully ordered stream while skipping the
// suffix's I/O.
func (o *IndexScanOp) tryMaterializedOrderedShare(rt *core.Runtime, pkt *core.Packet) bool {
	node := pkt.Node.(*plan.IndexScan)
	collector, colBuf := rt.NewInternalPacket(pkt.Query, node)
	colBuf.SetUnbounded() // materialization: never throttle the host scan
	start, ok := o.AttachOrderedSuffix(node.Table, node.Col, collector, node.Filter, node.Project)
	if !ok || start == 0 {
		if ok {
			collector.Complete(nil)
		}
		return false
	}
	go func() {
		err := o.runMaterializedOrdered(rt, pkt, node, colBuf, int(start))
		pkt.Complete(err)
	}()
	return true
}

func (o *IndexScanOp) runMaterializedOrdered(rt *core.Runtime, pkt *core.Packet, node *plan.IndexScan, colBuf *tbuf.Buffer, start int) error {
	tb, err := rt.SM.Table(node.Table)
	if err != nil {
		return err
	}
	tr := tb.Clustered
	pnos, err := o.leaves(tr)
	if err != nil {
		return err
	}
	// Phase 1: read the missed prefix [0, start) fresh, in key order,
	// streaming straight to the consumer.
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	pool := rt.BatchPool()
	for ord := 0; ord < start && ord < len(pnos); ord++ {
		if cerr := pkt.Query.CancelErr(); cerr != nil {
			return cerr
		}
		if pkt.Cancelled() {
			return nil
		}
		rows, err := tr.ReadLeafTuples(pnos[ord], tb.Schema.Len())
		if err != nil {
			return err
		}
		if err := emitBatch(em, pool, applyFilterProject(rows, node.Filter, node.Project, pool)); err != nil {
			return emitResult(err)
		}
	}
	// Phase 2: the saved suffix results arrive (and are drained) in leaf
	// order == key order; append them after the prefix.
	for {
		batch, err := colBuf.Get()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := emitBatch(em, pool, batch); err != nil {
			return emitResult(err)
		}
	}
	return emitResult(em.flush())
}

func (o *IndexScanOp) key(node *plan.IndexScan) string {
	return "cix:" + node.Table + ":" + node.Col
}

func (o *IndexScanOp) leaves(tr *btree.Tree) ([]int64, error) {
	o.leafMu.Lock()
	if pnos, ok := o.leafCache[tr.Name]; ok {
		o.leafMu.Unlock()
		return pnos, nil
	}
	o.leafMu.Unlock()
	pnos, err := tr.LeafPageNos()
	if err != nil {
		return nil, err
	}
	o.leafMu.Lock()
	o.leafCache[tr.Name] = pnos
	o.leafMu.Unlock()
	return pnos, nil
}

// ScanProgress reports an in-progress full clustered ordered scan's
// position and total leaf count for the merge-join split's cost model.
// ok is false when no shareable ordered scan is in progress.
func (o *IndexScanOp) ScanProgress(table, col string) (pos, total int64, ok bool) {
	o.reg.visit("cix:"+table+":"+col, func(s *scanner) bool {
		if s.circular {
			return false
		}
		p, n, alive := s.progress()
		if !alive || p == 0 || p >= n {
			return false
		}
		pos, total, ok = p, n, true
		return true
	})
	return pos, total, ok
}

// AttachOrderedSuffix attaches a consumer to an in-progress ordered
// clustered scan, receiving leaves from the scanner's current position to
// the end (in key order). Returns the start position. The caller owns the
// complement (leaves 0..start-1). This is the §4.3.2 mechanism.
func (o *IndexScanOp) AttachOrderedSuffix(table, col string, pkt *core.Packet, filter expr.Pred, project []int) (int64, bool) {
	var start int64
	ok := o.reg.visit("cix:"+table+":"+col, func(s *scanner) bool {
		if s.circular {
			return false
		}
		c := &scanConsumer{pkt: pkt, filter: filter, project: project}
		p, attached := s.attachSuffix(c)
		if attached {
			start = p
		}
		return attached
	})
	return start, ok
}

// Run implements core.Operator.
func (o *IndexScanOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.IndexScan)
	tb, err := rt.SM.Table(node.Table)
	if err != nil {
		return err
	}
	// The query's shared lock on the table was acquired at submit (see
	// Runtime.Submit's query-level read locking). The fence mirrors the
	// table-scan one: index scans and their satellites read one committed
	// state, pinned by the commit counter.
	fence := tb.CommitSeq()
	if node.Clustered {
		err = o.runClustered(rt, pkt, tb, node)
	} else {
		err = o.runUnclustered(rt, pkt, tb, node)
	}
	if err != nil {
		return err
	}
	if end := tb.CommitSeq(); end != fence {
		return &sm.TornScanError{Table: node.Table, Start: fence, End: end}
	}
	return nil
}

func (o *IndexScanOp) runClustered(rt *core.Runtime, pkt *core.Packet, tb *sm.Table, node *plan.IndexScan) error {
	tr := tb.Clustered
	if tr == nil || tb.ClusteredKey != node.Col {
		return fmt.Errorf("ops: table %q has no clustered index on %q", node.Table, node.Col)
	}
	ncols := tb.Schema.Len()
	if node.Lo.IsValid() || node.Hi.IsValid() {
		// Bounded clustered scan: stream the B+tree range directly (no
		// page-stream sharing; signature-identical packets still dedupe).
		em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
		var arena tuple.RowArena
		var derr error
		err := tr.Range(node.Lo, node.Hi, func(_ tuple.Value, payload []byte) bool {
			row, _, e := tuple.DecodeArena(payload, ncols, &arena)
			if e != nil {
				derr = e
				return false
			}
			if node.Filter != nil && !node.Filter.Test(row) {
				return true
			}
			if node.Project != nil {
				row = arena.Project(row, node.Project)
			}
			if pkt.Cancelled() || em.add(row) != nil {
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if derr != nil {
			return derr
		}
		if cerr := pkt.Query.CancelErr(); cerr != nil {
			return cerr
		}
		// The emitter's error is sticky, so an add failure that stopped the
		// range callback resurfaces here instead of vanishing as a clean EOF.
		return emitResult(em.flush())
	}
	pnos, err := o.leaves(tr)
	if err != nil {
		return err
	}
	src := &leafSource{tree: tr, pnos: pnos, ncols: ncols}
	// LeafFrom/LeafTo restrict a partial scan (the complement packet the
	// merge-join split dispatches).
	lo, hi := node.LeafFrom, node.LeafTo
	if hi < 0 || hi > len(pnos) {
		hi = len(pnos)
	}
	if lo < 0 {
		lo = 0
	}
	if lo > 0 || hi < len(pnos) {
		// Partial scans stream their range directly and never host sharing.
		em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
		pool := rt.BatchPool()
		for ord := lo; ord < hi; ord++ {
			if cerr := pkt.Query.CancelErr(); cerr != nil {
				return cerr
			}
			if pkt.Cancelled() {
				return nil
			}
			rows, err := src.readPage(int64(ord))
			if err != nil {
				return err
			}
			if err := emitBatch(em, pool, applyFilterProject(rows, node.Filter, node.Project, pool)); err != nil {
				return emitResult(err)
			}
		}
		return emitResult(em.flush())
	}
	// Unordered full clustered scans partition like table scans (leaf order
	// is irrelevant to their consumers); ordered scans stay single-partition
	// so the leaf stream keeps key order (newScanner enforces this).
	s := newScanner(pkt.ID, src, !node.Ordered, rt.ParallelismFor(pkt.Query, 0))
	s.pool = rt.BatchPool()
	if eng := rt.Engine(plan.OpIndexScan); eng != nil {
		s.spawn = eng.SpawnSub
	}
	c := &scanConsumer{pkt: pkt, filter: node.Filter, project: node.Project}
	s.attach(c, false)
	if rt.OSPAllowed(pkt.Query) {
		key := o.key(node)
		o.reg.add(key, s)
		defer o.reg.remove(key, s)
	}
	return s.run()
}

func (o *IndexScanOp) runUnclustered(rt *core.Runtime, pkt *core.Packet, tb *sm.Table, node *plan.IndexScan) error {
	tr := tb.Unclustered[node.Col]
	if tr == nil {
		return fmt.Errorf("ops: table %q has no unclustered index on %q", node.Table, node.Col)
	}
	// Phase 1: probe the index, building the RID list (with each entry's
	// key — see the ghost re-check below). Full overlap: any identical
	// packet arriving now attaches via TryShare since no output has been
	// produced.
	type entry struct {
		rid heap.RID
		key tuple.Value
	}
	var entries []entry
	var derr error
	err := tr.Range(node.Lo, node.Hi, func(key tuple.Value, payload []byte) bool {
		rid, e := sm.DecodeRID(payload)
		if e != nil {
			derr = e
			return false
		}
		entries = append(entries, entry{rid: rid, key: key})
		return !pkt.Cancelled()
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	if !node.Ordered {
		// Sort RIDs in ascending page order to visit each heap page once.
		sort.Slice(entries, func(i, j int) bool { return entries[i].rid.Less(entries[j].rid) })
	}
	// Phase 2: fetch. Unclustered indexes are maintained lazily under
	// transactional mutation: deletes leave the entry behind (the heap slot
	// is tombstoned) and updates that change the key add a new entry without
	// removing the old. Both ghosts are filtered here — a tombstoned RID is
	// skipped, and a fetched row whose indexed column no longer equals the
	// entry's key belongs to a newer version reachable through its own entry.
	keyIx := tb.Schema.MustColIndex(node.Col)
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	var arena tuple.RowArena
	for _, e := range entries {
		if cerr := pkt.Query.CancelErr(); cerr != nil {
			return cerr
		}
		if pkt.Cancelled() {
			return nil
		}
		row, err := tb.Heap.ReadTuple(e.rid)
		if err != nil {
			if errors.Is(err, heap.ErrDeleted) {
				continue
			}
			return err
		}
		if tuple.Compare(row[keyIx], e.key) != 0 {
			continue // ghost: key changed since this entry was made
		}
		if node.Filter == nil || node.Filter.Test(row) {
			out := row
			if node.Project != nil {
				out = arena.Project(row, node.Project)
			}
			if err := em.add(out); err != nil {
				return emitResult(err)
			}
		}
	}
	return emitResult(em.flush())
}

var _ interface {
	core.Operator
	core.Sharer
	core.Admitter
} = (*IndexScanOp)(nil)
