package ops

import (
	"context"
	"io"
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

func parCfg(par int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ScanParallelism = par
	return cfg
}

type fakeSource struct{ n int64 }

func (f fakeSource) numPages() int64                       { return f.n }
func (f fakeSource) readPage(int64) ([]tuple.Tuple, error) { return nil, nil }

func TestPartitionBoundaries(t *testing.T) {
	for _, tc := range []struct {
		pages int64
		par   int
		want  int // expected partition count after clamping
	}{
		{100, 4, 4},
		{100, 1, 1},
		{3, 8, 3},    // clamp to page count
		{0, 4, 1},    // empty source keeps one (empty) partition
		{7, 3, 3},    // uneven split
		{100, -2, 1}, // negative = serial
	} {
		s := newScanner(1, fakeSource{n: tc.pages}, true, tc.par)
		if len(s.parts) != tc.want {
			t.Fatalf("pages=%d par=%d: %d partitions, want %d", tc.pages, tc.par, len(s.parts), tc.want)
		}
		// Partitions must tile [0, pages) contiguously and disjointly.
		var next int64
		for _, p := range s.parts {
			if p.lo != next || p.hi < p.lo || p.pos != p.lo {
				t.Fatalf("pages=%d par=%d: bad partition %+v at expected lo %d", tc.pages, tc.par, p, next)
			}
			next = p.hi
		}
		if next != tc.pages {
			t.Fatalf("pages=%d par=%d: partitions end at %d", tc.pages, tc.par, next)
		}
	}
	// Ordered scans are forced serial regardless of the knob.
	if s := newScanner(1, fakeSource{n: 100}, false, 8); len(s.parts) != 1 {
		t.Fatalf("ordered scan got %d partitions", len(s.parts))
	}
}

func TestPartitionedScanExactlyOnce(t *testing.T) {
	const n = 2000
	for _, par := range []int{1, 2, 3, 4, 8, 64} {
		rt := newRT(t, n, parCfg(par))
		rows := runPlan(t, rt, plan.NewTableScan("t", testSchema(), nil, nil, false))
		if len(rows) != n {
			t.Fatalf("par=%d: %d rows, want %d", par, len(rows), n)
		}
		seen := make(map[int64]bool, n)
		for _, r := range rows {
			if seen[r[0].I] {
				t.Fatalf("par=%d: key %d delivered twice", par, r[0].I)
			}
			seen[r[0].I] = true
		}
	}
}

func TestPartitionedScanFilterProject(t *testing.T) {
	const n = 2000
	rt := newRT(t, n, parCfg(4))
	pred := expr.LT(expr.Col(0), expr.CInt(500))
	rows := runPlan(t, rt, plan.NewTableScan("t", testSchema(), pred, []int{0}, false))
	if len(rows) != 500 {
		t.Fatalf("filtered rows: %d, want 500", len(rows))
	}
	seen := make(map[int64]bool)
	for _, r := range rows {
		if len(r) != 1 || r[0].I >= 500 || seen[r[0].I] {
			t.Fatalf("bad projected row %v", r)
		}
		seen[r[0].I] = true
	}
}

func TestPartitionedScanOrderedStaysSerial(t *testing.T) {
	const n = 1500
	rt := newRT(t, n, parCfg(8))
	rows := runPlan(t, rt, plan.NewTableScan("t", testSchema(), nil, nil, true))
	if len(rows) != n {
		t.Fatalf("%d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("ordered scan out of order at %d: got key %d", i, r[0].I)
		}
	}
}

func TestPartitionedScanEmptyTable(t *testing.T) {
	rt := newRT(t, 0, parCfg(4))
	rows := runPlan(t, rt, plan.NewAggregate(
		plan.NewTableScan("t", testSchema(), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("count over empty table: %v", rows)
	}
}

// startBlockedScan submits a bare table-scan query and consumes one batch,
// which guarantees the partitioned scan group is registered, in flight, and
// (with far more pages than the result buffer holds) blocked mid-scan.
// Returns the query and the number of rows already consumed.
func startBlockedScan(t *testing.T, rt *core.Runtime) (*core.Query, int64) {
	t.Helper()
	q, err := rt.Submit(context.Background(), plan.NewTableScan("t", testSchema(), nil, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Result.Get()
	if err != nil {
		t.Fatal(err)
	}
	return q, int64(len(b))
}

func drainCount(t *testing.T, q *core.Query) int64 {
	t.Helper()
	var n int64
	for {
		b, err := q.Result.Get()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += int64(len(b))
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPartitionedScanSatelliteAttachMidScan(t *testing.T) {
	const n = 4000
	rt := newRT(t, n, parCfg(4))
	q1, pre := startBlockedScan(t, rt)
	// A second scan with a different predicate cannot dedupe by signature;
	// it must piggyback on the in-flight partitioned group, owing every
	// partition its full range (circular wrap serves the missed pages).
	p2 := plan.NewAggregate(
		plan.NewTableScan("t", testSchema(), expr.GE(expr.Col(0), expr.CInt(1000)), nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}})
	q2, err := rt.Submit(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if got := pre + drainCount(t, q1); got != n {
		t.Fatalf("host scan rows: %d, want %d", got, n)
	}
	b2, err := q2.Result.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b2[0][0].I != n-1000 {
		t.Fatalf("satellite count: %d, want %d", b2[0][0].I, n-1000)
	}
	if err := q2.Wait(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().SharesByOp[plan.OpTableScan] == 0 {
		t.Fatal("satellite did not attach to the in-flight scan group")
	}
	if rt.Stats().EngineStats[plan.OpTableScan].SubWorkers < 3 {
		t.Fatalf("expected >=3 scan sub-workers, stats: %+v", rt.Stats().EngineStats[plan.OpTableScan])
	}
}

func TestCancelledConduitStillServesSatellites(t *testing.T) {
	// A signature-identical scan absorbed onto another query's in-flight
	// scan packet must receive the complete stream even when the conduit
	// query is cancelled mid-scan: cancellation abandons only the conduit's
	// own buffers, and the scan group keeps serving the attached satellite.
	const n = 3000
	rt := newRT(t, n, parCfg(4))
	ctxC, cancelC := context.WithCancel(context.Background())
	defer cancelC()
	qC, err := rt.Submit(ctxC, plan.NewTableScan("t", testSchema(), nil, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qC.Result.Get(); err != nil {
		t.Fatal(err)
	}
	qR, err := rt.Submit(context.Background(), plan.NewTableScan("t", testSchema(), nil, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	cancelC()
	rows := make(map[int64]int, n)
	got := int64(0)
	for {
		b, err := qR.Result.Get()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range b {
			rows[r[0].I]++
			got++
		}
	}
	if err := qR.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("satellite rows after conduit cancel: %d, want %d", got, n)
	}
	for k, c := range rows {
		if c != 1 {
			t.Fatalf("key %d delivered %d times", k, c)
		}
	}
}

func TestSatelliteRescuedFromCancelledHost(t *testing.T) {
	// An aggregate absorbed onto a host that gets cancelled before emitting
	// must be rescued (its subtree re-dispatched), not handed the host's
	// error or a partial result.
	const n = 3000
	rt := newRT(t, n, parCfg(4))
	rt.SM.Disk.SetLatency(25*time.Microsecond, 35*time.Microsecond, 0)
	defer rt.SM.Disk.SetLatency(0, 0, 0)
	mk := func() plan.Node {
		return plan.NewAggregate(
			plan.NewTableScan("t", testSchema(), nil, nil, false),
			[]expr.AggSpec{{Kind: expr.AggCount}})
	}
	ctxC, cancelC := context.WithCancel(context.Background())
	defer cancelC()
	qC, err := rt.Submit(ctxC, mk())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the host aggregate start
	qR, err := rt.Submit(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the absorb (if any) land
	cancelC()
	b, err := qR.Result.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b[0][0].I != n {
		t.Fatalf("count after host cancel: %d, want %d", b[0][0].I, n)
	}
	if err := qR.Wait(); err != nil {
		t.Fatal(err)
	}
	<-qC.Root.Done()
}

func TestPartitionedScanCancelHostConsumerMidScan(t *testing.T) {
	const n = 4000
	rt := newRT(t, n, parCfg(4))
	q1, _ := startBlockedScan(t, rt)
	p2 := plan.NewAggregate(
		plan.NewTableScan("t", testSchema(), expr.GE(expr.Col(0), expr.CInt(500)), nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}})
	q2, err := rt.Submit(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().SharesByOp[plan.OpTableScan] == 0 {
		t.Fatal("satellite did not attach to the in-flight scan group")
	}
	// Cancel the *host* consumer while the satellite still owes pages on
	// every partition: the scan group must drop the host and keep serving
	// the satellite to completion — no partition may stall.
	q1.Cancel()
	b2, err := q2.Result.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b2[0][0].I != n-500 {
		t.Fatalf("satellite count after host cancel: %d, want %d", b2[0][0].I, n-500)
	}
	if err := q2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedScanCancelSatelliteMidScan(t *testing.T) {
	const n = 4000
	rt := newRT(t, n, parCfg(4))
	q1, pre := startBlockedScan(t, rt)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	p2 := plan.NewAggregate(
		plan.NewTableScan("t", testSchema(), expr.GE(expr.Col(0), expr.CInt(500)), nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}})
	q2, err := rt.Submit(ctx2, p2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().SharesByOp[plan.OpTableScan] == 0 {
		t.Fatal("satellite did not attach to the in-flight scan group")
	}
	cancel2()
	// The host must still receive every row exactly once.
	if got := pre + drainCount(t, q1); got != n {
		t.Fatalf("host rows after satellite cancel: %d, want %d", got, n)
	}
	<-q2.Root.Done()
}
