package ops

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// loadRandomPair loads two tables with random join-key distributions and
// returns the runtime plus a reference count of the equi-join cardinality.
func loadRandomPair(t *testing.T, rng *rand.Rand, nl, nr, keyRange int) (*core.Runtime, int64) {
	t.Helper()
	schema := tuple.NewSchema(tuple.Col("k", tuple.KindInt), tuple.Col("v", tuple.KindInt))
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 32})
	mkRows := func(n int) ([]tuple.Tuple, map[int64]int64) {
		rows := make([]tuple.Tuple, n)
		hist := make(map[int64]int64)
		for i := range rows {
			k := int64(rng.Intn(keyRange))
			rows[i] = tuple.Tuple{tuple.I64(k), tuple.I64(int64(i))}
			hist[k]++
		}
		return rows, hist
	}
	lRows, lHist := mkRows(nl)
	rRows, rHist := mkRows(nr)
	if _, err := mgr.CreateTable("L", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CreateTable("R", schema); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Load("L", lRows); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Load("R", rRows); err != nil {
		t.Fatal(err)
	}
	var want int64
	for k, c := range lHist {
		want += c * rHist[k]
	}
	rt := core.NewRuntime(mgr, core.DefaultConfig(), All())
	t.Cleanup(rt.Close)
	return rt, want
}

// TestJoinOperatorEquivalence is the join property test: on random inputs,
// hash join, merge join (over sorts) and nested-loop join must all produce
// the reference equi-join cardinality.
func TestJoinOperatorEquivalence(t *testing.T) {
	schema := tuple.NewSchema(tuple.Col("k", tuple.KindInt), tuple.Col("v", tuple.KindInt))
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 50+rng.Intn(300), 50+rng.Intn(300)
		keyRange := 1 + rng.Intn(40)
		rt, want := loadRandomPair(t, rng, nl, nr, keyRange)

		count := func(j plan.Node) int64 {
			agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
			rows := runPlan(t, rt, agg)
			return rows[0][0].I
		}
		lScan := func() plan.Node { return plan.NewTableScan("L", schema, nil, nil, false) }
		rScan := func() plan.Node { return plan.NewTableScan("R", schema, nil, nil, false) }

		hj := count(plan.NewHashJoin(lScan(), rScan(), 0, 0))
		mj := count(plan.NewMergeJoin(
			plan.NewSort(lScan(), []int{0}, false),
			plan.NewSort(rScan(), []int{0}, false), 0, 0, false))
		nj := count(plan.NewNLJoin(lScan(), rScan(), expr.EQ(expr.Col(0), expr.Col(2))))

		if hj != want || mj != want || nj != want {
			t.Fatalf("seed %d (nl=%d nr=%d kr=%d): want %d, hj=%d mj=%d nlj=%d",
				seed, nl, nr, keyRange, want, hj, mj, nj)
		}
	}
}

// TestGroupByMatchesReference cross-checks hash group-by against a simple
// in-memory reference on random data.
func TestGroupByMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 100 + rng.Intn(500)
		schema := tuple.NewSchema(tuple.Col("g", tuple.KindInt), tuple.Col("v", tuple.KindFloat))
		mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 32})
		mgr.CreateTable("T", schema)
		ref := make(map[int64]struct {
			count int64
			sum   float64
		})
		rows := make([]tuple.Tuple, n)
		for i := range rows {
			g := int64(rng.Intn(12))
			v := float64(rng.Intn(1000)) / 8
			rows[i] = tuple.Tuple{tuple.I64(g), tuple.F64(v)}
			e := ref[g]
			e.count++
			e.sum += v
			ref[g] = e
		}
		mgr.Load("T", rows)
		rt := core.NewRuntime(mgr, core.DefaultConfig(), All())

		gb := plan.NewGroupBy(plan.NewTableScan("T", schema, nil, nil, false),
			[]int{0}, []expr.AggSpec{
				{Kind: expr.AggCount},
				{Kind: expr.AggSum, Arg: expr.Col(1)},
			})
		out := runPlan(t, rt, gb)
		if len(out) != len(ref) {
			t.Fatalf("seed %d: %d groups, want %d", seed, len(out), len(ref))
		}
		for _, row := range out {
			e, ok := ref[row[0].I]
			if !ok {
				t.Fatalf("seed %d: unexpected group %v", seed, row[0])
			}
			if row[1].I != e.count {
				t.Fatalf("seed %d group %d: count %d want %d", seed, row[0].I, row[1].I, e.count)
			}
			if diff := row[2].F - e.sum; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("seed %d group %d: sum %f want %f", seed, row[0].I, row[2].F, e.sum)
			}
		}
		rt.Close()
	}
}

// TestSortQuickProperty: sorting any random input through the sort µEngine
// yields the input multiset in order.
func TestSortQuickProperty(t *testing.T) {
	schema := tuple.NewSchema(tuple.Col("k", tuple.KindInt))
	check := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 32})
		mgr.CreateTable("T", schema)
		rows := make([]tuple.Tuple, len(vals))
		want := make([]int64, len(vals))
		for i, v := range vals {
			rows[i] = tuple.Tuple{tuple.I64(int64(v))}
			want[i] = int64(v)
		}
		mgr.Load("T", rows)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		rt := core.NewRuntime(mgr, core.DefaultConfig(), All())
		defer rt.Close()
		srt := plan.NewSort(plan.NewTableScan("T", schema, nil, nil, false), []int{0}, false)
		q, err := rt.Submit(context.Background(), srt)
		if err != nil {
			return false
		}
		var got []int64
		for {
			b, err := q.Result.Get()
			if err != nil {
				break
			}
			for _, tp := range b {
				got = append(got, tp[0].I)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestScanShareCountInvariant: N concurrent scans with OSP produce exactly
// the same per-query counts as running them serially (sharing must never
// change results), across random predicates.
func TestScanShareCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rt := newRT(t, 3000, core.DefaultConfig())
	schema := testSchema()
	type q struct {
		pred  int64
		count int64
	}
	qs := make([]q, 6)
	for i := range qs {
		qs[i].pred = int64(rng.Intn(3000))
	}
	// Serial reference.
	for i := range qs {
		rows := runPlan(t, rt, plan.NewAggregate(
			plan.NewTableScan("t", schema, expr.GE(expr.Col(0), expr.CInt(qs[i].pred)), nil, false),
			[]expr.AggSpec{{Kind: expr.AggCount}}))
		qs[i].count = rows[0][0].I
	}
	// Concurrent run.
	results := make(chan error, len(qs))
	for i := range qs {
		go func(i int) {
			p := plan.NewAggregate(
				plan.NewTableScan("t", schema, expr.GE(expr.Col(0), expr.CInt(qs[i].pred)), nil, false),
				[]expr.AggSpec{{Kind: expr.AggCount}})
			query, err := rt.Submit(context.Background(), p)
			if err != nil {
				results <- err
				return
			}
			b, err := query.Result.Get()
			if err != nil {
				results <- err
				return
			}
			query.Result.Drain()
			if got := b[0][0].I; got != qs[i].count {
				results <- fmt.Errorf("query %d: concurrent count %d != serial %d", i, got, qs[i].count)
				return
			}
			results <- query.Wait()
		}(i)
	}
	for range qs {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}
