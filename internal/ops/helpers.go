// Package ops implements the relational µEngines QPipe serves: circular
// table scans, clustered/unclustered index scans, filter, project, external
// sort, merge join (with the ordered-scan split of §4.3.2), hybrid hash
// join, nested-loop join, scalar aggregation, hash group-by and the update
// engine. Each operator encapsulates its own sharing mechanism, per the
// paper ("each µEngine employs a different sharing mechanism, depending on
// the encapsulated relational operation").
package ops

import (
	"errors"
	"io"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/tuple"
)

// emitter accumulates tuples and flushes them in batches to a packet's
// output port. A Put failure sticks: every later add/flush repeats it, so an
// operator that ignores one mid-loop error still reports it at the final
// flush. When the port reports all consumers gone while the packet's query
// was cancelled, the emitter surfaces the cancellation error instead — the
// consumers did not lose interest, the query was killed, and the packet must
// not finish as a success (see emitResult).
type emitter struct {
	out   *tbuf.SharedOut
	pkt   *core.Packet
	batch tbuf.Batch
	size  int
	err   error
}

func newEmitter(pkt *core.Packet, batchSize int) *emitter {
	if batchSize < 1 {
		batchSize = 64
	}
	return &emitter{out: pkt.Out, pkt: pkt, size: batchSize}
}

func (e *emitter) add(t tuple.Tuple) error {
	if e.err != nil {
		return e.err
	}
	e.batch = append(e.batch, t)
	if len(e.batch) >= e.size {
		return e.flush()
	}
	return nil
}

func (e *emitter) flush() error {
	if e.err != nil {
		return e.err
	}
	if len(e.batch) == 0 {
		return nil
	}
	b := e.batch
	e.batch = nil
	if err := e.out.Put(b); err != nil {
		if errors.Is(err, tbuf.ErrConsumersGone) {
			if cerr := e.pkt.Query.CancelErr(); cerr != nil {
				err = cerr
			}
		}
		e.err = err
		return err
	}
	return nil
}

// emitResult converts a terminal emitter error into the operator's return
// value: the consumers-gone sentinel is a clean early stop (every consumer
// detached on purpose — absorbed elsewhere, or a parent that finished
// early), while everything else — cancellation, disk faults, forced closes —
// propagates as the packet's terminal error. This is the only place
// operators are allowed to swallow an output-port error.
func emitResult(err error) error {
	if errors.Is(err, tbuf.ErrConsumersGone) {
		return nil
	}
	return err
}

// cursor reads a buffer one tuple at a time with single-tuple lookahead
// (merge join needs peek).
type cursor struct {
	buf   *tbuf.Buffer
	batch tbuf.Batch
	i     int
	eof   bool
}

func newCursor(buf *tbuf.Buffer) *cursor { return &cursor{buf: buf} }

// peek returns the next tuple without consuming it; ok is false at EOF.
func (c *cursor) peek() (tuple.Tuple, bool, error) {
	for !c.eof && c.i >= len(c.batch) {
		b, err := c.buf.Get()
		if err == io.EOF {
			c.eof = true
			break
		}
		if err != nil {
			return nil, false, err
		}
		c.batch, c.i = b, 0
	}
	if c.eof {
		return nil, false, nil
	}
	return c.batch[c.i], true, nil
}

// next consumes and returns the next tuple; ok is false at EOF.
func (c *cursor) next() (tuple.Tuple, bool, error) {
	t, ok, err := c.peek()
	if err != nil || !ok {
		return nil, ok, err
	}
	c.i++
	return t, true, nil
}

// drainAll reads a buffer to EOF, returning all tuples.
func drainAll(buf *tbuf.Buffer) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	for {
		b, err := buf.Get()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
}

// applyFilterProject filters and projects one page worth of tuples for a
// scan consumer. Returns a fresh slice (tuples cloned on projection so the
// page batch is never aliased across consumers).
func applyFilterProject(in []tuple.Tuple, filter expr.Pred, project []int) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(in))
	for _, t := range in {
		if filter != nil && !filter.Test(t) {
			continue
		}
		if project != nil {
			out = append(out, t.Project(project))
		} else {
			out = append(out, t.Clone())
		}
	}
	return out
}

// defaultTryShare is the signature-exact OSP attach used by operators whose
// window of opportunity is fully captured by output timing: attach succeeds
// while the host has produced nothing (full/step overlap) or while all its
// output still fits the replay window (the buffering enhancement). The
// commit is atomic against the host's teardown (see AbsorbSatellite).
func defaultTryShare(host, sat *core.Packet) bool {
	st := host.State()
	if st == core.PacketDone || st == core.PacketCancelled || st == core.PacketSatellite {
		return false
	}
	return host.AbsorbSatellite(sat)
}
