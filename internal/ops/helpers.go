// Package ops implements the relational µEngines QPipe serves: circular
// table scans, clustered/unclustered index scans, filter, project, external
// sort, merge join (with the ordered-scan split of §4.3.2), hybrid hash
// join, nested-loop join, scalar aggregation, hash group-by and the update
// engine. Each operator encapsulates its own sharing mechanism, per the
// paper ("each µEngine employs a different sharing mechanism, depending on
// the encapsulated relational operation").
package ops

import (
	"errors"
	"io"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/tuple"
)

// emitter accumulates tuples and flushes them in batches to a packet's
// output port. Batch arrays are leased from the port's pool (see
// tbuf.BatchPool): a flush hands the array's lease to the primary consumer
// and the next add draws a fresh one, so the steady-state flush path
// allocates nothing. A Put failure sticks: every later add/flush repeats it,
// so an operator that ignores one mid-loop error still reports it at the
// final flush. When the port reports all consumers gone while the packet's
// query was cancelled, the emitter surfaces the cancellation error instead —
// the consumers did not lose interest, the query was killed, and the packet
// must not finish as a success (see emitResult).
type emitter struct {
	out   *tbuf.SharedOut
	pkt   *core.Packet
	batch tbuf.Batch
	size  int
	err   error
}

func newEmitter(pkt *core.Packet, batchSize int) *emitter {
	if batchSize < 1 {
		batchSize = core.DefaultBatchSize
	}
	return &emitter{out: pkt.Out, pkt: pkt, size: batchSize}
}

func (e *emitter) add(t tuple.Tuple) error {
	if e.err != nil {
		return e.err
	}
	if e.batch == nil {
		e.batch = e.out.NewBatch(e.size)
	}
	e.batch = append(e.batch, t)
	if len(e.batch) >= e.size {
		return e.flush()
	}
	return nil
}

func (e *emitter) flush() error {
	if e.err != nil {
		return e.err
	}
	if len(e.batch) == 0 {
		return nil
	}
	b := e.batch
	e.batch = nil
	if err := e.out.Put(b); err != nil {
		if errors.Is(err, tbuf.ErrConsumersGone) {
			if cerr := e.pkt.Query.CancelErr(); cerr != nil {
				err = cerr
			}
		}
		e.err = err
		return err
	}
	return nil
}

// emitResult converts a terminal emitter error into the operator's return
// value: the consumers-gone sentinel is a clean early stop (every consumer
// detached on purpose — absorbed elsewhere, or a parent that finished
// early), while everything else — cancellation, disk faults, forced closes —
// propagates as the packet's terminal error. This is the only place
// operators are allowed to swallow an output-port error.
func emitResult(err error) error {
	if errors.Is(err, tbuf.ErrConsumersGone) {
		return nil
	}
	return err
}

// cursor reads a buffer one tuple at a time with single-tuple lookahead
// (merge join needs peek). It holds the lease on at most one batch array,
// released back to the pool on advance past the batch boundary and at EOF —
// tuples the caller retained stay valid (rows are immutable and never
// recycled; only the array goes back).
type cursor struct {
	buf   *tbuf.Buffer
	batch tbuf.Batch
	i     int
	eof   bool
}

func newCursor(buf *tbuf.Buffer) *cursor { return &cursor{buf: buf} }

// release returns the current batch's array lease to the pool.
func (c *cursor) release() {
	if c.batch != nil {
		c.buf.Recycle(c.batch)
		c.batch = nil
	}
}

// peek returns the next tuple without consuming it; ok is false at EOF.
func (c *cursor) peek() (tuple.Tuple, bool, error) {
	for !c.eof && c.i >= len(c.batch) {
		b, err := c.buf.Get()
		if err == io.EOF {
			c.eof = true
			break
		}
		if err != nil {
			return nil, false, err
		}
		c.release()
		c.batch, c.i = b, 0
	}
	if c.eof {
		c.release()
		return nil, false, nil
	}
	return c.batch[c.i], true, nil
}

// next consumes and returns the next tuple; ok is false at EOF.
func (c *cursor) next() (tuple.Tuple, bool, error) {
	t, ok, err := c.peek()
	if err != nil || !ok {
		return nil, ok, err
	}
	c.i++
	return t, true, nil
}

// drainAll reads a buffer to EOF, returning all tuples (rows are retained by
// reference; the batch arrays that carried them are recycled).
func drainAll(buf *tbuf.Buffer) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	for {
		b, err := buf.Get()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
		buf.Recycle(b)
	}
}

// applyFilterProject filters and projects one page worth of tuples for a
// scan consumer into a pool-leased batch. Under the lease protocol the rows
// themselves are shared, not cloned: page tuples are immutable once decoded,
// so every consumer may reference them, and each consumer's distinct output
// array is what keeps their streams independent. Projection rows carve from
// one arena chunk per page instead of allocating per row.
func applyFilterProject(in []tuple.Tuple, filter expr.Pred, project []int, pool *tbuf.BatchPool) tbuf.Batch {
	out := pool.GetCap(len(in))
	var arena tuple.RowArena
	for i, t := range in {
		if filter != nil && !filter.Test(t) {
			continue
		}
		if project != nil {
			if len(out) == 0 {
				// First kept row: size the chunk by the rows that can still
				// match (capped — a selective filter must not pay a full
				// page's worth of arena for a handful of survivors; Make
				// chains further chunks if the cap is exceeded).
				n := (len(in) - i) * len(project)
				if n > 1024 {
					n = 1024
				}
				arena.Grow(n)
			}
			out = append(out, arena.Project(t, project))
		} else {
			out = append(out, t)
		}
	}
	return out
}

// emitBatch streams a leased batch's rows into the emitter and returns the
// array's lease to the pool whether or not an add fails (the rows live on
// inside the emitter's own batch; only the carrier array comes back).
func emitBatch(em *emitter, pool *tbuf.BatchPool, out tbuf.Batch) error {
	for _, row := range out {
		if err := em.add(row); err != nil {
			pool.Put(out)
			return err
		}
	}
	pool.Put(out)
	return nil
}

// defaultTryShare is the signature-exact OSP attach used by operators whose
// window of opportunity is fully captured by output timing: attach succeeds
// while the host has produced nothing (full/step overlap) or while all its
// output still fits the replay window (the buffering enhancement). The
// commit is atomic against the host's teardown (see AbsorbSatellite).
func defaultTryShare(host, sat *core.Packet) bool {
	st := host.State()
	if st == core.PacketDone || st == core.PacketCancelled || st == core.PacketSatellite {
		return false
	}
	return host.AbsorbSatellite(sat)
}
