// Join µEngines.
//
//   - Merge join: step overlap via the default attach; additionally
//     implements the §4.3.2 ordered-scan split (Figure 9): when its parent
//     is order-insensitive and an identical ordered clustered scan is
//     already in progress, the OSP coordinator evaluates the join as two
//     packets — the in-progress scan's suffix joined against a fresh read
//     of the non-shared input, then the missed prefix joined against a
//     second read — at worst reading the non-shared relation twice, and
//     only when the cost model says the sharing pays off.
//   - Hybrid hash join: the build phase is a full overlap, probe is step
//     (Figure 11). Small builds stay in memory; larger ones partition both
//     inputs to spill files with partition 0 memory-resident (hybrid).
//   - Nested-loop join: step overlap; inner input is materialized.
package ops

import (
	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// ---- Merge join ---------------------------------------------------------------

// MergeJoinOp is the merge-join µEngine.
type MergeJoinOp struct {
	iscan *IndexScanOp // consulted for in-progress ordered scans
}

// NewMergeJoinOp creates the merge-join µEngine; it consults the index-scan
// µEngine's registry for the ordered-scan split.
func NewMergeJoinOp(iscan *IndexScanOp) *MergeJoinOp { return &MergeJoinOp{iscan: iscan} }

// Op implements core.Operator.
func (*MergeJoinOp) Op() plan.OpType { return plan.OpMergeJoin }

// TryShare implements signature-exact sharing (step WoP + replay window).
func (*MergeJoinOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (o *MergeJoinOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.MergeJoin)
	gated := len(pkt.Children) == 2 &&
		(pkt.Children[0].State() == core.PacketGated || pkt.Children[1].State() == core.PacketGated)
	if gated && rt.OSPAllowed(pkt.Query) && !node.OrderedParent {
		if done, err := o.trySplit(rt, pkt, node); done {
			return err
		}
	}
	// Normal evaluation: release gated children (late activation) and merge.
	for _, c := range pkt.Children {
		rt.Activate(c)
	}
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	if err := mergeJoin(newCursor(pkt.Inputs[0]), newCursor(pkt.Inputs[1]), node.LKey, node.RKey, em); err != nil {
		return emitResult(err)
	}
	return emitResult(em.flush())
}

// splitCandidate finds a gated ordered clustered full scan child with an
// in-progress host scan, returning its index and progress.
func (o *MergeJoinOp) splitCandidate(node *plan.MergeJoin, pkt *core.Packet) (idx int, is *plan.IndexScan, pos, total int64, ok bool) {
	for i, c := range node.Children() {
		cis, isScan := c.(*plan.IndexScan)
		if !isScan || !cis.Clustered || !cis.Ordered || cis.Lo.IsValid() || cis.Hi.IsValid() {
			continue
		}
		if pkt.Children[i].State() != core.PacketGated {
			continue
		}
		p, t, live := o.iscan.ScanProgress(cis.Table, cis.Col)
		if live {
			return i, cis, p, t, true
		}
	}
	return 0, nil, 0, 0, false
}

// otherSideCost estimates the page count of re-reading the non-shared input
// once more (the split's worst-case added cost).
func (o *MergeJoinOp) otherSideCost(rt *core.Runtime, other plan.Node) int64 {
	switch n := other.(type) {
	case *plan.TableScan:
		if tb, err := rt.SM.Table(n.Table); err == nil {
			return tb.Heap.NumPages()
		}
	case *plan.IndexScan:
		if tb, err := rt.SM.Table(n.Table); err == nil {
			if n.Clustered && tb.Clustered != nil {
				return tb.Clustered.NumPages()
			}
			return tb.Heap.NumPages()
		}
	}
	// Non-scan input (e.g. a sort): treat as expensive — do not split.
	return 1 << 40
}

// trySplit attempts the two-packet evaluation. Returns done=true when the
// split ran (err carries its outcome); done=false falls back to normal
// evaluation.
func (o *MergeJoinOp) trySplit(rt *core.Runtime, pkt *core.Packet, node *plan.MergeJoin) (bool, error) {
	idx, sharedScan, pos, total, ok := o.splitCandidate(node, pkt)
	if !ok {
		return false, nil
	}
	otherNode := node.Children()[1-idx]
	// Cost check (§4.3.2): sharing saves re-reading the suffix of the
	// shared relation but costs one extra read of the non-shared relation.
	saved := total - pos
	if saved <= o.otherSideCost(rt, otherNode) {
		return false, nil
	}

	q := pkt.Query
	// Attach the suffix consumer to the in-progress scan.
	sufPkt, sufBuf := rt.NewInternalPacket(q, sharedScan)
	start, attached := o.iscan.AttachOrderedSuffix(sharedScan.Table, sharedScan.Col, sufPkt, sharedScan.Filter, sharedScan.Project)
	if !attached {
		sufPkt.Discard()
		return false, nil
	}
	rt.NoteShare(plan.OpMergeJoin)
	q.Stats.SatelliteAttaches.Add(1)
	// The original gated children are replaced entirely.
	for _, c := range pkt.Children {
		c.Discard()
	}

	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	// Packet 1: suffix of the shared relation ⋈ fresh read of the other.
	other1, _ := rt.DispatchSubtree(q, otherNode)
	err1 := o.mergeSides(idx, sufBuf, other1, node, em)
	// Whatever the outcome, release producers still feeding these buffers.
	sufBuf.Abandon()
	other1.Abandon()
	if err1 != nil {
		return true, emitResult(err1)
	}
	// Packet 2: the missed prefix (leaves [0, start)) ⋈ the other side
	// again (the worst-case second read the cost model accounted for).
	prefix := *sharedScan
	prefix.LeafFrom, prefix.LeafTo = 0, int(start)
	prefixBuf, _ := rt.DispatchSubtree(q, &prefix)
	other2, _ := rt.DispatchSubtree(q, otherNode)
	err2 := o.mergeSides(idx, prefixBuf, other2, node, em)
	prefixBuf.Abandon()
	other2.Abandon()
	if err2 != nil {
		return true, emitResult(err2)
	}
	return true, emitResult(em.flush())
}

// mergeSides runs one merge placing the shared stream on the correct side.
func (o *MergeJoinOp) mergeSides(sharedIdx int, shared, other *tbuf.Buffer, node *plan.MergeJoin, em *emitter) error {
	if sharedIdx == 0 {
		return mergeJoin(newCursor(shared), newCursor(other), node.LKey, node.RKey, em)
	}
	return mergeJoin(newCursor(other), newCursor(shared), node.LKey, node.RKey, em)
}

// mergeJoin is the standard ordered merge with duplicate-group handling.
// Join rows carve from an arena (one chunk allocation per ~few thousand
// values instead of one per output row).
func mergeJoin(l, r *cursor, lkey, rkey int, em *emitter) error {
	var arena tuple.RowArena
	for {
		lt, lok, err := l.peek()
		if err != nil {
			return err
		}
		rtup, rok, err := r.peek()
		if err != nil {
			return err
		}
		if !lok || !rok {
			return nil
		}
		c := tuple.Compare(lt[lkey], rtup[rkey])
		switch {
		case c < 0:
			if _, _, err := l.next(); err != nil {
				return err
			}
		case c > 0:
			if _, _, err := r.next(); err != nil {
				return err
			}
		default:
			key := lt[lkey]
			var lg, rg []tuple.Tuple
			for {
				t, ok, err := l.peek()
				if err != nil {
					return err
				}
				if !ok || !tuple.Equal(t[lkey], key) {
					break
				}
				l.next()
				lg = append(lg, t)
			}
			for {
				t, ok, err := r.peek()
				if err != nil {
					return err
				}
				if !ok || !tuple.Equal(t[rkey], key) {
					break
				}
				r.next()
				rg = append(rg, t)
			}
			for _, a := range lg {
				for _, b := range rg {
					if err := em.add(arena.Concat(a, b)); err != nil {
						return err
					}
				}
			}
		}
	}
}

// ---- Hybrid hash join -----------------------------------------------------------

// hashJoinMaxBuild is the in-memory build limit in tuples; larger builds
// partition to disk.
const hashJoinMaxBuild = 1 << 16

// HashJoinOp is the hybrid-hash-join µEngine.
type HashJoinOp struct{}

// NewHashJoinOp creates the hash-join µEngine implementation.
func NewHashJoinOp() *HashJoinOp { return &HashJoinOp{} }

// Op implements core.Operator.
func (*HashJoinOp) Op() plan.OpType { return plan.OpHashJoin }

// TryShare implements signature-exact sharing. The attach succeeds through
// the entire build phase (full overlap — no output is produced while
// building) and into the probe phase while output fits the replay window
// (step overlap + buffering), reproducing Figure 11's WoP.
func (*HashJoinOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (o *HashJoinOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.HashJoin)
	par := rt.ParallelismFor(pkt.Query, node.Parallelism)

	// Build phase: drain the left input. If it stays small, join in memory.
	build := make(map[uint64][]tuple.Tuple)
	nBuild := 0
	lcur := newCursor(pkt.Inputs[0])
	small := true
	var overflow []tuple.Tuple
	for {
		t, ok, err := lcur.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		nBuild++
		if nBuild > hashJoinMaxBuild {
			// Switch to the partitioned path; the rest of the build input
			// is drained there, straight into partition files.
			small = false
			overflow = append(overflow, t)
			break
		}
		h := tuple.Hash1(t, node.LKey)
		build[h] = append(build[h], t)
	}
	if small {
		return o.probeInMemory(rt, pkt, node, build, par)
	}
	return o.partitionedJoin(rt, pkt, node, build, overflow, lcur, par)
}

// probeInMemory streams the probe input against the completed in-memory
// build table. The table is read-only from here on, so parallel probing
// needs no partition affinity: raw input batches are dealt to par
// sub-workers, each probing with its own emitter into the shared output
// port (SharedOut.Put is multi-producer-safe; join output carries no order
// guarantee, and the replay window stays consistent because the produced
// counter and replay append share one critical section — so OSP satellites
// attaching mid-probe still replay exactly what was produced).
func (o *HashJoinOp) probeInMemory(rt *core.Runtime, pkt *core.Packet, node *plan.HashJoin, build map[uint64][]tuple.Tuple, par int) error {
	// Each worker owns an emitter and a row arena (arenas are not
	// goroutine-safe); output rows carve from the arena instead of
	// allocating per match.
	probe := func(em *emitter, arena *tuple.RowArena, t tuple.Tuple) error {
		h := tuple.Hash1(t, node.RKey)
		for _, b := range build[h] {
			if tuple.Equal(b[node.LKey], t[node.RKey]) {
				if err := em.add(arena.Concat(b, t)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if par <= 1 {
		em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
		var arena tuple.RowArena
		rcur := newCursor(pkt.Inputs[1])
		for {
			t, ok, err := rcur.next()
			if err != nil {
				return err
			}
			if !ok {
				return emitResult(em.flush())
			}
			if err := probe(em, &arena, t); err != nil {
				return emitResult(err)
			}
		}
	}
	err := parFeed(subSpawner(rt, plan.OpHashJoin), par, par,
		func(k int, ch <-chan tbuf.Batch) error {
			em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
			var arena tuple.RowArena
			for b := range ch {
				for _, t := range b {
					if err := probe(em, &arena, t); err != nil {
						return err
					}
				}
				pkt.Inputs[1].Recycle(b)
			}
			return em.flush()
		}, feedInput(pkt.Inputs[1]))
	return emitResult(err)
}

// partitionedJoin is the hybrid path: partition 0 of the build side stays
// memory-resident (it is already in `build`), the rest spills; the probe
// side joins partition 0 on the fly while spilling the others; remaining
// partitions then join pairwise from disk.
//
// With par > 1 every phase fans out to join sub-workers. The spill phases
// use partition-affine routing (worker k owns partitions p with p%par == k,
// so each spill writer — and the partition-0 memory table, owned by worker
// 0 — has exactly one writing worker), and the disk phase joins each
// worker's partition set independently. Cleanup defers are installed
// immediately after the writers are created: any failure in between (a
// spill write, a close, a routed worker error) must not leak temp files.
func (o *HashJoinOp) partitionedJoin(rt *core.Runtime, pkt *core.Packet, node *plan.HashJoin, mem map[uint64][]tuple.Tuple, overflow []tuple.Tuple, lcur *cursor, par int) error {
	// Spill fan-out for partitions 1..parts. At least 8 (the seed's hybrid
	// fan-out); wider when more workers want distinct partition sets.
	parts := 8
	if par > parts {
		parts = par
	}
	lcols := node.Left.Schema().Len()
	rcols := node.Right.Schema().Len()
	spawn := subSpawner(rt, plan.OpHashJoin)
	lkey, rkey := []int{node.LKey}, []int{node.RKey}

	// Re-partition: the in-memory map keeps only tuples hashing to
	// partition 0; everything else (plus overflow) spills.
	partOf := func(h uint64) int { return int((h >> 32) % uint64(parts+1)) }
	home := func(h uint64) int { return partOf(h) % par }
	buildFiles := make([]*spillWriter, parts+1)
	for i := 1; i <= parts; i++ {
		buildFiles[i] = newSpillWriter(rt.SM.Disk, rt.SM.TempName("hjb"))
	}
	defer func() {
		for i := 1; i <= parts; i++ {
			rt.SM.DropTemp(buildFiles[i].name)
		}
	}()
	mem0 := make(map[uint64][]tuple.Tuple)
	buildOne := func(t tuple.Tuple, h uint64) error {
		p := partOf(h)
		if p == 0 {
			mem0[h] = append(mem0[h], t)
			return nil
		}
		return buildFiles[p].add(t)
	}
	// feedBuild replays the tuples hashed so far (their hash is the map
	// key) and drains the rest of the build input.
	feedBuild := func(emit func(tuple.Tuple, uint64) error) error {
		for h, bucket := range mem {
			for _, t := range bucket {
				if err := emit(t, h); err != nil {
					return err
				}
			}
		}
		for _, t := range overflow {
			if err := emit(t, tuple.HashAt(t, lkey)); err != nil {
				return err
			}
		}
		for {
			t, ok, err := lcur.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := emit(t, tuple.HashAt(t, lkey)); err != nil {
				return err
			}
		}
	}
	if par <= 1 {
		if err := feedBuild(buildOne); err != nil {
			return err
		}
	} else {
		err := routeAffine(spawn, par, home,
			func(k int, ch <-chan []routed) error {
				for items := range ch {
					for _, it := range items {
						if err := buildOne(it.t, it.h); err != nil {
							return err
						}
					}
				}
				return nil
			}, feedBuild)
		if err != nil {
			return err
		}
	}
	for i := 1; i <= parts; i++ {
		if _, err := buildFiles[i].close(); err != nil {
			return err
		}
	}

	// Probe: join partition 0 immediately (against the worker-0-owned
	// memory table), spill the rest.
	probeFiles := make([]*spillWriter, parts+1)
	for i := 1; i <= parts; i++ {
		probeFiles[i] = newSpillWriter(rt.SM.Disk, rt.SM.TempName("hjp"))
	}
	defer func() {
		for i := 1; i <= parts; i++ {
			rt.SM.DropTemp(probeFiles[i].name)
		}
	}()
	probeOne := func(em *emitter, arena *tuple.RowArena, t tuple.Tuple, h uint64) error {
		p := partOf(h)
		if p == 0 {
			for _, b := range mem0[h] {
				if tuple.Equal(b[node.LKey], t[node.RKey]) {
					if err := em.add(arena.Concat(b, t)); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return probeFiles[p].add(t)
	}
	feedProbe := func(emit func(tuple.Tuple, uint64) error) error {
		rcur := newCursor(pkt.Inputs[1])
		for {
			t, ok, err := rcur.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := emit(t, tuple.HashAt(t, rkey)); err != nil {
				return err
			}
		}
	}
	if par <= 1 {
		em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
		var arena tuple.RowArena
		if err := feedProbe(func(t tuple.Tuple, h uint64) error { return probeOne(em, &arena, t, h) }); err != nil {
			return emitResult(err)
		}
		if err := em.flush(); err != nil {
			return emitResult(err)
		}
	} else {
		err := routeAffine(spawn, par, home,
			func(k int, ch <-chan []routed) error {
				em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
				var arena tuple.RowArena
				for items := range ch {
					for _, it := range items {
						if err := probeOne(em, &arena, it.t, it.h); err != nil {
							return err
						}
					}
				}
				return em.flush()
			}, feedProbe)
		if err != nil {
			return emitResult(err)
		}
	}
	for i := 1; i <= parts; i++ {
		if _, err := probeFiles[i].close(); err != nil {
			return err
		}
	}

	// Per-partition joins from disk: fully independent, so worker k joins
	// its own partition set back to back.
	joinPart := func(em *emitter, arena *tuple.RowArena, i int) error {
		table := make(map[uint64][]tuple.Tuple)
		br := newSpillReader(rt.SM.Disk, buildFiles[i].name, lcols)
		for {
			t, ok, err := br.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			h := tuple.HashAt(t, lkey)
			table[h] = append(table[h], t)
		}
		pr := newSpillReader(rt.SM.Disk, probeFiles[i].name, rcols)
		for {
			t, ok, err := pr.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			h := tuple.HashAt(t, rkey)
			for _, b := range table[h] {
				if tuple.Equal(b[node.LKey], t[node.RKey]) {
					if err := em.add(arena.Concat(b, t)); err != nil {
						return err
					}
				}
			}
		}
	}
	err := fanOut(spawn, par, func(k int) error {
		em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
		var arena tuple.RowArena
		for i := k + 1; i <= parts; i += par {
			// A cancelled query must not grind through the remaining
			// partition files; OSP-cancelled packets (flag only, live query)
			// stop through the port instead.
			if cerr := pkt.Query.CancelErr(); cerr != nil {
				return cerr
			}
			if err := joinPart(em, &arena, i); err != nil {
				return err
			}
		}
		return em.flush()
	})
	return emitResult(err)
}

// ---- Nested-loop join -----------------------------------------------------------

// NLJoinOp is the nested-loop join µEngine (step overlap).
type NLJoinOp struct{}

// NewNLJoinOp creates the nested-loop-join µEngine implementation.
func NewNLJoinOp() *NLJoinOp { return &NLJoinOp{} }

// Op implements core.Operator.
func (*NLJoinOp) Op() plan.OpType { return plan.OpNLJoin }

// TryShare implements signature-exact sharing.
func (*NLJoinOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator: the inner (right) input is materialized in
// memory, the outer streams.
func (*NLJoinOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.NLJoin)
	inner, err := drainAll(pkt.Inputs[1])
	if err != nil {
		return err
	}
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	var arena tuple.RowArena
	lcur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := lcur.next()
		if err != nil {
			return err
		}
		if !ok {
			return emitResult(em.flush())
		}
		for _, in := range inner {
			joined := arena.Concat(t, in)
			if node.Pred == nil || node.Pred.Test(joined) {
				if err := em.add(joined); err != nil {
					return emitResult(err)
				}
			}
		}
	}
}

var _ interface {
	core.Operator
	core.Sharer
} = (*MergeJoinOp)(nil)
var _ interface {
	core.Operator
	core.Sharer
} = (*HashJoinOp)(nil)
var _ interface {
	core.Operator
	core.Sharer
} = (*NLJoinOp)(nil)
