// Operator-set assembly.
package ops

import "qpipe/internal/core"

// All returns the full µEngine operator set of the QPipe prototype (§4.4):
// table scan (with circular-scan sharing), index scan (clustered and
// unclustered), filter, project, sort, merge join (with ordered-scan
// split), hybrid hash join, nested-loop join, scalar aggregate, hash
// group-by, and the no-OSP update engine.
func All() []core.Operator {
	iscan := NewIndexScanOp()
	return []core.Operator{
		NewTableScanOp(),
		iscan,
		NewFilterOp(),
		NewProjectOp(),
		NewSortOp(),
		NewMergeJoinOp(iscan),
		NewHashJoinOp(),
		NewNLJoinOp(),
		NewAggregateOp(),
		NewGroupByOp(),
		NewUpdateOp(),
	}
}
