package ops

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func testSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("k", tuple.KindInt),
		tuple.Col("g", tuple.KindInt),
		tuple.Col("v", tuple.KindFloat),
	)
}

func newRT(t *testing.T, n int, cfg core.Config) *core.Runtime {
	t.Helper()
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 1024}, PoolPages: 32})
	if _, err := mgr.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.I64(int64(i)), tuple.I64(int64(i % 7)), tuple.F64(float64(i))}
	}
	if err := mgr.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(mgr, cfg, All())
	t.Cleanup(rt.Close)
	return rt
}

func runPlan(t *testing.T, rt *core.Runtime, p plan.Node) []tuple.Tuple {
	t.Helper()
	q, err := rt.Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var out []tuple.Tuple
	for {
		b, err := q.Result.Get()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCursorPeekNext(t *testing.T) {
	b := tbuf.New(4)
	b.Put(tbuf.Batch{{tuple.I64(1)}, {tuple.I64(2)}})
	b.Close(nil)
	c := newCursor(b)
	p1, ok, err := c.peek()
	if err != nil || !ok || p1[0].I != 1 {
		t.Fatalf("peek: %v %v %v", p1, ok, err)
	}
	// Peek is idempotent.
	p2, _, _ := c.peek()
	if p2[0].I != 1 {
		t.Fatal("peek consumed")
	}
	n1, _, _ := c.next()
	n2, _, _ := c.next()
	if n1[0].I != 1 || n2[0].I != 2 {
		t.Fatalf("next: %v %v", n1, n2)
	}
	if _, ok, _ := c.next(); ok {
		t.Fatal("next past EOF")
	}
}

func TestEmitterBatching(t *testing.T) {
	b := tbuf.New(64)
	so := tbuf.NewSharedOut(b, -1)
	em := &emitter{out: so, size: 3} // no packet: batching only, Put never fails
	for i := 0; i < 7; i++ {
		if err := em.add(tuple.Tuple{tuple.I64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := em.flush(); err != nil {
		t.Fatal(err)
	}
	so.Close(nil)
	var sizes []int
	for {
		batch, err := b.Get()
		if err == io.EOF {
			break
		}
		sizes = append(sizes, len(batch))
	}
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("batch sizes: %v", sizes)
	}
}

func TestScanOrderedVsUnordered(t *testing.T) {
	rt := newRT(t, 500, core.DefaultConfig())
	ordered := runPlan(t, rt, plan.NewTableScan("t", testSchema(), nil, nil, true))
	if len(ordered) != 500 {
		t.Fatalf("ordered scan rows: %d", len(ordered))
	}
	for i := range ordered {
		if ordered[i][0].I != int64(i) {
			t.Fatalf("ordered scan out of order at %d: %v", i, ordered[i])
		}
	}
	unordered := runPlan(t, rt, plan.NewTableScan("t", testSchema(), nil, nil, false))
	if len(unordered) != 500 {
		t.Fatalf("unordered scan rows: %d", len(unordered))
	}
}

func TestSortDescending(t *testing.T) {
	rt := newRT(t, 200, core.DefaultConfig())
	scan := plan.NewTableScan("t", testSchema(), nil, nil, false)
	rows := runPlan(t, rt, plan.NewSort(scan, []int{0}, true))
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].I < rows[i][0].I {
			t.Fatalf("descending sort violated at %d", i)
		}
	}
}

func TestSortExternalRuns(t *testing.T) {
	// More rows than sortRunSize forces multi-run external merge.
	rt := newRT(t, sortRunSize+2500, core.DefaultConfig())
	scan := plan.NewTableScan("t", testSchema(), nil, nil, false)
	rows := runPlan(t, rt, plan.NewSort(scan, []int{2}, false))
	if len(rows) != sortRunSize+2500 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][2].F > rows[i][2].F {
			t.Fatalf("external sort out of order at %d", i)
		}
	}
}

func TestSortFileReuseSatellite(t *testing.T) {
	// A second identical sort arriving during the host's emit phase must
	// reuse the materialized sorted file (phase-2 materialization reuse).
	rt := newRT(t, 3000, core.DefaultConfig())
	mgr := rt.SM
	mgr.Disk.SetLatency(30*time.Microsecond, 30*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)
	mk := func() plan.Node {
		return plan.NewSort(plan.NewTableScan("t", testSchema(), nil, nil, false), []int{0}, false)
	}
	q1, err := rt.Submit(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	// Consume a little of q1's output so the sort is in phase 2 with
	// produced tuples beyond the replay window.
	consumed := int64(0)
	for consumed < 2000 {
		b, err := q1.Result.Get()
		if err != nil {
			t.Fatal(err)
		}
		consumed += int64(len(b))
	}
	q2, err := rt.Submit(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	n2, err := q2.Result.Drain()
	if err != nil || n2 != 3000 {
		t.Fatalf("satellite rows: %d %v", n2, err)
	}
	rest, err := q1.Result.Drain()
	if err != nil || consumed+rest != 3000 {
		t.Fatalf("host rows: %d %v", consumed+rest, err)
	}
	if err := q2.Wait(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().SharesByOp[plan.OpSort] != 1 {
		t.Fatalf("sort shares: %v", rt.Stats().SharesByOp)
	}
	// Temp files must be cleaned up after both finish.
	q1.Wait()
}

func TestHashJoinPartitionedPath(t *testing.T) {
	// Build side above hashJoinMaxBuild forces the hybrid partitioned path.
	n := hashJoinMaxBuild + 3000
	rt := newRT(t, n, core.DefaultConfig())
	l := plan.NewTableScan("t", testSchema(), nil, []int{0}, false)
	r := plan.NewTableScan("t", testSchema(), expr.LT(expr.Col(0), expr.CInt(100)), []int{0}, false)
	j := plan.NewHashJoin(l, r, 0, 0)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	rows := runPlan(t, rt, agg)
	if rows[0][0].I != 100 {
		t.Fatalf("partitioned join count: %v, want 100", rows[0][0])
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	rt := newRT(t, 100, core.DefaultConfig())
	scan := plan.NewTableScan("t", testSchema(), expr.LT(expr.Col(0), expr.CInt(-1)), nil, false)
	rows := runPlan(t, rt, plan.NewGroupBy(scan, []int{1}, []expr.AggSpec{{Kind: expr.AggCount}}))
	if len(rows) != 0 {
		t.Fatalf("groupby of empty input: %d rows", len(rows))
	}
	// Aggregate of empty input still emits one row.
	rows = runPlan(t, rt, plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}}))
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("aggregate of empty input: %v", rows)
	}
}

func TestCircularScanManyConsumers(t *testing.T) {
	// Several staggered scans share one scanner; each must still see every
	// row exactly once.
	rt := newRT(t, 4000, core.DefaultConfig())
	rt.SM.Disk.SetLatency(20*time.Microsecond, 30*time.Microsecond, 0)
	defer rt.SM.Disk.SetLatency(0, 0, 0)
	const clients = 5
	type result struct {
		n   int64
		err error
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		// Different predicates -> page-level sharing only.
		pred := expr.GE(expr.Col(0), expr.CInt(int64(i)))
		p := plan.NewAggregate(
			plan.NewTableScan("t", testSchema(), pred, nil, false),
			[]expr.AggSpec{{Kind: expr.AggCount}})
		q, err := rt.Submit(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			b, err := q.Result.Get()
			if err != nil {
				results <- result{0, err}
				return
			}
			q.Result.Drain()
			results <- result{b[0][0].I, q.Wait()}
		}()
		time.Sleep(3 * time.Millisecond)
	}
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		// Each count must be exactly 4000 - pred_i... collect and check set.
		if r.n < 4000-int64(clients) || r.n > 4000 {
			t.Fatalf("consumer count out of range: %d", r.n)
		}
	}
}

func TestMergeJoinDuplicateGroups(t *testing.T) {
	rt := newRT(t, 70, core.DefaultConfig())
	// Join on g (7 groups of 10): 7 * 10 * 10 = 700 rows.
	l := plan.NewSort(plan.NewTableScan("t", testSchema(), nil, []int{1, 0}, false), []int{0}, false)
	r := plan.NewSort(plan.NewTableScan("t", testSchema(), nil, []int{1, 2}, false), []int{0}, false)
	j := plan.NewMergeJoin(l, r, 0, 0, false)
	rows := runPlan(t, rt, plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}}))
	if rows[0][0].I != 700 {
		t.Fatalf("merge join with dups: %v, want 700", rows[0][0])
	}
}

func TestUpdateSerializedAgainstScan(t *testing.T) {
	rt := newRT(t, 300, core.DefaultConfig())
	// Run a slow scan concurrently with updates; counts must be consistent
	// (either before or after the inserts, never torn).
	var inserted []tuple.Tuple
	for i := 0; i < 50; i++ {
		inserted = append(inserted, tuple.Tuple{tuple.I64(int64(10000 + i)), tuple.I64(0), tuple.F64(0)})
	}
	upQ, err := rt.Submit(context.Background(), plan.NewUpdate("t", inserted))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upQ.Result.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := upQ.Wait(); err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, rt, plan.NewAggregate(
		plan.NewTableScan("t", testSchema(), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	if rows[0][0].I != 350 {
		t.Fatalf("count after update: %v", rows[0][0])
	}
}

func TestApplyFilterProjectLease(t *testing.T) {
	// Under the lease protocol rows are shared by reference (they are
	// immutable once published), but the output array must be distinct from
	// the input's so each consumer advances and recycles independently.
	in := []tuple.Tuple{{tuple.I64(1), tuple.I64(2)}}
	out := applyFilterProject(in, nil, nil, nil)
	if len(out) != 1 || &out[0][0] != &in[0][0] {
		t.Fatal("unprojected rows should pass through by reference")
	}
	out[0] = tuple.Tuple{tuple.I64(99)}
	if in[0][0].I != 1 {
		t.Fatal("output array must not alias the input array")
	}
	filtered := applyFilterProject(in, expr.EQ(expr.Col(0), expr.CInt(5)), nil, nil)
	if len(filtered) != 0 {
		t.Fatal("filter not applied")
	}
	proj := applyFilterProject(in, nil, []int{1}, nil)
	if len(proj[0]) != 1 || proj[0][0].I != 2 {
		t.Fatalf("projection: %v", proj)
	}
	// Projection rows are fresh (arena-carved), never views of the input.
	proj[0][0] = tuple.I64(7)
	if in[0][1].I != 2 {
		t.Fatal("projected row aliases the input tuple")
	}
}

func TestSpillRoundTrip(t *testing.T) {
	d := disk.New(disk.Config{BlockSize: 512})
	w := newSpillWriter(d, "spill")
	const n = 300
	for i := 0; i < n; i++ {
		if err := w.add(tuple.Tuple{tuple.I64(int64(i)), tuple.Str(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	total, err := w.close()
	if err != nil || total != n {
		t.Fatalf("close: %d %v", total, err)
	}
	r := newSpillReader(d, "spill", 2)
	for i := 0; i < n; i++ {
		tp, ok, err := r.next()
		if err != nil || !ok || tp[0].I != int64(i) {
			t.Fatalf("read %d: %v %v %v", i, tp, ok, err)
		}
	}
	if _, ok, _ := r.next(); ok {
		t.Fatal("reader should be exhausted")
	}
}

func TestOSPOffScanIndependence(t *testing.T) {
	rt := newRT(t, 1000, core.BaselineConfig())
	rt.SM.Disk.ResetStats()
	p1 := runPlan(t, rt, plan.NewAggregate(
		plan.NewTableScan("t", testSchema(), nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	if p1[0][0].I != 1000 {
		t.Fatal("count")
	}
	if rt.TotalShares() != 0 {
		t.Fatal("baseline must not share")
	}
}
