// The sort µEngine: external merge sort with materialized sorted output.
//
// Phase structure follows the paper's treatment of sort as a two-phase
// operator (§3.2): phase 1 (consume input, sort runs, merge to a sorted
// temp file) is a *full* overlap — identical packets attach at any point —
// and phase 2 (streaming the sorted file to the parent) offers the
// *materialization* enhancement: a late-arriving identical sort reuses the
// host's sorted file instead of re-sorting ("one query may have already
// sorted a file that another query is about to start sorting; by monitoring
// the sort operator we can detect this overlap and reuse the sorted file").
package ops

import (
	"container/heap"
	"errors"
	"sort"
	"sync"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// sortRunSize is the number of tuples sorted in memory per spilled run.
const sortRunSize = 16384

// sortState tracks a host packet's materialized output for phase-2 reuse.
type sortState struct {
	mu        sync.Mutex
	fileReady bool
	fileName  string
	ncols     int
	readers   int
	hostDone  bool
	dropped   bool
}

// SortOp is the sort µEngine implementation.
type SortOp struct {
	mu     sync.Mutex
	states map[int64]*sortState // host packet ID -> state
}

// NewSortOp creates the sort µEngine implementation.
func NewSortOp() *SortOp { return &SortOp{states: make(map[int64]*sortState)} }

// Op implements core.Operator.
func (*SortOp) Op() plan.OpType { return plan.OpSort }

// TryShare implements the sort µEngine's sharing mechanism. During phase 1
// the default attach succeeds (no output yet). During phase 2 the satellite
// reuses the host's materialized sorted file, streamed by a dedicated
// goroutine; the satellite skips the entire sort cost.
func (o *SortOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	if defaultTryShare(host, sat) {
		return true
	}
	o.mu.Lock()
	st := o.states[host.ID]
	o.mu.Unlock()
	if st == nil {
		return false
	}
	st.mu.Lock()
	if !st.fileReady || st.dropped {
		st.mu.Unlock()
		return false
	}
	st.readers++
	st.mu.Unlock()
	// The satellite is fed by the file streamer, not the host's port, so it
	// is deliberately NOT on the host's satellite list — the host finishing
	// (or dying) mid-stream must not complete it out from under the
	// streamer. Record the sharing stats AbsorbSatellite would have.
	host.Query.Stats.HostedSatellites.Add(1)
	sat.Query.Stats.SatelliteAttaches.Add(1)

	go func() {
		err := o.streamFile(rt, st, sat)
		sat.Complete(err)
		st.mu.Lock()
		st.readers--
		drop := st.hostDone && st.readers == 0 && !st.dropped
		if drop {
			st.dropped = true
		}
		st.mu.Unlock()
		if drop {
			o.drop(rt, host.ID, st)
		}
	}()
	return true
}

func (o *SortOp) streamFile(rt *core.Runtime, st *sortState, sat *core.Packet) error {
	n := int64(rt.SM.Disk.NumBlocks(st.fileName))
	for pno := int64(0); pno < n; pno++ {
		if sat.Cancelled() {
			// A genuinely cancelled satellite must finish with the
			// cancellation error, not a clean EOF over truncated results;
			// an OSP-cancelled one (flag only, live query) stops clean.
			return sat.Query.CancelErr()
		}
		rows, err := readSpillPage(rt.SM.Disk, st.fileName, st.ncols, pno)
		if err != nil {
			return err
		}
		if err := sat.Out.Put(rows); err != nil {
			if errors.Is(err, tbuf.ErrConsumersGone) {
				return sat.Query.CancelErr()
			}
			return err
		}
	}
	return nil
}

func (o *SortOp) drop(rt *core.Runtime, hostID int64, st *sortState) {
	rt.SM.DropTemp(st.fileName)
	o.mu.Lock()
	delete(o.states, hostID)
	o.mu.Unlock()
}

// Run implements core.Operator.
func (o *SortOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Sort)
	ncols := node.Schema().Len()
	less := func(a, b tuple.Tuple) bool {
		c := tuple.CompareAt(a, b, node.Keys)
		if node.Desc {
			return c > 0
		}
		return c < 0
	}

	// Phase 1a: consume input into sorted runs spilled to temp files. The
	// cleanup defer is installed before the first run spills, and each run's
	// name registers before its first write, so a failed write or close (or
	// an input error mid-run) can never leak the temp files written so far.
	var runNames []string
	defer func() {
		for _, name := range runNames {
			rt.SM.DropTemp(name)
		}
	}()
	var run []tuple.Tuple
	spillRun := func() error {
		if len(run) == 0 {
			return nil
		}
		sort.SliceStable(run, func(i, j int) bool { return less(run[i], run[j]) })
		name := rt.SM.TempName("sortrun")
		runNames = append(runNames, name)
		w := newSpillWriter(rt.SM.Disk, name)
		for _, t := range run {
			if err := w.add(t); err != nil {
				return err
			}
		}
		if _, err := w.close(); err != nil {
			return err
		}
		run = run[:0]
		return nil
	}
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		run = append(run, t)
		if len(run) >= sortRunSize {
			if err := spillRun(); err != nil {
				return err
			}
		}
	}
	if err := spillRun(); err != nil {
		return err
	}

	// Phase 1b: merge runs into the materialized sorted file. Until its
	// ownership passes to the sortState (whose reader-counted teardown drops
	// it), any error path must drop the file itself.
	outName := rt.SM.TempName("sorted")
	registered := false
	defer func() {
		if !registered {
			rt.SM.DropTemp(outName)
		}
	}()
	w := newSpillWriter(rt.SM.Disk, outName)
	if err := o.mergeRuns(rt, runNames, ncols, less, w); err != nil {
		return err
	}
	if _, err := w.close(); err != nil {
		return err
	}
	st := &sortState{fileReady: true, fileName: outName, ncols: ncols}
	registered = true
	o.mu.Lock()
	o.states[pkt.ID] = st
	o.mu.Unlock()
	defer func() {
		st.mu.Lock()
		st.hostDone = true
		drop := st.readers == 0 && !st.dropped
		if drop {
			st.dropped = true
		}
		st.mu.Unlock()
		if drop {
			o.drop(rt, pkt.ID, st)
		}
	}()

	// Phase 2: stream the sorted file (linear overlap; late arrivals read
	// the same file through TryShare instead). A cancelled host with live
	// phase-1 satellites keeps streaming: the satellites hold the prefix
	// already produced, so they cannot be rescued by re-dispatch, and the
	// host's cancellation (a satisfied LIMIT on its own result) is not
	// theirs — they need the rest of the file.
	n := int64(rt.SM.Disk.NumBlocks(outName))
	for pno := int64(0); pno < n; pno++ {
		if pkt.Cancelled() && !pkt.HasLiveSatellites() {
			if cerr := pkt.Query.CancelErr(); cerr != nil {
				return cerr
			}
			return nil
		}
		rows, err := readSpillPage(rt.SM.Disk, outName, ncols, pno)
		if err != nil {
			return err
		}
		if err := pkt.Out.Put(rows); err != nil {
			if errors.Is(err, tbuf.ErrConsumersGone) {
				if cerr := pkt.Query.CancelErr(); cerr != nil {
					return cerr
				}
				return nil
			}
			return err
		}
	}
	return nil
}

// mergeItem is one head-of-run entry in the k-way merge heap.
type mergeItem struct {
	t   tuple.Tuple
	src int
}

type mergeHeap struct {
	items []mergeItem
	less  func(a, b tuple.Tuple) bool
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.less(h.items[i].t, h.items[j].t) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return it
}

func (o *SortOp) mergeRuns(rt *core.Runtime, runNames []string, ncols int, less func(a, b tuple.Tuple) bool, w *spillWriter) error {
	readers := make([]*spillReader, len(runNames))
	h := &mergeHeap{less: less}
	for i, name := range runNames {
		readers[i] = newSpillReader(rt.SM.Disk, name, ncols)
		t, ok, err := readers[i].next()
		if err != nil {
			return err
		}
		if ok {
			h.items = append(h.items, mergeItem{t: t, src: i})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := heap.Pop(h).(mergeItem)
		if err := w.add(it.t); err != nil {
			return err
		}
		t, ok, err := readers[it.src].next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, mergeItem{t: t, src: it.src})
		}
	}
	return nil
}

var _ interface {
	core.Operator
	core.Sharer
} = (*SortOp)(nil)
