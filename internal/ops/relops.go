// Pass-through µEngines (filter, project), aggregation µEngines (scalar
// aggregate: full overlap; hash group-by: step overlap) and the update
// µEngine (no OSP, table X locks — paper §4.3.4).
package ops

import (
	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/lock"
	"qpipe/internal/tuple"
)

// FilterOp drops tuples failing its predicate.
type FilterOp struct{}

// NewFilterOp creates the filter µEngine implementation.
func NewFilterOp() *FilterOp { return &FilterOp{} }

// Op implements core.Operator.
func (*FilterOp) Op() plan.OpType { return plan.OpFilter }

// TryShare implements signature-exact sharing.
func (*FilterOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*FilterOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Filter)
	em := newEmitter(pkt.Out, rt.BatchSize())
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			return em.flush()
		}
		if node.Pred.Test(t) {
			if err := em.add(t); err != nil {
				return nil // all consumers gone
			}
		}
	}
}

// ProjectOp evaluates output expressions per input tuple.
type ProjectOp struct{}

// NewProjectOp creates the project µEngine implementation.
func NewProjectOp() *ProjectOp { return &ProjectOp{} }

// Op implements core.Operator.
func (*ProjectOp) Op() plan.OpType { return plan.OpProject }

// TryShare implements signature-exact sharing.
func (*ProjectOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*ProjectOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Project)
	em := newEmitter(pkt.Out, rt.BatchSize())
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			return em.flush()
		}
		out := make(tuple.Tuple, len(node.Exprs))
		for i, e := range node.Exprs {
			out[i] = e.Eval(t)
		}
		if err := em.add(out); err != nil {
			return nil
		}
	}
}

// AggregateOp computes scalar aggregates — the canonical full-overlap
// operator: it emits nothing until the very end, so an identical packet can
// attach at any point of its lifetime and save 100% of the work.
type AggregateOp struct{}

// NewAggregateOp creates the scalar-aggregate µEngine implementation.
func NewAggregateOp() *AggregateOp { return &AggregateOp{} }

// Op implements core.Operator.
func (*AggregateOp) Op() plan.OpType { return plan.OpAggregate }

// TryShare implements signature-exact sharing (full WoP).
func (*AggregateOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*AggregateOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Aggregate)
	states := make([]*expr.AggState, len(node.Specs))
	for i, s := range node.Specs {
		states[i] = expr.NewAggState(s)
	}
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, st := range states {
			st.Add(t)
		}
	}
	row := make(tuple.Tuple, len(states))
	for i, st := range states {
		row[i] = st.Result()
	}
	return pkt.Out.Put(tbufBatch(row))
}

// GroupByOp computes hash-grouped aggregates (step overlap: attachable
// until results start flowing; the burst emit at the end plus the replay
// window give satellites nearly the whole lifetime in practice, which is
// the paper's "buffering can significantly increase the WoP for group-by").
type GroupByOp struct{}

// NewGroupByOp creates the hash group-by µEngine implementation.
func NewGroupByOp() *GroupByOp { return &GroupByOp{} }

// Op implements core.Operator.
func (*GroupByOp) Op() plan.OpType { return plan.OpGroupBy }

// TryShare implements signature-exact sharing.
func (*GroupByOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*GroupByOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.GroupBy)
	type group struct {
		key    tuple.Tuple
		states []*expr.AggState
	}
	groups := make(map[uint64][]*group)
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h := tuple.HashAt(t, node.Keys)
		var g *group
		for _, cand := range groups[h] {
			match := true
			for i, k := range node.Keys {
				if !tuple.Equal(cand.key[i], t[k]) {
					match = false
					break
				}
			}
			if match {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{key: t.Project(node.Keys), states: make([]*expr.AggState, len(node.Specs))}
			for i, s := range node.Specs {
				g.states[i] = expr.NewAggState(s)
			}
			groups[h] = append(groups[h], g)
		}
		for _, st := range g.states {
			st.Add(t)
		}
	}
	em := newEmitter(pkt.Out, rt.BatchSize())
	for _, bucket := range groups {
		for _, g := range bucket {
			row := make(tuple.Tuple, 0, len(g.key)+len(g.states))
			row = append(row, g.key...)
			for _, st := range g.states {
				row = append(row, st.Result())
			}
			if err := em.add(row); err != nil {
				return nil
			}
		}
	}
	return em.flush()
}

// UpdateOp inserts rows under a table X lock. It deliberately implements
// neither Sharer nor Admitter: update packets are never shared.
type UpdateOp struct{}

// NewUpdateOp creates the update µEngine implementation.
func NewUpdateOp() *UpdateOp { return &UpdateOp{} }

// Op implements core.Operator.
func (*UpdateOp) Op() plan.OpType { return plan.OpUpdate }

// Run implements core.Operator.
func (*UpdateOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Update)
	if err := rt.SM.Locks.Lock(pkt.Query.Ctx(), node.Table, lock.Exclusive); err != nil {
		return err
	}
	defer rt.SM.Locks.Unlock(node.Table, lock.Exclusive)
	for _, row := range node.Rows {
		if err := rt.SM.Insert(node.Table, row); err != nil {
			return err
		}
	}
	return pkt.Out.Put(tbufBatch(tuple.Tuple{tuple.I64(int64(len(node.Rows)))}))
}

// tbufBatch wraps a single tuple as a batch.
func tbufBatch(t tuple.Tuple) []tuple.Tuple { return []tuple.Tuple{t} }
