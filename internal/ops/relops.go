// Pass-through µEngines (filter, project), aggregation µEngines (scalar
// aggregate: full overlap; hash group-by: step overlap) and the update
// µEngine (no OSP, table X locks — paper §4.3.4). The aggregation engines
// are intra-operator parallel: input batches deal out to sub-workers that
// accumulate partial aggregate states, merged at the end via AggState.Merge.
package ops

import (
	"context"
	"fmt"

	"qpipe/internal/core"
	"qpipe/internal/core/tbuf"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// FilterOp drops tuples failing its predicate.
type FilterOp struct{}

// NewFilterOp creates the filter µEngine implementation.
func NewFilterOp() *FilterOp { return &FilterOp{} }

// Op implements core.Operator.
func (*FilterOp) Op() plan.OpType { return plan.OpFilter }

// TryShare implements signature-exact sharing.
func (*FilterOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*FilterOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Filter)
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			return emitResult(em.flush())
		}
		if node.Pred.Test(t) {
			if err := em.add(t); err != nil {
				return emitResult(err)
			}
		}
	}
}

// ProjectOp evaluates output expressions per input tuple.
type ProjectOp struct{}

// NewProjectOp creates the project µEngine implementation.
func NewProjectOp() *ProjectOp { return &ProjectOp{} }

// Op implements core.Operator.
func (*ProjectOp) Op() plan.OpType { return plan.OpProject }

// TryShare implements signature-exact sharing.
func (*ProjectOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*ProjectOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Project)
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	var arena tuple.RowArena
	cur := newCursor(pkt.Inputs[0])
	for {
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			return emitResult(em.flush())
		}
		out := arena.Make(len(node.Exprs))
		for i, e := range node.Exprs {
			out[i] = e.Eval(t)
		}
		if err := em.add(out); err != nil {
			return emitResult(err)
		}
	}
}

// AggregateOp computes scalar aggregates — the canonical full-overlap
// operator: it emits nothing until the very end, so an identical packet can
// attach at any point of its lifetime and save 100% of the work. With
// parallelism > 1 input batches deal out to sub-workers accumulating
// partial states, merged before the single-row emit.
type AggregateOp struct{}

// NewAggregateOp creates the scalar-aggregate µEngine implementation.
func NewAggregateOp() *AggregateOp { return &AggregateOp{} }

// Op implements core.Operator.
func (*AggregateOp) Op() plan.OpType { return plan.OpAggregate }

// TryShare implements signature-exact sharing (full WoP).
func (*AggregateOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (*AggregateOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Aggregate)
	par := rt.ParallelismFor(pkt.Query, node.Parallelism)
	newStates := func() []*expr.AggState {
		states := make([]*expr.AggState, len(node.Specs))
		for i, s := range node.Specs {
			states[i] = expr.NewAggState(s)
		}
		return states
	}
	partials := make([][]*expr.AggState, par)
	if par <= 1 {
		partials[0] = newStates()
		cur := newCursor(pkt.Inputs[0])
		for {
			t, ok, err := cur.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			for _, st := range partials[0] {
				st.Add(t)
			}
		}
	} else {
		err := parFeed(subSpawner(rt, plan.OpAggregate), par, par,
			func(k int, ch <-chan tbuf.Batch) error {
				partials[k] = newStates()
				for b := range ch {
					for _, t := range b {
						for _, st := range partials[k] {
							st.Add(t)
						}
					}
					pkt.Inputs[0].Recycle(b)
				}
				return nil
			}, feedInput(pkt.Inputs[0]))
		if err != nil {
			return err
		}
	}
	for k := 1; k < par; k++ {
		for i, st := range partials[0] {
			st.Merge(partials[k][i])
		}
	}
	row := make(tuple.Tuple, len(partials[0]))
	for i, st := range partials[0] {
		row[i] = st.Result()
	}
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	if err := em.add(row); err != nil {
		return emitResult(err)
	}
	return emitResult(em.flush())
}

// group is one aggregation group: its projected key and accumulator states.
type group struct {
	key    tuple.Tuple
	states []*expr.AggState
}

// groupTable is one worker's (partial) hash-grouped aggregation state.
type groupTable struct {
	keys   []int
	specs  []expr.AggSpec
	groups map[uint64][]*group
}

func newGroupTable(keys []int, specs []expr.AggSpec) *groupTable {
	return &groupTable{keys: keys, specs: specs, groups: make(map[uint64][]*group)}
}

// lookupRow finds the group in bucket h whose key matches the input tuple's
// key columns, or nil. (Taking the tuple directly — rather than a per-row
// accessor closure — keeps the per-input-row path allocation-free.)
func (gt *groupTable) lookupRow(h uint64, t tuple.Tuple) *group {
	for _, cand := range gt.groups[h] {
		match := true
		for i, k := range gt.keys {
			if !tuple.Equal(cand.key[i], t[k]) {
				match = false
				break
			}
		}
		if match {
			return cand
		}
	}
	return nil
}

// lookupKey finds the group in bucket h with the given (already projected)
// key, or nil.
func (gt *groupTable) lookupKey(h uint64, key tuple.Tuple) *group {
	for _, cand := range gt.groups[h] {
		match := true
		for i := range gt.keys {
			if !tuple.Equal(cand.key[i], key[i]) {
				match = false
				break
			}
		}
		if match {
			return cand
		}
	}
	return nil
}

// add folds one input tuple into its group, creating the group on first
// sight.
func (gt *groupTable) add(t tuple.Tuple) {
	h := tuple.HashAt(t, gt.keys)
	g := gt.lookupRow(h, t)
	if g == nil {
		g = &group{key: t.Project(gt.keys), states: make([]*expr.AggState, len(gt.specs))}
		for i, s := range gt.specs {
			g.states[i] = expr.NewAggState(s)
		}
		gt.groups[h] = append(gt.groups[h], g)
	}
	for _, st := range g.states {
		st.Add(t)
	}
}

// absorb merges another worker's partial table into gt: groups present in
// both merge state-wise (AggState.Merge combines the accumulators exactly —
// sums add, counts add, min/max compare), groups unique to o transfer
// whole.
func (gt *groupTable) absorb(o *groupTable) {
	for h, bucket := range o.groups {
		for _, og := range bucket {
			g := gt.lookupKey(h, og.key)
			if g == nil {
				gt.groups[h] = append(gt.groups[h], og)
				continue
			}
			for i, st := range g.states {
				st.Merge(og.states[i])
			}
		}
	}
}

// emit streams every group's result row (rows carve from one arena).
func (gt *groupTable) emit(em *emitter) error {
	var arena tuple.RowArena
	for _, bucket := range gt.groups {
		for _, g := range bucket {
			row := arena.Make(len(g.key) + len(g.states))
			copy(row, g.key)
			for i, st := range g.states {
				row[len(g.key)+i] = st.Result()
			}
			if err := em.add(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// GroupByOp computes hash-grouped aggregates (step overlap: attachable
// until results start flowing; the burst emit at the end plus the replay
// window give satellites nearly the whole lifetime in practice, which is
// the paper's "buffering can significantly increase the WoP for group-by").
// With parallelism > 1, sub-workers build partial group tables over dealt
// input batches; the tables merge via AggState.Merge before the burst emit.
type GroupByOp struct{}

// NewGroupByOp creates the hash group-by µEngine implementation.
func NewGroupByOp() *GroupByOp { return &GroupByOp{} }

// Op implements core.Operator.
func (*GroupByOp) Op() plan.OpType { return plan.OpGroupBy }

// TryShare implements signature-exact sharing.
func (*GroupByOp) TryShare(rt *core.Runtime, host, sat *core.Packet) bool {
	return defaultTryShare(host, sat)
}

// Run implements core.Operator.
func (o *GroupByOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.GroupBy)
	par := rt.ParallelismFor(pkt.Query, node.Parallelism)
	tables := make([]*groupTable, par)
	if par <= 1 {
		tables[0] = newGroupTable(node.Keys, node.Specs)
		cur := newCursor(pkt.Inputs[0])
		for {
			t, ok, err := cur.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			tables[0].add(t)
		}
	} else {
		err := parFeed(subSpawner(rt, plan.OpGroupBy), par, par,
			func(k int, ch <-chan tbuf.Batch) error {
				tables[k] = newGroupTable(node.Keys, node.Specs)
				for b := range ch {
					for _, t := range b {
						tables[k].add(t)
					}
					pkt.Inputs[0].Recycle(b)
				}
				return nil
			}, feedInput(pkt.Inputs[0]))
		if err != nil {
			return err
		}
	}
	for k := 1; k < par; k++ {
		tables[0].absorb(tables[k])
	}
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	if err := tables[0].emit(em); err != nil {
		return emitResult(err)
	}
	return emitResult(em.flush())
}

// UpdateOp runs table mutations (INSERT/UPDATE/DELETE) as storage-manager
// transactions. It deliberately implements neither Sharer nor Admitter:
// mutation packets are never shared.
type UpdateOp struct{}

// NewUpdateOp creates the update µEngine implementation.
func NewUpdateOp() *UpdateOp { return &UpdateOp{} }

// Op implements core.Operator.
func (*UpdateOp) Op() plan.OpType { return plan.OpUpdate }

// Run implements core.Operator: stage the mutation in a fresh transaction
// and commit it (the autocommit path — explicit transactions stage through
// StageMutation with the session's transaction instead, bypassing the
// engine).
func (*UpdateOp) Run(rt *core.Runtime, pkt *core.Packet) error {
	node := pkt.Node.(*plan.Update)
	ctx := pkt.Query.Ctx()
	tx := rt.SM.Begin()
	n, err := StageMutation(ctx, tx, node)
	if err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Commit(ctx); err != nil {
		return err
	}
	em := newEmitter(pkt, rt.BatchSizeFor(pkt.Query))
	if err := em.add(tuple.Tuple{tuple.I64(n)}); err != nil {
		return emitResult(err)
	}
	return emitResult(em.flush())
}

// StageMutation stages one plan.Update node's effect into tx, returning the
// number of affected rows. It does not commit — the caller owns the
// transaction (UpdateOp commits immediately; the facade's explicit
// transactions accumulate statements and commit on COMMIT). UPDATE and
// DELETE scan through the transaction's own overlay, so later statements in
// a transaction see earlier ones' effects.
func StageMutation(ctx context.Context, tx *sm.Tx, node *plan.Update) (int64, error) {
	switch node.Kind {
	case plan.MutInsert:
		for _, row := range node.Rows {
			if err := tx.StageInsert(ctx, node.Table, row); err != nil {
				return 0, err
			}
		}
		return int64(len(node.Rows)), nil
	case plan.MutUpdate:
		var n int64
		var stageErr error
		err := tx.ScanEffective(ctx, node.Table, func(rid heap.RID, row tuple.Tuple) bool {
			if node.Where != nil && !node.Where.Test(row) {
				return true
			}
			// All assignments evaluate against the old row (SQL semantics:
			// SET a=b, b=a swaps).
			newRow := row.Clone()
			for _, a := range node.Set {
				newRow[a.Col] = a.E.Eval(row)
			}
			if stageErr = tx.StageUpdate(ctx, node.Table, rid, newRow); stageErr != nil {
				return false
			}
			n++
			return true
		})
		if err == nil {
			err = stageErr
		}
		return n, err
	case plan.MutDelete:
		var n int64
		var stageErr error
		err := tx.ScanEffective(ctx, node.Table, func(rid heap.RID, row tuple.Tuple) bool {
			if node.Where != nil && !node.Where.Test(row) {
				return true
			}
			if stageErr = tx.StageDelete(ctx, node.Table, rid); stageErr != nil {
				return false
			}
			n++
			return true
		})
		if err == nil {
			err = stageErr
		}
		return n, err
	default:
		return 0, fmt.Errorf("ops: unknown mutation kind %v", node.Kind)
	}
}
