// Package tuple defines the value, tuple and schema model shared by the
// storage manager and both execution engines.
//
// Values are small tagged unions (no interface boxing on the hot path),
// tuples are flat slices of values, and schemas carry column names and
// kinds. The package also provides total ordering, equality, hashing and a
// compact binary encoding used by the slotted-page layer.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the supported column types. The set mirrors what the
// QPipe/BerkeleyDB prototype needed for the Wisconsin and TPC-H schemas:
// integers, floats, fixed-point decimals (stored as float64), strings and
// dates (stored as days since epoch in an int64).
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInt          // int64
	KindFloat        // float64
	KindString       // string
	KindDate         // int64 days since 1970-01-01
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return "invalid"
	}
}

// Value is a tagged union holding a single column value.
// The zero Value has KindInvalid and is used to represent NULL-ish holes in
// intermediate results (the paper's workloads never produce SQL NULLs).
type Value struct {
	K Kind
	I int64   // KindInt, KindDate
	F float64 // KindFloat
	S string  // KindString
}

// I64 constructs an integer value.
func I64(v int64) Value { return Value{K: KindInt, I: v} }

// F64 constructs a float value.
func F64(v float64) Value { return Value{K: KindFloat, F: v} }

// Str constructs a string value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// Date constructs a date value from days since epoch.
func Date(days int64) Value { return Value{K: KindDate, I: days} }

// IsValid reports whether the value holds a concrete kind.
func (v Value) IsValid() bool { return v.K != KindInvalid }

// AsFloat coerces numeric values to float64. Strings return 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt coerces numeric values to int64. Strings return 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindDate:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value for debugging and result printing.
func (v Value) String() string {
	switch v.K {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	case KindDate:
		return fmt.Sprintf("d%d", v.I)
	default:
		return "<invalid>"
	}
}

// kindGroup buckets kinds so that all numeric kinds (int/float/date) form a
// single comparison group: invalid < numeric < string. Grouping (rather than
// ordering by raw kind tag) keeps Compare a total preorder — transitivity
// would break if Str("c") < Date(1) by tag while Date(1) < F64(1.5)
// numerically but Str("c") > F64(1.5) by tag.
func kindGroup(k Kind) int {
	switch k {
	case KindInt, KindFloat, KindDate:
		return 1
	case KindString:
		return 2
	default:
		return 0
	}
}

// Compare returns -1, 0 or +1 ordering a before/equal/after b.
// Numeric kinds (int/float/date) compare numerically against each other so
// that predicates over mixed int/float columns behave naturally; all
// numerics order before all strings (transitive total preorder).
func Compare(a, b Value) int {
	an := kindGroup(a.K) == 1
	bn := kindGroup(b.K) == 1
	if an && bn {
		if a.K == KindFloat || b.K == KindFloat {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	ga, gb := kindGroup(a.K), kindGroup(b.K)
	if ga != gb {
		if ga < gb {
			return -1
		}
		return 1
	}
	// Same non-numeric group: only strings (or both invalid) remain.
	return strings.Compare(a.S, b.S)
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Tuple is a flat row of values. Tuples follow the engine's lease protocol
// (see tbuf and the README's "Memory model"): a tuple is immutable from the
// moment it is published to an output port, so producers, fan-out satellites
// and downstream operators all share the same row by reference — only the
// batch arrays that carry rows between operators are recycled, never the
// rows themselves. An operator that needs to alter a row builds a new one
// (typically from a RowArena) instead of mutating in place.
type Tuple []Value

// Clone returns a deep copy of the tuple (value slice is copied; strings are
// immutable in Go so sharing their bytes is safe).
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns a new tuple holding a's values followed by b's.
func Concat(a, b Tuple) Tuple {
	c := make(Tuple, 0, len(a)+len(b))
	c = append(c, a...)
	c = append(c, b...)
	return c
}

// Project returns a new tuple keeping only the columns at idxs.
func (t Tuple) Project(idxs []int) Tuple {
	c := make(Tuple, len(idxs))
	for i, ix := range idxs {
		c[i] = t[ix]
	}
	return c
}

// ---- Row arena -------------------------------------------------------------

// arenaChunkValues is the default chunk size (in Values) a RowArena carves
// rows from: large enough to amortize one allocation over dozens of rows,
// small enough that a mostly-idle arena wastes little.
const arenaChunkValues = 4096

// RowArena bulk-allocates tuple rows, replacing one heap allocation per row
// (join Concat output, projection rows, decoded page tuples) with one per
// chunk. Rows carved from an arena follow the engine's lease protocol for
// tuples: they are immutable once published to a consumer, so sharing one
// backing chunk across many rows is safe, and the chunk is garbage-collected
// as one object when the last row referencing it dies. Arenas are not
// goroutine-safe; every parallel worker owns its own.
//
// The zero RowArena is ready to use.
type RowArena struct {
	chunk []Value
}

// Grow pre-sizes the arena's next chunk so the following n Values carve out
// of a single allocation (e.g. one page worth of projected rows).
func (a *RowArena) Grow(n int) {
	if cap(a.chunk)-len(a.chunk) < n {
		a.chunk = make([]Value, 0, n)
	}
}

// Make carves a zeroed row of n values for the caller to fill before
// publishing. The row has capacity n exactly, so a later append on it can
// never clobber a neighbouring row.
func (a *RowArena) Make(n int) Tuple {
	if n == 0 {
		return Tuple{}
	}
	if cap(a.chunk)-len(a.chunk) < n {
		size := arenaChunkValues
		if n > size {
			size = n
		}
		a.chunk = make([]Value, 0, size)
	}
	l := len(a.chunk)
	a.chunk = a.chunk[:l+n]
	return Tuple(a.chunk[l : l+n : l+n])
}

// Concat is tuple.Concat into an arena-carved row.
func (a *RowArena) Concat(x, y Tuple) Tuple {
	c := a.Make(len(x) + len(y))
	copy(c, x)
	copy(c[len(x):], y)
	return c
}

// Project is Tuple.Project into an arena-carved row.
func (a *RowArena) Project(t Tuple, idxs []int) Tuple {
	c := a.Make(len(idxs))
	for i, ix := range idxs {
		c[i] = t[ix]
	}
	return c
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// CompareAt orders two tuples on the given key columns.
func CompareAt(a, b Tuple, keys []int) int {
	for _, k := range keys {
		if c := Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}

// FNV-1a parameters (hash/fnv's 64-bit variant, inlined so the per-tuple
// hash path performs zero heap allocations — fnv.New64a heap-allocates its
// state, and feeding it through h.Write shuffles every field into a scratch
// byte buffer first).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashValue folds one value into an FNV-1a state. The byte sequence matches
// what the previous hash/fnv-based implementation hashed (kind tag, then the
// 8 little-endian payload bytes or the raw string bytes), so hash values are
// stable across the rewrite.
func hashValue(h uint64, v Value) uint64 {
	h ^= uint64(v.K)
	h *= fnvPrime64
	switch v.K {
	case KindInt, KindDate, KindFloat:
		u := uint64(v.I)
		if v.K == KindFloat {
			u = math.Float64bits(v.F)
		}
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= fnvPrime64
			u >>= 8
		}
	case KindString:
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= fnvPrime64
		}
	}
	return h
}

// HashAt returns a 64-bit hash of the key columns, suitable for hash joins
// and hash aggregation. It allocates nothing.
func HashAt(t Tuple, keys []int) uint64 {
	h := fnvOffset64
	for _, k := range keys {
		h = hashValue(h, t[k])
	}
	return h
}

// Hash1 is HashAt for a single key column, for hot loops that would
// otherwise build a one-element key slice per tuple. Hash1(t, k) ==
// HashAt(t, []int{k}).
func Hash1(t Tuple, key int) uint64 {
	return hashValue(fnvOffset64, t[key])
}

// Column describes one schema column.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Col is shorthand for constructing a Column.
func Col(name string, k Kind) Column { return Column{Name: name, Kind: k} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex but panics on unknown names; used when building
// the fixed benchmark plans where a miss is a programming error.
func (s *Schema) MustColIndex(name string) int {
	ix := s.ColIndex(name)
	if ix < 0 {
		panic(fmt.Sprintf("tuple: schema has no column %q (have %s)", name, s))
	}
	return ix
}

// Project returns the schema of a projection keeping columns at idxs.
func (s *Schema) Project(idxs []int) *Schema {
	out := &Schema{Cols: make([]Column, len(idxs))}
	for i, ix := range idxs {
		out.Cols[i] = s.Cols[ix]
	}
	return out
}

// Concat returns the schema of a join output (a's columns then b's).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// String renders the schema as name:kind pairs.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	b.WriteByte(']')
	return b.String()
}

// ---- Binary encoding -------------------------------------------------------
//
// The slotted-page layer stores tuples with a simple self-describing
// encoding: per value a 1-byte kind tag followed by 8 bytes (int/float/date)
// or a uvarint length + bytes (string). The encoding is stable so signatures
// and on-"disk" bytes are deterministic across runs.

// EncodedSize returns the number of bytes Encode will produce.
func (t Tuple) EncodedSize() int {
	n := 0
	for _, v := range t {
		n++ // kind tag
		switch v.K {
		case KindInt, KindFloat, KindDate:
			n += 8
		case KindString:
			var tmp [binary.MaxVarintLen64]byte
			n += binary.PutUvarint(tmp[:], uint64(len(v.S)))
			n += len(v.S)
		}
	}
	return n
}

// Encode appends the tuple's binary form to dst and returns the result.
func (t Tuple) Encode(dst []byte) []byte {
	for _, v := range t {
		dst = append(dst, byte(v.K))
		switch v.K {
		case KindInt, KindDate:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			dst = append(dst, b[:]...)
		case KindFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			dst = append(dst, b[:]...)
		case KindString:
			var tmp [binary.MaxVarintLen64]byte
			n := binary.PutUvarint(tmp[:], uint64(len(v.S)))
			dst = append(dst, tmp[:n]...)
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// Decode parses a tuple with ncols columns from b, returning the tuple and
// the number of bytes consumed.
func Decode(b []byte, ncols int) (Tuple, int, error) {
	return decodeInto(b, make(Tuple, ncols))
}

// DecodeArena is Decode with the row carved from an arena (bulk decode paths
// — page reads, spill readers — decode many rows back to back and pay one
// chunk allocation instead of one per row).
func DecodeArena(b []byte, ncols int, a *RowArena) (Tuple, int, error) {
	return decodeInto(b, a.Make(ncols))
}

func decodeInto(b []byte, t Tuple) (Tuple, int, error) {
	off := 0
	for i := range t {
		if off >= len(b) {
			return nil, 0, fmt.Errorf("tuple: truncated encoding at column %d", i)
		}
		k := Kind(b[off])
		off++
		switch k {
		case KindInt, KindDate:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("tuple: truncated int at column %d", i)
			}
			v := int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			t[i] = Value{K: k, I: v}
		case KindFloat:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("tuple: truncated float at column %d", i)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			t[i] = Value{K: k, F: v}
		case KindString:
			n, w := binary.Uvarint(b[off:])
			if w <= 0 || off+w+int(n) > len(b) {
				return nil, 0, fmt.Errorf("tuple: truncated string at column %d", i)
			}
			off += w
			t[i] = Value{K: KindString, S: string(b[off : off+int(n)])}
			off += int(n)
		default:
			return nil, 0, fmt.Errorf("tuple: bad kind tag %d at column %d", k, i)
		}
	}
	return t, off, nil
}
