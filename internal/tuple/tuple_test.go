package tuple

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	if v := I64(42); v.K != KindInt || v.I != 42 {
		t.Errorf("I64: got %+v", v)
	}
	if v := F64(2.5); v.K != KindFloat || v.F != 2.5 {
		t.Errorf("F64: got %+v", v)
	}
	if v := Str("x"); v.K != KindString || v.S != "x" {
		t.Errorf("Str: got %+v", v)
	}
	if v := Date(100); v.K != KindDate || v.I != 100 {
		t.Errorf("Date: got %+v", v)
	}
	if (Value{}).IsValid() {
		t.Error("zero Value should be invalid")
	}
}

func TestCompareNumericCross(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I64(1), I64(2), -1},
		{I64(2), I64(1), 1},
		{I64(2), I64(2), 0},
		{I64(2), F64(2.5), -1},
		{F64(2.5), I64(2), 1},
		{F64(2.0), I64(2), 0},
		{Date(10), Date(20), -1},
		{Date(10), I64(10), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity over random values.
	rng := rand.New(rand.NewSource(7))
	randVal := func() Value {
		switch rng.Intn(4) {
		case 0:
			return I64(int64(rng.Intn(10) - 5))
		case 1:
			return F64(float64(rng.Intn(10)) / 2)
		case 2:
			return Str(string(rune('a' + rng.Intn(5))))
		default:
			return Date(int64(rng.Intn(10)))
		}
	}
	for i := 0; i < 2000; i++ {
		a, b, c := randVal(), randVal(), randVal()
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v <= %v <= %v", a, b, c)
		}
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	orig := Tuple{I64(1), Str("x")}
	c := orig.Clone()
	c[0] = I64(99)
	if orig[0].I != 1 {
		t.Error("Clone aliases original")
	}
}

func TestConcatAndProject(t *testing.T) {
	a := Tuple{I64(1), Str("x")}
	b := Tuple{F64(2.5)}
	cat := Concat(a, b)
	if len(cat) != 3 || cat[2].F != 2.5 {
		t.Fatalf("Concat: got %v", cat)
	}
	p := cat.Project([]int{2, 0})
	if len(p) != 2 || p[0].F != 2.5 || p[1].I != 1 {
		t.Fatalf("Project: got %v", p)
	}
}

func TestCompareAt(t *testing.T) {
	a := Tuple{I64(1), Str("b")}
	b := Tuple{I64(1), Str("a")}
	if CompareAt(a, b, []int{0}) != 0 {
		t.Error("equal on col 0")
	}
	if CompareAt(a, b, []int{0, 1}) != 1 {
		t.Error("a > b on (0,1)")
	}
}

func TestHashAtConsistency(t *testing.T) {
	a := Tuple{I64(7), Str("xy"), F64(1.5)}
	b := Tuple{I64(7), Str("xy"), F64(9.9)}
	if HashAt(a, []int{0, 1}) != HashAt(b, []int{0, 1}) {
		t.Error("hash should ignore non-key columns")
	}
	if HashAt(a, []int{2}) == HashAt(b, []int{2}) {
		t.Error("different float keys should (very likely) hash differently")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema(Col("a", KindInt), Col("b", KindString))
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	if s.ColIndex("b") != 1 || s.ColIndex("z") != -1 {
		t.Error("ColIndex")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColIndex should panic on unknown column")
		}
	}()
	s.MustColIndex("zzz")
}

func TestSchemaProjectConcat(t *testing.T) {
	s := NewSchema(Col("a", KindInt), Col("b", KindString), Col("c", KindFloat))
	p := s.Project([]int{2, 0})
	if p.Cols[0].Name != "c" || p.Cols[1].Name != "a" {
		t.Errorf("Project: %v", p)
	}
	q := s.Concat(NewSchema(Col("d", KindDate)))
	if q.Len() != 4 || q.Cols[3].Name != "d" {
		t.Errorf("Concat: %v", q)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tup := Tuple{I64(-5), F64(3.25), Str("hello"), Date(20000), Str("")}
	enc := tup.Encode(nil)
	if len(enc) != tup.EncodedSize() {
		t.Fatalf("EncodedSize %d != len(enc) %d", tup.EncodedSize(), len(enc))
	}
	dec, n, err := Decode(enc, len(tup))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d", n, len(enc))
	}
	if !reflect.DeepEqual(tup, dec) {
		t.Errorf("round trip: %v != %v", tup, dec)
	}
}

func TestDecodeErrors(t *testing.T) {
	tup := Tuple{I64(1), Str("abc")}
	enc := tup.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut], 2); err == nil {
			t.Fatalf("Decode of %d-byte prefix should fail", cut)
		}
	}
	if _, _, err := Decode([]byte{0xEE, 0, 0}, 1); err == nil {
		t.Error("bad kind tag should fail")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, d int64) bool {
		tup := Tuple{I64(i), F64(fl), Str(s), Date(d)}
		dec, _, err := Decode(tup.Encode(nil), 4)
		if err != nil {
			return false
		}
		// NaN != NaN under DeepEqual on float compare via Compare; use exact bits.
		return reflect.DeepEqual(tup, dec)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	tup := Tuple{I64(1), Str("x")}
	if got := tup.String(); got != "(1, x)" {
		t.Errorf("String: %q", got)
	}
}

// refHashAt is the pre-inlining implementation (hash/fnv fed through a
// scratch buffer); the zero-alloc rewrite must produce identical values.
func refHashAt(t Tuple, keys []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range keys {
		v := t[k]
		buf[0] = byte(v.K)
		h.Write(buf[:1])
		switch v.K {
		case KindInt, KindDate:
			binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
			h.Write(buf[:])
		case KindFloat:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
			h.Write(buf[:])
		case KindString:
			h.Write([]byte(v.S))
		}
	}
	return h.Sum64()
}

func TestHashAtMatchesReferenceFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		row := Tuple{
			I64(rng.Int63() - rng.Int63()),
			F64(rng.NormFloat64() * 1e6),
			Str(randString(rng, rng.Intn(24))),
			Date(int64(rng.Intn(40000))),
			{}, // invalid value (NULL-ish hole)
		}
		keys := []int{rng.Intn(len(row)), rng.Intn(len(row)), rng.Intn(len(row))}
		if got, want := HashAt(row, keys), refHashAt(row, keys); got != want {
			t.Fatalf("HashAt(%v, %v) = %#x, reference fnv = %#x", row, keys, got, want)
		}
		k := rng.Intn(len(row))
		if Hash1(row, k) != refHashAt(row, []int{k}) {
			t.Fatalf("Hash1 diverges from reference at key %d of %v", k, row)
		}
	}
}

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	rng.Read(b)
	return string(b)
}

func TestHashAtZeroAllocs(t *testing.T) {
	row := Tuple{I64(42), Str("hello world"), F64(3.14), Date(12345)}
	keys := []int{0, 1, 2, 3}
	if allocs := testing.AllocsPerRun(100, func() {
		HashAt(row, keys)
	}); allocs != 0 {
		t.Fatalf("HashAt allocates %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		Hash1(row, 1)
	}); allocs != 0 {
		t.Fatalf("Hash1 allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRowArena(t *testing.T) {
	var a RowArena
	x := Tuple{I64(1), Str("l")}
	y := Tuple{I64(2), Str("r")}
	c := a.Concat(x, y)
	if len(c) != 4 || c[0].I != 1 || c[3].S != "r" {
		t.Fatalf("arena concat: %v", c)
	}
	p := a.Project(c, []int{3, 0})
	if len(p) != 2 || p[0].S != "r" || p[1].I != 1 {
		t.Fatalf("arena project: %v", p)
	}
	// Appending to one carved row must never clobber its neighbours.
	c = append(c, I64(99))
	if p[0].S != "r" {
		t.Fatal("append to one arena row clobbered the next")
	}
	// Rows survive chunk turnover.
	rows := make([]Tuple, 0, 10000)
	for i := 0; i < 10000; i++ {
		r := a.Make(3)
		r[0] = I64(int64(i))
		rows = append(rows, r)
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d corrupted: %v", i, r)
		}
	}
	// Amortization: many small rows should cost far less than one
	// allocation each.
	var b RowArena
	if allocs := testing.AllocsPerRun(1000, func() { b.Make(4) }); allocs > 0.1 {
		t.Fatalf("arena Make allocates %.3f allocs/op, want amortized ~1/chunk", allocs)
	}
}

func TestDecodeArenaMatchesDecode(t *testing.T) {
	in := Tuple{I64(-5), F64(2.75), Str("abc"), Date(9000)}
	enc := in.Encode(nil)
	var a RowArena
	got, n, err := DecodeArena(enc, len(in), &a)
	if err != nil || n != len(enc) {
		t.Fatalf("DecodeArena: %v n=%d", err, n)
	}
	want, _, err := Decode(enc, len(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DecodeArena %v != Decode %v", got, want)
	}
}
