// Cardinality estimation over physical plans: the Estimator walks a plan
// tree bottom-up propagating (row count, per-output-column stats) through
// each operator, so EXPLAIN can annotate every node with rows≈N and the
// planner can compare candidate join orders by estimated build-side size.
package stats

import (
	"math"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// DefaultTableRows is the row-count guess for tables with no statistics.
const DefaultTableRows = 1000

// Estimator computes per-node cardinality estimates for a plan. Estimates
// are memoized per node, so annotating a whole tree is linear. Not safe for
// concurrent use; build one per EXPLAIN/plan step.
type Estimator struct {
	lookup func(table string) *TableStats
	memo   map[plan.Node]nodeEst
}

type nodeEst struct {
	rows float64
	cols []ColStats // per output column; Seen=false means unknown
}

// NewEstimator builds an estimator over a table-statistics source. lookup
// may return nil for unknown tables.
func NewEstimator(lookup func(table string) *TableStats) *Estimator {
	return &Estimator{lookup: lookup, memo: make(map[plan.Node]nodeEst)}
}

// Rows returns the estimated output cardinality of n, rounded.
func (e *Estimator) Rows(n plan.Node) int64 {
	r := math.Round(e.est(n).rows)
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	return int64(r)
}

func (e *Estimator) est(n plan.Node) nodeEst {
	if v, ok := e.memo[n]; ok {
		return v
	}
	v := e.compute(n)
	e.memo[n] = v
	return v
}

func (e *Estimator) compute(n plan.Node) nodeEst {
	switch x := n.(type) {
	case *plan.TableScan:
		est := e.baseTable(x.Table, x.TableSchema.Len())
		if x.Filter != nil {
			est.rows *= Selectivity(x.Filter, est.cols)
		}
		est.cols = projectCols(est.cols, x.Project)
		return capNDV(est)

	case *plan.IndexScan:
		est := e.baseTable(x.Table, x.TableSchema.Len())
		ix := x.TableSchema.ColIndex(x.Col)
		if ix >= 0 {
			col := expr.NamedCol(ix, x.Col)
			if x.Lo.K != tuple.KindInvalid { // invalid kind = open bound
				est.rows *= Selectivity(expr.GE(col, &expr.Const{V: x.Lo}), est.cols)
			}
			if x.Hi.K != tuple.KindInvalid {
				est.rows *= Selectivity(expr.LE(col, &expr.Const{V: x.Hi}), est.cols)
			}
		}
		if x.Filter != nil {
			est.rows *= Selectivity(x.Filter, est.cols)
		}
		est.cols = projectCols(est.cols, x.Project)
		return capNDV(est)

	case *plan.Filter:
		child := e.est(x.Child)
		return capNDV(nodeEst{rows: child.rows * Selectivity(x.Pred, child.cols), cols: child.cols})

	case *plan.Project:
		child := e.est(x.Child)
		cols := make([]ColStats, len(x.Exprs))
		for i, ex := range x.Exprs {
			if c, ok := colStatOf(ex, child.cols); ok {
				cols[i] = c
			}
		}
		return nodeEst{rows: child.rows, cols: cols}

	case *plan.Sort:
		return e.est(x.Child)

	case *plan.HashJoin:
		return e.equiJoin(x.Left, x.Right, x.LKey, x.RKey)

	case *plan.MergeJoin:
		return e.equiJoin(x.Left, x.Right, x.LKey, x.RKey)

	case *plan.NLJoin:
		l, r := e.est(x.Left), e.est(x.Right)
		cols := append(append([]ColStats{}, l.cols...), r.cols...)
		rows := l.rows * r.rows
		if x.Pred != nil {
			rows *= Selectivity(x.Pred, cols)
		}
		return capNDV(nodeEst{rows: rows, cols: cols})

	case *plan.Aggregate:
		return nodeEst{rows: 1, cols: make([]ColStats, len(x.Specs))}

	case *plan.GroupBy:
		child := e.est(x.Child)
		groups := 1.0
		for _, k := range x.Keys {
			if k >= 0 && k < len(child.cols) && child.cols[k].Seen && child.cols[k].NDV > 0 {
				groups *= child.cols[k].NDV
			} else {
				groups = child.rows
				break
			}
		}
		if groups > child.rows {
			groups = child.rows
		}
		cols := make([]ColStats, len(x.Keys)+len(x.Specs))
		for i, k := range x.Keys {
			if k >= 0 && k < len(child.cols) {
				cols[i] = child.cols[k]
			}
		}
		return capNDV(nodeEst{rows: groups, cols: cols})

	case *plan.Update:
		return nodeEst{rows: float64(len(x.Rows))}

	default:
		if ch := n.Children(); len(ch) > 0 {
			return e.est(ch[0])
		}
		return nodeEst{}
	}
}

func (e *Estimator) baseTable(table string, ncols int) nodeEst {
	if ts := e.lookup(table); ts != nil {
		cols := make([]ColStats, ncols)
		copy(cols, ts.Cols)
		return nodeEst{rows: float64(ts.Rows), cols: cols}
	}
	return nodeEst{rows: DefaultTableRows, cols: make([]ColStats, ncols)}
}

// equiJoin estimates |L ⋈ R| = |L|·|R| / max(ndv(Lkey), ndv(Rkey)), the
// standard containment-of-values formula; unknown key NDVs fall back to the
// larger input cardinality.
func (e *Estimator) equiJoin(left, right plan.Node, lkey, rkey int) nodeEst {
	l, r := e.est(left), e.est(right)
	ndvL := keyNDV(l, lkey)
	ndvR := keyNDV(r, rkey)
	denom := math.Max(math.Max(ndvL, ndvR), 1)
	cols := append(append([]ColStats{}, l.cols...), r.cols...)
	return capNDV(nodeEst{rows: l.rows * r.rows / denom, cols: cols})
}

func keyNDV(est nodeEst, key int) float64 {
	if key >= 0 && key < len(est.cols) && est.cols[key].Seen && est.cols[key].NDV > 0 {
		ndv := est.cols[key].NDV
		if ndv > est.rows && est.rows >= 1 {
			ndv = est.rows
		}
		return ndv
	}
	return est.rows
}

func projectCols(cols []ColStats, project []int) []ColStats {
	if project == nil {
		return cols
	}
	out := make([]ColStats, len(project))
	for i, ix := range project {
		if ix >= 0 && ix < len(cols) {
			out[i] = cols[ix]
		}
	}
	return out
}

// capNDV bounds every column's NDV by the (post-filter) row count: a
// predicate that keeps k rows cannot leave more than k distinct values.
func capNDV(est nodeEst) nodeEst {
	limit := math.Max(est.rows, 1)
	changed := false
	for _, c := range est.cols {
		if c.Seen && c.NDV > limit {
			changed = true
			break
		}
	}
	if !changed {
		return est
	}
	cols := append([]ColStats{}, est.cols...)
	for i := range cols {
		if cols[i].Seen && cols[i].NDV > limit {
			cols[i].NDV = limit
		}
	}
	return nodeEst{rows: est.rows, cols: cols}
}
