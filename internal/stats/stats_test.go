package stats

import (
	"math"
	"testing"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

func mkRows(n int) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			tuple.I64(int64(i)),         // unique
			tuple.I64(int64(i % 7)),     // 7 distinct
			tuple.F64(float64(i % 100)), // 0..99
		}
	}
	return rows
}

func TestTableSnapshot(t *testing.T) {
	tab := NewTable(3)
	tab.Add(mkRows(5000))
	s := tab.Snapshot()
	if s.Rows != 5000 {
		t.Fatalf("rows = %d, want 5000", s.Rows)
	}
	if s.Cols[0].Min.I != 0 || s.Cols[0].Max.I != 4999 {
		t.Fatalf("col0 bounds = %v..%v", s.Cols[0].Min, s.Cols[0].Max)
	}
	// Linear counting should land near the truth at this scale.
	if got := s.Cols[1].NDV; math.Abs(got-7) > 1 {
		t.Fatalf("col1 NDV = %v, want ≈7", got)
	}
	if got := s.Cols[0].NDV; got < 4000 || got > 5000 {
		t.Fatalf("col0 NDV = %v, want ≈5000", got)
	}
}

func TestIncrementalMatchesRebuild(t *testing.T) {
	rows := mkRows(2000)
	inc := NewTable(3)
	for i := 0; i < len(rows); i += 128 {
		end := i + 128
		if end > len(rows) {
			end = len(rows)
		}
		inc.Add(rows[i:end])
	}
	full := NewTable(3)
	for _, r := range rows {
		full.AddRow(r)
	}
	a, b := inc.Snapshot(), full.Snapshot()
	if a.Rows != b.Rows {
		t.Fatalf("row counts differ: %d vs %d", a.Rows, b.Rows)
	}
	for i := range a.Cols {
		if a.Cols[i].NDV != b.Cols[i].NDV || tuple.Compare(a.Cols[i].Min, b.Cols[i].Min) != 0 {
			t.Fatalf("col %d stats differ between incremental and rebuilt", i)
		}
	}
}

func TestSelectivity(t *testing.T) {
	tab := NewTable(3)
	tab.Add(mkRows(1000))
	cols := tab.Snapshot().Cols

	// Equality on a 7-distinct column ≈ 1/7.
	s := Selectivity(expr.EQ(expr.Col(1), expr.CInt(3)), cols)
	if math.Abs(s-1.0/7) > 0.05 {
		t.Fatalf("eq sel = %v, want ≈1/7", s)
	}
	// Range midpoint ≈ 0.5 on the 0..99 column.
	s = Selectivity(expr.LT(expr.Col(2), expr.CFloat(49.5)), cols)
	if math.Abs(s-0.5) > 0.05 {
		t.Fatalf("range sel = %v, want ≈0.5", s)
	}
	// Constant orientation must not matter.
	a := Selectivity(expr.GT(expr.CFloat(49.5), expr.Col(2)), cols)
	b := Selectivity(expr.LT(expr.Col(2), expr.CFloat(49.5)), cols)
	if a != b {
		t.Fatalf("mirrored comparisons disagree: %v vs %v", a, b)
	}
	// No stats → fallback constants, still within [0,1].
	s = Selectivity(expr.EQ(expr.Col(0), expr.CInt(1)), nil)
	if s != DefaultEqSel {
		t.Fatalf("fallback eq sel = %v", s)
	}
}

func TestEstimatorJoin(t *testing.T) {
	orders := NewTable(2) // (cust, amount)
	for i := 0; i < 5000; i++ {
		orders.AddRow(tuple.Tuple{tuple.I64(int64(i % 100)), tuple.F64(float64(i % 997))})
	}
	customers := NewTable(1) // (cid)
	for i := 0; i < 100; i++ {
		customers.AddRow(tuple.Tuple{tuple.I64(int64(i))})
	}
	snap := map[string]*TableStats{
		"orders":    orders.Snapshot(),
		"customers": customers.Snapshot(),
	}
	est := NewEstimator(func(name string) *TableStats { return snap[name] })

	oScan := plan.NewTableScan("orders",
		tuple.NewSchema(tuple.Col("cust", tuple.KindInt), tuple.Col("amount", tuple.KindFloat)), nil, nil, false)
	cScan := plan.NewTableScan("customers",
		tuple.NewSchema(tuple.Col("cid", tuple.KindInt)), nil, nil, false)

	if got := est.Rows(oScan); got != 5000 {
		t.Fatalf("orders scan rows = %d, want 5000", got)
	}
	// Equi-join on a key with ~100 distinct values ≈ 5000·100/100.
	join := plan.NewHashJoin(cScan, oScan, 0, 0)
	if got := est.Rows(join); got < 4000 || got > 6000 {
		t.Fatalf("join rows = %d, want ≈5000", got)
	}
	// A filtered scan shrinks the estimate.
	fScan := plan.NewTableScan("orders",
		tuple.NewSchema(tuple.Col("cust", tuple.KindInt), tuple.Col("amount", tuple.KindFloat)),
		expr.LT(expr.Col(1), expr.CFloat(100)), nil, false)
	got := est.Rows(fScan)
	if got < 300 || got > 800 {
		t.Fatalf("filtered scan rows = %d, want ≈500", got)
	}
	// Unknown tables fall back to the default guess.
	u := plan.NewTableScan("mystery", tuple.NewSchema(tuple.Col("a", tuple.KindInt)), nil, nil, false)
	if got := est.Rows(u); got != DefaultTableRows {
		t.Fatalf("unknown table rows = %d, want %d", got, DefaultTableRows)
	}
}
