// Package stats maintains per-table statistics — row counts, per-column
// min/max bounds and distinct-value sketches — that feed the planner's
// selectivity and cardinality estimates. Statistics are maintained
// incrementally as rows arrive (Load/Insert) and can be rebuilt from a full
// heap scan via ANALYZE. The planner treats them as hints: a stale or
// missing statistic degrades estimate quality, never correctness.
package stats

import (
	"math"
	"math/bits"
	"sync"

	"qpipe/internal/tuple"
)

// sketchWords is the linear-counting bitmap size per column: 512 words =
// 32768 bits (~4 KiB). Linear counting stays accurate up to roughly the
// bitmap size, which comfortably covers the distinct counts the planner
// cares about (join-key NDVs); beyond that the estimate saturates at the
// row count, which is the right planning answer anyway.
const sketchWords = 512

const sketchBits = sketchWords * 64

// colAcc accumulates one column's statistics.
type colAcc struct {
	min, max tuple.Value
	seen     bool
	bitmap   [sketchWords]uint64
}

func (c *colAcc) add(row tuple.Tuple, ix int) {
	v := row[ix]
	if !c.seen || tuple.Compare(v, c.min) < 0 {
		c.min = v
	}
	if !c.seen || tuple.Compare(v, c.max) > 0 {
		c.max = v
	}
	c.seen = true
	h := tuple.Hash1(row, ix) % sketchBits
	c.bitmap[h/64] |= 1 << (h % 64)
}

// ndv returns the linear-counting distinct-value estimate, capped at rows.
func (c *colAcc) ndv(rows int64) float64 {
	if !c.seen || rows == 0 {
		return 0
	}
	ones := 0
	for _, w := range c.bitmap {
		ones += bits.OnesCount64(w)
	}
	zeros := sketchBits - ones
	var est float64
	if zeros == 0 {
		est = float64(rows)
	} else {
		est = -float64(sketchBits) * math.Log(float64(zeros)/float64(sketchBits))
	}
	if est > float64(rows) {
		est = float64(rows)
	}
	if est < 1 {
		est = 1
	}
	return est
}

// Table accumulates statistics for one table. Safe for concurrent use.
type Table struct {
	mu   sync.Mutex
	rows int64
	cols []colAcc
}

// NewTable creates an empty accumulator for a table with ncols columns.
func NewTable(ncols int) *Table {
	return &Table{cols: make([]colAcc, ncols)}
}

// Add folds a batch of rows into the statistics.
func (t *Table) Add(rows []tuple.Tuple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		t.rows++
		n := len(t.cols)
		if len(r) < n {
			n = len(r)
		}
		for i := 0; i < n; i++ {
			t.cols[i].add(r, i)
		}
	}
}

// AddRow folds a single row into the statistics (ANALYZE's heap-scan path).
func (t *Table) AddRow(r tuple.Tuple) {
	t.Add([]tuple.Tuple{r})
}

// ColStats is an immutable per-column statistics snapshot.
type ColStats struct {
	Min, Max tuple.Value
	NDV      float64 // estimated distinct values; 0 when unknown
	Seen     bool    // false: no data observed for this column
}

// TableStats is an immutable per-table statistics snapshot.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// Snapshot captures the current statistics as an immutable value the
// planner can read without further locking.
func (t *Table) Snapshot() *TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &TableStats{Rows: t.rows, Cols: make([]ColStats, len(t.cols))}
	for i := range t.cols {
		c := &t.cols[i]
		s.Cols[i] = ColStats{Min: c.min, Max: c.max, NDV: c.ndv(t.rows), Seen: c.seen}
	}
	return s
}

// Registry tracks statistics for all tables in a database.
type Registry struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*Table)}
}

// Create registers an empty accumulator for a new table (idempotent).
func (r *Registry) Create(name string, ncols int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; !ok {
		r.tables[name] = NewTable(ncols)
	}
}

// Add folds rows into the named table's statistics; tables not registered
// via Create are ignored (statistics are advisory).
func (r *Registry) Add(name string, rows []tuple.Tuple) {
	r.mu.RLock()
	t := r.tables[name]
	r.mu.RUnlock()
	if t != nil {
		t.Add(rows)
	}
}

// Replace swaps in freshly rebuilt statistics (the ANALYZE path).
func (r *Registry) Replace(name string, t *Table) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables[name] = t
}

// Snapshot returns the named table's statistics, or nil when unknown.
func (r *Registry) Snapshot(name string) *TableStats {
	r.mu.RLock()
	t := r.tables[name]
	r.mu.RUnlock()
	if t == nil {
		return nil
	}
	return t.Snapshot()
}
