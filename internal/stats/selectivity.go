// Selectivity estimation: textbook System-R style formulas over the
// per-column snapshots. Equality selects 1/NDV, ranges interpolate between
// the observed min/max, conjunctions multiply (independence assumption),
// disjunctions use inclusion-exclusion. Missing statistics fall back to
// fixed magic constants — estimates guide plan choice only, so a bad guess
// costs performance, never correctness.
package stats

import (
	"qpipe/internal/expr"
	"qpipe/internal/tuple"
)

// Fallback selectivities when no statistics apply (the classic Selinger
// constants).
const (
	DefaultEqSel    = 0.1
	DefaultRangeSel = 1.0 / 3.0
)

// Selectivity estimates the fraction of input rows satisfying p, given
// per-column statistics for the input schema (nil or short slices mean the
// columns are unknown). The result is always in [0, 1].
func Selectivity(p expr.Pred, cols []ColStats) float64 {
	return clamp01(sel(p, cols))
}

func sel(p expr.Pred, cols []ColStats) float64 {
	switch x := p.(type) {
	case expr.True:
		return 1
	case expr.False:
		return 0
	case *expr.And:
		s := 1.0
		for _, q := range x.Ps {
			s *= sel(q, cols)
		}
		return s
	case *expr.Or:
		miss := 1.0
		for _, q := range x.Ps {
			miss *= 1 - clamp01(sel(q, cols))
		}
		return 1 - miss
	case *expr.Not:
		return 1 - clamp01(sel(x.P, cols))
	case *expr.Cmp:
		return cmpSel(x, cols)
	case *expr.In:
		if c, ok := colStatOf(x.E, cols); ok && c.NDV > 0 {
			return float64(len(x.Vals)) / c.NDV
		}
		return DefaultEqSel * float64(len(x.Vals))
	case *expr.Between:
		lo := cmpSel(&expr.Cmp{Op: expr.CmpGE, L: x.E, R: &expr.Const{V: x.Lo}}, cols)
		hi := cmpSel(&expr.Cmp{Op: expr.CmpLE, L: x.E, R: &expr.Const{V: x.Hi}}, cols)
		return lo * hi
	default:
		return DefaultRangeSel
	}
}

// colStatOf returns the statistics for e when e is a plain column reference
// with known stats.
func colStatOf(e expr.Expr, cols []ColStats) (ColStats, bool) {
	c, ok := e.(*expr.ColRef)
	if !ok || c.Ix < 0 || c.Ix >= len(cols) || !cols[c.Ix].Seen {
		return ColStats{}, false
	}
	return cols[c.Ix], true
}

func cmpSel(x *expr.Cmp, cols []ColStats) float64 {
	l, lok := colStatOf(x.L, cols)
	r, rok := colStatOf(x.R, cols)
	lc, lConst := x.L.(*expr.Const)
	rc, rConst := x.R.(*expr.Const)

	// Column-vs-column (same input): equality via the larger NDV.
	if lok && rok {
		switch x.Op {
		case expr.CmpEQ:
			n := l.NDV
			if r.NDV > n {
				n = r.NDV
			}
			if n > 0 {
				return 1 / n
			}
			return DefaultEqSel
		case expr.CmpNE:
			return 1 - cmpSel(&expr.Cmp{Op: expr.CmpEQ, L: x.L, R: x.R}, cols)
		default:
			return DefaultRangeSel
		}
	}

	// Orient to column-op-constant (normalization puts the column left, but
	// stay robust to hand-built predicates).
	var cs ColStats
	var v tuple.Value
	op := x.Op
	switch {
	case lok && rConst:
		cs, v = l, rc.V
	case rok && lConst:
		cs, v = r, lc.V
		op = mirrorOp(op)
	default:
		if op == expr.CmpEQ || op == expr.CmpNE {
			s := DefaultEqSel
			if op == expr.CmpNE {
				s = 1 - s
			}
			return s
		}
		return DefaultRangeSel
	}

	switch op {
	case expr.CmpEQ:
		if cs.NDV > 0 {
			return 1 / cs.NDV
		}
		return DefaultEqSel
	case expr.CmpNE:
		if cs.NDV > 0 {
			return 1 - 1/cs.NDV
		}
		return 1 - DefaultEqSel
	}

	// Range comparison: interpolate within [min, max] for ordered kinds.
	if !numericKind(cs.Min.K) || !numericKind(v.K) {
		return DefaultRangeSel
	}
	lo, hi, at := cs.Min.AsFloat(), cs.Max.AsFloat(), v.AsFloat()
	if hi <= lo {
		// Degenerate domain: the column is a single point.
		c := tuple.Compare(cs.Min, v)
		switch op {
		case expr.CmpLT:
			return btof(c < 0)
		case expr.CmpLE:
			return btof(c <= 0)
		case expr.CmpGT:
			return btof(c > 0)
		default:
			return btof(c >= 0)
		}
	}
	frac := clamp01((at - lo) / (hi - lo))
	if op == expr.CmpLT || op == expr.CmpLE {
		return frac
	}
	return 1 - frac
}

func mirrorOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.CmpLT:
		return expr.CmpGT
	case expr.CmpLE:
		return expr.CmpGE
	case expr.CmpGT:
		return expr.CmpLT
	case expr.CmpGE:
		return expr.CmpLE
	default:
		return op
	}
}

func numericKind(k tuple.Kind) bool {
	return k == tuple.KindInt || k == tuple.KindFloat || k == tuple.KindDate
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
