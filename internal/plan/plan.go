// Package plan defines physical query plans: trees of operator nodes, each
// of which becomes one QPipe packet (or one Volcano iterator in the
// comparator engine). QPipe's input is precompiled plans — the paper used
// plans derived from a commercial optimizer (§4.2); this repo's workload
// package plays that role, hand-building the TPC-H and Wisconsin plans.
//
// Every node carries a Signature: the canonical "encoded argument list" the
// packet dispatcher attaches to packets so a µEngine can detect overlapping
// work with a cheap string comparison (§4.3). Two nodes with equal
// signatures compute identical results.
package plan

import (
	"fmt"
	"strings"
	"sync/atomic"

	"qpipe/internal/expr"
	"qpipe/internal/tuple"
)

// OpType identifies which µEngine executes a node.
type OpType string

// The µEngine families. Each value names a dedicated micro-engine in the
// QPipe runtime (paper Figure 5b shows S, I, J, A).
const (
	OpTableScan OpType = "tscan"
	OpIndexScan OpType = "iscan"
	OpFilter    OpType = "filter"
	OpProject   OpType = "project"
	OpSort      OpType = "sort"
	OpMergeJoin OpType = "mjoin"
	OpHashJoin  OpType = "hjoin"
	OpNLJoin    OpType = "nljoin"
	OpAggregate OpType = "agg"
	OpGroupBy   OpType = "groupby"
	OpUpdate    OpType = "update"
)

// Node is one physical operator.
type Node interface {
	// Op names the µEngine that executes this node.
	Op() OpType
	// Children returns input nodes (leaves return nil).
	Children() []Node
	// Schema is the output schema.
	Schema() *tuple.Schema
	// Signature canonically encodes the node and its subtree.
	Signature() string
}

func childSigs(ns []Node) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.Signature()
	}
	return strings.Join(parts, "|")
}

// ---- Leaves -----------------------------------------------------------------

// TableScan reads a heap file. Filter and Project are applied per-consumer
// inside the scan µEngine (so scans with different predicates still share
// one circular page stream). Ordered scans require tuples in stored page
// order — a spike overlap; unordered scans are linear.
type TableScan struct {
	Table       string
	TableSchema *tuple.Schema
	Filter      expr.Pred // nil = no filter
	Project     []int     // nil = all columns
	Ordered     bool      // require page order (spike WoP)

	// Parallelism is the partition fan-out hint for this scan: the heap's
	// page range splits into that many contiguous partitions served by
	// concurrent scan sub-workers (0 = use the runtime's ScanParallelism,
	// 1 = serial; ignored for ordered scans, which need page order).
	// Deliberately excluded from the signature: it changes the execution
	// strategy, not the result, and must not prevent OSP sharing between
	// scans that differ only in fan-out.
	Parallelism int

	out *tuple.Schema
}

// NewTableScan builds a table-scan node.
func NewTableScan(table string, schema *tuple.Schema, filter expr.Pred, project []int, ordered bool) *TableScan {
	ts := &TableScan{Table: table, TableSchema: schema, Filter: filter, Project: project, Ordered: ordered}
	if project == nil {
		ts.out = schema
	} else {
		ts.out = schema.Project(project)
	}
	return ts
}

// WithParallelism sets the partition fan-out hint and returns the node
// (builder style, so workload plan constructors stay one expression).
func (s *TableScan) WithParallelism(p int) *TableScan {
	s.Parallelism = p
	return s
}

// Op implements Node.
func (s *TableScan) Op() OpType { return OpTableScan }

// Children implements Node.
func (s *TableScan) Children() []Node { return nil }

// Schema implements Node.
func (s *TableScan) Schema() *tuple.Schema { return s.out }

// Signature implements Node.
func (s *TableScan) Signature() string {
	f := "true"
	if s.Filter != nil {
		f = s.Filter.Signature()
	}
	return fmt.Sprintf("tscan(%s;%s;%v;%v)", s.Table, f, s.Project, s.Ordered)
}

// IndexScan reads via a B+tree index. Clustered scans produce full tuples in
// key order; unclustered scans probe for RIDs, sort them in page order and
// fetch from the heap (two phases: full-overlap RID-list build, then
// linear/spike fetch).
type IndexScan struct {
	Table       string
	TableSchema *tuple.Schema
	Col         string      // indexed column
	Lo, Hi      tuple.Value // invalid = open bound
	Clustered   bool
	Ordered     bool // consumer requires key order (spike WoP when clustered)
	Filter      expr.Pred
	Project     []int

	// LeafFrom/LeafTo restrict a clustered scan to a leaf-ordinal range
	// [LeafFrom, LeafTo). LeafTo < 0 means to-the-end. The OSP coordinator
	// uses these for the complement packet of an ordered-scan split
	// (§4.3.2); ordinary plans leave them at 0/-1.
	LeafFrom int
	LeafTo   int

	out *tuple.Schema
}

// NewIndexScan builds an index-scan node.
func NewIndexScan(table string, schema *tuple.Schema, col string, lo, hi tuple.Value, clustered, ordered bool, filter expr.Pred, project []int) *IndexScan {
	is := &IndexScan{Table: table, TableSchema: schema, Col: col, Lo: lo, Hi: hi,
		Clustered: clustered, Ordered: ordered, Filter: filter, Project: project, LeafTo: -1}
	if project == nil {
		is.out = schema
	} else {
		is.out = schema.Project(project)
	}
	return is
}

// Op implements Node.
func (s *IndexScan) Op() OpType { return OpIndexScan }

// Children implements Node.
func (s *IndexScan) Children() []Node { return nil }

// Schema implements Node.
func (s *IndexScan) Schema() *tuple.Schema { return s.out }

// Signature implements Node.
func (s *IndexScan) Signature() string {
	f := "true"
	if s.Filter != nil {
		f = s.Filter.Signature()
	}
	return fmt.Sprintf("iscan(%s;%s;%s;%s;%v;%v;%s;%v;%d:%d)",
		s.Table, s.Col, s.Lo, s.Hi, s.Clustered, s.Ordered, f, s.Project, s.LeafFrom, s.LeafTo)
}

// ---- Unary operators ---------------------------------------------------------

// Filter drops tuples failing the predicate.
type Filter struct {
	Child Node
	Pred  expr.Pred
}

// NewFilter builds a filter node.
func NewFilter(child Node, pred expr.Pred) *Filter { return &Filter{Child: child, Pred: pred} }

// Op implements Node.
func (f *Filter) Op() OpType { return OpFilter }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Schema implements Node.
func (f *Filter) Schema() *tuple.Schema { return f.Child.Schema() }

// Signature implements Node.
func (f *Filter) Signature() string {
	return fmt.Sprintf("filter(%s;%s)", f.Pred.Signature(), f.Child.Signature())
}

// Project computes output expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string

	out *tuple.Schema
}

// NewProject builds a projection node. Names label output columns; kinds are
// inferred lazily as KindInvalid (projection outputs are intermediate).
func NewProject(child Node, exprs []expr.Expr, names []string) *Project {
	cols := make([]tuple.Column, len(exprs))
	for i := range exprs {
		name := fmt.Sprintf("e%d", i)
		if i < len(names) {
			name = names[i]
		}
		cols[i] = tuple.Column{Name: name, Kind: tuple.KindInvalid}
	}
	return &Project{Child: child, Exprs: exprs, Names: names, out: &tuple.Schema{Cols: cols}}
}

// Op implements Node.
func (p *Project) Op() OpType { return OpProject }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Schema implements Node.
func (p *Project) Schema() *tuple.Schema { return p.out }

// Signature implements Node.
func (p *Project) Signature() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.Signature()
	}
	return fmt.Sprintf("project(%s;%s)", strings.Join(parts, ","), p.Child.Signature())
}

// Sort orders its input on key columns. Phase 1 (sorting) is a full
// overlap; phase 2 (emitting the sorted stream) is linear via the
// materialized sorted run (§3.2: "one query may have already sorted a file
// that another query is about to start sorting").
type Sort struct {
	Child Node
	Keys  []int
	Desc  bool
}

// NewSort builds a sort node.
func NewSort(child Node, keys []int, desc bool) *Sort {
	return &Sort{Child: child, Keys: keys, Desc: desc}
}

// Op implements Node.
func (s *Sort) Op() OpType { return OpSort }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Schema implements Node.
func (s *Sort) Schema() *tuple.Schema { return s.Child.Schema() }

// Signature implements Node.
func (s *Sort) Signature() string {
	return fmt.Sprintf("sort(%v;%v;%s)", s.Keys, s.Desc, s.Child.Signature())
}

// ---- Joins -------------------------------------------------------------------

// MergeJoin equi-joins two key-ordered inputs (step overlap). OrderedParent
// records whether the *consumer* of this join depends on output order: when
// false, the OSP coordinator may split the join in two to exploit an
// in-progress ordered scan (§4.3.2, Figure 9).
type MergeJoin struct {
	Left, Right   Node
	LKey, RKey    int
	OrderedParent bool

	out *tuple.Schema
}

// NewMergeJoin builds a merge-join node.
func NewMergeJoin(l, r Node, lkey, rkey int, orderedParent bool) *MergeJoin {
	return &MergeJoin{Left: l, Right: r, LKey: lkey, RKey: rkey,
		OrderedParent: orderedParent, out: l.Schema().Concat(r.Schema())}
}

// Op implements Node.
func (j *MergeJoin) Op() OpType { return OpMergeJoin }

// Children implements Node.
func (j *MergeJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Schema implements Node.
func (j *MergeJoin) Schema() *tuple.Schema { return j.out }

// Signature implements Node.
func (j *MergeJoin) Signature() string {
	return fmt.Sprintf("mjoin(%d=%d;%s)", j.LKey, j.RKey, childSigs(j.Children()))
}

// HashJoin equi-joins by building a hash table on Left and probing with
// Right. The build phase is a full overlap; the probe phase is step (§3.2),
// which Figure 11 exercises.
type HashJoin struct {
	Left, Right Node // Left = build side
	LKey, RKey  int

	// Parallelism is the intra-operator fan-out hint: the build input is
	// hash-partitioned across that many join sub-workers, which then probe
	// in parallel (0 = use the runtime's ScanParallelism, 1 = serial).
	// Excluded from the signature — it changes the execution strategy, not
	// the result, and must not prevent OSP sharing between joins that differ
	// only in fan-out.
	Parallelism int

	out *tuple.Schema
}

// NewHashJoin builds a hash-join node (left input is the build side).
func NewHashJoin(l, r Node, lkey, rkey int) *HashJoin {
	return &HashJoin{Left: l, Right: r, LKey: lkey, RKey: rkey, out: l.Schema().Concat(r.Schema())}
}

// WithParallelism sets the join's fan-out hint and returns the node
// (builder style, matching TableScan.WithParallelism).
func (j *HashJoin) WithParallelism(p int) *HashJoin {
	j.Parallelism = p
	return j
}

// Op implements Node.
func (j *HashJoin) Op() OpType { return OpHashJoin }

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Schema implements Node.
func (j *HashJoin) Schema() *tuple.Schema { return j.out }

// Signature implements Node.
func (j *HashJoin) Signature() string {
	return fmt.Sprintf("hjoin(%d=%d;%s)", j.LKey, j.RKey, childSigs(j.Children()))
}

// BuildSignature canonically encodes only the build side; satellites whose
// probe differs can still reuse a completed build (hash-table reuse is the
// materialization enhancement applied to hjoin's full-overlap phase).
func (j *HashJoin) BuildSignature() string {
	return fmt.Sprintf("hbuild(%d;%s)", j.LKey, j.Left.Signature())
}

// NLJoin is a nested-loop join with an arbitrary predicate over the
// concatenated tuple (step overlap).
type NLJoin struct {
	Left, Right Node // Left = outer
	Pred        expr.Pred

	out *tuple.Schema
}

// NewNLJoin builds a nested-loop join node.
func NewNLJoin(l, r Node, pred expr.Pred) *NLJoin {
	return &NLJoin{Left: l, Right: r, Pred: pred, out: l.Schema().Concat(r.Schema())}
}

// Op implements Node.
func (j *NLJoin) Op() OpType { return OpNLJoin }

// Children implements Node.
func (j *NLJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Schema implements Node.
func (j *NLJoin) Schema() *tuple.Schema { return j.out }

// Signature implements Node.
func (j *NLJoin) Signature() string {
	return fmt.Sprintf("nljoin(%s;%s)", j.Pred.Signature(), childSigs(j.Children()))
}

// ---- Aggregation -------------------------------------------------------------

// Aggregate computes scalar aggregates over its whole input, emitting one
// row (full overlap — shareable for its entire lifetime, §3.2).
type Aggregate struct {
	Child Node
	Specs []expr.AggSpec

	// Parallelism is the intra-operator fan-out hint: input batches are
	// dealt to that many workers accumulating partial aggregate states,
	// merged at the end (0 = runtime ScanParallelism, 1 = serial). Excluded
	// from the signature, like every parallelism hint.
	Parallelism int

	out *tuple.Schema
}

// NewAggregate builds a scalar-aggregate node.
func NewAggregate(child Node, specs []expr.AggSpec) *Aggregate {
	cols := make([]tuple.Column, len(specs))
	for i, s := range specs {
		name := s.Name
		if name == "" {
			name = s.Signature()
		}
		cols[i] = tuple.Column{Name: name, Kind: tuple.KindFloat}
	}
	return &Aggregate{Child: child, Specs: specs, out: &tuple.Schema{Cols: cols}}
}

// WithParallelism sets the aggregate's fan-out hint and returns the node.
func (a *Aggregate) WithParallelism(p int) *Aggregate {
	a.Parallelism = p
	return a
}

// Op implements Node.
func (a *Aggregate) Op() OpType { return OpAggregate }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// Schema implements Node.
func (a *Aggregate) Schema() *tuple.Schema { return a.out }

// Signature implements Node.
func (a *Aggregate) Signature() string {
	parts := make([]string, len(a.Specs))
	for i, s := range a.Specs {
		parts[i] = s.Signature()
	}
	return fmt.Sprintf("agg(%s;%s)", strings.Join(parts, ","), a.Child.Signature())
}

// GroupBy computes hash-grouped aggregates (step overlap: multiple results).
type GroupBy struct {
	Child Node
	Keys  []int
	Specs []expr.AggSpec

	// Parallelism is the intra-operator fan-out hint: input batches are
	// dealt to that many workers building partial group tables, merged via
	// AggState.Merge at the end (0 = runtime ScanParallelism, 1 = serial).
	// Excluded from the signature, like every parallelism hint.
	Parallelism int

	out *tuple.Schema
}

// NewGroupBy builds a hash group-by node. Output columns are the group keys
// followed by the aggregates.
func NewGroupBy(child Node, keys []int, specs []expr.AggSpec) *GroupBy {
	in := child.Schema()
	cols := make([]tuple.Column, 0, len(keys)+len(specs))
	for _, k := range keys {
		cols = append(cols, in.Cols[k])
	}
	for _, s := range specs {
		name := s.Name
		if name == "" {
			name = s.Signature()
		}
		cols = append(cols, tuple.Column{Name: name, Kind: tuple.KindFloat})
	}
	return &GroupBy{Child: child, Keys: keys, Specs: specs, out: &tuple.Schema{Cols: cols}}
}

// WithParallelism sets the group-by's fan-out hint and returns the node.
func (g *GroupBy) WithParallelism(p int) *GroupBy {
	g.Parallelism = p
	return g
}

// Op implements Node.
func (g *GroupBy) Op() OpType { return OpGroupBy }

// Children implements Node.
func (g *GroupBy) Children() []Node { return []Node{g.Child} }

// Schema implements Node.
func (g *GroupBy) Schema() *tuple.Schema { return g.out }

// Signature implements Node.
func (g *GroupBy) Signature() string {
	parts := make([]string, len(g.Specs))
	for i, s := range g.Specs {
		parts[i] = s.Signature()
	}
	return fmt.Sprintf("groupby(%v;%s;%s)", g.Keys, strings.Join(parts, ","), g.Child.Signature())
}

// ---- Updates -----------------------------------------------------------------

// MutationKind says what an Update node does to its table.
type MutationKind uint8

const (
	// MutInsert appends Rows to the table.
	MutInsert MutationKind = iota
	// MutUpdate rewrites rows matching Where using the Set assignments.
	MutUpdate
	// MutDelete removes rows matching Where.
	MutDelete
)

func (k MutationKind) String() string {
	return [...]string{"insert", "update", "delete"}[k]
}

// Assign is one SET clause of an UPDATE: target column index and the
// expression computing its new value over the old row.
type Assign struct {
	Col int
	E   expr.Expr
}

// Update mutates a table: insert, update or delete. Mutations are never
// shared (§3.2: sharing would violate transactional semantics); the update
// µEngine has no OSP functionality and serializes through the lock manager
// (§4.3.4).
type Update struct {
	Kind  MutationKind
	Table string
	Rows  []tuple.Tuple // MutInsert: rows to append
	Where expr.Pred     // MutUpdate/MutDelete: row filter (nil = all rows)
	Set   []Assign      // MutUpdate: assignments applied to matching rows
	seq   int64         // distinguishes otherwise-identical mutations in signatures
}

var updateSeq atomic.Int64

// NewUpdate builds an insert node.
func NewUpdate(table string, rows []tuple.Tuple) *Update {
	return &Update{Kind: MutInsert, Table: table, Rows: rows, seq: updateSeq.Add(1)}
}

// NewUpdateWhere builds an UPDATE ... SET ... WHERE node.
func NewUpdateWhere(table string, where expr.Pred, set []Assign) *Update {
	return &Update{Kind: MutUpdate, Table: table, Where: where, Set: set, seq: updateSeq.Add(1)}
}

// NewDelete builds a DELETE FROM ... WHERE node.
func NewDelete(table string, where expr.Pred) *Update {
	return &Update{Kind: MutDelete, Table: table, Where: where, seq: updateSeq.Add(1)}
}

// Op implements Node.
func (u *Update) Op() OpType { return OpUpdate }

// Children implements Node.
func (u *Update) Children() []Node { return nil }

// Schema implements Node: one row counting the affected tuples. The insert
// column name is kept for compatibility with existing consumers.
func (u *Update) Schema() *tuple.Schema {
	if u.Kind == MutInsert {
		return tuple.NewSchema(tuple.Col("inserted", tuple.KindInt))
	}
	return tuple.NewSchema(tuple.Col("affected", tuple.KindInt))
}

// Signature implements Node. Includes a sequence number: two textually
// identical mutations must never match as overlapping work.
func (u *Update) Signature() string {
	switch u.Kind {
	case MutUpdate, MutDelete:
		w := "true"
		if u.Where != nil {
			w = u.Where.Signature()
		}
		return fmt.Sprintf("%s(%s;%s;#%d)", u.Kind, u.Table, w, u.seq)
	default:
		return fmt.Sprintf("update(%s;%d;#%d)", u.Table, len(u.Rows), u.seq)
	}
}

// Walk visits the plan tree depth-first (children before parents).
func Walk(n Node, fn func(Node)) {
	for _, c := range n.Children() {
		Walk(c, fn)
	}
	fn(n)
}

// CountNodes returns the number of nodes in the plan.
func CountNodes(n Node) int {
	c := 0
	Walk(n, func(Node) { c++ })
	return c
}
