package plan

import (
	"testing"

	"qpipe/internal/expr"
	"qpipe/internal/tuple"
)

func ordersSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("oid", tuple.KindInt),
		tuple.Col("cust", tuple.KindInt),
		tuple.Col("amount", tuple.KindFloat),
	)
}

func customersSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("cid", tuple.KindInt),
		tuple.Col("segment", tuple.KindInt),
	)
}

func TestNormalizePushesFilterIntoScan(t *testing.T) {
	scan := NewTableScan("orders", ordersSchema(), nil, nil, false)
	p := NewFilter(scan, expr.GT(expr.Col(2), expr.CFloat(100)))
	n := Normalize(p)
	ts, ok := n.(*TableScan)
	if !ok {
		t.Fatalf("expected filter merged into TableScan, got %T", n)
	}
	if ts.Filter == nil {
		t.Fatal("scan filter not set")
	}
	// Converges with the filter written directly on the scan.
	direct := Normalize(NewTableScan("orders", ordersSchema(),
		expr.LT(expr.CFloat(100), expr.Col(2)), nil, false))
	if n.Signature() != direct.Signature() {
		t.Fatalf("pushed and direct filters differ:\n%s\n%s", n.Signature(), direct.Signature())
	}
	// Original tree untouched.
	if scan.Filter != nil {
		t.Fatal("Normalize mutated the input scan")
	}
}

func TestNormalizeDoesNotPushPastProjection(t *testing.T) {
	scan := NewTableScan("orders", ordersSchema(), nil, []int{2, 0}, false)
	p := NewFilter(scan, expr.GT(expr.Col(0), expr.CFloat(100))) // col 0 = amount post-project
	n := Normalize(p)
	f, ok := n.(*Filter)
	if !ok {
		t.Fatalf("filter over a projecting scan must stay a Filter node, got %T", n)
	}
	if _, ok := f.Child.(*TableScan); !ok {
		t.Fatalf("unexpected child %T", f.Child)
	}
}

func TestNormalizeSplitsFilterOverJoin(t *testing.T) {
	c := NewTableScan("customers", customersSchema(), nil, nil, false)
	o := NewTableScan("orders", ordersSchema(), nil, nil, false)
	join := NewHashJoin(c, o, 0, 1) // cid = cust
	// segment=1 (left col 1), amount>900 (right col 2 → join col 4).
	pred := expr.AndOf(
		expr.EQ(expr.Col(1), expr.CInt(1)),
		expr.GT(expr.Col(4), expr.CFloat(900)),
	)
	n := Normalize(NewFilter(join, pred))
	j, ok := n.(*HashJoin)
	if !ok {
		t.Fatalf("expected bare HashJoin after full pushdown, got %T", n)
	}
	ls, ok := j.Left.(*TableScan)
	if !ok || ls.Filter == nil {
		t.Fatal("left conjunct not pushed into build-side scan")
	}
	rs, ok := j.Right.(*TableScan)
	if !ok || rs.Filter == nil {
		t.Fatal("right conjunct not pushed into probe-side scan")
	}
	// The right-side predicate must be re-based: amount is col 2 of orders.
	want := expr.NormalizePred(expr.GT(expr.Col(2), expr.CFloat(900))).Signature()
	if rs.Filter.Signature() != want {
		t.Fatalf("right filter = %s, want %s", rs.Filter.Signature(), want)
	}
	if n.Schema().Len() != join.Schema().Len() {
		t.Fatal("normalization changed the output schema")
	}
}

func TestNormalizeKeepsCrossSideResidual(t *testing.T) {
	c := NewTableScan("customers", customersSchema(), nil, nil, false)
	o := NewTableScan("orders", ordersSchema(), nil, nil, false)
	join := NewHashJoin(c, o, 0, 1)
	// cid < oid spans both sides: must stay above the join.
	pred := expr.LT(expr.Col(0), expr.Col(2))
	n := Normalize(NewFilter(join, pred))
	if _, ok := n.(*Filter); !ok {
		t.Fatalf("cross-side predicate must remain a Filter, got %T", n)
	}
}

func TestNormalizeCollapsesFilterChains(t *testing.T) {
	scan := NewTableScan("orders", ordersSchema(), nil, nil, false)
	chain := NewFilter(NewFilter(scan, expr.GT(expr.Col(2), expr.CFloat(10))),
		expr.LT(expr.Col(2), expr.CFloat(90)))
	merged := NewFilter(scan, expr.AndOf(
		expr.LT(expr.Col(2), expr.CFloat(90)), expr.GT(expr.Col(2), expr.CFloat(10))))
	if Normalize(chain).Signature() != Normalize(merged).Signature() {
		t.Fatal("chained and merged filters should converge")
	}
}

func TestNormalizeIdempotentOnPlans(t *testing.T) {
	c := NewTableScan("customers", customersSchema(), nil, nil, false)
	o := NewTableScan("orders", ordersSchema(), nil, nil, false)
	root := NewSort(NewFilter(NewHashJoin(c, o, 0, 1), expr.AndOf(
		expr.EQ(expr.Col(1), expr.CInt(1)),
		expr.LT(expr.Col(0), expr.Col(2)),
	)), []int{0}, true)
	once := Normalize(root)
	twice := Normalize(once)
	if once.Signature() != twice.Signature() {
		t.Fatalf("not idempotent:\n%s\n%s", once.Signature(), twice.Signature())
	}
}

// Satellite regression: normalization must carry parallelism/batch hints
// through to the rewritten nodes WITHOUT them leaking into signatures —
// re-introducing PR-2's signature fragmentation here would silently kill
// OSP sharing between queries that differ only in fan-out hints.
func TestNormalizePreservesHintsOutsideSignature(t *testing.T) {
	build := func(par int) Node {
		scan := NewTableScan("orders", ordersSchema(), nil, nil, false).WithParallelism(par)
		join := NewHashJoin(scan, NewTableScan("customers", customersSchema(), nil, nil, false), 1, 0)
		join.Parallelism = par
		agg := NewAggregate(NewFilter(join, expr.GT(expr.Col(2), expr.CFloat(50))),
			[]expr.AggSpec{{Kind: expr.AggCount, Name: "n"}})
		agg.Parallelism = par
		return agg
	}
	hinted := Normalize(build(7))
	plain := Normalize(build(0))

	if hinted.Signature() != plain.Signature() {
		t.Fatalf("parallelism hints leaked into normalized signatures:\n%s\n%s",
			hinted.Signature(), plain.Signature())
	}
	agg := hinted.(*Aggregate)
	if agg.Parallelism != 7 {
		t.Fatalf("aggregate hint lost: %d", agg.Parallelism)
	}
	join := agg.Child.(*HashJoin)
	if join.Parallelism != 7 {
		t.Fatalf("join hint lost: %d", join.Parallelism)
	}
	scan := join.Left.(*TableScan)
	if scan.Parallelism != 7 {
		t.Fatalf("scan hint lost: %d", scan.Parallelism)
	}
	if scan.Filter == nil {
		t.Fatal("filter should have been pushed into the hinted scan")
	}
}

func TestNormalizeValidates(t *testing.T) {
	// Normalized plans must still pass plan.Validate (refs stay in range
	// after pushdown re-basing).
	c := NewTableScan("customers", customersSchema(), nil, nil, false)
	o := NewTableScan("orders", ordersSchema(), nil, nil, false)
	root := NewGroupBy(NewFilter(NewHashJoin(c, o, 0, 1), expr.AndOf(
		expr.GT(expr.Col(4), expr.CFloat(10)),
		expr.EQ(expr.Col(1), expr.CInt(2)),
	)), []int{1}, []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Col(4), Name: "rev"}})
	n := Normalize(root)
	if err := Validate(n); err != nil {
		t.Fatalf("normalized plan fails validation: %v", err)
	}
}
