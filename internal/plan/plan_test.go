package plan

import (
	"strings"
	"testing"

	"qpipe/internal/expr"
	"qpipe/internal/tuple"
)

func baseSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("a", tuple.KindInt),
		tuple.Col("b", tuple.KindString),
		tuple.Col("c", tuple.KindFloat),
	)
}

func TestTableScanSchemaAndSig(t *testing.T) {
	s := baseSchema()
	full := NewTableScan("t", s, nil, nil, false)
	if full.Schema().Len() != 3 {
		t.Fatal("full scan schema")
	}
	proj := NewTableScan("t", s, nil, []int{2, 0}, false)
	if proj.Schema().Len() != 2 || proj.Schema().Cols[0].Name != "c" {
		t.Fatalf("projected schema: %v", proj.Schema())
	}
	if full.Signature() == proj.Signature() {
		t.Fatal("projection must change signature")
	}
	ordered := NewTableScan("t", s, nil, nil, true)
	if full.Signature() == ordered.Signature() {
		t.Fatal("ordering must change signature")
	}
	filtered := NewTableScan("t", s, expr.EQ(expr.Col(0), expr.CInt(1)), nil, false)
	if full.Signature() == filtered.Signature() {
		t.Fatal("filter must change signature")
	}
	// Identical construction -> identical signature.
	again := NewTableScan("t", s, expr.EQ(expr.Col(0), expr.CInt(1)), nil, false)
	if filtered.Signature() != again.Signature() {
		t.Fatal("identical scans must have equal signatures")
	}
	if full.Children() != nil {
		t.Fatal("leaf children")
	}
	if full.Op() != OpTableScan {
		t.Fatal("op type")
	}
}

func TestIndexScanSignatureIncludesEverything(t *testing.T) {
	s := baseSchema()
	base := NewIndexScan("t", s, "a", tuple.Value{}, tuple.Value{}, true, true, nil, nil)
	variants := []*IndexScan{
		NewIndexScan("t", s, "a", tuple.I64(1), tuple.Value{}, true, true, nil, nil),
		NewIndexScan("t", s, "a", tuple.Value{}, tuple.Value{}, false, true, nil, nil),
		NewIndexScan("t", s, "a", tuple.Value{}, tuple.Value{}, true, false, nil, nil),
		NewIndexScan("t2", s, "a", tuple.Value{}, tuple.Value{}, true, true, nil, nil),
	}
	for i, v := range variants {
		if v.Signature() == base.Signature() {
			t.Errorf("variant %d signature collision", i)
		}
	}
	partial := *base
	partial.LeafFrom, partial.LeafTo = 0, 5
	if partial.Signature() == base.Signature() {
		t.Error("leaf range must change signature")
	}
	if base.LeafTo != -1 {
		t.Error("default LeafTo should be -1 (open)")
	}
}

func TestJoinSchemas(t *testing.T) {
	s := baseSchema()
	l := NewTableScan("l", s, nil, []int{0}, false)
	r := NewTableScan("r", s, nil, []int{0, 1}, false)
	mj := NewMergeJoin(l, r, 0, 0, true)
	if mj.Schema().Len() != 3 {
		t.Fatalf("mj schema: %v", mj.Schema())
	}
	hj := NewHashJoin(l, r, 0, 0)
	if hj.Schema().Len() != 3 {
		t.Fatal("hj schema")
	}
	if hj.Signature() == mj.Signature() {
		t.Fatal("join kinds must differ in signature")
	}
	if hj.BuildSignature() == hj.Signature() {
		t.Fatal("build signature is a sub-signature")
	}
	nl := NewNLJoin(l, r, expr.LT(expr.Col(0), expr.Col(1)))
	if nl.Schema().Len() != 3 || len(nl.Children()) != 2 {
		t.Fatal("nl join shape")
	}
}

func TestGroupBySchema(t *testing.T) {
	s := baseSchema()
	scan := NewTableScan("t", s, nil, nil, false)
	gb := NewGroupBy(scan, []int{1}, []expr.AggSpec{
		{Kind: expr.AggCount, Name: "n"},
		{Kind: expr.AggSum, Arg: expr.Col(2)},
	})
	sch := gb.Schema()
	if sch.Len() != 3 {
		t.Fatalf("groupby schema: %v", sch)
	}
	if sch.Cols[0].Name != "b" || sch.Cols[1].Name != "n" {
		t.Fatalf("column names: %v", sch)
	}
	// Unnamed agg gets its signature as a name.
	if !strings.Contains(sch.Cols[2].Name, "sum") {
		t.Fatalf("default agg name: %v", sch.Cols[2].Name)
	}
}

func TestAggregateAndSortAndFilterNodes(t *testing.T) {
	s := baseSchema()
	scan := NewTableScan("t", s, nil, nil, false)
	agg := NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}})
	if agg.Schema().Len() != 1 || agg.Op() != OpAggregate {
		t.Fatal("aggregate node")
	}
	srt := NewSort(scan, []int{0}, true)
	if srt.Schema() != scan.Schema() || srt.Op() != OpSort {
		t.Fatal("sort node")
	}
	if NewSort(scan, []int{0}, false).Signature() == srt.Signature() {
		t.Fatal("sort direction must change signature")
	}
	f := NewFilter(scan, expr.True{})
	if f.Schema() != scan.Schema() || f.Op() != OpFilter {
		t.Fatal("filter node")
	}
	p := NewProject(scan, []expr.Expr{expr.Col(0)}, []string{"x"})
	if p.Schema().Len() != 1 || p.Schema().Cols[0].Name != "x" {
		t.Fatal("project node")
	}
	p2 := NewProject(scan, []expr.Expr{expr.Col(0), expr.Col(1)}, nil)
	if p2.Schema().Cols[1].Name != "e1" {
		t.Fatal("default project names")
	}
}

func TestUpdateNeverMatches(t *testing.T) {
	rows := []tuple.Tuple{{tuple.I64(1)}}
	u1 := NewUpdate("t", rows)
	u2 := NewUpdate("t", rows)
	if u1.Signature() == u2.Signature() {
		t.Fatal("two identical updates must have distinct signatures")
	}
	if u1.Op() != OpUpdate || u1.Children() != nil {
		t.Fatal("update shape")
	}
	if u1.Schema().Len() != 1 {
		t.Fatal("update schema")
	}
}

func TestWalkAndCount(t *testing.T) {
	s := baseSchema()
	l := NewTableScan("l", s, nil, nil, false)
	r := NewTableScan("r", s, nil, nil, false)
	j := NewHashJoin(l, r, 0, 0)
	root := NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	var order []OpType
	Walk(root, func(n Node) { order = append(order, n.Op()) })
	if len(order) != 4 {
		t.Fatalf("walk visited %d nodes", len(order))
	}
	// Children before parents.
	if order[len(order)-1] != OpAggregate {
		t.Fatalf("walk order: %v", order)
	}
	if CountNodes(root) != 4 {
		t.Fatal("CountNodes")
	}
}

func TestSubtreeSignatureComposition(t *testing.T) {
	s := baseSchema()
	mk := func(c int64) Node {
		scan := NewTableScan("t", s, expr.EQ(expr.Col(0), expr.CInt(c)), nil, false)
		return NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggCount}})
	}
	if mk(1).Signature() != mk(1).Signature() {
		t.Fatal("identical trees must match")
	}
	if mk(1).Signature() == mk(2).Signature() {
		t.Fatal("different leaf constants must propagate to root signature")
	}
}
