// Explain renders plans as indented trees for logs, CLIs and examples.
package plan

import (
	"fmt"
	"strings"
)

// parSuffix renders an explicit intra-operator parallelism hint (0 — the
// inherited runtime default — prints nothing).
func parSuffix(p int) string {
	if p > 0 {
		return fmt.Sprintf(" par=%d", p)
	}
	return ""
}

// describe returns a one-line summary of a node (operator + key args).
func describe(n Node) string {
	switch x := n.(type) {
	case *TableScan:
		mode := "unordered"
		if x.Ordered {
			mode = "ordered"
		}
		f := ""
		if x.Filter != nil {
			f = " filter=" + x.Filter.Signature()
		}
		return fmt.Sprintf("TableScan %s (%s)%s%s", x.Table, mode, f, parSuffix(x.Parallelism))
	case *IndexScan:
		kind := "unclustered"
		if x.Clustered {
			kind = "clustered"
		}
		mode := "unordered"
		if x.Ordered {
			mode = "ordered"
		}
		rng := ""
		if x.Lo.IsValid() || x.Hi.IsValid() {
			rng = fmt.Sprintf(" range=[%s,%s]", x.Lo, x.Hi)
		}
		return fmt.Sprintf("IndexScan %s.%s (%s, %s)%s", x.Table, x.Col, kind, mode, rng)
	case *Filter:
		return "Filter " + x.Pred.Signature()
	case *Project:
		return fmt.Sprintf("Project %d exprs", len(x.Exprs))
	case *Sort:
		dir := "asc"
		if x.Desc {
			dir = "desc"
		}
		return fmt.Sprintf("Sort keys=%v %s", x.Keys, dir)
	case *MergeJoin:
		return fmt.Sprintf("MergeJoin L[%d]=R[%d]", x.LKey, x.RKey)
	case *HashJoin:
		return fmt.Sprintf("HashJoin build[%d]=probe[%d]%s", x.LKey, x.RKey, parSuffix(x.Parallelism))
	case *NLJoin:
		return "NLJoin " + x.Pred.Signature()
	case *Aggregate:
		parts := make([]string, len(x.Specs))
		for i, s := range x.Specs {
			parts[i] = s.Signature()
		}
		return "Aggregate " + strings.Join(parts, ", ") + parSuffix(x.Parallelism)
	case *GroupBy:
		return fmt.Sprintf("GroupBy keys=%v (%d aggs)%s", x.Keys, len(x.Specs), parSuffix(x.Parallelism))
	case *Update:
		return fmt.Sprintf("Update %s (%d rows)", x.Table, len(x.Rows))
	default:
		return string(n.Op())
	}
}

// Explain renders the plan as an indented tree, one node per line, the way
// EXPLAIN output reads in most engines (root first).
func Explain(n Node) string { return ExplainFunc(n, nil) }

// ExplainFunc is Explain with a per-node annotation hook: annot's return
// value (e.g. " rows≈42" from a cardinality estimator) is appended to that
// node's line. A nil annot renders the plain tree.
func ExplainFunc(n Node, annot func(Node) string) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(describe(n))
		if annot != nil {
			b.WriteString(annot(n))
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
