// Plan validation: structural checks run before a plan is admitted. The
// builder layer resolves column *names*; this hook guards the positional
// layer underneath it (and hand-built plans from the workload packages, the
// harness and embedders) so an out-of-range column reference fails at submit
// with a typed error instead of panicking inside a µEngine worker.
package plan

import (
	"fmt"

	"qpipe/internal/expr"
)

// ValidationError reports a structurally invalid plan node.
type ValidationError struct {
	Op  OpType // the offending node's operator type
	Msg string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("plan: invalid %s node: %s", e.Op, e.Msg)
}

// Validate walks the plan bottom-up checking every column reference —
// filter and projection expressions, join keys, sort keys, group keys and
// aggregate arguments — against the schema of the node's input. It returns
// the first violation as a *ValidationError.
func Validate(root Node) error {
	var err error
	Walk(root, func(n Node) {
		if err != nil {
			return
		}
		err = validateNode(n)
	})
	return err
}

// checkRefs bounds-checks collected column references against width.
func checkRefs(op OpType, what string, width int, collect func(fn func(int))) error {
	var bad int = -1
	collect(func(ix int) {
		if (ix < 0 || ix >= width) && bad < 0 {
			bad = ix
		}
	})
	if bad >= 0 {
		return &ValidationError{Op: op, Msg: fmt.Sprintf("%s references column %d of a %d-column input", what, bad, width)}
	}
	return nil
}

func checkKeys(op OpType, what string, width int, keys []int) error {
	for _, k := range keys {
		if k < 0 || k >= width {
			return &ValidationError{Op: op, Msg: fmt.Sprintf("%s key %d out of range for a %d-column input", what, k, width)}
		}
	}
	return nil
}

func validateNode(n Node) error {
	switch x := n.(type) {
	case *TableScan:
		w := x.TableSchema.Len()
		if x.Filter != nil {
			if err := checkRefs(x.Op(), "filter", w, func(fn func(int)) { expr.PredRefs(x.Filter, fn) }); err != nil {
				return err
			}
		}
		return checkKeys(x.Op(), "projection", w, x.Project)
	case *IndexScan:
		w := x.TableSchema.Len()
		if x.TableSchema.ColIndex(x.Col) < 0 {
			return &ValidationError{Op: x.Op(), Msg: fmt.Sprintf("index column %q not in table schema", x.Col)}
		}
		if x.Filter != nil {
			if err := checkRefs(x.Op(), "filter", w, func(fn func(int)) { expr.PredRefs(x.Filter, fn) }); err != nil {
				return err
			}
		}
		return checkKeys(x.Op(), "projection", w, x.Project)
	case *Filter:
		w := x.Child.Schema().Len()
		return checkRefs(x.Op(), "predicate", w, func(fn func(int)) { expr.PredRefs(x.Pred, fn) })
	case *Project:
		w := x.Child.Schema().Len()
		for i, e := range x.Exprs {
			if err := checkRefs(x.Op(), fmt.Sprintf("expression %d", i), w, func(fn func(int)) { expr.ExprRefs(e, fn) }); err != nil {
				return err
			}
		}
	case *Sort:
		return checkKeys(x.Op(), "sort", x.Child.Schema().Len(), x.Keys)
	case *MergeJoin:
		if err := checkKeys(x.Op(), "left", x.Left.Schema().Len(), []int{x.LKey}); err != nil {
			return err
		}
		return checkKeys(x.Op(), "right", x.Right.Schema().Len(), []int{x.RKey})
	case *HashJoin:
		if err := checkKeys(x.Op(), "build", x.Left.Schema().Len(), []int{x.LKey}); err != nil {
			return err
		}
		return checkKeys(x.Op(), "probe", x.Right.Schema().Len(), []int{x.RKey})
	case *NLJoin:
		w := x.Left.Schema().Len() + x.Right.Schema().Len()
		return checkRefs(x.Op(), "predicate", w, func(fn func(int)) { expr.PredRefs(x.Pred, fn) })
	case *Aggregate:
		w := x.Child.Schema().Len()
		for _, s := range x.Specs {
			if s.Arg == nil {
				continue
			}
			if err := checkRefs(x.Op(), s.Signature(), w, func(fn func(int)) { expr.ExprRefs(s.Arg, fn) }); err != nil {
				return err
			}
		}
	case *GroupBy:
		w := x.Child.Schema().Len()
		if err := checkKeys(x.Op(), "group", w, x.Keys); err != nil {
			return err
		}
		for _, s := range x.Specs {
			if s.Arg == nil {
				continue
			}
			if err := checkRefs(x.Op(), s.Signature(), w, func(fn func(int)) { expr.ExprRefs(s.Arg, fn) }); err != nil {
				return err
			}
		}
	}
	return nil
}
