// Plan normalization: the final canonicalization pass before a plan is
// admitted. Predicates and expressions are rewritten into the expr
// package's normal form, chained filters are collapsed, and filters are
// pushed toward the leaves — into scan nodes (where the scan µEngine
// applies them per-consumer without breaking page-stream sharing) and below
// joins and sorts. Two semantically equivalent plans that converge under
// these rules render byte-identical Signature() strings, which is exactly
// what the OSP coordinator compares (§4.3) — so normalization directly
// raises sharing hit rates.
//
// Invariants:
//   - input trees are never mutated (builder queries share subtree
//     prefixes); rewritten nodes are shallow copies
//   - output schemas are preserved node-for-node at the root
//   - parallelism/batch hints survive the rewrite but stay excluded from
//     signatures (they change strategy, not results)
//   - idempotent: Normalize(Normalize(p)) == Normalize(p)
package plan

import "qpipe/internal/expr"

// Normalize returns the canonical form of the plan rooted at n. The result
// evaluates to the same rows (up to order already unspecified by the plan)
// and has the same output schema.
func Normalize(n Node) Node {
	switch x := n.(type) {
	case *TableScan:
		cp := *x
		cp.Filter = normFilterPred(x.Filter)
		return &cp
	case *IndexScan:
		cp := *x
		cp.Filter = normFilterPred(x.Filter)
		return &cp
	case *Filter:
		return pushFilter(Normalize(x.Child), expr.NormalizePred(x.Pred))
	case *Project:
		cp := *x
		cp.Child = Normalize(x.Child)
		exprs := make([]expr.Expr, len(x.Exprs))
		for i, e := range x.Exprs {
			exprs[i] = expr.NormalizeExpr(e)
		}
		cp.Exprs = exprs
		return &cp
	case *Sort:
		cp := *x
		cp.Child = Normalize(x.Child)
		return &cp
	case *MergeJoin:
		cp := *x
		cp.Left, cp.Right = Normalize(x.Left), Normalize(x.Right)
		return &cp
	case *HashJoin:
		cp := *x
		cp.Left, cp.Right = Normalize(x.Left), Normalize(x.Right)
		return &cp
	case *NLJoin:
		cp := *x
		cp.Left, cp.Right = Normalize(x.Left), Normalize(x.Right)
		if x.Pred != nil {
			// Single-side conjuncts of the join predicate push into the
			// inputs (same rows: an inner NLJoin filters the cross product,
			// so filtering either input early is equivalent), leaving only
			// genuinely cross-side work at the join.
			left, right, rest := splitJoinPred(expr.NormalizePred(x.Pred), len(cp.Left.Schema().Cols))
			if left != nil {
				cp.Left = pushFilter(cp.Left, left)
			}
			if right != nil {
				cp.Right = pushFilter(cp.Right, right)
			}
			if rest != nil {
				cp.Pred = rest
			} else {
				cp.Pred = expr.True{}
			}
		}
		return &cp
	case *Aggregate:
		cp := *x
		cp.Child = Normalize(x.Child)
		cp.Specs = normSpecs(x.Specs)
		return &cp
	case *GroupBy:
		cp := *x
		cp.Child = Normalize(x.Child)
		cp.Specs = normSpecs(x.Specs)
		return &cp
	default:
		// Update and any future node types pass through untouched.
		return n
	}
}

// normFilterPred canonicalizes a scan-resident predicate; an
// always-true predicate drops to nil (the unfiltered scan form).
func normFilterPred(p expr.Pred) expr.Pred {
	if p == nil {
		return nil
	}
	np := expr.NormalizePred(p)
	if _, ok := np.(expr.True); ok {
		return nil
	}
	return np
}

func normSpecs(specs []expr.AggSpec) []expr.AggSpec {
	out := make([]expr.AggSpec, len(specs))
	copy(out, specs)
	for i := range out {
		if out[i].Arg != nil {
			out[i].Arg = expr.NormalizeExpr(out[i].Arg)
		}
	}
	return out
}

// pushFilter places an already-normalized predicate over an
// already-normalized child, pushing it as far toward the leaves as
// possible. Chained Filter nodes collapse into one conjunction first.
func pushFilter(child Node, pred expr.Pred) Node {
	for {
		f, ok := child.(*Filter)
		if !ok {
			break
		}
		pred = expr.NormalizePred(expr.AndOf(pred, f.Pred))
		child = f.Child
	}
	if _, ok := pred.(expr.True); ok {
		return child
	}

	switch c := child.(type) {
	case *TableScan:
		// Merge into the scan predicate — but only when the scan emits raw
		// rows: the scan µEngine applies Filter before Project, so a pushed
		// predicate under a projection would see the wrong column indexes.
		if c.Project == nil {
			cp := *c
			cp.Filter = mergeScanFilter(c.Filter, pred)
			return &cp
		}
	case *IndexScan:
		if c.Project == nil {
			cp := *c
			cp.Filter = mergeScanFilter(c.Filter, pred)
			return &cp
		}
	case *Sort:
		// Filters commute with sorting (same schema, order preserved).
		cp := *c
		cp.Child = pushFilter(c.Child, pred)
		return &cp
	case *HashJoin:
		left, right, rest := splitJoinPred(pred, len(c.Left.Schema().Cols))
		if left != nil || right != nil {
			cp := *c
			if left != nil {
				cp.Left = pushFilter(c.Left, left)
			}
			if right != nil {
				cp.Right = pushFilter(c.Right, right)
			}
			return wrapResidual(&cp, rest)
		}
	case *MergeJoin:
		left, right, rest := splitJoinPred(pred, len(c.Left.Schema().Cols))
		if left != nil || right != nil {
			cp := *c
			if left != nil {
				cp.Left = pushFilter(c.Left, left)
			}
			if right != nil {
				cp.Right = pushFilter(c.Right, right)
			}
			return wrapResidual(&cp, rest)
		}
	case *NLJoin:
		left, right, rest := splitJoinPred(pred, len(c.Left.Schema().Cols))
		cp := *c
		if left != nil {
			cp.Left = pushFilter(c.Left, left)
		}
		if right != nil {
			cp.Right = pushFilter(c.Right, right)
		}
		if rest != nil {
			// Cross-side conjuncts fold into the join predicate itself.
			if cp.Pred != nil {
				cp.Pred = expr.NormalizePred(expr.AndOf(cp.Pred, rest))
			} else {
				cp.Pred = rest
			}
		}
		return &cp
	}
	return &Filter{Child: child, Pred: pred}
}

func mergeScanFilter(existing, pred expr.Pred) expr.Pred {
	if existing == nil {
		return pred
	}
	return normFilterPred(expr.AndOf(existing, pred))
}

func wrapResidual(n Node, rest expr.Pred) Node {
	if rest == nil {
		return n
	}
	return &Filter{Child: n, Pred: rest}
}

// splitJoinPred partitions a conjunction over a join's concatenated output
// into a left-side predicate, a right-side predicate (re-based onto the
// right input's columns), and a residual of cross-side or column-free
// conjuncts. Any of the three may be nil.
func splitJoinPred(pred expr.Pred, leftWidth int) (left, right, rest expr.Pred) {
	var conjuncts []expr.Pred
	if a, ok := pred.(*expr.And); ok {
		conjuncts = a.Ps
	} else {
		conjuncts = []expr.Pred{pred}
	}
	var ls, rs, xs []expr.Pred
	for _, c := range conjuncts {
		lo, hi, any := refRange(c)
		switch {
		case !any:
			xs = append(xs, c) // column-free (e.g. False): keep above the join
		case hi < leftWidth:
			ls = append(ls, c)
		case lo >= leftWidth:
			rs = append(rs, expr.ShiftPred(c, -leftWidth))
		default:
			xs = append(xs, c)
		}
	}
	return conjOf(ls), conjOf(rs), conjOf(xs)
}

func conjOf(ps []expr.Pred) expr.Pred {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return expr.NormalizePred(expr.AndOf(ps...))
}

// refRange reports the min/max column index referenced by p, and whether it
// references any column at all.
func refRange(p expr.Pred) (lo, hi int, any bool) {
	expr.PredRefs(p, func(ix int) {
		if !any || ix < lo {
			lo = ix
		}
		if !any || ix > hi {
			hi = ix
		}
		any = true
	})
	return lo, hi, any
}
