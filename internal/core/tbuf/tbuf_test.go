package tbuf

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"qpipe/internal/tuple"
)

func batchOf(vals ...int64) Batch {
	b := make(Batch, len(vals))
	for i, v := range vals {
		b[i] = tuple.Tuple{tuple.I64(v)}
	}
	return b
}

func TestPutGetFIFO(t *testing.T) {
	b := New(4)
	b.Put(batchOf(1, 2))
	b.Put(batchOf(3))
	got, err := b.Get()
	if err != nil || len(got) != 2 || got[0][0].I != 1 {
		t.Fatalf("first batch: %v %v", got, err)
	}
	got, _ = b.Get()
	if got[0][0].I != 3 {
		t.Fatalf("second batch: %v", got)
	}
}

func TestGetAfterCloseEOF(t *testing.T) {
	b := New(2)
	b.Put(batchOf(1))
	b.Close(nil)
	if _, err := b.Get(); err != nil {
		t.Fatal("queued batch should drain after close")
	}
	if _, err := b.Get(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCloseWithError(t *testing.T) {
	want := errors.New("boom")
	b := New(2)
	b.Close(want)
	if _, err := b.Get(); err != want {
		t.Fatalf("want close error, got %v", err)
	}
	if err := b.Put(batchOf(1)); err == nil {
		t.Fatal("put after close should fail")
	}
	// First close error wins.
	b.Close(errors.New("other"))
	if _, err := b.Get(); err != want {
		t.Fatal("second close must not override")
	}
}

func TestPutBlocksWhenFull(t *testing.T) {
	b := New(1)
	b.Put(batchOf(1))
	done := make(chan error, 1)
	go func() { done <- b.Put(batchOf(2)) }()
	select {
	case <-done:
		t.Fatal("put should block on full buffer")
	case <-time.After(20 * time.Millisecond):
	}
	if s := b.Snapshot(); s.State != StateFull || !s.PutBlocked {
		t.Fatalf("snapshot: %+v", s)
	}
	b.Get()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestGetBlocksWhenEmpty(t *testing.T) {
	b := New(1)
	got := make(chan Batch, 1)
	go func() {
		batch, _ := b.Get()
		got <- batch
	}()
	select {
	case <-got:
		t.Fatal("get should block on empty buffer")
	case <-time.After(20 * time.Millisecond):
	}
	b.Put(batchOf(9))
	batch := <-got
	if batch[0][0].I != 9 {
		t.Fatalf("got %v", batch)
	}
}

func TestAbandonWakesProducer(t *testing.T) {
	b := New(1)
	b.Put(batchOf(1))
	done := make(chan error, 1)
	go func() { done <- b.Put(batchOf(2)) }()
	time.Sleep(10 * time.Millisecond)
	b.Abandon()
	if err := <-done; err != ErrAbandoned {
		t.Fatalf("want ErrAbandoned, got %v", err)
	}
	if err := b.Put(batchOf(3)); err != ErrAbandoned {
		t.Fatal("put after abandon should fail")
	}
}

func TestSetUnboundedUnblocks(t *testing.T) {
	b := New(1)
	b.Put(batchOf(1))
	done := make(chan error, 1)
	go func() { done <- b.Put(batchOf(2)) }()
	time.Sleep(10 * time.Millisecond)
	b.SetUnbounded()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !b.Unbounded() {
		t.Fatal("Unbounded")
	}
	// Many puts without a consumer now succeed.
	for i := 0; i < 100; i++ {
		if err := b.Put(batchOf(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmptyBatchNoop(t *testing.T) {
	b := New(1)
	if err := b.Put(nil); err != nil {
		t.Fatal(err)
	}
	if s := b.Snapshot(); s.Queued != 0 {
		t.Fatal("empty put must not enqueue")
	}
}

func TestTotalsAndDrain(t *testing.T) {
	b := New(8)
	b.Put(batchOf(1, 2, 3))
	b.Put(batchOf(4))
	b.Close(nil)
	n, err := b.Drain()
	if err != nil || n != 4 {
		t.Fatalf("drain: %d %v", n, err)
	}
	in, out := b.Totals()
	if in != 4 || out != 4 {
		t.Fatalf("totals: %d %d", in, out)
	}
}

func TestProducerConsumerStress(t *testing.T) {
	b := New(4)
	const total = 5000
	var got int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := b.Put(batchOf(int64(i))); err != nil {
				t.Error(err)
				return
			}
		}
		b.Close(nil)
	}()
	go func() {
		defer wg.Done()
		for {
			batch, err := b.Get()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			got += int64(len(batch))
		}
	}()
	wg.Wait()
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
}

// ---- SharedOut --------------------------------------------------------------

func TestSharedOutFanOut(t *testing.T) {
	primary := New(16)
	so := NewSharedOut(primary, 1024)
	sat := New(16)
	if !so.Attach(sat) {
		t.Fatal("attach before output should succeed")
	}
	so.Put(batchOf(1, 2))
	so.Put(batchOf(3))
	so.Close(nil)
	for name, buf := range map[string]*Buffer{"primary": primary, "sat": sat} {
		n, err := buf.Drain()
		if err != nil || n != 3 {
			t.Fatalf("%s: %d %v", name, n, err)
		}
	}
}

func TestSharedOutReplayOnLateAttach(t *testing.T) {
	primary := New(16)
	so := NewSharedOut(primary, 1024)
	so.Put(batchOf(1, 2, 3))
	sat := New(16)
	if !so.Attach(sat) {
		t.Fatal("attach within replay window should succeed")
	}
	so.Put(batchOf(4))
	so.Close(nil)
	n, _ := sat.Drain()
	if n != 4 {
		t.Fatalf("satellite got %d tuples, want 4 (3 replayed + 1 live)", n)
	}
	n, _ = primary.Drain()
	if n != 4 {
		t.Fatalf("primary got %d tuples", n)
	}
}

func TestSharedOutReplayWindowExpires(t *testing.T) {
	primary := New(1024)
	so := NewSharedOut(primary, 2) // tiny window
	so.Put(batchOf(1, 2, 3))       // exceeds window -> replay invalidated
	sat := New(16)
	if so.Attach(sat) {
		t.Fatal("attach past replay window must fail (WoP expired)")
	}
	so.Close(nil)
	primary.Drain()
}

func TestSharedOutZeroReplayStrictStep(t *testing.T) {
	primary := New(1024)
	so := NewSharedOut(primary, 0)
	sat := New(16)
	if !so.Attach(sat) {
		t.Fatal("attach before any output should succeed even with zero window")
	}
	so.Put(batchOf(1))
	sat2 := New(16)
	if so.Attach(sat2) {
		t.Fatal("attach after first output must fail with zero window")
	}
	so.Close(nil)
}

func TestSharedOutNegativeReplayKeepsAll(t *testing.T) {
	primary := New(1024)
	so := NewSharedOut(primary, -1)
	for i := 0; i < 50; i++ {
		so.Put(batchOf(int64(i)))
	}
	sat := New(64)
	if !so.Attach(sat) {
		t.Fatal("attach with unlimited replay should succeed")
	}
	so.Close(nil)
	n, _ := sat.Drain()
	if n != 50 {
		t.Fatalf("satellite got %d, want 50", n)
	}
}

func TestSharedOutDetachOnAbandon(t *testing.T) {
	primary := New(1024)
	so := NewSharedOut(primary, 1024)
	sat := New(1)
	so.Attach(sat)
	sat.Abandon()
	if err := so.Put(batchOf(1)); err != nil {
		t.Fatalf("put should survive one abandoned consumer: %v", err)
	}
	if so.NumConsumers() != 1 {
		t.Fatalf("abandoned consumer not detached: %d", so.NumConsumers())
	}
	primary.Abandon()
	if err := so.Put(batchOf(2)); err != ErrConsumersGone {
		t.Fatalf("put with all consumers gone: %v", err)
	}
}

func TestSharedOutAttachAfterClose(t *testing.T) {
	primary := New(4)
	so := NewSharedOut(primary, 1024)
	so.Close(nil)
	if so.Attach(New(4)) {
		t.Fatal("attach after close must fail")
	}
}

func TestSharedOutArrayIsolation(t *testing.T) {
	// Lease protocol: consumers share the immutable rows by reference but
	// never the batch arrays — the primary recycling (or overwriting slots
	// of) its array must not disturb what a satellite sees.
	pool := NewBatchPool(4)
	primary := New(16).UsePool(pool)
	so := NewSharedOut(primary, 1024).UsePool(pool)
	sat := New(16).UsePool(pool)
	so.Attach(sat)
	orig := tuple.Tuple{tuple.I64(1), tuple.Str("x")}
	so.Put(append(so.NewBatch(1), orig))
	so.Close(nil)
	pb, _ := primary.Get()
	sb, _ := sat.Get()
	if &sb[0][0] != &pb[0][0] {
		t.Fatal("consumers should share the immutable row, not copies")
	}
	// The primary gives up its array lease; the pool clears and reuses the
	// very same array. The satellite's own array — and the shared row — are
	// untouched.
	primary.Recycle(pb)
	reused := pool.Get()
	if &reused[:1][0] != &pb[:1][0] {
		t.Fatal("recycled primary array should be what the pool serves next")
	}
	reused = append(reused, tuple.Tuple{tuple.I64(999)})
	if sb[0][0].I != 1 || sb[0][1].S != "x" {
		t.Fatal("recycling the primary's array corrupted the satellite's view")
	}
}

func TestBatchPoolRecycle(t *testing.T) {
	pool := NewBatchPool(8)
	b := pool.Get()
	if len(b) != 0 || cap(b) != 8 {
		t.Fatalf("fresh batch: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, tuple.Tuple{tuple.I64(1)})
	pool.Put(b)
	r := pool.Get()
	if cap(r) != 8 || len(r) != 0 {
		t.Fatalf("recycled batch: len=%d cap=%d", len(r), cap(r))
	}
	// Entries must be cleared so pooled arrays never pin tuples.
	if r[:1][0] != nil {
		t.Fatal("pooled array retains tuple references")
	}
	// Undersized arrays are dropped, not pooled.
	pool.Put(make(Batch, 0, 4))
	if got := pool.GetCap(8); cap(got) != 8 {
		t.Fatalf("undersized array entered the pool: cap=%d", cap(got))
	}
	// Oversized requests allocate exactly; nil pools degrade to make.
	if got := pool.GetCap(32); cap(got) != 32 {
		t.Fatalf("GetCap(32): cap=%d", cap(got))
	}
	var nilPool *BatchPool
	if got := nilPool.GetCap(3); cap(got) != 3 {
		t.Fatal("nil pool GetCap should allocate")
	}
	nilPool.Put(make(Batch, 0, 3)) // must not panic
}

func TestBufferAbandonRecyclesQueue(t *testing.T) {
	pool := NewBatchPool(2)
	b := New(8).UsePool(pool)
	b.Put(batchOf(1, 2))
	b.Put(batchOf(3, 4))
	b.Abandon()
	pool.mu.Lock()
	free := len(pool.free)
	pool.mu.Unlock()
	if free != 2 {
		t.Fatalf("abandoned queue should return arrays to the pool, free=%d", free)
	}
}

func TestSharedOutProducedCount(t *testing.T) {
	so := NewSharedOut(New(16), 1024)
	so.Put(batchOf(1, 2))
	if so.Produced() != 2 {
		t.Fatalf("produced: %d", so.Produced())
	}
	if len(so.Consumers()) != 1 {
		t.Fatal("consumers snapshot")
	}
}
