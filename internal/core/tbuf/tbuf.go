// Package tbuf implements QPipe's intermediate tuple buffers: the bounded
// producer/consumer queues that link µEngines into pipelines (paper §4.2,
// "data flow between µEngines occurs through dedicated buffers"), and the
// fan-out ports that pipeline one operator's output to many queries
// simultaneously (the 1-producer, N-consumers relationship of §4.3).
//
// Three paper mechanisms live here:
//
//   - Bounded flow control: a full buffer blocks the producer, so all
//     participants "adjust their consuming speed to the speed of the
//     slowest consumer".
//   - The buffering enhancement function (§3.2, Figure 4b): SharedOut
//     retains a bounded replay window of produced tuples so a satellite can
//     attach after the first output tuple and still receive everything
//     (OSP coordinator step 3: "copies the output tuples ... still in Q1's
//     buffer, to Q2's output buffer").
//   - Materialization on demand: SetUnbounded lifts a buffer's bound, which
//     is how the deadlock detector breaks cycles by materializing a buffer
//     instead of blocking (§4.3.3).
package tbuf

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"qpipe/internal/tuple"
)

// Batch is a group of tuples moved through a buffer at once (push-based
// engines move batches, not single tuples, to amortize synchronization; cf.
// the paper's discussion of buffering [31]).
//
// Batches obey the engine's lease protocol: the backing array of a batch has
// exactly one owner at a time — the producer that drew it from a BatchPool,
// then the buffer queue it was Put into, then the consumer its Get returned
// it to. The tuples inside are immutable once Put and may be retained by
// reference indefinitely; the array must not be. When the consumer has
// copied or processed every row it returns the array to the pool with
// Buffer.Recycle (fan-out ports give every attached consumer its own array,
// so no reference counting is needed — see SharedOut.Put).
type Batch = []tuple.Tuple

// ---- BatchPool ---------------------------------------------------------------

// poolMaxFree bounds a pool's free list; beyond it, returned arrays are left
// to the garbage collector (backstop against a burst of unbounded
// materialization pinning memory forever).
const poolMaxFree = 256

// BatchPool recycles batch backing arrays. One pool serves a whole runtime
// (sized to Config.BatchSize), so the emitter that produces a batch and the
// cursor that consumes it agree on one array size and the steady-state hot
// path allocates nothing. A nil *BatchPool is valid and degrades to plain
// make/garbage-collection.
type BatchPool struct {
	mu   sync.Mutex
	free []Batch
	size int
}

// NewBatchPool creates a pool recycling arrays of capacity size (minimum 1).
func NewBatchPool(size int) *BatchPool {
	if size < 1 {
		size = 1
	}
	return &BatchPool{size: size}
}

// Get returns an empty batch with capacity >= the pool's batch size.
func (p *BatchPool) Get() Batch {
	if p == nil {
		return nil
	}
	return p.GetCap(p.size)
}

// GetCap returns an empty batch with capacity >= n. Every free-list entry
// has capacity >= the pool size, so requests at or below it always reuse;
// larger requests (a page worth of tuples for a scan consumer) probe a few
// recently returned arrays for one big enough — page-sized arrays recycle
// through the pool too (Put accepts any cap >= size), so the per-page scan
// fan-out also reaches an allocation-free steady state.
func (p *BatchPool) GetCap(n int) Batch {
	if p == nil {
		return make(Batch, 0, n)
	}
	p.mu.Lock()
	for i, probed := len(p.free)-1, 0; i >= 0 && probed < 4; i, probed = i-1, probed+1 {
		if cap(p.free[i]) >= n {
			b := p.free[i]
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.mu.Unlock()
			return b
		}
	}
	p.mu.Unlock()
	if n < p.size {
		n = p.size
	}
	return make(Batch, 0, n)
}

// Put returns a batch's backing array to the pool. The caller must hold the
// array's lease (it must be the batch's sole owner) and must not touch the
// batch afterwards. Entries are cleared so a pooled array never pins tuples.
func (p *BatchPool) Put(b Batch) {
	if p == nil || cap(b) < p.size {
		return
	}
	b = b[:cap(b)]
	clear(b)
	p.mu.Lock()
	if len(p.free) < poolMaxFree {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}

// ErrAbandoned is returned by Put after the consumer abandoned the buffer
// (its query was cancelled or became a satellite of another packet).
var ErrAbandoned = errors.New("tbuf: consumer abandoned buffer")

// ErrConsumersGone is returned by SharedOut.Put when every attached consumer
// has abandoned its buffer — the port's work is wanted by nobody. It is the
// only SharedOut.Put error an operator may treat as a clean early stop;
// anything else (a forced close carrying a disk fault, a cancellation
// surfaced by the emitter) is a real failure and must propagate as the
// packet's terminal error.
var ErrConsumersGone = errors.New("tbuf: all consumers gone")

// State classifies buffer occupancy for the deadlock detector's Waits-For
// graph, which needs exactly the full/empty/non-empty distinction of the
// paper's model (§4.3.3).
type State int

// Buffer occupancy states.
const (
	StateEmpty State = iota
	StatePartial
	StateFull
)

func (s State) String() string {
	return [...]string{"empty", "partial", "full"}[s]
}

// Buffer is a bounded FIFO of batches with one producer and one consumer.
type Buffer struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	queue     []Batch
	capacity  int // max queued batches; <=0 means unbounded
	pool      *BatchPool
	closed    bool
	closeErr  error
	abandoned bool

	putBlocked bool
	getBlocked bool

	totalIn  int64
	totalOut int64

	// Producer and Consumer are packet IDs used by the deadlock detector
	// to build Waits-For edges. They are atomics because OSP re-binds a
	// buffer's producer at run time: a scan consumer attached to a shared
	// circular scanner reports the scanner's host packet as its producer,
	// so the detector sees the 1-producer-N-consumers structure (§4.3.3).
	Producer atomic.Int64
	Consumer atomic.Int64

	// Label names the buffer in diagnostics (e.g. "q3/sort->mjoin").
	Label string
}

// New creates a buffer bounded to capacity batches (minimum 1).
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	b := &Buffer{capacity: capacity}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// UsePool attaches a batch pool, enabling Recycle. Returns the buffer for
// chaining at construction.
func (b *Buffer) UsePool(p *BatchPool) *Buffer {
	b.pool = p
	return b
}

// Recycle returns a batch previously obtained from Get to the buffer's pool
// (no-op without a pool). The caller gives up its lease: the array must not
// be used afterwards, though tuples copied out of it stay valid forever.
func (b *Buffer) Recycle(batch Batch) {
	b.pool.Put(batch)
}

// Put enqueues one batch, blocking while the buffer is full. It returns
// ErrAbandoned if the consumer is gone, or the close error if the buffer was
// force-closed underneath the producer.
func (b *Buffer) Put(batch Batch) error {
	if len(batch) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.abandoned {
			return ErrAbandoned
		}
		if b.closed {
			if b.closeErr != nil {
				return b.closeErr
			}
			return errors.New("tbuf: put on closed buffer")
		}
		if b.capacity <= 0 || len(b.queue) < b.capacity {
			break
		}
		b.putBlocked = true
		b.notFull.Wait()
		b.putBlocked = false
	}
	b.queue = append(b.queue, batch)
	b.totalIn += int64(len(batch))
	b.notEmpty.Signal()
	return nil
}

// Get dequeues one batch, blocking while the buffer is empty and open.
// After the producer closes the buffer and the queue drains, Get returns
// (nil, io.EOF) on a clean close or (nil, err) on an errored close.
//
// An abandoned buffer reports ErrAbandoned even when it was also closed:
// Abandon drops whatever was still queued, so a consumer that keeps reading
// past its own teardown (a cancelled query's operator racing the Cancel)
// must never mistake the truncated stream for a clean EOF — an aggregate
// that did would emit a silently short result, and through an attached OSP
// satellite hand that corrupt row to an innocent query (the 1-in-20 lost
// page of TestSatelliteRescuedFromCancelledHost).
func (b *Buffer) Get() (Batch, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.queue) > 0 {
			batch := b.queue[0]
			b.queue = b.queue[1:]
			b.totalOut += int64(len(batch))
			b.notFull.Signal()
			return batch, nil
		}
		if b.abandoned {
			return nil, ErrAbandoned
		}
		if b.closed {
			if b.closeErr != nil {
				return nil, b.closeErr
			}
			return nil, io.EOF
		}
		b.getBlocked = true
		b.notEmpty.Wait()
		b.getBlocked = false
	}
}

// Close marks the producer done. A nil err means clean end-of-stream; the
// consumer sees io.EOF after draining. A non-nil err propagates to both
// sides. Closing twice keeps the first error.
func (b *Buffer) Close(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.closeErr = err
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}

// Abandon marks the consumer gone: pending and future Puts fail with
// ErrAbandoned and queued batches are dropped (their arrays return to the
// pool — the queue owned their lease and nobody will Get them).
func (b *Buffer) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.abandoned = true
	for _, batch := range b.queue {
		b.pool.Put(batch)
	}
	b.queue = nil
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}

// SetUnbounded removes the capacity bound (deadlock resolution by
// materialization): any blocked producer wakes and completes its Put.
func (b *Buffer) SetUnbounded() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = 0
	b.notFull.Broadcast()
}

// Unbounded reports whether the capacity bound has been lifted.
func (b *Buffer) Unbounded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity <= 0
}

// IsAbandoned reports whether the consumer abandoned the buffer.
func (b *Buffer) IsAbandoned() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.abandoned
}

// Snapshot captures the buffer's occupancy and blocking state.
type Snapshot struct {
	State      State
	PutBlocked bool
	GetBlocked bool
	Closed     bool
	Abandoned  bool
	Queued     int // batches
	QueuedTup  int64
	Producer   int64
	Consumer   int64
	Label      string
}

// Snapshot returns the current state for the deadlock detector.
func (b *Buffer) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := StatePartial
	switch {
	case len(b.queue) == 0:
		st = StateEmpty
	case b.capacity > 0 && len(b.queue) >= b.capacity:
		st = StateFull
	}
	var queuedTup int64
	for _, batch := range b.queue {
		queuedTup += int64(len(batch))
	}
	return Snapshot{
		State:      st,
		PutBlocked: b.putBlocked,
		GetBlocked: b.getBlocked,
		Closed:     b.closed,
		Abandoned:  b.abandoned,
		Queued:     len(b.queue),
		QueuedTup:  queuedTup,
		Producer:   b.Producer.Load(),
		Consumer:   b.Consumer.Load(),
		Label:      b.Label,
	}
}

// Totals returns cumulative tuples in and out.
func (b *Buffer) Totals() (in, out int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalIn, b.totalOut
}

// Drain consumes the buffer to EOF, returning the tuple count (test/client
// helper for queries whose results are discarded, as in the paper's setup).
// Drained batches are recycled — nothing outlives the count.
func (b *Buffer) Drain() (int64, error) {
	var n int64
	for {
		batch, err := b.Get()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n += int64(len(batch))
		b.Recycle(batch)
	}
}

// ---- SharedOut ---------------------------------------------------------------

// SharedOut is an operator's output port. It starts with one target buffer
// (the packet's own consumer) and accepts additional satellite buffers at
// run time; every produced batch is pipelined to all attached targets
// simultaneously. Under the lease protocol the primary consumer receives
// the producer's array itself and each satellite receives its own
// (pool-drawn) array holding the same immutable tuples — consumers share
// rows by reference but never share the arrays they advance through, so
// each can recycle independently without reference counting. A bounded
// replay window of produced tuples supports late attachment (the buffering
// enhancement); the window retains rows, not arrays, so it pins no lease.
//
// Put is safe to call from multiple producing goroutines — the partitioned
// scan fans P partition workers into one consumer's port, and the parallel
// hash-join/group-by stages do the same with per-worker emitters — because
// the replay append, produced counter, and target snapshot share one
// critical section. The port makes no cross-batch ordering guarantee under
// concurrent producers, so only order-insensitive streams (unordered scans,
// hash-join and grouped-aggregate output) may multi-produce.
type SharedOut struct {
	mu   sync.Mutex
	outs []*Buffer
	// producerID is the packet identity stamped onto every attached
	// buffer for the deadlock detector; rebindable when a shared scanner
	// takes over production (see Buffer.Producer).
	producerID int64

	replay      []tuple.Tuple
	replayLimit int
	replayValid bool
	produced    int64
	closed      bool
	pool        *BatchPool
}

// NewSharedOut creates a port writing to primary, retaining up to
// replayLimit produced tuples for late attachment. replayLimit zero
// disables replay (spike semantics after the first tuple); negative retains
// everything (full materialization).
func NewSharedOut(primary *Buffer, replayLimit int) *SharedOut {
	return &SharedOut{outs: []*Buffer{primary}, replayLimit: replayLimit, replayValid: true}
}

// UsePool attaches the runtime's batch pool: satellite copies and replay
// batches draw from it, and NewBatch serves producers (emitters). Returns
// the port for chaining.
func (s *SharedOut) UsePool(p *BatchPool) *SharedOut {
	s.pool = p
	return s
}

// NewBatch leases an empty batch array of capacity >= n for a producer to
// fill and Put (falls back to a plain allocation without a pool).
func (s *SharedOut) NewBatch(n int) Batch {
	return s.pool.GetCap(n)
}

// Put pipelines one batch to every attached consumer, blocking on the
// slowest. Consumers that abandoned their buffer are detached. Put returns
// ErrConsumersGone only when no consumers remain (the producing operator
// should then stop — its work is wanted by nobody); a consumer buffer that
// fails for any other reason (force-closed with an error) propagates that
// error instead, so real faults are never mistaken for disinterest.
//
// Put consumes the batch's array lease unconditionally — on success it
// belongs to the primary consumer, on failure Put reclaims it into the
// pool itself (only Put knows whether the primary enqueued it) — so the
// caller must not touch the batch afterwards either way.
func (s *SharedOut) Put(batch Batch) error {
	if len(batch) == 0 {
		// Nothing to deliver, but the lease is still consumed (see contract
		// above): an empty pool-drawn array goes straight back.
		s.pool.Put(batch)
		return nil
	}
	s.mu.Lock()
	s.produced += int64(len(batch))
	if s.replayValid {
		if s.replayLimit >= 0 && s.produced > int64(s.replayLimit) {
			s.replayValid = false
			s.replay = nil
		} else {
			// The window retains the rows themselves (immutable once Put),
			// not clones and not the batch array — replay pins no lease.
			s.replay = append(s.replay, batch...)
		}
	}
	// Fast path: one consumer (the overwhelmingly common case) avoids
	// snapshotting a targets slice per Put — the lone alive==0 re-check and
	// detach logic below is shared with the general path.
	var primary *Buffer
	var targets []*Buffer
	if len(s.outs) == 1 {
		primary = s.outs[0]
	} else {
		targets = make([]*Buffer, len(s.outs))
		copy(targets, s.outs)
	}
	s.mu.Unlock()

	if primary == nil && len(targets) == 0 {
		// Every consumer detached while another producer's Put was in
		// flight. The lease is still consumed (contract above): reclaim it.
		s.pool.Put(batch)
		return s.checkConsumersGone()
	}
	if primary != nil {
		err := primary.Put(batch)
		if err == nil {
			return nil
		}
		// The failed Put never enqueued the batch; reclaim its lease (no
		// caller may use it after Put, success or not).
		s.pool.Put(batch)
		s.detach(primary)
		if !errors.Is(err, ErrAbandoned) {
			return err
		}
		return s.checkConsumersGone()
	}

	// Each satellite gets its own (pool-drawn) array over the same immutable
	// rows, so every consumer recycles independently. All copies are built
	// BEFORE the primary's Put: that Put hands over the array's lease, and
	// the primary consumer may legitimately drain and recycle the array
	// while later copies would still be reading it.
	var copies []Batch
	if len(targets) > 1 {
		copies = make([]Batch, len(targets))
		for i := 1; i < len(targets); i++ {
			copies[i] = append(s.pool.GetCap(len(batch)), batch...)
		}
	}
	alive := 0
	var hardErr error
	for i, out := range targets {
		toSend := batch // the primary consumer inherits the producer's lease
		if i > 0 {
			toSend = copies[i]
		}
		if err := out.Put(toSend); err != nil {
			// The failed Put never enqueued this array (the producer's own
			// for the primary, this satellite's copy otherwise); reclaim it.
			s.pool.Put(toSend)
			s.detach(out)
			if !errors.Is(err, ErrAbandoned) && hardErr == nil {
				hardErr = err
			}
			continue
		}
		alive++
	}
	if hardErr != nil {
		return hardErr
	}
	if alive == 0 {
		return s.checkConsumersGone()
	}
	return nil
}

// checkConsumersGone re-checks under the lock before declaring the port
// dead: a satellite may have attached while a Put was in flight (its
// snapshot of targets predates the attach). Such a satellite already
// received the batch through the replay window at attach time, so the Put
// succeeded from its point of view.
func (s *SharedOut) checkConsumersGone() error {
	s.mu.Lock()
	stillConsumed := len(s.outs) > 0
	s.mu.Unlock()
	if !stillConsumed {
		return ErrConsumersGone
	}
	return nil
}

// Detach removes a consumer buffer from the port without closing it. The
// OSP rescue path uses this to re-home a satellite onto a fresh subtree
// before a dying host closes its port (which would otherwise propagate the
// host's terminal error to the satellite).
func (s *SharedOut) Detach(buf *Buffer) { s.detach(buf) }

func (s *SharedOut) detach(buf *Buffer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, o := range s.outs {
		if o == buf {
			s.outs = append(s.outs[:i], s.outs[i+1:]...)
			return
		}
	}
}

// SetProducer stamps the producing packet's identity onto every attached
// buffer (current and future) so the deadlock detector attributes blocked
// Puts to the packet actually producing — which OSP may change at run time
// (circular-scan admission hands production to the scanner's host).
func (s *SharedOut) SetProducer(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.producerID = id
	for _, o := range s.outs {
		o.Producer.Store(id)
	}
}

// Attach adds a satellite consumer. If output was already produced, the
// satellite first receives the replay window — provided it still covers
// everything produced; otherwise Attach fails (the window of opportunity
// has expired) and the caller must run the operator independently.
func (s *SharedOut) Attach(buf *Buffer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.produced > 0 {
		if !s.replayValid {
			return false
		}
		// The satellite gets its own array over the retained (immutable)
		// rows; larger-than-pool-size windows simply allocate fresh.
		replayCopy := append(s.pool.GetCap(len(s.replay)), s.replay...)
		// A fresh satellite buffer is empty, so a single Put cannot block.
		if err := buf.Put(replayCopy); err != nil {
			// The failed Put never enqueued the copy; reclaim its lease.
			s.pool.Put(replayCopy)
			return false
		}
	}
	s.outs = append(s.outs, buf)
	if s.producerID != 0 {
		buf.Producer.Store(s.producerID)
	}
	return true
}

// Close ends the stream for every attached consumer.
func (s *SharedOut) Close(err error) {
	s.mu.Lock()
	s.closed = true
	outs := make([]*Buffer, len(s.outs))
	copy(outs, s.outs)
	s.replay = nil
	s.mu.Unlock()
	for _, o := range outs {
		o.Close(err)
	}
}

// Produced returns the number of tuples produced so far.
func (s *SharedOut) Produced() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.produced
}

// NumConsumers returns the number of currently attached consumers.
func (s *SharedOut) NumConsumers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outs)
}

// PruneDead detaches consumers whose buffers were abandoned and reports
// whether any live consumer remains. Producers whose stream goes quiet (a
// scan consumer matching no rows never Puts, so never learns its targets
// died) use this as an explicit liveness probe.
func (s *SharedOut) PruneDead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.outs[:0]
	for _, o := range s.outs {
		if !o.IsAbandoned() {
			kept = append(kept, o)
		}
	}
	s.outs = kept
	return len(s.outs) > 0
}

// Consumers snapshots the attached buffers (deadlock detector edges from a
// host producer to every satellite consumer).
func (s *SharedOut) Consumers() []*Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	outs := make([]*Buffer, len(s.outs))
	copy(outs, s.outs)
	return outs
}
