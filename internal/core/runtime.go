// Runtime: engine assembly, the packet dispatcher, and query admission.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
	"qpipe/internal/storage/lock"
	"qpipe/internal/storage/sm"
)

// Config tunes the QPipe runtime.
type Config struct {
	// OSP enables on-demand simultaneous pipelining. Disabled, the runtime
	// is the paper's "Baseline": same engine, no sharing beyond the pool.
	OSP bool
	// WorkersPerEngine sizes each µEngine's worker pool; <= 0 selects
	// elastic mode (a goroutine per packet — see MicroEngine).
	WorkersPerEngine int
	// ScanParallelism is the partition fan-out for unordered table and
	// clustered-index scans: the page range splits into that many contiguous
	// partitions served concurrently by scan sub-workers, each with its own
	// circular cursor. 1 (or negative) keeps the single-reader scanner; 0
	// defaults to GOMAXPROCS. Plan nodes can override per scan via
	// TableScan.Parallelism.
	ScanParallelism int
	// BufferCapacity bounds intermediate buffers, in batches (default 8).
	BufferCapacity int
	// BatchSize is the tuple count operators aim for per produced batch and
	// the array size the runtime's batch recycling pool serves (default
	// DefaultBatchSize). One knob: emitters, cursors and the pool agree.
	BatchSize int
	// ReplayWindow is the number of produced tuples a packet retains for
	// late satellite attachment — the buffering enhancement of §3.2
	// (default 1024; 0 gives strict step/spike semantics).
	ReplayWindow int
	// DeadlockInterval is the Waits-For scan period (default 25ms;
	// negative disables the detector).
	DeadlockInterval time.Duration
	// LateActivation gates merge-join children until the join decides how
	// to evaluate them (§4.3.1/§4.3.2). Meaningful only with OSP.
	LateActivation bool
	// MaxConcurrentQueries caps how many queries execute at once
	// (admission control). Excess submissions park in a bounded FIFO wait
	// queue; once that is full too, Submit sheds the query with a typed
	// *OverloadedError. 0 (the default) disables governance.
	MaxConcurrentQueries int
	// AdmissionQueue bounds the admission wait queue, in queries (only
	// meaningful with MaxConcurrentQueries > 0; 0 defaults to
	// 2×MaxConcurrentQueries, negative means no queue — shed immediately
	// at the concurrency limit).
	AdmissionQueue int
	// DrainTimeout bounds how long Close waits for in-flight queries to
	// finish before cancelling the stragglers (graceful drain; 0 defaults
	// to 5s, negative cancels immediately — the pre-governance behavior).
	DrainTimeout time.Duration
}

// DefaultBatchSize is the default Config.BatchSize: the single source of
// the engine's tuples-per-batch constant (operators and the batch pool must
// never hard-code their own).
const DefaultBatchSize = 64

func (c Config) withDefaults() Config {
	if c.ScanParallelism == 0 {
		c.ScanParallelism = runtime.GOMAXPROCS(0)
	}
	if c.BufferCapacity <= 0 {
		c.BufferCapacity = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.ReplayWindow == 0 {
		c.ReplayWindow = 1024
	}
	if c.DeadlockInterval == 0 {
		c.DeadlockInterval = 25 * time.Millisecond
	}
	if c.AdmissionQueue == 0 {
		c.AdmissionQueue = 2 * c.MaxConcurrentQueries
	}
	if c.AdmissionQueue < 0 {
		c.AdmissionQueue = 0
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.DrainTimeout < 0 {
		c.DrainTimeout = 0
	}
	return c
}

// DefaultConfig returns the configuration used by the experiments'
// "QPipe w/OSP" system.
func DefaultConfig() Config {
	return Config{OSP: true, LateActivation: true}.withDefaults()
}

// BaselineConfig returns the "Baseline" system: QPipe with OSP disabled.
func BaselineConfig() Config {
	return Config{OSP: false}.withDefaults()
}

// RuntimeStats aggregates engine and sharing counters.
type RuntimeStats struct {
	Queries       int64
	SharesByOp    map[plan.OpType]int64
	EngineStats   map[plan.OpType]EngineStats
	DeadlocksSeen int64
	Materialized  int64 // buffers switched to unbounded by the detector

	// Resource-governance counters.
	InFlight         int64 // gauge: queries currently admitted and running
	AdmissionQueued  int64 // gauge: queries parked in the admission queue
	Shed             int64 // queries rejected with *OverloadedError
	DeadlineTimeouts int64 // queries terminated by their deadline
	Panics           int64 // operator panics quarantined across µEngines
}

// Runtime is the assembled QPipe engine: one µEngine per operator type, a
// packet dispatcher, and the deadlock detector.
type Runtime struct {
	SM  *sm.Manager
	Cfg Config

	engines map[plan.OpType]*MicroEngine
	// batchPool recycles batch backing arrays engine-wide (one lease
	// protocol, one array size — Cfg.BatchSize).
	batchPool *tbuf.BatchPool

	// admit is the query admission controller (nil-safe no-op when
	// MaxConcurrentQueries is 0).
	admit *admission

	mu      sync.Mutex
	queries map[int64]*Query
	// draining rejects NEW submissions while Close waits for in-flight
	// queries; closed additionally stops internal re-dispatch (rescues).
	draining bool
	closed   bool
	// idle is signalled whenever the queries map empties (Close's drain
	// wait).
	idle *sync.Cond

	shareMu sync.Mutex
	shares  map[plan.OpType]int64

	nQueries     atomic.Int64
	deadlocks    atomic.Int64
	materialized atomic.Int64
	timeouts     atomic.Int64

	detector *detector
}

// NewRuntime assembles a runtime over the storage manager with the given
// operator implementations (one per OpType; the ops package provides the
// standard set).
func NewRuntime(s *sm.Manager, cfg Config, operators []Operator) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		SM:        s,
		Cfg:       cfg,
		engines:   make(map[plan.OpType]*MicroEngine),
		batchPool: tbuf.NewBatchPool(cfg.BatchSize),
		queries:   make(map[int64]*Query),
		shares:    make(map[plan.OpType]int64),
		admit:     newAdmission(cfg.MaxConcurrentQueries, cfg.AdmissionQueue),
	}
	rt.idle = sync.NewCond(&rt.mu)
	for _, op := range operators {
		if _, dup := rt.engines[op.Op()]; dup {
			panic(fmt.Sprintf("core: duplicate operator for %s", op.Op()))
		}
		rt.engines[op.Op()] = newMicroEngine(rt, op, cfg.WorkersPerEngine)
	}
	if cfg.DeadlockInterval > 0 {
		rt.detector = newDetector(rt, cfg.DeadlockInterval)
		rt.detector.start()
	}
	return rt
}

// Engine returns the µEngine for an operator type (nil if absent).
func (rt *Runtime) Engine(op plan.OpType) *MicroEngine { return rt.engines[op] }

// Submit admits a query plan: the packet dispatcher creates one packet per
// plan node (paper §4.2) and enqueues them bottom-up. The returned Query's
// Result buffer carries root output; drain it and Wait for completion.
func (rt *Runtime) Submit(ctx context.Context, node plan.Node) (*Query, error) {
	return rt.SubmitOpts(ctx, node, QueryOptions{})
}

// SubmitOpts is Submit with per-query execution options; the options travel
// with the query so every packet it dispatches consults them instead of the
// global config.
func (rt *Runtime) SubmitOpts(ctx context.Context, node plan.Node, opts QueryOptions) (*Query, error) {
	rt.mu.Lock()
	if rt.draining || rt.closed {
		rt.mu.Unlock()
		return nil, ErrClosed
	}
	rt.mu.Unlock()
	if err := rt.validate(node); err != nil {
		return nil, err
	}
	q := newQuery(ctx, opts)
	// A context that is already dead — an expired deadline, a cancelled
	// caller — fails here, deterministically: otherwise a small query can
	// race to a clean completion before the context watcher ever runs.
	if err := q.ctx.Err(); err != nil {
		q.stop()
		return nil, rt.typedSubmitErr(q, err)
	}
	// Admission control: acquire a query slot (FIFO-queued at the limit)
	// before any lock, buffer or packet exists, so a shed query costs the
	// engine nothing. The wait is bounded by the query's own context — a
	// deadline expiring in the queue surfaces as the typed *DeadlineError,
	// never a hang.
	if err := rt.admit.Acquire(q.ctx); err != nil {
		q.stop()
		return nil, rt.typedSubmitErr(q, err)
	}
	// Query-level read locking (§4.3.4): acquire a shared lock on every
	// table the plan reads *before* any packet is dispatched, released when
	// the query finishes. Taking the whole read set up front — instead of
	// inside each scan packet — means no lock is ever requested while the
	// query already holds buffer dependencies. Per-scan locking deadlocked
	// a two-scan join against a queued writer: scan B holds S with a full
	// output buffer, a writer queues for X, scan A's S request then blocks
	// behind the writer, and the join waits on A while B waits on the join
	// — a cycle through the lock manager that the buffer-level deadlock
	// detector cannot see.
	tables := readTables(node)
	for i, tb := range tables {
		if err := rt.SM.Locks.Lock(q.ctx, tb, lock.Shared); err != nil {
			for _, held := range tables[:i] {
				rt.SM.Locks.Unlock(held, lock.Shared)
			}
			q.stop()
			rt.admit.Release()
			return nil, rt.typedSubmitErr(q, err)
		}
	}
	result := tbuf.New(rt.Cfg.BufferCapacity).UsePool(rt.batchPool)
	result.Label = fmt.Sprintf("q%d/result", q.ID)
	q.addBuffer(result)
	q.Result = result
	q.Root = rt.dispatch(q, node, result, false)

	rt.mu.Lock()
	rt.queries[q.ID] = q
	rt.mu.Unlock()
	rt.nQueries.Add(1)

	go func() {
		err := q.Wait()
		for _, tb := range tables {
			rt.SM.Locks.Unlock(tb, lock.Shared)
		}
		close(q.finished)
		// Release the query's cancel context so long-lived parent contexts
		// don't accumulate a child registration per completed query.
		// Ordered after the finished close so the context watcher can tell
		// this apart from a real caller cancellation.
		q.stop()
		rt.mu.Lock()
		delete(rt.queries, q.ID)
		if len(rt.queries) == 0 {
			rt.idle.Broadcast()
		}
		rt.mu.Unlock()
		rt.admit.Release()
		var de *DeadlineError
		if errors.As(err, &de) {
			rt.timeouts.Add(1)
		}
	}()
	// Context watcher: cancellation through the caller's context must tear
	// the query down actively (abandon its buffers, flag its packets) —
	// otherwise a packet that never polls Cancelled() blocks its producers
	// on full buffers forever. A finished query is never torn down: its
	// result buffer may still hold batches the client is draining.
	go func() {
		select {
		case <-q.ctx.Done():
			select {
			case <-q.finished:
			default:
				q.Cancel()
			}
		case <-q.finished:
		}
	}()
	return q, nil
}

// typedSubmitErr maps a submit-time context failure onto the query's typed
// terminal error: a deadline that expired while the query was parked in the
// admission queue (or waiting for its table locks) is a statement timeout,
// counted and reported exactly like one that fired mid-execution.
func (rt *Runtime) typedSubmitErr(q *Query, err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		rt.timeouts.Add(1)
		return &DeadlineError{Timeout: q.timeout, Deadline: q.deadline}
	}
	return err
}

// readTables returns the distinct tables a plan reads, sorted (the query's
// shared-lock set, acquired in deterministic order at submit).
func readTables(node plan.Node) []string {
	seen := make(map[string]bool)
	var out []string
	plan.Walk(node, func(n plan.Node) {
		var t string
		switch x := n.(type) {
		case *plan.TableScan:
			t = x.Table
		case *plan.IndexScan:
			t = x.Table
		}
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	})
	sort.Strings(out)
	return out
}

func (rt *Runtime) validate(node plan.Node) error {
	if err := plan.Validate(node); err != nil {
		return err
	}
	var err error
	updates := 0
	plan.Walk(node, func(n plan.Node) {
		if rt.engines[n.Op()] == nil && err == nil {
			err = fmt.Errorf("core: no µEngine for operator %s", n.Op())
		}
		if n.Op() == plan.OpUpdate {
			updates++
		}
	})
	if err != nil {
		return err
	}
	// Updates are single-node plans (§4.3.4: updates are never shared and
	// never combined with reads). Enforced here because mixing them would
	// also self-deadlock the query-level locking: the query's submit-time S
	// lock on a table can never be upgraded by its own update µEngine's X
	// request (the lock manager has no owner tracking).
	if updates > 0 && plan.CountNodes(node) > 1 {
		return fmt.Errorf("core: update plans must be single-node, got %d nodes", plan.CountNodes(node))
	}
	return nil
}

// dispatch recursively creates and enqueues packets for the subtree rooted
// at node, writing output into out. When gated, the packet is created but
// not enqueued (late activation); its owner must Activate or cancel it.
func (rt *Runtime) dispatch(q *Query, node plan.Node, out *tbuf.Buffer, gated bool) *Packet {
	pkt := newPacket(q, node)
	pkt.OutBuf = out
	pkt.Out = tbuf.NewSharedOut(out, rt.Cfg.ReplayWindow).UsePool(rt.batchPool)
	pkt.Out.SetProducer(pkt.ID)
	q.addPacket(pkt)

	gateKids := rt.shouldGateChildren(q, node)
	for _, cn := range node.Children() {
		buf := tbuf.New(rt.Cfg.BufferCapacity).UsePool(rt.batchPool)
		buf.Consumer.Store(pkt.ID)
		buf.Label = fmt.Sprintf("q%d/%s->%s", q.ID, cn.Op(), node.Op())
		q.addBuffer(buf)
		// The child's dispatch sets buf's producer itself — and OSP may
		// have immediately re-bound it to a shared scanner's host, so it
		// must NOT be overwritten here.
		child := rt.dispatch(q, cn, buf, gateKids)
		pkt.Inputs = append(pkt.Inputs, buf)
		pkt.Children = append(pkt.Children, child)
	}
	if gated {
		pkt.setState(PacketGated)
	} else {
		rt.engines[node.Op()].Enqueue(pkt)
	}
	return pkt
}

// shouldGateChildren applies late activation to merge-join inputs so the
// join µEngine can rewire them (two-packet split, §4.3.2) before they read
// a page.
func (rt *Runtime) shouldGateChildren(q *Query, node plan.Node) bool {
	if !rt.OSPAllowed(q) || !rt.Cfg.LateActivation {
		return false
	}
	mj, ok := node.(*plan.MergeJoin)
	if !ok {
		return false
	}
	for _, c := range mj.Children() {
		if is, ok := c.(*plan.IndexScan); ok && is.Clustered && is.Ordered {
			return true
		}
	}
	return false
}

// Activate enqueues a gated packet (late activation release).
func (rt *Runtime) Activate(pkt *Packet) {
	if pkt.State() == PacketGated {
		rt.engines[pkt.Node.Op()].Enqueue(pkt)
	}
}

// DispatchSubtree creates and runs a fresh subtree for an existing query at
// run time (used by the OSP coordinator when it rewrites an evaluation
// strategy, e.g. the ordered-scan join split). It returns the buffer the
// subtree's root writes into.
func (rt *Runtime) DispatchSubtree(q *Query, node plan.Node) (*tbuf.Buffer, *Packet) {
	buf := tbuf.New(rt.Cfg.BufferCapacity).UsePool(rt.batchPool)
	buf.Label = fmt.Sprintf("q%d/sub-%s", q.ID, node.Op())
	q.addBuffer(buf)
	pkt := rt.dispatch(q, node, buf, false)
	return buf, pkt
}

// rescue re-executes a satellite whose host died before producing output:
// the satellite's plan subtree runs fresh inside its own query (it may
// OSP-attach to other in-flight work as usual) and streams into the
// satellite's existing output port, completing the packet as if the host
// had served it. The closed check and the dispatch share rt.mu so a rescue
// can never race Close into enqueueing on a drained µEngine.
func (rt *Runtime) rescue(sat *Packet) {
	go func() {
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			sat.Complete(fmt.Errorf("core: runtime closed"))
			return
		}
		buf, _ := rt.DispatchSubtree(sat.Query, sat.Node)
		rt.mu.Unlock()
		for {
			b, err := buf.Get()
			if err == io.EOF {
				sat.Complete(nil)
				return
			}
			if err != nil {
				sat.Complete(err)
				return
			}
			if err := sat.Out.Put(b); err != nil {
				buf.Abandon()
				if errors.Is(err, tbuf.ErrConsumersGone) {
					// The satellite's own consumers are gone — cleanly (its
					// parent finished early) or because its query was
					// cancelled, which must surface as the terminal error.
					sat.Complete(sat.Query.CancelErr())
					return
				}
				sat.Complete(err)
				return
			}
		}
	}()
}

func (rt *Runtime) noteShare(op plan.OpType) {
	rt.shareMu.Lock()
	rt.shares[op]++
	rt.shareMu.Unlock()
}

// liveQueries snapshots active queries (deadlock detector input).
func (rt *Runtime) liveQueries() []*Query {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Query, 0, len(rt.queries))
	for _, q := range rt.queries {
		out = append(out, q)
	}
	return out
}

// Stats snapshots runtime counters.
func (rt *Runtime) Stats() RuntimeStats {
	st := RuntimeStats{
		Queries:          rt.nQueries.Load(),
		SharesByOp:       make(map[plan.OpType]int64),
		EngineStats:      make(map[plan.OpType]EngineStats),
		DeadlocksSeen:    rt.deadlocks.Load(),
		Materialized:     rt.materialized.Load(),
		AdmissionQueued:  rt.admit.Queued(),
		Shed:             rt.admit.Shed(),
		DeadlineTimeouts: rt.timeouts.Load(),
	}
	rt.mu.Lock()
	st.InFlight = int64(len(rt.queries))
	rt.mu.Unlock()
	rt.shareMu.Lock()
	for k, v := range rt.shares {
		st.SharesByOp[k] = v
	}
	rt.shareMu.Unlock()
	for op, e := range rt.engines {
		es := e.Stats()
		st.EngineStats[op] = es
		st.Panics += es.Panics
	}
	return st
}

// TotalShares sums OSP attaches across µEngines.
func (rt *Runtime) TotalShares() int64 {
	rt.shareMu.Lock()
	defer rt.shareMu.Unlock()
	var n int64
	for _, v := range rt.shares {
		n += v
	}
	return n
}

// Close shuts the runtime down with a graceful drain: new submissions are
// rejected with ErrClosed immediately, in-flight queries get up to
// Cfg.DrainTimeout to finish (internal re-dispatch, e.g. satellite rescue,
// keeps working during the drain), and any stragglers are then cancelled
// before the µEngines stop.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.draining || rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.draining = true

	// Drain wait: idle is broadcast whenever the queries map empties. A
	// timer goroutine bounds the wait by broadcasting too; `expired` tells
	// the cond loop apart from a genuine drain.
	var expired atomic.Bool
	if len(rt.queries) > 0 && rt.Cfg.DrainTimeout > 0 {
		timer := time.AfterFunc(rt.Cfg.DrainTimeout, func() {
			expired.Store(true)
			rt.idle.Broadcast()
		})
		for len(rt.queries) > 0 && !expired.Load() {
			rt.idle.Wait()
		}
		timer.Stop()
	}

	rt.closed = true
	qs := make([]*Query, 0, len(rt.queries))
	for _, q := range rt.queries {
		qs = append(qs, q)
	}
	rt.mu.Unlock()
	for _, q := range qs {
		q.Cancel()
	}
	if rt.detector != nil {
		rt.detector.stop()
	}
	for _, e := range rt.engines {
		e.close()
	}
}
